// The fvm-service example runs the whole campaign-service story in one
// process: it boots the service over a disk store, submits a mixed-fleet
// characterization through the typed client, follows the per-job SSE
// stream while a fleet-wide /v1/events firehose subscription watches the
// same campaign, queries the resulting FVMs and operating windows, then
// simulates a restart — a second service over the same store directory —
// and shows both halves of durability: the job journal brings the
// finished job back into the listing, and the identical campaign is
// answered entirely from disk.
//
// Run with:
//
//	go run ./examples/fvm-service
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/fpgavolt"
)

func main() {
	storeDir, err := os.MkdirTemp("", "fvm-service-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	ctx := context.Background()

	// --- Boot #1: a cold store. -----------------------------------------
	fmt.Printf("=== service boot 1 (store %s) ===\n", storeDir)
	client, shutdown := boot(storeDir)
	campaign := fpgavolt.CampaignRequest{
		Kind: "characterization",
		Boards: []fpgavolt.BoardSpec{
			{Platform: "VC707", Replicas: 2, BRAMs: 120},
			{Platform: "ZC702", Replicas: 2, BRAMs: 120},
			{Platform: "KC705-A", Replicas: 1, BRAMs: 120},
			{Platform: "KC705-B", Replicas: 1, BRAMs: 120},
		},
		Runs: 10,
	}

	// A fleet dashboard would watch every job at once through the
	// /v1/events firehose; here it runs beside the per-job stream and
	// tallies what it saw.
	fhCtx, fhCancel := context.WithCancel(ctx)
	fhDone := make(chan map[string]int, 1)
	go func() {
		counts := map[string]int{}
		var lastGSeq int64
		client.Firehose(fhCtx, 0, func(ev fpgavolt.JobEvent) error {
			counts[ev.Job]++
			lastGSeq = ev.GSeq
			return nil
		})
		counts["_gseq"] = int(lastGSeq)
		fhDone <- counts
	}()

	final := submitAndStream(ctx, client, campaign)
	fmt.Printf("campaign %s: %d/%d boards, %d cache hits, spread %.1fx\n",
		final.State, final.Aggregate.Completed, final.Boards,
		final.Aggregate.CacheHits, final.Aggregate.SpreadRatio)
	fhCancel()
	counts := <-fhDone
	for job, n := range counts {
		if job != "_gseq" && job != "" {
			fmt.Printf("firehose: %d multiplexed events for %s (global cursor %d)\n\n",
				n, job, counts["_gseq"])
		}
	}

	// The store now answers fleet-wide queries.
	fvms, err := client.FVMs(ctx, "", "")
	check(err)
	fmt.Printf("stored FVMs: %d\n", len(fvms))
	for _, m := range fvms {
		fmt.Printf("  %-8s S/N %-28s %3d sites, %4.1f%% zero-fault, max rate %.2f%%\n",
			m.Platform, m.Serial, m.Sites, 100*m.ZeroShare, 100*m.MaxRate)
	}
	vmins, err := client.Vmin(ctx, "", "")
	check(err)
	fmt.Println("operating windows:")
	for _, v := range vmins {
		fmt.Printf("  %-8s S/N %-28s Vmin %.2fV  Vcrash %.2fV  %6.1f faults/Mbit\n",
			v.Platform, v.Serial, v.VminV, v.VcrashV, v.FaultsPerMbit)
	}
	shutdown()

	// --- Boot #2: same store, new process. ------------------------------
	fmt.Println("\n=== service boot 2 (same store — simulated restart) ===")
	client, shutdown = boot(storeDir)
	defer shutdown()

	// The job journal replayed the first process's campaign into the
	// table: listings and event replay survive the restart.
	jobs, err := client.Jobs(ctx)
	check(err)
	fmt.Printf("journal replayed %d job(s):\n", len(jobs))
	for _, j := range jobs {
		fmt.Printf("  %s  %-20s %-9s %3.0f%%  (%d boards)\n",
			j.ID, j.Kind, j.State, j.Progress, j.Boards)
	}

	start := time.Now()
	final = submitAndStream(ctx, client, campaign)
	fmt.Printf("identical campaign after restart: %s in %v, %d/%d boards from the store\n",
		final.State, time.Since(start).Round(time.Millisecond),
		final.Aggregate.CacheHits, final.Boards)
	if final.Aggregate.CacheHits != final.Boards {
		log.Fatalf("expected every board served from disk, got %d/%d",
			final.Aggregate.CacheHits, final.Boards)
	}
	fmt.Println("no board was re-characterized: the FVM store is the fleet's memory.")
}

// boot starts a service over the store directory on an ephemeral port and
// returns a client plus a graceful-shutdown func.
func boot(storeDir string) (*fpgavolt.Client, func()) {
	st, err := fpgavolt.OpenDiskStore(storeDir)
	check(err)
	svc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{Store: st, Workers: 2})
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	client := fpgavolt.NewServiceClient("http://"+ln.Addr().String(), nil)
	return client, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
		hs.Shutdown(ctx)
		st.Close() // flush the store index so the next open skips the rescan
	}
}

// submitAndStream submits the campaign and renders its SSE feed until the
// terminal event, returning the final job status.
func submitAndStream(ctx context.Context, client *fpgavolt.Client, req fpgavolt.CampaignRequest) fpgavolt.JobStatus {
	job, err := client.Submit(ctx, req)
	check(err)
	fmt.Printf("submitted %s (%s, %d boards)\n", job.ID, job.Kind, job.Boards)
	final, err := client.Wait(ctx, job.ID, func(ev fpgavolt.JobEvent) error {
		switch ev.Type {
		case "done":
			src := "measured"
			if ev.FromCache {
				src = "store hit"
			}
			fmt.Printf("  [%5.1f%%] board %2d %-8s %-9s %7.1f faults/Mbit\n",
				ev.Progress, ev.Board, ev.Platform, src, ev.Faults)
		case "failed":
			fmt.Printf("  [%5.1f%%] board %2d %-8s FAILED: %s\n",
				ev.Progress, ev.Board, ev.Platform, ev.Error)
		}
		return nil
	})
	check(err)
	return final
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
