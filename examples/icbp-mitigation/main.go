// ICBP-mitigation demonstrates the paper's fault-mitigation technique
// (Section III-C, Figs. 12 and 14): extract the chip's Fault Variation Map
// once, emit Pblock constraints pinning the most vulnerable NN layer to
// low-vulnerable BRAMs, and compare classification error against the default
// placement across the critical voltage region.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	ctx := context.Background()
	board := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))

	// Step 1 (pre-process): characterize the chip and build its FVM.
	fmt.Println("extracting the Fault Variation Map (one-time, chip-specific)...")
	m, err := fpgavolt.ExtractFVM(ctx, board, 20, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d BRAMs, %s never fault\n", m.NumSites(), report.Pct(m.ZeroShare(), 1))

	// Step 2: train and quantize the workload.
	ds, err := fpgavolt.Benchmark("mnist", fpgavolt.DatasetOptions{
		TrainSamples: 4000, TestSamples: 800, Features: 196,
	})
	if err != nil {
		log.Fatal(err)
	}
	net, err := fpgavolt.NewNetwork([]int{196, 128, 64, 32, 16, 10}, "icbp-example")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Train(ds.TrainX, ds.TrainY, fpgavolt.TrainOptions{
		Epochs: 12, LearnRate: 0.3,
	}); err != nil {
		log.Fatal(err)
	}
	q := fpgavolt.QuantizeNetwork(net)

	// Step 3: generate the ICBP constraints (the added step of Fig. 12b) and
	// compile both variants.
	cs, err := fpgavolt.ICBPConstraints(m, q, fpgavolt.ICBPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated XDC constraints:")
	fmt.Print(cs.String())

	defAcc, err := fpgavolt.BuildAccelerator(board, q, nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	defResults, err := defAcc.Sweep(ctx, ds.TestX, ds.TestY, 0)
	if err != nil {
		log.Fatal(err)
	}
	icbpAcc, err := fpgavolt.BuildAccelerator(board, q, cs, 1)
	if err != nil {
		log.Fatal(err)
	}
	icbpResults, err := icbpAcc.Sweep(ctx, ds.TestX, ds.TestY, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: compare (the Fig. 14 view).
	t := report.NewTable("classification error: default vs ICBP placement",
		"VCCBRAM (V)", "default", "ICBP")
	for i := range defResults {
		t.AddRow(report.F(defResults[i].V, 2),
			report.Pct(defResults[i].Error, 2), report.Pct(icbpResults[i].Error, 2))
	}
	t.Render(log.Writer())

	last := len(defResults) - 1
	bdMin := defAcc.PowerBreakdown(board.Platform.Cal.Vmin)
	bdCrash := defAcc.PowerBreakdown(board.Platform.Cal.Vcrash)
	fmt.Printf("\nBRAM power savings at Vcrash over Vmin: %s (paper: 38.1%% avg)\n",
		report.Pct(1-bdCrash.Of("BRAM")/bdMin.Of("BRAM"), 1))
	fmt.Printf("error at Vcrash: default %s vs ICBP %s\n",
		report.Pct(defResults[last].Error, 2), report.Pct(icbpResults[last].Error, 2))
}
