// Characterization walks the full Section II methodology on one platform:
// threshold discovery (Fig. 1), the fault/power sweep (Fig. 3), the
// data-pattern study (Fig. 4), run stability (Table II), vulnerability
// clustering (Fig. 5), and the Fault Variation Map (Fig. 6).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	ctx := context.Background()
	board := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))
	p := board.Platform

	// --- Fig. 1: discover the operating thresholds from scratch.
	thB, err := fpgavolt.DiscoverBRAMThresholds(ctx, board, 2)
	if err != nil {
		log.Fatal(err)
	}
	thI, err := fpgavolt.DiscoverIntThresholds(ctx, board)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VCCBRAM: Vmin=%.2fV Vcrash=%.2fV (guardband %s)\n",
		thB.Vmin, thB.Vcrash, report.Pct(thB.GuardbandFrac(), 1))
	fmt.Printf("VCCINT:  Vmin=%.2fV Vcrash=%.2fV (guardband %s)\n\n",
		thI.Vmin, thI.Vcrash, report.Pct(thI.GuardbandFrac(), 1))

	// --- Fig. 3 / Table II: the main sweep, 100-run statistics per level.
	sweep, err := fpgavolt.Characterize(ctx, board, fpgavolt.SweepOptions{Runs: 30})
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(p.Name+" sweep (pattern 16'hFFFF)",
		"V", "faults/Mbit", "stddev", "1->0 share", "BRAM power (W)")
	for _, l := range sweep.Levels {
		t.AddRow(report.F(l.V, 2), report.F(l.FaultsPerMbit, 1),
			report.F(l.Stats.StdDev, 1), report.Pct(l.Flip10Share(), 2),
			report.F(l.BRAMPowerW, 3))
	}
	t.Render(log.Writer())

	// --- Fig. 4: pattern dependence at Vcrash.
	patterns, err := fpgavolt.PatternStudy(ctx, board, p.Cal.Vcrash, []fpgavolt.SweepOptions{
		{Pattern: 0xFFFF}, {Pattern: 0xAAAA}, {RandomFill: true},
		{ZeroFill: true, PatternName: "16'h0000"},
	}, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npattern study @ Vcrash:")
	for _, r := range patterns {
		fmt.Printf("  %-12s %8.1f faults/Mbit\n", r.Name, r.FaultsPerMbit)
	}

	// --- Figs. 5 & 6: the Fault Variation Map and its classes.
	m, err := fpgavolt.ExtractFVM(ctx, board, 20, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(m.Render())
	classes, err := m.RenderClasses()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(classes)
	sum := m.Summary()
	fmt.Printf("never-faulting BRAMs: %s, max per-BRAM rate: %s\n",
		report.Pct(m.ZeroShare(), 1), report.Pct(sum.Max, 2))
}
