// Quickstart: open a simulated VC707, underscale VCCBRAM through the PMBus
// regulator, and watch the three operating regions of the paper's Fig. 1 —
// SAFE (huge power savings, zero faults), CRITICAL (faults appear), and
// CRASH (the design stops).
package main

import (
	"fmt"
	"log"

	"repro/fpgavolt"
)

func main() {
	// A 200-BRAM slice of VC707 keeps the demo fast; drop Scaled() for the
	// full 2060-BRAM chip.
	board := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))
	cal := board.Platform.Cal
	fmt.Printf("board: %s (S/N %s), %d BRAMs simulated\n",
		board.Platform.Name, board.Platform.Serial, board.Pool.Len())

	// Fill every BRAM with the worst-case pattern (all ones: undervolting
	// faults are overwhelmingly 1->0 flips).
	board.FillAll(0xFFFF)
	nominalPower := board.BRAMPowerW()

	countFaults := func() int {
		buf := make([]uint16, 1024)
		run := board.BeginRun()
		faults := 0
		for site := 0; site < board.Pool.Len(); site++ {
			if err := board.ReadBRAMInto(buf, site, run); err != nil {
				log.Fatal(err)
			}
			for _, w := range buf {
				for b := 0; b < 16; b++ {
					if w&(1<<b) == 0 {
						faults++
					}
				}
			}
		}
		return faults
	}

	for _, v := range []float64{1.00, 0.80, cal.Vmin, 0.57, cal.Vcrash} {
		if err := board.SetVCCBRAM(v); err != nil {
			log.Fatal(err)
		}
		region := cal.RegionOfBRAM(v)
		faults := countFaults()
		fmt.Printf("VCCBRAM=%.2fV  region=%-8s  faults=%-6d  BRAM power=%.3fW (%.1fx saving)\n",
			v, region, faults, board.BRAMPowerW(), nominalPower/board.BRAMPowerW())
	}

	// Below Vcrash the DONE pin drops and reads fail, exactly as on the
	// paper's boards.
	if err := board.SetVCCBRAM(cal.Vcrash - 0.02); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VCCBRAM=%.2fV  operating=%v (DONE pin dropped -> reconfigure needed)\n",
		board.VCCBRAM(), board.Operating())
}
