// NN-undervolting reproduces the Section III trade-off on a reduced scale:
// train the fully-connected classifier, quantize it to the per-layer 16-bit
// fixed-point model (Fig. 9), deploy it into BRAMs, and trade power against
// classification accuracy as VCCBRAM drops (Figs. 10 and 11).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	ctx := context.Background()
	// Train on the MNIST-like benchmark (784->196 pixels at this scale).
	ds, err := fpgavolt.Benchmark("mnist", fpgavolt.DatasetOptions{
		TrainSamples: 4000, TestSamples: 800, Features: 196,
	})
	if err != nil {
		log.Fatal(err)
	}
	net, err := fpgavolt.NewNetwork([]int{196, 128, 64, 32, 16, 10}, "example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training (6-level topology, logsig hidden + softmax output)...")
	if _, err := net.Train(ds.TrainX, ds.TrainY, fpgavolt.TrainOptions{
		Epochs: 12, LearnRate: 0.3,
	}); err != nil {
		log.Fatal(err)
	}

	// Fig. 9: the per-layer minimum-precision quantization.
	q := fpgavolt.QuantizeNetwork(net)
	for j, f := range q.Formats {
		fmt.Printf("  Layer%d format %s (%d words)\n", j, f, q.LayerWords(j))
	}
	fmt.Printf("weight-bit sparsity: %s zeros (the paper's inherent fault tolerance)\n\n",
		report.Pct(1-q.OneBitFraction(), 1))

	// Deploy on a scaled VC707 and sweep VCCBRAM.
	board := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))
	acc, err := fpgavolt.BuildAccelerator(board, q, nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BRAM utilization: %s\n", report.Pct(acc.BRAMUtilization(), 1))

	t := report.NewTable("accuracy/power trade-off under BRAM undervolting",
		"VCCBRAM (V)", "class. error", "faulty weight bits", "BRAM power (W)", "total (W)")
	results, err := acc.Sweep(ctx, ds.TestX, ds.TestY, 0)
	if err != nil {
		log.Fatal(err)
	}
	cal := board.Platform.Cal
	for _, v := range []float64{cal.Vnom} {
		bd := acc.PowerBreakdown(v)
		r, err := acc.EvaluateAt(ctx, v, ds.TestX, ds.TestY, 0)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(report.F(v, 2), report.Pct(r.Error, 2), fmt.Sprintf("%d", r.WeightFault),
			report.F(bd.Of("BRAM"), 3), report.F(bd.Total(), 3))
	}
	for _, r := range results {
		bd := acc.PowerBreakdown(r.V)
		t.AddRow(report.F(r.V, 2), report.Pct(r.Error, 2), fmt.Sprintf("%d", r.WeightFault),
			report.F(bd.Of("BRAM"), 3), report.F(bd.Total(), 3))
	}
	t.Render(log.Writer())
}
