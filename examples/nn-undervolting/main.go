// NN-undervolting reproduces the Section III trade-off on a reduced scale:
// train the fully-connected classifier, quantize it to the per-layer 16-bit
// fixed-point model (Fig. 9), deploy it into BRAMs, and trade power against
// classification accuracy as VCCBRAM drops (Figs. 10 and 11).
//
// With -service the same experiment runs through the campaign daemon
// instead: the example boots an in-process fpgavoltd, ships the quantized
// network and test set over HTTP as nn-inference wire documents, streams
// the job's SSE feed, and verifies the remote accuracy curve is
// bit-identical to a local sweep of the same inputs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	service := flag.Bool("service", false, "run the sweep through an in-process fpgavoltd over HTTP")
	flag.Parse()
	ctx := context.Background()
	// Train on the MNIST-like benchmark (784->196 pixels at this scale).
	ds, err := fpgavolt.Benchmark("mnist", fpgavolt.DatasetOptions{
		TrainSamples: 4000, TestSamples: 800, Features: 196,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *service {
		// The wire narrows inputs to float32; evaluating the decoded copy
		// locally too is what makes the local/remote comparison exact.
		tsDoc, err := fpgavolt.MarshalTestSet(ds.TestX, ds.TestY)
		if err != nil {
			log.Fatal(err)
		}
		if ds.TestX, ds.TestY, err = fpgavolt.UnmarshalTestSet(tsDoc); err != nil {
			log.Fatal(err)
		}
	}
	net, err := fpgavolt.NewNetwork([]int{196, 128, 64, 32, 16, 10}, "example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training (6-level topology, logsig hidden + softmax output)...")
	if _, err := net.Train(ds.TrainX, ds.TrainY, fpgavolt.TrainOptions{
		Epochs: 12, LearnRate: 0.3,
	}); err != nil {
		log.Fatal(err)
	}

	// Fig. 9: the per-layer minimum-precision quantization.
	q := fpgavolt.QuantizeNetwork(net)
	for j, f := range q.Formats {
		fmt.Printf("  Layer%d format %s (%d words)\n", j, f, q.LayerWords(j))
	}
	fmt.Printf("weight-bit sparsity: %s zeros (the paper's inherent fault tolerance)\n\n",
		report.Pct(1-q.OneBitFraction(), 1))

	// Deploy on a scaled VC707 and sweep VCCBRAM.
	board := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))
	acc, err := fpgavolt.BuildAccelerator(board, q, nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BRAM utilization: %s\n", report.Pct(acc.BRAMUtilization(), 1))

	t := report.NewTable("accuracy/power trade-off under BRAM undervolting",
		"VCCBRAM (V)", "class. error", "faulty weight bits", "BRAM power (W)", "total (W)")
	results, err := acc.Sweep(ctx, ds.TestX, ds.TestY, 0)
	if err != nil {
		log.Fatal(err)
	}
	if *service {
		remote, err := sweepViaService(ctx, q, ds)
		if err != nil {
			log.Fatal(err)
		}
		if len(remote) != len(results) {
			log.Fatalf("service returned %d levels, local sweep has %d", len(remote), len(results))
		}
		for i, pt := range remote {
			r := results[i]
			if pt.V != r.V || pt.Error != r.Error || pt.WeightFault != r.WeightFault {
				log.Fatalf("level %d: remote %+v differs from local %+v", i, pt, r)
			}
		}
		fmt.Printf("service-mode check: %d remote voltage points bit-identical to the local sweep\n\n", len(remote))
	}
	cal := board.Platform.Cal
	for _, v := range []float64{cal.Vnom} {
		bd := acc.PowerBreakdown(v)
		r, err := acc.EvaluateAt(ctx, v, ds.TestX, ds.TestY, 0)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(report.F(v, 2), report.Pct(r.Error, 2), fmt.Sprintf("%d", r.WeightFault),
			report.F(bd.Of("BRAM"), 3), report.F(bd.Total(), 3))
	}
	for _, r := range results {
		bd := acc.PowerBreakdown(r.V)
		t.AddRow(report.F(r.V, 2), report.Pct(r.Error, 2), fmt.Sprintf("%d", r.WeightFault),
			report.F(bd.Of("BRAM"), 3), report.F(bd.Total(), 3))
	}
	t.Render(log.Writer())
}

// sweepViaService runs the same inference sweep through a freshly-booted
// in-process campaign daemon: submit over HTTP, stream the SSE feed, and
// return the accuracy curve from the job detail.
func sweepViaService(ctx context.Context, q *fpgavolt.Quantized, ds *fpgavolt.Dataset) ([]fpgavolt.InferencePoint, error) {
	svc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{Store: fpgavolt.NewMemStore(), Workers: 1})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(sctx)
		hs.Shutdown(sctx)
	}()

	client := fpgavolt.NewServiceClient("http://"+ln.Addr().String(), nil)
	boards := []fpgavolt.BoardSpec{{Platform: "VC707", Replicas: 1, BRAMs: 200}}
	job, err := client.SubmitInference(ctx, boards, q, ds.TestX, ds.TestY, 1)
	if err != nil {
		return nil, err
	}
	fmt.Printf("service mode: submitted %s (wire format v%d)\n", job.ID, fpgavolt.WireVersion)
	final, err := client.Wait(ctx, job.ID, func(ev fpgavolt.JobEvent) error {
		if ev.Type == "done" {
			fmt.Printf("  board %d done: %s classification error at deepest level\n",
				ev.Board, report.Pct(ev.InferError, 2))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if final.State != fpgavolt.JobDone {
		return nil, fmt.Errorf("job finished %s: %s", final.State, final.Error)
	}
	if len(final.BoardResults) != 1 {
		return nil, fmt.Errorf("expected one board result, got %d", len(final.BoardResults))
	}
	return final.BoardResults[0].Inference, nil
}
