// The mitigation-comparison example races the paper's Section IV protection
// schemes against each other on the same silicon. Every board in a small
// mixed fleet walks one shared VCCBRAM ladder from nominal down to Vcrash
// four times over:
//
//   - unprotected — raw BRAM reads, the Fig. 3 baseline;
//   - ecc — a (22,16) SECDED scrubber that corrects single-bit words and
//     counts what it detected versus what slipped through silently;
//   - icbp — data placed away from the high-vulnerability k-means class of
//     the board's Fault Variation Map (Fig. 5), so the same voltage hits
//     fewer weak cells;
//   - dvfs — frequency scaled down with the alpha-power law so the lower
//     voltage never outruns timing (here in iso-energy mode, which picks the
//     operating point matching the undervolted energy budget).
//
// All four arms read the exact same fault draw per level, so the comparison
// isolates the mitigation itself. The example runs the campaign twice: once
// in-process through the fleet engine, then again through the campaign
// service's kind-scoped `mitigation{}` API — streaming per-level progress —
// and shows the wire results agree with the local run.
//
// Run with:
//
//	go run ./examples/mitigation-comparison
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	ctx := context.Background()

	// --- Pass 1: the fleet engine, in process. ---------------------------
	inventory := append(
		fpgavolt.VC707().Scaled(48).Replicas(2),
		fpgavolt.KC705A().Scaled(48), fpgavolt.ZC702().Scaled(48))
	fleet := fpgavolt.NewFleet(inventory, fpgavolt.FleetOptions{Workers: 2})
	res, err := fpgavolt.RunCampaign(ctx, fleet, fpgavolt.Campaign{
		Kind:         fpgavolt.CampaignMitigation,
		MitIsoEnergy: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("local run: arms per board",
		"board", "platform", "arm", "min safe V", "energy savings", "deepest faults/Mbit")
	for _, br := range res.Boards {
		for _, arm := range br.Mitigation {
			deepest := arm.Levels[len(arm.Levels)-1]
			t.AddRow(fmt.Sprintf("%d", br.Board), br.Platform, arm.Arm,
				report.F(arm.MinSafeV, 2), report.Pct(arm.EnergySavings, 1),
				report.F(deepest.FaultsPerMbit, 1))
		}
	}
	t.Render(log.Writer())

	agg := report.NewTable("local run: cross-chip spread per arm",
		"arm", "min safe V (med)", "energy savings (med)")
	for _, ma := range res.Agg.Mitigation {
		agg.AddRow(ma.Arm, report.F(ma.MinSafeV.Median, 2), report.Pct(ma.EnergySavings.Median, 1))
	}
	agg.Render(log.Writer())

	// --- Pass 2: the same campaign over the wire. ------------------------
	svc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{Store: fpgavolt.NewMemStore()})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(sctx)
		hs.Shutdown(sctx)
	}()
	client := fpgavolt.NewServiceClient("http://"+ln.Addr().String(), nil)

	boards := []fpgavolt.BoardSpec{
		{Platform: "VC707", Replicas: 2, BRAMs: 48},
		{Platform: "KC705-A", Replicas: 1, BRAMs: 48},
		{Platform: "ZC702", Replicas: 1, BRAMs: 48},
	}
	job, err := client.SubmitMitigation(ctx, boards, fpgavolt.MitigationSpec{IsoEnergy: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service job %s submitted (kind-scoped mitigation{} request)\n", job.ID)

	// Per-level events stream over SSE while the arms race down the ladder.
	levels := 0
	err = client.Events(ctx, job.ID, func(ev fpgavolt.JobEvent) error {
		if ev.Type == "level" {
			levels++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	status, err := client.Job(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service job %s: %d per-level events streamed\n", status.State, levels)

	wire := report.NewTable("service run: arms per board (from JobStatus)",
		"board", "platform", "arm", "min safe V", "energy savings")
	for _, bs := range status.BoardResults {
		for _, arm := range bs.Mitigation {
			wire.AddRow(fmt.Sprintf("%d", bs.Board), bs.Platform, arm.Arm,
				report.F(arm.MinSafeV, 2), report.Pct(arm.EnergySavings, 1))
		}
	}
	wire.Render(log.Writer())

	// Same serials, same ladder, same fault draws: the wire curves are the
	// local curves.
	agree := true
	for i, br := range res.Boards {
		bs := status.BoardResults[i]
		for ai, arm := range br.Mitigation {
			w := bs.Mitigation[ai]
			if arm.Arm != w.Arm || arm.MinSafeV != w.MinSafeV ||
				arm.EnergySavings != w.EnergySavings || !levelsMatch(arm, w) {
				agree = false
			}
		}
	}
	fmt.Printf("wire results match the local engine run: %v\n", agree)
}

// levelsMatch compares an engine arm curve to its wire projection.
func levelsMatch(a fpgavolt.MitigationArm, w fpgavolt.MitigationArmStatus) bool {
	if len(a.Levels) != len(w.Levels) {
		return false
	}
	for i, p := range a.Levels {
		got := w.Levels[i]
		want := fpgavolt.MitigationLevel{
			V: p.V, FaultsPerMbit: p.FaultsPerMbit, WordErrors: p.WordErrors,
			Accuracy: p.Accuracy, EnergyJ: p.EnergyJ, FreqScale: p.FreqScale,
			Corrected: p.Corrected, Detected: p.Detected, Silent: p.Silent,
		}
		if !reflect.DeepEqual(got, want) {
			return false
		}
	}
	return true
}
