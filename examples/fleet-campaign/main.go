// Fleet campaign: the paper's chip-to-chip variation story at rack scale.
//
// The study measured four boards and found that "identical" chips behave
// differently under undervolting (its two KC705 samples differ 4.1× in fault
// rate at Vcrash). A deployment that wants the ~10× BRAM power saving must
// therefore characterize every board it owns, not one golden sample. This
// example runs that workflow: a 16-board fleet — four samples of each of the
// four platforms, each replica a physically distinct die — is characterized
// concurrently under a deadline, progress streams per board, and the
// cross-chip spread (min/median/max faults per Mbit, Vmin/Vcrash window) is
// what an operator would act on. The campaign then runs again: every board
// is served from the Fault Variation Map cache, which is how a periodic
// re-audit stays cheap.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/fpgavolt"
)

func main() {
	// Mint the fleet: 4 samples per platform. Replica 0 of each keeps the
	// paper's reference serial (reproducing its published numbers); the rest
	// draw their own die-to-die variation. 100-BRAM pools keep the demo
	// quick; drop Scaled() for full chips.
	var boards []fpgavolt.Platform
	for _, p := range fpgavolt.Platforms() {
		boards = append(boards, p.Scaled(100).Replicas(4)...)
	}
	fleet := fpgavolt.NewFleet(boards, fpgavolt.FleetOptions{Workers: 8})
	fmt.Printf("fleet: %d boards (4 samples x 4 platforms), 8 concurrent\n\n", fleet.Size())

	// Campaigns are deadline-aware end to end: the context threads through
	// every voltage step of every board.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	campaign := fpgavolt.Campaign{
		Kind:  fpgavolt.CampaignCharacterization,
		Sweep: fpgavolt.SweepOptions{Runs: 10},
	}

	start := time.Now()
	res, err := runWithProgress(ctx, fleet, campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst campaign: %d/%d boards in %v\n",
		res.Agg.Completed, res.Agg.Boards, time.Since(start).Round(time.Millisecond))

	agg := res.Agg
	fmt.Printf("cross-chip spread at the deepest level:\n")
	fmt.Printf("  faults/Mbit   min %7.1f   median %7.1f   max %7.1f   (%.1fx max/min)\n",
		agg.FaultsPerMbit.Min, agg.FaultsPerMbit.Median, agg.FaultsPerMbit.Max, agg.SpreadRatio)
	fmt.Printf("  observed Vmin    %0.2f V .. %0.2f V\n", agg.ObservedVmin.Min, agg.ObservedVmin.Max)
	fmt.Printf("  observed Vcrash  %0.2f V .. %0.2f V\n", agg.ObservedVcrash.Min, agg.ObservedVcrash.Max)
	fmt.Printf("  zero-fault BRAMs %s .. %s per die\n\n",
		pct(agg.ZeroFaultShare.Min), pct(agg.ZeroFaultShare.Max))

	// The same campaign again: every board hits the FVM cache, so a periodic
	// fleet re-audit costs microseconds, not sweeps.
	start = time.Now()
	res2, err := runWithProgress(ctx, fleet, campaign)
	if err != nil {
		log.Fatal(err)
	}
	cs := fleet.CacheStats()
	fmt.Printf("\nrepeat campaign: %d/%d boards from cache in %v (cache: %d hits / %d misses)\n",
		res2.Agg.CacheHits, res2.Agg.Boards, time.Since(start).Round(time.Microsecond),
		cs.Hits, cs.Misses)

	// The per-board FVMs are the input to placement mitigation: the safest
	// chip of the fleet is where the vulnerable NN layer should land.
	var best *fpgavolt.FleetBoardResult
	for i := range res.Boards {
		br := &res.Boards[i]
		if br.Err != nil {
			continue
		}
		if best == nil || br.Sweep.Final().FaultsPerMbit < best.Sweep.Final().FaultsPerMbit {
			best = br
		}
	}
	if best != nil {
		fmt.Printf("\nsafest die in the fleet: %s S/N %s (%.1f faults/Mbit, %s fault-free BRAMs)\n",
			best.Platform, best.Serial, best.Sweep.Final().FaultsPerMbit, pct(best.FVM.ZeroShare()))
	}
}

// runWithProgress executes the campaign while printing each board's
// completion, and returns only after every event has been rendered.
func runWithProgress(ctx context.Context, fleet *fpgavolt.Fleet, c fpgavolt.Campaign) (*fpgavolt.CampaignResult, error) {
	events := make(chan fpgavolt.FleetEvent, 16)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			if ev.Kind != fpgavolt.FleetEventDone {
				continue
			}
			src := "measured"
			if ev.FromCache {
				src = "cache"
			}
			fmt.Printf("  board %2d  %-8s S/N %-30s %8.1f faults/Mbit  [%s]\n",
				ev.Board, ev.Platform, ev.Serial, ev.Faults, src)
		}
	}()
	c.Events = events
	res, err := fpgavolt.RunCampaign(ctx, fleet, c)
	close(events)
	<-drained
	return res, err
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
