GO ?= go
LABEL ?= local
BENCH ?= .
BENCHTIME ?= 1x
# The committed baseline bench-compare diffs against, and the selector and
# benchtime it was recorded with — keep all three in step when refreshing it.
# Calibration must stay in the selector: the compare normalizes ns/op by its
# old→new ratio, so runner-speed drift is not mistaken for a code change.
BASELINE ?= BENCH_pr10.json
BASELINE_BENCH ?= FullPool|Fig03FaultPowerSweep|DieConstruction|JournalAppend|FirehoseResumeDeep|MitigationSweep|Calibration
BASELINE_BENCHTIME ?= 2s
THRESHOLD ?= 30
# Journal appends are gated on bytes/event (deterministic), not ns/op
# (fsync-noisy): tight threshold, separate compare pass below.
JOURNAL_THRESHOLD ?= 10

.PHONY: build test race lint bench bench-smoke bench-json bench-compare loadgen loadgen-smoke federation-smoke federation-smoke-race chaos-smoke chaos-smoke-race

# The chaos seed is pinned so CI failures replay locally: the same seed
# reproduces the same fault schedule bit-for-bit.
CHAOS_SEED ?= 20260808

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Invariant gate: go vet plus the repo's own analyzers (cmd/fpgavoltvet),
# which mechanize the invariants past PRs broke by hand — see README
# "Static analysis". staticcheck and govulncheck run when installed (CI
# installs them; locally they are optional extras, not requirements).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/fpgavoltvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed, skipping"; fi

# Full benchmark suite with real timings.
bench:
	$(GO) test -run '^$$' -bench $(BENCH) -benchmem .

# One iteration of every benchmark in every package: proves they compile
# and run (CI job).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable baseline: writes BENCH_$(LABEL).json so perf can be
# tracked PR over PR (see README "Performance").
bench-json:
	$(GO) run ./cmd/benchjson -label $(LABEL) -bench '$(BENCH)' -benchtime $(BENCHTIME)

# Re-run the committed baseline's benchmarks and fail on regressions against
# it (the CI bench-compare job). Two passes: ns/op calibrated by the
# machine-speed benchmark and skipping the fsync-bound journal appends, then
# the journal appends on their deterministic bytes/event metric. -count 3
# folds to per-metric medians so one noisy run cannot fail the gate alone.
bench-compare:
	$(GO) run ./cmd/benchjson -label compare -bench '$(BASELINE_BENCH)' \
		-benchtime $(BASELINE_BENCHTIME) -count 3 -out BENCH_compare.json
	$(GO) run ./cmd/benchjson -compare $(BASELINE) BENCH_compare.json \
		-threshold $(THRESHOLD) -calibrate Calibration -skip JournalAppend
	$(GO) run ./cmd/benchjson -compare $(BASELINE) BENCH_compare.json \
		-metric bytes/event -threshold $(JOURNAL_THRESHOLD)

# Serving-path load test: a self-hosted daemon under 200 concurrent
# submit/SSE/query clients. Fails if any SSE event is dropped or any job
# does not complete; writes LOADGEN_$(LABEL).json in the benchjson schema.
loadgen:
	$(GO) run ./cmd/fpgavoltd-loadgen -selfhost -clients 200 -jobs 200 \
		-label $(LABEL) -out LOADGEN_$(LABEL).json

# CI smoke: the full 200-client load plus a calibrated latency diff against
# the committed serving-path baseline. Latency quantiles are far noisier
# than micro-benchmarks, so the gate is wide — it exists to catch
# serving-path collapse (O(N) event appends, dropped events, stalled
# streams), not millisecond drift.
loadgen-smoke:
	$(GO) run ./cmd/fpgavoltd-loadgen -selfhost -clients 200 -jobs 200 \
		-label smoke -out LOADGEN_smoke.json
	$(GO) run ./cmd/benchjson -compare LOADGEN_pr6.json LOADGEN_smoke.json \
		-threshold 400 -calibrate Calibration
	$(GO) run ./cmd/benchjson -compare LOADGEN_pr6.json LOADGEN_smoke.json \
		-metric bytes/event -threshold 25

# CI federation smoke: three in-process daemons behind a federation
# coordinator, driven through the coordinator's /v1 API by 100 concurrent
# submit/SSE/query clients. The gate is the loadgen's delivery accounting
# over the coordinator's re-stamped streams: any gap in per-job Seq or
# merged-firehose GSeq density — an event lost in the fan-in — fails the run.
federation-smoke:
	$(GO) run ./cmd/fpgavoltd-loadgen -selfhost -federate 3 -clients 100 -jobs 100

# The same federated drive with the race detector on the whole stack —
# coordinator, daemons, and loadgen share one process, so this is the
# widest cross-daemon interleaving the repo can check (CI race job).
federation-smoke-race:
	$(GO) run -race ./cmd/fpgavoltd-loadgen -selfhost -federate 3 -clients 100 -jobs 100

# CI chaos smoke: the federated drive with deterministic fault injection on
# every coordinator→daemon request — added latency, connection resets,
# injected 503s, torn and stalled SSE streams, scheduled purely by
# CHAOS_SEED. The zero-drop delivery gate is unchanged: retries, breakers,
# and stream resumes must absorb every fault without losing a single event
# or failing a job.
chaos-smoke:
	$(GO) run ./cmd/fpgavoltd-loadgen -selfhost -federate 3 -clients 50 -jobs 60 -chaos $(CHAOS_SEED)

# Chaos under the race detector: fault-injection paths (breaker trips,
# stream resumes, degraded-journal markers) are exactly the interleavings a
# fair-weather run never exercises.
chaos-smoke-race:
	$(GO) run -race ./cmd/fpgavoltd-loadgen -selfhost -federate 3 -clients 50 -jobs 60 -chaos $(CHAOS_SEED)
