GO ?= go
LABEL ?= local
BENCH ?= .
BENCHTIME ?= 1x

.PHONY: build test race bench bench-smoke bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite with real timings.
bench:
	$(GO) test -run '^$$' -bench $(BENCH) -benchmem .

# One iteration of every benchmark in every package: proves they compile
# and run (CI job).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable baseline: writes BENCH_$(LABEL).json so perf can be
# tracked PR over PR (see README "Performance").
bench-json:
	$(GO) run ./cmd/benchjson -label $(LABEL) -bench '$(BENCH)' -benchtime $(BENCHTIME)
