GO ?= go
LABEL ?= local
BENCH ?= .
BENCHTIME ?= 1x
# The committed baseline bench-compare diffs against, and the selector and
# benchtime it was recorded with — keep all three in step when refreshing it.
BASELINE ?= BENCH_pr4.json
BASELINE_BENCH ?= FullPool|Fig03FaultPowerSweep|DieConstruction
BASELINE_BENCHTIME ?= 2s
THRESHOLD ?= 50

.PHONY: build test race bench bench-smoke bench-json bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite with real timings.
bench:
	$(GO) test -run '^$$' -bench $(BENCH) -benchmem .

# One iteration of every benchmark in every package: proves they compile
# and run (CI job).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable baseline: writes BENCH_$(LABEL).json so perf can be
# tracked PR over PR (see README "Performance").
bench-json:
	$(GO) run ./cmd/benchjson -label $(LABEL) -bench '$(BENCH)' -benchtime $(BENCHTIME)

# Re-run the committed baseline's benchmarks and fail on >$(THRESHOLD)%
# ns/op regressions against it (the CI bench-compare job). -count 3 folds
# to per-metric medians so one noisy run cannot fail the gate alone.
bench-compare:
	$(GO) run ./cmd/benchjson -label compare -bench '$(BASELINE_BENCH)' \
		-benchtime $(BASELINE_BENCHTIME) -count 3 -out BENCH_compare.json
	$(GO) run ./cmd/benchjson -compare $(BASELINE) BENCH_compare.json -threshold $(THRESHOLD)
