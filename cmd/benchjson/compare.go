package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Delta is one benchmark's old-vs-new reading of the compared metric.
type Delta struct {
	Name     string
	Old, New float64
	Pct      float64 // (New-Old)/Old × 100; positive = slower
}

// Comparison is the outcome of diffing two baselines on one metric.
type Comparison struct {
	Metric     string
	Threshold  float64 // percent; deltas above it are regressions
	Regressed  []Delta
	Improved   []Delta // deltas below -Threshold (informational)
	Steady     []Delta // within ±Threshold
	Missing    []string
	CPUChanged bool
	CalName    string  // calibration benchmark, "" when uncalibrated
	CalScale   float64 // newCal/oldCal on Metric; new values are divided by it
	Skip       string  // name substring excluded from the diff, "" = none
}

// compareBaselines diffs new against old on the given metric. Benchmarks
// present only in new are ignored (adding a benchmark must not fail the
// gate); benchmarks missing from new are reported so a silently deleted hot
// path cannot pass as "no regressions". Entries without the metric on
// either side are skipped — custom-metric-only benchmarks have nothing to
// diff.
//
// When calibrate names a benchmark, its metric ratio newCal/oldCal is taken
// as the machine-speed drift between the two runs and every new value is
// divided by it before classification: a uniformly slower runner does not
// flag regressions, and a uniformly faster one does not mask them. The
// calibration benchmark itself measures the machine, not the code, so it is
// never classified. Naming a benchmark that lacks the metric on either side
// is an error — silently falling back to an uncalibrated diff would defeat
// the point.
//
// skip, when non-empty, excludes benchmarks whose name contains it from the
// diff entirely — for benchmarks gated on a different metric by a separate
// compare invocation (e.g. JournalAppend's fsync-noisy ns/op is skipped by
// the ns/op pass and gated on bytes/event instead).
func compareBaselines(oldB, newB *Baseline, metric string, threshold float64, calibrate, skip string) (Comparison, error) {
	cmp := Comparison{
		Metric:     metric,
		Threshold:  threshold,
		CPUChanged: oldB.CPU != "" && newB.CPU != "" && oldB.CPU != newB.CPU,
		CalName:    calibrate,
		CalScale:   1,
		Skip:       skip,
	}
	byName := make(map[string]Result, len(newB.Results))
	for _, r := range newB.Results {
		byName[r.Name] = r
	}
	if calibrate != "" {
		scale, err := calibrationScale(oldB.Results, byName, metric, calibrate)
		if err != nil {
			return cmp, err
		}
		cmp.CalScale = scale
	}
	for _, o := range oldB.Results {
		if o.Name == calibrate || (skip != "" && strings.Contains(o.Name, skip)) {
			continue
		}
		n, ok := byName[o.Name]
		if !ok {
			cmp.Missing = append(cmp.Missing, o.Name)
			continue
		}
		ov, okO := o.Metrics[metric]
		nv, okN := n.Metrics[metric]
		if !okO || !okN || ov <= 0 {
			continue
		}
		d := Delta{Name: o.Name, Old: ov, New: nv / cmp.CalScale}
		d.Pct = 100 * (d.New - d.Old) / d.Old
		switch {
		case d.Pct > threshold:
			cmp.Regressed = append(cmp.Regressed, d)
		case d.Pct < -threshold:
			cmp.Improved = append(cmp.Improved, d)
		default:
			cmp.Steady = append(cmp.Steady, d)
		}
	}
	return cmp, nil
}

// calibrationScale resolves the machine-drift ratio from the named
// calibration benchmark, requiring a positive reading of the metric on both
// sides.
func calibrationScale(oldResults []Result, newByName map[string]Result, metric, name string) (float64, error) {
	var ov, nv float64
	for _, o := range oldResults {
		if o.Name == name {
			ov = o.Metrics[metric]
		}
	}
	if n, ok := newByName[name]; ok {
		nv = n.Metrics[metric]
	}
	if ov <= 0 || nv <= 0 {
		return 0, fmt.Errorf("calibration benchmark %q needs a positive %s reading in both baselines (old %g, new %g)",
			name, metric, ov, nv)
	}
	return nv / ov, nil
}

// render writes the human report. The exit decision stays with the caller.
func (c Comparison) render(w io.Writer, oldPath, newPath string) {
	fmt.Fprintf(w, "benchjson: comparing %s (old) vs %s (new) on %s, threshold %g%%\n",
		oldPath, newPath, c.Metric, c.Threshold)
	if c.CalName != "" {
		fmt.Fprintf(w, "calibrated by %s: machine scale ×%.3f (new values normalized)\n", c.CalName, c.CalScale)
	}
	if c.Skip != "" {
		fmt.Fprintf(w, "skipping benchmarks matching %q on this metric\n", c.Skip)
	}
	if c.CPUChanged && c.CalName == "" {
		fmt.Fprintf(w, "warning: baselines come from different CPUs — deltas include machine drift\n")
	}
	line := func(tag string, d Delta) {
		fmt.Fprintf(w, "  %-10s %-32s %14.1f -> %14.1f  %+7.1f%%\n", tag, d.Name, d.Old, d.New, d.Pct)
	}
	for _, d := range c.Regressed {
		line("REGRESSED", d)
	}
	for _, d := range c.Improved {
		line("improved", d)
	}
	for _, d := range c.Steady {
		line("ok", d)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(w, "  %-10s %-32s missing from the new baseline\n", "warning", name)
	}
	if len(c.Regressed) > 0 {
		fmt.Fprintf(w, "benchjson: %d benchmark(s) regressed more than %g%% on %s\n",
			len(c.Regressed), c.Threshold, c.Metric)
	} else {
		fmt.Fprintf(w, "benchjson: no %s regressions beyond %g%%\n", c.Metric, c.Threshold)
	}
}

// runCompare implements `benchjson -compare old.json new.json [-threshold
// pct] [-metric unit] [-calibrate bench] [-skip substr]`. Flags and
// positionals are scanned by hand so the documented order (paths before
// flags) parses. Returns the process exit code: 0 clean, 1 regressions
// found, 2 usage or read errors.
func runCompare(argv []string, w io.Writer) int {
	threshold := 10.0
	metric := "ns/op"
	calibrate := ""
	skip := ""
	var paths []string
	usage := func(msg string) int {
		fmt.Fprintf(os.Stderr, "benchjson: %s\nusage: benchjson -compare old.json new.json [-threshold pct] [-metric unit] [-calibrate bench] [-skip substr]\n", msg)
		return 2
	}
	for i := 0; i < len(argv); i++ {
		switch a := argv[i]; a {
		case "-compare", "--compare":
			// The mode marker itself.
		case "-threshold", "--threshold", "-metric", "--metric", "-calibrate", "--calibrate", "-skip", "--skip":
			i++
			if i >= len(argv) {
				return usage(a + " needs a value")
			}
			if a == "-metric" || a == "--metric" {
				metric = argv[i]
				continue
			}
			if a == "-calibrate" || a == "--calibrate" {
				calibrate = argv[i]
				continue
			}
			if a == "-skip" || a == "--skip" {
				skip = argv[i]
				continue
			}
			v, err := strconv.ParseFloat(argv[i], 64)
			if err != nil || v < 0 {
				return usage("bad threshold " + strconv.Quote(argv[i]))
			}
			threshold = v
		default:
			if len(a) > 0 && a[0] == '-' {
				return usage("unknown flag " + strconv.Quote(a))
			}
			paths = append(paths, a)
		}
	}
	if len(paths) != 2 {
		return usage(fmt.Sprintf("compare mode needs exactly two baseline files, got %d", len(paths)))
	}
	oldB, err := readBaseline(paths[0])
	if err != nil {
		return usage(err.Error())
	}
	newB, err := readBaseline(paths[1])
	if err != nil {
		return usage(err.Error())
	}
	cmp, err := compareBaselines(oldB, newB, metric, threshold, calibrate, skip)
	if err != nil {
		return usage(err.Error())
	}
	cmp.render(w, paths[0], paths[1])
	if len(cmp.Regressed) > 0 {
		return 1
	}
	return 0
}

// readBaseline loads and sanity-checks one baseline file.
func readBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Results) == 0 {
		return nil, fmt.Errorf("%s: baseline has no results", path)
	}
	return &b, nil
}
