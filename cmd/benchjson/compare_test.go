package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineOf(results ...Result) *Baseline {
	return &Baseline{Label: "t", Bench: ".", Benchtime: "1x", CPU: "cpu0", Results: results}
}

func res(name string, nsop float64) Result {
	return Result{Name: name, Iters: 1, Metrics: map[string]float64{"ns/op": nsop}}
}

func TestCompareBaselinesClassifiesDeltas(t *testing.T) {
	oldB := baselineOf(res("A", 100), res("B", 100), res("C", 100), res("Gone", 50))
	newB := baselineOf(res("A", 131), res("B", 105), res("C", 60), res("Added", 10))
	c, err := compareBaselines(oldB, newB, "ns/op", 30, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressed) != 1 || c.Regressed[0].Name != "A" {
		t.Fatalf("regressed %+v, want only A", c.Regressed)
	}
	if c.Regressed[0].Pct < 30.9 || c.Regressed[0].Pct > 31.1 {
		t.Fatalf("A delta %+v, want ~+31%%", c.Regressed[0])
	}
	if len(c.Improved) != 1 || c.Improved[0].Name != "C" {
		t.Fatalf("improved %+v, want only C", c.Improved)
	}
	if len(c.Steady) != 1 || c.Steady[0].Name != "B" {
		t.Fatalf("steady %+v, want only B", c.Steady)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "Gone" {
		t.Fatalf("missing %+v, want only Gone", c.Missing)
	}
}

func TestCompareBaselinesExactlyAtThresholdPasses(t *testing.T) {
	c, err := compareBaselines(baselineOf(res("A", 100)), baselineOf(res("A", 110)), "ns/op", 10, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressed) != 0 {
		t.Fatalf("a delta exactly at the threshold regressed: %+v", c.Regressed)
	}
}

func TestCompareBaselinesSkipsMissingMetric(t *testing.T) {
	oldB := baselineOf(Result{Name: "A", Metrics: map[string]float64{"MB/s": 5}})
	newB := baselineOf(res("A", 999))
	c, err := compareBaselines(oldB, newB, "ns/op", 10, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressed)+len(c.Improved)+len(c.Steady) != 0 {
		t.Fatalf("metric-less benchmark was diffed: %+v", c)
	}
}

func TestCompareCalibrationNormalizesMachineDrift(t *testing.T) {
	// The whole new run is 2× slower — including the calibration benchmark —
	// so nothing really regressed.
	oldB := baselineOf(res("A", 100), res("B", 100), res("Calibration", 50))
	newB := baselineOf(res("A", 200), res("B", 230), res("Calibration", 100))
	c, err := compareBaselines(oldB, newB, "ns/op", 10, "Calibration", "")
	if err != nil {
		t.Fatal(err)
	}
	if c.CalScale < 1.999 || c.CalScale > 2.001 {
		t.Fatalf("scale %g, want 2", c.CalScale)
	}
	// A is exactly machine drift → steady at ~0%; B is 2.3× raw, i.e. a real
	// +15%-beyond-drift regression the normalization must still catch.
	if len(c.Steady) != 1 || c.Steady[0].Name != "A" {
		t.Fatalf("steady %+v, want only A", c.Steady)
	}
	if p := c.Steady[0].Pct; p < -0.01 || p > 0.01 {
		t.Fatalf("A normalized delta %g%%, want ~0", p)
	}
	if len(c.Regressed) != 1 || c.Regressed[0].Name != "B" {
		t.Fatalf("regressed %+v, want only B", c.Regressed)
	}
	if p := c.Regressed[0].Pct; p < 14.9 || p > 15.1 {
		t.Fatalf("B normalized delta %g%%, want ~+15", p)
	}
	// The calibration benchmark measures the machine, never the code.
	for _, d := range append(append(c.Regressed, c.Improved...), c.Steady...) {
		if d.Name == "Calibration" {
			t.Fatalf("calibration benchmark was classified: %+v", d)
		}
	}
}

func TestCompareCalibrationDoesNotMaskRegressionOnFasterMachine(t *testing.T) {
	// New machine is 2× faster; A's raw time is unchanged, which is really a
	// 2× regression an uncalibrated diff would wave through as steady.
	oldB := baselineOf(res("A", 100), res("Calibration", 100))
	newB := baselineOf(res("A", 100), res("Calibration", 50))
	c, err := compareBaselines(oldB, newB, "ns/op", 25, "Calibration", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressed) != 1 || c.Regressed[0].Name != "A" {
		t.Fatalf("regressed %+v, want A flagged after normalization", c.Regressed)
	}
}

func TestCompareSkipExcludesMatchingNames(t *testing.T) {
	// JournalAppend-style entries regress wildly on ns/op but are gated on
	// another metric by a second invocation — -skip keeps them out of this
	// one, classification and missing-list both.
	oldB := baselineOf(res("A", 100), res("JournalAppend/preload=100", 100), res("JournalAppend/preload=10000", 100))
	newB := baselineOf(res("A", 100), res("JournalAppend/preload=100", 900))
	c, err := compareBaselines(oldB, newB, "ns/op", 10, "", "JournalAppend")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressed) != 0 || len(c.Missing) != 0 {
		t.Fatalf("skipped benchmarks leaked into the diff: %+v", c)
	}
	if len(c.Steady) != 1 || c.Steady[0].Name != "A" {
		t.Fatalf("steady %+v, want only A", c.Steady)
	}
}

func TestCompareCalibrationMissingIsAnError(t *testing.T) {
	oldB := baselineOf(res("A", 100), res("Calibration", 100))
	newB := baselineOf(res("A", 100))
	if _, err := compareBaselines(oldB, newB, "ns/op", 10, "Calibration", ""); err == nil {
		t.Fatal("missing calibration benchmark in new baseline did not error")
	}
	if _, err := compareBaselines(newB, oldB, "ns/op", 10, "Calibration", ""); err == nil {
		t.Fatal("missing calibration benchmark in old baseline did not error")
	}
}

func writeBaseline(t *testing.T, dir, name string, b *Baseline) string {
	t.Helper()
	blob, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBaseline(t, dir, "old.json", baselineOf(res("A", 100)))
	fastP := writeBaseline(t, dir, "fast.json", baselineOf(res("A", 104)))
	slowP := writeBaseline(t, dir, "slow.json", baselineOf(res("A", 200)))

	var out strings.Builder
	// The documented invocation order: paths first, flags after.
	if code := runCompare([]string{"-compare", oldP, fastP, "-threshold", "5"}, &out); code != 0 {
		t.Fatalf("clean compare exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no ns/op regressions") {
		t.Fatalf("clean compare output:\n%s", out.String())
	}

	out.Reset()
	if code := runCompare([]string{"-compare", oldP, slowP, "-threshold", "5"}, &out); code != 1 {
		t.Fatalf("synthetic regression exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("regression output lacks the REGRESSED marker:\n%s", out.String())
	}

	// Default threshold (10%) tolerates the fast file too.
	out.Reset()
	if code := runCompare([]string{"-compare", oldP, fastP}, &out); code != 0 {
		t.Fatalf("default-threshold compare exited %d", code)
	}

	// -calibrate end to end: both runs carry a calibration benchmark that is
	// 2× slower in new, which explains slow.json's 2× away entirely.
	calOldP := writeBaseline(t, dir, "cal-old.json", baselineOf(res("A", 100), res("Calibration", 100)))
	calNewP := writeBaseline(t, dir, "cal-new.json", baselineOf(res("A", 200), res("Calibration", 200)))
	out.Reset()
	if code := runCompare([]string{"-compare", calOldP, calNewP, "-threshold", "5", "-calibrate", "Calibration"}, &out); code != 0 {
		t.Fatalf("calibrated compare exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "calibrated by Calibration") {
		t.Fatalf("calibrated output lacks the calibration line:\n%s", out.String())
	}

	// Usage errors: wrong arity, unreadable file, bad threshold, missing
	// calibration benchmark.
	for _, argv := range [][]string{
		{"-compare", oldP},
		{"-compare", oldP, fastP, slowP},
		{"-compare", oldP, filepath.Join(dir, "nope.json")},
		{"-compare", oldP, fastP, "-threshold", "x"},
		{"-compare", oldP, fastP, "-bogus"},
		{"-compare", oldP, fastP, "-calibrate", "Calibration"},
		{"-compare", oldP, fastP, "-calibrate"},
	} {
		if code := runCompare(argv, &out); code != 2 {
			t.Fatalf("%v exited %d, want 2", argv, code)
		}
	}
}
