package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineOf(results ...Result) *Baseline {
	return &Baseline{Label: "t", Bench: ".", Benchtime: "1x", CPU: "cpu0", Results: results}
}

func res(name string, nsop float64) Result {
	return Result{Name: name, Iters: 1, Metrics: map[string]float64{"ns/op": nsop}}
}

func TestCompareBaselinesClassifiesDeltas(t *testing.T) {
	oldB := baselineOf(res("A", 100), res("B", 100), res("C", 100), res("Gone", 50))
	newB := baselineOf(res("A", 131), res("B", 105), res("C", 60), res("Added", 10))
	c := compareBaselines(oldB, newB, "ns/op", 30)
	if len(c.Regressed) != 1 || c.Regressed[0].Name != "A" {
		t.Fatalf("regressed %+v, want only A", c.Regressed)
	}
	if c.Regressed[0].Pct < 30.9 || c.Regressed[0].Pct > 31.1 {
		t.Fatalf("A delta %+v, want ~+31%%", c.Regressed[0])
	}
	if len(c.Improved) != 1 || c.Improved[0].Name != "C" {
		t.Fatalf("improved %+v, want only C", c.Improved)
	}
	if len(c.Steady) != 1 || c.Steady[0].Name != "B" {
		t.Fatalf("steady %+v, want only B", c.Steady)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "Gone" {
		t.Fatalf("missing %+v, want only Gone", c.Missing)
	}
}

func TestCompareBaselinesExactlyAtThresholdPasses(t *testing.T) {
	c := compareBaselines(baselineOf(res("A", 100)), baselineOf(res("A", 110)), "ns/op", 10)
	if len(c.Regressed) != 0 {
		t.Fatalf("a delta exactly at the threshold regressed: %+v", c.Regressed)
	}
}

func TestCompareBaselinesSkipsMissingMetric(t *testing.T) {
	oldB := baselineOf(Result{Name: "A", Metrics: map[string]float64{"MB/s": 5}})
	newB := baselineOf(res("A", 999))
	c := compareBaselines(oldB, newB, "ns/op", 10)
	if len(c.Regressed)+len(c.Improved)+len(c.Steady) != 0 {
		t.Fatalf("metric-less benchmark was diffed: %+v", c)
	}
}

func writeBaseline(t *testing.T, dir, name string, b *Baseline) string {
	t.Helper()
	blob, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldP := writeBaseline(t, dir, "old.json", baselineOf(res("A", 100)))
	fastP := writeBaseline(t, dir, "fast.json", baselineOf(res("A", 104)))
	slowP := writeBaseline(t, dir, "slow.json", baselineOf(res("A", 200)))

	var out strings.Builder
	// The documented invocation order: paths first, flags after.
	if code := runCompare([]string{"-compare", oldP, fastP, "-threshold", "5"}, &out); code != 0 {
		t.Fatalf("clean compare exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no ns/op regressions") {
		t.Fatalf("clean compare output:\n%s", out.String())
	}

	out.Reset()
	if code := runCompare([]string{"-compare", oldP, slowP, "-threshold", "5"}, &out); code != 1 {
		t.Fatalf("synthetic regression exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("regression output lacks the REGRESSED marker:\n%s", out.String())
	}

	// Default threshold (10%) tolerates the fast file too.
	out.Reset()
	if code := runCompare([]string{"-compare", oldP, fastP}, &out); code != 0 {
		t.Fatalf("default-threshold compare exited %d", code)
	}

	// Usage errors: wrong arity, unreadable file, bad threshold.
	for _, argv := range [][]string{
		{"-compare", oldP},
		{"-compare", oldP, fastP, slowP},
		{"-compare", oldP, filepath.Join(dir, "nope.json")},
		{"-compare", oldP, fastP, "-threshold", "x"},
		{"-compare", oldP, fastP, "-bogus"},
	} {
		if code := runCompare(argv, &out); code != 2 {
			t.Fatalf("%v exited %d, want 2", argv, code)
		}
	}
}
