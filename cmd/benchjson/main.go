// Command benchjson runs the repository's benchmark suite and writes the
// parsed results as a JSON baseline (BENCH_<label>.json by default), so the
// performance trajectory of the hot paths can be tracked PR over PR and
// compared mechanically instead of by eyeballing `go test -bench` output.
//
// Usage:
//
//	go run ./cmd/benchjson -label pr4 -bench 'FullPool|Fig03' -benchtime 2s
//	make bench-json LABEL=pr4
//
// The output schema is one object per benchmark with every reported metric
// (ns/op, B/op, allocs/op, MB/s, and custom b.ReportMetric units) keyed by
// unit.
//
// Compare mode diffs two baselines and exits non-zero when any benchmark
// regressed by more than the threshold — the CI gate that keeps committed
// baselines honest:
//
//	go run ./cmd/benchjson -compare BENCH_pr4.json BENCH_new.json -threshold 50
//	make bench-compare
//
// Only regressions on the compared metric (default ns/op) fail; new
// benchmarks are ignored and ones missing from the new baseline are
// reported as warnings.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's report. With -count > 1, repeated runs of the
// same benchmark are folded into a single entry (per-metric median, summed
// iterations, Samples recording the run count), so consumers can always key
// results by name.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Samples int                `json:"samples,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline is the file-level schema.
type Baseline struct {
	Label     string   `json:"label"`
	Goos      string   `json:"goos,omitempty"`
	Goarch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	// Compare mode is dispatched before flag.Parse so the documented
	// invocation shape — `-compare old.json new.json [-threshold pct]` —
	// works as written (the flag package would stop flag scanning at the
	// first positional argument).
	for _, a := range os.Args[1:] {
		if a == "-compare" || a == "--compare" {
			os.Exit(runCompare(os.Args[1:], os.Stdout))
		}
	}
	label := flag.String("label", "local", "baseline label; also names the default output file")
	bench := flag.String("bench", ".", "benchmark selector passed to -bench")
	benchtime := flag.String("benchtime", "1x", "passed to -benchtime")
	count := flag.Int("count", 1, "passed to -count")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "", "output path (default BENCH_<label>.json)")
	flag.Parse()

	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), "-benchmem", *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	base := Baseline{Label: *label, Bench: *bench, Benchtime: *benchtime}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			base.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			base.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				base.Results = append(base.Results, r)
			}
		}
	}
	if len(base.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks matched")
		os.Exit(1)
	}
	base.Results = foldRepeats(base.Results)
	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(base.Results), path)
}

// foldRepeats merges repeated entries of one benchmark (from -count > 1)
// into a single Result per name, preserving first-seen order: metrics take
// the per-metric median across runs, iterations are summed, and Samples
// records how many runs were folded.
func foldRepeats(results []Result) []Result {
	byName := make(map[string][]Result, len(results))
	var order []string
	for _, r := range results {
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		runs := byName[name]
		if len(runs) == 1 {
			out = append(out, runs[0])
			continue
		}
		folded := Result{Name: name, Samples: len(runs), Metrics: make(map[string]float64)}
		byUnit := make(map[string][]float64)
		for _, r := range runs {
			folded.Iters += r.Iters
			for unit, v := range r.Metrics {
				byUnit[unit] = append(byUnit[unit], v)
			}
		}
		for unit, vs := range byUnit {
			sort.Float64s(vs)
			mid := len(vs) / 2
			if len(vs)%2 == 0 {
				folded.Metrics[unit] = (vs[mid-1] + vs[mid]) / 2
			} else {
				folded.Metrics[unit] = vs[mid]
			}
		}
		out = append(out, folded)
	}
	return out
}

// parseBenchLine parses one testing output line of the shape
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   2 allocs/op   3.14 custom-unit
//
// into a Result. Metric values and units come in pairs after the iteration
// count.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix testing appends.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: strings.TrimPrefix(name, "Benchmark"), Iters: iters,
		Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
