// Command fpgavolt drives the Section II characterization flows on a
// simulated board, mirroring the paper's host-side tooling.
//
// Usage:
//
//	fpgavolt sweep      -platform VC707 [-brams N] [-runs N] [-pattern ffff] [-temp 50]
//	fpgavolt thresholds -platform VC707 [-brams N]
//	fpgavolt patterns   -platform VC707 [-brams N] [-runs N]
//	fpgavolt temps      -platform VC707 [-brams N] [-runs N]
//	fpgavolt fvm        -platform VC707 [-brams N] [-runs N] [-save fvm.json] [-classes]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		platformName = fs.String("platform", "VC707", "VC707, ZC702, KC705-A, or KC705-B")
		brams        = fs.Int("brams", 200, "simulated BRAM pool size (0 = full chip)")
		runs         = fs.Int("runs", 20, "read passes per voltage level")
		pattern      = fs.String("pattern", "ffff", "initial data pattern (hex word)")
		tempC        = fs.Float64("temp", 50, "on-board temperature in degC")
		save         = fs.String("save", "", "write the FVM as JSON to this file")
		classes      = fs.Bool("classes", false, "render the k-means class map instead of the heatmap")
		workers      = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	p, err := fpgavolt.PlatformByName(*platformName)
	check(err)
	if *brams > 0 {
		p = p.Scaled(*brams)
	}
	b := fpgavolt.OpenBoard(p)

	switch cmd {
	case "sweep":
		pat, err := strconv.ParseUint(*pattern, 16, 16)
		check(err)
		opts := fpgavolt.SweepOptions{
			Runs: *runs, Pattern: uint16(pat), OnBoardC: *tempC, Workers: *workers,
		}
		if pat == 0 {
			opts.ZeroFill = true
			opts.PatternName = "16'h0000"
		}
		s, err := fpgavolt.Characterize(b, opts)
		check(err)
		t := report.NewTable(
			fmt.Sprintf("%s undervolting sweep (pattern %s, %.0fC)", p.Name, s.PatternName, s.OnBoardC),
			"VCCBRAM (V)", "median faults", "faults/Mbit", "run stddev", "BRAM power (W)")
		for _, l := range s.Levels {
			t.AddRow(report.F(l.V, 2), report.F(l.MedianFaults, 0),
				report.F(l.FaultsPerMbit, 1), report.F(l.Stats.StdDev, 2),
				report.F(l.BRAMPowerW, 3))
		}
		t.Render(os.Stdout)

	case "thresholds":
		thB, err := fpgavolt.DiscoverBRAMThresholds(b, 2)
		check(err)
		thI, err := fpgavolt.DiscoverIntThresholds(b)
		check(err)
		t := report.NewTable(p.Name+" operating thresholds",
			"rail", "Vnom", "Vmin", "Vcrash", "guardband")
		t.AddRow("VCCBRAM", report.F(thB.Vnom, 2), report.F(thB.Vmin, 2),
			report.F(thB.Vcrash, 2), report.Pct(thB.GuardbandFrac(), 1))
		t.AddRow("VCCINT", report.F(thI.Vnom, 2), report.F(thI.Vmin, 2),
			report.F(thI.Vcrash, 2), report.Pct(thI.GuardbandFrac(), 1))
		t.Render(os.Stdout)

	case "patterns":
		results, err := fpgavolt.PatternStudy(b, p.Cal.Vcrash, []fpgavolt.SweepOptions{
			{Pattern: 0xFFFF},
			{Pattern: 0xAAAA},
			{Pattern: 0x5555},
			{RandomFill: true},
			{ZeroFill: true, PatternName: "16'h0000"},
		}, *runs)
		check(err)
		t := report.NewTable(p.Name+" data-pattern study @ Vcrash",
			"pattern", "faults/Mbit", "1->0 share")
		for _, r := range results {
			t.AddRow(r.Name, report.F(r.FaultsPerMbit, 1), report.Pct(r.Flip10Share, 2))
		}
		t.Render(os.Stdout)

	case "temps":
		sweeps, err := fpgavolt.TemperatureStudy(b, []float64{50, 60, 70, 80},
			fpgavolt.SweepOptions{Runs: *runs, Workers: *workers})
		check(err)
		t := report.NewTable(p.Name+" temperature study (faults/Mbit at Vcrash)",
			"on-board temp", "faults/Mbit")
		for i, tc := range []float64{50, 60, 70, 80} {
			t.AddRow(fmt.Sprintf("%.0fC", tc), report.F(sweeps[i].Final().FaultsPerMbit, 1))
		}
		t.Render(os.Stdout)

	case "fvm":
		m, err := fpgavolt.ExtractFVM(b, *runs, *workers)
		check(err)
		if *classes {
			out, err := m.RenderClasses()
			check(err)
			fmt.Print(out)
		} else {
			fmt.Print(m.Render())
		}
		sum := m.Summary()
		fmt.Printf("zero-fault BRAMs: %s  max rate: %s  mean rate: %s\n",
			report.Pct(m.ZeroShare(), 1), report.Pct(sum.Max, 2), report.Pct(sum.Mean, 3))
		if *save != "" {
			f, err := os.Create(*save)
			check(err)
			check(m.Save(f))
			check(f.Close())
			fmt.Println("saved FVM to", *save)
		}

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fpgavolt <sweep|thresholds|patterns|temps|fvm> [flags]
run "fpgavolt <cmd> -h" for flags`)
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgavolt:", err)
		os.Exit(1)
	}
}
