// Command fpgavolt drives the Section II characterization flows on a
// simulated board, mirroring the paper's host-side tooling.
//
// Usage:
//
//	fpgavolt sweep      -platform VC707 [-brams N] [-runs N] [-pattern ffff] [-temp 50]
//	fpgavolt thresholds -platform VC707 [-brams N]
//	fpgavolt patterns   -platform VC707 [-brams N] [-runs N]
//	fpgavolt temps      -platform VC707 [-brams N] [-runs N]
//	fpgavolt fvm        -platform VC707 [-brams N] [-runs N] [-save fvm.json] [-classes]
//	fpgavolt campaign   [-platforms all] [-boards N] [-brams N] [-runs N] [-repeat N] [-store DIR]
//	fpgavolt mitigation [-platforms all] [-boards N] [-brams N] [-arms a,b,..] [-iso-energy]
//
// The campaign subcommand shards a characterization sweep across a whole
// fleet of boards (any mix of platforms, distinct serials per replica),
// streams per-board progress, and reports the cross-chip variation spread;
// with -repeat > 1 the later rounds are served from the FVM cache.
//
// The mitigation subcommand races the paper's protection schemes —
// unprotected, SECDED ECC scrubbing, ICBP placement, and guardbanded DVFS —
// down one shared voltage ladder on every fleet board and reports each arm's
// minimum safe voltage and energy savings, per board and across chips.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "campaign" {
		runCampaignCmd(ctx, os.Args[2:])
		return
	}
	if cmd == "mitigation" {
		runMitigationCmd(ctx, os.Args[2:])
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		platformName = fs.String("platform", "VC707", "VC707, ZC702, KC705-A, or KC705-B")
		brams        = fs.Int("brams", 200, "simulated BRAM pool size (0 = full chip)")
		runs         = fs.Int("runs", 20, "read passes per voltage level")
		pattern      = fs.String("pattern", "ffff", "initial data pattern (hex word)")
		tempC        = fs.Float64("temp", 50, "on-board temperature in degC")
		save         = fs.String("save", "", "write the FVM as JSON to this file")
		classes      = fs.Bool("classes", false, "render the k-means class map instead of the heatmap")
		workers      = fs.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	p, err := fpgavolt.PlatformByName(*platformName)
	check(err)
	if *brams > 0 {
		p = p.Scaled(*brams)
	}
	b := fpgavolt.OpenBoard(p)

	switch cmd {
	case "sweep":
		pat, err := strconv.ParseUint(*pattern, 16, 16)
		check(err)
		opts := fpgavolt.SweepOptions{
			Runs: *runs, Pattern: uint16(pat), OnBoardC: *tempC, Workers: *workers,
		}
		if pat == 0 {
			opts.ZeroFill = true
			opts.PatternName = "16'h0000"
		}
		s, err := fpgavolt.Characterize(ctx, b, opts)
		check(err)
		t := report.NewTable(
			fmt.Sprintf("%s undervolting sweep (pattern %s, %.0fC)", p.Name, s.PatternName, s.OnBoardC),
			"VCCBRAM (V)", "median faults", "faults/Mbit", "run stddev", "BRAM power (W)")
		for _, l := range s.Levels {
			t.AddRow(report.F(l.V, 2), report.F(l.MedianFaults, 0),
				report.F(l.FaultsPerMbit, 1), report.F(l.Stats.StdDev, 2),
				report.F(l.BRAMPowerW, 3))
		}
		t.Render(os.Stdout)

	case "thresholds":
		thB, err := fpgavolt.DiscoverBRAMThresholds(ctx, b, 2)
		check(err)
		thI, err := fpgavolt.DiscoverIntThresholds(ctx, b)
		check(err)
		t := report.NewTable(p.Name+" operating thresholds",
			"rail", "Vnom", "Vmin", "Vcrash", "guardband")
		t.AddRow("VCCBRAM", report.F(thB.Vnom, 2), report.F(thB.Vmin, 2),
			report.F(thB.Vcrash, 2), report.Pct(thB.GuardbandFrac(), 1))
		t.AddRow("VCCINT", report.F(thI.Vnom, 2), report.F(thI.Vmin, 2),
			report.F(thI.Vcrash, 2), report.Pct(thI.GuardbandFrac(), 1))
		t.Render(os.Stdout)

	case "patterns":
		results, err := fpgavolt.PatternStudy(ctx, b, p.Cal.Vcrash, []fpgavolt.SweepOptions{
			{Pattern: 0xFFFF},
			{Pattern: 0xAAAA},
			{Pattern: 0x5555},
			{RandomFill: true},
			{ZeroFill: true, PatternName: "16'h0000"},
		}, *runs)
		check(err)
		t := report.NewTable(p.Name+" data-pattern study @ Vcrash",
			"pattern", "faults/Mbit", "1->0 share")
		for _, r := range results {
			t.AddRow(r.Name, report.F(r.FaultsPerMbit, 1), report.Pct(r.Flip10Share, 2))
		}
		t.Render(os.Stdout)

	case "temps":
		sweeps, err := fpgavolt.TemperatureStudy(ctx, b, []float64{50, 60, 70, 80},
			fpgavolt.SweepOptions{Runs: *runs, Workers: *workers})
		check(err)
		t := report.NewTable(p.Name+" temperature study (faults/Mbit at Vcrash)",
			"on-board temp", "faults/Mbit")
		for i, tc := range []float64{50, 60, 70, 80} {
			t.AddRow(fmt.Sprintf("%.0fC", tc), report.F(sweeps[i].Final().FaultsPerMbit, 1))
		}
		t.Render(os.Stdout)

	case "fvm":
		m, err := fpgavolt.ExtractFVM(ctx, b, *runs, *workers)
		check(err)
		if *classes {
			out, err := m.RenderClasses()
			check(err)
			fmt.Print(out)
		} else {
			fmt.Print(m.Render())
		}
		sum := m.Summary()
		fmt.Printf("zero-fault BRAMs: %s  max rate: %s  mean rate: %s\n",
			report.Pct(m.ZeroShare(), 1), report.Pct(sum.Max, 2), report.Pct(sum.Mean, 3))
		if *save != "" {
			f, err := os.Create(*save)
			check(err)
			check(m.Save(f))
			check(f.Close())
			fmt.Println("saved FVM to", *save)
		}

	default:
		usage()
	}
}

// runCampaignCmd shards a characterization campaign across a fleet and
// reports the cross-chip spread, repeating the campaign to exercise the FVM
// cache.
func runCampaignCmd(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	var (
		platforms = fs.String("platforms", "all", `comma-separated platform names, or "all"`)
		boards    = fs.Int("boards", 8, "fleet size; replicas are spread across the platform mix")
		brams     = fs.Int("brams", 120, "simulated BRAM pool size per board (0 = full chips)")
		runs      = fs.Int("runs", 10, "read passes per voltage level")
		workers   = fs.Int("workers", 0, "concurrent boards (0 = all CPUs)")
		repeat    = fs.Int("repeat", 2, "campaign repetitions (>1 demonstrates the FVM cache)")
		quiet     = fs.Bool("quiet", false, "suppress per-board progress events")
		storeDir  = fs.String("store", "", "durable FVM store directory (empty = in-memory only)")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	fleetOpts := fpgavolt.FleetOptions{Workers: *workers}
	if *storeDir != "" {
		st, err := fpgavolt.OpenDiskStore(*storeDir)
		check(err)
		// Close flushes the store index; without it every later open
		// would pay a full object-tree rescan to heal the staleness.
		defer st.Close()
		fleetOpts.Store = st
		fmt.Printf("FVM store: %s (characterizations persist across runs)\n", *storeDir)
	}

	var mix []fpgavolt.Platform
	if *platforms == "all" {
		mix = fpgavolt.Platforms()
	} else {
		for _, name := range strings.Split(*platforms, ",") {
			p, err := fpgavolt.PlatformByName(strings.TrimSpace(name))
			check(err)
			mix = append(mix, p)
		}
	}
	if *boards < 1 {
		check(fmt.Errorf("campaign needs at least one board"))
	}
	var inventory []fpgavolt.Platform
	for i, p := range mix {
		if *brams > 0 {
			p = p.Scaled(*brams)
		}
		// Spread the fleet across the mix; the first platforms absorb the
		// remainder.
		n := *boards / len(mix)
		if i < *boards%len(mix) {
			n++
		}
		inventory = append(inventory, p.Replicas(n)...)
	}
	fleet := fpgavolt.NewFleet(inventory, fleetOpts)
	fmt.Printf("fleet: %d boards across %d platform(s), %d BRAMs each\n",
		fleet.Size(), len(mix), *brams)

	for rep := 1; rep <= *repeat; rep++ {
		events := make(chan fpgavolt.FleetEvent, 16)
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for ev := range events {
				if *quiet {
					continue
				}
				switch ev.Kind {
				case fpgavolt.FleetEventStart:
					fmt.Printf("  [%2d] %-8s S/N %-22s characterizing...\n", ev.Board, ev.Platform, ev.Serial)
				case fpgavolt.FleetEventDone:
					src := "measured"
					if ev.FromCache {
						src = "cache hit"
					}
					fmt.Printf("  [%2d] %-8s S/N %-22s done (%s, %.1f faults/Mbit)\n",
						ev.Board, ev.Platform, ev.Serial, src, ev.Faults)
				case fpgavolt.FleetEventFailed:
					fmt.Printf("  [%2d] %-8s S/N %-22s FAILED: %v\n", ev.Board, ev.Platform, ev.Serial, ev.Err)
				}
			}
		}()
		start := time.Now()
		res, err := fpgavolt.RunCampaign(ctx, fleet, fpgavolt.Campaign{
			Kind:   fpgavolt.CampaignCharacterization,
			Sweep:  fpgavolt.SweepOptions{Runs: *runs},
			Events: events,
		})
		close(events)
		<-drained
		check(err)
		fmt.Printf("campaign %d/%d finished in %v (%d/%d boards, %d cache hits)\n",
			rep, *repeat, time.Since(start).Round(time.Millisecond),
			res.Agg.Completed, res.Agg.Boards, res.Agg.CacheHits)

		t := report.NewTable(fmt.Sprintf("campaign %d: per-board results", rep),
			"board", "platform", "S/N", "faults/Mbit", "Vmin", "Vcrash", "zero-fault", "source")
		for _, br := range res.Boards {
			if br.Err != nil {
				t.AddRow(fmt.Sprintf("%d", br.Board), br.Platform, br.Serial, "error: "+br.Err.Error(), "", "", "", "")
				continue
			}
			src := "measured"
			if br.FromCache {
				src = "cache"
			}
			t.AddRow(fmt.Sprintf("%d", br.Board), br.Platform, br.Serial,
				report.F(br.Sweep.Final().FaultsPerMbit, 1),
				report.F(fpgavolt.ObservedVmin(br.Sweep), 2), report.F(br.Sweep.Final().V, 2),
				report.Pct(br.FVM.ZeroShare(), 1), src)
		}
		t.Render(os.Stdout)

		agg := report.NewTable(fmt.Sprintf("campaign %d: cross-chip variation", rep),
			"metric", "min", "median", "max")
		agg.AddRow("faults/Mbit @ deepest level",
			report.F(res.Agg.FaultsPerMbit.Min, 1), report.F(res.Agg.FaultsPerMbit.Median, 1),
			report.F(res.Agg.FaultsPerMbit.Max, 1))
		agg.AddRow("observed Vmin (V)",
			report.F(res.Agg.ObservedVmin.Min, 2), report.F(res.Agg.ObservedVmin.Median, 2),
			report.F(res.Agg.ObservedVmin.Max, 2))
		agg.AddRow("observed Vcrash (V)",
			report.F(res.Agg.ObservedVcrash.Min, 2), report.F(res.Agg.ObservedVcrash.Median, 2),
			report.F(res.Agg.ObservedVcrash.Max, 2))
		agg.AddRow("zero-fault BRAM share",
			report.Pct(res.Agg.ZeroFaultShare.Min, 1), report.Pct(res.Agg.ZeroFaultShare.Median, 1),
			report.Pct(res.Agg.ZeroFaultShare.Max, 1))
		agg.AddRow("max/min spread", "", report.F(res.Agg.SpreadRatio, 2)+"x", "")
		agg.Render(os.Stdout)
	}
	cs := fleet.CacheStats()
	fmt.Printf("FVM cache: %d hits, %d misses (%.0f%% hit rate), %d/%d entries\n",
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Len, cs.Cap)
	if *storeDir != "" {
		fmt.Printf("FVM store: %d hits served from disk, %d errors\n", cs.StoreHits, cs.StoreErrors)
	}
}

// runMitigationCmd races the mitigation arms across a fleet and reports each
// arm's minimum safe voltage and energy savings.
func runMitigationCmd(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("mitigation", flag.ExitOnError)
	var (
		platforms = fs.String("platforms", "all", `comma-separated platform names, or "all"`)
		boards    = fs.Int("boards", 4, "fleet size; replicas are spread across the platform mix")
		brams     = fs.Int("brams", 48, "simulated BRAM pool size per board (0 = full chips)")
		arms      = fs.String("arms", "", "comma-separated arm subset (empty = all four)")
		isoEnergy = fs.Bool("iso-energy", false, "DVFS arm matches the undervolted energy instead of holding a guardband")
		workers   = fs.Int("workers", 0, "concurrent boards (0 = all CPUs)")
		quiet     = fs.Bool("quiet", false, "suppress per-level progress events")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	var mix []fpgavolt.Platform
	if *platforms == "all" {
		mix = fpgavolt.Platforms()
	} else {
		for _, name := range strings.Split(*platforms, ",") {
			p, err := fpgavolt.PlatformByName(strings.TrimSpace(name))
			check(err)
			mix = append(mix, p)
		}
	}
	if *boards < 1 {
		check(fmt.Errorf("mitigation needs at least one board"))
	}
	var inventory []fpgavolt.Platform
	for i, p := range mix {
		if *brams > 0 {
			p = p.Scaled(*brams)
		}
		n := *boards / len(mix)
		if i < *boards%len(mix) {
			n++
		}
		inventory = append(inventory, p.Replicas(n)...)
	}
	fleet := fpgavolt.NewFleet(inventory, fpgavolt.FleetOptions{Workers: *workers})
	fmt.Printf("fleet: %d boards across %d platform(s), %d BRAMs each\n",
		fleet.Size(), len(mix), *brams)

	var armList []string
	if *arms != "" {
		for _, a := range strings.Split(*arms, ",") {
			armList = append(armList, strings.TrimSpace(a))
		}
	}
	events := make(chan fpgavolt.FleetEvent, 16)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			if *quiet {
				continue
			}
			switch ev.Kind {
			case fpgavolt.FleetEventStart:
				fmt.Printf("  [%2d] %-8s S/N %-22s racing arms...\n", ev.Board, ev.Platform, ev.Serial)
			case fpgavolt.FleetEventLevel:
				fmt.Printf("  [%2d] %-8s %.2f V (%.0f%% of campaign)\n", ev.Board, ev.Platform, ev.V, ev.Progress)
			case fpgavolt.FleetEventDone:
				fmt.Printf("  [%2d] %-8s S/N %-22s done (%.1f faults/Mbit unprotected)\n",
					ev.Board, ev.Platform, ev.Serial, ev.Faults)
			case fpgavolt.FleetEventFailed:
				fmt.Printf("  [%2d] %-8s S/N %-22s FAILED: %v\n", ev.Board, ev.Platform, ev.Serial, ev.Err)
			}
		}
	}()
	start := time.Now()
	res, err := fpgavolt.RunCampaign(ctx, fleet, fpgavolt.Campaign{
		Kind:         fpgavolt.CampaignMitigation,
		MitArms:      armList,
		MitIsoEnergy: *isoEnergy,
		Events:       events,
	})
	close(events)
	<-drained
	check(err)
	fmt.Printf("mitigation campaign finished in %v (%d/%d boards)\n",
		time.Since(start).Round(time.Millisecond), res.Agg.Completed, res.Agg.Boards)

	t := report.NewTable("per-board mitigation arms",
		"board", "platform", "arm", "min safe V", "energy savings", "deepest faults/Mbit")
	for _, br := range res.Boards {
		if br.Err != nil {
			t.AddRow(fmt.Sprintf("%d", br.Board), br.Platform, "error: "+br.Err.Error(), "", "", "")
			continue
		}
		for _, arm := range br.Mitigation {
			deepest := ""
			if n := len(arm.Levels); n > 0 {
				deepest = report.F(arm.Levels[n-1].FaultsPerMbit, 1)
			}
			t.AddRow(fmt.Sprintf("%d", br.Board), br.Platform, arm.Arm,
				report.F(arm.MinSafeV, 2), report.Pct(arm.EnergySavings, 1), deepest)
		}
	}
	t.Render(os.Stdout)

	agg := report.NewTable("cross-chip mitigation spread",
		"arm", "boards", "min safe V (min/med/max)", "energy savings (min/med/max)")
	for _, ma := range res.Agg.Mitigation {
		agg.AddRow(ma.Arm, fmt.Sprintf("%d", ma.Boards),
			fmt.Sprintf("%s / %s / %s", report.F(ma.MinSafeV.Min, 2),
				report.F(ma.MinSafeV.Median, 2), report.F(ma.MinSafeV.Max, 2)),
			fmt.Sprintf("%s / %s / %s", report.Pct(ma.EnergySavings.Min, 1),
				report.Pct(ma.EnergySavings.Median, 1), report.Pct(ma.EnergySavings.Max, 1)))
	}
	agg.Render(os.Stdout)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fpgavolt <sweep|thresholds|patterns|temps|fvm|campaign|mitigation> [flags]
run "fpgavolt <cmd> -h" for flags`)
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgavolt:", err)
		os.Exit(1)
	}
}
