// Command nnvolt runs the Section III pipeline: generate a benchmark, train
// the classifier, quantize it, deploy it into a simulated board's BRAMs, and
// sweep VCCBRAM — optionally with the ICBP placement mitigation.
//
// Usage:
//
//	nnvolt -benchmark mnist                 # default placement, reduced scale
//	nnvolt -benchmark reuters -icbp         # ICBP-protected placement
//	nnvolt -benchmark mnist -full           # paper topology (slow)
//	nnvolt -benchmark mnist -power          # include the Fig. 10 breakdown
//
// With -submit, the network is still trained and quantized locally, but the
// sweep runs on a remote fpgavoltd daemon: the quantized words and the test
// set are serialized into the versioned nn wire format and shipped as an
// nn-inference campaign, streaming progress back over SSE.
//
//	nnvolt -benchmark mnist -submit http://fpgavoltd:8080 -boards 4
//
// Training is the slow step, so the quantized network can be reused across
// runs: -save-net writes the versioned wire document after quantization,
// and -net loads one instead of training — the same document an
// nn-inference campaign ships, so a saved network is also a ready-made
// campaign payload.
//
//	nnvolt -benchmark mnist -save-net mnist.net.json
//	nnvolt -benchmark mnist -net mnist.net.json -icbp
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		benchmark = flag.String("benchmark", "mnist", "mnist, forest, or reuters")
		icbp      = flag.Bool("icbp", false, "protect the last layer with ICBP constraints")
		full      = flag.Bool("full", false, "paper-scale topology and board")
		brams     = flag.Int("brams", 200, "simulated BRAM pool size (ignored with -full)")
		train     = flag.Int("train", 4000, "training samples")
		test      = flag.Int("test", 800, "test samples")
		epochs    = flag.Int("epochs", 10, "training epochs")
		seed      = flag.Uint64("seed", 1, "placement seed")
		power     = flag.Bool("power", false, "print the on-chip power breakdown")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		submit    = flag.String("submit", "", "fpgavoltd base URL: run the sweep remotely as an nn-inference campaign")
		platName  = flag.String("platform", "VC707", "board model of a -submit campaign")
		boards    = flag.Int("boards", 1, "fleet size of a -submit campaign")
		netIn     = flag.String("net", "", "load a quantized network wire document instead of training")
		saveNet   = flag.String("save-net", "", "write the quantized network's wire document to this file")
	)
	flag.Parse()
	if *submit != "" && *icbp {
		check(fmt.Errorf("-icbp needs the in-process FVM and cannot ride -submit"))
	}
	if *submit != "" && *power {
		check(fmt.Errorf("-power reads the local accelerator's power model and cannot ride -submit"))
	}

	opts := fpgavolt.DatasetOptions{TrainSamples: *train, TestSamples: *test}
	if !*full {
		switch *benchmark {
		case "mnist":
			opts.Features = 196
		case "reuters":
			opts.Features = 400
		}
	}
	ds, err := fpgavolt.Benchmark(*benchmark, opts)
	check(err)

	var q *fpgavolt.Quantized
	if *netIn != "" {
		raw, err := os.ReadFile(*netIn)
		check(err)
		q, err = fpgavolt.UnmarshalQuantized(raw)
		check(err)
		// The saved network must still fit the benchmark it is deployed
		// against: wrong feature width or class count would fault on every
		// sample, not fail loudly.
		if q.Topology[0] != ds.NumFeatures || q.Topology[len(q.Topology)-1] != ds.NumClasses {
			check(fmt.Errorf("network %s has topology %v; benchmark %s needs %d features and %d classes",
				*netIn, q.Topology, ds.Name, ds.NumFeatures, ds.NumClasses))
		}
		fmt.Printf("loaded quantized network %v from %s, weight-bit sparsity %s zeros\n",
			q.Topology, *netIn, report.Pct(1-q.OneBitFraction(), 1))
	} else {
		topo := []int{ds.NumFeatures, 128, 64, 32, 16, ds.NumClasses}
		if *full {
			topo = []int{ds.NumFeatures, 1024, 512, 256, 128, ds.NumClasses}
		}
		fmt.Printf("training %v on %s (%d train / %d test samples)...\n",
			topo, ds.Name, len(ds.TrainX), len(ds.TestX))
		net, err := fpgavolt.NewNetwork(topo, "nnvolt:"+*benchmark)
		check(err)
		loss, err := net.Train(ds.TrainX, ds.TrainY, fpgavolt.TrainOptions{
			Epochs: *epochs, LearnRate: 0.3, Workers: *workers, Seed: "nnvolt:" + *benchmark,
		})
		check(err)
		q = fpgavolt.QuantizeNetwork(net)
		fmt.Printf("final training loss %.4f, weight-bit sparsity %s zeros\n",
			loss, report.Pct(1-q.OneBitFraction(), 1))
	}
	if *saveNet != "" {
		doc, err := q.MarshalWire()
		check(err)
		check(os.WriteFile(*saveNet, doc, 0o644))
		fmt.Printf("saved quantized network (wire v%d) to %s\n", fpgavolt.WireVersion, *saveNet)
	}

	if *submit != "" {
		// -brams is "ignored with -full" on the local path; the remote
		// fleet must match, or a paper-scale network would never place on
		// 200-BRAM boards (spec BRAMs 0 = the full chip).
		remoteBRAMs := *brams
		if *full {
			remoteBRAMs = 0
		}
		submitRemote(ctx, *submit, *platName, *boards, remoteBRAMs, q, ds, *seed)
		return
	}

	p := fpgavolt.VC707()
	if !*full {
		p = p.Scaled(*brams)
	}
	b := fpgavolt.OpenBoard(p)

	var cs *fpgavolt.ConstraintSet
	if *icbp {
		fmt.Println("extracting FVM for ICBP constraints...")
		m, err := fpgavolt.ExtractFVM(ctx, b, 10, *workers)
		check(err)
		cs, err = fpgavolt.ICBPConstraints(m, q, fpgavolt.ICBPOptions{})
		check(err)
	}
	a, err := fpgavolt.BuildAccelerator(b, q, cs, *seed)
	check(err)
	fmt.Printf("deployed: %s BRAM utilization\n", report.Pct(a.BRAMUtilization(), 1))

	if *power {
		t := report.NewTable("on-chip power breakdown (W)", "operating point", "BRAM", "total")
		for _, v := range []float64{p.Cal.Vnom, p.Cal.Vmin, p.Cal.Vcrash} {
			bd := a.PowerBreakdown(v)
			t.AddRow(fmt.Sprintf("VCCBRAM=%.2fV", v),
				report.F(bd.Of("BRAM"), 3), report.F(bd.Total(), 3))
		}
		t.Render(os.Stdout)
	}

	rs, err := a.Sweep(ctx, ds.TestX, ds.TestY, *workers)
	check(err)
	mode := "default"
	if *icbp {
		mode = "ICBP"
	}
	t := report.NewTable(fmt.Sprintf("%s: classification error vs VCCBRAM (%s placement)", ds.Name, mode),
		"VCCBRAM (V)", "error", "faulty weight bits")
	for _, r := range rs {
		t.AddRow(report.F(r.V, 2), report.Pct(r.Error, 2), fmt.Sprintf("%d", r.WeightFault))
	}
	t.Render(os.Stdout)
}

// submitRemote ships the locally-trained network and test set to a running
// fpgavoltd as an nn-inference campaign, streams its SSE feed, and renders
// each board's accuracy-vs-voltage curve from the job detail.
func submitRemote(ctx context.Context, base, platName string, boards, brams int, q *fpgavolt.Quantized, ds *fpgavolt.Dataset, seed uint64) {
	client := fpgavolt.NewServiceClient(base, nil)
	spec := []fpgavolt.BoardSpec{{Platform: platName, Replicas: boards, BRAMs: brams}}
	job, err := client.SubmitInference(ctx, spec, q, ds.TestX, ds.TestY, seed)
	check(err)
	fmt.Printf("submitted %s to %s: %d×%s, %d test samples, wire format v%d\n",
		job.ID, base, boards, platName, len(ds.TestX), fpgavolt.WireVersion)
	final, err := client.Wait(ctx, job.ID, func(ev fpgavolt.JobEvent) error {
		switch ev.Type {
		case "done":
			fmt.Printf("  [%5.1f%%] board %2d %-8s done, %s error at deepest level\n",
				ev.Progress, ev.Board, ev.Platform, report.Pct(ev.InferError, 2))
		case "failed":
			fmt.Printf("  [%5.1f%%] board %2d %-8s FAILED: %s\n", ev.Progress, ev.Board, ev.Platform, ev.Error)
		}
		return nil
	})
	check(err)
	if final.State != fpgavolt.JobDone {
		check(fmt.Errorf("job %s finished %s: %s", final.ID, final.State, final.Error))
	}
	for _, br := range final.BoardResults {
		t := report.NewTable(
			fmt.Sprintf("%s: remote classification error vs VCCBRAM (board %d, %s S/N %s)",
				ds.Name, br.Board, br.Platform, br.Serial),
			"VCCBRAM (V)", "error", "faulty weight bits")
		for _, pt := range br.Inference {
			t.AddRow(report.F(pt.V, 2), report.Pct(pt.Error, 2), fmt.Sprintf("%d", pt.WeightFault))
		}
		t.Render(os.Stdout)
	}
	if agg := final.Aggregate; agg != nil && agg.InferenceError.N > 1 {
		fmt.Printf("cross-chip inference error at deepest level: min %s  median %s  max %s\n",
			report.Pct(agg.InferenceError.Min, 2), report.Pct(agg.InferenceError.Median, 2),
			report.Pct(agg.InferenceError.Max, 2))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nnvolt:", err)
		os.Exit(1)
	}
}
