// Command nnvolt runs the Section III pipeline: generate a benchmark, train
// the classifier, quantize it, deploy it into a simulated board's BRAMs, and
// sweep VCCBRAM — optionally with the ICBP placement mitigation.
//
// Usage:
//
//	nnvolt -benchmark mnist                 # default placement, reduced scale
//	nnvolt -benchmark reuters -icbp         # ICBP-protected placement
//	nnvolt -benchmark mnist -full           # paper topology (slow)
//	nnvolt -benchmark mnist -power          # include the Fig. 10 breakdown
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/fpgavolt"
	"repro/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		benchmark = flag.String("benchmark", "mnist", "mnist, forest, or reuters")
		icbp      = flag.Bool("icbp", false, "protect the last layer with ICBP constraints")
		full      = flag.Bool("full", false, "paper-scale topology and board")
		brams     = flag.Int("brams", 200, "simulated BRAM pool size (ignored with -full)")
		train     = flag.Int("train", 4000, "training samples")
		test      = flag.Int("test", 800, "test samples")
		epochs    = flag.Int("epochs", 10, "training epochs")
		seed      = flag.Uint64("seed", 1, "placement seed")
		power     = flag.Bool("power", false, "print the on-chip power breakdown")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
	)
	flag.Parse()

	opts := fpgavolt.DatasetOptions{TrainSamples: *train, TestSamples: *test}
	if !*full {
		switch *benchmark {
		case "mnist":
			opts.Features = 196
		case "reuters":
			opts.Features = 400
		}
	}
	ds, err := fpgavolt.Benchmark(*benchmark, opts)
	check(err)

	topo := []int{ds.NumFeatures, 128, 64, 32, 16, ds.NumClasses}
	if *full {
		topo = []int{ds.NumFeatures, 1024, 512, 256, 128, ds.NumClasses}
	}
	fmt.Printf("training %v on %s (%d train / %d test samples)...\n",
		topo, ds.Name, len(ds.TrainX), len(ds.TestX))
	net, err := fpgavolt.NewNetwork(topo, "nnvolt:"+*benchmark)
	check(err)
	loss, err := net.Train(ds.TrainX, ds.TrainY, fpgavolt.TrainOptions{
		Epochs: *epochs, LearnRate: 0.3, Workers: *workers, Seed: "nnvolt:" + *benchmark,
	})
	check(err)
	q := fpgavolt.QuantizeNetwork(net)
	fmt.Printf("final training loss %.4f, weight-bit sparsity %s zeros\n",
		loss, report.Pct(1-q.OneBitFraction(), 1))

	p := fpgavolt.VC707()
	if !*full {
		p = p.Scaled(*brams)
	}
	b := fpgavolt.OpenBoard(p)

	var cs *fpgavolt.ConstraintSet
	if *icbp {
		fmt.Println("extracting FVM for ICBP constraints...")
		m, err := fpgavolt.ExtractFVM(ctx, b, 10, *workers)
		check(err)
		cs, err = fpgavolt.ICBPConstraints(m, q, fpgavolt.ICBPOptions{})
		check(err)
	}
	a, err := fpgavolt.BuildAccelerator(b, q, cs, *seed)
	check(err)
	fmt.Printf("deployed: %s BRAM utilization\n", report.Pct(a.BRAMUtilization(), 1))

	if *power {
		t := report.NewTable("on-chip power breakdown (W)", "operating point", "BRAM", "total")
		for _, v := range []float64{p.Cal.Vnom, p.Cal.Vmin, p.Cal.Vcrash} {
			bd := a.PowerBreakdown(v)
			t.AddRow(fmt.Sprintf("VCCBRAM=%.2fV", v),
				report.F(bd.Of("BRAM"), 3), report.F(bd.Total(), 3))
		}
		t.Render(os.Stdout)
	}

	rs, err := a.Sweep(ctx, ds.TestX, ds.TestY, *workers)
	check(err)
	mode := "default"
	if *icbp {
		mode = "ICBP"
	}
	t := report.NewTable(fmt.Sprintf("%s: classification error vs VCCBRAM (%s placement)", ds.Name, mode),
		"VCCBRAM (V)", "error", "faulty weight bits")
	for _, r := range rs {
		t.AddRow(report.F(r.V, 2), report.Pct(r.Error, 2), fmt.Sprintf("%d", r.WeightFault))
	}
	t.Render(os.Stdout)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nnvolt:", err)
		os.Exit(1)
	}
}
