// Command fpgavoltvet is the repo's invariant checker: a multichecker
// driving the internal/analysis suite over Go packages, go-vet style. Each
// analyzer mechanizes an invariant a past PR violated by hand:
//
//	atomicfs   store writes are atomicWrite or O_APPEND — never torn
//	detrand    model packages draw randomness from internal/prng only
//	errclass   errors classify via errors.Is, never ==/switch identity
//	gatepair   every sem.Gate unit acquired is released on every path
//	secretcmp  tokens compare in constant time
//
// Usage:
//
//	fpgavoltvet [-analyzers a,b] [-tests=false] [-list] [packages...]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 usage or
// load failure. Intentional findings are silenced in place with
// `//lint:allow <analyzer> <reason>` on the finding's line or the line
// above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("fpgavoltvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	tests := fs.Bool("tests", true, "also analyze test files (in-package and external test packages)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var selected []string
	if *names != "" {
		selected = strings.Split(*names, ",")
	}
	analyzers, ok := suite.Select(selected)
	if !ok {
		fmt.Fprintf(stderr, "fpgavoltvet: unknown analyzer in %q (have:", *names)
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(stderr, " %s", a.Name)
		}
		fmt.Fprintln(stderr, ")")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fpgavoltvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "fpgavoltvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fpgavoltvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
