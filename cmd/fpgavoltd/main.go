// Command fpgavoltd is the campaign service daemon: it serves the fleet
// engine over an HTTP JSON API, backed by a durable on-disk FVM store, so
// every board in an organization is characterized exactly once — across
// jobs, clients, and process restarts. Jobs are durable too: the store's
// journal replays the job table (listings, event logs, firehose cursors)
// after a restart, with jobs caught mid-run coming back as failed with a
// restart marker.
//
// Usage:
//
//	fpgavoltd [-listen :8080] [-store fvm-store] [-workers 2]
//	          [-queue 16] [-fleet-workers 0] [-max-boards 64]
//	          [-journal=true] [-gc-keep 0] [-job-retain 0]
//	          [-job-live-segs 0] [-auth-token ""]
//
// With -auth-token (or FPGAVOLTD_TOKEN in the environment) every mutating
// endpoint — campaign submission, job cancellation, record deletion, GC —
// requires `Authorization: Bearer <token>`; reads and streams stay open.
//
// Endpoints (see internal/server for the full contract):
//
//	POST   /v1/campaigns        submit a campaign → queued job
//	GET    /v1/jobs/{id}        poll a job
//	GET    /v1/jobs/{id}/events stream progress over SSE
//	GET    /v1/events           firehose: all jobs' events, multiplexed
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/fvms             query stored FVMs (?platform=&serial=)
//	DELETE /v1/fvms/{id}        admin: drop one stored record
//	GET    /v1/vmin             per-board operating windows
//	GET    /healthz             liveness
//
// On SIGINT/SIGTERM the daemon stops intake and drains in-flight campaigns,
// cancelling whatever is still running after -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/fpgavolt"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "fpgavoltd:", err)
		os.Exit(1)
	}
}

// run is main with its exits made testable: flags come in as a slice, ready
// (if non-nil) receives the bound listen address once serving, and
// cancelling ctx triggers the same graceful drain a signal does.
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("fpgavoltd", flag.ExitOnError)
	var (
		listen       = fs.String("listen", ":8080", "HTTP listen address")
		storeDir     = fs.String("store", "fvm-store", "FVM store root directory")
		workers      = fs.Int("workers", 2, "concurrent campaign jobs")
		queueDepth   = fs.Int("queue", 16, "pending-job queue depth")
		fleetWorkers = fs.Int("fleet-workers", 0, "concurrent boards per campaign (0 = auto)")
		maxBoards    = fs.Int("max-boards", 64, "largest fleet one campaign may enroll")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		journal      = fs.Bool("journal", true, "journal jobs into the store so listings survive restarts")
		gcKeep       = fs.Int("gc-keep", 0, "keep only the newest N store records per (platform, serial); 0 = unbounded")
		jobRetain    = fs.Int("job-retain", 0, "trim a finished job's journaled event log to its last N events; 0 = keep everything")
		jobLiveSegs  = fs.Int("job-live-segs", 0, "cap a running job's sealed event-log segments; older history is dropped and resumes below it get a truncation marker; 0 = unlimited")
		authToken    = fs.String("auth-token", "", "bearer token required on mutating endpoints (default $FPGAVOLTD_TOKEN; empty = open)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *authToken == "" {
		*authToken = os.Getenv("FPGAVOLTD_TOKEN")
	}

	st, err := fpgavolt.OpenDiskStore(*storeDir)
	if err != nil {
		return err
	}
	if *jobLiveSegs > 0 {
		if capper, ok := st.(interface{ SetLiveSegCap(int) }); ok {
			capper.SetLiveSegCap(*jobLiveSegs)
		}
	}
	svc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{
		Store:          st,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		FleetWorkers:   *fleetWorkers,
		MaxBoards:      *maxBoards,
		DisableJournal: !*journal,
		GCKeep:         *gcKeep,
		JobRetain:      *jobRetain,
		AuthToken:      *authToken,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// ReadHeaderTimeout keeps slow-header connections from pinning
	// goroutines forever; no WriteTimeout, because SSE streams are
	// long-lived by design.
	hs := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	log.Printf("fpgavoltd: serving on %s (store %s, %d workers)", ln.Addr(), *storeDir, *workers)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("fpgavoltd: draining (up to %v)...", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		log.Printf("fpgavoltd: drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("fpgavoltd: stopped")
	return st.Close()
}
