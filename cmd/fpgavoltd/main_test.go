package main

import (
	"context"
	"testing"
	"time"

	"repro/fpgavolt"
)

// TestDaemonEndToEnd boots the real daemon (flag parsing, disk store, HTTP
// listener, signal-equivalent shutdown) on an ephemeral port and drives the
// full client journey: submit → SSE progress → FVM query → graceful exit.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ctx, stop := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0", "-store", dir, "-workers", "1",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}

	client := fpgavolt.NewServiceClient("http://"+addr, nil)
	job, err := client.Submit(ctx, fpgavolt.CampaignRequest{
		Kind: "characterization",
		Boards: []fpgavolt.BoardSpec{
			{Platform: "VC707", Replicas: 2, BRAMs: 24},
		},
		Runs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Progress arrives over SSE and climbs to 100.
	var progress []float64
	final, err := client.Wait(ctx, job.ID, func(ev fpgavolt.JobEvent) error {
		progress = append(progress, ev.Progress)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != fpgavolt.JobDone {
		t.Fatalf("job finished %q (%s)", final.State, final.Error)
	}
	if len(progress) == 0 || progress[len(progress)-1] != 100 {
		t.Fatalf("SSE progress trail %v, want a climb to 100", progress)
	}

	// The characterizations are queryable...
	fvms, err := client.FVMs(ctx, "VC707", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(fvms) != 2 {
		t.Fatalf("daemon stored %d VC707 FVMs, want 2", len(fvms))
	}
	vmins, err := client.Vmin(ctx, "VC707", "")
	if err != nil || len(vmins) != 2 {
		t.Fatalf("vmin query: %d rows, %v", len(vmins), err)
	}

	// ...and durable: a second daemon over the same store serves the same
	// campaign from disk, without re-characterizing.
	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain")
	}

	ctx2, stop2 := context.WithCancel(context.Background())
	defer stop2()
	ready2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() {
		done2 <- run(ctx2, []string{
			"-listen", "127.0.0.1:0", "-store", dir, "-workers", "1",
		}, ready2)
	}()
	select {
	case addr = <-ready2:
	case err := <-done2:
		t.Fatalf("restarted daemon exited: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("restarted daemon never came up")
	}
	client2 := fpgavolt.NewServiceClient("http://"+addr, nil)
	// The journal replayed the first daemon's job: listed, terminal, and
	// with its event log still streamable.
	jobs, err := client2.Jobs(ctx2)
	if err != nil || len(jobs) != 1 || jobs[0].ID != job.ID || jobs[0].State != fpgavolt.JobDone {
		t.Fatalf("restarted daemon lists %+v (%v), want the journaled %s done", jobs, err, job.ID)
	}
	replayed := 0
	if err := client2.Events(ctx2, job.ID, func(fpgavolt.JobEvent) error {
		replayed++
		return nil
	}); err != nil {
		t.Fatalf("replaying the journaled job's events: %v", err)
	}
	if replayed == 0 {
		t.Fatal("journaled job replayed no events")
	}
	job2, err := client2.Submit(ctx2, fpgavolt.CampaignRequest{
		Kind: "characterization",
		Boards: []fpgavolt.BoardSpec{
			{Platform: "VC707", Replicas: 2, BRAMs: 24},
		},
		Runs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fromCache := 0
	final2, err := client2.Wait(ctx2, job2.ID, func(ev fpgavolt.JobEvent) error {
		if ev.Type == "done" && ev.FromCache {
			fromCache++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != fpgavolt.JobDone || final2.Aggregate.CacheHits != 2 || fromCache != 2 {
		t.Fatalf("restarted daemon re-characterized: state=%s hits=%d cached-events=%d",
			final2.State, final2.Aggregate.CacheHits, fromCache)
	}
	stop2()
	if err := <-done2; err != nil {
		t.Fatalf("restarted daemon shutdown: %v", err)
	}
}
