package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/fpgavolt"
)

// TestCoordinatorEndToEnd boots the real coordinator binary path (flag
// parsing, disk journal, HTTP listener, graceful drain) over two in-process
// daemons and drives a token-gated federated campaign through it.
func TestCoordinatorEndToEnd(t *testing.T) {
	// Two downstream daemons, both requiring the fleet token.
	var urls []string
	for i := 0; i < 2; i++ {
		st := fpgavolt.NewMemStore()
		svc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{
			Store: st, Workers: 1, FleetWorkers: 2, AuthToken: "fleet-token",
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
			ts.Close()
		})
		urls = append(urls, ts.URL)
	}

	ctx, stop := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0", "-store", t.TempDir(),
			"-downstream", urls[0], "-downstream", urls[1],
			"-chunk-boards", "1",
			"-auth-token", "front-token", "-downstream-token", "fleet-token",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("coordinator exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never came up")
	}

	client := fpgavolt.NewServiceClient("http://"+addr, nil).SetToken("front-token")
	job, err := client.Submit(ctx, fpgavolt.CampaignRequest{
		Kind: "characterization",
		Boards: []fpgavolt.BoardSpec{
			{Platform: "VC707", Replicas: 2, BRAMs: 24},
			{Platform: "ZC702", Replicas: 2, BRAMs: 24},
		},
		Runs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != fpgavolt.JobDone || final.Aggregate == nil || final.Aggregate.Completed != 4 {
		t.Fatalf("federated campaign ended %q (%s), aggregate %+v", final.State, final.Error, final.Aggregate)
	}
	if len(final.Shards) == 0 {
		t.Fatal("job detail has no shard map")
	}

	// The union FVM query sees all four characterizations across daemons.
	fvms, err := client.FVMs(ctx, "", "")
	if err != nil || len(fvms) != 4 {
		t.Fatalf("federated FVM union: %d records (%v), want 4", len(fvms), err)
	}

	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator did not drain")
	}
}
