// Command fpgavoltctl is the federated control plane: one coordinator
// fronting many fpgavoltd daemons behind the same /v1 API a single daemon
// serves, so existing clients point at it unchanged.
//
// A submitted campaign is sharded across the daemons by consistent hashing
// on (platform, serial) — each board always lands on the daemon whose FVM
// store is warm for it — with work-stealing when shards finish unevenly.
// Downstream events are re-stamped into one totally ordered, journaled
// stream: GET /v1/events resumes by Last-Event-ID across coordinator
// restarts, exactly like a single daemon's firehose. When a daemon dies
// mid-campaign its unfinished shards are retried on survivors, and the
// failover is recorded in the job detail (`shards` / `retries`).
//
// Usage:
//
//	fpgavoltctl -downstream http://host1:8080 -downstream http://host2:8080
//	            [-listen :9090] [-store fed-store] [-max-boards 256]
//	            [-chunk-boards 4] [-retry-limit 3] [-health-every 1s]
//	            [-health-fail 3] [-health-ok 2] [-downstream-timeout 15s]
//	            [-stream-retries 5] [-job-retain 0] [-auth-token ""]
//	            [-downstream-token ""]
//
// Every daemon sits behind a circuit breaker: -health-fail consecutive
// failures (probes or real calls) trip it open, -health-ok consecutive
// successes close it again, so one dropped probe never flaps a daemon out of
// the shard plan. -downstream-timeout bounds every non-streaming downstream
// call; broken event streams are resumed in place up to -stream-retries
// times before the shard fails over.
//
// -auth-token (or FPGAVOLTCTL_TOKEN) gates the coordinator's own mutating
// endpoints; -downstream-token (or FPGAVOLTD_TOKEN) is the bearer token the
// coordinator presents to the daemons. Queries (/v1/fvms, /v1/vmin) answer
// over the union of every reachable daemon's store.
//
// Every campaign kind rides the federation unchanged, mitigation included: a
// `"kind": "mitigation"` submission (see the kind-scoped `mitigation{}`
// request object) shards its boards like any other campaign, per-level
// progress events cross the fan-in, and the coordinator's aggregate carries
// each arm's cross-chip min-safe-voltage and energy-savings spread exactly as
// a single daemon would report it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/fpgavolt"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "fpgavoltctl:", err)
		os.Exit(1)
	}
}

// stringList collects a repeatable -downstream flag.
type stringList []string

func (l *stringList) String() string { return fmt.Sprint([]string(*l)) }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// run is main with its exits made testable: flags come in as a slice, ready
// (if non-nil) receives the bound listen address once serving, and
// cancelling ctx triggers the same graceful drain a signal does.
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("fpgavoltctl", flag.ExitOnError)
	var downstreams stringList
	fs.Var(&downstreams, "downstream", "downstream fpgavoltd base URL (repeatable)")
	var (
		listen       = fs.String("listen", ":9090", "HTTP listen address")
		storeDir     = fs.String("store", "fed-store", "coordinator journal directory (jobs, event logs, firehose cursor)")
		maxBoards    = fs.Int("max-boards", 256, "largest fleet one federated campaign may enroll")
		chunkBoards  = fs.Int("chunk-boards", 4, "boards per downstream shard (smaller steals better)")
		retryLimit   = fs.Int("retry-limit", 3, "attempts per shard before its boards fail")
		healthEvery  = fs.Duration("health-every", time.Second, "downstream health-check cadence")
		healthFail   = fs.Int("health-fail", 3, "consecutive probe/call failures that trip a daemon's circuit breaker open")
		healthOk     = fs.Int("health-ok", 2, "consecutive successes that close a tripped breaker again")
		downTimeout  = fs.Duration("downstream-timeout", 15*time.Second, "deadline on every non-streaming coordinator→daemon call")
		streamRetry  = fs.Int("stream-retries", 5, "consecutive fruitless event-stream resumes before a shard fails over")
		jobRetain    = fs.Int("job-retain", 0, "trim a finished job's journaled event log to its last N events; 0 = keep everything")
		authToken    = fs.String("auth-token", "", "bearer token required on mutating endpoints (default $FPGAVOLTCTL_TOKEN; empty = open)")
		downToken    = fs.String("downstream-token", "", "bearer token presented to the daemons (default $FPGAVOLTD_TOKEN)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight federated jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(downstreams) == 0 {
		return errors.New("at least one -downstream is required")
	}
	if *authToken == "" {
		*authToken = os.Getenv("FPGAVOLTCTL_TOKEN")
	}
	if *downToken == "" {
		*downToken = os.Getenv("FPGAVOLTD_TOKEN")
	}

	st, err := fpgavolt.OpenDiskStore(*storeDir)
	if err != nil {
		return err
	}
	coord, err := fpgavolt.NewFederation(fpgavolt.FederationConfig{
		Downstreams:       downstreams,
		Store:             st,
		MaxBoards:         *maxBoards,
		ChunkBoards:       *chunkBoards,
		RetryLimit:        *retryLimit,
		HealthEvery:       *healthEvery,
		HealthFailN:       *healthFail,
		HealthOkN:         *healthOk,
		DownstreamTimeout: *downTimeout,
		StreamRetries:     *streamRetry,
		JobRetain:         *jobRetain,
		AuthToken:         *authToken,
		DownstreamToken:   *downToken,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// No WriteTimeout: the merged firehose is a long-lived SSE stream.
	hs := &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: 10 * time.Second}
	log.Printf("fpgavoltctl: serving on %s (%d downstream daemons, journal %s)", ln.Addr(), len(downstreams), *storeDir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("fpgavoltctl: draining (up to %v)...", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := coord.Shutdown(dctx); err != nil {
		log.Printf("fpgavoltctl: drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("fpgavoltctl: stopped")
	return st.Close()
}
