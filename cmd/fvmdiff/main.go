// Command fvmdiff compares two saved Fault Variation Maps — the paper's
// die-to-die analysis (Fig. 7) as a standalone tool. Maps are produced with
// "fpgavolt fvm -save".
//
// Usage:
//
//	fpgavolt fvm -platform KC705-A -save a.json
//	fpgavolt fvm -platform KC705-B -save b.json
//	fvmdiff a.json b.json
package main

import (
	"fmt"
	"os"

	"repro/internal/fvm"
	"repro/internal/report"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: fvmdiff <a.json> <b.json>")
		os.Exit(2)
	}
	a := load(os.Args[1])
	b := load(os.Args[2])
	ds := fvm.Diff(a, b)

	t := report.NewTable(fmt.Sprintf("FVM diff: %s (S/N %s) vs %s (S/N %s)",
		a.Platform, a.Serial, b.Platform, b.Serial),
		"metric", "value")
	t.AddRow("common sites", fmt.Sprintf("%d", ds.CommonSites))
	t.AddRow("total faults A", report.F(ds.TotalA, 0))
	t.AddRow("total faults B", report.F(ds.TotalB, 0))
	t.AddRow("A/B ratio", report.F(ds.RatioAB, 2))
	t.AddRow("per-site correlation", report.F(ds.Correlation, 3))
	t.AddRow("largest disagreement", ds.DisagreeExample)
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Print(a.Render())
	fmt.Println()
	fmt.Print(b.Render())
}

func load(path string) *fvm.Map {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvmdiff:", err)
		os.Exit(1)
	}
	defer f.Close()
	m, err := fvm.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvmdiff:", err)
		os.Exit(1)
	}
	return m
}
