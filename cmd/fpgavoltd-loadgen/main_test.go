package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadgenSelfhostEndToEnd boots the in-process daemon, drives a small
// but genuinely concurrent load through it, and checks the full contract:
// exit 0, zero drops, and a benchjson baseline that `benchjson -compare`
// could consume (every endpoint result with quantile metrics, plus the
// calibration and journal results).
func TestLoadgenSelfhostEndToEnd(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "loadgen.json")
	var out strings.Builder
	code := run(context.Background(), []string{
		"-selfhost", "-clients", "16", "-jobs", "24", "-replicas", "2",
		"-brams", "1", "-runs", "1", "-queue", "4",
		"-timeout", "2m", "-label", "test", "-out", outPath,
	}, &out)
	if code != 0 {
		t.Fatalf("loadgen exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "dropped 0") || !strings.Contains(out.String(), "PASS") {
		t.Fatalf("loadgen output lacks the zero-drop verdict:\n%s", out.String())
	}

	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var b benchBaseline
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatalf("baseline does not parse: %v", err)
	}
	byName := map[string]benchResult{}
	for _, r := range b.Results {
		byName[r.Name] = r
	}
	for _, name := range []string{"LoadgenSubmit", "LoadgenJobStream", "LoadgenJobQuery"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("baseline lacks %s: %s", name, blob)
		}
		if r.Samples != 24 {
			t.Fatalf("%s has %d samples, want one per job (24)", name, r.Samples)
		}
		for _, m := range []string{"ns/op", "p50-ns", "p95-ns", "p99-ns"} {
			if r.Metrics[m] <= 0 {
				t.Fatalf("%s metric %s = %g, want > 0", name, m, r.Metrics[m])
			}
		}
		if r.Metrics["ns/op"] != r.Metrics["p95-ns"] {
			t.Fatalf("%s gates on %g but p95 is %g — ns/op must be the p95", name, r.Metrics["ns/op"], r.Metrics["p95-ns"])
		}
	}
	if cal, ok := byName["Calibration"]; !ok || cal.Metrics["ns/op"] <= 0 {
		t.Fatalf("baseline lacks a positive Calibration result: %s", blob)
	}
	if jn, ok := byName["LoadgenJournal"]; !ok || jn.Metrics["bytes/event"] <= 0 {
		t.Fatalf("selfhost baseline lacks journal bytes/event: %s", blob)
	}
	// The tiny queue forces admission control at 16 concurrent submitters;
	// retries prove the 503 path was exercised and survived.
	if !strings.Contains(out.String(), "submit retries") {
		t.Fatalf("output lacks retry accounting:\n%s", out.String())
	}
}

// TestLoadgenQuantiles pins the nearest-rank math the latency report rests
// on.
func TestLoadgenQuantiles(t *testing.T) {
	var h hist
	for i := 100; i >= 1; i-- {
		h.add(time.Duration(i))
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}} {
		if got := h.quantile(tc.q); got != tc.want {
			t.Fatalf("q%g = %g, want %g", tc.q, got, tc.want)
		}
	}
	var empty hist
	if got := empty.quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

// TestLoadgenUsageErrors exercises the flag contract: exit 2, no work done.
func TestLoadgenUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                             // neither -addr nor -selfhost
		{"-selfhost", "-addr", "x"},    // both
		{"-selfhost", "-clients", "0"}, // non-positive fleet
	} {
		var out strings.Builder
		if code := run(context.Background(), args, &out); code != 2 {
			t.Fatalf("%v exited %d, want 2:\n%s", args, code, out.String())
		}
	}
}
