// Command fpgavoltd-loadgen drives a fpgavoltd instance with hundreds of
// concurrent clients — campaign submissions, per-job SSE streams, status
// queries, and one server-wide firehose subscription — and reports
// per-endpoint latency quantiles plus delivery accounting. It is the
// serving-path counterpart of the figure benchmarks: `make loadgen-compare`
// runs it against the committed baseline so an O(N) regression on the job
// table, the event log, or the SSE paths fails CI before it ships.
//
// Usage:
//
//	fpgavoltd-loadgen -selfhost [-clients 200] [-jobs 200] [-out lg.json]
//	fpgavoltd-loadgen -selfhost -federate 3 [-clients 200] ...
//	fpgavoltd-loadgen -selfhost -federate 3 -chaos 20260808 ...
//	fpgavoltd-loadgen -addr http://127.0.0.1:8080 [-clients 200] ...
//
// With -selfhost the tool boots an in-process fpgavoltd (disk store in a
// temp dir, journal on) on a loopback listener and tears it down after; with
// -addr it targets an already-running daemon (or coordinator — the federated
// /v1 surface is the same). -federate N replaces the single selfhost daemon
// with N in-process daemons behind a federation coordinator, so the same
// delivery accounting gates the coordinator's merged, re-stamped streams:
// the CI federation-smoke job runs this mode and fails on any dropped event. Every job's SSE stream is
// checked for per-job sequence density and the firehose for global-sequence
// density, so the run fails (exit 1) if even one event is dropped. Submit
// hitting admission control (503 queue-full) backs off and retries — those
// retries are counted, not fatal.
//
// -chaos <seed> (federated selfhost only) routes every coordinator→daemon
// request through the deterministic fault injector: added latency, connection
// resets, injected 503s, and torn/stalled SSE streams, all scheduled purely
// by the seed and a request counter. The zero-drop gates still apply — the
// run fails if chaos costs a single event — and the same seed replays the
// same fault schedule, so a chaos failure is reproducible.
//
// -out writes the benchjson baseline schema: p50/p95/p99 per endpoint (with
// p95 doubling as ns/op so `benchjson -compare` gates on it), journal
// bytes/event (selfhost only), and a Calibration result measuring a fixed
// pure-CPU workload so compares can normalize machine drift with
// -calibrate Calibration.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/fpgavolt"
	"repro/internal/chaos"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout))
}

// hist collects latency samples for one endpoint; quantiles are computed by
// sorting, which is ample at loadgen sample counts (thousands).
type hist struct {
	mu sync.Mutex
	ns []float64
}

func (h *hist) add(d time.Duration) {
	h.mu.Lock()
	h.ns = append(h.ns, float64(d.Nanoseconds()))
	h.mu.Unlock()
}

// quantile returns the q-th (0..1) latency in nanoseconds, by the
// nearest-rank method over a private sorted copy.
func (h *hist) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.ns) == 0 {
		return 0
	}
	s := append([]float64(nil), h.ns...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}

func (h *hist) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ns)
}

// result converts the histogram into one benchjson result: the p95 doubles
// as ns/op so the default `benchjson -compare` metric gates tail latency.
func (h *hist) result(name string) benchResult {
	p50, p95, p99 := h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)
	return benchResult{
		Name:    name,
		Iters:   int64(h.count()),
		Samples: h.count(),
		Metrics: map[string]float64{
			"ns/op":  p95,
			"p50-ns": p50,
			"p95-ns": p95,
			"p99-ns": p99,
		},
	}
}

// benchResult / benchBaseline mirror cmd/benchjson's file schema, so
// `benchjson -compare` consumes loadgen output directly.
type benchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Samples int                `json:"samples,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

type benchBaseline struct {
	Label     string        `json:"label"`
	Goos      string        `json:"goos,omitempty"`
	Goarch    string        `json:"goarch,omitempty"`
	Bench     string        `json:"bench"`
	Benchtime string        `json:"benchtime"`
	Results   []benchResult `json:"results"`
}

// calibrationRounds is how many times measureCalibration runs the fixed
// workload; the minimum is taken, being the least scheduler-disturbed
// reading of pure machine speed.
const calibrationRounds = 20

// measureCalibration times the same fixed xorshift workload as the root
// BenchmarkCalibration: pure CPU, no repository code, so its old→new ratio
// isolates machine drift for `benchjson -compare -calibrate Calibration`.
func measureCalibration() benchResult {
	best := time.Duration(math.MaxInt64)
	sink := uint64(0)
	for r := 0; r < calibrationRounds; r++ {
		start := time.Now()
		x := uint64(0x9e3779b97f4a7c15)
		for j := 0; j < 1<<18; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		sink += x
		if d := time.Since(start); d < best {
			best = d
		}
	}
	_ = sink
	return benchResult{
		Name:    "Calibration",
		Iters:   calibrationRounds,
		Samples: calibrationRounds,
		Metrics: map[string]float64{"ns/op": float64(best.Nanoseconds())},
	}
}

// run is main with its exits made testable.
func run(ctx context.Context, args []string, w io.Writer) int {
	fs := flag.NewFlagSet("fpgavoltd-loadgen", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "base URL of a running fpgavoltd (empty with -selfhost)")
		selfhost  = fs.Bool("selfhost", false, "boot an in-process daemon on loopback and drive that")
		storeDir  = fs.String("store", "", "selfhost store directory (empty = temp dir, removed after)")
		clients   = fs.Int("clients", 200, "concurrent client workers")
		jobs      = fs.Int("jobs", 200, "total campaigns to submit across all workers")
		replicas  = fs.Int("replicas", 4, "boards per campaign (events per job scale with it)")
		brams     = fs.Int("brams", 1, "BRAMs per simulated board (campaign size knob)")
		runs      = fs.Int("runs", 1, "read-pass runs per voltage level")
		workers   = fs.Int("workers", runtime.NumCPU(), "selfhost: concurrent campaign jobs (per daemon when federated)")
		queue     = fs.Int("queue", 32, "selfhost: pending-job queue depth (admission-control bound, per daemon when federated)")
		federate  = fs.Int("federate", 0, "selfhost: shard across N in-process daemons behind a federation coordinator (0 = single daemon)")
		chaosSeed = fs.Uint64("chaos", 0, "inject deterministic faults on every coordinator→daemon call, scheduled by this seed (0 = off; needs -federate)")
		timeout   = fs.Duration("timeout", 5*time.Minute, "overall run deadline")
		label     = fs.String("label", "loadgen", "benchjson baseline label")
		out       = fs.String("out", "", "write a benchjson baseline file")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*addr == "") == !*selfhost {
		fmt.Fprintln(w, "fpgavoltd-loadgen: need exactly one of -addr or -selfhost")
		return 2
	}
	if *clients <= 0 || *jobs <= 0 || *replicas <= 0 {
		fmt.Fprintln(w, "fpgavoltd-loadgen: -clients, -jobs, and -replicas must be positive")
		return 2
	}
	if *federate > 0 && !*selfhost {
		fmt.Fprintln(w, "fpgavoltd-loadgen: -federate needs -selfhost (with -addr, point it at a running fpgavoltctl instead)")
		return 2
	}
	if *chaosSeed != 0 && *federate == 0 {
		fmt.Fprintln(w, "fpgavoltd-loadgen: -chaos needs -federate (faults are injected on the coordinator→daemon hop)")
		return 2
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	base := *addr
	var chaosT *chaos.Transport
	var journalBytes func() uint64
	if *selfhost {
		dir := *storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "fpgavoltd-loadgen-*")
			if err != nil {
				fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
				return 2
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		st, err := fpgavolt.OpenDiskStore(dir)
		if err != nil {
			fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
			return 2
		}
		if jb, ok := st.(interface{ JournalBytes() uint64 }); ok {
			journalBytes = jb.JournalBytes
		}
		if *federate > 0 {
			// Federated selfhost: N in-process daemons on volatile stores
			// fronted by a coordinator journaling to the disk store — the
			// same topology fpgavoltctl serves — so the drop detectors below
			// run against the coordinator's re-stamped Seq/GSeq numbering
			// and the journal metric measures the coordinator's log.
			var urls []string
			for i := 0; i < *federate; i++ {
				dsvc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{
					Store:      fpgavolt.NewMemStore(),
					Workers:    *workers,
					QueueDepth: *queue,
					// Every federated job fans out up to one downstream
					// campaign per board; keep them all listable so the
					// coordinator's post-stream job fetch cannot 404.
					MaxJobHistory: (*jobs)*(*replicas) + 16,
				})
				if err != nil {
					fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
					return 2
				}
				dln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
					return 2
				}
				dhs := &http.Server{Handler: dsvc.Handler(), ReadHeaderTimeout: 10 * time.Second}
				go dhs.Serve(dln)
				defer func() {
					sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer scancel()
					dhs.Shutdown(sctx)
					dsvc.Shutdown(sctx)
				}()
				urls = append(urls, "http://"+dln.Addr().String())
			}
			fedCfg := fpgavolt.FederationConfig{
				Downstreams:   urls,
				Store:         st,
				MaxJobHistory: *jobs + 16,
			}
			if *chaosSeed != 0 {
				chaosT = chaos.New(*chaosSeed, nil)
				fedCfg.HTTPClient = &http.Client{Transport: chaosT}
				// Chaos eats attempts: give shards and streams more retry
				// budget, and probe fast enough that a breaker tripped by an
				// injected fault recovers within the run.
				fedCfg.RetryLimit = 8
				fedCfg.StreamRetries = 8
				fedCfg.HealthEvery = 100 * time.Millisecond
			}
			coord, err := fpgavolt.NewFederation(fedCfg)
			if err != nil {
				fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
				return 2
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
				return 2
			}
			hs := &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: 10 * time.Second}
			go hs.Serve(ln)
			// LIFO defers drain the coordinator before its daemons go away.
			defer func() {
				sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer scancel()
				hs.Shutdown(sctx)
				coord.Shutdown(sctx)
			}()
			base = "http://" + ln.Addr().String()
			fmt.Fprintf(w, "selfhost federation on %s (%d daemons, journal %s, %d workers x queue %d each)\n",
				base, *federate, dir, *workers, *queue)
		} else {
			svc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{
				Store:      st,
				Workers:    *workers,
				QueueDepth: *queue,
				// Keep the whole run's jobs listable: eviction mid-run would
				// turn delivery accounting into false drops.
				MaxJobHistory: *jobs + 16,
			})
			if err != nil {
				fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
				return 2
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
				return 2
			}
			hs := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
			go hs.Serve(ln)
			defer func() {
				sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer scancel()
				hs.Shutdown(sctx)
				svc.Shutdown(sctx)
			}()
			base = "http://" + ln.Addr().String()
			fmt.Fprintf(w, "selfhost daemon on %s (store %s, %d workers, queue %d)\n", base, dir, *workers, *queue)
		}
	}

	g := newLoadgen(base, *clients)
	if err := g.drive(ctx, w, *jobs, *clients, fpgavolt.CampaignRequest{
		Kind:   "characterization",
		Boards: []fpgavolt.BoardSpec{{Platform: "VC707", Replicas: *replicas, BRAMs: *brams}},
		Runs:   *runs,
	}); err != nil {
		fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
		return 1
	}

	results := []benchResult{
		g.submit.result("LoadgenSubmit"),
		g.stream.result("LoadgenJobStream"),
		g.query.result("LoadgenJobQuery"),
		measureCalibration(),
	}
	totalEvents := g.jobEvents.Load()
	if journalBytes != nil && totalEvents > 0 {
		results = append(results, benchResult{
			Name:    "LoadgenJournal",
			Iters:   totalEvents,
			Samples: int(totalEvents),
			Metrics: map[string]float64{"bytes/event": float64(journalBytes()) / float64(totalEvents)},
		})
	}

	fmt.Fprintf(w, "%d jobs over %d clients: %d events streamed, %d firehose events, %d submit retries, dropped %d\n",
		*jobs, *clients, totalEvents, g.fhEvents.Load(), g.retries.Load(), g.dropped.Load())
	if chaosT != nil {
		fmt.Fprintf(w, "chaos seed %d: %s\n", *chaosSeed, chaosT.Report())
	}
	for _, r := range results {
		switch {
		case r.Metrics["p50-ns"] > 0:
			fmt.Fprintf(w, "  %-18s p50 %-12v p95 %-12v p99 %-12v (%d samples)\n", r.Name,
				time.Duration(r.Metrics["p50-ns"]), time.Duration(r.Metrics["p95-ns"]),
				time.Duration(r.Metrics["p99-ns"]), r.Samples)
		case r.Metrics["ns/op"] > 0:
			fmt.Fprintf(w, "  %-18s %v/op\n", r.Name, time.Duration(r.Metrics["ns/op"]))
		default:
			fmt.Fprintf(w, "  %-18s %.1f bytes/event over %d events\n", r.Name, r.Metrics["bytes/event"], r.Iters)
		}
	}

	if *out != "" {
		b := benchBaseline{
			Label: *label, Goos: runtime.GOOS, Goarch: runtime.GOARCH,
			Bench:     "loadgen",
			Benchtime: fmt.Sprintf("%dx%d", *jobs, *clients),
			Results:   results,
		}
		blob, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
			return 2
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(w, "fpgavoltd-loadgen:", err)
			return 2
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
	}

	if d := g.dropped.Load(); d > 0 {
		fmt.Fprintf(w, "fpgavoltd-loadgen: FAIL — %d dropped event(s)\n", d)
		return 1
	}
	if f := g.failures.Load(); f > 0 {
		fmt.Fprintf(w, "fpgavoltd-loadgen: FAIL — %d job failure(s)\n", f)
		return 1
	}
	fmt.Fprintln(w, "PASS — every event delivered in order")
	return 0
}

// loadgen is one run's shared state: the typed client, per-endpoint
// histograms, and delivery accounting.
type loadgen struct {
	client *fpgavolt.Client

	submit hist // POST /v1/campaigns, successful attempt only
	stream hist // submit ack → terminal SSE event
	query  hist // GET /v1/jobs/{id}

	jobEvents atomic.Int64 // events delivered across all per-job streams
	fhEvents  atomic.Int64 // events delivered on the firehose
	retries   atomic.Int64 // submits deferred by admission control
	dropped   atomic.Int64 // sequence gaps (per-job or firehose)
	failures  atomic.Int64 // jobs not ending in state "done"
}

func newLoadgen(base string, clients int) *loadgen {
	// One pooled transport for the whole fleet: idle-connection reuse per
	// worker plus clients+1 long-lived SSE streams.
	tr := &http.Transport{
		MaxIdleConns:        2*clients + 8,
		MaxIdleConnsPerHost: 2*clients + 8,
	}
	return &loadgen{client: fpgavolt.NewServiceClient(base, &http.Client{Transport: tr})}
}

// drive runs the whole load: a firehose watcher plus `clients` workers
// draining a `jobs`-long queue, then firehose catch-up accounting.
func (g *loadgen) drive(ctx context.Context, w io.Writer, jobs, clients int, req fpgavolt.CampaignRequest) error {
	// The firehose subscribes before the first submit so every event of the
	// run lands inside the subscription. Density of the global sequence is
	// the drop detector: GSeq is allocated contiguously by the server, so a
	// gap in what we receive is an event we lost.
	fhCtx, fhCancel := context.WithCancel(ctx)
	defer fhCancel()
	fhDone := make(chan error, 1)
	var lastG atomic.Int64
	go func() {
		var prev int64 = -1
		fhDone <- g.client.Firehose(fhCtx, 0, func(ev fpgavolt.JobEvent) error {
			g.fhEvents.Add(1)
			if prev >= 0 && ev.GSeq != prev+1 {
				g.dropped.Add(ev.GSeq - prev - 1)
			}
			prev = ev.GSeq
			lastG.Store(ev.GSeq)
			return nil
		})
	}()

	jobQueue := make(chan int)
	go func() {
		defer close(jobQueue)
		for i := 0; i < jobs; i++ {
			select {
			case jobQueue <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobQueue {
				if err := g.runJob(ctx, req); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
	}

	// Catch-up: the firehose lags the per-job streams by whatever is still
	// in flight. Every job stream saw its own terminal event, so the
	// firehose must reach the same total without gaps.
	want := g.jobEvents.Load()
	for g.fhEvents.Load() < want {
		select {
		case <-ctx.Done():
			g.dropped.Add(want - g.fhEvents.Load())
			fmt.Fprintf(w, "firehose stalled at %d/%d events\n", g.fhEvents.Load(), want)
			return nil
		case <-time.After(10 * time.Millisecond):
		}
	}
	fhCancel()
	if err := <-fhDone; err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("firehose: %w", err)
	}
	return nil
}

// runJob submits one campaign (retrying past admission control), streams its
// events checking per-job sequence density, and polls its final status.
func (g *loadgen) runJob(ctx context.Context, req fpgavolt.CampaignRequest) error {
	var st fpgavolt.JobStatus
	for attempt := 0; ; attempt++ {
		start := time.Now()
		var err error
		st, err = g.client.Submit(ctx, req)
		if err == nil {
			g.submit.add(time.Since(start))
			break
		}
		var apiErr *fpgavolt.APIStatusError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable && attempt < 1000 {
			// Queue full: admission control working as designed. Back off
			// long enough for a worker to drain one job.
			g.retries.Add(1)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(5+attempt%20) * time.Millisecond):
			}
			continue
		}
		return fmt.Errorf("submit: %w", err)
	}

	streamStart := time.Now()
	next := 0
	err := g.client.Events(ctx, st.ID, func(ev fpgavolt.JobEvent) error {
		if ev.Seq != next {
			g.dropped.Add(int64(ev.Seq - next))
		}
		next = ev.Seq + 1
		g.jobEvents.Add(1)
		return nil
	})
	if err != nil {
		return fmt.Errorf("events %s: %w", st.ID, err)
	}
	g.stream.add(time.Since(streamStart))

	start := time.Now()
	final, err := g.client.Job(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("job %s: %w", st.ID, err)
	}
	g.query.add(time.Since(start))
	if final.State != fpgavolt.JobDone {
		g.failures.Add(1)
	}
	return nil
}
