// Command experiments regenerates every table and figure of the paper.
//
// Usage:
//
//	experiments -list
//	experiments                       # all experiments, reduced scale
//	experiments -full                 # paper scale (slow)
//	experiments -id fig3-fault-power  # one experiment
//	experiments -out results.txt      # also write to a file
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/fpgavolt"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		id      = flag.String("id", "", "run only the experiment with this id")
		full    = flag.Bool("full", false, "paper scale: full BRAM pools, 100 runs, full NN topology")
		brams   = flag.Int("brams", 0, "override the simulated BRAM pool size")
		runs    = flag.Int("runs", 0, "override read passes per voltage level")
		train   = flag.Int("train", 0, "override training samples")
		test    = flag.Int("test", 0, "override test samples")
		workers = flag.Int("workers", 0, "override worker goroutines (0 = all CPUs)")
		out     = flag.String("out", "", "also write rendered results to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range fpgavolt.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := fpgavolt.ExperimentConfig{
		Full: *full, BRAMs: *brams, Runs: *runs,
		TrainSamples: *train, TestSamples: *test, Workers: *workers,
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *id != "" {
		e, err := fpgavolt.ExperimentByID(*id)
		if err != nil {
			fatal(err)
		}
		r, err := e.Run(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		r.Render(w)
		return
	}
	if _, err := fpgavolt.RunAllExperiments(ctx, cfg, w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
