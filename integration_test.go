package repro

import (
	"bytes"
	"context"
	"testing"

	"repro/fpgavolt"
	"repro/internal/accel"
	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/bram"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/placement"
	"repro/internal/platform"
	"repro/internal/silicon"
)

// TestRecompilationFaultsTrackPhysicalSites reproduces the paper's
// place-and-route control experiment (Section II-C3): the test design is
// compiled several times, producing different logical→physical BRAM maps,
// and the undervolting faults observed at each *physical* site must be
// identical across bitstreams. This is the evidence that the FVM is a
// property of the chip, not of the design.
func TestRecompilationFaultsTrackPhysicalSites(t *testing.T) {
	p := platform.VC707().Scaled(120)
	b := board.New(p)
	d := bitstream.NewDesign("recompile-test")
	for i := 0; i < 60; i++ {
		d.AddCell(placement.CellName(0, i), "bulk")
	}

	faultsBySite := func(seed uint64) map[silicon.Site][]uint16 {
		bs, err := bitstream.Place(d, p.Sites(), nil, seed)
		if err != nil {
			t.Fatal(err)
		}
		b.Configure()
		b.FillAll(0xFFFF)
		if err := b.SetVCCBRAM(p.Cal.Vcrash); err != nil {
			t.Fatal(err)
		}
		// Fixed run index: the regulator ripple is part of the environment,
		// and the paper compares like-for-like readouts.
		const run = 42
		out := make(map[silicon.Site][]uint16)
		buf := make([]uint16, bram.Rows)
		for _, c := range d.Cells {
			site := bs.Placement.ByCell[c.Name]
			blk := b.Pool.At(site)
			if err := b.ReadBRAMInto(buf, blk.Index(), run); err != nil {
				t.Fatal(err)
			}
			var rows []uint16
			for row, w := range buf {
				if w != 0xFFFF {
					rows = append(rows, uint16(row))
				}
			}
			out[site] = rows
		}
		if err := b.SetVCCBRAM(p.Cal.Vnom); err != nil {
			t.Fatal(err)
		}
		return out
	}

	base := faultsBySite(1)
	for _, seed := range []uint64{2, 3} {
		got := faultsBySite(seed)
		for site, rows := range got {
			baseRows, ok := base[site]
			if !ok {
				continue // different cells landed here; only shared sites compare
			}
			if len(rows) != len(baseRows) {
				t.Fatalf("seed %d: site %+v fault rows differ: %v vs %v",
					seed, site, rows, baseRows)
			}
			for i := range rows {
				if rows[i] != baseRows[i] {
					t.Fatalf("seed %d: site %+v fault moved", seed, site)
				}
			}
		}
	}
}

// TestEndToEndPaperFlow walks the complete pipeline through the public API:
// characterize → FVM (with a save/load round trip) → ICBP constraints →
// accelerator → voltage sweep, checking the paper's headline invariants at
// each stage.
func TestEndToEndPaperFlow(t *testing.T) {
	brd := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(150))

	// Stage 1: characterization.
	sweep, err := fpgavolt.Characterize(context.Background(), brd, fpgavolt.SweepOptions{Runs: 10, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	final := sweep.Final()
	if final.FaultsPerMbit < 300 || final.FaultsPerMbit > 1100 {
		t.Fatalf("VC707 faults/Mbit at Vcrash = %v, want ~652", final.FaultsPerMbit)
	}
	if final.Flip10Share() < 0.99 {
		t.Fatalf("1->0 share = %v", final.Flip10Share())
	}

	// Stage 2: FVM with persistence round trip.
	m, err := fpgavolt.ExtractFVM(context.Background(), brd, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := fpgavolt.LoadFVM(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 3: workload.
	ds, err := fpgavolt.Benchmark("mnist", fpgavolt.DatasetOptions{
		TrainSamples: 1200, TestSamples: 300, Features: 196,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := fpgavolt.NewNetwork([]int{196, 64, 32, 10}, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(ds.TrainX, ds.TrainY, fpgavolt.TrainOptions{
		Epochs: 8, LearnRate: 0.3, Workers: 8,
	}); err != nil {
		t.Fatal(err)
	}
	q := fpgavolt.QuantizeNetwork(net)
	if q.OneBitFraction() > 0.5 {
		t.Fatalf("quantized net not bit-sparse: %v", q.OneBitFraction())
	}

	// Stage 4: ICBP from the reloaded FVM.
	cs, err := fpgavolt.ICBPConstraints(m2, q, fpgavolt.ICBPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fpgavolt.BuildAccelerator(brd, q, cs, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 5: sweep; the protected accelerator must hold its baseline at
	// Vmin and stay operational at Vcrash.
	rs, err := a.Sweep(context.Background(), ds.TestX, ds.TestY, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].WeightFault != 0 {
		t.Fatal("faults at Vmin")
	}
	last := len(q.Words) - 1
	counts, err := a.LayerFaultCounts(context.Background(), brd.Platform.Cal.Vcrash)
	if err != nil {
		t.Fatal(err)
	}
	if counts[last] != 0 {
		t.Fatalf("ICBP-protected layer saw %d faults", counts[last])
	}
}

// TestDeterministicReproduction pins the repository's determinism guarantee:
// two completely independent end-to-end runs produce bit-identical results.
func TestDeterministicReproduction(t *testing.T) {
	run := func() (float64, int) {
		brd := fpgavolt.OpenBoard(fpgavolt.KC705A().Scaled(100))
		s, err := fpgavolt.Characterize(context.Background(), brd, fpgavolt.SweepOptions{Runs: 6, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return s.Final().FaultsPerMbit, int(s.Final().MedianFaults)
	}
	r1a, r1b := run()
	r2a, r2b := run()
	if r1a != r2a || r1b != r2b {
		t.Fatalf("independent runs diverged: (%v,%v) vs (%v,%v)", r1a, r1b, r2a, r2b)
	}
}

// TestAccelMatchesDirectEvaluation cross-checks the accelerator path against
// direct network evaluation: with zero faults the deployed network must
// classify identically to the quantized network evaluated in software.
func TestAccelMatchesDirectEvaluation(t *testing.T) {
	ds := dataset.ForestLike(dataset.Options{TrainSamples: 600, TestSamples: 200})
	net, err := nn.New([]int{54, 24, 12, 7}, "crosscheck")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(ds.TrainX, ds.TrainY, nn.TrainOptions{Epochs: 6, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	q := nn.Quantize(net)
	qn, err := q.Dequantize(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := qn.Evaluate(ds.TestX, ds.TestY, 4)

	brd := board.New(platform.ZC702().Scaled(40))
	a, err := accel.Build(brd, q, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.EvaluateAt(context.Background(), brd.Platform.Cal.Vnom, ds.TestX, ds.TestY, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Error != want {
		t.Fatalf("accelerator error %v != direct %v", r.Error, want)
	}
}
