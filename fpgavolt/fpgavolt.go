// Package fpgavolt is the public API of the reproduction of "Comprehensive
// Evaluation of Supply Voltage Underscaling in FPGA on-Chip Memories"
// (Salami, Unsal, Cristal Kestelman — MICRO 2018).
//
// It bundles the repository's subsystems behind one import:
//
//   - Simulated boards of the paper's four platforms (VC707, ZC702, and the
//     two KC705 samples), complete with PMBus-controlled voltage regulation,
//     calibrated BRAM fault behavior, power, and thermals.
//   - The characterization harness of Section II (voltage sweeps, threshold
//     discovery, data-pattern / stability / temperature studies).
//   - Fault Variation Maps with k-means vulnerability classes.
//   - The Section III NN accelerator pipeline: synthetic benchmarks,
//     training, 16-bit per-layer quantization, deployment into BRAMs, and
//     the ICBP placement mitigation.
//   - The experiment registry that regenerates every table and figure.
//
// A minimal session:
//
//	b := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))
//	sweep, err := fpgavolt.Characterize(b, fpgavolt.SweepOptions{Runs: 20})
//	// sweep.Final().FaultsPerMbit ≈ 652 for VC707, as in the paper
package fpgavolt

import (
	"io"

	"repro/internal/accel"
	"repro/internal/board"
	"repro/internal/characterize"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fvm"
	"repro/internal/nn"
	"repro/internal/placement"
	"repro/internal/platform"
	"repro/internal/xdc"
)

// Core hardware types.
type (
	// Platform is one of the paper's FPGA boards (Table I).
	Platform = platform.Platform
	// Board is a fully assembled test rig (Fig. 2).
	Board = board.Board
	// FVM is a chip's Fault Variation Map (Fig. 6).
	FVM = fvm.Map
	// Thresholds holds a rail's discovered Vmin/Vcrash (Fig. 1).
	Thresholds = characterize.Thresholds
	// Sweep is a completed undervolting characterization (Fig. 3).
	Sweep = characterize.Sweep
	// SweepOptions tunes a characterization run (Listing 1 parameters).
	SweepOptions = characterize.Options
	// PatternResult is one row of the data-pattern study (Fig. 4).
	PatternResult = characterize.PatternResult
)

// NN pipeline types.
type (
	// Dataset is a train/test split of a benchmark task.
	Dataset = dataset.Dataset
	// DatasetOptions sizes a synthetic benchmark.
	DatasetOptions = dataset.Options
	// Network is a float fully-connected classifier.
	Network = nn.Network
	// TrainOptions tunes the SGD trainer.
	TrainOptions = nn.TrainOptions
	// Quantized is the 16-bit fixed-point deployment form of a network.
	Quantized = nn.Quantized
	// Accelerator is a compiled-and-loaded NN design on a board.
	Accelerator = accel.Accelerator
	// InferenceResult is one voltage point of an accelerator sweep (Fig. 11).
	InferenceResult = accel.InferenceResult
	// ConstraintSet is a set of Pblock placement constraints (Fig. 12).
	ConstraintSet = xdc.ConstraintSet
	// ICBPOptions tunes the ICBP constraint generator.
	ICBPOptions = placement.ICBPOptions
)

// Experiment framework types.
type (
	// Experiment reproduces one table or figure.
	Experiment = experiments.Experiment
	// ExperimentConfig scales an experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentResult is an experiment's tables/figures/comparisons.
	ExperimentResult = experiments.Result
)

// VC707 returns the Virtex-7 performance-optimized platform.
func VC707() Platform { return platform.VC707() }

// ZC702 returns the Zynq-7000 hardware/software platform.
func ZC702() Platform { return platform.ZC702() }

// KC705A returns the first power-optimized Kintex-7 sample.
func KC705A() Platform { return platform.KC705A() }

// KC705B returns the second, identical-model Kintex-7 sample.
func KC705B() Platform { return platform.KC705B() }

// Platforms returns all four studied platforms in the paper's order.
func Platforms() []Platform { return platform.All() }

// PlatformByName resolves "VC707", "ZC702", "KC705-A" or "KC705-B".
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }

// OpenBoard assembles a simulated board for the platform: chip (with its
// serial-derived fault population), regulator, serial link, heat chamber,
// and power meter.
func OpenBoard(p Platform) *Board { return board.New(p) }

// Characterize runs the Listing 1 methodology: pattern fill, 10 mV downward
// sweep, ~100 reads per level, host-side fault analysis.
func Characterize(b *Board, opts SweepOptions) (*Sweep, error) {
	return characterize.Run(b, opts)
}

// DiscoverBRAMThresholds locates VCCBRAM's Vmin and Vcrash (Fig. 1a).
func DiscoverBRAMThresholds(b *Board, probeRuns int) (Thresholds, error) {
	return characterize.DiscoverBRAMThresholds(b, probeRuns)
}

// DiscoverIntThresholds locates VCCINT's Vmin and Vcrash (Fig. 1b).
func DiscoverIntThresholds(b *Board) (Thresholds, error) {
	return characterize.DiscoverIntThresholds(b)
}

// PatternStudy measures fault rates for several data patterns at a fixed
// voltage (Fig. 4).
func PatternStudy(b *Board, v float64, patterns []SweepOptions, runs int) ([]PatternResult, error) {
	return characterize.RunPatternStudy(b, v, patterns, runs)
}

// TemperatureStudy sweeps voltage at several on-board temperatures (Fig. 8).
func TemperatureStudy(b *Board, temps []float64, opts SweepOptions) ([]*Sweep, error) {
	return characterize.TemperatureStudy(b, temps, opts)
}

// ExtractFVM characterizes the board and assembles its Fault Variation Map
// at the deepest voltage level.
func ExtractFVM(b *Board, runs, workers int) (*FVM, error) {
	s, err := characterize.Run(b, characterize.Options{Runs: runs, Workers: workers})
	if err != nil {
		return nil, err
	}
	return fvm.New(b.Platform.Name, b.Platform.Serial,
		b.Platform.Geometry.GridCols, b.Platform.Geometry.GridRows,
		s.Levels[0].V, s.Final().V, s.OnBoardC,
		b.Platform.Sites(), s.PerBRAMMedian())
}

// LoadFVM reads a map saved with FVM.Save.
func LoadFVM(r io.Reader) (*FVM, error) { return fvm.Load(r) }

// Benchmark generates one of the paper's benchmarks ("mnist", "forest",
// "reuters") as a deterministic synthetic dataset.
func Benchmark(name string, opts DatasetOptions) (*Dataset, error) {
	return dataset.ByName(name, opts)
}

// NewNetwork builds a fully-connected classifier with the given topology.
func NewNetwork(topology []int, key string) (*Network, error) { return nn.New(topology, key) }

// PaperTopology returns the Table III network shape.
func PaperTopology() []int { return nn.PaperTopology() }

// QuantizeNetwork converts a trained network to its 16-bit per-layer
// minimum-precision fixed-point form (Fig. 9).
func QuantizeNetwork(n *Network) *Quantized { return nn.Quantize(n) }

// BuildAccelerator compiles and loads an NN design onto a board; cs may be
// nil for the default placement, or the output of ICBPConstraints.
func BuildAccelerator(b *Board, q *Quantized, cs *ConstraintSet, seed uint64) (*Accelerator, error) {
	return accel.Build(b, q, cs, seed)
}

// ICBPConstraints derives the Pblock constraints of the paper's mitigation:
// the most vulnerable layer's BRAMs are pinned to the FVM's safest sites.
func ICBPConstraints(m *FVM, q *Quantized, opts ICBPOptions) (*ConstraintSet, error) {
	d := placement.BuildDesign("nn", q)
	return placement.ICBPConstraints(m, d, q, opts)
}

// Experiments returns the full registry in the paper's presentation order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID resolves an experiment id like "fig3-fault-power".
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// RunAllExperiments regenerates every table and figure, streaming rendered
// results to w (which may be nil).
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) ([]*ExperimentResult, error) {
	return experiments.RunAll(cfg, w)
}
