// Package fpgavolt is the public API of the reproduction of "Comprehensive
// Evaluation of Supply Voltage Underscaling in FPGA on-Chip Memories"
// (Salami, Unsal, Cristal Kestelman — MICRO 2018).
//
// It bundles the repository's subsystems behind one import:
//
//   - Simulated boards of the paper's four platforms (VC707, ZC702, and the
//     two KC705 samples), complete with PMBus-controlled voltage regulation,
//     calibrated BRAM fault behavior, power, and thermals.
//   - The characterization harness of Section II (voltage sweeps, threshold
//     discovery, data-pattern / stability / temperature studies).
//   - Fault Variation Maps with k-means vulnerability classes.
//   - The Section III NN accelerator pipeline: synthetic benchmarks,
//     training, 16-bit per-layer quantization, deployment into BRAMs, and
//     the ICBP placement mitigation.
//   - The experiment registry that regenerates every table and figure.
//   - The fleet campaign engine: the same studies sharded across N boards
//     (any mix of platforms and serials) with bounded concurrency, per-board
//     progress events, cross-chip variation aggregation, and an FVM cache
//     that lets repeated campaigns skip re-characterization.
//   - A durable FVM store (content-addressed JSON blobs on disk) that backs
//     the cache as a write-through second level, so characterization work
//     survives process restarts — with summary-carrying index listings,
//     per-board GC, and a job journal riding alongside.
//   - The campaign service: an HTTP JSON daemon (cmd/fpgavoltd) with an
//     async job queue, SSE progress streams (per-job and a fleet-wide
//     /v1/events firehose), a journal-backed job table that survives
//     restarts, store-backed FVM/Vmin query endpoints with admin delete,
//     and a typed Client. Every campaign kind rides the API — including NN
//     inference, whose quantized network and test set travel as versioned
//     wire documents (Quantized.MarshalWire / MarshalTestSet).
//
// A minimal session:
//
//	ctx := context.Background()
//	b := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))
//	sweep, err := fpgavolt.Characterize(ctx, b, fpgavolt.SweepOptions{Runs: 20})
//	// sweep.Final().FaultsPerMbit ≈ 652 for VC707, as in the paper
//
// A fleet campaign across all four platforms (two samples each):
//
//	var boards []fpgavolt.Platform
//	for _, p := range fpgavolt.Platforms() {
//		boards = append(boards, p.Scaled(200).Replicas(2)...)
//	}
//	fleet := fpgavolt.NewFleet(boards, fpgavolt.FleetOptions{Workers: 4})
//	res, err := fpgavolt.RunCampaign(ctx, fleet, fpgavolt.Campaign{
//		Kind: fpgavolt.CampaignCharacterization,
//		Sweep: fpgavolt.SweepOptions{Runs: 20},
//	})
//	// res.Agg.FaultsPerMbit holds the cross-chip min/median/max spread;
//	// running the same campaign again is served from the FVM cache.
package fpgavolt

import (
	"context"
	"io"
	"net/http"

	"repro/internal/accel"
	"repro/internal/board"
	"repro/internal/characterize"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/fvm"
	"repro/internal/nn"
	"repro/internal/placement"
	"repro/internal/platform"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/xdc"
)

// Core hardware types.
type (
	// Platform is one of the paper's FPGA boards (Table I).
	Platform = platform.Platform
	// Board is a fully assembled test rig (Fig. 2).
	Board = board.Board
	// FVM is a chip's Fault Variation Map (Fig. 6).
	FVM = fvm.Map
	// Thresholds holds a rail's discovered Vmin/Vcrash (Fig. 1).
	Thresholds = characterize.Thresholds
	// Sweep is a completed undervolting characterization (Fig. 3).
	Sweep = characterize.Sweep
	// SweepOptions tunes a characterization run (Listing 1 parameters).
	SweepOptions = characterize.Options
	// PatternResult is one row of the data-pattern study (Fig. 4).
	PatternResult = characterize.PatternResult
)

// NN pipeline types.
type (
	// Dataset is a train/test split of a benchmark task.
	Dataset = dataset.Dataset
	// DatasetOptions sizes a synthetic benchmark.
	DatasetOptions = dataset.Options
	// Network is a float fully-connected classifier.
	Network = nn.Network
	// TrainOptions tunes the SGD trainer.
	TrainOptions = nn.TrainOptions
	// Quantized is the 16-bit fixed-point deployment form of a network.
	Quantized = nn.Quantized
	// Accelerator is a compiled-and-loaded NN design on a board.
	Accelerator = accel.Accelerator
	// InferenceResult is one voltage point of an accelerator sweep (Fig. 11).
	InferenceResult = accel.InferenceResult
	// ConstraintSet is a set of Pblock placement constraints (Fig. 12).
	ConstraintSet = xdc.ConstraintSet
	// ICBPOptions tunes the ICBP constraint generator.
	ICBPOptions = placement.ICBPOptions
)

// Fleet campaign types.
type (
	// Fleet is a pool of boards campaigns run across.
	Fleet = engine.Fleet
	// FleetOptions tunes a fleet's concurrency and cache.
	FleetOptions = engine.Options
	// Campaign describes one fleet-wide study.
	Campaign = engine.Campaign
	// CampaignKind selects the study a campaign runs.
	CampaignKind = engine.CampaignKind
	// CampaignResult is a completed campaign with its cross-chip aggregate.
	CampaignResult = engine.CampaignResult
	// FleetBoardResult is one board's outcome within a campaign.
	FleetBoardResult = engine.BoardResult
	// FleetAggregate is the cross-chip variation summary.
	FleetAggregate = engine.Aggregate
	// FleetEvent is a per-board campaign progress notification.
	FleetEvent = engine.Event
	// FleetCacheStats reports FVM cache effectiveness.
	FleetCacheStats = engine.CacheStats
	// FleetCache is the two-level FVM cache; share one across fleets (via
	// FleetOptions.Cache) to collapse concurrent duplicate
	// characterizations into single sweeps.
	FleetCache = engine.FVMCache
	// PlacementStats reports placement-cache effectiveness.
	PlacementStats = engine.PlacementStats
)

// Store and service types.
type (
	// FVMStore is a durable, concurrency-safe characterization repository;
	// set FleetOptions.Store (or ServiceConfig.Store) to make campaigns
	// survive restarts.
	FVMStore = store.Store
	// FVMRecord is one stored characterization product (sweep + FVM).
	FVMRecord = store.Record
	// FVMStoreKey identifies one stored measurement.
	FVMStoreKey = store.Key
	// FVMStoreMeta is one store index entry: id, key, and cached summary.
	FVMStoreMeta = store.Meta
	// FVMSummary is the index-cached shape of a stored record, which lets
	// listings answer without reading blobs.
	FVMSummary = store.Summary
	// Service is the campaign daemon: job queue, workers, HTTP handlers.
	Service = server.Server
	// ServiceConfig tunes a Service.
	ServiceConfig = server.Config
	// Client is the typed HTTP client for a running Service.
	Client = server.Client
	// APIStatusError is a non-2xx service response, carrying the HTTP
	// status so clients can distinguish admission control (503) from
	// hard failures.
	APIStatusError = server.APIStatusError
	// CampaignRequest is the wire form of a campaign submission.
	CampaignRequest = server.CampaignRequest
	// BoardSpec requests boards of one platform model.
	BoardSpec = server.BoardSpec
	// JobStatus is a job's wire status.
	JobStatus = server.JobStatus
	// JobState is a job's lifecycle phase.
	JobState = server.JobState
	// JobEvent is one SSE-streamed campaign event.
	JobEvent = server.JobEvent
	// FVMInfo summarizes one stored FVM for listings.
	FVMInfo = server.FVMInfo
	// VminInfo is one board's stored operating window.
	VminInfo = server.VminInfo
	// InferencePoint is one voltage step of an nn-inference job's accuracy
	// curve, as served in job details.
	InferencePoint = server.InferencePoint
	// ShardStatus summarizes one downstream daemon's share of a federated
	// job.
	ShardStatus = server.ShardStatus
	// ShardRetry records one shard re-run on a survivor after its daemon
	// died mid-campaign.
	ShardRetry = server.ShardRetry
	// Federation is the federated control plane: a coordinator that fronts
	// many Services behind the same /v1 API, sharding campaigns across them
	// by consistent hashing with work-stealing and failover.
	Federation = fed.Coordinator
	// FederationConfig tunes a Federation.
	FederationConfig = fed.Config
)

// The job lifecycle states a Service reports.
const (
	JobQueued    = server.JobQueued
	JobRunning   = server.JobRunning
	JobDone      = server.JobDone
	JobFailed    = server.JobFailed
	JobCancelled = server.JobCancelled
)

// The fleet campaign kinds.
const (
	// CampaignCharacterization sweeps and FVM-maps every board.
	CampaignCharacterization = engine.Characterization
	// CampaignTemperature runs the Fig. 8 ladder on every board.
	CampaignTemperature = engine.TemperatureStudy
	// CampaignInference sweeps NN inference accuracy on every board.
	CampaignInference = engine.NNInference
	// CampaignPatterns runs the Fig. 4 data-pattern study on every board.
	CampaignPatterns = engine.KindPattern
	// CampaignThresholds discovers both rails' Vmin/Vcrash on every board.
	CampaignThresholds = engine.KindThresholds
	// CampaignMitigation races the paper's mitigation arms — unprotected,
	// SECDED ECC scrubbing, ICBP placement, and guardbanded DVFS — down one
	// shared voltage ladder on every board (Section IV).
	CampaignMitigation = engine.KindMitigation
)

// The fleet event kinds a campaign streams per board.
const (
	FleetEventStart  = engine.EventBoardStart
	FleetEventLevel  = engine.EventLevel
	FleetEventDone   = engine.EventBoardDone
	FleetEventFailed = engine.EventBoardFailed
)

// Mitigation campaign types.
type (
	// MitigationSpec is the kind-scoped wire knobs of a mitigation campaign.
	MitigationSpec = server.MitigationSpec
	// MitigationArm is one protection scheme's full per-level curve plus its
	// min-safe voltage and energy savings, as held in a FleetBoardResult.
	MitigationArm = engine.MitigationArm
	// MitigationPoint is one (arm, voltage) measurement.
	MitigationPoint = engine.MitigationPoint
	// MitigationAggregate is the cross-chip spread of one arm's min-safe
	// voltage and energy savings.
	MitigationAggregate = engine.MitigationAggregate
	// MitigationArmStatus is the wire form of one arm's curve in a JobStatus.
	MitigationArmStatus = server.MitigationArmStatus
	// MitigationLevel is the wire form of one MitigationPoint.
	MitigationLevel = server.MitigationLevel
)

// The mitigation arms a CampaignMitigation can race, in canonical order.
const (
	ArmUnprotected = engine.ArmUnprotected
	ArmECC         = engine.ArmECC
	ArmICBP        = engine.ArmICBP
	ArmDVFS        = engine.ArmDVFS
)

// MitigationArms returns all four arms in canonical order.
func MitigationArms() []string { return engine.MitigationArms() }

// Experiment framework types.
type (
	// Experiment reproduces one table or figure.
	Experiment = experiments.Experiment
	// ExperimentConfig scales an experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentResult is an experiment's tables/figures/comparisons.
	ExperimentResult = experiments.Result
)

// VC707 returns the Virtex-7 performance-optimized platform.
func VC707() Platform { return platform.VC707() }

// ZC702 returns the Zynq-7000 hardware/software platform.
func ZC702() Platform { return platform.ZC702() }

// KC705A returns the first power-optimized Kintex-7 sample.
func KC705A() Platform { return platform.KC705A() }

// KC705B returns the second, identical-model Kintex-7 sample.
func KC705B() Platform { return platform.KC705B() }

// Platforms returns all four studied platforms in the paper's order.
func Platforms() []Platform { return platform.All() }

// PlatformByName resolves "VC707", "ZC702", "KC705-A" or "KC705-B".
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }

// OpenBoard assembles a simulated board for the platform: chip (with its
// serial-derived fault population), regulator, serial link, heat chamber,
// and power meter.
func OpenBoard(p Platform) *Board { return board.New(p) }

// Characterize runs the Listing 1 methodology: pattern fill, 10 mV downward
// sweep, ~100 reads per level, host-side fault analysis.
func Characterize(ctx context.Context, b *Board, opts SweepOptions) (*Sweep, error) {
	return characterize.Run(ctx, b, opts)
}

// DiscoverBRAMThresholds locates VCCBRAM's Vmin and Vcrash (Fig. 1a).
func DiscoverBRAMThresholds(ctx context.Context, b *Board, probeRuns int) (Thresholds, error) {
	return characterize.DiscoverBRAMThresholds(ctx, b, probeRuns)
}

// DiscoverIntThresholds locates VCCINT's Vmin and Vcrash (Fig. 1b).
func DiscoverIntThresholds(ctx context.Context, b *Board) (Thresholds, error) {
	return characterize.DiscoverIntThresholds(ctx, b)
}

// PatternStudy measures fault rates for several data patterns at a fixed
// voltage (Fig. 4).
func PatternStudy(ctx context.Context, b *Board, v float64, patterns []SweepOptions, runs int) ([]PatternResult, error) {
	return characterize.RunPatternStudy(ctx, b, v, patterns, runs)
}

// TemperatureStudy sweeps voltage at several on-board temperatures (Fig. 8).
func TemperatureStudy(ctx context.Context, b *Board, temps []float64, opts SweepOptions) ([]*Sweep, error) {
	return characterize.TemperatureStudy(ctx, b, temps, opts)
}

// ExtractFVM characterizes the board and assembles its Fault Variation Map
// at the deepest voltage level.
func ExtractFVM(ctx context.Context, b *Board, runs, workers int) (*FVM, error) {
	s, err := characterize.Run(ctx, b, characterize.Options{Runs: runs, Workers: workers})
	if err != nil {
		return nil, err
	}
	return fvm.FromSweep(b.Platform, s)
}

// LoadFVM reads a map saved with FVM.Save.
func LoadFVM(r io.Reader) (*FVM, error) { return fvm.Load(r) }

// Benchmark generates one of the paper's benchmarks ("mnist", "forest",
// "reuters") as a deterministic synthetic dataset.
func Benchmark(name string, opts DatasetOptions) (*Dataset, error) {
	return dataset.ByName(name, opts)
}

// NewNetwork builds a fully-connected classifier with the given topology.
func NewNetwork(topology []int, key string) (*Network, error) { return nn.New(topology, key) }

// PaperTopology returns the Table III network shape.
func PaperTopology() []int { return nn.PaperTopology() }

// QuantizeNetwork converts a trained network to its 16-bit per-layer
// minimum-precision fixed-point form (Fig. 9).
func QuantizeNetwork(n *Network) *Quantized { return nn.Quantize(n) }

// WireVersion is the current version of the nn wire format the service and
// clients exchange (network and test-set documents).
const WireVersion = nn.WireVersion

// UnmarshalQuantized decodes a network wire document produced by
// Quantized.MarshalWire — the versioned form an nn-inference campaign ships
// to a remote service. Decoding is strict: malformed topology, formats, or
// word counts error rather than yielding a partial network.
func UnmarshalQuantized(data []byte) (*Quantized, error) { return nn.UnmarshalWire(data) }

// MarshalTestSet serializes an aligned test set into its versioned wire
// form (float32 inputs, base64-packed) for an nn-inference submission.
func MarshalTestSet(xs [][]float64, ys []int) ([]byte, error) { return nn.MarshalTestSet(xs, ys) }

// UnmarshalTestSet decodes a MarshalTestSet document. Evaluating the
// decoded copy locally is what makes a local run bit-identical to the
// service's (inputs narrow to float32 on the wire).
func UnmarshalTestSet(data []byte) ([][]float64, []int, error) { return nn.UnmarshalTestSet(data) }

// NewInferenceRequest assembles the wire form of an nn-inference campaign
// submission: the quantized network and test set ride the request as
// versioned wire documents. Submit it with Client.Submit, or use
// Client.SubmitInference to do both steps at once.
func NewInferenceRequest(boards []BoardSpec, q *Quantized, xs [][]float64, ys []int, seed uint64) (CampaignRequest, error) {
	return server.NewInferenceRequest(boards, q, xs, ys, seed)
}

// NewMitigationRequest assembles the wire form of a mitigation campaign:
// every board races the requested arms (all four when spec.Arms is empty)
// down one shared voltage ladder. Submit it with Client.Submit, or use
// Client.SubmitMitigation to do both steps at once.
func NewMitigationRequest(boards []BoardSpec, spec MitigationSpec) CampaignRequest {
	return server.NewMitigationRequest(boards, spec)
}

// BuildAccelerator compiles and loads an NN design onto a board; cs may be
// nil for the default placement, or the output of ICBPConstraints.
func BuildAccelerator(b *Board, q *Quantized, cs *ConstraintSet, seed uint64) (*Accelerator, error) {
	return accel.Build(b, q, cs, seed)
}

// ICBPConstraints derives the Pblock constraints of the paper's mitigation:
// the most vulnerable layer's BRAMs are pinned to the FVM's safest sites.
func ICBPConstraints(m *FVM, q *Quantized, opts ICBPOptions) (*ConstraintSet, error) {
	d := placement.BuildDesign("nn", q)
	return placement.ICBPConstraints(m, d, q, opts)
}

// NewFleet assembles a fleet over the given board inventory. Use
// Platform.Replicas or Platform.WithSerial to mint distinct samples of one
// chip model.
func NewFleet(platforms []Platform, opts FleetOptions) *Fleet {
	return engine.NewFleet(platforms, opts)
}

// RunCampaign executes the campaign across every fleet board concurrently.
// Per-board failures are recorded in their FleetBoardResult; cancelling the
// context stops the whole fleet promptly with ctx.Err().
func RunCampaign(ctx context.Context, f *Fleet, c Campaign) (*CampaignResult, error) {
	return f.RunCampaign(ctx, c)
}

// ObservedVmin returns the lowest voltage level of a sweep that stayed
// fault-free — the board's empirical Vmin, the per-chip quantity whose
// fleet-wide spread a campaign aggregates.
func ObservedVmin(s *Sweep) float64 { return engine.ObservedVmin(s) }

// OpenDiskStore opens (or initializes) a durable FVM store rooted at dir.
// Pass it in FleetOptions.Store to let campaigns survive restarts, or in
// ServiceConfig.Store to back a Service.
func OpenDiskStore(dir string) (FVMStore, error) { return store.OpenDisk(dir) }

// NewMemStore returns a hermetic in-memory FVM store (tests, or a service
// without durability).
func NewMemStore() FVMStore { return store.NewMem() }

// NewFleetCache builds a standalone FVM cache, optionally store-backed, for
// sharing across fleets via FleetOptions.Cache (st may be nil).
func NewFleetCache(capacity int, st FVMStore) *FleetCache {
	c := engine.NewFVMCache(capacity)
	if st != nil {
		c.SetBacking(st)
	}
	return c
}

// NewService assembles a campaign service over cfg.Store and starts its
// worker pool. Serve its Handler with net/http; stop it with Shutdown.
func NewService(cfg ServiceConfig) (*Service, error) { return server.New(cfg) }

// NewServiceClient returns a typed client for the service at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient; streaming
// requires a client without a global timeout.
func NewServiceClient(base string, hc *http.Client) *Client { return server.NewClient(base, hc) }

// NewFederation assembles a federated control plane over running Services.
// The coordinator serves the same /v1 surface a single Service does, so
// NewServiceClient speaks to it unchanged.
func NewFederation(cfg FederationConfig) (*Federation, error) { return fed.New(cfg) }

// Experiments returns the full registry in the paper's presentation order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID resolves an experiment id like "fig3-fault-power".
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// RunAllExperiments regenerates every table and figure, streaming rendered
// results to w (which may be nil).
func RunAllExperiments(ctx context.Context, cfg ExperimentConfig, w io.Writer) ([]*ExperimentResult, error) {
	return experiments.RunAll(ctx, cfg, w)
}
