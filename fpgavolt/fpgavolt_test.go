package fpgavolt

import (
	"bytes"
	"context"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	// The quickstart path advertised in the package comment must work.
	b := OpenBoard(VC707().Scaled(120))
	sweep, err := Characterize(context.Background(), b, SweepOptions{Runs: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := sweep.Final().FaultsPerMbit
	if got < 652*0.5 || got > 652*1.5 {
		t.Fatalf("faults/Mbit at Vcrash = %v, want ~652", got)
	}
}

func TestFacadePlatforms(t *testing.T) {
	if len(Platforms()) != 4 {
		t.Fatal("want four platforms")
	}
	p, err := PlatformByName("ZC702")
	if err != nil || p.NumBRAMs != 280 {
		t.Fatalf("ZC702 lookup: %+v, %v", p, err)
	}
	if _, err := PlatformByName("nope"); err == nil {
		t.Fatal("unknown platform should fail")
	}
	if len(PaperTopology()) != 6 {
		t.Fatal("paper topology should have 6 levels")
	}
}

func TestFacadeThresholds(t *testing.T) {
	b := OpenBoard(KC705B().Scaled(60))
	th, err := DiscoverBRAMThresholds(context.Background(), b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if th.Vmin <= th.Vcrash {
		t.Fatalf("thresholds ordering: %+v", th)
	}
}

func TestFacadeFVMRoundTrip(t *testing.T) {
	b := OpenBoard(VC707().Scaled(80))
	m, err := ExtractFVM(context.Background(), b, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFVM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSites() != m.NumSites() {
		t.Fatal("FVM round trip lost sites")
	}
}

func TestFacadeNNPipeline(t *testing.T) {
	ds, err := Benchmark("forest", DatasetOptions{TrainSamples: 800, TestSamples: 200})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork([]int{54, 32, 16, 7}, "facade")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(ds.TrainX, ds.TrainY, TrainOptions{Epochs: 6, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	q := QuantizeNetwork(net)
	b := OpenBoard(VC707().Scaled(40))
	a, err := BuildAccelerator(b, q, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.EvaluateAt(context.Background(), 1.0, ds.TestX, ds.TestY, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.WeightFault != 0 {
		t.Fatal("faults at nominal voltage")
	}
	// ICBP path compiles too.
	m, err := ExtractFVM(context.Background(), b, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ICBPConstraints(m, q, ICBPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAccelerator(b, q, cs, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 16 {
		t.Fatalf("registry size = %d", len(Experiments()))
	}
	e, err := ExperimentByID("table1-specs")
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(context.Background(), ExperimentConfig{BRAMs: 40, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "table1-specs" {
		t.Fatal("wrong result id")
	}
}
