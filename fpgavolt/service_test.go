package fpgavolt_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/fpgavolt"
)

// TestServicePublicAPI drives the campaign service purely through the
// public package: NewService + NewServiceClient over an in-memory store,
// submit → stream → query, then a fleet built directly on the same store
// confirming the service's characterizations are reusable library-side.
func TestServicePublicAPI(t *testing.T) {
	st := fpgavolt.NewMemStore()
	svc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{Store: st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()

	ctx := context.Background()
	client := fpgavolt.NewServiceClient(ts.URL, ts.Client())
	job, err := client.Submit(ctx, fpgavolt.CampaignRequest{
		Kind:   "characterization",
		Boards: []fpgavolt.BoardSpec{{Platform: "KC705-A", Replicas: 2, BRAMs: 24}},
		Runs:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != fpgavolt.JobDone || final.Aggregate.Completed != 2 {
		t.Fatalf("service job %+v", final)
	}
	fvms, err := client.FVMs(ctx, "KC705-A", "")
	if err != nil || len(fvms) != 2 {
		t.Fatalf("FVM query: %d rows, %v", len(fvms), err)
	}

	// A library-side fleet over the same store reuses the service's work.
	fleet := fpgavolt.NewFleet(
		fpgavolt.KC705A().Scaled(24).Replicas(2),
		fpgavolt.FleetOptions{Store: st},
	)
	res, err := fpgavolt.RunCampaign(ctx, fleet, fpgavolt.Campaign{
		Kind:  fpgavolt.CampaignCharacterization,
		Sweep: fpgavolt.SweepOptions{Runs: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Characterizations() != 0 || res.Agg.CacheHits != 2 {
		t.Fatalf("library fleet re-characterized: %d sweeps, %d hits",
			fleet.Characterizations(), res.Agg.CacheHits)
	}
}
