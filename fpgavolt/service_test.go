package fpgavolt_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/fpgavolt"
)

// TestServicePublicAPI drives the campaign service purely through the
// public package: NewService + NewServiceClient over an in-memory store,
// submit → stream → query, then a fleet built directly on the same store
// confirming the service's characterizations are reusable library-side.
func TestServicePublicAPI(t *testing.T) {
	st := fpgavolt.NewMemStore()
	svc, err := fpgavolt.NewService(fpgavolt.ServiceConfig{Store: st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()

	ctx := context.Background()
	client := fpgavolt.NewServiceClient(ts.URL, ts.Client())
	job, err := client.Submit(ctx, fpgavolt.CampaignRequest{
		Kind:   "characterization",
		Boards: []fpgavolt.BoardSpec{{Platform: "KC705-A", Replicas: 2, BRAMs: 24}},
		Runs:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Wait(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != fpgavolt.JobDone || final.Aggregate.Completed != 2 {
		t.Fatalf("service job %+v", final)
	}
	fvms, err := client.FVMs(ctx, "KC705-A", "")
	if err != nil || len(fvms) != 2 {
		t.Fatalf("FVM query: %d rows, %v", len(fvms), err)
	}

	// A library-side fleet over the same store reuses the service's work.
	fleet := fpgavolt.NewFleet(
		fpgavolt.KC705A().Scaled(24).Replicas(2),
		fpgavolt.FleetOptions{Store: st},
	)
	res, err := fpgavolt.RunCampaign(ctx, fleet, fpgavolt.Campaign{
		Kind:  fpgavolt.CampaignCharacterization,
		Sweep: fpgavolt.SweepOptions{Runs: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Characterizations() != 0 || res.Agg.CacheHits != 2 {
		t.Fatalf("library fleet re-characterized: %d sweeps, %d hits",
			fleet.Characterizations(), res.Agg.CacheHits)
	}

	// The NN campaign kind rides the same API: train a tiny classifier,
	// round-trip it through the public wire helpers, and submit it.
	ds, err := fpgavolt.Benchmark("mnist", fpgavolt.DatasetOptions{
		TrainSamples: 200, TestSamples: 32, Features: 36,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := fpgavolt.NewNetwork([]int{36, 12, 10}, "service-public-api")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(ds.TrainX, ds.TrainY, fpgavolt.TrainOptions{Epochs: 1}); err != nil {
		t.Fatal(err)
	}
	q := fpgavolt.QuantizeNetwork(net)
	doc, err := q.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := fpgavolt.UnmarshalQuantized(doc)
	if err != nil {
		t.Fatal(err)
	}
	if q2.TotalWords() != q.TotalWords() {
		t.Fatalf("wire round trip changed the network: %d vs %d words", q2.TotalWords(), q.TotalWords())
	}
	nnJob, err := client.SubmitInference(ctx, []fpgavolt.BoardSpec{{Platform: "KC705-A", BRAMs: 24}},
		q, ds.TestX, ds.TestY, 1)
	if err != nil {
		t.Fatal(err)
	}
	nnFinal, err := client.Wait(ctx, nnJob.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nnFinal.State != fpgavolt.JobDone || len(nnFinal.BoardResults) != 1 {
		t.Fatalf("inference job %+v", nnFinal)
	}
	if len(nnFinal.BoardResults[0].Inference) == 0 {
		t.Fatal("inference job detail lacks the accuracy-vs-voltage curve")
	}
}
