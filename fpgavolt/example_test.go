package fpgavolt_test

import (
	"context"
	"fmt"

	"repro/fpgavolt"
)

// ExampleCharacterize reproduces the paper's core measurement: at Vmin the
// guardband is eliminated with zero faults; at Vcrash the fault rate matches
// the published VC707 value.
func ExampleCharacterize() {
	board := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))
	sweep, err := fpgavolt.Characterize(context.Background(), board, fpgavolt.SweepOptions{Runs: 10, Workers: 4})
	if err != nil {
		panic(err)
	}
	first := sweep.Levels[0] // Vmin
	last := sweep.Final()    // Vcrash
	fmt.Printf("at %.2fV: %d faults\n", first.V, int(first.MedianFaults))
	fmt.Printf("at %.2fV: faults/Mbit within 20%% of 652: %v\n",
		last.V, last.FaultsPerMbit > 652*0.8 && last.FaultsPerMbit < 652*1.2)
	// Output:
	// at 0.61V: 0 faults
	// at 0.54V: faults/Mbit within 20% of 652: true
}

// ExampleDiscoverBRAMThresholds finds the SAFE/CRITICAL/CRASH boundaries of
// Fig. 1 from scratch, without consulting the calibration.
func ExampleDiscoverBRAMThresholds() {
	board := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(200))
	th, err := fpgavolt.DiscoverBRAMThresholds(context.Background(), board, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Vmin=%.2fV Vcrash=%.2fV guardband=%.0f%%\n",
		th.Vmin, th.Vcrash, th.GuardbandFrac()*100)
	// Output:
	// Vmin=0.60V Vcrash=0.54V guardband=40%
}

// ExamplePlatforms lists the four studied boards of Table I.
func ExamplePlatforms() {
	for _, p := range fpgavolt.Platforms() {
		fmt.Printf("%s: %s, %d BRAMs\n", p.Name, p.Family, p.NumBRAMs)
	}
	// Output:
	// VC707: Virtex-7, 2060 BRAMs
	// ZC702: Zynq-7000, 280 BRAMs
	// KC705-A: Kintex-7, 890 BRAMs
	// KC705-B: Kintex-7, 890 BRAMs
}

// ExampleICBPConstraints shows the mitigation flow: the FVM's safest sites
// become Pblock constraints for the most vulnerable NN layer.
func ExampleICBPConstraints() {
	board := fpgavolt.OpenBoard(fpgavolt.VC707().Scaled(100))
	m, err := fpgavolt.ExtractFVM(context.Background(), board, 6, 4)
	if err != nil {
		panic(err)
	}
	net, err := fpgavolt.NewNetwork([]int{54, 24, 12, 7}, "example-icbp")
	if err != nil {
		panic(err)
	}
	q := fpgavolt.QuantizeNetwork(net)
	cs, err := fpgavolt.ICBPConstraints(m, q, fpgavolt.ICBPOptions{})
	if err != nil {
		panic(err)
	}
	// The last layer occupies one BRAM at this scale; it is the only
	// constrained cell.
	fmt.Println(cs.PblockOf("nn/layer2/w000") != nil)
	fmt.Println(cs.PblockOf("nn/layer0/w000") == nil)
	// Output:
	// true
	// true
}
