package placement

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/characterize"
	"repro/internal/fvm"
	"repro/internal/nn"
	"repro/internal/platform"
)

// quantNet builds a small quantized network: 196-64-32-10.
func quantNet(t *testing.T) *nn.Quantized {
	t.Helper()
	net, err := nn.New([]int{196, 64, 32, 10}, "placement-test")
	if err != nil {
		t.Fatal(err)
	}
	return nn.Quantize(net)
}

// boardFVM characterizes a small board and returns its map.
func boardFVM(t *testing.T, b *board.Board) *fvm.Map {
	t.Helper()
	s, err := characterize.Run(context.Background(), b, characterize.Options{Runs: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := fvm.New(b.Platform.Name, b.Platform.Serial,
		b.Platform.Geometry.GridCols, b.Platform.Geometry.GridRows,
		s.Levels[0].V, s.Final().V, 50, b.Platform.Sites(), s.PerBRAMMedian())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildDesignShape(t *testing.T) {
	q := quantNet(t)
	d := BuildDesign("nn", q)
	// Layer words: 196*64+64=12608 -> 13 blocks; 64*32+32=2080 -> 3; 330 -> 1.
	want := []int{13, 3, 1}
	got := BlocksPerLayer(q)
	for j, w := range want {
		if got[j] != w {
			t.Fatalf("layer %d blocks = %d, want %d", j, got[j], w)
		}
		cells := d.CellsInGroup(LayerGroup(j))
		if len(cells) != w {
			t.Fatalf("layer %d cells = %d, want %d", j, len(cells), w)
		}
	}
	if TotalBlocks(q) != 17 {
		t.Fatalf("total blocks = %d", TotalBlocks(q))
	}
	if CellName(2, 0) != "nn/layer2/w000" {
		t.Fatalf("cell name = %q", CellName(2, 0))
	}
}

func TestPaperTopologyUses1458Blocks(t *testing.T) {
	// Table III: the 6-layer network fills 70.8% of VC707's 2060 BRAMs.
	// Weights alone need 1458 blocks; biases add two more at the layer
	// granularity used here.
	net, err := nn.New(nn.PaperTopology(), "paper")
	if err != nil {
		t.Fatal(err)
	}
	q := nn.Quantize(net)
	total := TotalBlocks(q)
	if total < 1458 || total > 1462 {
		t.Fatalf("paper design blocks = %d, want ~1458", total)
	}
	util := float64(total) / 2060
	if util < 0.70 || util > 0.72 {
		t.Fatalf("utilization = %v, want ~0.708", util)
	}
}

func TestICBPConstraintsProtectLastLayer(t *testing.T) {
	b := board.New(platform.VC707().Scaled(80))
	m := boardFVM(t, b)
	q := quantNet(t)
	d := BuildDesign("nn", q)
	cs, err := ICBPConstraints(m, d, q, ICBPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the last layer's single cell is constrained.
	if cs.PblockOf("nn/layer2/w000") == nil {
		t.Fatal("last layer cell unconstrained")
	}
	if cs.PblockOf("nn/layer0/w000") != nil {
		t.Fatal("outer layer cell should be unconstrained")
	}
	// The constraint must be satisfiable by the placer.
	bs, err := bitstream.Place(d, b.Platform.Sites(), cs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Validate(b.Platform.Sites(), cs); err != nil {
		t.Fatal(err)
	}
	// The chosen site must be one of the safest (zero-fault in the FVM).
	site, _ := bs.Placement.SiteOf("nn/layer2/w000")
	for i, s := range m.Sites {
		if s == site && m.Counts[i] != 0 {
			t.Fatalf("ICBP placed last layer on a faulty BRAM (%v faults)", m.Counts[i])
		}
	}
	// Renders as real XDC.
	if !strings.Contains(cs.String(), "icbp_layer2") {
		t.Fatalf("constraints missing pblock:\n%s", cs.String())
	}
}

func TestICBPMultiLayerProtection(t *testing.T) {
	b := board.New(platform.VC707().Scaled(80))
	m := boardFVM(t, b)
	q := quantNet(t)
	d := BuildDesign("nn", q)
	cs, err := ICBPConstraints(m, d, q, ICBPOptions{ProtectLayers: []int{1, 2}, SpareFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cs.PblockOf("nn/layer1/w000") == nil || cs.PblockOf("nn/layer2/w000") == nil {
		t.Fatal("requested layers unconstrained")
	}
}

func TestICBPErrors(t *testing.T) {
	b := board.New(platform.VC707().Scaled(80))
	m := boardFVM(t, b)
	q := quantNet(t)
	d := BuildDesign("nn", q)
	if _, err := ICBPConstraints(m, d, q, ICBPOptions{ProtectLayers: []int{9}}); err == nil {
		t.Fatal("out-of-range layer should fail")
	}
	// Protecting a layer larger than the pool must fail.
	tiny := board.New(platform.VC707().Scaled(8))
	mTiny := boardFVM(t, tiny)
	if _, err := ICBPConstraints(mTiny, d, q, ICBPOptions{ProtectLayers: []int{0}}); err == nil {
		t.Fatal("unsatisfiable protection should fail")
	}
}
