// Package placement builds the BRAM-level floorplanning policies of
// Section III: the default flow (unconstrained seeded place & route) and the
// paper's mitigation, Intelligently-Constrained BRAM Placement (ICBP).
//
// ICBP (Fig. 12b) adds one step to the standard flow: from the chip's Fault
// Variation Map it takes the list of low-vulnerable BRAMs, and emits Pblock
// constraints forcing the logical BRAMs of the most fault-sensitive NN layer
// (the last layer — smallest and most vulnerable, per Fig. 13) onto those
// sites. Everything else is left to the standard placer, so the timing-slack
// overhead is negligible: for the paper's network only two BRAMs are
// constrained.
package placement

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/bram"
	"repro/internal/fvm"
	"repro/internal/nn"
	"repro/internal/xdc"
)

// LayerGroup names the placement group of NN layer j.
func LayerGroup(j int) string { return fmt.Sprintf("layer%d", j) }

// CellName names the k-th logical BRAM of NN layer j.
func CellName(j, k int) string { return fmt.Sprintf("nn/layer%d/w%03d", j, k) }

// BuildDesign creates the accelerator netlist's BRAM usage: one logical cell
// per basic block each quantized layer needs (weights + biases, 1024 words
// per block).
func BuildDesign(name string, q *nn.Quantized) *bitstream.Design {
	d := bitstream.NewDesign(name)
	for j := range q.Words {
		blocks := bram.BlocksFor(q.LayerWords(j))
		for k := 0; k < blocks; k++ {
			d.AddCell(CellName(j, k), LayerGroup(j))
		}
	}
	return d
}

// BlocksPerLayer returns the BRAM count each layer occupies — the sizes bar
// of Fig. 13.
func BlocksPerLayer(q *nn.Quantized) []int {
	out := make([]int, len(q.Words))
	for j := range q.Words {
		out[j] = bram.BlocksFor(q.LayerWords(j))
	}
	return out
}

// TotalBlocks returns the design's total BRAM usage.
func TotalBlocks(q *nn.Quantized) int {
	total := 0
	for _, n := range BlocksPerLayer(q) {
		total += n
	}
	return total
}

// ICBPOptions tunes the constraint generator.
type ICBPOptions struct {
	// ProtectLayers lists the layer indices to constrain; nil means "last
	// layer only", the paper's choice.
	ProtectLayers []int
	// SpareFactor is how many low-vulnerable candidate sites to offer per
	// constrained cell (>=1). More spares give the placer routing freedom.
	SpareFactor int
}

// ICBPConstraints emits the Pblock constraint set of the ICBP flow: the
// protected layers' cells are restricted to the safest sites of the FVM.
func ICBPConstraints(m *fvm.Map, d *bitstream.Design, q *nn.Quantized, opts ICBPOptions) (*xdc.ConstraintSet, error) {
	layers := opts.ProtectLayers
	if layers == nil {
		layers = []int{len(q.Words) - 1}
	}
	spare := opts.SpareFactor
	if spare < 1 {
		spare = 4
	}
	cs := xdc.NewConstraintSet()
	nextSafe := 0
	safe := m.SafestSites(m.NumSites())
	for _, j := range layers {
		if j < 0 || j >= len(q.Words) {
			return nil, fmt.Errorf("placement: layer %d out of range", j)
		}
		cells := d.CellsInGroup(LayerGroup(j))
		if len(cells) == 0 {
			return nil, fmt.Errorf("placement: no cells in group %q", LayerGroup(j))
		}
		want := len(cells) * spare
		if nextSafe+want > len(safe) {
			want = len(safe) - nextSafe
		}
		if want < len(cells) {
			return nil, fmt.Errorf("placement: only %d safe sites left for %d cells of layer %d",
				want, len(cells), j)
		}
		name := fmt.Sprintf("icbp_layer%d", j)
		for _, s := range safe[nextSafe : nextSafe+want] {
			cs.Resize(name, xdc.Region{X1: s.X, Y1: s.Y, X2: s.X, Y2: s.Y})
		}
		cs.AddCells(name, cells...)
		nextSafe += want
	}
	return cs, cs.Validate()
}
