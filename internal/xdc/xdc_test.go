package xdc

import (
	"strings"
	"testing"

	"repro/internal/silicon"
)

func TestRegionContains(t *testing.T) {
	r := Region{X1: 2, Y1: 3, X2: 4, Y2: 6}
	if !r.Contains(silicon.Site{X: 2, Y: 3}) || !r.Contains(silicon.Site{X: 4, Y: 6}) {
		t.Fatal("inclusive corners must be inside")
	}
	if r.Contains(silicon.Site{X: 1, Y: 3}) || r.Contains(silicon.Site{X: 4, Y: 7}) {
		t.Fatal("outside points reported inside")
	}
	// Reversed corners normalize.
	rev := Region{X1: 4, Y1: 6, X2: 2, Y2: 3}
	if !rev.Contains(silicon.Site{X: 3, Y: 4}) {
		t.Fatal("reversed region should normalize")
	}
}

func TestRegionString(t *testing.T) {
	r := Region{X1: 1, Y1: 2, X2: 3, Y2: 4}
	if r.String() != "RAMB18_X1Y2:RAMB18_X3Y4" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestConstraintSetBuild(t *testing.T) {
	cs := NewConstraintSet()
	cs.Resize("icbp_low_vuln", Region{X1: 0, Y1: 0, X2: 1, Y2: 5})
	cs.AddCells("icbp_low_vuln", "nn/layer4/w0", "nn/layer4/w1")
	if len(cs.Pblocks) != 1 {
		t.Fatalf("pblocks = %d", len(cs.Pblocks))
	}
	p := cs.PblockOf("nn/layer4/w0")
	if p == nil || p.Name != "icbp_low_vuln" {
		t.Fatal("PblockOf wrong")
	}
	if cs.PblockOf("nn/layer0/w0") != nil {
		t.Fatal("unconstrained cell got a pblock")
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllowedSites(t *testing.T) {
	cs := NewConstraintSet()
	cs.Resize("pb", Region{X1: 0, Y1: 0, X2: 0, Y2: 1})
	cs.AddCells("pb", "cellA")
	sites := []silicon.Site{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 5, Y: 5}}
	got := cs.AllowedSites("cellA", sites)
	if len(got) != 2 {
		t.Fatalf("allowed = %v", got)
	}
	if free := cs.AllowedSites("other", sites); len(free) != 3 {
		t.Fatal("unconstrained cell should see all sites")
	}
	var nilCS *ConstraintSet
	if free := nilCS.AllowedSites("x", sites); len(free) != 3 {
		t.Fatal("nil set should allow all")
	}
}

func TestValidateErrors(t *testing.T) {
	cs := NewConstraintSet()
	cs.Create("empty")
	cs.AddCells("empty", "c")
	if err := cs.Validate(); err == nil {
		t.Fatal("region-less pblock should fail validation")
	}
	cs2 := NewConstraintSet()
	cs2.Resize("a", Region{})
	cs2.Resize("b", Region{})
	cs2.AddCells("a", "shared")
	cs2.AddCells("b", "shared")
	if err := cs2.Validate(); err == nil {
		t.Fatal("doubly-claimed cell should fail validation")
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	cs := NewConstraintSet()
	cs.Resize("icbp", Region{X1: 0, Y1: 0, X2: 2, Y2: 9})
	cs.Resize("icbp", Region{X1: 5, Y1: 0, X2: 5, Y2: 3})
	cs.AddCells("icbp", "nn/layer4/w0", "nn/layer4/w1")
	text := cs.String()
	for _, want := range []string{
		"create_pblock icbp",
		"resize_pblock icbp -add {RAMB18_X0Y0:RAMB18_X2Y9}",
		"add_cells_to_pblock icbp [get_cells {nn/layer4/w0}]",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered XDC missing %q:\n%s", want, text)
		}
	}
	back, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != text {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", text, back.String())
	}
}

func TestParseTolerations(t *testing.T) {
	in := `
# ICBP constraints
create_pblock pb

resize_pblock pb -add {RAMB18_X1Y1:RAMB18_X2Y2}
add_cells_to_pblock pb [get_cells {top/mem}]
`
	cs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cs.PblockOf("top/mem") == nil {
		t.Fatal("parsed constraint lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"create_pblock",
		"resize_pblock pb {RAMB18_X1Y1:RAMB18_X2Y2}",
		"resize_pblock pb -add {bogus}",
		"resize_pblock pb -add {RAMB18_X1Y1}",
		"add_cells_to_pblock pb cell",
		"delete_pblock pb",
		"resize_pblock pb -add {RAMB18_XaY1:RAMB18_X2Y2}",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Fatalf("Parse(%q) should fail", in)
		}
	}
}

func TestMultiRegionPblock(t *testing.T) {
	cs := NewConstraintSet()
	cs.Resize("pb", Region{X1: 0, Y1: 0, X2: 0, Y2: 0})
	cs.Resize("pb", Region{X1: 9, Y1: 9, X2: 9, Y2: 9})
	p := cs.PblockOf("c")
	if p != nil {
		t.Fatal("no cells yet")
	}
	cs.AddCells("pb", "c")
	p = cs.PblockOf("c")
	if !p.Contains(silicon.Site{X: 0, Y: 0}) || !p.Contains(silicon.Site{X: 9, Y: 9}) {
		t.Fatal("multi-region containment broken")
	}
	if p.Contains(silicon.Site{X: 5, Y: 5}) {
		t.Fatal("gap between regions should be outside")
	}
}
