// Package xdc reproduces the Vivado Pblock ("physical block") constraint
// facility the paper's ICBP mitigation is built on (Section III-C, Fig. 12):
// logical cells — here, BRAM instances — are constrained to rectangular
// physical regions of the FPGA, and the placer must honor those regions.
//
// Constraints can be built programmatically and round-tripped through a
// textual format modeled on the XDC commands a Vivado flow would use
// (create_pblock / resize_pblock / add_cells_to_pblock), so constraint sets
// are inspectable artifacts, as they are in the paper's flow.
package xdc

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/silicon"
)

// Region is an inclusive rectangle of BRAM sites, the RAMB-range of a
// resize_pblock command.
type Region struct {
	X1, Y1, X2, Y2 int
}

// Normalize returns the region with corners ordered.
func (r Region) Normalize() Region {
	if r.X1 > r.X2 {
		r.X1, r.X2 = r.X2, r.X1
	}
	if r.Y1 > r.Y2 {
		r.Y1, r.Y2 = r.Y2, r.Y1
	}
	return r
}

// Contains reports whether the site lies inside the region.
func (r Region) Contains(s silicon.Site) bool {
	r = r.Normalize()
	return s.X >= r.X1 && s.X <= r.X2 && s.Y >= r.Y1 && s.Y <= r.Y2
}

// String renders the RAMB-range syntax.
func (r Region) String() string {
	r = r.Normalize()
	return fmt.Sprintf("RAMB18_X%dY%d:RAMB18_X%dY%d", r.X1, r.Y1, r.X2, r.Y2)
}

// Pblock is a named constraint: the listed cells must be placed on sites
// covered by at least one of the regions.
type Pblock struct {
	Name    string
	Regions []Region
	Cells   []string
}

// Contains reports whether a site is covered by any region of the pblock.
func (p *Pblock) Contains(s silicon.Site) bool {
	for _, r := range p.Regions {
		if r.Contains(s) {
			return true
		}
	}
	return false
}

// ConstraintSet is an ordered collection of pblocks.
type ConstraintSet struct {
	Pblocks []Pblock
}

// NewConstraintSet returns an empty set.
func NewConstraintSet() *ConstraintSet { return &ConstraintSet{} }

// Create adds (or returns) the pblock with the given name.
func (cs *ConstraintSet) Create(name string) *Pblock {
	for i := range cs.Pblocks {
		if cs.Pblocks[i].Name == name {
			return &cs.Pblocks[i]
		}
	}
	cs.Pblocks = append(cs.Pblocks, Pblock{Name: name})
	return &cs.Pblocks[len(cs.Pblocks)-1]
}

// Resize appends a region to the named pblock, creating it if needed.
func (cs *ConstraintSet) Resize(name string, r Region) {
	p := cs.Create(name)
	p.Regions = append(p.Regions, r.Normalize())
}

// AddCells constrains cells to the named pblock, creating it if needed.
func (cs *ConstraintSet) AddCells(name string, cells ...string) {
	p := cs.Create(name)
	p.Cells = append(p.Cells, cells...)
}

// PblockOf returns the pblock constraining the given cell, or nil. The first
// matching pblock wins, matching tool behavior where a cell belongs to one
// pblock.
func (cs *ConstraintSet) PblockOf(cell string) *Pblock {
	if cs == nil {
		return nil
	}
	for i := range cs.Pblocks {
		for _, c := range cs.Pblocks[i].Cells {
			if c == cell {
				return &cs.Pblocks[i]
			}
		}
	}
	return nil
}

// AllowedSites filters sites to those a cell may occupy. A nil constraint
// set, or an unconstrained cell, allows every site.
func (cs *ConstraintSet) AllowedSites(cell string, sites []silicon.Site) []silicon.Site {
	p := cs.PblockOf(cell)
	if p == nil {
		return sites
	}
	var out []silicon.Site
	for _, s := range sites {
		if p.Contains(s) {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks structural sanity: every pblock has at least one region
// and no cell is claimed by two pblocks.
func (cs *ConstraintSet) Validate() error {
	owner := map[string]string{}
	for _, p := range cs.Pblocks {
		if len(p.Regions) == 0 {
			return fmt.Errorf("xdc: pblock %q has no regions", p.Name)
		}
		for _, c := range p.Cells {
			if prev, ok := owner[c]; ok && prev != p.Name {
				return fmt.Errorf("xdc: cell %q claimed by pblocks %q and %q", c, prev, p.Name)
			}
			owner[c] = p.Name
		}
	}
	return nil
}

// Render writes the constraint set as XDC-style commands.
func (cs *ConstraintSet) Render(w io.Writer) error {
	names := make([]string, 0, len(cs.Pblocks))
	byName := map[string]Pblock{}
	for _, p := range cs.Pblocks {
		names = append(names, p.Name)
		byName[p.Name] = p
	}
	sort.Strings(names)
	for _, name := range names {
		p := byName[name]
		if _, err := fmt.Fprintf(w, "create_pblock %s\n", p.Name); err != nil {
			return err
		}
		for _, r := range p.Regions {
			if _, err := fmt.Fprintf(w, "resize_pblock %s -add {%s}\n", p.Name, r); err != nil {
				return err
			}
		}
		for _, c := range p.Cells {
			if _, err := fmt.Fprintf(w, "add_cells_to_pblock %s [get_cells {%s}]\n", p.Name, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the set to a string.
func (cs *ConstraintSet) String() string {
	var b strings.Builder
	_ = cs.Render(&b)
	return b.String()
}

// Parse reads XDC-style commands produced by Render (and tolerates blank
// lines and # comments).
func Parse(r io.Reader) (*ConstraintSet, error) {
	cs := NewConstraintSet()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "create_pblock":
			if len(fields) != 2 {
				return nil, fmt.Errorf("xdc: line %d: create_pblock wants a name", lineNo)
			}
			cs.Create(fields[1])
		case "resize_pblock":
			// resize_pblock NAME -add {RAMB18_XaYb:RAMB18_XcYd}
			if len(fields) != 4 || fields[2] != "-add" {
				return nil, fmt.Errorf("xdc: line %d: malformed resize_pblock", lineNo)
			}
			rg, err := parseRange(strings.Trim(fields[3], "{}"))
			if err != nil {
				return nil, fmt.Errorf("xdc: line %d: %v", lineNo, err)
			}
			cs.Resize(fields[1], rg)
		case "add_cells_to_pblock":
			// add_cells_to_pblock NAME [get_cells {CELL}]
			open := strings.Index(line, "{")
			close := strings.LastIndex(line, "}")
			if len(fields) < 3 || open < 0 || close <= open {
				return nil, fmt.Errorf("xdc: line %d: malformed add_cells_to_pblock", lineNo)
			}
			cs.AddCells(fields[1], strings.TrimSpace(line[open+1:close]))
		default:
			return nil, fmt.Errorf("xdc: line %d: unknown command %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cs, cs.Validate()
}

// parseRange parses "RAMB18_XaYb:RAMB18_XcYd".
func parseRange(s string) (Region, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return Region{}, fmt.Errorf("bad range %q", s)
	}
	x1, y1, err := parseSite(parts[0])
	if err != nil {
		return Region{}, err
	}
	x2, y2, err := parseSite(parts[1])
	if err != nil {
		return Region{}, err
	}
	return Region{X1: x1, Y1: y1, X2: x2, Y2: y2}.Normalize(), nil
}

// parseSite parses "RAMB18_XaYb".
func parseSite(s string) (x, y int, err error) {
	if !strings.HasPrefix(s, "RAMB18_X") {
		return 0, 0, fmt.Errorf("bad site %q", s)
	}
	rest := strings.TrimPrefix(s, "RAMB18_X")
	yIdx := strings.IndexByte(rest, 'Y')
	if yIdx < 0 {
		return 0, 0, fmt.Errorf("bad site %q", s)
	}
	if _, err := fmt.Sscanf(rest[:yIdx], "%d", &x); err != nil {
		return 0, 0, fmt.Errorf("bad X in %q", s)
	}
	if _, err := fmt.Sscanf(rest[yIdx+1:], "%d", &y); err != nil {
		return 0, 0, fmt.Errorf("bad Y in %q", s)
	}
	return x, y, nil
}
