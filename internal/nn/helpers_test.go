package nn

import "repro/internal/prng"

// newTestSource returns a deterministic source for test-local injection.
func newTestSource() *prng.Source { return prng.NewKeyed("nn-test-source") }
