// Package nn implements the paper's neural-network workload (Section III,
// Table III): a fully-connected classifier with logarithmic-sigmoid hidden
// activations and a softmax output layer, trained offline (the paper uses
// MATLAB; here a built-in SGD/backprop trainer), then quantized to the
// 16-bit per-layer minimum-precision fixed-point model of Fig. 9 for
// deployment on the FPGA accelerator.
package nn

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/fixed"
	"repro/internal/prng"
)

// PaperTopology is the Table III network: 784-1024-512-256-128-10, one input
// layer, four hidden layers, one output layer; ~1.49 M weights.
func PaperTopology() []int { return []int{784, 1024, 512, 256, 128, 10} }

// Layer is one fully-connected weight set Layer_j between L_j and L_{j+1}.
type Layer struct {
	In, Out int
	W       []float64 // row-major [Out][In]
	B       []float64 // [Out]
}

// At returns W[row][col].
func (l *Layer) At(row, col int) float64 { return l.W[row*l.In+col] }

// NumWeights returns the weight count excluding biases.
func (l *Layer) NumWeights() int { return l.In * l.Out }

// NumParams returns weights plus biases.
func (l *Layer) NumParams() int { return l.NumWeights() + l.Out }

// Network is a fully-connected feed-forward classifier.
type Network struct {
	Topology []int
	Layers   []*Layer
}

// New builds a network with Xavier-uniform initial weights, deterministic in
// the seed key.
func New(topology []int, key string) (*Network, error) {
	if len(topology) < 2 {
		return nil, errors.New("nn: topology needs at least input and output layers")
	}
	for _, n := range topology {
		if n <= 0 {
			return nil, fmt.Errorf("nn: non-positive layer size in %v", topology)
		}
	}
	src := prng.NewKeyed("nn-init:" + key)
	net := &Network{Topology: append([]int(nil), topology...)}
	for j := 0; j+1 < len(topology); j++ {
		in, out := topology[j], topology[j+1]
		l := &Layer{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out)}
		// Xavier-uniform, with the 4x gain appropriate for the logistic
		// sigmoid (its derivative at 0 is 1/4 of tanh's): without the gain,
		// gradients vanish through the paper's four hidden layers.
		bound := 4 * math.Sqrt(6.0/float64(in+out))
		if j == len(topology)-2 {
			bound = math.Sqrt(6.0 / float64(in+out)) // softmax output layer
		}
		ls := src.DeriveN(uint64(j))
		for i := range l.W {
			l.W[i] = (2*ls.Float64() - 1) * bound
		}
		net.Layers = append(net.Layers, l)
	}
	return net, nil
}

// NumWeights returns the total weight count (the paper's ~1.5 million for
// the Table III topology).
func (n *Network) NumWeights() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumWeights()
	}
	return total
}

// NumParams returns weights plus biases.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumParams()
	}
	return total
}

// LogSig is the logarithmic sigmoid activation of the paper's hidden layers.
func LogSig(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward runs inference and returns the softmax output distribution.
// scratch may be nil; pass a Scratch to avoid allocation in hot loops.
func (n *Network) Forward(x []float64, s *Scratch) []float64 {
	if s == nil {
		s = n.NewScratch()
	}
	act := s.acts[0]
	copy(act, x)
	for j, l := range n.Layers {
		next := s.acts[j+1]
		affine(l, act, next)
		if j == len(n.Layers)-1 {
			softmax(next)
		} else {
			for i := range next {
				next[i] = LogSig(next[i])
			}
		}
		act = next
	}
	return act
}

// affine computes next = W*act + B.
func affine(l *Layer, act, next []float64) {
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, a := range act {
			sum += row[i] * a
		}
		next[o] = sum
	}
}

// softmax normalizes in place (numerically stable form).
func softmax(v []float64) {
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	sum := 0.0
	for i := range v {
		v[i] = math.Exp(v[i] - maxV)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// Predict returns the argmax class for x.
func (n *Network) Predict(x []float64, s *Scratch) int {
	out := n.Forward(x, s)
	best := 0
	for i, v := range out {
		if v > out[best] {
			best = i
		}
	}
	return best
}

// Scratch holds per-goroutine forward/backward buffers.
type Scratch struct {
	acts   [][]float64 // activations per level (including input)
	deltas [][]float64 // error terms per non-input level
}

// NewScratch allocates buffers matching the network's topology.
func (n *Network) NewScratch() *Scratch {
	s := &Scratch{}
	for _, sz := range n.Topology {
		s.acts = append(s.acts, make([]float64, sz))
	}
	for _, sz := range n.Topology[1:] {
		s.deltas = append(s.deltas, make([]float64, sz))
	}
	return s
}

// Gradient mirrors the network's parameters for accumulation.
type Gradient struct {
	W [][]float64
	B [][]float64
	N int // samples accumulated
}

// NewGradient allocates a zero gradient for the network.
func (n *Network) NewGradient() *Gradient {
	g := &Gradient{}
	for _, l := range n.Layers {
		g.W = append(g.W, make([]float64, len(l.W)))
		g.B = append(g.B, make([]float64, len(l.B)))
	}
	return g
}

// Reset zeroes the gradient.
func (g *Gradient) Reset() {
	for j := range g.W {
		clear(g.W[j])
		clear(g.B[j])
	}
	g.N = 0
}

// Add merges another gradient into g.
func (g *Gradient) Add(o *Gradient) {
	for j := range g.W {
		for i, v := range o.W[j] {
			g.W[j][i] += v
		}
		for i, v := range o.B[j] {
			g.B[j][i] += v
		}
	}
	g.N += o.N
}

// backprop accumulates the cross-entropy gradient of one sample into g.
// Returns the sample's loss.
func (n *Network) backprop(x []float64, label int, s *Scratch, g *Gradient) float64 {
	// Forward pass keeping every activation.
	copy(s.acts[0], x)
	for j, l := range n.Layers {
		affine(l, s.acts[j], s.acts[j+1])
		if j == len(n.Layers)-1 {
			softmax(s.acts[j+1])
		} else {
			a := s.acts[j+1]
			for i := range a {
				a[i] = LogSig(a[i])
			}
		}
	}
	out := s.acts[len(s.acts)-1]
	loss := -math.Log(math.Max(out[label], 1e-300))

	// Output delta: softmax + cross-entropy gives (p - onehot).
	last := len(n.Layers) - 1
	dOut := s.deltas[last]
	copy(dOut, out)
	dOut[label] -= 1

	// Hidden deltas: delta_j = (W_{j+1}^T delta_{j+1}) * a_j * (1 - a_j).
	for j := last - 1; j >= 0; j-- {
		l := n.Layers[j+1]
		dNext := s.deltas[j+1]
		d := s.deltas[j]
		a := s.acts[j+1]
		for i := 0; i < l.In; i++ {
			sum := 0.0
			for o := 0; o < l.Out; o++ {
				sum += l.W[o*l.In+i] * dNext[o]
			}
			d[i] = sum * a[i] * (1 - a[i])
		}
	}

	// Accumulate parameter gradients.
	for j, l := range n.Layers {
		d := s.deltas[j]
		a := s.acts[j]
		gw := g.W[j]
		for o := 0; o < l.Out; o++ {
			do := d[o]
			if do == 0 {
				continue
			}
			row := gw[o*l.In : (o+1)*l.In]
			for i, ai := range a {
				row[i] += do * ai
			}
			g.B[j][o] += do
		}
	}
	g.N++
	return loss
}

// TrainOptions tunes the SGD trainer.
type TrainOptions struct {
	Epochs    int     // default 3
	BatchSize int     // default 32
	LearnRate float64 // default 0.5 (logsig nets like large rates)
	Momentum  float64 // classical momentum; default 0.9 (set negative for none)
	Workers   int     // default GOMAXPROCS
	Seed      string  // shuffling key; default "train"
	Verbose   func(epoch int, loss float64)
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs <= 0 {
		o.Epochs = 3
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	if o.LearnRate <= 0 {
		o.LearnRate = 0.5
	}
	if o.Momentum == 0 {
		o.Momentum = 0.9
	} else if o.Momentum < 0 {
		o.Momentum = 0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == "" {
		o.Seed = "train"
	}
	return o
}

// Train runs mini-batch SGD over the samples. Gradients within a batch are
// computed in parallel across workers and merged, so results are
// deterministic for a fixed options set.
func (n *Network) Train(xs [][]float64, ys []int, opts TrainOptions) (finalLoss float64, err error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, errors.New("nn: bad training set")
	}
	o := opts.withDefaults()
	src := prng.NewKeyed("nn-shuffle:" + o.Seed)

	type shard struct {
		grad    *Gradient
		scratch *Scratch
		loss    float64
	}
	shards := make([]*shard, o.Workers)
	for i := range shards {
		shards[i] = &shard{grad: n.NewGradient(), scratch: n.NewScratch()}
	}
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	velocity := n.NewGradient() // momentum state, reusing the gradient shape

	for epoch := 0; epoch < o.Epochs; epoch++ {
		src.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += o.BatchSize {
			end := start + o.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			for _, sh := range shards {
				sh.grad.Reset()
				sh.loss = 0
			}
			var wg sync.WaitGroup
			per := (len(batch) + o.Workers - 1) / o.Workers
			for w := 0; w < o.Workers; w++ {
				lo := w * per
				if lo >= len(batch) {
					break
				}
				hi := lo + per
				if hi > len(batch) {
					hi = len(batch)
				}
				wg.Add(1)
				go func(sh *shard, idxs []int) {
					defer wg.Done()
					for _, i := range idxs {
						sh.loss += n.backprop(xs[i], ys[i], sh.scratch, sh.grad)
					}
				}(shards[w], batch[lo:hi])
			}
			wg.Wait()
			total := shards[0].grad
			for _, sh := range shards[1:] {
				if sh.grad.N > 0 {
					total.Add(sh.grad)
				}
				epochLoss += sh.loss
			}
			epochLoss += shards[0].loss
			if total.N == 0 {
				continue
			}
			scale := o.LearnRate / float64(total.N)
			for j, l := range n.Layers {
				gw, gb := total.W[j], total.B[j]
				vw, vb := velocity.W[j], velocity.B[j]
				for i := range l.W {
					vw[i] = o.Momentum*vw[i] - scale*gw[i]
					l.W[i] += vw[i]
				}
				for i := range l.B {
					vb[i] = o.Momentum*vb[i] - scale*gb[i]
					l.B[i] += vb[i]
				}
			}
		}
		finalLoss = epochLoss / float64(len(order))
		if o.Verbose != nil {
			o.Verbose(epoch, finalLoss)
		}
	}
	return finalLoss, nil
}

// Evaluate returns the classification error rate (fraction misclassified)
// over the given set, computed in parallel.
func (n *Network) Evaluate(xs [][]float64, ys []int, workers int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wrong int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := (len(xs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= len(xs) {
			break
		}
		hi := lo + per
		if hi > len(xs) {
			hi = len(xs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := n.NewScratch()
			local := int64(0)
			for i := lo; i < hi; i++ {
				if n.Predict(xs[i], s) != ys[i] {
					local++
				}
			}
			mu.Lock()
			wrong += local
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return float64(wrong) / float64(len(xs))
}

// Clone deep-copies the network.
func (n *Network) Clone() *Network {
	c := &Network{Topology: append([]int(nil), n.Topology...)}
	for _, l := range n.Layers {
		c.Layers = append(c.Layers, &Layer{
			In: l.In, Out: l.Out,
			W: append([]float64(nil), l.W...),
			B: append([]float64(nil), l.B...),
		})
	}
	return c
}

// Quantized is the fixed-point deployment form: per layer, the minimum
// digit-width format of Fig. 9 and the words (weights then biases) that get
// written into BRAMs.
type Quantized struct {
	Topology []int
	Formats  []fixed.Format
	Words    [][]fixed.Word // per layer: In*Out weights, then Out biases
}

// Quantize converts a trained float network into its 16-bit fixed-point
// deployment form using the per-layer minimum-precision analysis.
func Quantize(n *Network) *Quantized {
	q := &Quantized{Topology: append([]int(nil), n.Topology...)}
	for _, l := range n.Layers {
		all := make([]float64, 0, l.NumParams())
		all = append(all, l.W...)
		all = append(all, l.B...)
		f := fixed.MinimalFormat(all)
		q.Formats = append(q.Formats, f)
		q.Words = append(q.Words, fixed.QuantizeSlice(f, all))
	}
	return q
}

// LayerWords returns the word count of layer j (weights + biases).
func (q *Quantized) LayerWords(j int) int { return len(q.Words[j]) }

// TotalWords returns the BRAM words the whole network occupies.
func (q *Quantized) TotalWords() int {
	total := 0
	for _, ws := range q.Words {
		total += len(ws)
	}
	return total
}

// OneBitFraction returns the share of "1" bits across all stored words — the
// sparsity statistic behind the paper's inherent fault-tolerance argument
// (76.3% of MNIST weight bits are "0", i.e. a 0.237 one-bit fraction).
func (q *Quantized) OneBitFraction() float64 {
	ones, bits := 0, 0
	for _, ws := range q.Words {
		for _, w := range ws {
			ones += w.OneBits()
		}
		bits += len(ws) * fixed.WordBits
	}
	if bits == 0 {
		return 0
	}
	return float64(ones) / float64(bits)
}

// Dequantize reconstructs a float network from (possibly corrupted) words.
// The words argument defaults to q.Words; pass modified copies to model
// BRAM read faults.
func (q *Quantized) Dequantize(words [][]fixed.Word) (*Network, error) {
	if words == nil {
		words = q.Words
	}
	if len(words) != len(q.Formats) {
		return nil, fmt.Errorf("nn: %d word layers for %d formats", len(words), len(q.Formats))
	}
	net := &Network{Topology: append([]int(nil), q.Topology...)}
	for j, f := range q.Formats {
		in, out := q.Topology[j], q.Topology[j+1]
		want := in*out + out
		if len(words[j]) != want {
			return nil, fmt.Errorf("nn: layer %d has %d words, want %d", j, len(words[j]), want)
		}
		vals := fixed.ValueSlice(f, words[j])
		net.Layers = append(net.Layers, &Layer{
			In: in, Out: out,
			W: vals[:in*out],
			B: vals[in*out:],
		})
	}
	return net, nil
}

// QuantizationError returns the classification-error difference between the
// quantized and float networks on the given set (positive means the
// quantized network is worse).
func QuantizationError(n *Network, xs [][]float64, ys []int, workers int) (float64, error) {
	q := Quantize(n)
	qn, err := q.Dequantize(nil)
	if err != nil {
		return 0, err
	}
	return qn.Evaluate(xs, ys, workers) - n.Evaluate(xs, ys, workers), nil
}
