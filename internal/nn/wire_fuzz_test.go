package nn

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/fixed"
)

// fuzzSeedNetwork builds a tiny but real document for the seed corpus.
func fuzzSeedNetwork(tb testing.TB) []byte {
	tb.Helper()
	q := &Quantized{
		Topology: []int{2, 3, 2},
		Formats:  []fixed.Format{fixed.NewFormat(0), fixed.NewFormat(1)},
		Words: [][]fixed.Word{
			make([]fixed.Word, 2*3+3),
			make([]fixed.Word, 3*2+2),
		},
	}
	for _, ws := range q.Words {
		for i := range ws {
			ws[i] = fixed.Word(i * 257)
		}
	}
	data, err := q.MarshalWire()
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzUnmarshalWire asserts the network decoder's contract: any input either
// decodes into a network that re-validates and round-trips, or errors — it
// must never panic, whatever topology/format/word-count corruption the
// document carries.
func FuzzUnmarshalWire(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"topology":[2,2],"layers":[{"digit":0,"frac":15,"words":"AAAA"}]}`))
	f.Add([]byte(`{"version":1,"topology":[1,1],"layers":[{"digit":7,"frac":8,"words":"!!"}]}`))
	// v2 sparse-codec seeds: a full zero run, and a run mixed with varint
	// words (including a sign-rotated negative).
	f.Add([]byte(`{"version":2,"topology":[2,2],"layers":[{"digit":0,"frac":15,"words":"AAY="}]}`))
	f.Add([]byte(`{"version":2,"topology":[1,1],"layers":[{"digit":0,"frac":15,"words":"AAEC"}]}`))
	f.Add(fuzzSeedNetwork(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := UnmarshalWire(data)
		if err != nil {
			return
		}
		// An accepted document must satisfy every invariant the rest of the
		// system assumes (Dequantize and the placement pipeline index by
		// topology without re-checking).
		if err := q.validateShape(); err != nil {
			t.Fatalf("decoder accepted an invalid network: %v", err)
		}
		out, err := q.MarshalWire()
		if err != nil {
			t.Fatalf("re-encode of accepted network failed: %v", err)
		}
		q2, err := UnmarshalWire(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}

// FuzzUnmarshalTestSet asserts the test-set decoder errors (never panics) on
// malformed documents and only accepts internally consistent ones.
func FuzzUnmarshalTestSet(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	seed, err := MarshalTestSet([][]float64{{0.5, 0.25}, {1, 0}}, []int{1, 0})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	var doc map[string]any
	if err := json.Unmarshal(seed, &doc); err != nil {
		f.Fatal(err)
	}
	doc["samples"] = 3
	grown, err := json.Marshal(doc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(grown)
	f.Fuzz(func(t *testing.T, data []byte) {
		xs, ys, err := UnmarshalTestSet(data)
		if err != nil {
			return
		}
		if len(xs) == 0 || len(xs) != len(ys) {
			t.Fatalf("decoder accepted a misaligned set: %d inputs, %d labels", len(xs), len(ys))
		}
		features := len(xs[0])
		for i, x := range xs {
			if len(x) != features {
				t.Fatalf("decoder accepted a ragged set at sample %d", i)
			}
			if ys[i] < 0 {
				t.Fatalf("decoder accepted negative label %d", ys[i])
			}
		}
		// Accepted sets re-encode canonically.
		out, err := MarshalTestSet(xs, ys)
		if err != nil {
			t.Fatalf("re-encode of accepted test set failed: %v", err)
		}
		x2, y2, err := UnmarshalTestSet(out)
		if err != nil || !reflect.DeepEqual(xs, x2) || !reflect.DeepEqual(ys, y2) {
			t.Fatalf("decode/encode/decode is not a fixed point: %v", err)
		}
	})
}
