package nn

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/fixed"
)

// WireVersion is the current version of the nn wire format: encoders emit
// it, decoders accept it and every earlier version back to MinWireVersion.
// Any change to the layout below must bump it.
//
// Version history:
//
//	v1 — weight words as base64 of the flat codec (fixed.EncodeWords,
//	     2 bytes/word).
//	v2 — weight words as base64 of the sparse codec
//	     (fixed.EncodePackedWords: sign-rotated varints with zero-run
//	     compression), sized to the paper's weight statistics (76.3% of
//	     MNIST weight bits are "0"). Test-set documents are unchanged
//	     beyond the version stamp.
const WireVersion = 2

// MinWireVersion is the oldest wire version decoders still accept.
const MinWireVersion = 1

// Wire-format bounds. Decode rejects documents outside them before any large
// allocation happens, so a hostile or corrupt document cannot make an
// unauthenticated endpoint materialize unbounded memory. The caps leave
// generous headroom over the paper's largest configuration (the Table III
// topology is 6 levels and ~1.5 M parameters; MNIST's test split is 10 000
// samples of 784 features).
const (
	// MaxWireLevels bounds len(Topology) (levels, i.e. layers + 1).
	MaxWireLevels = 16
	// MaxWireNodes bounds a single level's width.
	MaxWireNodes = 1 << 16
	// MaxWireWords bounds the total stored words across all layers (~4 M
	// words = 8 MB decoded; the paper topology needs ~1.5 M).
	MaxWireWords = 1 << 22
	// MaxWireSamples bounds a wire test set's sample count.
	MaxWireSamples = 1 << 16
	// MaxWireFeatures bounds a wire test set's per-sample feature count.
	MaxWireFeatures = MaxWireNodes
)

// wireQuantized is the JSON envelope of a serialized Quantized network. The
// weight blobs are base64 of a fixed word codec — flat little-endian uint16
// in v1, the zero-run/varint sparse codec in v2 — so a paper-scale network
// rides in ~2 MB of JSON instead of the ~20 MB a float-array encoding would
// take.
type wireQuantized struct {
	Version  int         `json:"version"`
	Topology []int       `json:"topology"`
	Layers   []wireLayer `json:"layers"`
}

// wireLayer is one layer's format and parameter words (weights then biases,
// as Quantize lays them out).
type wireLayer struct {
	Digit uint8  `json:"digit"`
	Frac  uint8  `json:"frac"`
	Words string `json:"words"`
}

// validateShape checks the structural invariants shared by encode and
// decode: a plausible topology, one valid format and exactly In*Out+Out
// words per layer, and a bounded total.
func (q *Quantized) validateShape() error {
	if len(q.Topology) < 2 {
		return fmt.Errorf("nn: topology %v needs at least input and output levels", q.Topology)
	}
	if len(q.Topology) > MaxWireLevels {
		return fmt.Errorf("nn: topology has %d levels, limit %d", len(q.Topology), MaxWireLevels)
	}
	for _, n := range q.Topology {
		if n <= 0 || n > MaxWireNodes {
			return fmt.Errorf("nn: level size %d out of range [1, %d]", n, MaxWireNodes)
		}
	}
	layers := len(q.Topology) - 1
	if len(q.Formats) != layers || len(q.Words) != layers {
		return fmt.Errorf("nn: %d-level topology with %d formats and %d word layers",
			len(q.Topology), len(q.Formats), len(q.Words))
	}
	total := 0
	for j := 0; j < layers; j++ {
		if !q.Formats[j].Valid() {
			return fmt.Errorf("nn: layer %d format %+v does not use the %d magnitude bits",
				j, q.Formats[j], fixed.MagnitudeBits)
		}
		want := q.Topology[j]*q.Topology[j+1] + q.Topology[j+1]
		if len(q.Words[j]) != want {
			return fmt.Errorf("nn: layer %d has %d words, want %d", j, len(q.Words[j]), want)
		}
		total += want
		if total > MaxWireWords {
			return fmt.Errorf("nn: network exceeds the %d-word wire limit", MaxWireWords)
		}
	}
	return nil
}

// MarshalWire serializes the quantized network into the versioned wire form:
// a JSON envelope carrying the topology, each layer's fixed-point format,
// and its words as base64 of the compact binary codec. The document is what
// lets an NNInference campaign ride the fpgavoltd HTTP API.
func (q *Quantized) MarshalWire() ([]byte, error) {
	if err := q.validateShape(); err != nil {
		return nil, fmt.Errorf("nn: marshal wire: %w", err)
	}
	doc := wireQuantized{Version: WireVersion, Topology: q.Topology}
	for j, f := range q.Formats {
		doc.Layers = append(doc.Layers, wireLayer{
			Digit: f.Digit,
			Frac:  f.Frac,
			Words: base64.StdEncoding.EncodeToString(fixed.EncodePackedWords(q.Words[j])),
		})
	}
	return json.Marshal(doc)
}

// UnmarshalWire decodes a MarshalWire document, strictly: unknown versions,
// malformed base64, and any topology/format/word-count inconsistency are
// errors, never a partially-populated network. Both current wire versions
// decode — v1's flat word blobs and v2's sparse ones — so documents written
// before the codec change stay readable. The returned Quantized is fully
// independent of data.
func UnmarshalWire(data []byte) (*Quantized, error) {
	var doc wireQuantized
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("nn: unmarshal wire: %w", err)
	}
	if doc.Version < MinWireVersion || doc.Version > WireVersion {
		return nil, fmt.Errorf("nn: unsupported wire version %d (accept %d..%d)", doc.Version, MinWireVersion, WireVersion)
	}
	q := &Quantized{Topology: doc.Topology}
	if len(doc.Layers) != len(doc.Topology)-1 {
		// Checked here (not just by validateShape) so a short Layers slice
		// errors on counts, not on a misleading index panic below.
		return nil, fmt.Errorf("nn: unmarshal wire: %d levels with %d layers", len(doc.Topology), len(doc.Layers))
	}
	for j, l := range doc.Layers {
		f := fixed.Format{Digit: l.Digit, Frac: l.Frac}
		if !f.Valid() {
			return nil, fmt.Errorf("nn: unmarshal wire: layer %d format s%d.%d invalid", j, l.Digit, l.Frac)
		}
		blob, err := base64.StdEncoding.DecodeString(l.Words)
		if err != nil {
			return nil, fmt.Errorf("nn: unmarshal wire: layer %d words: %w", j, err)
		}
		var ws []fixed.Word
		if doc.Version >= 2 {
			ws, err = fixed.DecodePackedWords(blob, MaxWireWords)
		} else {
			ws, err = fixed.DecodeWords(blob)
		}
		if err != nil {
			return nil, fmt.Errorf("nn: unmarshal wire: layer %d: %w", j, err)
		}
		q.Formats = append(q.Formats, f)
		q.Words = append(q.Words, ws)
	}
	if err := q.validateShape(); err != nil {
		return nil, fmt.Errorf("nn: unmarshal wire: %w", err)
	}
	return q, nil
}

// wireTestSet is the JSON envelope of a serialized test set: row-major
// float32 inputs (base64, little-endian) plus plain integer labels.
type wireTestSet struct {
	Version  int    `json:"version"`
	Samples  int    `json:"samples"`
	Features int    `json:"features"`
	X        string `json:"x"`
	Y        []int  `json:"y"`
}

// MarshalTestSet serializes an aligned test set into the versioned wire
// form. Inputs are narrowed to float32 — ample for the pixel-scale features
// the benchmarks use, and half the bytes; callers who need the remote run to
// match a local one bit-for-bit should evaluate the decoded copy (see
// UnmarshalTestSet), which is exactly what the service does.
func MarshalTestSet(xs [][]float64, ys []int) ([]byte, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("nn: marshal test set: %d inputs, %d labels", len(xs), len(ys))
	}
	if len(xs) > MaxWireSamples {
		return nil, fmt.Errorf("nn: marshal test set: %d samples exceed the %d limit", len(xs), MaxWireSamples)
	}
	features := len(xs[0])
	if features == 0 || features > MaxWireFeatures {
		return nil, fmt.Errorf("nn: marshal test set: %d features out of range [1, %d]", features, MaxWireFeatures)
	}
	blob := make([]byte, 0, len(xs)*features*4)
	var scratch [4]byte
	for i, x := range xs {
		if len(x) != features {
			return nil, fmt.Errorf("nn: marshal test set: sample %d has %d features, want %d", i, len(x), features)
		}
		if ys[i] < 0 {
			return nil, fmt.Errorf("nn: marshal test set: negative label %d at sample %d", ys[i], i)
		}
		for _, v := range x {
			f := float32(v)
			if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
				return nil, fmt.Errorf("nn: marshal test set: non-finite input %g at sample %d", v, i)
			}
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(f))
			blob = append(blob, scratch[:]...)
		}
	}
	return json.Marshal(wireTestSet{
		Version:  WireVersion,
		Samples:  len(xs),
		Features: features,
		X:        base64.StdEncoding.EncodeToString(blob),
		Y:        ys,
	})
}

// UnmarshalTestSet decodes a MarshalTestSet document, strictly: the blob
// length must match samples×features exactly, labels must be non-negative,
// and every input must be finite.
func UnmarshalTestSet(data []byte) ([][]float64, []int, error) {
	var doc wireTestSet
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, fmt.Errorf("nn: unmarshal test set: %w", err)
	}
	if doc.Version < MinWireVersion || doc.Version > WireVersion {
		// The test-set layout is identical across versions; the stamp still
		// gates so a future layout change has somewhere to hook.
		return nil, nil, fmt.Errorf("nn: unsupported test-set wire version %d (accept %d..%d)", doc.Version, MinWireVersion, WireVersion)
	}
	if doc.Samples <= 0 || doc.Samples > MaxWireSamples {
		return nil, nil, fmt.Errorf("nn: unmarshal test set: %d samples out of range [1, %d]", doc.Samples, MaxWireSamples)
	}
	if doc.Features <= 0 || doc.Features > MaxWireFeatures {
		return nil, nil, fmt.Errorf("nn: unmarshal test set: %d features out of range [1, %d]", doc.Features, MaxWireFeatures)
	}
	if len(doc.Y) != doc.Samples {
		return nil, nil, fmt.Errorf("nn: unmarshal test set: %d labels for %d samples", len(doc.Y), doc.Samples)
	}
	blob, err := base64.StdEncoding.DecodeString(doc.X)
	if err != nil {
		return nil, nil, fmt.Errorf("nn: unmarshal test set: inputs: %w", err)
	}
	if len(blob) != doc.Samples*doc.Features*4 {
		return nil, nil, fmt.Errorf("nn: unmarshal test set: %d input bytes for %d×%d samples",
			len(blob), doc.Samples, doc.Features)
	}
	xs := make([][]float64, doc.Samples)
	for i := range xs {
		row := make([]float64, doc.Features)
		for k := range row {
			bits := binary.LittleEndian.Uint32(blob[(i*doc.Features+k)*4:])
			v := float64(math.Float32frombits(bits))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("nn: unmarshal test set: non-finite input at sample %d", i)
			}
			row[k] = v
		}
		xs[i] = row
	}
	ys := make([]int, doc.Samples)
	for i, y := range doc.Y {
		if y < 0 {
			return nil, nil, fmt.Errorf("nn: unmarshal test set: negative label %d at sample %d", y, i)
		}
		ys[i] = y
	}
	return xs, ys, nil
}
