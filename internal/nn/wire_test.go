package nn

import (
	"encoding/base64"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/fixed"
)

// trainedQuantized returns a small trained network's deployment form plus a
// matching test set, the fixture the wire tests share.
func trainedQuantized(t *testing.T) (*Quantized, [][]float64, []int) {
	t.Helper()
	xs, ys := tinyDataset()
	xs, ys = xs[:64], ys[:64]
	net, err := New([]int{12, 8, 4, 3}, "wire-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(xs, ys, TrainOptions{Epochs: 4, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	return Quantize(net), xs, ys
}

func TestWireRoundTripIsDeepEqual(t *testing.T) {
	q, _, _ := trainedQuantized(t)
	data, err := q.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalWire(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatal("decode(encode(q)) is not deep-equal to q")
	}
	// A second encode of the decoded network is byte-identical: the format
	// has one canonical form.
	data2, err := got.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("re-encoding the decoded network changed the document")
	}
}

func TestWireRoundTripInferenceIsBitIdentical(t *testing.T) {
	q, xs, ys := trainedQuantized(t)
	data, err := q.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalWire(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := q.Dequantize(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Dequantize(nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.NewScratch(), b.NewScratch()
	for i, x := range xs {
		oa := append([]float64(nil), a.Forward(x, sa)...)
		ob := b.Forward(x, sb)
		for k := range oa {
			if oa[k] != ob[k] {
				t.Fatalf("sample %d output %d differs: %v vs %v", i, k, oa[k], ob[k])
			}
		}
	}
	if ea, eb := a.Evaluate(xs, ys, 1), b.Evaluate(xs, ys, 1); ea != eb {
		t.Fatalf("error rates diverged: %v vs %v", ea, eb)
	}
}

func TestUnmarshalWireRejectsMalformedDocuments(t *testing.T) {
	q, _, _ := trainedQuantized(t)
	good, err := q.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(t *testing.T, f func(doc map[string]any)) []byte {
		t.Helper()
		var doc map[string]any
		if err := json.Unmarshal(good, &doc); err != nil {
			t.Fatal(err)
		}
		f(doc)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	layer := func(doc map[string]any, j int) map[string]any {
		return doc["layers"].([]any)[j].(map[string]any)
	}
	cases := map[string][]byte{
		"not json":         []byte("not json"),
		"empty":            []byte(`{}`),
		"wrong version":    mutate(t, func(d map[string]any) { d["version"] = WireVersion + 1 }),
		"empty topology":   mutate(t, func(d map[string]any) { d["topology"] = []int{} }),
		"single level":     mutate(t, func(d map[string]any) { d["topology"] = []int{4} }),
		"zero level width": mutate(t, func(d map[string]any) { d["topology"] = []int{2, 0, 2} }),
		"negative width":   mutate(t, func(d map[string]any) { d["topology"] = []int{2, -8, 2} }),
		"huge width":       mutate(t, func(d map[string]any) { d["topology"] = []int{2, MaxWireNodes + 1, 2} }),
		"layer count":      mutate(t, func(d map[string]any) { d["layers"] = d["layers"].([]any)[:1] }),
		"bad format":       mutate(t, func(d map[string]any) { layer(d, 0)["digit"] = 9 }),
		"bad base64":       mutate(t, func(d map[string]any) { layer(d, 0)["words"] = "!!!" }),
		"odd blob":         mutate(t, func(d map[string]any) { layer(d, 0)["words"] = "AAA=" }), // 2 chars of payload → 1 byte
		"short words":      mutate(t, func(d map[string]any) { layer(d, 0)["words"] = "AAAA" }),
		"topology mismatch": mutate(t, func(d map[string]any) {
			d["topology"] = []int{13, 8, 4, 3} // words sized for 12 inputs
		}),
	}
	for name, data := range cases {
		if _, err := UnmarshalWire(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestMarshalWireRejectsBadShapes(t *testing.T) {
	q, _, _ := trainedQuantized(t)
	broken := &Quantized{Topology: q.Topology, Formats: q.Formats, Words: q.Words[:1]}
	if _, err := broken.MarshalWire(); err == nil {
		t.Fatal("marshaled a network with a missing word layer")
	}
	short := &Quantized{
		Topology: q.Topology,
		Formats:  q.Formats,
		Words:    [][]fixed.Word{q.Words[0][:3], q.Words[1], q.Words[2]},
	}
	if _, err := short.MarshalWire(); err == nil {
		t.Fatal("marshaled a network with truncated words")
	}
}

func TestTestSetWireRoundTrip(t *testing.T) {
	_, xs, ys := trainedQuantized(t)
	data, err := MarshalTestSet(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	gx, gy, err := UnmarshalTestSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(gx) != len(xs) || len(gy) != len(ys) {
		t.Fatalf("round trip sizes %d/%d, want %d/%d", len(gx), len(gy), len(xs), len(ys))
	}
	for i := range xs {
		if gy[i] != ys[i] {
			t.Fatalf("label %d changed: %d vs %d", i, gy[i], ys[i])
		}
		for k := range xs[i] {
			// The wire narrows to float32; the decoded value must be the
			// exact float32 image of the original.
			if want := float64(float32(xs[i][k])); gx[i][k] != want {
				t.Fatalf("input [%d][%d] decoded as %v, want %v", i, k, gx[i][k], want)
			}
		}
	}

	// A decoded set re-encodes byte-identically (float32 is a fixed point of
	// the narrowing), so payloads are stable across hops.
	data2, err := MarshalTestSet(gx, gy)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("re-encoding the decoded test set changed the document")
	}
}

func TestTestSetWireRejectsMalformedDocuments(t *testing.T) {
	data, err := MarshalTestSet([][]float64{{0.5, 1}, {0.25, 0}}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(doc map[string]any)) []byte {
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		f(doc)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := map[string][]byte{
		"not json":        []byte("["),
		"empty":           []byte(`{}`),
		"wrong version":   mutate(func(d map[string]any) { d["version"] = 99 }),
		"zero samples":    mutate(func(d map[string]any) { d["samples"] = 0 }),
		"huge samples":    mutate(func(d map[string]any) { d["samples"] = MaxWireSamples + 1 }),
		"zero features":   mutate(func(d map[string]any) { d["features"] = 0 }),
		"label count":     mutate(func(d map[string]any) { d["y"] = []int{0} }),
		"negative label":  mutate(func(d map[string]any) { d["y"] = []int{0, -1} }),
		"bad base64":      mutate(func(d map[string]any) { d["x"] = "%" }),
		"short blob":      mutate(func(d map[string]any) { d["x"] = "AAAAAA==" }),
		"features resize": mutate(func(d map[string]any) { d["features"] = 3 }),
	}
	for name, doc := range cases {
		if _, _, err := UnmarshalTestSet(doc); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	if _, err := MarshalTestSet([][]float64{{1, 2}, {3}}, []int{0, 1}); err == nil {
		t.Error("marshaled a ragged test set")
	}
	if _, err := MarshalTestSet(nil, nil); err == nil {
		t.Error("marshaled an empty test set")
	}
	if _, err := MarshalTestSet([][]float64{{1}}, []int{-2}); err == nil {
		t.Error("marshaled a negative label")
	}
}

// marshalWireV1 renders q in the retired v1 layout (flat 2-byte word blobs),
// the form every pre-v2 document on disk or in flight carries.
func marshalWireV1(t *testing.T, q *Quantized) []byte {
	t.Helper()
	doc := wireQuantized{Version: 1, Topology: q.Topology}
	for j, f := range q.Formats {
		doc.Layers = append(doc.Layers, wireLayer{
			Digit: f.Digit,
			Frac:  f.Frac,
			Words: base64.StdEncoding.EncodeToString(fixed.EncodeWords(q.Words[j])),
		})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWireV1StillDecodes pins backward compatibility across the v2 codec
// change: a v1 document decodes to the same network a v2 one does.
func TestWireV1StillDecodes(t *testing.T) {
	q, _, _ := trainedQuantized(t)
	got, err := UnmarshalWire(marshalWireV1(t, q))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatal("v1 document did not decode to the original network")
	}
	// Its re-encode is a current-version document that round-trips.
	data2, err := got.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := UnmarshalWire(data2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q2, q) {
		t.Fatal("v1→v2 re-encode did not round-trip")
	}
}

// paperSparsityQuantized builds a network with the deployment statistics the
// paper reports for its trained MNIST model — the overwhelming majority of
// weight bits logic "0" (76.3%), here as a pruned layer mix of exact-zero
// words and small magnitudes of both signs.
func paperSparsityQuantized(t *testing.T) *Quantized {
	t.Helper()
	q := &Quantized{
		Topology: []int{64, 32, 10},
		Formats:  []fixed.Format{fixed.NewFormat(0), fixed.NewFormat(4)},
	}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 16
	}
	for j := 0; j < len(q.Topology)-1; j++ {
		n := q.Topology[j]*q.Topology[j+1] + q.Topology[j+1]
		ws := make([]fixed.Word, n)
		for i := range ws {
			r := next()
			switch {
			case r%100 < 70: // pruned weight
				ws[i] = 0
			default: // small magnitude, either sign
				w := fixed.Word(r % 256)
				if w != 0 && r%2 == 1 {
					w |= fixed.SignMask
				}
				ws[i] = w
			}
		}
		q.Words = append(q.Words, ws)
	}
	if frac := fixed.OneBitFraction(append(append([]fixed.Word{}, q.Words[0]...), q.Words[1]...)); frac > 0.25 {
		t.Fatalf("fixture one-bit fraction %.3f, want paper-like sparsity (<0.25)", frac)
	}
	return q
}

// TestWireV2ShrinksPaperSparsityNet pins the point of the codec change: on a
// network with the paper's weight sparsity, the v2 document is at least 40%
// smaller than the v1 rendering of the same network.
func TestWireV2ShrinksPaperSparsityNet(t *testing.T) {
	q := paperSparsityQuantized(t)
	v2, err := q.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	v1 := marshalWireV1(t, q)
	if got, err := UnmarshalWire(v2); err != nil || !reflect.DeepEqual(got, q) {
		t.Fatalf("v2 round trip broken: %v", err)
	}
	shrink := 1 - float64(len(v2))/float64(len(v1))
	if shrink < 0.40 {
		t.Fatalf("v2 document is %d bytes vs %d for v1 (%.1f%% shrink), want >=40%%",
			len(v2), len(v1), 100*shrink)
	}
	t.Logf("v1 %d bytes → v2 %d bytes (%.1f%% shrink)", len(v1), len(v2), 100*shrink)
}
