package nn

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fixed"
)

// tinyDataset is a fast, separable 3-class task for trainer tests.
func tinyDataset() (xs [][]float64, ys []int) {
	ds := dataset.ForestLike(dataset.Options{
		TrainSamples: 600, TestSamples: 1, Features: 12, Classes: 3,
	})
	return ds.TrainX, ds.TrainY
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := New([]int{5}, "x"); err == nil {
		t.Fatal("single-layer topology should fail")
	}
	if _, err := New([]int{5, 0, 3}, "x"); err == nil {
		t.Fatal("zero-width layer should fail")
	}
	n, err := New([]int{4, 8, 3}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 2 {
		t.Fatalf("layers = %d", len(n.Layers))
	}
}

func TestPaperTopologyCounts(t *testing.T) {
	n, err := New(PaperTopology(), "paper")
	if err != nil {
		t.Fatal(err)
	}
	// Table III: ~1.5 million weights (exactly 1,492,224).
	if got := n.NumWeights(); got != 1492224 {
		t.Fatalf("paper topology weights = %d, want 1492224", got)
	}
	if n.NumParams() != 1492224+1024+512+256+128+10 {
		t.Fatalf("params = %d", n.NumParams())
	}
}

func TestForwardIsDistribution(t *testing.T) {
	n, _ := New([]int{6, 10, 4}, "dist")
	x := []float64{0.1, 0.9, 0.3, 0, 1, 0.5}
	out := n.Forward(x, nil)
	if len(out) != 4 {
		t.Fatalf("output size = %d", len(out))
	}
	sum := 0.0
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("softmax out of range: %v", out)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sum = %v", sum)
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := New([]int{5, 7, 3}, "same")
	b, _ := New([]int{5, 7, 3}, "same")
	for j := range a.Layers {
		for i := range a.Layers[j].W {
			if a.Layers[j].W[i] != b.Layers[j].W[i] {
				t.Fatal("same key produced different weights")
			}
		}
	}
	c, _ := New([]int{5, 7, 3}, "other")
	if a.Layers[0].W[0] == c.Layers[0].W[0] {
		t.Fatal("different keys should differ")
	}
}

func TestLogSig(t *testing.T) {
	if LogSig(0) != 0.5 {
		t.Fatalf("logsig(0) = %v", LogSig(0))
	}
	if LogSig(100) < 0.999 || LogSig(-100) > 0.001 {
		t.Fatal("logsig saturation wrong")
	}
}

func TestTrainingLearnsSeparableTask(t *testing.T) {
	xs, ys := tinyDataset()
	n, _ := New([]int{12, 16, 8, 3}, "learn")
	before := n.Evaluate(xs, ys, 4)
	loss, err := n.Train(xs, ys, TrainOptions{Epochs: 15, BatchSize: 16, LearnRate: 0.8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	after := n.Evaluate(xs, ys, 4)
	if after >= before {
		t.Fatalf("training did not improve: %v -> %v", before, after)
	}
	if after > 0.10 {
		t.Fatalf("train error = %v, want near zero on separable data", after)
	}
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("final loss = %v", loss)
	}
}

func TestTrainDeterministic(t *testing.T) {
	xs, ys := tinyDataset()
	train := func() *Network {
		n, _ := New([]int{12, 10, 3}, "det")
		if _, err := n.Train(xs, ys, TrainOptions{Epochs: 3, BatchSize: 8, Workers: 3}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := train(), train()
	for j := range a.Layers {
		for i := range a.Layers[j].W {
			if math.Abs(a.Layers[j].W[i]-b.Layers[j].W[i]) > 1e-12 {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestTrainBadInputs(t *testing.T) {
	n, _ := New([]int{3, 2}, "bad")
	if _, err := n.Train(nil, nil, TrainOptions{}); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := n.Train([][]float64{{1, 2, 3}}, []int{0, 1}, TrainOptions{}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network: backprop must match finite
	// differences.
	n, _ := New([]int{3, 4, 2}, "gradcheck")
	x := []float64{0.2, 0.8, 0.5}
	label := 1
	s := n.NewScratch()
	g := n.NewGradient()
	n.backprop(x, label, s, g)

	loss := func() float64 {
		out := n.Forward(x, s)
		return -math.Log(out[label])
	}
	const eps = 1e-6
	for j, l := range n.Layers {
		for _, i := range []int{0, 1, len(l.W) - 1} {
			orig := l.W[i]
			l.W[i] = orig + eps
			up := loss()
			l.W[i] = orig - eps
			down := loss()
			l.W[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-g.W[j][i]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: backprop %v vs numeric %v",
					j, i, g.W[j][i], numeric)
			}
		}
		orig := l.B[0]
		l.B[0] = orig + eps
		up := loss()
		l.B[0] = orig - eps
		down := loss()
		l.B[0] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-g.B[j][0]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("layer %d bias: backprop %v vs numeric %v", j, g.B[j][0], numeric)
		}
	}
}

func TestEvaluateWorkersAgree(t *testing.T) {
	xs, ys := tinyDataset()
	n, _ := New([]int{12, 8, 3}, "workers")
	if e1, e8 := n.Evaluate(xs, ys, 1), n.Evaluate(xs, ys, 8); e1 != e8 {
		t.Fatalf("worker counts disagree: %v vs %v", e1, e8)
	}
}

func TestCloneIndependent(t *testing.T) {
	n, _ := New([]int{4, 5, 2}, "clone")
	c := n.Clone()
	c.Layers[0].W[0] += 1
	if n.Layers[0].W[0] == c.Layers[0].W[0] {
		t.Fatal("clone shares storage")
	}
}

func TestQuantizeFormats(t *testing.T) {
	n, _ := New([]int{4, 5, 2}, "quant")
	// Force layer 0 weights into (-1,1) and layer 1 to need digit bits.
	for i := range n.Layers[0].W {
		n.Layers[0].W[i] = 0.5 * math.Sin(float64(i))
	}
	for i := range n.Layers[1].W {
		n.Layers[1].W[i] = 9.0 * math.Cos(float64(i))
	}
	q := Quantize(n)
	if q.Formats[0].Digit != 0 {
		t.Fatalf("layer 0 digit bits = %d, want 0", q.Formats[0].Digit)
	}
	if q.Formats[1].Digit != 4 {
		t.Fatalf("layer 1 digit bits = %d, want 4 (|w| up to 9)", q.Formats[1].Digit)
	}
	if q.TotalWords() != n.NumParams() {
		t.Fatalf("total words = %d, want %d", q.TotalWords(), n.NumParams())
	}
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	xs, ys := tinyDataset()
	n, _ := New([]int{12, 10, 3}, "roundtrip")
	if _, err := n.Train(xs, ys, TrainOptions{Epochs: 5, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	q := Quantize(n)
	back, err := q.Dequantize(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization error on weights bounded by each format's resolution.
	for j, l := range n.Layers {
		res := q.Formats[j].Resolution()
		for i := range l.W {
			if math.Abs(l.W[i]-back.Layers[j].W[i]) > res {
				t.Fatalf("layer %d weight %d: %v vs %v", j, i, l.W[i], back.Layers[j].W[i])
			}
		}
	}
	// Accuracy barely moves.
	diff, err := QuantizationError(n, xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(diff) > 0.02 {
		t.Fatalf("quantization accuracy shift = %v", diff)
	}
}

func TestDequantizeValidation(t *testing.T) {
	n, _ := New([]int{3, 4, 2}, "val")
	q := Quantize(n)
	if _, err := q.Dequantize([][]fixed.Word{{}}); err == nil {
		t.Fatal("wrong layer count should fail")
	}
	bad := cloneWords(q.Words)
	bad[0] = bad[0][:3]
	if _, err := q.Dequantize(bad); err == nil {
		t.Fatal("wrong word count should fail")
	}
}

func TestOneBitFractionSmallWeights(t *testing.T) {
	// Trained nets have mostly small weights -> sparse bits under
	// sign-magnitude (the paper reports 23.7% ones for MNIST).
	n, _ := New([]int{50, 30, 5}, "sparsity")
	for _, l := range n.Layers {
		for i := range l.W {
			l.W[i] *= 0.3
		}
	}
	q := Quantize(n)
	if frac := q.OneBitFraction(); frac > 0.45 {
		t.Fatalf("one-bit fraction = %v, want sparse", frac)
	}
}

func TestLayerVulnerabilityOrdering(t *testing.T) {
	// Deeper layers should be more vulnerable (less masking), as in Fig. 13.
	ds := dataset.ForestLike(dataset.Options{
		TrainSamples: 900, TestSamples: 400, Features: 16, Classes: 4,
	})
	n, _ := New([]int{16, 24, 12, 4}, "vuln")
	if _, err := n.Train(ds.TrainX, ds.TrainY, TrainOptions{Epochs: 12, Workers: 6}); err != nil {
		t.Fatal(err)
	}
	q := Quantize(n)
	rep, err := LayerVulnerability(q, ds.TestX, ds.TestY, 40, 6, "test", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ErrorRise) != 3 {
		t.Fatalf("layers = %d", len(rep.ErrorRise))
	}
	last := len(rep.ErrorRise) - 1
	if rep.ErrorRise[last] <= rep.ErrorRise[0] {
		t.Fatalf("output layer should be more vulnerable: %v", rep.ErrorRise)
	}
	if rep.Normalized[last] < 1 {
		t.Fatalf("normalized vulnerability of last layer = %v", rep.Normalized[last])
	}
	if rep.String() == "" {
		t.Fatal("report string empty")
	}
}

func TestLayerVulnerabilityValidation(t *testing.T) {
	n, _ := New([]int{3, 2}, "v")
	q := Quantize(n)
	if _, err := LayerVulnerability(q, nil, nil, 0, 1, "k", 1); err == nil {
		t.Fatal("zero faults should fail")
	}
}

func TestInjectUndervoltingFlips(t *testing.T) {
	src := newTestSource()
	ws := make([]fixed.Word, 100)
	for i := range ws {
		ws[i] = 0xFFFF
	}
	applied := InjectUndervoltingFlips(ws, 50, 1.0, src) // pure 1->0
	if applied != 50 {
		t.Fatalf("applied = %d", applied)
	}
	ones := 0
	for _, w := range ws {
		ones += w.OneBits()
	}
	if ones != 100*16-50 {
		t.Fatalf("ones = %d, want %d", ones, 100*16-50)
	}
	// All-zero words cannot take 1->0 flips; must not loop forever.
	zero := make([]fixed.Word, 4)
	if n := InjectUndervoltingFlips(zero, 5, 1.0, src); n != 0 {
		t.Fatalf("applied %d flips to zero words", n)
	}
}
