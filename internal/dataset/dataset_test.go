package dataset

import (
	"testing"

	"repro/internal/nn"
)

func TestDefaultShapes(t *testing.T) {
	small := Options{TrainSamples: 50, TestSamples: 20}
	cases := []struct {
		ds       *Dataset
		features int
		classes  int
	}{
		{MNISTLike(small), 784, 10},
		{ForestLike(small), 54, 7},
		{ReutersLike(small), 900, 8},
	}
	for _, c := range cases {
		if c.ds.NumFeatures != c.features || c.ds.NumClasses != c.classes {
			t.Fatalf("%s shape = %d features %d classes", c.ds.Name, c.ds.NumFeatures, c.ds.NumClasses)
		}
		if len(c.ds.TrainX) != 50 || len(c.ds.TestX) != 20 {
			t.Fatalf("%s sample counts wrong", c.ds.Name)
		}
		for _, x := range c.ds.TrainX {
			if len(x) != c.features {
				t.Fatalf("%s feature vector length %d", c.ds.Name, len(x))
			}
		}
		for _, y := range c.ds.TrainY {
			if y < 0 || y >= c.classes {
				t.Fatalf("%s label out of range: %d", c.ds.Name, y)
			}
		}
	}
}

func TestValuesInRange(t *testing.T) {
	for _, ds := range []*Dataset{
		MNISTLike(Options{TrainSamples: 30, TestSamples: 5}),
		ForestLike(Options{TrainSamples: 30, TestSamples: 5}),
		ReutersLike(Options{TrainSamples: 30, TestSamples: 5}),
	} {
		for _, x := range ds.TrainX {
			for _, v := range x {
				if v < 0 || v > 1 {
					t.Fatalf("%s value out of [0,1]: %v", ds.Name, v)
				}
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := MNISTLike(Options{TrainSamples: 20, TestSamples: 5})
	b := MNISTLike(Options{TrainSamples: 20, TestSamples: 5})
	for i := range a.TrainX {
		if a.TrainY[i] != b.TrainY[i] {
			t.Fatal("labels differ across generations")
		}
		for f := range a.TrainX[i] {
			if a.TrainX[i][f] != b.TrainX[i][f] {
				t.Fatal("features differ across generations")
			}
		}
	}
}

func TestAllClassesPresent(t *testing.T) {
	ds := MNISTLike(Options{TrainSamples: 500, TestSamples: 100})
	seen := make(map[int]bool)
	for _, y := range ds.TrainY {
		seen[y] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d classes present", len(seen))
	}
}

func TestTrainableToLowError(t *testing.T) {
	// A small model must learn the scaled-down MNIST-like task to a low
	// error — this pins the class structure as learnable, the property the
	// paper's 2.56% baseline depends on.
	ds := MNISTLike(Options{TrainSamples: 1500, TestSamples: 400, Features: 196, Classes: 10})
	net, err := nn.New([]int{196, 64, 32, 10}, "ds-train")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(ds.TrainX, ds.TrainY, nn.TrainOptions{Epochs: 12, LearnRate: 0.3, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if e := net.Evaluate(ds.TestX, ds.TestY, 8); e > 0.12 {
		t.Fatalf("test error = %v, want learnable task", e)
	}
}

func TestMNISTReducedFeatures(t *testing.T) {
	ds := MNISTLike(Options{TrainSamples: 10, TestSamples: 2, Features: 196})
	if ds.NumFeatures != 196 {
		t.Fatalf("reduced features = %d", ds.NumFeatures)
	}
	// Non-square request falls back to 784.
	ds2 := MNISTLike(Options{TrainSamples: 2, TestSamples: 1, Features: 200})
	if ds2.NumFeatures != 784 {
		t.Fatalf("non-square fallback = %d", ds2.NumFeatures)
	}
}

func TestSparsityProperties(t *testing.T) {
	// MNIST-like images keep a meaningful share of zero pixels (dark
	// background), Forest's one-hot indicators are mostly zero, and
	// Reuters-like term vectors are sparse by construction.
	m := MNISTLike(Options{TrainSamples: 100, TestSamples: 10}).Sparsity()
	f := ForestLike(Options{TrainSamples: 100, TestSamples: 10}).Sparsity()
	r := ReutersLike(Options{TrainSamples: 100, TestSamples: 10}).Sparsity()
	if m < 0.15 {
		t.Fatalf("MNIST input sparsity = %v, want dark background pixels", m)
	}
	if f < 0.5 {
		t.Fatalf("Forest input sparsity = %v, want mostly-zero indicators", f)
	}
	if r <= 0.5 {
		t.Fatalf("Reuters input sparsity = %v, want sparse term vectors", r)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"mnist", "forest", "reuters"} {
		ds, err := ByName(name, Options{TrainSamples: 5, TestSamples: 2})
		if err != nil || ds == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("imagenet", Options{}); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}

func TestSubset(t *testing.T) {
	ds := ForestLike(Options{TrainSamples: 100, TestSamples: 50})
	s := ds.Subset(10, 5)
	if len(s.TrainX) != 10 || len(s.TestX) != 5 {
		t.Fatalf("subset sizes: %d/%d", len(s.TrainX), len(s.TestX))
	}
	full := ds.Subset(0, 0)
	if len(full.TrainX) != 100 {
		t.Fatal("zero means full")
	}
	over := ds.Subset(1000, 1000)
	if len(over.TrainX) != 100 {
		t.Fatal("overrequest should clamp")
	}
}
