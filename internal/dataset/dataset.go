// Package dataset provides deterministic synthetic stand-ins for the three
// benchmarks of Section III: MNIST handwritten digits, Forest covertype, and
// Reuters text categorization. The build is offline, so the real corpora are
// unavailable; per DESIGN.md's substitution rule the generators preserve
// what the paper's experiments actually consume:
//
//   - the input dimensionality and class count the NN topology is built
//     around (MNIST: 784 pixels → 10 classes);
//   - a trainable classification task whose baseline error can sit near the
//     paper's (2.56% for MNIST) by construction of class overlap;
//   - benchmark-to-benchmark differences in trained-weight sparsity —
//     Reuters is the least sparse in the paper, so its generator produces
//     denser, higher-variance features.
//
// Generation is a pure function of the benchmark name and seed key, so every
// experiment sees identical data.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/prng"
)

// Dataset is a train/test split of a classification task.
type Dataset struct {
	Name        string
	NumFeatures int
	NumClasses  int
	TrainX      [][]float64
	TrainY      []int
	TestX       [][]float64
	TestY       []int
}

// Options sizes a generated dataset.
type Options struct {
	TrainSamples int // default 6000
	TestSamples  int // default 1000
	Features     int // 0 → benchmark default (MNIST 784, Forest 54, Reuters 900)
	Classes      int // 0 → benchmark default (10 / 7 / 8)
	Noise        float64
}

func (o Options) withDefaults(features, classes int, noise float64) Options {
	if o.TrainSamples <= 0 {
		o.TrainSamples = 6000
	}
	if o.TestSamples <= 0 {
		o.TestSamples = 1000
	}
	if o.Features <= 0 {
		o.Features = features
	}
	if o.Classes <= 0 {
		o.Classes = classes
	}
	if o.Noise <= 0 {
		o.Noise = noise
	}
	return o
}

// MNISTLike generates a digit-recognition-shaped task: 28×28 gray images
// (784 features in [0,1]) whose classes are smooth stroke-blob prototypes,
// perturbed by pixel noise and small translations.
func MNISTLike(opts Options) *Dataset {
	// The default noise level is calibrated so a trained classifier lands
	// near the paper's 2.56% baseline error (see EXPERIMENTS.md).
	o := opts.withDefaults(784, 10, 0.48)
	side := int(math.Round(math.Sqrt(float64(o.Features))))
	if side*side != o.Features {
		side = 28
		o.Features = 784
	}
	src := prng.NewKeyed("dataset:mnist-like")
	protos := make([][]float64, o.Classes)
	for c := range protos {
		protos[c] = digitPrototype(side, src.DeriveN(uint64(c)))
	}
	ds := &Dataset{Name: "MNIST-like", NumFeatures: o.Features, NumClasses: o.Classes}
	gen := func(n int, split string, xs *[][]float64, ys *[]int) {
		s := src.Derive(split)
		for i := 0; i < n; i++ {
			c := s.Intn(o.Classes)
			x := renderDigit(protos[c], side, o.Noise, s.DeriveN(uint64(i)))
			*xs = append(*xs, x)
			*ys = append(*ys, c)
		}
	}
	gen(o.TrainSamples, "train", &ds.TrainX, &ds.TrainY)
	gen(o.TestSamples, "test", &ds.TestX, &ds.TestY)
	return ds
}

// digitPrototype draws a class prototype: each class lights a distinct
// subset of cells on a 5×5 stroke grid (a glyph), rendered as Gaussian
// blobs. Distinct cell subsets give classes a guaranteed Hamming separation,
// so the baseline error is controlled by the noise level rather than by
// accidental prototype collisions.
func digitPrototype(side int, src *prng.Source) []float64 {
	img := make([]float64, side*side)
	const grid = 5
	cells := src.Perm(grid * grid)[:9] // the class's glyph cells
	for _, cell := range cells {
		gx := cell % grid
		gy := cell / grid
		cx := (float64(gx) + 0.5) / grid
		cy := (float64(gy) + 0.5) / grid
		stamp(img, side, cx, cy, 0.07)
	}
	maxV := 0.0
	for _, v := range img {
		if v > maxV {
			maxV = v
		}
	}
	if maxV > 0 {
		for i := range img {
			img[i] /= maxV
		}
	}
	return img
}

// stamp adds a Gaussian blob at fractional center (cx, cy).
func stamp(img []float64, side int, cx, cy, sigma float64) {
	for py := 0; py < side; py++ {
		for px := 0; px < side; px++ {
			dx := float64(px)/float64(side-1) - cx
			dy := float64(py)/float64(side-1) - cy
			img[py*side+px] += math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma))
		}
	}
}

// renderDigit perturbs a prototype: ±1 pixel translation, pixel noise,
// clamped to [0,1].
func renderDigit(proto []float64, side int, noise float64, src *prng.Source) []float64 {
	dx := src.Intn(3) - 1
	dy := src.Intn(3) - 1
	out := make([]float64, len(proto))
	for py := 0; py < side; py++ {
		for px := 0; px < side; px++ {
			sx, sy := px-dx, py-dy
			v := 0.0
			if sx >= 0 && sx < side && sy >= 0 && sy < side {
				v = proto[sy*side+sx]
			}
			v += src.NormMS(0, noise)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out[py*side+px] = v
		}
	}
	return out
}

// ForestLike generates a covertype-shaped task: 54 features (10 continuous
// terrain measurements + 44 binary soil/wilderness indicators), 7 classes.
func ForestLike(opts Options) *Dataset {
	o := opts.withDefaults(54, 7, 0.35)
	src := prng.NewKeyed("dataset:forest-like")
	contN := 10
	if o.Features < contN+1 {
		contN = o.Features / 2
	}
	binN := o.Features - contN
	// Class prototypes: continuous means in [0,1], binary activation probs.
	contMeans := make([][]float64, o.Classes)
	binProbs := make([][]float64, o.Classes)
	for c := 0; c < o.Classes; c++ {
		cs := src.DeriveN(uint64(c))
		contMeans[c] = make([]float64, contN)
		for i := range contMeans[c] {
			contMeans[c][i] = cs.Float64()
		}
		binProbs[c] = make([]float64, binN)
		for i := range binProbs[c] {
			if cs.Float64() < 0.15 { // each class activates a few indicators
				binProbs[c][i] = 0.75
			} else {
				binProbs[c][i] = 0.05
			}
		}
	}
	ds := &Dataset{Name: "Forest-like", NumFeatures: o.Features, NumClasses: o.Classes}
	gen := func(n int, split string, xs *[][]float64, ys *[]int) {
		s := src.Derive(split)
		for i := 0; i < n; i++ {
			c := s.Intn(o.Classes)
			ss := s.DeriveN(uint64(i))
			x := make([]float64, o.Features)
			for f := 0; f < contN; f++ {
				v := contMeans[c][f] + ss.NormMS(0, o.Noise*0.5)
				x[f] = math.Min(1, math.Max(0, v))
			}
			for f := 0; f < binN; f++ {
				if ss.Float64() < binProbs[c][f] {
					x[contN+f] = 1
				}
			}
			*xs = append(*xs, x)
			*ys = append(*ys, c)
		}
	}
	gen(o.TrainSamples, "train", &ds.TrainX, &ds.TrainY)
	gen(o.TestSamples, "test", &ds.TestX, &ds.TestY)
	return ds
}

// ReutersLike generates a text-categorization-shaped task: sparse normalized
// term-frequency vectors over a vocabulary, with Zipf-distributed term
// popularity and class-specific topical terms. The class signal is spread
// over many medium-weight terms, which trains denser weight matrices than
// the other two benchmarks — matching the paper's observation that Reuters
// is the least sparse and hence most undervolting-sensitive workload.
func ReutersLike(opts Options) *Dataset {
	o := opts.withDefaults(900, 8, 0.30)
	src := prng.NewKeyed("dataset:reuters-like")
	vocab := o.Features
	// Topic term weights: each class emphasizes an overlapping band of terms.
	topic := make([][]float64, o.Classes)
	for c := 0; c < o.Classes; c++ {
		cs := src.DeriveN(uint64(c))
		topic[c] = make([]float64, vocab)
		for t := 0; t < vocab; t++ {
			base := 1.0 / float64(t+2) // Zipf-ish background
			topic[c][t] = base * (0.25 + cs.Float64())
		}
		// Strong topical band.
		start := (c * vocab) / o.Classes
		width := vocab / o.Classes * 2
		for t := start; t < start+width && t < vocab; t++ {
			topic[c][t] *= 4 + 4*cs.Float64()
		}
	}
	ds := &Dataset{Name: "Reuters-like", NumFeatures: o.Features, NumClasses: o.Classes}
	gen := func(n int, split string, xs *[][]float64, ys *[]int) {
		s := src.Derive(split)
		for i := 0; i < n; i++ {
			c := s.Intn(o.Classes)
			ss := s.DeriveN(uint64(i))
			x := make([]float64, vocab)
			terms := 60 + ss.Intn(60)
			total := 0.0
			for _, w := range topic[c] {
				total += w
			}
			for t := 0; t < terms; t++ {
				// Sample a term from the class's distribution.
				target := ss.Float64() * total
				acc := 0.0
				idx := vocab - 1
				for ti, w := range topic[c] {
					acc += w
					if acc >= target {
						idx = ti
						break
					}
				}
				x[idx] += 1
			}
			// Normalize to unit max (TF scaling) and add noise terms.
			maxV := 0.0
			for _, v := range x {
				if v > maxV {
					maxV = v
				}
			}
			for f := range x {
				if maxV > 0 {
					x[f] /= maxV
				}
				if x[f] == 0 && ss.Float64() < o.Noise*0.02 {
					x[f] = 0.2 * ss.Float64()
				}
			}
			*xs = append(*xs, x)
			*ys = append(*ys, c)
		}
	}
	gen(o.TrainSamples, "train", &ds.TrainX, &ds.TrainY)
	gen(o.TestSamples, "test", &ds.TestX, &ds.TestY)
	return ds
}

// ByName returns the named benchmark generator output ("mnist", "forest",
// "reuters").
func ByName(name string, opts Options) (*Dataset, error) {
	switch name {
	case "mnist":
		return MNISTLike(opts), nil
	case "forest":
		return ForestLike(opts), nil
	case "reuters":
		return ReutersLike(opts), nil
	}
	return nil, fmt.Errorf("dataset: unknown benchmark %q (want mnist, forest, or reuters)", name)
}

// Subset returns a view of the first n train and m test samples (clamped).
func (d *Dataset) Subset(nTrain, nTest int) *Dataset {
	if nTrain > len(d.TrainX) || nTrain <= 0 {
		nTrain = len(d.TrainX)
	}
	if nTest > len(d.TestX) || nTest <= 0 {
		nTest = len(d.TestX)
	}
	return &Dataset{
		Name: d.Name, NumFeatures: d.NumFeatures, NumClasses: d.NumClasses,
		TrainX: d.TrainX[:nTrain], TrainY: d.TrainY[:nTrain],
		TestX: d.TestX[:nTest], TestY: d.TestY[:nTest],
	}
}

// Sparsity returns the fraction of exactly-zero feature values in the
// training set — a coarse input-side sparsity measure.
func (d *Dataset) Sparsity() float64 {
	zero, total := 0, 0
	for _, x := range d.TrainX {
		for _, v := range x {
			if v == 0 {
				zero++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}
