// Package fvm implements the chip-dependent Fault Variation Map of
// Section II-C3 (Figs. 6 and 7): per-BRAM undervolting fault intensities
// mapped onto the physical floorplan. The FVM is the artifact ICBP consumes
// — because fault locations are deterministic and chip-specific, a one-time
// characterization pass yields a map that placement can steer around.
//
// The package covers extraction from per-BRAM fault counts, vulnerability
// classification (via k-means, as in Fig. 5), floorplan rendering (empty
// sites render as the paper's "white boxes"), JSON persistence, and
// die-to-die comparison (Fig. 7).
package fvm

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/characterize"
	"repro/internal/cluster"
	"repro/internal/platform"
	"repro/internal/silicon"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// Class is a vulnerability class label.
type Class int

// The three classes of Fig. 5, ordered by vulnerability.
const (
	ClassLow Class = iota
	ClassMid
	ClassHigh
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassLow:
		return "low"
	case ClassMid:
		return "mid"
	case ClassHigh:
		return "high"
	}
	return "unknown"
}

// Map is one chip's Fault Variation Map.
type Map struct {
	Platform string         `json:"platform"`
	Serial   string         `json:"serial"`
	VFrom    float64        `json:"v_from"` // top of the characterized window (Vmin)
	VTo      float64        `json:"v_to"`   // bottom of the window (Vcrash)
	TempC    float64        `json:"temp_c"`
	GridCols int            `json:"grid_cols"`
	GridRows int            `json:"grid_rows"`
	Sites    []silicon.Site `json:"sites"`
	Counts   []float64      `json:"counts"` // median fault count per site
}

// New builds a map from aligned sites and per-site fault counts.
func New(platformName, serial string, gridCols, gridRows int, vFrom, vTo, tempC float64,
	sites []silicon.Site, counts []float64) (*Map, error) {
	if len(sites) != len(counts) {
		return nil, fmt.Errorf("fvm: %d sites but %d counts", len(sites), len(counts))
	}
	return &Map{
		Platform: platformName, Serial: serial,
		GridCols: gridCols, GridRows: gridRows,
		VFrom: vFrom, VTo: vTo, TempC: tempC,
		Sites: sites, Counts: counts,
	}, nil
}

// FromSweep assembles the Fault Variation Map a finished characterization
// defines: the platform's floorplan annotated with the per-BRAM median fault
// counts at the sweep's deepest level. It fails when the sweep recorded no
// operating levels (the board crashed at the first step).
func FromSweep(p platform.Platform, s *characterize.Sweep) (*Map, error) {
	if len(s.Levels) == 0 {
		return nil, fmt.Errorf("fvm: %s (S/N %s): sweep has no operating levels", s.Platform, s.Serial)
	}
	return New(p.Name, p.Serial, p.Geometry.GridCols, p.Geometry.GridRows,
		s.Levels[0].V, s.Final().V, s.OnBoardC,
		p.Sites(), s.PerBRAMMedian())
}

// NumSites returns the number of populated BRAM sites.
func (m *Map) NumSites() int { return len(m.Sites) }

// Rate returns the per-bit fault rate of site i (count / 16 Kbit).
func (m *Map) Rate(i int) float64 { return m.Counts[i] / silicon.BRAMBits }

// Summary returns descriptive statistics over the per-BRAM fault rates, the
// numbers the paper quotes for VC707 at Vcrash (max 2.84%, min 0%, average
// 0.04%).
func (m *Map) Summary() stats.Summary {
	rates := make([]float64, len(m.Counts))
	for i := range m.Counts {
		rates[i] = m.Rate(i)
	}
	return stats.Summarize(rates)
}

// ZeroShare returns the fraction of BRAMs that never faulted (38.9% on
// VC707).
func (m *Map) ZeroShare() float64 {
	if len(m.Counts) == 0 {
		return 0
	}
	zero := 0
	for _, c := range m.Counts {
		if c == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(m.Counts))
}

// Classify clusters the per-BRAM counts into k vulnerability classes
// (paper: k=3). The returned slice maps site index → Class.
func (m *Map) Classify(k int) ([]Class, cluster.Result, error) {
	res, err := cluster.KMeans1D(m.Counts, k, m.Platform+":"+m.Serial)
	if err != nil {
		return nil, cluster.Result{}, err
	}
	classes := make([]Class, len(m.Counts))
	for i, a := range res.Assign {
		c := Class(a)
		if c > ClassHigh {
			c = ClassHigh
		}
		classes[i] = c
	}
	return classes, res, nil
}

// SitesInClass returns the site list belonging to the given class under a
// k=3 classification — the "list of low-vulnerable BRAMs" input of the ICBP
// flow (Fig. 12b).
func (m *Map) SitesInClass(want Class) ([]silicon.Site, error) {
	classes, _, err := m.Classify(3)
	if err != nil {
		return nil, err
	}
	var out []silicon.Site
	for i, c := range classes {
		if c == want {
			out = append(out, m.Sites[i])
		}
	}
	return out, nil
}

// SafestSites returns up to n sites ordered by ascending fault count (ties
// broken by site coordinates for determinism) — a finer-grained variant of
// SitesInClass(ClassLow) used when a placement needs the very best sites.
func (m *Map) SafestSites(n int) []silicon.Site {
	idx := make([]int, len(m.Sites))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if m.Counts[ia] != m.Counts[ib] {
			return m.Counts[ia] < m.Counts[ib]
		}
		if m.Sites[ia].X != m.Sites[ib].X {
			return m.Sites[ia].X < m.Sites[ib].X
		}
		return m.Sites[ia].Y < m.Sites[ib].Y
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]silicon.Site, n)
	for i := 0; i < n; i++ {
		out[i] = m.Sites[idx[i]]
	}
	return out
}

// grid lays counts onto the floorplan; empty positions are NaN.
func (m *Map) grid() [][]float64 {
	g := make([][]float64, m.GridRows)
	for r := range g {
		g[r] = make([]float64, m.GridCols)
		for c := range g[r] {
			g[r][c] = math.NaN()
		}
	}
	for i, s := range m.Sites {
		if s.Y >= 0 && s.Y < m.GridRows && s.X >= 0 && s.X < m.GridCols {
			g[m.GridRows-1-s.Y][s.X] = m.Counts[i]
		}
	}
	return g
}

// Render draws the FVM as an ASCII heatmap in floorplan orientation; empty
// sites (the paper's white boxes) render as spaces.
func (m *Map) Render() string {
	title := fmt.Sprintf("FVM %s (S/N %s), VCCBRAM %.2fV..%.2fV @ %.0fC",
		m.Platform, m.Serial, m.VFrom, m.VTo, m.TempC)
	return textplot.Heatmap(title, m.grid(), ' ')
}

// RenderClasses draws the k=3 classification: '.' low, 'o' mid, '#' high,
// space for empty sites.
func (m *Map) RenderClasses() (string, error) {
	classes, _, err := m.Classify(3)
	if err != nil {
		return "", err
	}
	glyph := map[Class]byte{ClassLow: '.', ClassMid: 'o', ClassHigh: '#'}
	rows := make([][]byte, m.GridRows)
	for r := range rows {
		rows[r] = make([]byte, m.GridCols)
		for c := range rows[r] {
			rows[r][c] = ' '
		}
	}
	for i, s := range m.Sites {
		if s.Y >= 0 && s.Y < m.GridRows && s.X >= 0 && s.X < m.GridCols {
			rows[m.GridRows-1-s.Y][s.X] = glyph[classes[i]]
		}
	}
	out := fmt.Sprintf("FVM classes %s ('.'=low 'o'=mid '#'=high)\n", m.Platform)
	for _, r := range rows {
		out += string(r) + "\n"
	}
	return out, nil
}

// Save writes the map as JSON.
func (m *Map) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Load reads a map saved by Save.
func Load(r io.Reader) (*Map, error) {
	var m Map
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	if len(m.Sites) != len(m.Counts) {
		return nil, fmt.Errorf("fvm: corrupt map: %d sites, %d counts", len(m.Sites), len(m.Counts))
	}
	return &m, nil
}

// DiffStats quantifies how two FVMs disagree — the die-to-die comparison of
// Fig. 7 (two identical KC705 boards with visibly different maps).
type DiffStats struct {
	CommonSites     int
	Correlation     float64 // Pearson correlation of per-site counts
	TotalA, TotalB  float64
	RatioAB         float64 // TotalA / TotalB (the paper's 4.1x)
	DisagreeExample string  // a site hot on one die and cold on the other
}

// Diff compares two maps site-by-site (sites are matched by coordinates).
func Diff(a, b *Map) DiffStats {
	bBySite := make(map[silicon.Site]float64, len(b.Sites))
	for i, s := range b.Sites {
		bBySite[s] = b.Counts[i]
	}
	var xs, ys []float64
	var ds DiffStats
	bestGap := -1.0
	for i, s := range a.Sites {
		cb, ok := bBySite[s]
		if !ok {
			continue
		}
		ca := a.Counts[i]
		xs = append(xs, ca)
		ys = append(ys, cb)
		ds.CommonSites++
		ds.TotalA += ca
		ds.TotalB += cb
		if gap := math.Abs(ca - cb); gap > bestGap {
			bestGap = gap
			ds.DisagreeExample = fmt.Sprintf("BRAM#(%d,%d): %s=%.0f vs %s=%.0f",
				s.X, s.Y, a.Platform, ca, b.Platform, cb)
		}
	}
	ds.Correlation = stats.Pearson(xs, ys)
	if ds.TotalB > 0 {
		ds.RatioAB = ds.TotalA / ds.TotalB
	}
	return ds
}
