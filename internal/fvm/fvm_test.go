package fvm

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/board"
	"repro/internal/characterize"
	"repro/internal/platform"
	"repro/internal/silicon"
)

// smallMap builds a 4x3 grid with 10 populated sites and a hot corner.
func smallMap(t *testing.T) *Map {
	t.Helper()
	var sites []silicon.Site
	var counts []float64
	for x := 0; x < 4; x++ {
		for y := 0; y < 3; y++ {
			if x == 3 && y == 2 {
				continue // empty site (white box)
			}
			if x == 3 && y == 1 {
				continue
			}
			sites = append(sites, silicon.Site{X: x, Y: y})
			switch {
			case x == 0 && y == 0:
				counts = append(counts, 450) // hot
			case x == 1:
				counts = append(counts, 30)
			default:
				counts = append(counts, 0)
			}
		}
	}
	m, err := New("TEST", "SN-1", 4, 3, 0.61, 0.54, 50, sites, counts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	if _, err := New("X", "s", 2, 2, 0, 0, 0, []silicon.Site{{X: 0, Y: 0}}, nil); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
}

func TestSummaryAndZeroShare(t *testing.T) {
	m := smallMap(t)
	s := m.Summary()
	if s.Max != 450.0/silicon.BRAMBits {
		t.Fatalf("max rate = %v", s.Max)
	}
	if s.Min != 0 {
		t.Fatalf("min rate = %v", s.Min)
	}
	// 6 of 10 sites are zero.
	if got := m.ZeroShare(); got != 0.6 {
		t.Fatalf("zero share = %v", got)
	}
}

func TestClassify(t *testing.T) {
	m := smallMap(t)
	classes, res, err := m.Classify(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != m.NumSites() {
		t.Fatalf("classes = %d", len(classes))
	}
	// The 450-count site must be high, zero-count sites low.
	for i, s := range m.Sites {
		if s.X == 0 && s.Y == 0 && classes[i] != ClassHigh {
			t.Fatalf("hot site class = %v", classes[i])
		}
		if m.Counts[i] == 0 && classes[i] != ClassLow {
			t.Fatalf("cold site class = %v", classes[i])
		}
	}
	if res.Sizes[0] < res.Sizes[2] {
		t.Fatal("low class should dominate")
	}
	if ClassLow.String() != "low" || ClassHigh.String() != "high" {
		t.Fatal("class names wrong")
	}
}

func TestSitesInClass(t *testing.T) {
	m := smallMap(t)
	low, err := m.SitesInClass(ClassLow)
	if err != nil {
		t.Fatal(err)
	}
	if len(low) != 6 {
		t.Fatalf("low sites = %d, want the 6 zero-fault sites", len(low))
	}
	high, err := m.SitesInClass(ClassHigh)
	if err != nil {
		t.Fatal(err)
	}
	if len(high) != 1 || high[0] != (silicon.Site{X: 0, Y: 0}) {
		t.Fatalf("high sites = %v", high)
	}
}

func TestSafestSites(t *testing.T) {
	m := smallMap(t)
	best := m.SafestSites(3)
	if len(best) != 3 {
		t.Fatalf("safest = %v", best)
	}
	for _, s := range best {
		for i, ms := range m.Sites {
			if ms == s && m.Counts[i] != 0 {
				t.Fatalf("safest site %v has %v faults", s, m.Counts[i])
			}
		}
	}
	// Deterministic ordering.
	again := m.SafestSites(3)
	for i := range best {
		if best[i] != again[i] {
			t.Fatal("SafestSites not deterministic")
		}
	}
	if got := m.SafestSites(99); len(got) != m.NumSites() {
		t.Fatalf("overrequest = %d sites", len(got))
	}
}

func TestRenderShowsHotAndEmpty(t *testing.T) {
	m := smallMap(t)
	out := m.Render()
	if !strings.Contains(out, "FVM TEST") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "@") {
		t.Fatalf("hot site not rendered at max ramp:\n%s", out)
	}
	// Grid lines: 3 rows of 4 cols; empty sites are spaces inside the grid.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("short render:\n%s", out)
	}
}

func TestRenderClasses(t *testing.T) {
	m := smallMap(t)
	out, err := m.RenderClasses()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Fatalf("classes render missing glyphs:\n%s", out)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := smallMap(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Platform != m.Platform || back.NumSites() != m.NumSites() {
		t.Fatal("round trip lost identity")
	}
	for i := range m.Counts {
		if back.Counts[i] != m.Counts[i] {
			t.Fatal("round trip lost counts")
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"sites":[{"X":0,"Y":0}],"counts":[]}`)); err == nil {
		t.Fatal("corrupt map accepted")
	}
	if _, err := Load(strings.NewReader(`{{{`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestDiffDieToDie(t *testing.T) {
	// Build FVMs for the two KC705 samples from real sweeps at reduced scale.
	sweep := func(p platform.Platform) *Map {
		b := board.New(p.Scaled(120))
		s, err := characterize.Run(context.Background(), b, characterize.Options{Runs: 8, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(p.Name, p.Serial, b.Platform.Geometry.GridCols, b.Platform.Geometry.GridRows,
			s.Levels[0].V, s.Final().V, 50, b.Platform.Sites(), s.PerBRAMMedian())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ma := sweep(platform.KC705A())
	mb := sweep(platform.KC705B())
	ds := Diff(ma, mb)
	if ds.CommonSites == 0 {
		t.Fatal("no common sites")
	}
	// KC705-A carries ~4x the faults of KC705-B.
	if ds.RatioAB < 2.0 || ds.RatioAB > 9.0 {
		t.Fatalf("A/B fault ratio = %v, want ~4", ds.RatioAB)
	}
	// Maps should be largely uncorrelated (different dies).
	if ds.Correlation > 0.5 {
		t.Fatalf("die-to-die correlation = %v, want low", ds.Correlation)
	}
	if ds.DisagreeExample == "" {
		t.Fatal("no disagreement example found")
	}
}

func TestDiffSameDiePerfectlyCorrelated(t *testing.T) {
	m := smallMap(t)
	ds := Diff(m, m)
	if ds.Correlation < 0.999 {
		t.Fatalf("self-diff correlation = %v", ds.Correlation)
	}
	if ds.RatioAB != 1 {
		t.Fatalf("self ratio = %v", ds.RatioAB)
	}
}
