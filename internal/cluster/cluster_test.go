package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThreeObviousGroups(t *testing.T) {
	values := []float64{
		0.1, 0.2, 0.15, 0.12, // low
		5.0, 5.2, 4.9, // mid
		20.0, 19.5, // high
	}
	r, err := KMeans1D(values, 3, "test")
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 3 {
		t.Fatalf("K = %d", r.K)
	}
	// Centroids ascending.
	if !(r.Centroids[0] < r.Centroids[1] && r.Centroids[1] < r.Centroids[2]) {
		t.Fatalf("centroids not sorted: %v", r.Centroids)
	}
	// Group memberships.
	for i := 0; i < 4; i++ {
		if r.Assign[i] != 0 {
			t.Fatalf("low point %d in cluster %d", i, r.Assign[i])
		}
	}
	for i := 4; i < 7; i++ {
		if r.Assign[i] != 1 {
			t.Fatalf("mid point %d in cluster %d", i, r.Assign[i])
		}
	}
	for i := 7; i < 9; i++ {
		if r.Assign[i] != 2 {
			t.Fatalf("high point %d in cluster %d", i, r.Assign[i])
		}
	}
	if r.Sizes[0] != 4 || r.Sizes[1] != 3 || r.Sizes[2] != 2 {
		t.Fatalf("sizes = %v", r.Sizes)
	}
}

func TestDeterministic(t *testing.T) {
	values := make([]float64, 200)
	for i := range values {
		values[i] = float64(i % 17)
	}
	a, _ := KMeans1D(values, 3, "same-key")
	b, _ := KMeans1D(values, 3, "same-key")
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same key produced different clusterings")
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := KMeans1D(nil, 3, "x"); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := KMeans1D([]float64{1}, 0, "x"); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestKLargerThanN(t *testing.T) {
	r, err := KMeans1D([]float64{1, 2}, 5, "x")
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 2 {
		t.Fatalf("K clamped to %d, want 2", r.K)
	}
}

func TestAllIdenticalValues(t *testing.T) {
	r, err := KMeans1D([]float64{3, 3, 3, 3}, 3, "x")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range r.Sizes {
		total += s
	}
	if total != 4 {
		t.Fatalf("members lost: %v", r.Sizes)
	}
	if r.Inertia([]float64{3, 3, 3, 3}) != 0 {
		t.Fatal("identical values must have zero inertia")
	}
}

func TestMeanOfAndShareOf(t *testing.T) {
	values := []float64{0, 0, 10, 10}
	r, err := KMeans1D(values, 2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if m := r.MeanOf(values, 0); m != 0 {
		t.Fatalf("low mean = %v", m)
	}
	if m := r.MeanOf(values, 1); m != 10 {
		t.Fatalf("high mean = %v", m)
	}
	if s := r.ShareOf(0); s != 0.5 {
		t.Fatalf("low share = %v", s)
	}
}

func TestVulnerabilityShapedData(t *testing.T) {
	// Shape like Fig. 5: most BRAMs near zero, a tail of hot ones. The low
	// cluster must hold the vast majority.
	var values []float64
	for i := 0; i < 885; i++ {
		values = append(values, float64(i%7)) // 0..6 faults
	}
	for i := 0; i < 100; i++ {
		values = append(values, 40+float64(i%30))
	}
	for i := 0; i < 15; i++ {
		values = append(values, 300+float64(i*10))
	}
	r, err := KMeans1D(values, 3, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if share := r.ShareOf(0); share < 0.80 {
		t.Fatalf("low-vulnerable share = %v, want most BRAMs", share)
	}
	if r.Centroids[2] < 100 {
		t.Fatalf("high centroid = %v", r.Centroids[2])
	}
}

func TestQuickPartitionInvariants(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		var values []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				values = append(values, math.Mod(v, 1e6))
			}
		}
		if len(values) == 0 {
			return true
		}
		k := int(kRaw%5) + 1
		r, err := KMeans1D(values, k, "quick")
		if err != nil {
			return false
		}
		// Every point assigned to a valid cluster, sizes sum to n, centroids
		// sorted.
		total := 0
		for _, s := range r.Sizes {
			total += s
		}
		if total != len(values) {
			return false
		}
		for _, a := range r.Assign {
			if a < 0 || a >= r.K {
				return false
			}
		}
		for i := 1; i < r.K; i++ {
			if r.Centroids[i] < r.Centroids[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAssignmentIsNearest(t *testing.T) {
	f := func(raw []float64) bool {
		var values []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				values = append(values, math.Mod(v, 1000))
			}
		}
		if len(values) < 4 {
			return true
		}
		r, err := KMeans1D(values, 3, "nearest")
		if err != nil {
			return false
		}
		for i, v := range values {
			dAssigned := math.Abs(v - r.Centroids[r.Assign[i]])
			for _, c := range r.Centroids {
				if math.Abs(v-c) < dAssigned-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
