// Package cluster implements the k-means clustering the paper uses to group
// BRAMs into low-, mid-, and high-vulnerable classes (Section II-C3, Fig. 5).
// k-means++ seeding with a deterministic source keeps the classification
// reproducible — a requirement, since ICBP consumes the class labels.
package cluster

import (
	"errors"
	"math"
	"sort"

	"repro/internal/prng"
)

// Result is a completed clustering.
type Result struct {
	K         int
	Centroids []float64 // sorted ascending: index 0 is the "low" class
	Assign    []int     // cluster index per input value
	Sizes     []int     // members per cluster
	Iters     int       // iterations until convergence
}

// ErrBadInput is returned for empty inputs or non-positive k.
var ErrBadInput = errors.New("cluster: need at least one value and k >= 1")

// KMeans1D clusters scalar values into k groups. Centroids are returned in
// ascending order, so for the paper's k=3 use, cluster 0/1/2 are the
// low/mid/high vulnerability classes. Seeding uses k-means++ driven by the
// given key, making results deterministic.
func KMeans1D(values []float64, k int, key string) (Result, error) {
	n := len(values)
	if n == 0 || k <= 0 {
		return Result{}, ErrBadInput
	}
	if k > n {
		k = n
	}
	src := prng.NewKeyed("kmeans:" + key)
	centroids := seedPlusPlus(values, k, src)

	assign := make([]int, n)
	const maxIters = 200
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		for i, v := range values {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				d := (v - ctr) * (v - ctr)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iters > 0 {
			break
		}
	}

	// Sort centroids ascending and remap assignments.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return centroids[order[a]] < centroids[order[b]] })
	remap := make([]int, k)
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
	}
	sorted := make([]float64, k)
	for newIdx, oldIdx := range order {
		sorted[newIdx] = centroids[oldIdx]
	}
	res := Result{K: k, Centroids: sorted, Assign: make([]int, n), Sizes: make([]int, k), Iters: iters}
	for i := range assign {
		res.Assign[i] = remap[assign[i]]
		res.Sizes[res.Assign[i]]++
	}
	return res, nil
}

// seedPlusPlus picks k initial centroids with k-means++ (D² weighting).
func seedPlusPlus(values []float64, k int, src *prng.Source) []float64 {
	centroids := make([]float64, 0, k)
	centroids = append(centroids, values[src.Intn(len(values))])
	d2 := make([]float64, len(values))
	for len(centroids) < k {
		var total float64
		for i, v := range values {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := (v - c) * (v - c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, values[src.Intn(len(values))])
			continue
		}
		target := src.Float64() * total
		acc := 0.0
		pick := len(values) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, values[pick])
	}
	return centroids
}

// MeanOf returns the mean of the values assigned to cluster c.
func (r Result) MeanOf(values []float64, c int) float64 {
	var sum float64
	n := 0
	for i, a := range r.Assign {
		if a == c {
			sum += values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ShareOf returns the fraction of points assigned to cluster c.
func (r Result) ShareOf(c int) float64 {
	if len(r.Assign) == 0 {
		return 0
	}
	return float64(r.Sizes[c]) / float64(len(r.Assign))
}

// Inertia returns the within-cluster sum of squared distances — the k-means
// objective, useful for sanity checks and elbow analysis.
func (r Result) Inertia(values []float64) float64 {
	var total float64
	for i, a := range r.Assign {
		d := values[i] - r.Centroids[a]
		total += d * d
	}
	return total
}
