package fixed

import (
	"encoding/binary"
	"fmt"
)

// WordBytes is the encoded size of one Word in the wire codec.
const WordBytes = 2

// EncodeWords packs ws into the compact wire form: each 16-bit word
// little-endian, in slice order. The layout is fixed — it is part of the
// versioned nn wire format — so it must never silently change.
func EncodeWords(ws []Word) []byte {
	out := make([]byte, len(ws)*WordBytes)
	for i, w := range ws {
		binary.LittleEndian.PutUint16(out[i*WordBytes:], uint16(w))
	}
	return out
}

// DecodeWords unpacks a blob written by EncodeWords. The blob length must be
// an exact multiple of the word size: a truncated or padded blob is a
// malformed document, not a short read.
func DecodeWords(blob []byte) ([]Word, error) {
	if len(blob)%WordBytes != 0 {
		return nil, fmt.Errorf("fixed: word blob length %d is not a multiple of %d", len(blob), WordBytes)
	}
	ws := make([]Word, len(blob)/WordBytes)
	for i := range ws {
		ws[i] = Word(binary.LittleEndian.Uint16(blob[i*WordBytes:]))
	}
	return ws, nil
}
