package fixed

import (
	"encoding/binary"
	"fmt"
)

// WordBytes is the encoded size of one Word in the wire codec.
const WordBytes = 2

// EncodeWords packs ws into the compact wire form: each 16-bit word
// little-endian, in slice order. The layout is fixed — it is part of the
// versioned nn wire format — so it must never silently change.
func EncodeWords(ws []Word) []byte {
	out := make([]byte, len(ws)*WordBytes)
	for i, w := range ws {
		binary.LittleEndian.PutUint16(out[i*WordBytes:], uint16(w))
	}
	return out
}

// DecodeWords unpacks a blob written by EncodeWords. The blob length must be
// an exact multiple of the word size: a truncated or padded blob is a
// malformed document, not a short read.
func DecodeWords(blob []byte) ([]Word, error) {
	if len(blob)%WordBytes != 0 {
		return nil, fmt.Errorf("fixed: word blob length %d is not a multiple of %d", len(blob), WordBytes)
	}
	ws := make([]Word, len(blob)/WordBytes)
	for i := range ws {
		ws[i] = Word(binary.LittleEndian.Uint16(blob[i*WordBytes:]))
	}
	return ws, nil
}

// EncodePackedWords packs ws into the sparse wire form (nn wire v2), built
// for the paper's weight statistics: sign-magnitude words are mostly small
// magnitudes and, at paper sparsity, often exactly zero. Each non-zero word
// is sign-rotated (magnitude<<1 | sign, so small magnitudes of either sign
// stay small) and stored as one unsigned varint; a run of zero words is a
// 0x00 tag followed by a varint run length. A non-zero word's varint never
// begins with 0x00, so the tag is unambiguous. The layout is fixed — part of
// the versioned nn wire format — and must never silently change.
func EncodePackedWords(ws []Word) []byte {
	out := make([]byte, 0, len(ws))
	var scratch [binary.MaxVarintLen64]byte
	for i := 0; i < len(ws); {
		if ws[i] == 0 {
			run := 1
			for i+run < len(ws) && ws[i+run] == 0 {
				run++
			}
			out = append(out, 0x00)
			out = append(out, scratch[:binary.PutUvarint(scratch[:], uint64(run))]...)
			i += run
			continue
		}
		u := uint64(ws[i]&^SignMask)<<1 | uint64(ws[i]>>15)
		out = append(out, scratch[:binary.PutUvarint(scratch[:], u)]...)
		i++
	}
	return out
}

// DecodePackedWords unpacks a blob written by EncodePackedWords. maxWords
// bounds the decoded length BEFORE allocation, so a hostile run length cannot
// make the decoder materialize unbounded memory; truncated varints, oversize
// values, zero-length runs, and trailing garbage are all malformed documents.
func DecodePackedWords(blob []byte, maxWords int) ([]Word, error) {
	ws := make([]Word, 0, min(maxWords, len(blob)))
	for off := 0; off < len(blob); {
		if blob[off] == 0x00 {
			run, n := binary.Uvarint(blob[off+1:])
			if n <= 0 || run == 0 {
				return nil, fmt.Errorf("fixed: packed blob has a malformed zero run at byte %d", off)
			}
			if uint64(len(ws))+run > uint64(maxWords) {
				return nil, fmt.Errorf("fixed: packed blob exceeds the %d-word bound", maxWords)
			}
			ws = append(ws, make([]Word, run)...)
			off += 1 + n
			continue
		}
		u, n := binary.Uvarint(blob[off:])
		if n <= 0 || u > 0xffff {
			return nil, fmt.Errorf("fixed: packed blob has a malformed word at byte %d", off)
		}
		if len(ws) >= maxWords {
			return nil, fmt.Errorf("fixed: packed blob exceeds the %d-word bound", maxWords)
		}
		w := Word(u>>1) | Word(u&1)<<15
		if w == 0 {
			// A zero word outside a run would re-encode differently; reject
			// the non-canonical form so encode∘decode is the identity.
			return nil, fmt.Errorf("fixed: packed blob has a non-canonical zero at byte %d", off)
		}
		ws = append(ws, w)
		off += n
	}
	return ws, nil
}
