package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFormat(t *testing.T) {
	f := NewFormat(0)
	if f.Digit != 0 || f.Frac != 15 || !f.Valid() {
		t.Fatalf("NewFormat(0) = %+v", f)
	}
	f = NewFormat(4)
	if f.Digit != 4 || f.Frac != 11 || !f.Valid() {
		t.Fatalf("NewFormat(4) = %+v", f)
	}
	if f.String() != "s4.11" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestNewFormatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFormat(16) should panic")
		}
	}()
	NewFormat(16)
}

func TestRanges(t *testing.T) {
	q015 := NewFormat(0)
	if got, want := q015.Max(), float64(32767)/32768; got != want {
		t.Fatalf("Q0.15 Max = %v, want %v", got, want)
	}
	if q015.Min() != -q015.Max() {
		t.Fatal("sign-magnitude range must be symmetric")
	}
	q411 := NewFormat(4)
	if q411.Max() < 15.99 || q411.Max() >= 16 {
		t.Fatalf("Q4.11 Max = %v, want just under 16", q411.Max())
	}
	if got := q015.Resolution(); got != 1.0/32768 {
		t.Fatalf("Q0.15 resolution = %v", got)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	f := NewFormat(0)
	for _, x := range []float64{0, 0.5, -0.5, 0.25, -0.999, 0.99996} {
		w := f.Quantize(x)
		got := f.Value(w)
		if math.Abs(got-x) > f.Resolution()/2+1e-12 {
			t.Fatalf("round trip %v -> %v (err %v)", x, got, math.Abs(got-x))
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	f := NewFormat(0)
	if v := f.Value(f.Quantize(5.0)); v != f.Max() {
		t.Fatalf("positive saturation = %v, want %v", v, f.Max())
	}
	if v := f.Value(f.Quantize(-5.0)); v != f.Min() {
		t.Fatalf("negative saturation = %v, want %v", v, f.Min())
	}
}

func TestQuantizeZeroIsAllZeroBits(t *testing.T) {
	// In sign-magnitude, both +0.0 and -0.0-ish tiny values must map to the
	// all-zero word; a negative zero with a sign bit would break the sparsity
	// accounting.
	f := NewFormat(0)
	if w := f.Quantize(0); w != 0 {
		t.Fatalf("Quantize(0) = %#x", w)
	}
	if w := f.Quantize(math.Copysign(0, -1)); w != 0 {
		t.Fatalf("Quantize(-0) = %#x", w)
	}
	if w := f.Quantize(-1e-9); w != 0 {
		t.Fatalf("Quantize(-eps) = %#x, want 0 (rounds to zero magnitude)", w)
	}
}

func TestSignBitSemantics(t *testing.T) {
	f := NewFormat(0)
	pos := f.Quantize(0.5)
	neg := f.Quantize(-0.5)
	if pos&SignMask != 0 {
		t.Fatal("positive value has sign bit set")
	}
	if neg&SignMask == 0 {
		t.Fatal("negative value missing sign bit")
	}
	if pos&^SignMask != neg&^SignMask {
		t.Fatal("magnitudes of +x and -x must match in sign-magnitude")
	}
	// A 1->0 flip of the sign bit turns -x into +x: magnitude preserved.
	if got := f.Value(neg &^ SignMask); got != 0.5 {
		t.Fatalf("sign-bit flip of -0.5 = %v, want 0.5", got)
	}
}

func TestSmallMagnitudeSparsity(t *testing.T) {
	// The design rationale: small negative weights must be sparse in 1-bits
	// under sign-magnitude, unlike two's complement.
	f := NewFormat(0)
	w := f.Quantize(-0.001) // tiny negative
	if w.OneBits() > 6 {
		t.Fatalf("sign-magnitude -0.001 has %d one-bits, expected few", w.OneBits())
	}
	tc := TwosComplement(f, w)
	tcOnes := 0
	for i := 0; i < 16; i++ {
		tcOnes += int(tc>>i) & 1
	}
	if tcOnes <= w.OneBits() {
		t.Fatalf("two's complement of tiny negative should be denser: sm=%d tc=%d",
			w.OneBits(), tcOnes)
	}
}

func TestBitAccess(t *testing.T) {
	w := Word(0b1010)
	if w.Bit(1) != 1 || w.Bit(0) != 0 || w.Bit(3) != 1 {
		t.Fatal("Bit() wrong")
	}
	if w.FlipBit(0) != 0b1011 {
		t.Fatal("FlipBit wrong")
	}
	if w.FlipBit(0).FlipBit(0) != w {
		t.Fatal("FlipBit not involutive")
	}
}

func TestBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit(16) should panic")
		}
	}()
	Word(0).Bit(16)
}

func TestMinimalDigitBits(t *testing.T) {
	// Layers 0-3 of the paper's NN: weights in (-1,1) -> 0 digit bits.
	if d := MinimalDigitBits([]float64{0.3, -0.8, 0.999}); d != 0 {
		t.Fatalf("digit bits for (-1,1) = %d, want 0", d)
	}
	// Layer 4: |w| up to ~15 -> 4 digit bits.
	if d := MinimalDigitBits([]float64{12.5, -9.0, 0.1}); d != 4 {
		t.Fatalf("digit bits for |w|<16 = %d, want 4", d)
	}
	if d := MinimalDigitBits([]float64{1.5}); d != 1 {
		t.Fatalf("digit bits for 1.5 = %d, want 1", d)
	}
	if d := MinimalDigitBits(nil); d != 0 {
		t.Fatalf("digit bits of empty = %d", d)
	}
}

func TestMinimalFormatRepresentsAll(t *testing.T) {
	xs := []float64{-3.7, 2.2, 0.001, -0.9}
	f := MinimalFormat(xs)
	for _, x := range xs {
		if !f.Representable(x) {
			t.Fatalf("format %v cannot represent %v", f, x)
		}
	}
	// One fewer digit bit must fail for the max element.
	if f.Digit > 0 {
		smaller := NewFormat(f.Digit - 1)
		ok := true
		for _, x := range xs {
			if !smaller.Representable(x) {
				ok = false
			}
		}
		if ok {
			t.Fatal("MinimalFormat was not minimal")
		}
	}
}

func TestQuantizeValueSlices(t *testing.T) {
	f := NewFormat(0)
	xs := []float64{0.1, -0.2, 0.3}
	ws := QuantizeSlice(f, xs)
	back := ValueSlice(f, ws)
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > f.Resolution() {
			t.Fatalf("slice round trip [%d]: %v -> %v", i, xs[i], back[i])
		}
	}
}

func TestOneBitFraction(t *testing.T) {
	if got := OneBitFraction([]Word{0xFFFF, 0x0000}); got != 0.5 {
		t.Fatalf("OneBitFraction = %v, want 0.5", got)
	}
	if got := OneBitFraction(nil); got != 0 {
		t.Fatalf("empty OneBitFraction = %v", got)
	}
}

func TestAccMAC(t *testing.T) {
	wf := NewFormat(0)
	af := NewFormat(0)
	var a Acc
	// 0.5 * 0.5 + (-0.25) * 0.5 = 0.125
	a.MAC(wf, wf.Quantize(0.5), af, af.Quantize(0.5))
	a.MAC(wf, wf.Quantize(-0.25), af, af.Quantize(0.5))
	if got := a.Value(wf, af); math.Abs(got-0.125) > 1e-6 {
		t.Fatalf("MAC value = %v, want 0.125", got)
	}
	a.Reset()
	if a.Value(wf, af) != 0 {
		t.Fatal("Reset did not clear accumulator")
	}
}

func TestAccMatchesFloat(t *testing.T) {
	wf := NewFormat(0)
	af := NewFormat(2)
	ws := []float64{0.5, -0.3, 0.25, 0.9, -0.99}
	as := []float64{1.5, -2.0, 0.75, 3.1, 0.01}
	var acc Acc
	var want float64
	for i := range ws {
		qw := wf.Quantize(ws[i])
		qa := af.Quantize(as[i])
		acc.MAC(wf, qw, af, qa)
		want += wf.Value(qw) * af.Value(qa)
	}
	if got := acc.Value(wf, af); math.Abs(got-want) > 1e-9 {
		t.Fatalf("fixed MAC %v != float-of-quantized %v", got, want)
	}
}

func TestQuickRoundTripWithinResolution(t *testing.T) {
	f := func(x float64, digit uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		d := digit % 8
		fm := NewFormat(d)
		// Clamp into representable range so we test rounding, not saturation.
		if math.Abs(x) > fm.Max() {
			x = math.Mod(x, fm.Max())
		}
		w := fm.Quantize(x)
		return math.Abs(fm.Value(w)-x) <= fm.Resolution()/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSaturationNeverExceedsRange(t *testing.T) {
	f := func(x float64, digit uint8) bool {
		if math.IsNaN(x) {
			return true
		}
		fm := NewFormat(digit % 16)
		v := fm.Value(fm.Quantize(x))
		return v >= fm.Min() && v <= fm.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNegationSymmetry(t *testing.T) {
	// Property: Quantize(-x) has the same magnitude bits as Quantize(x).
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		fm := NewFormat(0)
		a := fm.Quantize(x)
		b := fm.Quantize(-x)
		return a&^SignMask == b&^SignMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
