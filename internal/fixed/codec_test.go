package fixed

import (
	"slices"
	"testing"
)

func TestWordCodecRoundTrip(t *testing.T) {
	ws := []Word{0, 1, 0x7FFF, 0x8000, 0xFFFF, 0xAAAA, 0x5555}
	blob := EncodeWords(ws)
	if len(blob) != len(ws)*WordBytes {
		t.Fatalf("encoded %d words into %d bytes", len(ws), len(blob))
	}
	got, err := DecodeWords(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, ws) {
		t.Fatalf("round trip: got %v want %v", got, ws)
	}

	// Empty slices round-trip to empty, not nil errors.
	got, err = DecodeWords(EncodeWords(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestDecodeWordsRejectsOddLength(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		if _, err := DecodeWords(make([]byte, n)); err == nil {
			t.Fatalf("decoded a %d-byte blob without error", n)
		}
	}
}

func TestWordCodecIsLittleEndian(t *testing.T) {
	// The byte layout is part of the versioned wire format: changing it
	// would break decode of documents written by older builds.
	blob := EncodeWords([]Word{0x1234})
	if blob[0] != 0x34 || blob[1] != 0x12 {
		t.Fatalf("encoding is not little-endian: % x", blob)
	}
}

func TestPackedWordCodecRoundTrip(t *testing.T) {
	cases := map[string][]Word{
		"empty":         nil,
		"all zeros":     make([]Word, 300),
		"single zero":   {0},
		"no zeros":      {1, 0x7fff, SignMask | 1, SignMask | 0x7fff, 128, 127},
		"negative zero": {SignMask}, // unreachable via Quantize, but a valid bit pattern
		"mixed runs":    {0, 0, 0, 5, 0, SignMask | 9, 0, 0, 0, 0, 0, 0, 0, 3},
		"run at end":    {7, 0, 0, 0},
	}
	for name, ws := range cases {
		blob := EncodePackedWords(ws)
		got, err := DecodePackedWords(blob, len(ws))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(ws) {
			t.Fatalf("%s: decoded %d words, want %d", name, len(got), len(ws))
		}
		for i := range ws {
			if got[i] != ws[i] {
				t.Fatalf("%s: word %d decoded as %#x, want %#x", name, i, got[i], ws[i])
			}
		}
	}
}

func TestPackedWordCodecExhaustiveSingleWord(t *testing.T) {
	// Every 16-bit pattern survives the sign-rotation round trip.
	for u := 0; u <= 0xffff; u++ {
		ws := []Word{Word(u)}
		got, err := DecodePackedWords(EncodePackedWords(ws), 1)
		if err != nil || len(got) != 1 || got[0] != ws[0] {
			t.Fatalf("word %#x: got %v, %v", u, got, err)
		}
	}
}

func TestPackedWordSmallMagnitudesAreOneByte(t *testing.T) {
	// The sign rotation is what makes small magnitudes of either sign cheap:
	// |mag| < 64 fits one varint byte, sign included.
	for _, w := range []Word{1, 63, SignMask | 1, SignMask | 63} {
		if n := len(EncodePackedWords([]Word{w})); n != 1 {
			t.Fatalf("word %#x encoded in %d bytes, want 1", w, n)
		}
	}
	if n := len(EncodePackedWords(make([]Word, 1000))); n > 3 {
		t.Fatalf("1000-zero run encoded in %d bytes, want <=3", n)
	}
}

func TestDecodePackedWordsRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"truncated run tag":    {0x00},
		"zero-length run":      {0x00, 0x00},
		"truncated run varint": {0x00, 0x80},
		"truncated word":       {0x80},
		"oversize word":        {0x80, 0x80, 0x80, 0x01}, // > 16 bits
		"non-canonical zero":   {0x80, 0x00},             // varint 0 outside a run
	}
	for name, blob := range cases {
		if _, err := DecodePackedWords(blob, 1<<20); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// The word bound rejects before allocation, for runs and singles alike.
	if _, err := DecodePackedWords(EncodePackedWords(make([]Word, 10)), 9); err == nil {
		t.Error("run past maxWords decoded without error")
	}
	if _, err := DecodePackedWords(EncodePackedWords([]Word{1, 2}), 1); err == nil {
		t.Error("words past maxWords decoded without error")
	}
}

// FuzzPackedWordCodec asserts the packed decoder never panics and that
// encode∘decode is the identity on everything it accepts.
func FuzzPackedWordCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePackedWords([]Word{0, 0, 5, SignMask | 9, 0}))
	f.Add([]byte{0x00, 0x05, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, blob []byte) {
		ws, err := DecodePackedWords(blob, 1<<16)
		if err != nil {
			return
		}
		got, err := DecodePackedWords(EncodePackedWords(ws), len(ws))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(got) != len(ws) {
			t.Fatalf("re-decode length %d, want %d", len(got), len(ws))
		}
		for i := range ws {
			if got[i] != ws[i] {
				t.Fatalf("word %d: %#x != %#x", i, got[i], ws[i])
			}
		}
	})
}
