package fixed

import (
	"slices"
	"testing"
)

func TestWordCodecRoundTrip(t *testing.T) {
	ws := []Word{0, 1, 0x7FFF, 0x8000, 0xFFFF, 0xAAAA, 0x5555}
	blob := EncodeWords(ws)
	if len(blob) != len(ws)*WordBytes {
		t.Fatalf("encoded %d words into %d bytes", len(ws), len(blob))
	}
	got, err := DecodeWords(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, ws) {
		t.Fatalf("round trip: got %v want %v", got, ws)
	}

	// Empty slices round-trip to empty, not nil errors.
	got, err = DecodeWords(EncodeWords(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestDecodeWordsRejectsOddLength(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		if _, err := DecodeWords(make([]byte, n)); err == nil {
			t.Fatalf("decoded a %d-byte blob without error", n)
		}
	}
}

func TestWordCodecIsLittleEndian(t *testing.T) {
	// The byte layout is part of the versioned wire format: changing it
	// would break decode of documents written by older builds.
	blob := EncodeWords([]Word{0x1234})
	if blob[0] != 0x34 || blob[1] != 0x12 {
		t.Fatalf("encoding is not little-endian: % x", blob)
	}
}
