// Package fixed implements the 16-bit fixed-point data representation the
// paper's NN accelerator uses for weights (Section III-A, Fig. 9): every word
// is composed of a sign bit, a per-layer minimum number of integer ("digit")
// bits, and the remaining bits as fraction.
//
// The encoding is sign-magnitude rather than two's complement. The paper
// describes words as "composed of the sign, digit, and fraction components"
// and reports that 76.3% of the trained MNIST weight bits are logic "0" —
// which is what makes the workload inherently tolerant to the dominant
// "1"→"0" undervolting bit-flips. Sign-magnitude reproduces that mechanism:
// a small-magnitude weight is mostly 0-bits regardless of sign, whereas in
// two's complement small negative values would be dense in 1-bits.
// BenchmarkAblationEncoding in the repository root quantifies the difference.
package fixed

import (
	"fmt"
	"math"
	"math/bits"
)

// WordBits is the total width of a stored weight word, as in the paper.
const WordBits = 16

// MagnitudeBits is the width available to digit+fraction (one bit is sign).
const MagnitudeBits = WordBits - 1

// Word is one 16-bit sign-magnitude fixed-point value as stored in a BRAM.
// Bit 15 is the sign (1 = negative); bits 14..0 hold the magnitude, whose
// binary point is defined by a Format.
type Word uint16

// SignMask selects the sign bit of a Word.
const SignMask Word = 1 << 15

// Format describes a sign-magnitude fixed-point layout: 1 sign bit,
// Digit integer bits, Frac fraction bits, with Digit+Frac == 15.
//
// Fig. 9 of the paper derives the minimum Digit per NN layer: layers whose
// weights lie in (-1, 1) need Digit = 0; the last layer needs Digit = 4.
type Format struct {
	Digit uint8 // integer bits
	Frac  uint8 // fraction bits
}

// NewFormat returns a Format with the given number of integer bits; the
// remaining magnitude bits become fraction bits. It panics if digit exceeds
// MagnitudeBits.
func NewFormat(digit uint8) Format {
	if int(digit) > MagnitudeBits {
		panic(fmt.Sprintf("fixed: digit width %d exceeds %d", digit, MagnitudeBits))
	}
	return Format{Digit: digit, Frac: uint8(MagnitudeBits) - digit}
}

// Valid reports whether the format uses exactly the 15 magnitude bits.
func (f Format) Valid() bool { return int(f.Digit)+int(f.Frac) == MagnitudeBits }

// String renders the format in Q notation, e.g. "s0.15" or "s4.11".
func (f Format) String() string { return fmt.Sprintf("s%d.%d", f.Digit, f.Frac) }

// Scale returns 2^Frac, the factor between real values and raw magnitudes.
func (f Format) Scale() float64 { return float64(uint64(1) << f.Frac) }

// Max returns the largest representable value.
func (f Format) Max() float64 {
	return float64((uint64(1)<<MagnitudeBits)-1) / f.Scale()
}

// Min returns the most negative representable value (-Max: sign-magnitude is
// symmetric).
func (f Format) Min() float64 { return -f.Max() }

// Resolution returns the value of one least-significant fraction bit.
func (f Format) Resolution() float64 { return 1 / f.Scale() }

// Quantize encodes x with round-to-nearest and saturation.
func (f Format) Quantize(x float64) Word {
	neg := math.Signbit(x)
	mag := math.Abs(x) * f.Scale()
	m := uint64(math.Round(mag))
	if m > (1<<MagnitudeBits)-1 {
		m = (1 << MagnitudeBits) - 1
	}
	w := Word(m)
	if neg && m != 0 {
		w |= SignMask
	}
	return w
}

// Value decodes w back to a float64.
func (f Format) Value(w Word) float64 {
	mag := float64(w &^ SignMask)
	v := mag / f.Scale()
	if w&SignMask != 0 {
		return -v
	}
	return v
}

// QuantError returns the absolute quantization error |x - Value(Quantize(x))|.
func (f Format) QuantError(x float64) float64 {
	return math.Abs(x - f.Value(f.Quantize(x)))
}

// Representable reports whether x fits in the format without saturating.
func (f Format) Representable(x float64) bool {
	return math.Abs(x) <= f.Max()
}

// OneBits returns the number of logic-"1" bits in the stored word, the
// quantity the paper's sparsity argument is about (76.3% of MNIST weight bits
// are "0").
func (w Word) OneBits() int { return bits.OnesCount16(uint16(w)) }

// FlipBit returns w with bit i (0 = LSB) inverted. It panics if i is out of
// range. Fault injection uses the AND/OR forms below instead; FlipBit exists
// for the RTL-style random-flip vulnerability study (Fig. 13).
func (w Word) FlipBit(i uint) Word {
	if i >= WordBits {
		panic(fmt.Sprintf("fixed: bit index %d out of range", i))
	}
	return w ^ (1 << i)
}

// Bit returns bit i of w (0 or 1).
func (w Word) Bit(i uint) int {
	if i >= WordBits {
		panic(fmt.Sprintf("fixed: bit index %d out of range", i))
	}
	return int(w>>i) & 1
}

// MinimalDigitBits returns the smallest number of integer bits that can
// represent every value in xs without saturation (given 15 magnitude bits in
// total). This is the per-layer pre-processing analysis behind Fig. 9.
func MinimalDigitBits(xs []float64) uint8 {
	var maxAbs float64
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	for d := uint8(0); d <= MagnitudeBits; d++ {
		if maxAbs <= NewFormat(d).Max() {
			return d
		}
	}
	return MagnitudeBits
}

// MinimalFormat returns the per-layer minimum-precision format for xs:
// minimum digit bits, rest fraction — the paper's "min sign and digit per
// layer" policy.
func MinimalFormat(xs []float64) Format {
	return NewFormat(MinimalDigitBits(xs))
}

// QuantizeSlice encodes all values of xs in format f.
func QuantizeSlice(f Format, xs []float64) []Word {
	ws := make([]Word, len(xs))
	for i, x := range xs {
		ws[i] = f.Quantize(x)
	}
	return ws
}

// ValueSlice decodes all words of ws under format f.
func ValueSlice(f Format, ws []Word) []float64 {
	xs := make([]float64, len(ws))
	for i, w := range ws {
		xs[i] = f.Value(w)
	}
	return xs
}

// OneBitFraction returns the fraction of "1" bits across all words — the
// sparsity statistic the paper reports (0.237 of bits are "1" for MNIST, i.e.
// 76.3% are "0").
func OneBitFraction(ws []Word) float64 {
	if len(ws) == 0 {
		return 0
	}
	ones := 0
	for _, w := range ws {
		ones += w.OneBits()
	}
	return float64(ones) / float64(len(ws)*WordBits)
}

// TwosComplement converts a sign-magnitude word to its two's-complement bit
// pattern at the same binary point. Used only by the encoding ablation.
func TwosComplement(f Format, w Word) uint16 {
	v := int32(w &^ SignMask)
	if w&SignMask != 0 {
		v = -v
	}
	return uint16(v)
}

// Acc is a widened accumulator for fixed-point dot products. The accelerator
// multiplies sign-magnitude words into an int64 accumulator scaled by
// weightFrac+actFrac fraction bits, mirroring a DSP48 MAC cascade.
type Acc struct {
	sum int64
}

// MAC accumulates weight*activation, both given as decoded sign-magnitude
// words.
func (a *Acc) MAC(wf Format, w Word, af Format, act Word) {
	wm := int64(w &^ SignMask)
	if w&SignMask != 0 {
		wm = -wm
	}
	am := int64(act &^ SignMask)
	if act&SignMask != 0 {
		am = -am
	}
	a.sum += wm * am
}

// Value returns the accumulated real value given the two fraction widths.
func (a *Acc) Value(wf, af Format) float64 {
	return float64(a.sum) / (wf.Scale() * af.Scale())
}

// Reset clears the accumulator.
func (a *Acc) Reset() { a.sum = 0 }
