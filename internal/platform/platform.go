// Package platform defines the four FPGA boards the paper studies (Table I):
// VC707 (Virtex-7, performance-optimized), ZC702 (Zynq-7000,
// hardware/software), and two identical samples of KC705 (Kintex-7,
// power-optimized). Each platform bundles its Table I specification, its
// silicon calibration (DESIGN.md §1 records how every constant traces back
// to a published number), its floorplan geometry, and its power budget.
package platform

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/silicon"
)

// LinkKind describes who drives the serial readout interface (Section II-A:
// on ZC702 the on-board ARM core controls it; on the other boards the paper's
// authors built a custom hardware interface).
type LinkKind int

// The two serial interface implementations.
const (
	LinkCustomHW LinkKind = iota
	LinkARM
)

// String names the link implementation.
func (k LinkKind) String() string {
	if k == LinkARM {
		return "on-board ARM"
	}
	return "custom HW"
}

// Geometry is the BRAM floorplan: a GridCols×GridRows lattice of candidate
// sites, of which the first NumBRAMs (column-major) are populated. The
// remaining sites are the "white boxes" of Fig. 6 — physical locations with
// no BRAM.
type Geometry struct {
	GridCols, GridRows int
}

// Sites returns the populated site list for n BRAMs, column-major.
// It panics if the grid cannot hold n sites.
func (g Geometry) Sites(n int) []silicon.Site {
	if n > g.GridCols*g.GridRows {
		panic(fmt.Sprintf("platform: %d BRAMs exceed %dx%d grid",
			n, g.GridCols, g.GridRows))
	}
	sites := make([]silicon.Site, 0, n)
	for x := 0; x < g.GridCols && len(sites) < n; x++ {
		for y := 0; y < g.GridRows && len(sites) < n; y++ {
			sites = append(sites, silicon.Site{X: x, Y: y})
		}
	}
	return sites
}

// Platform is one of the studied boards.
type Platform struct {
	Name       string // board name, e.g. "VC707"
	Family     string // device family, e.g. "Virtex-7"
	ChipModel  string // full part number from Table I
	SpeedGrade string
	Serial     string // board serial number (Table I)
	ProcessNm  int    // manufacturing node (28 nm for all)
	NumBRAMs   int
	DesignGoal string // vendor optimization target, per the paper's analysis
	Link       LinkKind

	Cal      silicon.Calibration
	Geometry Geometry

	// Power budget of the characterization design (BRAM pool + readout
	// logic), calibrated per DESIGN.md. BRAMPowerNom is the full-pool BRAM
	// power at nominal voltage; DynFrac its dynamic share.
	BRAMPowerNom   float64
	BRAMDynFrac    float64
	LogicPowerNom  float64 // VCCINT-side readout/interface logic
	MeterOverheadW float64 // board overhead seen by the external power meter
	ThetaJA        float64 // °C/W junction rise used for on-board temperature
	PowerUnit      string  // reporting unit used by the paper's Fig. 3 ("W" or "mW")
}

// Sites returns the populated BRAM floorplan.
func (p Platform) Sites() []silicon.Site { return p.Geometry.Sites(p.NumBRAMs) }

// BRAMComponent returns the BRAM power budget scaled to the given fraction
// of the pool (1.0 = whole pool, as in the characterization design).
func (p Platform) BRAMComponent(utilization float64) power.Component {
	return power.Component{
		Name:    "BRAM",
		DynNom:  p.BRAMPowerNom * p.BRAMDynFrac * utilization,
		StatNom: p.BRAMPowerNom * (1 - p.BRAMDynFrac) * utilization,
		Rail:    "VCCBRAM",
	}
}

// LogicComponent returns the VCCINT-side logic budget of the
// characterization design.
func (p Platform) LogicComponent() power.Component {
	return power.Component{
		Name:    "Logic",
		DynNom:  p.LogicPowerNom * 0.6,
		StatNom: p.LogicPowerNom * 0.4,
		Rail:    "VCCINT",
	}
}

// TotalMbits returns the BRAM capacity in Mbit.
func (p Platform) TotalMbits() float64 {
	return float64(p.NumBRAMs*silicon.BRAMBits) / float64(silicon.BitsPerMbit)
}

// VC707 returns the Virtex-7 performance-optimized platform.
// Fault-rate landmarks (652 faults/Mbit at Vcrash = 0.54 V, Vmin = 0.61 V,
// 38.9% never-faulting BRAMs, >3× fault reduction from 50→80 °C) are the
// paper's published VC707 numbers.
func VC707() Platform {
	return Platform{
		Name:       "VC707",
		Family:     "Virtex-7",
		ChipModel:  "XC7VX485T-ffg1761-2",
		SpeedGrade: "-2",
		Serial:     "1308-6520",
		ProcessNm:  28,
		NumBRAMs:   2060,
		DesignGoal: "performance",
		Link:       LinkCustomHW,
		Cal: silicon.Calibration{
			Family:          "Virtex-7",
			ReferenceSerial: "1308-6520",
			Vnom:            1.00,
			Vmin:            0.61,
			Vcrash:          0.54,
			VminInt:         0.66,
			VcrashInt:       0.59,
			FaultsPerMbit:   652,
			ZeroFaultFrac:   0.389,
			HotspotSigma:    1.5,
			TempRef:         50,
			TempCoeff:       2.73e-4,
			JitterSigma:     5e-5,
			RippleSigma:     1.2e-4,
			Flip01Frac:      0.001,
			DieToDieSigma:   0.6,
		},
		Geometry:       Geometry{GridCols: 21, GridRows: 103},
		BRAMPowerNom:   2.80,
		BRAMDynFrac:    0.05,
		LogicPowerNom:  0.60,
		MeterOverheadW: 1.50,
		ThetaJA:        1.0,
		PowerUnit:      "W",
	}
}

// ZC702 returns the Zynq-7000 hardware/software platform, whose readout runs
// on the on-board ARM core. With only 280 BRAMs its pool power is reported
// in mW (Fig. 3's caption).
func ZC702() Platform {
	return Platform{
		Name:       "ZC702",
		Family:     "Zynq-7000",
		ChipModel:  "XC7Z020-CLG484-1",
		SpeedGrade: "-1",
		Serial:     "630851561533-44019",
		ProcessNm:  28,
		NumBRAMs:   280,
		DesignGoal: "hardware-software",
		Link:       LinkARM,
		Cal: silicon.Calibration{
			Family:          "Zynq-7000",
			ReferenceSerial: "630851561533-44019",
			Vnom:            1.00,
			Vmin:            0.62,
			Vcrash:          0.55,
			VminInt:         0.67,
			VcrashInt:       0.60,
			FaultsPerMbit:   153,
			ZeroFaultFrac:   0.55,
			HotspotSigma:    1.3,
			TempRef:         50,
			TempCoeff:       1.69e-4,
			JitterSigma:     5e-5,
			RippleSigma:     1.63e-3,
			Flip01Frac:      0.001,
			DieToDieSigma:   0.6,
		},
		Geometry:       Geometry{GridCols: 11, GridRows: 28},
		BRAMPowerNom:   0.380,
		BRAMDynFrac:    0.05,
		LogicPowerNom:  0.20,
		MeterOverheadW: 0.90,
		ThetaJA:        1.6,
		PowerUnit:      "mW",
	}
}

// KC705A returns the first Kintex-7 power-optimized sample. Its 254
// faults/Mbit at Vcrash is 4.1× the identical KC705-B board — the paper's
// die-to-die variation evidence.
func KC705A() Platform {
	p := kc705Base()
	p.Name = "KC705-A"
	p.Serial = "604018691749-76023"
	p.Cal.ReferenceSerial = p.Serial
	p.Cal.Vmin = 0.60
	p.Cal.Vcrash = 0.53
	p.Cal.VminInt = 0.65
	p.Cal.VcrashInt = 0.58
	p.Cal.FaultsPerMbit = 254
	p.Cal.ZeroFaultFrac = 0.45
	p.Cal.TempCoeff = 2.72e-5
	p.Cal.JitterSigma = 5e-5
	p.Cal.RippleSigma = 3.47e-4
	return p
}

// KC705B returns the second, identical-model Kintex-7 sample.
func KC705B() Platform {
	p := kc705Base()
	p.Name = "KC705-B"
	p.Serial = "604016111717-65664"
	p.Cal.ReferenceSerial = p.Serial
	p.Cal.Vmin = 0.61
	p.Cal.Vcrash = 0.54
	p.Cal.VminInt = 0.66
	p.Cal.VcrashInt = 0.59
	p.Cal.FaultsPerMbit = 60
	p.Cal.ZeroFaultFrac = 0.60
	p.Cal.TempCoeff = 9.1e-5
	p.Cal.JitterSigma = 5e-5
	p.Cal.RippleSigma = 5.7e-4
	return p
}

func kc705Base() Platform {
	return Platform{
		Family:     "Kintex-7",
		ChipModel:  "XC7K325T-ffg900-2",
		SpeedGrade: "-2",
		ProcessNm:  28,
		NumBRAMs:   890,
		DesignGoal: "power",
		Link:       LinkCustomHW,
		Cal: silicon.Calibration{
			Family:        "Kintex-7",
			Vnom:          1.00,
			HotspotSigma:  1.4,
			TempRef:       50,
			Flip01Frac:    0.001,
			DieToDieSigma: 0.6,
		},
		Geometry:       Geometry{GridCols: 11, GridRows: 89},
		BRAMPowerNom:   0.950,
		BRAMDynFrac:    0.05,
		LogicPowerNom:  0.35,
		MeterOverheadW: 1.10,
		ThetaJA:        1.2,
		PowerUnit:      "W",
	}
}

// WithSerial returns a copy of p carrying the given board serial. A board's
// die fault population is a deterministic function of its serial, so every
// new serial mints a physically distinct sample of the same chip model —
// exactly how the paper's two "identical" KC705 boards differ. The
// calibration's reference serial is left untouched: a non-reference serial
// draws its own die-to-die factor.
func (p Platform) WithSerial(serial string) Platform {
	q := p
	q.Serial = serial
	return q
}

// Replicas mints n board samples of this platform for fleet studies. The
// first replica keeps the reference serial and therefore reproduces the
// paper's published numbers; the others get derived serials and distinct die
// fault populations.
func (p Platform) Replicas(n int) []Platform {
	if n <= 0 {
		return nil
	}
	out := make([]Platform, n)
	out[0] = p
	for i := 1; i < n; i++ {
		out[i] = p.WithSerial(fmt.Sprintf("%s/fleet-%02d", p.Serial, i))
	}
	return out
}

// All returns the four studied platforms in the paper's order.
func All() []Platform {
	return []Platform{VC707(), ZC702(), KC705A(), KC705B()}
}

// ByName returns the platform with the given name (case-sensitive), or an
// error listing the valid names.
func ByName(name string) (Platform, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("platform: unknown %q (want VC707, ZC702, KC705-A, or KC705-B)", name)
}

// Scaled returns a copy of p with the BRAM count (and floorplan) reduced to
// n BRAMs, for fast tests and benchmarks. Fault densities per Mbit are
// preserved; only the pool shrinks. The scaled platform keeps its serial, so
// its die is a deterministic function of the original board identity plus
// the new geometry.
func (p Platform) Scaled(n int) Platform {
	if n <= 0 || n >= p.NumBRAMs {
		return p
	}
	q := p
	q.NumBRAMs = n
	// Keep the grid aspect: shrink rows first, then columns.
	rows := p.Geometry.GridRows
	cols := (n + rows - 1) / rows
	if cols < 2 {
		cols = 2
		rows = (n + 1) / 2
	}
	q.Geometry = Geometry{GridCols: cols + 1, GridRows: rows}
	frac := float64(n) / float64(p.NumBRAMs)
	q.BRAMPowerNom = p.BRAMPowerNom * frac
	return q
}
