package platform

import (
	"math"
	"testing"

	"repro/internal/silicon"
)

func TestTableISpecs(t *testing.T) {
	// Pin the Table I values the experiments depend on.
	cases := []struct {
		p        Platform
		family   string
		chip     string
		numBRAMs int
	}{
		{VC707(), "Virtex-7", "XC7VX485T-ffg1761-2", 2060},
		{ZC702(), "Zynq-7000", "XC7Z020-CLG484-1", 280},
		{KC705A(), "Kintex-7", "XC7K325T-ffg900-2", 890},
		{KC705B(), "Kintex-7", "XC7K325T-ffg900-2", 890},
	}
	for _, c := range cases {
		if c.p.Family != c.family || c.p.ChipModel != c.chip || c.p.NumBRAMs != c.numBRAMs {
			t.Fatalf("%s spec mismatch: %+v", c.p.Name, c.p)
		}
		if c.p.ProcessNm != 28 {
			t.Fatalf("%s process node = %d", c.p.Name, c.p.ProcessNm)
		}
		if c.p.Cal.Vnom != 1.0 {
			t.Fatalf("%s Vnom = %v", c.p.Name, c.p.Cal.Vnom)
		}
	}
}

func TestGuardbandAverages(t *testing.T) {
	// The paper: VCCBRAM guardband averages 39%, VCCINT 34%.
	var gbBRAM, gbInt float64
	for _, p := range All() {
		gbBRAM += p.Cal.GuardbandBRAM()
		gbInt += p.Cal.GuardbandInt()
	}
	gbBRAM /= 4
	gbInt /= 4
	if math.Abs(gbBRAM-0.39) > 0.005 {
		t.Fatalf("avg VCCBRAM guardband = %v, want 0.39", gbBRAM)
	}
	if math.Abs(gbInt-0.34) > 0.005 {
		t.Fatalf("avg VCCINT guardband = %v, want 0.34", gbInt)
	}
}

func TestFaultRateLandmarks(t *testing.T) {
	want := map[string]float64{
		"VC707": 652, "ZC702": 153, "KC705-A": 254, "KC705-B": 60,
	}
	for _, p := range All() {
		if p.Cal.FaultsPerMbit != want[p.Name] {
			t.Fatalf("%s faults/Mbit = %v, want %v", p.Name, p.Cal.FaultsPerMbit, want[p.Name])
		}
	}
	// KC705-A vs B: the paper's 4.1x die-to-die gap (254/60 = 4.23).
	ratio := KC705A().Cal.FaultsPerMbit / KC705B().Cal.FaultsPerMbit
	if ratio < 3.8 || ratio > 4.5 {
		t.Fatalf("KC705 A/B ratio = %v", ratio)
	}
}

func TestSitesGeometry(t *testing.T) {
	for _, p := range All() {
		sites := p.Sites()
		if len(sites) != p.NumBRAMs {
			t.Fatalf("%s: %d sites for %d BRAMs", p.Name, len(sites), p.NumBRAMs)
		}
		// Sites must be unique and inside the grid.
		seen := map[silicon.Site]bool{}
		for _, s := range sites {
			if s.X < 0 || s.X >= p.Geometry.GridCols || s.Y < 0 || s.Y >= p.Geometry.GridRows {
				t.Fatalf("%s site %+v outside grid", p.Name, s)
			}
			if seen[s] {
				t.Fatalf("%s duplicate site %+v", p.Name, s)
			}
			seen[s] = true
		}
		// The floorplan must have at least one empty site (Fig. 6 white boxes).
		if p.Geometry.GridCols*p.Geometry.GridRows <= p.NumBRAMs {
			t.Fatalf("%s floorplan has no empty sites", p.Name)
		}
	}
}

func TestSitesPanicsWhenOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Geometry{GridCols: 2, GridRows: 2}.Sites(5)
}

func TestTotalMbits(t *testing.T) {
	if got := VC707().TotalMbits(); math.Abs(got-32.1875) > 1e-9 {
		t.Fatalf("VC707 Mbits = %v", got)
	}
	if got := ZC702().TotalMbits(); math.Abs(got-4.375) > 1e-9 {
		t.Fatalf("ZC702 Mbits = %v", got)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("KC705-B")
	if err != nil || p.Serial != "604016111717-65664" {
		t.Fatalf("ByName: %+v, %v", p, err)
	}
	if _, err := ByName("VU9P"); err == nil {
		t.Fatal("unknown platform should error")
	}
}

func TestDistinctSerialsDistinctDies(t *testing.T) {
	// KC705-A and KC705-B share a family; their dies must still differ.
	a, b := KC705A(), KC705B()
	da := silicon.NewDie(a.Cal, a.Serial, a.Sites()[:50])
	db := silicon.NewDie(b.Cal, b.Serial, b.Sites()[:50])
	same := true
	for s := 0; s < 50 && same; s++ {
		ca, cb := da.WeakCells(s), db.WeakCells(s)
		if len(ca) != len(cb) {
			same = false
		}
	}
	if same {
		t.Fatal("KC705-A and KC705-B dies identical")
	}
}

func TestComponents(t *testing.T) {
	p := VC707()
	full := p.BRAMComponent(1.0)
	if math.Abs(full.Total()-2.8) > 1e-9 {
		t.Fatalf("full BRAM budget = %v", full.Total())
	}
	nn := p.BRAMComponent(0.708)
	if nn.Total() >= full.Total() {
		t.Fatal("scaled budget should shrink")
	}
	if full.Rail != "VCCBRAM" || p.LogicComponent().Rail != "VCCINT" {
		t.Fatal("component rails wrong")
	}
}

func TestScaled(t *testing.T) {
	p := VC707().Scaled(120)
	if p.NumBRAMs != 120 {
		t.Fatalf("scaled BRAMs = %d", p.NumBRAMs)
	}
	if len(p.Sites()) != 120 {
		t.Fatalf("scaled sites = %d", len(p.Sites()))
	}
	if p.BRAMPowerNom >= VC707().BRAMPowerNom {
		t.Fatal("scaled power should shrink")
	}
	if p.Cal.FaultsPerMbit != VC707().Cal.FaultsPerMbit {
		t.Fatal("scaling must preserve fault density")
	}
	// No-ops.
	if got := VC707().Scaled(0); got.NumBRAMs != 2060 {
		t.Fatal("Scaled(0) should be identity")
	}
	if got := VC707().Scaled(99999); got.NumBRAMs != 2060 {
		t.Fatal("Scaled(large) should be identity")
	}
}

func TestLinkKinds(t *testing.T) {
	if ZC702().Link != LinkARM {
		t.Fatal("ZC702 readout is ARM-controlled in the paper")
	}
	if VC707().Link != LinkCustomHW {
		t.Fatal("VC707 readout is the custom HW interface")
	}
	if LinkARM.String() == LinkCustomHW.String() {
		t.Fatal("link names must differ")
	}
}
