package report

import (
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("Demo", "platform", "faults/Mbit")
	tb.AddRow("VC707", "652")
	tb.AddRow("KC705-B", "60")
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Column 2 must start at the same offset in header and data rows.
	hIdx := strings.Index(lines[1], "faults/Mbit")
	dIdx := strings.Index(lines[3], "652")
	if hIdx != dIdx {
		t.Fatalf("columns not aligned: header@%d data@%d\n%s", hIdx, dIdx, out)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")           // short
	tb.AddRow("1", "2", "3") // long
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("long row cell dropped:\n%s", out)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "v", "rate")
	tb.AddRowf("%.2f\t%d", 0.54, 652)
	if tb.NumRows() != 1 || tb.Rows[0][1] != "652" {
		t.Fatalf("AddRowf rows = %+v", tb.Rows)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("t", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestComparison(t *testing.T) {
	c := Comparison{Metric: "faults", Paper: 652, Measured: 620}
	if got := c.RelErr(); got < 0.048 || got > 0.05 {
		t.Fatalf("RelErr = %v", got)
	}
	zero := Comparison{Paper: 0, Measured: 0}
	if zero.RelErr() != 0 {
		t.Fatal("0 vs 0 should be 0 error")
	}
	mism := Comparison{Paper: 0, Measured: 4}
	if mism.RelErr() != 1 {
		t.Fatal("nonzero vs zero should be full error")
	}
}

func TestComparisonTable(t *testing.T) {
	tab := ComparisonTable("Fig 3", []Comparison{
		{Metric: "VC707 @Vcrash", Paper: 652, Measured: 648, Unit: "faults/Mbit"},
	})
	out := tab.String()
	if !strings.Contains(out, "VC707 @Vcrash") || !strings.Contains(out, "faults/Mbit") {
		t.Fatalf("comparison table missing content:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatalf("F = %q", F(1.23456, 2))
	}
	if Pct(0.391, 1) != "39.1%" {
		t.Fatalf("Pct = %q", Pct(0.391, 1))
	}
}
