// Package report renders the experiment outputs: aligned text tables with
// optional paper-vs-measured comparison columns, and CSV emission so results
// can be post-processed. Every experiment in internal/experiments produces a
// Table (or several), which cmd/experiments prints and EXPERIMENTS.md records.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Note    string // optional caption line printed under the title
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Cells beyond the header count are kept; short rows
// are padded when rendering.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	writeRow := func(r []string) {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var rule strings.Builder
		for i := 0; i < cols; i++ {
			if i > 0 {
				rule.WriteString("  ")
			}
			rule.WriteString(strings.Repeat("-", widths[i]))
		}
		fmt.Fprintln(w, rule.String())
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (headers first). Cells containing commas,
// quotes or newlines are quoted per RFC 4180.
func (t *Table) RenderCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// F formats a float with the given number of decimals, trimming to a compact
// representation.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Pct formats v (a fraction) as a percentage with the given decimals.
func Pct(v float64, decimals int) string {
	return strconv.FormatFloat(v*100, 'f', decimals, 64) + "%"
}

// Comparison is one paper-vs-measured line inside an experiment report.
type Comparison struct {
	Metric   string
	Paper    float64
	Measured float64
	Unit     string
	Note     string
}

// RelErr returns |measured-paper|/|paper| (or |measured| when paper == 0).
func (c Comparison) RelErr() float64 {
	if c.Paper == 0 {
		if c.Measured == 0 {
			return 0
		}
		return 1
	}
	d := c.Measured - c.Paper
	if d < 0 {
		d = -d
	}
	p := c.Paper
	if p < 0 {
		p = -p
	}
	return d / p
}

// ComparisonTable renders a set of Comparisons as a Table.
func ComparisonTable(title string, cs []Comparison) *Table {
	t := NewTable(title, "metric", "paper", "measured", "unit", "rel.err", "note")
	for _, c := range cs {
		t.AddRow(c.Metric, F(c.Paper, 3), F(c.Measured, 3), c.Unit,
			Pct(c.RelErr(), 1), c.Note)
	}
	return t
}
