package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Plan is pure: the same (seed, profile, ordinal) always yields the same
// decision, and distinct seeds yield distinct schedules.
func TestPlanDeterministic(t *testing.T) {
	p := DefaultProfile()
	for k := uint64(0); k < 2000; k++ {
		a, b := Plan(42, p, k), Plan(42, p, k)
		if a != b {
			t.Fatalf("Plan(42, k=%d) not deterministic: %+v vs %+v", k, a, b)
		}
	}
	diff := 0
	for k := uint64(0); k < 2000; k++ {
		if Plan(1, p, k) != Plan(2, p, k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical 2000-request schedules")
	}
}

// Every fault class fires within a modest request budget under the default
// profile, and the empirical rates are in the right per-mille ballpark.
func TestPlanCoversAllFaults(t *testing.T) {
	p := DefaultProfile()
	pre := map[Fault]int{}
	stream := map[Fault]int{}
	const n = 10000
	for k := uint64(0); k < n; k++ {
		d := Plan(7, p, k)
		pre[d.Pre]++
		stream[d.Stream]++
	}
	for f, want := range map[Fault]int{
		FaultReset:   p.ResetPerMille,
		Fault503:     p.Inject503PM,
		FaultLatency: p.LatencyPerMille,
	} {
		got := pre[f] * 1000 / n
		if got < want/2 || got > want*2 {
			t.Errorf("pre fault %v: %d per mille, want near %d", f, got, want)
		}
	}
	for f, want := range map[Fault]int{
		FaultTruncate: p.TruncatePerMille,
		FaultStall:    p.StallPerMille,
		FaultDrop:     p.DropPerMille,
	} {
		got := stream[f] * 1000 / n
		if got < want/2 || got > want*2 {
			t.Errorf("stream fault %v: %d per mille, want near %d", f, got, want)
		}
	}
}

// Two transports with the same seed inject the identical fault sequence over
// the same requests — the bit-identical replay the -chaos flag relies on.
func TestTransportReplaysSchedule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	run := func(seed uint64) []string {
		tr := New(seed, nil)
		cl := &http.Client{Transport: tr}
		var got []string
		for i := 0; i < 300; i++ {
			resp, err := cl.Get(srv.URL)
			switch {
			case err != nil:
				got = append(got, "err")
			case resp.StatusCode == http.StatusServiceUnavailable:
				resp.Body.Close()
				got = append(got, "503")
			default:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				got = append(got, "ok")
			}
		}
		return got
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: run A saw %q, run B saw %q", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, want := range []string{"ok", "err", "503"} {
		if !seen[want] {
			t.Errorf("outcome %q never occurred in 300 requests", want)
		}
	}
}

// Injected resets surface as *net.OpError wrapping ECONNRESET — the same
// error shape a real severed connection produces.
func TestResetErrShape(t *testing.T) {
	p := Profile{ResetPerMille: 1000}
	tr := NewWithProfile(1, p, http.DefaultTransport)
	cl := &http.Client{Transport: tr}
	_, err := cl.Get("http://127.0.0.1:0/unreachable")
	if err == nil {
		t.Fatal("expected injected reset, got nil error")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("injected reset should wrap ECONNRESET, got %v", err)
	}
}

// Body faults fire only on text/event-stream responses; plain responses
// pass through untouched even when the schedule armed a stream fault.
func TestStreamFaultsOnlyOnSSE(t *testing.T) {
	const payload = "data: {\"seq\":1}\n\n"
	body := strings.Repeat(payload, 4096)
	mkSrv := func(sse bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if sse {
				w.Header().Set("Content-Type", "text/event-stream")
			}
			io.WriteString(w, body)
		}))
	}
	p := Profile{TruncatePerMille: 1000} // every stream truncates
	read := func(srv *httptest.Server) (int, error) {
		cl := &http.Client{Transport: NewWithProfile(5, p, http.DefaultTransport)}
		resp, err := cl.Get(srv.URL)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		defer resp.Body.Close()
		n, err := io.Copy(io.Discard, resp.Body)
		return int(n), err
	}

	sse := mkSrv(true)
	defer sse.Close()
	n, err := read(sse)
	if err != nil {
		t.Fatalf("truncated SSE body should end with clean EOF, got %v", err)
	}
	if n >= len(body) {
		t.Fatalf("SSE body was not truncated: read all %d bytes", n)
	}

	plain := mkSrv(false)
	defer plain.Close()
	n, err = read(plain)
	if err != nil || n != len(body) {
		t.Fatalf("plain body must pass through: read %d/%d bytes, err %v", n, len(body), err)
	}
}

// A stalled SSE body freezes for its scheduled bounded interval, then
// resets — it never hangs forever.
func TestStallIsBounded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, strings.Repeat("data: x\n\n", 2048))
	}))
	defer srv.Close()
	p := Profile{StallPerMille: 1000, MaxStall: 50 * time.Millisecond}
	cl := &http.Client{Transport: NewWithProfile(3, p, http.DefaultTransport)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	start := time.Now()
	_, err = io.Copy(io.Discard, resp.Body)
	elapsed := time.Since(start)
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("stalled body should end in a reset, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stall not bounded: %v", elapsed)
	}
}

// Injected 503s carry a JSON error body so API clients decode them through
// their normal status-error path.
func TestInjected503Body(t *testing.T) {
	p := Profile{Inject503PM: 1000}
	cl := &http.Client{Transport: NewWithProfile(11, p, http.DefaultTransport)}
	resp, err := cl.Get("http://127.0.0.1:0/unreachable")
	if err != nil {
		t.Fatalf("injected 503 should not error at transport level: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "chaos") {
		t.Fatalf("503 body should identify the injector, got %q", b)
	}
}
