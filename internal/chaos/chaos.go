// Package chaos is a deterministic, seed-driven fault injector for the
// serving stack — the software counterpart of the paper's method of running
// hardware under deliberately injected stress and measuring how gracefully
// it degrades.
//
// Transport wraps any http.RoundTripper and injects transport-level faults:
// added latency, connection resets, synthesized 503s, and — on SSE
// responses — truncated bodies, bounded stalls, and dropped byte ranges.
// Every decision is a pure function of (seed, request ordinal) through the
// SplitMix64 mixer in internal/prng: no wall clock, no global generator, so
// the same seed over the same request ordinals replays the same fault
// schedule bit-identically (Plan exposes the schedule directly). The store
// counterpart lives in internal/store as FaultHooks (fsync failure, ENOSPC
// on append, rename failure mid-atomicWrite) so disk-path degradation is
// injectable with the same discipline.
package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/prng"
)

// Fault identifies one injected failure mode.
type Fault uint8

const (
	// FaultNone: the request proceeds untouched.
	FaultNone Fault = iota
	// FaultLatency delays the request before it is forwarded.
	FaultLatency
	// FaultReset fails the request with a connection reset before any bytes
	// leave the process — so a reset POST never creates downstream state.
	FaultReset
	// Fault503 answers with a synthesized 503 without forwarding, the shape
	// of a daemon's admission control refusing work.
	Fault503
	// FaultTruncate ends an SSE response body early with a clean EOF (no
	// terminal event: the client sees an unexpectedly ended stream).
	FaultTruncate
	// FaultStall freezes an SSE body for a bounded interval, then resets it.
	FaultStall
	// FaultDrop silently discards a byte range mid-SSE-body, tearing a frame.
	FaultDrop

	numFaults
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultLatency:
		return "latency"
	case FaultReset:
		return "reset"
	case Fault503:
		return "inject503"
	case FaultTruncate:
		return "truncate"
	case FaultStall:
		return "stall"
	case FaultDrop:
		return "drop-bytes"
	}
	return "unknown"
}

// Profile is the fault mix: per-mille rates per request (pre-flight faults)
// and per streaming response (body faults), plus the magnitude bounds the
// schedule draws from. Magnitudes affect only how long a fault takes, never
// whether or where one fires, so two runs with one seed inject the same
// faults at the same request ordinals and byte offsets regardless of
// machine speed.
type Profile struct {
	// Pre-flight faults, applied to every request before it is forwarded.
	ResetPerMille   int
	Inject503PM     int
	LatencyPerMille int
	// Body faults, applied only to text/event-stream responses.
	TruncatePerMille int
	StallPerMille    int
	DropPerMille     int
	// MaxLatency bounds FaultLatency delays; MaxStall bounds FaultStall.
	MaxLatency time.Duration
	MaxStall   time.Duration
}

// DefaultProfile is the mix the -chaos flag uses: every fault class fires
// often enough that a few hundred requests exercise all of them, while the
// rates stay low enough that bounded retry budgets always win.
func DefaultProfile() Profile {
	return Profile{
		ResetPerMille:    20,  // 2% of requests reset before sending
		Inject503PM:      30,  // 3% answered 503 without forwarding
		LatencyPerMille:  100, // 10% delayed
		TruncatePerMille: 120, // 12% of SSE streams end early
		StallPerMille:    80,  // 8% freeze, then reset
		DropPerMille:     120, // 12% lose a mid-stream byte range
		MaxLatency:       25 * time.Millisecond,
		MaxStall:         400 * time.Millisecond,
	}
}

// Decision is the complete fault plan for one request ordinal.
type Decision struct {
	// Pre is the pre-flight fault: FaultNone, FaultLatency (delay Latency),
	// FaultReset, or Fault503.
	Pre     Fault
	Latency time.Duration
	// Stream is the body fault armed for this request, applied only if the
	// response turns out to be an SSE stream: FaultNone, FaultTruncate,
	// FaultStall, or FaultDrop. After is the clean byte count delivered
	// before it fires; Skip is the dropped range for FaultDrop; Stall is the
	// freeze duration for FaultStall.
	Stream Fault
	After  int64
	Skip   int64
	Stall  time.Duration
}

// Plan returns the deterministic decision for request ordinal k under seed:
// a pure function of its arguments, so replaying the same ordinals replays
// the same schedule. Transport numbers requests in arrival order; under
// concurrency the ordinal→request pairing follows goroutine scheduling, but
// the schedule itself — which ordinals fault, and how — is fixed by the seed.
func Plan(seed uint64, p Profile, k uint64) Decision {
	// An independent draw stream per ordinal: mixing k before xoring keeps
	// neighboring ordinals' streams uncorrelated.
	s0 := prng.Mix64(seed ^ prng.Mix64(k+0x9e3779b97f4a7c15))
	draw := func(i uint64) uint64 { return prng.Mix64(s0 + i) }

	var d Decision
	switch w := draw(0) % 1000; {
	case w < uint64(p.ResetPerMille):
		d.Pre = FaultReset
	case w < uint64(p.ResetPerMille+p.Inject503PM):
		d.Pre = Fault503
	case w < uint64(p.ResetPerMille+p.Inject503PM+p.LatencyPerMille):
		d.Pre = FaultLatency
		if p.MaxLatency > 0 {
			d.Latency = time.Millisecond + time.Duration(draw(1)%uint64(p.MaxLatency))
		}
	}
	switch w := draw(2) % 1000; {
	case w < uint64(p.TruncatePerMille):
		d.Stream = FaultTruncate
	case w < uint64(p.TruncatePerMille+p.StallPerMille):
		d.Stream = FaultStall
		if p.MaxStall > 0 {
			d.Stall = 10*time.Millisecond + time.Duration(draw(3)%uint64(p.MaxStall))
		}
	case w < uint64(p.TruncatePerMille+p.StallPerMille+p.DropPerMille):
		d.Stream = FaultDrop
		d.Skip = 16 + int64(draw(4)%512)
	}
	// Enough clean bytes that the SSE preamble and some events get through
	// before the body fault fires — mid-stream breaks, not connect failures.
	d.After = 64 + int64(draw(5)%4096)
	return d
}

// Transport is a chaos-injecting http.RoundTripper. Wrap the transport a
// client would otherwise use (nil means http.DefaultTransport) and hand the
// result to an http.Client.
type Transport struct {
	seed    uint64
	profile Profile
	inner   http.RoundTripper

	n      atomic.Uint64
	counts [numFaults]atomic.Uint64
}

// New returns a Transport over inner with the default profile.
func New(seed uint64, inner http.RoundTripper) *Transport {
	return NewWithProfile(seed, DefaultProfile(), inner)
}

// NewWithProfile returns a Transport over inner with an explicit fault mix.
func NewWithProfile(seed uint64, p Profile, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{seed: seed, profile: p, inner: inner}
}

// resetErr is the injected connection reset: a *net.OpError wrapping
// ECONNRESET, the same shape a severed TCP connection produces, so callers'
// transport-error classification cannot tell chaos from a real dead peer.
func resetErr() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
}

// RoundTrip numbers the request, applies its planned pre-flight fault, and
// arms the planned body fault when the response is an SSE stream.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	k := t.n.Add(1) - 1
	d := Plan(t.seed, t.profile, k)
	switch d.Pre {
	case FaultLatency:
		t.counts[FaultLatency].Add(1)
		timer := time.NewTimer(d.Latency)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	case FaultReset:
		t.counts[FaultReset].Add(1)
		return nil, resetErr()
	case Fault503:
		t.counts[Fault503].Add(1)
		const body = `{"error":"chaos: injected 503"}`
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || d.Stream == FaultNone || !isEventStream(resp) {
		return resp, err
	}
	t.counts[d.Stream].Add(1)
	resp.Body = &faultBody{rc: resp.Body, d: d, remaining: d.After}
	return resp, nil
}

// Requests reports how many requests the transport has numbered.
func (t *Transport) Requests() uint64 { return t.n.Load() }

// Counts reports how many faults of each kind have been injected.
func (t *Transport) Counts() map[Fault]uint64 {
	out := make(map[Fault]uint64, int(numFaults))
	for f := FaultLatency; f < numFaults; f++ {
		if n := t.counts[f].Load(); n > 0 {
			out[f] = n
		}
	}
	return out
}

// Report is a one-line human summary of what has been injected so far.
func (t *Transport) Report() string {
	c := func(f Fault) uint64 { return t.counts[f].Load() }
	return fmt.Sprintf("chaos: %d requests — %d delayed, %d reset, %d injected 503, %d truncated, %d stalled, %d dropped-bytes",
		t.Requests(), c(FaultLatency), c(FaultReset), c(Fault503),
		c(FaultTruncate), c(FaultStall), c(FaultDrop))
}

func isEventStream(resp *http.Response) bool {
	return resp != nil && strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream")
}

// faultBody delivers d.After clean bytes of a streaming response, then
// fires the armed body fault: truncate (clean EOF), stall (a bounded freeze
// followed by a reset), or drop (a skipped byte range that tears the
// current SSE frame, then passthrough).
type faultBody struct {
	rc        io.ReadCloser
	d         Decision
	remaining int64
	tripped   bool
	stalled   bool
}

func (b *faultBody) Read(p []byte) (int, error) {
	if !b.tripped && b.remaining <= 0 {
		b.tripped = true
	}
	if b.tripped {
		switch b.d.Stream {
		case FaultTruncate:
			return 0, io.EOF
		case FaultStall:
			if !b.stalled {
				b.stalled = true
				// The stall is bounded by the schedule, never by the wall
				// clock: the decision already fixed its duration.
				time.Sleep(b.d.Stall)
			}
			return 0, resetErr()
		case FaultDrop:
			if b.d.Skip > 0 {
				if _, err := io.CopyN(io.Discard, b.rc, b.d.Skip); err != nil {
					b.d.Skip = 0
					return 0, err
				}
				b.d.Skip = 0
			}
			return b.rc.Read(p)
		}
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *faultBody) Close() error { return b.rc.Close() }
