// Package sem provides a small context-aware weighted semaphore, the
// fleet-wide read-worker budget of the campaign engine: every BRAM read
// worker holds units while it scans, so total read CPU stays flat no matter
// how many boards a fleet runs concurrently.
//
// Waiters are served strictly FIFO — a large acquisition at the head of the
// queue blocks later small ones, so wide requests cannot starve. Only the
// standard library is used; the algorithm follows the well-known
// semaphore-with-waiter-list design.
package sem

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Gate is a weighted semaphore. The zero value is unusable; construct with
// New. All methods are safe for concurrent use.
type Gate struct {
	capacity int64

	mu      sync.Mutex
	cur     int64
	peak    int64
	waiters list.List // of waiter
}

type waiter struct {
	n     int64
	ready chan struct{} // closed when the units are granted
}

// Stats is a snapshot of a Gate's occupancy counters.
type Stats struct {
	Capacity int64 // total units
	InUse    int64 // units currently held
	Waiting  int   // acquisitions queued
	Peak     int64 // highest InUse ever observed
}

// New returns a gate with the given capacity; capacities below 1 are clamped
// to 1 so a misconfigured budget degrades to serial, not to deadlock.
func New(capacity int64) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	return &Gate{capacity: capacity}
}

// Acquire blocks until n units are available (or the context is done) and
// takes them. n below 1 is treated as 1; n above the capacity fails
// immediately, since it could never be granted.
func (g *Gate) Acquire(ctx context.Context, n int64) error {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	if n > g.capacity {
		g.mu.Unlock()
		return fmt.Errorf("sem: acquire %d exceeds capacity %d", n, g.capacity)
	}
	if g.cur+n <= g.capacity && g.waiters.Len() == 0 {
		g.grantLocked(n)
		g.mu.Unlock()
		return nil
	}
	w := waiter{n: n, ready: make(chan struct{})}
	elem := g.waiters.PushBack(w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// Granted in the race window between cancellation and the lock:
			// hand the units straight back before reporting the cancellation.
			g.releaseLocked(n)
		default:
			g.waiters.Remove(elem)
			// Removing a wide waiter from the head can unblock the queue.
			g.notifyLocked()
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// TryAcquire takes n units without blocking and reports whether it did.
// Queued waiters keep priority: TryAcquire fails while anyone waits.
func (g *Gate) TryAcquire(n int64) bool {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cur+n > g.capacity || g.waiters.Len() > 0 {
		return false
	}
	g.grantLocked(n)
	return true
}

// Release returns n units and wakes any waiters the freed capacity now fits.
// Releasing more than is held panics: that is always a bug at the call site.
func (g *Gate) Release(n int64) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releaseLocked(n)
}

// Stats snapshots the occupancy counters.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{Capacity: g.capacity, InUse: g.cur, Waiting: g.waiters.Len(), Peak: g.peak}
}

func (g *Gate) grantLocked(n int64) {
	g.cur += n
	if g.cur > g.peak {
		g.peak = g.cur
	}
}

func (g *Gate) releaseLocked(n int64) {
	g.cur -= n
	if g.cur < 0 {
		panic("sem: released more capacity than held")
	}
	g.notifyLocked()
}

// notifyLocked grants queued waiters in FIFO order while capacity allows.
func (g *Gate) notifyLocked() {
	for {
		front := g.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(waiter)
		if g.cur+w.n > g.capacity {
			return // FIFO: later, smaller waiters must not overtake
		}
		g.waiters.Remove(front)
		g.grantLocked(w.n)
		close(w.ready)
	}
}
