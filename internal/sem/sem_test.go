package sem

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAcquireRelease(t *testing.T) {
	g := New(2)
	ctx := context.Background()
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if g.TryAcquire(1) {
		t.Fatal("TryAcquire succeeded at capacity")
	}
	g.Release(1)
	if !g.TryAcquire(1) {
		t.Fatal("TryAcquire failed with free capacity")
	}
	g.Release(2)
	if s := g.Stats(); s.InUse != 0 || s.Peak != 2 || s.Capacity != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeakNeverExceedsCapacity(t *testing.T) {
	const cap = 3
	g := New(cap)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background(), 1); err != nil {
				t.Error(err)
				return
			}
			n := inUse.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			inUse.Add(-1)
			g.Release(1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("observed %d concurrent holders, capacity %d", p, cap)
	}
	if s := g.Stats(); s.InUse != 0 || s.Peak > cap {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAcquireRespectsContext(t *testing.T) {
	g := New(1)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, 1) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Acquire returned %v", err)
	}
	// The cancelled waiter must not leave the gate wedged.
	g.Release(1)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedFIFO(t *testing.T) {
	g := New(2)
	ctx := context.Background()
	if err := g.Acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	wideReady := make(chan struct{})
	go func() {
		if err := g.Acquire(ctx, 2); err == nil {
			close(wideReady)
		}
	}()
	// Give the wide waiter time to queue, then verify a narrow TryAcquire
	// cannot overtake it.
	time.Sleep(10 * time.Millisecond)
	if g.TryAcquire(1) {
		t.Fatal("narrow TryAcquire overtook a queued wide waiter")
	}
	g.Release(2)
	select {
	case <-wideReady:
	case <-time.After(2 * time.Second):
		t.Fatal("wide waiter never granted")
	}
	g.Release(2)
}

func TestAcquireOverCapacityFails(t *testing.T) {
	g := New(2)
	if err := g.Acquire(context.Background(), 3); err == nil {
		t.Fatal("acquire beyond capacity succeeded")
	}
}

func TestClampedConstruction(t *testing.T) {
	g := New(0)
	if s := g.Stats(); s.Capacity != 1 {
		t.Fatalf("capacity = %d, want clamp to 1", s.Capacity)
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-release")
		}
	}()
	New(1).Release(1)
}
