package fed_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fed"
	"repro/internal/server"
	"repro/internal/store"
)

// flakyDaemon fronts a real daemon with a reverse proxy whose probe switch
// can sever exactly N /healthz requests at the TCP level — a dropped probe,
// indistinguishable from a momentarily dead daemon — while every other
// request (submits, SSE streams) passes through untouched.
func flakyDaemon(t *testing.T, cfg server.Config) (proxyURL string, dropProbes *atomic.Int32) {
	t.Helper()
	d := newDaemon(t, cfg)
	target, err := url.Parse(d.URL)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	rp.FlushInterval = -1 // SSE passes through unbuffered
	var drops atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && drops.Add(-1) >= 0 {
			// Sever without an HTTP response: the coordinator sees a
			// transport failure, the same shape a dead daemon produces.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts.URL, &drops
}

// coordinatorHealth decodes the coordinator's /healthz daemon table.
func coordinatorHealth(t *testing.T, fc *server.Client) map[string]struct {
	Healthy bool
	Breaker string
} {
	t.Helper()
	resp, err := http.Get(fc.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Daemons []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
			Breaker string `json:"breaker"`
		} `json:"daemons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]struct {
		Healthy bool
		Breaker string
	})
	for _, d := range body.Daemons {
		out[d.URL] = struct {
			Healthy bool
			Breaker string
		}{d.Healthy, d.Breaker}
	}
	return out
}

// TestSingleProbeFailureDoesNotFlap is the probe-flapping regression: a
// daemon that fails exactly one health probe must stay in rotation — breaker
// closed, no shard retried off it, the campaign untouched.
func TestSingleProbeFailureDoesNotFlap(t *testing.T) {
	ctx := context.Background()
	d1 := newDaemon(t, server.Config{})
	flakyURL, drops := flakyDaemon(t, server.Config{})
	_, fc := newFed(t, fed.Config{
		Downstreams: []string{d1.URL, flakyURL},
		HealthEvery: 20 * time.Millisecond,
		HealthFailN: 3,
		HealthOkN:   2,
	})

	// Let the probe loop establish a baseline, then drop exactly one probe
	// and give the loop several more cycles to (wrongly) react.
	time.Sleep(100 * time.Millisecond)
	drops.Store(1)
	deadline := time.Now().Add(2 * time.Second)
	for drops.Load() >= 0 {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never hit the flaky daemon")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)

	for u, h := range coordinatorHealth(t, fc) {
		if !h.Healthy || h.Breaker != "closed" {
			t.Fatalf("daemon %s is %q/healthy=%v after a single dropped probe, want closed/healthy", u, h.Breaker, h.Healthy)
		}
	}

	// And the control plane behaves: a campaign submitted now runs with no
	// failover at all.
	final, err := func() (server.JobStatus, error) {
		job, err := fc.Submit(ctx, fleetCampaign())
		if err != nil {
			return server.JobStatus{}, err
		}
		return fc.Wait(ctx, job.ID, nil)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone {
		t.Fatalf("campaign ended %q (%s)", final.State, final.Error)
	}
	if len(final.Retries) != 0 {
		t.Fatalf("single dropped probe caused %d shard retries: %+v", len(final.Retries), final.Retries)
	}
}

// TestPartialUnionOnDaemonDeath kills one of two daemons and requires fleet
// queries to degrade, not fail: the surviving union comes back with
// partial=true and the dead daemon on the missing list.
func TestPartialUnionOnDaemonDeath(t *testing.T) {
	ctx := context.Background()
	d1 := newDaemon(t, server.Config{})
	d2 := newDaemon(t, server.Config{})
	_, fc := newFed(t, fed.Config{Downstreams: []string{d1.URL, d2.URL}})

	job, err := fc.Submit(ctx, fleetCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if final, err := fc.Wait(ctx, job.ID, nil); err != nil || final.State != server.JobDone {
		t.Fatalf("seed campaign: state=%v err=%v", final.State, err)
	}

	// Whole fleet up: the union is complete and not marked partial.
	full, err := fc.FVMList(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial || len(full.Missing) != 0 {
		t.Fatalf("healthy federation answered partial=%v missing=%v", full.Partial, full.Missing)
	}
	if len(full.FVMs) != 6 {
		t.Fatalf("full union has %d records, want 6", len(full.FVMs))
	}

	d2.kill()

	fvms, err := fc.FVMList(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !fvms.Partial {
		t.Fatal("union with a dead daemon not marked partial")
	}
	if len(fvms.Missing) != 1 || fvms.Missing[0] != d2.URL {
		t.Fatalf("missing=%v, want [%s]", fvms.Missing, d2.URL)
	}

	vmins, err := fc.VminList(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !vmins.Partial || len(vmins.Missing) != 1 || vmins.Missing[0] != d2.URL {
		t.Fatalf("vmin union partial=%v missing=%v, want partial with [%s]", vmins.Partial, vmins.Missing, d2.URL)
	}
}

// TestChaosFederationCompletes runs a federated campaign with every
// coordinator→daemon request routed through the deterministic chaos
// transport — injected resets, 503s, latency, and torn SSE streams — and
// requires the control plane to absorb all of it: the job completes, every
// board succeeds, and the merged stream stays dense.
func TestChaosFederationCompletes(t *testing.T) {
	ctx := context.Background()
	var urls []string
	for i := 0; i < 3; i++ {
		urls = append(urls, newDaemon(t, server.Config{}).URL)
	}
	ct := chaos.New(20260808, nil)
	_, fc := newFed(t, fed.Config{
		Downstreams:   urls,
		ChunkBoards:   1, // one board per downstream job: maximal exposure
		RetryLimit:    8,
		StreamRetries: 8,
		HTTPClient:    &http.Client{Transport: ct},
	})

	job, err := fc.Submit(ctx, fleetCampaign())
	if err != nil {
		t.Fatal(err)
	}
	final, err := fc.Wait(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone {
		t.Fatalf("campaign under chaos ended %q (%s)", final.State, final.Error)
	}
	for _, bs := range final.BoardResults {
		if bs.Error != "" {
			t.Fatalf("board %d failed under chaos: %s", bs.Board, bs.Error)
		}
	}
	if final.Aggregate == nil || final.Aggregate.Completed != 6 {
		t.Fatalf("aggregate %+v, want 6 completed", final.Aggregate)
	}

	// Zero-drop gate: the coordinator's own stream is dense from 0 and ends
	// with the one terminal event, no matter what chaos did downstream.
	var evs []server.JobEvent
	if err := fc.Events(ctx, job.ID, func(ev server.JobEvent) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: chaos tore a hole in the stream", i, ev.Seq)
		}
	}
	if last := evs[len(evs)-1]; last.Type != "campaign" || last.State != server.JobDone {
		t.Fatalf("stream ends with %q/%q, want the terminal campaign event", last.Type, last.State)
	}
	if ct.Requests() == 0 {
		t.Fatal("chaos transport saw no traffic; the test exercised nothing")
	}
}

// failingStore wraps a Store with a switch that makes every journal append
// fail — the disk dying mid-campaign, without the disk.
type failingStore struct {
	store.Store
	fail atomic.Bool
}

func (f *failingStore) AppendJobEvents(id string, evs []store.EventRecord) error {
	if f.fail.Load() {
		return errInjectedDisk
	}
	return f.Store.AppendJobEvents(id, evs)
}

var errInjectedDisk = &injectedDiskError{}

type injectedDiskError struct{}

func (*injectedDiskError) Error() string { return "injected: journal device failed" }

// TestCoordinatorJournalDegraded fails every coordinator journal append
// mid-campaign and requires graceful degradation: the job still completes,
// the live stream carries exactly one journal_degraded marker, and /healthz
// counts the journal errors.
func TestCoordinatorJournalDegraded(t *testing.T) {
	ctx := context.Background()
	d1 := newDaemon(t, server.Config{})
	fs := &failingStore{Store: store.NewMem()}
	_, fc := newFed(t, fed.Config{Downstreams: []string{d1.URL}, Store: fs})

	job, err := fc.Submit(ctx, fleetCampaign())
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var evs []server.JobEvent
	final, err := fc.Wait(ctx, job.ID, func(ev server.JobEvent) error {
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
		// The disk "dies" as soon as the campaign shows life.
		if ev.Type == "start" {
			fs.fail.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone {
		t.Fatalf("campaign with a dead journal ended %q (%s), want done", final.State, final.Error)
	}

	degraded := 0
	mu.Lock()
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("live event %d has seq %d: the marker must not break density", i, ev.Seq)
		}
		if ev.Type == "journal_degraded" {
			degraded++
			if ev.Error == "" {
				t.Fatal("journal_degraded event carries no explanation")
			}
		}
	}
	mu.Unlock()
	if degraded != 1 {
		t.Fatalf("saw %d journal_degraded markers, want exactly 1", degraded)
	}

	resp, err := http.Get(fc.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		JournalErrors int64 `json:"journal_errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.JournalErrors == 0 {
		t.Fatal("journal writes failed but /healthz journal_errors is 0")
	}
}
