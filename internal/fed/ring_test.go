package fed

import "testing"

func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := newRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := newRing([]string{"http://c", "http://a", "http://b"}, 0)
	keys := []string{
		boardKey("VC707", "VC707-00FA"),
		boardKey("KC705-A", "KC705-013B"),
		boardKey("ZC702", "ZC702-0007"),
		boardKey("VC707", "VC707-00FA/fleet-01"),
	}
	for _, k := range keys {
		if got, want := a.owner(k, nil), b.owner(k, nil); got != want {
			t.Fatalf("owner(%q) depends on daemon order: %q vs %q", k, got, want)
		}
	}
}

func TestRingSkipsDeadAndSpreadsLoad(t *testing.T) {
	daemons := []string{"http://a", "http://b", "http://c"}
	r := newRing(daemons, 0)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		k := boardKey("VC707", serialN(i))
		d := r.owner(k, nil)
		counts[d]++
		// A dead owner's keys move to a survivor; live keys stay put.
		alt := r.owner(k, func(x string) bool { return x == d })
		if alt == d || alt == "" {
			t.Fatalf("owner(%q) skipping %q returned %q", k, d, alt)
		}
		if kept := r.owner(k, func(x string) bool { return x != d && x != alt && false }); kept != d {
			t.Fatalf("owner(%q) unstable without skips: %q then %q", k, d, kept)
		}
	}
	for _, d := range daemons {
		if counts[d] == 0 {
			t.Fatalf("daemon %s owns no keys: %v", d, counts)
		}
	}
	if r.owner("anything", func(string) bool { return true }) != "" {
		t.Fatal("owner with every daemon dead should be empty")
	}
}

func serialN(i int) string {
	const hex = "0123456789ABCDEF"
	return "VC707-0" + string([]byte{hex[(i>>8)&0xF], hex[(i>>4)&0xF], hex[i&0xF]})
}
