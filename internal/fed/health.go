package fed

import "sync"

// breakerState is one daemon's circuit-breaker position. The breaker and
// the hysteresis health table are one mechanism: consecutive failures
// (probes or real calls) trip it open, consecutive successes close it, and
// a half-open daemon takes trial traffic that decides which way it goes.
type breakerState uint8

const (
	// breakerClosed: healthy — takes traffic and shard assignments.
	breakerClosed breakerState = iota
	// breakerHalfOpen: recovering — takes trial traffic; one failure
	// re-opens, okN consecutive successes close.
	breakerHalfOpen
	// breakerOpen: tripped — skipped by shard planning, fan-out queries,
	// and chunk retry targets until a probe succeeds.
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	}
	return "unknown"
}

// daemonHealth is one daemon's breaker position plus the consecutive-result
// counters that move it.
type daemonHealth struct {
	state breakerState
	fails int // consecutive failures; failN trips the breaker open
	oks   int // consecutive successes while recovering; okN closes it
}

// health is the per-daemon circuit-breaker table. Probe results and real
// downstream call outcomes feed the same counters, so a daemon that answers
// probes but resets every real connection still trips.
type health struct {
	mu    sync.Mutex
	failN int // consecutive failures to trip open (hysteresis down)
	okN   int // consecutive successes to close again (hysteresis up)
	m     map[string]*daemonHealth
}

// newHealth builds the table with every daemon optimistically closed, the
// same way the pre-breaker table started healthy until the first probe.
func newHealth(daemons []string, failN, okN int) *health {
	h := &health{failN: failN, okN: okN, m: make(map[string]*daemonHealth, len(daemons))}
	for _, d := range daemons {
		h.m[d] = &daemonHealth{state: breakerClosed}
	}
	return h
}

func (h *health) get(d string) *daemonHealth {
	dh, ok := h.m[d]
	if !ok {
		dh = &daemonHealth{state: breakerClosed}
		h.m[d] = dh
	}
	return dh
}

// ok records a successful probe or downstream call. A single success never
// flips an open daemon straight to closed — it goes half-open and must
// string okN successes together, so one lucky probe between crashes cannot
// flap the daemon back into the shard plan.
func (h *health) ok(d string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dh := h.get(d)
	dh.fails = 0
	switch dh.state {
	case breakerClosed:
		dh.oks = 0
	case breakerOpen, breakerHalfOpen:
		dh.state = breakerHalfOpen
		dh.oks++
		if dh.oks >= h.okN {
			dh.state = breakerClosed
			dh.oks = 0
		}
	}
}

// fail records a failed probe or downstream call. A closed daemon needs
// failN consecutive failures to trip — one dropped probe is weather, not a
// dead daemon — but a half-open one re-opens immediately: it was on
// probation and failed it.
func (h *health) fail(d string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dh := h.get(d)
	dh.oks = 0
	if dh.state == breakerHalfOpen {
		dh.state = breakerOpen
		dh.fails = h.failN
		return
	}
	dh.fails++
	if dh.fails >= h.failN {
		dh.state = breakerOpen
	}
}

// trip opens the breaker immediately, bypassing the failure threshold — for
// unambiguous evidence like a transport error on a real streaming call,
// where waiting out failN probe ticks would stall a running campaign's
// chunk migration.
func (h *health) trip(d string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dh := h.get(d)
	dh.oks = 0
	dh.fails = h.failN
	dh.state = breakerOpen
}

// available reports whether d should receive traffic: closed, or half-open
// (trial traffic is how a recovering daemon proves itself).
func (h *health) available(d string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.get(d).state != breakerOpen
}

// snapshot reports one daemon's breaker position for /healthz.
func (h *health) snapshot(d string) (state breakerState, fails int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dh := h.get(d)
	return dh.state, dh.fails
}
