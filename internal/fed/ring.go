package fed

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is how many virtual nodes each daemon contributes to the
// ring when Config.VNodes is zero. 64 keeps the expected per-daemon load
// within a few percent of even for small federations without making owner
// lookups noticeably slower.
const defaultVNodes = 64

// ring is a consistent-hash ring over daemon base URLs. Each daemon owns
// VNodes points on a 64-bit circle; a board keyed by (platform, serial)
// belongs to the first daemon point at or clockwise of the key's hash. The
// assignment is a pure function of the daemon set and the key — every
// coordinator over the same federation shards a campaign identically, and
// adding or removing one daemon reassigns only the boards that hashed into
// its arcs.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	daemon string
}

func newRing(daemons []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(daemons)*vnodes)}
	for _, d := range daemons {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", d, v)), d})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes (vanishingly rare) tie-break on the daemon name so
		// the ring order stays deterministic across coordinators.
		return r.points[i].daemon < r.points[j].daemon
	})
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a has poor trailing-byte avalanche: keys differing only in their
	// last characters (board serials do, by construction) land within a few
	// 2^48-wide clusters and would all fall into one ring arc. The
	// splitmix64 finalizer spreads them over the full circle.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// boardKey is the sharding key: the same (platform, serial) always lands on
// the same daemon, so its FVM store and cache stay warm for that board.
func boardKey(platform, serial string) string { return platform + "|" + serial }

// owner returns the daemon owning key, skipping daemons for which skip
// returns true (dead ones). Empty string when every daemon is skipped or
// the ring is empty. skip may be nil.
func (r *ring) owner(key string, skip func(daemon string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if skip == nil || !skip(p.daemon) {
			return p.daemon
		}
	}
	return ""
}
