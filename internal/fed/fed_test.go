package fed_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/fed"
	"repro/internal/server"
	"repro/internal/store"
)

// daemon is one downstream fpgavoltd under test, with a kill switch that
// simulates process death: the listener closes (new connections refused,
// health probes included) and every live connection — SSE streams
// included — is severed.
type daemon struct {
	URL string
	ts  *httptest.Server
}

func newDaemon(t *testing.T, cfg server.Config) *daemon {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.FleetWorkers == 0 {
		cfg.FleetWorkers = 2
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &daemon{URL: ts.URL, ts: ts}
}

func (d *daemon) kill() {
	d.ts.Listener.Close()
	d.ts.CloseClientConnections()
}

// newFed boots a coordinator over the daemons and returns a client bound to
// its httptest listener.
func newFed(t *testing.T, cfg fed.Config) (*fed.Coordinator, *server.Client) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = 50 * time.Millisecond
	}
	c, err := fed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		c.Shutdown(ctx)
		ts.Listener.Close()
	})
	return c, server.NewClient(ts.URL, ts.Client())
}

// fleetCampaign is a 6-board characterization spanning three platforms.
func fleetCampaign() server.CampaignRequest {
	return server.CampaignRequest{
		Kind: "characterization",
		Boards: []server.BoardSpec{
			{Platform: "VC707", Replicas: 2, BRAMs: 24},
			{Platform: "KC705-A", Replicas: 2, BRAMs: 24},
			{Platform: "ZC702", Replicas: 2, BRAMs: 24},
		},
		Runs: 3,
	}
}

// TestFederatedMatchesSingleDaemon is the federation's core correctness
// claim: a campaign sharded across three daemons returns the bit-identical
// aggregate and per-board rows a single daemon computes — with the
// coordinator's own auth gate and the downstream bearer token in play.
func TestFederatedMatchesSingleDaemon(t *testing.T) {
	ctx := context.Background()

	// Reference: one daemon runs the whole fleet.
	_, solo := newService(t, server.Config{})
	ref, err := solo.Submit(ctx, fleetCampaign())
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.Wait(ctx, ref.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.State != server.JobDone {
		t.Fatalf("reference job ended %q (%s)", want.State, want.Error)
	}

	// Federation: three token-gated daemons behind a token-gated coordinator.
	var urls []string
	for i := 0; i < 3; i++ {
		urls = append(urls, newDaemon(t, server.Config{AuthToken: "fleet-secret"}).URL)
	}
	_, fc := newFed(t, fed.Config{
		Downstreams:     urls,
		AuthToken:       "front-secret",
		DownstreamToken: "fleet-secret",
	})

	// The coordinator's own mutating surface is gated.
	if _, err := fc.Submit(ctx, fleetCampaign()); err == nil {
		t.Fatal("unauthenticated federated submit accepted")
	}

	job, err := fc.SetToken("front-secret").Submit(ctx, fleetCampaign())
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.Wait(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != server.JobDone {
		t.Fatalf("federated job ended %q (%s)", got.State, got.Error)
	}
	if got.Progress != 100 {
		t.Fatalf("federated job finished at %.2f%%", got.Progress)
	}

	if !reflect.DeepEqual(got.Aggregate, want.Aggregate) {
		t.Fatalf("federated aggregate diverged:\n  fed:  %+v\n  solo: %+v", got.Aggregate, want.Aggregate)
	}
	if !reflect.DeepEqual(got.BoardResults, want.BoardResults) {
		t.Fatalf("federated board rows diverged:\n  fed:  %+v\n  solo: %+v", got.BoardResults, want.BoardResults)
	}

	// The shard map is part of the job detail: every executed board is
	// accounted for, and only configured daemons appear.
	sharded := 0
	for _, sh := range got.Shards {
		sharded += sh.Boards
		found := false
		for _, u := range urls {
			if sh.Daemon == u {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard on unknown daemon %q", sh.Daemon)
		}
	}
	if sharded != 6 {
		t.Fatalf("shards cover %d boards, want 6", sharded)
	}

	// Union queries see every downstream's store: 6 characterizations.
	fvms, err := fc.FVMs(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(fvms) != 6 {
		t.Fatalf("federated FVM union has %d records, want 6", len(fvms))
	}
	vmins, err := fc.Vmin(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(vmins) != 6 {
		t.Fatalf("federated vmin union has %d rows, want 6", len(vmins))
	}

	// Extended to kind "mitigation": the same fleet compares all four
	// mitigation arms (iso-energy DVFS), and the coordinator's aggregate
	// and every per-board arm curve must be bit-identical to the solo
	// daemon's.
	mitReq := server.NewMitigationRequest(fleetCampaign().Boards, server.MitigationSpec{IsoEnergy: true})
	mitRef, err := solo.Submit(ctx, mitReq)
	if err != nil {
		t.Fatal(err)
	}
	mitWant, err := solo.Wait(ctx, mitRef.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mitWant.State != server.JobDone {
		t.Fatalf("solo mitigation job ended %q (%s)", mitWant.State, mitWant.Error)
	}
	mitJob, err := fc.SetToken("front-secret").Submit(ctx, mitReq)
	if err != nil {
		t.Fatal(err)
	}
	mitGot, err := fc.Wait(ctx, mitJob.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mitGot.State != server.JobDone {
		t.Fatalf("federated mitigation job ended %q (%s)", mitGot.State, mitGot.Error)
	}
	if !reflect.DeepEqual(mitGot.Aggregate, mitWant.Aggregate) {
		t.Fatalf("federated mitigation aggregate diverged:\n  fed:  %+v\n  solo: %+v",
			mitGot.Aggregate, mitWant.Aggregate)
	}
	if !reflect.DeepEqual(mitGot.BoardResults, mitWant.BoardResults) {
		t.Fatalf("federated mitigation board rows diverged:\n  fed:  %+v\n  solo: %+v",
			mitGot.BoardResults, mitWant.BoardResults)
	}
	for _, bs := range mitGot.BoardResults {
		if len(bs.Mitigation) != 4 {
			t.Fatalf("board %d carries %d arms, want 4", bs.Board, len(bs.Mitigation))
		}
		for _, arm := range bs.Mitigation {
			if len(arm.Levels) == 0 {
				t.Fatalf("board %d arm %q has no levels through the fan-in", bs.Board, arm.Arm)
			}
		}
	}
	// The downstream per-level firehose survives re-stamping: the merged
	// stream carries level events, densely sequenced.
	levels := 0
	if err := fc.Events(ctx, mitJob.ID, func(ev server.JobEvent) error {
		if ev.Type == "level" {
			levels++
			if ev.V <= 0 {
				t.Fatalf("re-stamped level event lost its voltage: %+v", ev)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if levels == 0 {
		t.Fatal("no per-level events crossed the federation fan-in")
	}
}

// TestMitigationJournalRoundTrip runs a mitigation campaign on one daemon,
// restarts the daemon over the same store, and requires the restored job to
// serve the identical aggregate and per-board arm curves from its journal.
func TestMitigationJournalRoundTrip(t *testing.T) {
	ctx := context.Background()
	st := store.NewMem()
	cfg := server.Config{Store: st, Workers: 1, FleetWorkers: 2}

	srv1, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cl1 := server.NewClient(ts1.URL, http.DefaultClient)
	req := server.NewMitigationRequest(fleetCampaign().Boards[:1], server.MitigationSpec{
		Arms: []string{"unprotected", "ecc", "dvfs"},
	})
	job, err := cl1.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cl1.Wait(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.State != server.JobDone {
		t.Fatalf("first-life job ended %q (%s)", want.State, want.Error)
	}
	ts1.Close()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Second life over the same journal: the job's full document — curves
	// included — must come back bit-identical.
	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv2.Shutdown(sctx)
	})
	cl2 := server.NewClient(ts2.URL, http.DefaultClient)
	restored, err := cl2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State != server.JobDone || restored.Progress != 100 {
		t.Fatalf("restored job is %q at %.1f%%, want done at 100%%", restored.State, restored.Progress)
	}
	if !reflect.DeepEqual(restored.Aggregate, want.Aggregate) {
		t.Fatalf("aggregate did not round-trip the journal:\n  got:  %+v\n  want: %+v",
			restored.Aggregate, want.Aggregate)
	}
	if !reflect.DeepEqual(restored.BoardResults, want.BoardResults) {
		t.Fatalf("board rows did not round-trip the journal:\n  got:  %+v\n  want: %+v",
			restored.BoardResults, want.BoardResults)
	}
	if got := len(restored.BoardResults[0].Mitigation); got != 3 {
		t.Fatalf("restored job carries %d arms, want the 3 requested", got)
	}
}

// newService boots a plain single daemon and returns its client (reference
// runs and federation downstreams share the same construction).
func newService(t *testing.T, cfg server.Config) (*daemon, *server.Client) {
	t.Helper()
	d := newDaemon(t, cfg)
	return d, server.NewClient(d.URL, http.DefaultClient)
}

// TestDaemonDeathMidCampaign kills one of two daemons mid-campaign and
// requires the federation to finish anyway: the dead daemon's chunks are
// retried on the survivor, the failover is visible in the job detail, and
// the merged event stream stays gap-free.
func TestDaemonDeathMidCampaign(t *testing.T) {
	ctx := context.Background()
	d1 := newDaemon(t, server.Config{})
	d2 := newDaemon(t, server.Config{})
	_, fc := newFed(t, fed.Config{
		Downstreams: []string{d1.URL, d2.URL},
		ChunkBoards: 1, // one board per downstream campaign: maximal churn
	})

	req := fleetCampaign()
	req.Runs = 6
	job, err := fc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the second daemon as soon as the first board completes; the
	// campaign still has boards in flight and queued at that point.
	killed := false
	final, err := fc.Wait(ctx, job.ID, func(ev server.JobEvent) error {
		if ev.Type == "done" && !killed {
			killed = true
			d2.kill()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone {
		t.Fatalf("campaign ended %q (%s), want done despite daemon death", final.State, final.Error)
	}
	if len(final.BoardResults) != 6 {
		t.Fatalf("%d board rows, want 6", len(final.BoardResults))
	}
	for _, bs := range final.BoardResults {
		if bs.Error != "" {
			t.Fatalf("board %d (%s %s) failed: %s", bs.Board, bs.Platform, bs.Serial, bs.Error)
		}
	}
	if final.Aggregate == nil || final.Aggregate.Completed != 6 || final.Aggregate.Failed != 0 {
		t.Fatalf("aggregate %+v, want 6 completed", final.Aggregate)
	}

	// The failover must be on the record: at least one shard retried off
	// the dead daemon, and the job detail says so.
	if len(final.Retries) == 0 {
		t.Fatal("daemon died mid-campaign but job detail records no shard retry")
	}
	for _, r := range final.Retries {
		if r.From != d2.URL {
			t.Fatalf("retry recorded from %q, want the killed daemon %q", r.From, d2.URL)
		}
		if r.To == d2.URL {
			t.Fatalf("retry re-targeted the dead daemon")
		}
	}

	// The merged stream has no sequence gaps: Seq dense from 0, GSeq
	// strictly increasing, terminal campaign event last.
	var evs []server.JobEvent
	if err := fc.Events(ctx, job.ID, func(ev server.JobEvent) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events replayed")
	}
	var lastG int64
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: the stream has a gap", i, ev.Seq)
		}
		if ev.GSeq <= lastG {
			t.Fatalf("event %d gseq %d not beyond %d", i, ev.GSeq, lastG)
		}
		lastG = ev.GSeq
	}
	if last := evs[len(evs)-1]; last.Type != "campaign" || last.State != server.JobDone {
		t.Fatalf("stream ends with %q/%q, want the terminal campaign event", last.Type, last.State)
	}
}

// TestCoordinatorRestartResume restarts the coordinator over its journal
// and requires the control plane to come back consistent: terminal jobs
// intact, interrupted jobs surfaced as failed, deep event replay served
// from the journal, and a firehose cursor from before the restart resuming
// without loss.
func TestCoordinatorRestartResume(t *testing.T) {
	ctx := context.Background()
	d1 := newDaemon(t, server.Config{})
	st := store.NewMem() // shared across both coordinator lives

	// First life: run one campaign to completion.
	req := fleetCampaign()
	req.Boards = req.Boards[:1] // 2 boards is plenty here
	c1, fc1 := newFed(t, fed.Config{Downstreams: []string{d1.URL}, Store: st})
	job, err := fc1.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if final, err := fc1.Wait(ctx, job.ID, nil); err != nil || final.State != server.JobDone {
		t.Fatalf("first-life campaign: state=%v err=%v", final.State, err)
	}
	var firstG, lastG int64
	var evCount int
	if err := fc1.Events(ctx, job.ID, func(ev server.JobEvent) error {
		if firstG == 0 {
			firstG = ev.GSeq
		}
		lastG = ev.GSeq
		evCount++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A job the first life never finished: journaled running, two events.
	// (A graceful shutdown journals a terminal state; only a hard death
	// leaves this shape behind, so it is staged directly.)
	interrupted := server.JobStatus{ID: "fed-0055", Kind: "characterization", State: server.JobRunning,
		Boards: 2, Progress: 50, Created: time.Now()}
	payload, err := json.Marshal(map[string]any{"status": interrupted})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(&store.JobRecord{ID: "fed-0055", Seq: 55, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ev := server.JobEvent{Seq: i, GSeq: lastG + int64(i) + 1, Job: "fed-0055", Type: "start", Board: i}
		raw, _ := json.Marshal(&ev)
		if err := st.AppendJobEvents("fed-0055", []store.EventRecord{
			{Job: "fed-0055", Seq: i, GSeq: ev.GSeq, Payload: raw},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Second life over the same journal.
	_, fc2 := newFed(t, fed.Config{Downstreams: []string{d1.URL}, Store: st})

	jobs, err := fc2.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]server.JobStatus{}
	for _, js := range jobs {
		byID[js.ID] = js
	}
	if js := byID[job.ID]; js.State != server.JobDone {
		t.Fatalf("restored terminal job is %q, want done", js.State)
	}
	restored, err := fc2.Job(ctx, "fed-0055")
	if err != nil {
		t.Fatal(err)
	}
	if restored.State != server.JobFailed || restored.Error != "coordinator restarted mid-campaign" {
		t.Fatalf("interrupted job restored as %q (%s)", restored.State, restored.Error)
	}

	// Deep per-job replay: the restored job's history lives only in the
	// journal, and the stream must page it back seamlessly — its two staged
	// events plus the restart's terminal event, densely sequenced.
	var replay []server.JobEvent
	if err := fc2.Events(ctx, "fed-0055", func(ev server.JobEvent) error {
		replay = append(replay, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replay) != 3 {
		t.Fatalf("replayed %d events for the interrupted job, want 3", len(replay))
	}
	for i, ev := range replay {
		if ev.Seq != i {
			t.Fatalf("replayed event %d has seq %d", i, ev.Seq)
		}
	}
	if last := replay[2]; last.Type != "campaign" || last.State != server.JobFailed {
		t.Fatalf("interrupted job's log ends with %q/%q, want the failure marker", last.Type, last.State)
	}

	// Firehose resume across the restart: a cursor parked after the first
	// pre-restart event must receive everything journaled past it — the
	// rest of the first campaign, the staged events, and the restart
	// marker — in strictly increasing GSeq order.
	wantTail := (evCount - 1) + 2 + 1
	var got []server.JobEvent
	fhCtx, stop := context.WithCancel(ctx)
	err = fc2.Firehose(fhCtx, firstG, func(ev server.JobEvent) error {
		got = append(got, ev)
		if len(got) >= wantTail {
			stop()
		}
		return nil
	})
	stop()
	if err != nil && fhCtx.Err() == nil {
		t.Fatal(err)
	}
	if len(got) < wantTail {
		t.Fatalf("firehose resumed %d events past gseq %d, want %d", len(got), firstG, wantTail)
	}
	prev := firstG
	for i, ev := range got {
		if ev.GSeq <= prev {
			t.Fatalf("resumed event %d gseq %d not beyond %d", i, ev.GSeq, prev)
		}
		prev = ev.GSeq
	}
}
