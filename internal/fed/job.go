package fed

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/store"
)

// fedJob is one federated campaign: the coordinator's bookkeeping for a
// submission it sharded across downstream daemons. Downstream events are
// re-stamped under the coordinator's own per-job and global sequences — the
// numbering clients resume by — and every event and state transition
// write-throughs into the coordinator's store, so listings, SSE replay, and
// firehose cursors survive coordinator restarts exactly like they do on a
// single daemon.
type fedJob struct {
	id   string
	seq  int
	kind string
	req  server.CampaignRequest // boards already expanded into flat
	flat []server.BoardSpec     // one single-replica spec per board, global order

	ctx    context.Context
	cancel context.CancelFunc
	c      *Coordinator

	mu       sync.Mutex
	state    server.JobState
	created  time.Time
	started  time.Time
	finished time.Time
	progress float64
	// events is the job's full re-stamped log; federated jobs emit a few
	// events per board, so the whole log stays in RAM for its lifetime.
	// eventsBase is non-zero only for restored jobs, whose history lives in
	// the journal and is paged on demand.
	events     []server.JobEvent
	eventsBase int
	// boardDone marks boards that already counted toward progress, so a
	// shard retried after a partial failure cannot double-count.
	boardDone []bool
	doneCount int
	results   []server.BoardStatus
	agg       *engine.Aggregate
	shards    []server.ShardStatus
	retries   []server.ShardRetry
	errMsg    string
	notify    chan struct{}
	restored  *server.JobStatus
	// jnDegraded marks that a coordinator journal write for this job failed
	// and the one-time journal_degraded marker was emitted; the job keeps
	// running on the live stream alone.
	jnDegraded bool
}

func (c *Coordinator) newFedJob(id string, seq int, req server.CampaignRequest, flat []server.BoardSpec) *fedJob {
	ctx, cancel := context.WithCancel(c.baseCtx)
	return &fedJob{
		id: id, seq: seq, kind: req.Kind, req: req, flat: flat,
		ctx: ctx, cancel: cancel, c: c,
		state: server.JobQueued, created: time.Now(),
		boardDone: make([]bool, len(flat)),
		results:   make([]server.BoardStatus, len(flat)),
		notify:    make(chan struct{}),
	}
}

func (j *fedJob) signalLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// appendEventLocked sequences ev, stamps its coordinator GSeq, and queues
// the journal write; callers hold j.mu and must call j.journalEvent with
// the returned event after unlocking.
func (j *fedJob) appendEventLocked(ev server.JobEvent) server.JobEvent {
	ev.Job = j.id
	if ev.Progress < j.progress {
		ev.Progress = j.progress
	}
	j.progress = ev.Progress
	ev.Seq = j.eventsBase + len(j.events)
	j.c.fh.append(&ev) // stamps ev.GSeq
	j.events = append(j.events, ev)
	j.signalLocked()
	return ev
}

// journalEvent write-throughs one stamped event into the coordinator store.
// Best-effort, like the daemon's journal: a full disk degrades restart
// resume, never a live campaign.
func (j *fedJob) journalEvent(ev server.JobEvent) {
	payload, err := json.Marshal(&ev)
	if err == nil {
		err = j.c.cfg.Store.AppendJobEvents(j.id, []store.EventRecord{
			{Job: j.id, Seq: ev.Seq, GSeq: ev.GSeq, Payload: payload},
		})
	}
	if err != nil {
		j.c.jnErrs.Add(1)
		j.noteJournalDegraded()
	}
}

// noteJournalDegraded appends the one-time journal_degraded marker after a
// failed coordinator journal write: the job keeps running and live streams
// learn its durable history has a gap. The marker draws a real Seq (live
// SSE stays dense) and is itself journaled best-effort — the jnDegraded
// flag stops the recursion if that write fails too. Terminal and replayed
// jobs are skipped: their streams were already closed out.
func (j *fedJob) noteJournalDegraded() {
	j.mu.Lock()
	if j.jnDegraded || j.restored != nil || j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.jnDegraded = true
	out := j.appendEventLocked(server.JobEvent{
		Type:  "journal_degraded",
		Error: "journal write failed: event history may not survive a restart",
	})
	j.mu.Unlock()
	j.journalEvent(out)
}

// appendEvent sequences, stamps, journals, and wakes streams in one call.
func (j *fedJob) appendEvent(ev server.JobEvent) {
	j.mu.Lock()
	out := j.appendEventLocked(ev)
	j.mu.Unlock()
	j.journalEvent(out)
}

// boardEvent re-stamps one downstream board event under the coordinator's
// numbering: the board index is remapped into the job's global fleet order
// and progress is recomputed from the coordinator's own completion count
// (downstream progress is meaningless here — each shard reports percent of
// its own slice). Duplicate completions from a retried shard keep the event
// (the stream is an audit trail) but do not re-count.
func (j *fedJob) boardEvent(ev server.JobEvent, globalBoard int) {
	j.mu.Lock()
	ev.Board = globalBoard
	if ev.Type == "done" || ev.Type == "failed" {
		if !j.boardDone[globalBoard] {
			j.boardDone[globalBoard] = true
			j.doneCount++
		}
	}
	ev.Progress = float64(j.doneCount) / float64(len(j.flat)) * 100
	out := j.appendEventLocked(ev)
	j.mu.Unlock()
	j.journalEvent(out)
}

// setRunning transitions queued → running (false when already cancelled).
func (j *fedJob) setRunning() bool {
	j.mu.Lock()
	if j.state != server.JobQueued {
		j.mu.Unlock()
		return false
	}
	j.state = server.JobRunning
	j.started = time.Now()
	j.signalLocked()
	j.mu.Unlock()
	j.c.putJobMeta(j)
	return true
}

// finish records the job's terminal state, appends the terminal campaign
// event, and journals the final document.
func (j *fedJob) finish(state server.JobState, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.finished = time.Now()
	j.errMsg = errMsg
	if state == server.JobDone {
		j.progress = 100
	}
	// The bulk payload (an nn-inference submission's network and test set)
	// is dead weight once terminal.
	j.req.Net, j.req.TestSet = nil, nil
	te := server.JobEvent{Type: "campaign", Progress: j.progress, State: state, Error: errMsg}
	out := j.appendEventLocked(te)
	j.mu.Unlock()
	j.journalEvent(out)
	j.c.putJobMeta(j)
	j.c.retainTerminal(j.id)
}

func (j *fedJob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// status snapshots the job for the wire, shard map and retry history
// included — the federation-visible part of "the retry is surfaced in job
// detail".
func (j *fedJob) status(includeResults bool) server.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.restored != nil {
		st := *j.restored
		if !includeResults {
			st.Aggregate = nil
			st.BoardResults = nil
		}
		return st
	}
	st := server.JobStatus{
		ID: j.id, Kind: j.kind, State: j.state,
		Boards: len(j.flat), Progress: j.progress, Created: j.created,
		Error: j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	st.Shards = append([]server.ShardStatus(nil), j.shards...)
	st.Retries = append([]server.ShardRetry(nil), j.retries...)
	if includeResults && j.agg != nil {
		agg := *j.agg
		st.Aggregate = &agg
		st.BoardResults = append([]server.BoardStatus(nil), j.results...)
	}
	return st
}

// eventsSince returns the events at sequence >= from, whether the job is
// terminal, and a change channel — the same drain-then-wait triple the
// daemon serves SSE from. History below the in-memory base (a restored
// job's entire log) is paged from the coordinator journal.
func (j *fedJob) eventsSince(from int) ([]server.JobEvent, bool, <-chan struct{}) {
	j.mu.Lock()
	base := j.eventsBase
	total := base + len(j.events)
	terminal := j.state.Terminal()
	notify := j.notify
	if from < 0 || from > total {
		from = 0
	}
	if from >= base {
		var evs []server.JobEvent
		if from < total {
			evs = append(evs, j.events[from-base:]...)
		}
		j.mu.Unlock()
		return evs, terminal, notify
	}
	j.mu.Unlock()
	if evs := j.c.readJobEvents(j.id, from, eventPageSize); len(evs) > 0 {
		return evs, terminal, notify
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]server.JobEvent(nil), j.events...), terminal, notify
}

// eventPageSize bounds one journal page of a deep SSE resume.
const eventPageSize = 512
