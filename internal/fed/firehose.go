package fed

import (
	"sort"
	"sync"

	"repro/internal/server"
)

// defaultFirehoseBuffer bounds the coordinator firehose's in-memory replay
// window when Config.FirehoseBuffer is zero.
const defaultFirehoseBuffer = 8192

// firehose is the coordinator-wide event multiplexer behind the federated
// GET /v1/events: every event from every federated job, re-stamped with the
// coordinator's own global sequence, in one totally ordered stream. It is
// the same pull-based windowed log the daemon uses — the coordinator
// persists each stamped event into its own store, so a cursor survives
// coordinator restarts and deep resumes page from the journal.
type firehose struct {
	mu     sync.Mutex
	next   int64 // next global sequence to assign (starts at 1)
	low    int64 // every event with GSeq > low is retained in buf
	buf    []server.JobEvent
	max    int
	notify chan struct{}
}

func newFirehose(max int) *firehose {
	if max <= 0 {
		max = defaultFirehoseBuffer
	}
	return &firehose{next: 1, max: max, notify: make(chan struct{})}
}

// append stamps ev with the next coordinator sequence, admits it to the
// replay window, and wakes subscribers. The stamp is written through the
// pointer so the journal write-through keeps it.
func (f *firehose) append(ev *server.JobEvent) {
	f.mu.Lock()
	ev.GSeq = f.next
	f.next++
	f.buf = append(f.buf, *ev)
	if len(f.buf) > f.max {
		drop := len(f.buf) - f.max
		if g := f.buf[drop-1].GSeq; g > f.low {
			f.low = g
		}
		f.buf = append([]server.JobEvent(nil), f.buf[drop:]...)
	}
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
}

// startAfter resumes the sequence counter past everything journaled by a
// previous coordinator process; the empty window covers nothing older, so
// resumes below it page from the store.
func (f *firehose) startAfter(maxGSeq int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if maxGSeq >= f.next {
		f.next = maxGSeq + 1
	}
	if maxGSeq > f.low {
		f.low = maxGSeq
	}
}

// lowWater reports the newest sequence NOT retained in the window.
func (f *firehose) lowWater() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.low
}

// since returns the retained events with GSeq > after and a channel closed
// on the next append. ok is false when the cursor predates the window; the
// caller pages the gap from the coordinator journal.
func (f *firehose) since(after int64) ([]server.JobEvent, <-chan struct{}, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if after < f.low {
		return nil, f.notify, false
	}
	i := sort.Search(len(f.buf), func(i int) bool { return f.buf[i].GSeq > after })
	var evs []server.JobEvent
	if i < len(f.buf) {
		evs = append(evs, f.buf[i:]...)
	}
	return evs, f.notify, true
}
