package fed

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// chunk is the federation work unit: a run of consecutive fleet positions
// (global board indices) that hash to the same daemon, capped at
// Config.ChunkBoards. A chunk rides one downstream campaign; on daemon
// death the whole chunk is retried on a survivor, and the per-board dedup
// in fedJob keeps a partially-completed first attempt from double counting.
type chunk struct {
	boards   []int
	attempts int
}

// sched is one job's work-stealing scheduler: a chunk queue per daemon plus
// a pending count covering queued AND in-flight chunks — a retried chunk is
// still pending while it waits on a survivor's queue, so completion cannot
// be declared from empty queues alone.
type sched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]*chunk
	pending int
	stopped bool
}

func newSched(daemons []string) *sched {
	s := &sched{queues: make(map[string][]*chunk, len(daemons))}
	s.cond = sync.NewCond(&s.mu)
	for _, d := range daemons {
		s.queues[d] = nil
	}
	return s
}

// push queues ch on daemon d and wakes every runner (any of them may steal
// it).
func (s *sched) push(d string, ch *chunk) {
	s.mu.Lock()
	s.queues[d] = append(s.queues[d], ch)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// done retires one chunk for good — merged or permanently failed.
func (s *sched) done() {
	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
	s.cond.Broadcast()
}

// stop unblocks every runner (job cancelled).
func (s *sched) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// pop blocks until daemon d has work (its own queue first, then the longest
// other queue — the steal), every chunk is retired, or the job stops.
// stolen reports whether the chunk came from another daemon's queue. A
// runner whose daemon is unhealthy takes no work — unless NO daemon is
// healthy, where optimistic attempts (bounded by the chunk retry limit) are
// the only way the job can still terminate.
func (s *sched) pop(d string, healthy func(string) bool) (ch *chunk, stolen bool, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.pending == 0 {
			return nil, false, false
		}
		take := healthy(d)
		if !take {
			take = true
			for v := range s.queues {
				if v != d && healthy(v) {
					take = false
					break
				}
			}
		}
		if take {
			if q := s.queues[d]; len(q) > 0 {
				ch = q[0]
				s.queues[d] = q[1:]
				return ch, false, true
			}
			victim, best := "", 0
			for v, q := range s.queues {
				if v != d && len(q) > best {
					victim, best = v, len(q)
				}
			}
			if victim != "" {
				q := s.queues[victim]
				// Steal from the tail: the victim drains its queue from the
				// head, so the two contend on opposite ends.
				ch = q[len(q)-1]
				s.queues[victim] = q[:len(q)-1]
				return ch, true, true
			}
		}
		s.cond.Wait()
	}
}

// runJob executes one federated campaign to its terminal state.
func (c *Coordinator) runJob(j *fedJob) {
	// Completion releases the job context so the per-job watcher goroutines
	// exit; the downstream streams are already closed by then.
	defer j.cancel()
	if j.ctx.Err() != nil || !j.setRunning() {
		j.finish(server.JobCancelled, "campaign cancelled")
		return
	}

	// Shard plan: every board's home daemon comes off the hash ring,
	// skipping daemons that are currently dead. If nothing is healthy the
	// plan falls back to the full ring — the optimistic attempts below fail
	// fast and bounded rather than hanging the job.
	owners := make([]string, len(j.flat))
	for i, b := range j.flat {
		key := boardKey(b.Platform, b.Serial)
		o := c.ring.owner(key, func(d string) bool { return !c.isHealthy(d) })
		if o == "" {
			o = c.ring.owner(key, nil)
		}
		if o == "" {
			j.finish(server.JobFailed, "federation has no downstream daemons")
			return
		}
		owners[i] = o
	}
	s := newSched(c.cfg.Downstreams)
	for i := 0; i < len(owners); {
		k := i + 1
		for k < len(owners) && owners[k] == owners[i] && k-i < c.cfg.ChunkBoards {
			k++
		}
		ch := &chunk{boards: make([]int, 0, k-i)}
		for g := i; g < k; g++ {
			ch.boards = append(ch.boards, g)
		}
		s.queues[owners[i]] = append(s.queues[owners[i]], ch)
		s.pending++
		i = k
	}

	// The watcher wakes blocked runners when the job is cancelled, and on
	// the health cadence so a runner parked on a dead daemon re-checks after
	// the daemon revives (or after every other daemon dies).
	go func() {
		t := time.NewTicker(c.cfg.HealthEvery)
		defer t.Stop()
		for {
			select {
			case <-j.ctx.Done():
				s.stop()
				return
			case <-t.C:
				s.cond.Broadcast()
			}
		}
	}()

	var wg sync.WaitGroup
	for _, d := range c.cfg.Downstreams {
		wg.Add(1)
		go func(d string) {
			defer wg.Done()
			for {
				ch, stolen, ok := s.pop(d, c.isHealthy)
				if !ok {
					return
				}
				c.runChunk(j, s, d, ch, stolen)
			}
		}(d)
	}
	wg.Wait()

	if j.ctx.Err() != nil {
		j.finish(server.JobCancelled, "campaign cancelled")
		return
	}
	// Every chunk merged or failed its boards: fold the wire results into
	// the same fleet aggregate a single daemon computes. The fold runs over
	// the global fleet order, so the summary is bit-identical to the
	// unsharded run.
	j.mu.Lock()
	samples := make([]engine.BoardSample, len(j.flat))
	for i := range j.flat {
		samples[i] = sampleFromStatus(j.kind, j.results[i])
	}
	agg := engine.AggregateSamples(samples)
	j.agg = &agg
	j.mu.Unlock()
	j.finish(server.JobDone, "")
}

// runChunk executes one chunk on one daemon: submit the chunk's boards as a
// downstream campaign, re-stamp its event stream, and merge its results.
// Failures route through chunkFailed, which decides between retrying on a
// survivor and failing the chunk's boards.
func (c *Coordinator) runChunk(j *fedJob, s *sched, daemon string, ch *chunk, stolen bool) {
	req := j.req
	req.Boards = make([]server.BoardSpec, len(ch.boards))
	for i, g := range ch.boards {
		req.Boards[i] = j.flat[g]
	}
	cl := c.clients[daemon]
	var sub server.JobStatus
	bo := newBackoff(submitBackoffBase, submitBackoffCap)
	for attempt := 0; ; attempt++ {
		var err error
		sub, err = func() (server.JobStatus, error) {
			ctx, cancel := c.callCtx(j.ctx)
			defer cancel()
			return cl.Submit(ctx, req)
		}()
		if err == nil {
			c.health.ok(daemon)
			break
		}
		// Queue-full is the daemon's admission control working, not a
		// failure: jittered backoff until a downstream worker drains a job,
		// without burning the chunk's retry budget. A chaos-injected 503
		// rides the same path — retried in place, invisible to the job.
		var se *server.APIStatusError
		if errors.As(err, &se) && se.StatusCode == http.StatusServiceUnavailable && attempt < 1000 {
			if !bo.sleep(j.ctx) {
				s.done()
				return
			}
			continue
		}
		c.chunkFailed(j, s, daemon, ch, fmt.Errorf("submit: %w", err))
		return
	}
	j.noteShard(daemon, len(ch.boards), sub.ID, stolen)
	final, err := c.waitChunk(j, cl, daemon, sub.ID, ch)
	if err != nil {
		if j.ctx.Err() != nil {
			// Cancelled above: stop the orphaned downstream run, best-effort.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			cl.Cancel(ctx, sub.ID)
			cancel()
			s.done()
			return
		}
		c.chunkFailed(j, s, daemon, ch, fmt.Errorf("stream %s: %w", sub.ID, err))
		return
	}
	switch final.State {
	case server.JobDone:
		j.mergeResults(ch, final.BoardResults)
		s.done()
	default:
		// The daemon stayed reachable but its job died (or was cancelled
		// underneath us): retry elsewhere without declaring the daemon dead.
		c.chunkFailed(j, s, daemon, ch, fmt.Errorf("downstream job %s ended %s: %s", sub.ID, final.State, final.Error))
	}
}

// waitChunk follows one downstream campaign to its terminal event, resuming
// a broken stream from the last re-stamped Seq (the Last-Event-ID cursor) so
// a chaos-severed connection — or a daemon mid-restart — costs a reconnect,
// not a full chunk failover. Every break feeds the breaker; a resume that
// delivered fresh events resets the break budget, so only StreamRetries
// consecutive *fruitless* reconnects abandon the stream. Deterministic
// refusals (4xx: the downstream job is gone) surface immediately — resuming
// cannot help, chunkFailed must re-shard.
func (c *Coordinator) waitChunk(j *fedJob, cl *server.Client, daemon, jobID string, ch *chunk) (server.JobStatus, error) {
	after := -1
	breaks := 0
	bo := newBackoff(streamBackoffBase, streamBackoffCap)
	for {
		progressed := false
		err := cl.EventsFrom(j.ctx, jobID, after, func(ev server.JobEvent) error {
			if ev.Seq > after {
				after = ev.Seq
				progressed = true
			}
			switch ev.Type {
			case "start", "level", "done", "failed":
				if ev.Board >= 0 && ev.Board < len(ch.boards) {
					j.boardEvent(ev, ch.boards[ev.Board])
				}
			}
			// Everything else — the downstream terminal "campaign" event,
			// its retry/truncated/journal_degraded markers — is absorbed:
			// the federated job has exactly one terminal event and one
			// journal, the coordinator's.
			return nil
		})
		if err == nil {
			return c.finalStatus(j.ctx, cl, daemon, jobID)
		}
		if j.ctx.Err() != nil {
			return server.JobStatus{}, err
		}
		var se *server.APIStatusError
		if errors.As(err, &se) && se.StatusCode >= 400 && se.StatusCode < 500 &&
			se.StatusCode != http.StatusRequestTimeout && se.StatusCode != http.StatusTooManyRequests {
			return server.JobStatus{}, err
		}
		c.health.fail(daemon)
		if progressed {
			breaks = 0
		}
		breaks++
		if breaks > c.cfg.StreamRetries {
			return server.JobStatus{}, fmt.Errorf("stream broke %d times without progress: %w", breaks, err)
		}
		if !bo.sleep(j.ctx) {
			return server.JobStatus{}, j.ctx.Err()
		}
	}
}

// finalStatus fetches a finished downstream job's full document — board
// results included — under per-call deadlines, retrying transient failures:
// the chunk already ran to completion, so giving up here over one dropped
// response would waste the whole run.
func (c *Coordinator) finalStatus(ctx context.Context, cl *server.Client, daemon, jobID string) (server.JobStatus, error) {
	bo := newBackoff(submitBackoffBase, submitBackoffCap)
	var last error
	for attempt := 0; attempt < 5; attempt++ {
		st, err := func() (server.JobStatus, error) {
			cctx, cancel := c.callCtx(ctx)
			defer cancel()
			return cl.Job(cctx, jobID)
		}()
		if err == nil {
			c.health.ok(daemon)
			return st, nil
		}
		last = err
		var se *server.APIStatusError
		if errors.As(err, &se) && se.StatusCode >= 400 && se.StatusCode < 500 &&
			se.StatusCode != http.StatusRequestTimeout && se.StatusCode != http.StatusTooManyRequests {
			return server.JobStatus{}, err
		}
		c.health.fail(daemon)
		if !bo.sleep(ctx) {
			break
		}
	}
	return server.JobStatus{}, fmt.Errorf("final status: %w", last)
}

// chunkFailed routes one failed chunk attempt: permanent request rejections
// fail the chunk's boards outright, transport errors mark the daemon dead,
// and everything retryable goes back on a survivor's queue — recorded as a
// ShardRetry and a "retry" event, the federation-visible trace of the
// failover.
func (c *Coordinator) chunkFailed(j *fedJob, s *sched, daemon string, ch *chunk, err error) {
	reason := err.Error()
	var se *server.APIStatusError
	switch {
	case errors.As(err, &se):
		if se.StatusCode >= 400 && se.StatusCode < 500 && se.StatusCode != http.StatusRequestTimeout && se.StatusCode != http.StatusTooManyRequests {
			// The daemon understood the request and refused it (bad token,
			// disagreeing validation). Deterministic — no daemon will differ.
			j.failBoards(ch, reason)
			s.done()
			return
		}
	default:
		// Transport-level death: unambiguous evidence, so trip the breaker
		// open immediately — waiting out failN probe ticks would stall the
		// chunk's migration to a survivor.
		c.health.trip(daemon)
	}
	ch.attempts++
	if ch.attempts >= c.cfg.RetryLimit {
		j.failBoards(ch, fmt.Sprintf("%s (attempt %d of %d)", reason, ch.attempts, c.cfg.RetryLimit))
		s.done()
		return
	}
	key := boardKey(j.flat[ch.boards[0]].Platform, j.flat[ch.boards[0]].Serial)
	to := c.ring.owner(key, func(d string) bool { return d == daemon || !c.isHealthy(d) })
	if to == "" {
		// Nothing else is healthy; re-queue on the ring wherever it lands
		// (possibly the same daemon, if it revives) rather than giving up
		// while retry budget remains.
		to = c.ring.owner(key, nil)
	}
	if to == "" {
		j.failBoards(ch, "no downstream daemon available: "+reason)
		s.done()
		return
	}
	j.noteRetry(daemon, to, len(ch.boards), reason)
	s.push(to, ch)
}

// --- fedJob bookkeeping for the scheduler ------------------------------

// noteShard credits daemon with one executed chunk in the job's shard map.
func (j *fedJob) noteShard(daemon string, boards int, downstreamJob string, stolen bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.shards {
		if j.shards[i].Daemon == daemon {
			j.shards[i].Boards += boards
			j.shards[i].Jobs = append(j.shards[i].Jobs, downstreamJob)
			if stolen {
				j.shards[i].Stolen++
			}
			return
		}
	}
	sh := server.ShardStatus{Daemon: daemon, Boards: boards, Jobs: []string{downstreamJob}}
	if stolen {
		sh.Stolen = 1
	}
	j.shards = append(j.shards, sh)
}

// noteRetry records one chunk failover in the job detail and its event
// stream.
func (j *fedJob) noteRetry(from, to string, boards int, reason string) {
	j.mu.Lock()
	j.retries = append(j.retries, server.ShardRetry{From: from, To: to, Boards: boards, Reason: reason})
	out := j.appendEventLocked(server.JobEvent{Type: "retry", Error: reason})
	j.mu.Unlock()
	j.journalEvent(out)
}

// mergeResults lands one successful chunk's board rows at their global
// fleet positions. The downstream Board indices are shard-local; they are
// rewritten to the coordinator's global order.
func (j *fedJob) mergeResults(ch *chunk, finals []server.BoardStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, bs := range finals {
		if bs.Board < 0 || bs.Board >= len(ch.boards) {
			continue
		}
		g := ch.boards[bs.Board]
		bs.Board = g
		j.results[g] = bs
	}
}

// failBoards marks every board of a permanently failed chunk. Chunks merge
// atomically, so a chunk that reaches here merged nothing — every one of
// its boards gets the failure row, and boards that streamed a premature
// "done" on an earlier partial attempt stay counted (the dedup in
// boardEvent) without resurrecting results that were never merged.
func (j *fedJob) failBoards(ch *chunk, reason string) {
	for _, g := range ch.boards {
		spec := j.flat[g]
		j.mu.Lock()
		j.results[g] = server.BoardStatus{Board: g, Platform: spec.Platform, Serial: spec.Serial, Error: reason}
		j.mu.Unlock()
		j.boardEvent(server.JobEvent{Type: "failed", Platform: spec.Platform, Serial: spec.Serial, Error: reason}, g)
	}
}

// sampleFromStatus rebuilds a board's aggregate contribution from its wire
// row — the inverse of the daemon's BoardStatus projection, matched case by
// case against engine.BoardResult.Sample so a federated fold is
// bit-identical to the in-process one.
func sampleFromStatus(kind string, bs server.BoardStatus) engine.BoardSample {
	s := engine.BoardSample{Failed: bs.Error != "", FromCache: bs.FromCache}
	if s.Failed {
		return s
	}
	switch kind {
	case engine.Characterization.String():
		// Sweep final level + the board's FVM zero-fault share.
		if bs.VcrashV != 0 {
			s.Faults = []float64{bs.FaultsPerMbit}
			s.Vmins = []float64{bs.VminV}
			s.Vcrashes = []float64{bs.VcrashV}
		}
		s.ZeroShares = []float64{bs.ZeroShare}
	case engine.TemperatureStudy.String():
		// The daemon reports the last (hottest) sweep, exactly what
		// finalSweep feeds the in-process aggregate.
		if bs.VcrashV != 0 {
			s.Faults = []float64{bs.FaultsPerMbit}
			s.Vmins = []float64{bs.VminV}
			s.Vcrashes = []float64{bs.VcrashV}
		}
	case engine.KindPattern.String():
		if len(bs.Patterns) > 0 {
			worst := bs.Patterns[0].FaultsPerMbit
			for _, pr := range bs.Patterns[1:] {
				if pr.FaultsPerMbit > worst {
					worst = pr.FaultsPerMbit
				}
			}
			s.Faults = []float64{worst}
		}
	case engine.KindThresholds.String():
		// The wire Vmin/Vcrash of a threshold job are the BRAM rail's.
		s.Vmins = []float64{bs.VminV}
		s.Vcrashes = []float64{bs.VcrashV}
	case engine.NNInference.String():
		if n := len(bs.Inference); n > 0 {
			s.InferErrs = []float64{bs.Inference[n-1].Error}
		}
	case engine.KindMitigation.String():
		// Per-arm scalars in the board's arm order, plus the unprotected
		// arm's deepest level into the fleet's faults/Mbit spread — the
		// exact shape BoardResult.Sample builds in process.
		for i := range bs.Mitigation {
			arm := &bs.Mitigation[i]
			s.Mitigation = append(s.Mitigation, engine.MitigationSample{
				Arm: arm.Arm, MinSafeV: arm.MinSafeV, EnergySavings: arm.EnergySavings,
			})
			if arm.Arm == engine.ArmUnprotected && len(arm.Levels) > 0 {
				s.Faults = append(s.Faults, arm.Levels[len(arm.Levels)-1].FaultsPerMbit)
			}
		}
	}
	return s
}
