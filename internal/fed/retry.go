package fed

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/prng"
)

// Backoff bounds for the two retryable downstream paths. Submits retry
// quickly (admission-control 503s clear as soon as a queue slot frees);
// broken event streams back off a little longer before resuming, since the
// daemon may be mid-restart.
const (
	submitBackoffBase = 5 * time.Millisecond
	submitBackoffCap  = 200 * time.Millisecond
	streamBackoffBase = 10 * time.Millisecond
	streamBackoffCap  = 500 * time.Millisecond
)

// backoffSeq hands each backoff chain a distinct deterministic seed. A
// counter through the SplitMix64 mixer — not the clock — so retry timing
// never feeds back into any decision a chaos seed is supposed to control.
var backoffSeq atomic.Uint64

// backoff produces capped decorrelated-jitter delays: each delay is drawn
// uniformly from [base, min(3·prev, cap)], so concurrent retriers spread
// out instead of thundering in lockstep, and the ceiling caps how long a
// stuck chunk waits between attempts.
type backoff struct {
	base, cap time.Duration
	prev      time.Duration
	state     uint64
}

func newBackoff(base, cap time.Duration) backoff {
	return backoff{base: base, cap: cap, state: prng.Mix64(backoffSeq.Add(1))}
}

// next returns the next delay in the chain.
func (b *backoff) next() time.Duration {
	b.state = prng.Mix64(b.state + 1)
	span := 3 * b.prev
	if span < b.base {
		span = b.base
	}
	if span > b.cap {
		span = b.cap
	}
	d := b.base + time.Duration(b.state%uint64(span-b.base+1))
	b.prev = d
	return d
}

// sleep waits out the next delay, or returns false when ctx ends first.
func (b *backoff) sleep(ctx context.Context) bool {
	t := time.NewTimer(b.next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
