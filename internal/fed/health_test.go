package fed

import (
	"testing"
	"time"
)

// TestBreakerSingleFailureIsWeather is the flapping regression: one dropped
// probe (or one failed call) against a closed breaker must not take the
// daemon out of rotation.
func TestBreakerSingleFailureIsWeather(t *testing.T) {
	h := newHealth([]string{"a", "b"}, 3, 2)
	h.fail("a")
	if !h.available("a") {
		t.Fatal("one failure tripped a closed breaker; threshold is 3")
	}
	if state, fails := h.snapshot("a"); state != breakerClosed || fails != 1 {
		t.Fatalf("after one failure: state=%s fails=%d, want closed/1", state, fails)
	}
	// A success wipes the streak: fail, ok, fail, ok ... forever flaps
	// nothing.
	for i := 0; i < 10; i++ {
		h.ok("a")
		h.fail("a")
	}
	if !h.available("a") {
		t.Fatal("alternating ok/fail tripped the breaker; only consecutive failures may")
	}
}

// TestBreakerTripsOnConsecutiveFailures walks the full hysteresis cycle:
// failN consecutive failures open the breaker, a success moves it half-open
// (available for trial traffic), okN consecutive successes close it, and a
// failure while half-open re-opens it immediately.
func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	h := newHealth([]string{"a"}, 3, 2)
	h.fail("a")
	h.fail("a")
	if !h.available("a") {
		t.Fatal("breaker opened after 2 failures, want 3")
	}
	h.fail("a")
	if h.available("a") {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}

	// First success: half-open, taking trial traffic but not yet closed.
	h.ok("a")
	if state, _ := h.snapshot("a"); state != breakerHalfOpen {
		t.Fatalf("after one success: state=%s, want half-open", state)
	}
	if !h.available("a") {
		t.Fatal("half-open daemon must take trial traffic")
	}

	// Probation failure: straight back to open, no threshold.
	h.fail("a")
	if state, _ := h.snapshot("a"); state != breakerOpen {
		t.Fatalf("half-open breaker survived a failure: state=%s", state)
	}

	// okN consecutive successes close it for good.
	h.ok("a")
	h.ok("a")
	if state, _ := h.snapshot("a"); state != breakerClosed {
		t.Fatalf("after %d successes: state=%s, want closed", 2, state)
	}
}

// TestBreakerTripBypassesThreshold: unambiguous evidence (a transport error
// on a real call) opens the breaker without waiting out failN probes.
func TestBreakerTripBypassesThreshold(t *testing.T) {
	h := newHealth([]string{"a"}, 5, 2)
	h.trip("a")
	if h.available("a") {
		t.Fatal("trip left the breaker available")
	}
	if state, fails := h.snapshot("a"); state != breakerOpen || fails != 5 {
		t.Fatalf("after trip: state=%s fails=%d, want open/5", state, fails)
	}
	// An unknown daemon auto-registers closed.
	if !h.available("new-daemon") {
		t.Fatal("unknown daemon should default to closed/available")
	}
}

// TestBackoffBounded: every decorrelated-jitter delay stays within
// [base, cap], and two chains draw different sequences (distinct seeds).
func TestBackoffBounded(t *testing.T) {
	base, cap := 5*time.Millisecond, 200*time.Millisecond
	b1, b2 := newBackoff(base, cap), newBackoff(base, cap)
	same := true
	for i := 0; i < 200; i++ {
		d1, d2 := b1.next(), b2.next()
		for _, d := range []time.Duration{d1, d2} {
			if d < base || d > cap {
				t.Fatalf("delay %v outside [%v, %v]", d, base, cap)
			}
		}
		if d1 != d2 {
			same = false
		}
	}
	if same {
		t.Fatal("two backoff chains drew identical sequences; seeds should differ")
	}
}
