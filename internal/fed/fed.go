// Package fed is the federated control plane: a coordinator that fronts N
// downstream fpgavoltd daemons behind the same /v1 API one daemon serves.
//
// A submitted campaign is sharded across the daemons by consistent hashing
// keyed on (platform, serial) — a board always lands on the same daemon, so
// that daemon's FVM store and cache stay warm for it — with work-stealing
// when the shards finish unevenly. Downstream events are re-stamped under
// the coordinator's own per-job and global sequences and merged into one
// restart-safe SSE stream; the coordinator journals every event and job
// state into its own store, so Last-Event-ID resume works across
// coordinator restarts exactly like it does on a single daemon. Health
// checks detect a daemon dying mid-campaign; its unfinished shard is
// retried on a survivor, and the retry is surfaced in the job detail.
// Query endpoints (/v1/fvms, /v1/vmin) answer over the union of the
// downstream stores with per-daemon fan-out.
package fed

import (
	"cmp"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fvm"
	"repro/internal/server"
	"repro/internal/store"
)

// Config tunes a coordinator.
type Config struct {
	// Downstreams lists the base URLs of the daemons being fronted
	// (e.g. "http://127.0.0.1:8081"). At least one is required.
	Downstreams []string
	// Store is the coordinator's own journal: federated jobs, their
	// re-stamped event logs, and the global firehose sequence persist here.
	// Required; use store.NewMem() for a non-durable coordinator.
	Store store.Store
	// MaxBoards caps a federated campaign's fleet size (default 256 — the
	// federation exists to run fleets bigger than one daemon's default 64).
	MaxBoards int
	// ChunkBoards is the shard granularity: how many boards ride one
	// downstream campaign (default 4). Smaller chunks steal better;
	// larger ones amortize per-campaign overhead.
	ChunkBoards int
	// RetryLimit bounds how many daemons one chunk may be attempted on
	// before its boards are marked failed (default 3).
	RetryLimit int
	// VNodes is the virtual nodes per daemon on the hash ring (default 64).
	VNodes int
	// MaxJobHistory caps the coordinator's job table (default 256).
	MaxJobHistory int
	// JobRetain, when > 0, trims a terminal federated job's journaled event
	// log to (at least) its last JobRetain events.
	JobRetain int
	// HealthEvery is the downstream health-check cadence (default 1s).
	HealthEvery time.Duration
	// HealthFailN is how many consecutive failures (probes or real calls)
	// trip a daemon's circuit breaker open (default 3). One dropped probe
	// must not flap a healthy daemon out of the shard plan.
	HealthFailN int
	// HealthOkN is how many consecutive successes close an open breaker
	// again (default 2). Between the two thresholds the daemon is
	// half-open: it takes trial traffic, and a single failure re-opens it.
	HealthOkN int
	// DownstreamTimeout bounds every non-streaming downstream call —
	// submits, status/query reads, fan-out unions, cancels (default 15s).
	// SSE streams are exempt (see HTTPClient); their liveness is governed
	// by the stream-resume loop instead.
	DownstreamTimeout time.Duration
	// StreamRetries bounds how many consecutive broken event streams one
	// chunk tolerates before the chunk counts as failed on that daemon
	// (default 5). Each break resumes from the last seen event, so a
	// retried stream never replays work, only the tail.
	StreamRetries int
	// SSEKeepAlive is the idle interval between SSE comment frames
	// (default 15s).
	SSEKeepAlive time.Duration
	// FirehoseBuffer bounds the merged /v1/events replay window
	// (default 8192 events).
	FirehoseBuffer int
	// AuthToken, when non-empty, gates the coordinator's own mutating
	// endpoints behind `Authorization: Bearer <token>`.
	AuthToken string
	// DownstreamToken is the bearer token the coordinator presents on
	// federation-internal calls to the daemons (their -auth-token).
	DownstreamToken string
	// HTTPClient issues every downstream call; nil uses a client without a
	// global timeout, which streaming requires.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.MaxBoards <= 0 {
		c.MaxBoards = 256
	}
	if c.ChunkBoards <= 0 {
		c.ChunkBoards = 4
	}
	if c.RetryLimit <= 0 {
		c.RetryLimit = 3
	}
	if c.MaxJobHistory <= 0 {
		c.MaxJobHistory = 256
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = time.Second
	}
	if c.HealthFailN <= 0 {
		c.HealthFailN = 3
	}
	if c.HealthOkN <= 0 {
		c.HealthOkN = 2
	}
	if c.DownstreamTimeout <= 0 {
		c.DownstreamTimeout = 15 * time.Second
	}
	if c.StreamRetries <= 0 {
		c.StreamRetries = 5
	}
	if c.SSEKeepAlive <= 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// Coordinator is the federated control plane. Create with New, serve via
// Handler, stop with Shutdown.
type Coordinator struct {
	cfg     Config
	mux     *http.ServeMux
	ring    *ring
	clients map[string]*server.Client
	fh      *firehose
	jnErrs  atomic.Uint64

	baseCtx context.Context
	abort   context.CancelFunc

	// health is the per-daemon circuit-breaker table, fed by both the probe
	// loop and real downstream call outcomes (see health.go).
	health *health

	mu       sync.Mutex
	seq      int
	jobs     map[string]*fedJob
	order    []string
	draining bool

	wg sync.WaitGroup
}

// New assembles a coordinator over the configured daemons, replays its
// journal, and starts the health monitor.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Downstreams) == 0 {
		return nil, fmt.Errorf("fed: Config.Downstreams is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("fed: Config.Store is required")
	}
	// Normalize before the ring is built: the daemon name on the ring, in
	// the client map, and in the health table must be the same string.
	norm := make([]string, len(cfg.Downstreams))
	for i, d := range cfg.Downstreams {
		norm[i] = strings.TrimRight(d, "/")
	}
	cfg.Downstreams = norm
	ctx, abort := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		ring:    newRing(cfg.Downstreams, cfg.VNodes),
		clients: make(map[string]*server.Client, len(cfg.Downstreams)),
		fh:      newFirehose(cfg.FirehoseBuffer),
		baseCtx: ctx,
		abort:   abort,
		jobs:    make(map[string]*fedJob),
		// Every breaker starts closed — optimistic until probes say
		// otherwise, like the pre-breaker health table.
		health: newHealth(norm, cfg.HealthFailN, cfg.HealthOkN),
	}
	seen := make(map[string]bool, len(cfg.Downstreams))
	for _, d := range cfg.Downstreams {
		if seen[d] {
			return nil, fmt.Errorf("fed: downstream %s listed twice", d)
		}
		seen[d] = true
		c.clients[d] = server.NewClient(d, cfg.HTTPClient).SetToken(cfg.DownstreamToken)
	}
	if err := c.replayJournal(); err != nil {
		return nil, err
	}
	c.routes()
	c.wg.Add(1)
	go c.healthLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP handler tree — the same /v1
// surface a single daemon serves.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Shutdown stops intake, cancels running federated jobs (their downstream
// shards are cancelled best-effort), and waits for the runners to exit.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.abort()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) routes() {
	c.mux.HandleFunc("POST /v1/campaigns", c.requireAuth(c.handleSubmit))
	c.mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.requireAuth(c.handleCancel))
	c.mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	c.mux.HandleFunc("GET /v1/events", c.handleFirehose)
	c.mux.HandleFunc("GET /v1/fvms", c.handleFVMs)
	c.mux.HandleFunc("GET /v1/fvms/{id}", c.handleFVM)
	c.mux.HandleFunc("DELETE /v1/fvms/{id}", c.requireAuth(c.handleDeleteFVM))
	c.mux.HandleFunc("GET /v1/vmin", c.handleVmin)
	c.mux.HandleFunc("POST /v1/gc", c.requireAuth(c.handleGC))
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
}

// requireAuth mirrors the daemon's bearer gate on the coordinator's own
// mutating endpoints.
func (c *Coordinator) requireAuth(h http.HandlerFunc) http.HandlerFunc {
	if c.cfg.AuthToken == "" {
		return h
	}
	want := []byte(c.cfg.AuthToken)
	return func(w http.ResponseWriter, r *http.Request) {
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(strings.TrimSpace(tok)), want) != 1 {
			writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		h(w, r)
	}
}

// --- health -----------------------------------------------------------

// healthLoop probes every downstream's /healthz on a fixed cadence and
// feeds the results into the circuit-breaker table. HealthFailN consecutive
// failures trip a daemon open — its queued chunks migrate and new boards
// hash past it — and HealthOkN consecutive successes close it again; a
// single dropped probe moves no breaker (the flapping fix).
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
		}
		for d := range c.clients {
			if c.probe(d) {
				c.health.ok(d)
			} else {
				c.health.fail(d)
			}
		}
	}
}

// probe reports whether one downstream currently answers /healthz.
func (c *Coordinator) probe(daemon string) bool {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.HealthEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, daemon+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// isHealthy reports whether a daemon should receive traffic — its breaker
// is closed or half-open (trial traffic is how recovery is proved).
func (c *Coordinator) isHealthy(daemon string) bool {
	return c.health.available(daemon)
}

// callCtx bounds one non-streaming downstream call. Every coordinator →
// daemon request except the SSE event streams goes through this; without
// it, a daemon that accepts connections but never answers would pin
// fan-outs and submits forever.
func (c *Coordinator) callCtx(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, c.cfg.DownstreamTimeout)
}

// --- coordinator journal ----------------------------------------------

// fedJobMeta is the journaled form of one federated job — the same
// {"status": ...} envelope the daemon journals, so the two layouts stay
// mutually readable by the same tooling.
type fedJobMeta struct {
	Status server.JobStatus `json:"status"`
}

// putJobMeta persists j's metadata record, O(1) in its event count.
func (c *Coordinator) putJobMeta(j *fedJob) {
	payload, err := json.Marshal(fedJobMeta{Status: j.status(true)})
	if err == nil {
		err = c.cfg.Store.PutJob(&store.JobRecord{ID: j.id, Seq: j.seq, Payload: payload})
	}
	if err != nil {
		c.jnErrs.Add(1)
		j.noteJournalDegraded()
	}
}

// retainTerminal applies Config.JobRetain to a terminal job's event log.
func (c *Coordinator) retainTerminal(id string) {
	if c.cfg.JobRetain <= 0 {
		return
	}
	if err := c.cfg.Store.TrimJobEvents(id, c.cfg.JobRetain); err != nil {
		c.jnErrs.Add(1)
	}
}

// readJobEvents pages one job's journaled events with Seq >= from.
func (c *Coordinator) readJobEvents(id string, from, limit int) []server.JobEvent {
	recs, err := c.cfg.Store.ReadJobEvents(id, from, limit)
	if err != nil {
		return nil
	}
	return decodeEventRecords(recs)
}

// firehosePage pages journaled events across all jobs with GSeq > after.
func (c *Coordinator) firehosePage(after int64, limit int) []server.JobEvent {
	recs, err := c.cfg.Store.ReadFirehose(after, limit)
	if err != nil {
		return nil
	}
	return decodeEventRecords(recs)
}

func decodeEventRecords(recs []store.EventRecord) []server.JobEvent {
	evs := make([]server.JobEvent, 0, len(recs))
	for _, rec := range recs {
		var ev server.JobEvent
		if err := json.Unmarshal(rec.Payload, &ev); err != nil {
			continue
		}
		evs = append(evs, ev)
	}
	return evs
}

// replayJournal rebuilds the job table from the coordinator's store at
// boot. Jobs journaled non-terminal were mid-campaign when the previous
// coordinator died; they come back failed with a restart marker (their
// downstream shards either finished without anyone to merge them or were
// cancelled by the daemons' own restart handling). The firehose sequence
// resumes past everything journaled, so a client's Last-Event-ID stays
// valid across the restart.
func (c *Coordinator) replayJournal() error {
	recs, err := c.cfg.Store.ListJobs()
	if err != nil {
		return fmt.Errorf("fed: replay journal: %w", err)
	}
	maxGSeq, err := c.cfg.Store.LastGSeq()
	if err != nil {
		return fmt.Errorf("fed: replay journal: %w", err)
	}
	c.fh.startAfter(maxGSeq)
	var interrupted []*fedJob
	for _, rec := range recs {
		var meta fedJobMeta
		if err := json.Unmarshal(rec.Payload, &meta); err != nil || meta.Status.ID != rec.ID {
			continue
		}
		nextSeq, _, err := c.cfg.Store.JobEventStats(rec.ID)
		if err != nil {
			nextSeq = 0
		}
		st := meta.Status
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		j := &fedJob{
			id: rec.ID, seq: rec.Seq, kind: st.Kind,
			ctx: ctx, cancel: cancel, c: c,
			state: st.State, created: st.Created, progress: st.Progress,
			eventsBase: nextSeq,
			notify:     make(chan struct{}),
			restored:   &st,
		}
		c.mu.Lock()
		if rec.Seq > c.seq {
			c.seq = rec.Seq
		}
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
		c.mu.Unlock()
		if !st.State.Terminal() {
			interrupted = append(interrupted, j)
		}
	}
	for _, j := range interrupted {
		j.failRestored("coordinator restarted mid-campaign")
	}
	return nil
}

// failRestored finishes a replayed job that was live when the previous
// coordinator died: failed state, terminal event with a fresh coordinator
// sequence, journal updated.
func (j *fedJob) failRestored(msg string) {
	j.mu.Lock()
	if j.restored == nil || j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	now := time.Now()
	j.state = server.JobFailed
	j.finished = now
	j.restored.State = server.JobFailed
	j.restored.Error = msg
	j.restored.Finished = &now
	te := server.JobEvent{Type: "campaign", Progress: j.progress, State: server.JobFailed, Error: msg}
	out := j.appendEventLocked(te)
	j.mu.Unlock()
	j.journalEvent(out)
	j.c.putJobMeta(j)
}

// --- job table --------------------------------------------------------

// createJob registers a new federated job. The coordinator's history bound
// mirrors the daemon's: beyond MaxJobHistory the oldest terminal jobs are
// evicted and unjournaled.
func (c *Coordinator) createJob(req server.CampaignRequest, flat []server.BoardSpec) *fedJob {
	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("fed-%04d", c.seq)
	c.mu.Unlock()
	j := c.newFedJob(id, c.seq, req, flat)
	c.mu.Lock()
	c.jobs[id] = j
	c.order = append(c.order, id)
	var evicted []string
	if excess := len(c.jobs) - c.cfg.MaxJobHistory; excess > 0 {
		kept := c.order[:0]
		for _, oid := range c.order {
			old := c.jobs[oid]
			if excess > 0 && old != nil && old.terminal() {
				delete(c.jobs, oid)
				evicted = append(evicted, oid)
				excess--
				continue
			}
			kept = append(kept, oid)
		}
		c.order = kept
	}
	c.mu.Unlock()
	for _, oid := range evicted {
		if err := c.cfg.Store.DeleteJob(oid); err != nil {
			c.jnErrs.Add(1)
		}
	}
	return j
}

func (c *Coordinator) getJob(id string) (*fedJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// --- HTTP handlers ----------------------------------------------------

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 48<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	var req server.CampaignRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	// Validate up front: a bad submission is a 400 at the coordinator, not
	// N downstream failures — and the expansion is the shard plan.
	if err := req.Validate(c.cfg.MaxBoards); err != nil {
		writeAPIError(w, err)
		return
	}
	flat, err := server.ExpandBoards(req.Boards, c.cfg.MaxBoards)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	j := c.createJob(req, flat)
	c.putJobMeta(j)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.runJob(j)
	}()
	writeJSON(w, http.StatusAccepted, j.status(true))
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	jobs := make([]*fedJob, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	out := make([]server.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) lookupJob(w http.ResponseWriter, r *http.Request) (*fedJob, bool) {
	j, ok := c.getJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
	}
	return j, ok
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := c.lookupJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.status(true))
	}
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status(true))
}

const sseRetryHint = 2 * time.Second

func startSSE(w http.ResponseWriter) (http.Flusher, bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: %d\n\n", sseRetryHint.Milliseconds())
	flusher.Flush()
	return flusher, true
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(w, r)
	if !ok {
		return
	}
	next := 0
	if after := cmp.Or(r.Header.Get("Last-Event-ID"), r.URL.Query().Get("after")); after != "" {
		if n, err := strconv.Atoi(after); err == nil && n >= 0 {
			next = n + 1
		}
	}
	flusher, ok := startSSE(w)
	if !ok {
		return
	}
	keepalive := time.NewTicker(c.cfg.SSEKeepAlive)
	defer keepalive.Stop()
	for {
		evs, terminal, changed := j.eventsSince(next)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			next = ev.Seq + 1
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			if evs, _, _ := j.eventsSince(next); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-c.baseCtx.Done():
			return
		}
	}
}

// firehosePageSize bounds one deep-resume page of the merged stream.
const firehosePageSize = 512

func (c *Coordinator) handleFirehose(w http.ResponseWriter, r *http.Request) {
	var after int64
	if q := cmp.Or(r.Header.Get("Last-Event-ID"), r.URL.Query().Get("after")); q != "" {
		if n, err := strconv.ParseInt(q, 10, 64); err == nil && n > 0 {
			after = n
		}
	}
	flusher, ok := startSSE(w)
	if !ok {
		return
	}
	keepalive := time.NewTicker(c.cfg.SSEKeepAlive)
	defer keepalive.Stop()
	emit := func(ev server.JobEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.GSeq, ev.Type, data)
		after = ev.GSeq
		return true
	}
	for {
		evs, changed, inWindow := c.fh.since(after)
		if !inWindow {
			if page := c.firehosePage(after, firehosePageSize); len(page) > 0 {
				for _, ev := range page {
					if !emit(ev) {
						return
					}
				}
				flusher.Flush()
				continue
			}
			after = c.fh.lowWater()
			continue
		}
		for _, ev := range evs {
			if !emit(ev) {
				return
			}
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		select {
		case <-changed:
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-c.baseCtx.Done():
			return
		}
	}
}

// fanout runs fn against every downstream concurrently, each call bounded
// by DownstreamTimeout, and collects the non-error results plus the sorted
// list of daemons that did not answer — open breakers and failed calls
// alike. A fleet query must degrade to the reachable union, not fail
// because one box is down; the missing list is what lets the handler tell
// the client the union is partial. Call outcomes feed the breaker table: a
// transport failure counts against the daemon, while any HTTP status —
// even an error one — proves the daemon alive.
func fanout[T any](c *Coordinator, ctx context.Context, fn func(ctx context.Context, cl *server.Client) (T, error)) (out []T, missing []string) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for d, cl := range c.clients {
		if !c.isHealthy(d) {
			missing = append(missing, d)
			continue
		}
		wg.Add(1)
		go func(d string, cl *server.Client) {
			defer wg.Done()
			cctx, cancel := c.callCtx(ctx)
			defer cancel()
			v, err := fn(cctx, cl)
			var se *server.APIStatusError
			switch {
			case err == nil:
				c.health.ok(d)
				mu.Lock()
				out = append(out, v)
				mu.Unlock()
				return
			case errors.As(err, &se):
				// The daemon answered — an HTTP error is liveness, not
				// death — but its result is still missing from the union.
				c.health.ok(d)
			default:
				c.health.fail(d)
			}
			mu.Lock()
			missing = append(missing, d)
			mu.Unlock()
		}(d, cl)
	}
	wg.Wait()
	sort.Strings(missing)
	return out, missing
}

func (c *Coordinator) handleFVMs(w http.ResponseWriter, r *http.Request) {
	platformQ, serialQ := r.URL.Query().Get("platform"), r.URL.Query().Get("serial")
	lists, missing := fanout(c, r.Context(), func(ctx context.Context, cl *server.Client) ([]server.FVMInfo, error) {
		return cl.FVMs(ctx, platformQ, serialQ)
	})
	out := []server.FVMInfo{}
	seen := make(map[string]bool)
	for _, l := range lists {
		for _, f := range l {
			// The same content address on two daemons (a retried shard
			// re-characterized a board) is one record in the union.
			if seen[f.ID] {
				continue
			}
			seen[f.ID] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Platform != out[k].Platform {
			return out[i].Platform < out[k].Platform
		}
		if out[i].Serial != out[k].Serial {
			return out[i].Serial < out[k].Serial
		}
		return out[i].ID < out[k].ID
	})
	// Graceful degradation: every daemon answered → the bare array (daemon
	// parity); survivors only → the partial envelope, so a client can tell
	// "the fleet has these" from "the daemons I could reach have these".
	if len(missing) > 0 {
		writeJSON(w, http.StatusOK, server.FVMList{FVMs: out, Partial: true, Missing: missing})
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleFVM(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !store.ValidID(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no FVM %q", id))
		return
	}
	for d, cl := range c.clients {
		if !c.isHealthy(d) {
			continue
		}
		m, err := func() (*fvm.Map, error) {
			ctx, cancel := c.callCtx(r.Context())
			defer cancel()
			return cl.FVM(ctx, id)
		}()
		if err == nil {
			writeJSON(w, http.StatusOK, m)
			return
		}
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("no FVM %q", id))
}

func (c *Coordinator) handleDeleteFVM(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !store.ValidID(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no FVM %q", id))
		return
	}
	deleted, missing := fanout(c, r.Context(), func(ctx context.Context, cl *server.Client) (bool, error) {
		if err := cl.DeleteFVM(ctx, id); err != nil {
			return false, err
		}
		return true, nil
	})
	if len(deleted) == 0 {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no FVM %q", id))
		return
	}
	resp := map[string]any{"deleted": id}
	if len(missing) > 0 {
		// The record may survive on an unreachable daemon; say so instead
		// of claiming a fleet-wide delete.
		resp["partial"], resp["missing"] = true, missing
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleVmin(w http.ResponseWriter, r *http.Request) {
	platformQ, serialQ := r.URL.Query().Get("platform"), r.URL.Query().Get("serial")
	lists, missing := fanout(c, r.Context(), func(ctx context.Context, cl *server.Client) ([]server.VminInfo, error) {
		return cl.Vmin(ctx, platformQ, serialQ)
	})
	out := []server.VminInfo{}
	seen := make(map[server.VminInfo]bool)
	for _, l := range lists {
		for _, v := range l {
			if seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Platform != out[k].Platform {
			return out[i].Platform < out[k].Platform
		}
		if out[i].Serial != out[k].Serial {
			return out[i].Serial < out[k].Serial
		}
		return out[i].TempC < out[k].TempC
	})
	if len(missing) > 0 {
		writeJSON(w, http.StatusOK, server.VminList{Vmin: out, Partial: true, Missing: missing})
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleGC(w http.ResponseWriter, r *http.Request) {
	keep := 0
	if q := r.URL.Query().Get("keep"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("keep %q must be a positive integer", q))
			return
		}
		keep = n
	}
	counts, missing := fanout(c, r.Context(), func(ctx context.Context, cl *server.Client) (int, error) {
		return cl.GC(ctx, keep)
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	resp := map[string]any{"removed": total, "daemons": len(counts)}
	if len(missing) > 0 {
		resp["partial"], resp["missing"] = true, missing
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	type dh struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
		// Breaker is the daemon's circuit-breaker position (closed |
		// half-open | open); Fails counts its consecutive failures so far.
		Breaker string `json:"breaker"`
		Fails   int    `json:"fails,omitempty"`
	}
	daemons := make([]dh, 0, len(c.cfg.Downstreams))
	alive := 0
	for _, d := range c.cfg.Downstreams {
		state, fails := c.health.snapshot(d)
		ok := state != breakerOpen
		if ok {
			alive++
		}
		daemons = append(daemons, dh{URL: d, Healthy: ok, Breaker: state.String(), Fails: fails})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             !draining && alive > 0,
		"federation":     true,
		"draining":       draining,
		"daemons":        daemons,
		"journal_errors": c.jnErrs.Load(),
	})
}

// --- response helpers -------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	// The coordinator answers with the same error envelope as a daemon, so
	// a client never needs to know which layer refused it.
	writeJSON(w, status, server.ErrorBody{Error: msg})
}

// writeAPIError maps a validation error onto the coordinator's response: a
// downstream *APIStatusError keeps its status, and anything else out of
// server.Validate / server.ExpandBoards is a 400 by construction.
func writeAPIError(w http.ResponseWriter, err error) {
	var se *server.APIStatusError
	if errors.As(err, &se) {
		writeError(w, se.StatusCode, se.Message)
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}
