// Package voltage models the on-board voltage regulation of the paper's test
// platforms: a TI UCD9248-style multi-rail PMBus regulator through which the
// host underscales VCCBRAM and VCCINT in 10 mV steps (Listing 1).
//
// The regulator is a pmbus.Device, so all host interaction flows through the
// same command sequence a real rig uses: PAGE select, VOUT_COMMAND writes,
// READ_VOUT / READ_TEMPERATURE_2 / READ_POUT reads. Rail semantics (setpoint
// clamping, undervoltage status, margining) live here; what the FPGA *does*
// at a given rail voltage (faults, crash) is the chip model's business.
package voltage

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/pmbus"
)

// Step is the sweep granularity the paper uses when underscaling (10 mV).
const Step = 0.010

// Rail is one regulated supply output (one PMBus page).
type Rail struct {
	Name    string  // e.g. "VCCBRAM"
	Nominal float64 // volts, factory setpoint (1.0 V on all studied boards)
	Min     float64 // lowest programmable setpoint
	Max     float64 // highest programmable setpoint (OVP limit)
}

// RailState is the live state of a rail inside the regulator.
type RailState struct {
	Rail
	Setpoint float64 // programmed output voltage
}

// operation models the PMBus OPERATION register's margining state.
type operation uint8

const (
	opOn         operation = iota // normal regulation at VOUT_COMMAND
	opMarginLow                   // regulate at VOUT_MARGIN_LOW
	opMarginHigh                  // regulate at VOUT_MARGIN_HIGH
)

// Regulator is a UCD9248-style PMBus voltage controller with one page per
// rail. It is safe for concurrent use.
type Regulator struct {
	mu       sync.Mutex
	rails    []RailState
	margins  []railMargins
	mode     pmbus.VoutMode
	serial   string
	tempC    func() float64 // on-board sensor hook, set by the board model
	poutW    func(page int) float64
	voutTrim float64 // regulator DC accuracy offset applied to readbacks
}

// railMargins holds one page's margin setpoints and operation state.
type railMargins struct {
	low, high float64
	op        operation
}

// NewRegulator builds a regulator exposing the given rails, each initialized
// to its nominal setpoint.
func NewRegulator(serial string, rails ...Rail) *Regulator {
	r := &Regulator{
		mode:   pmbus.VoutMode{Exponent: -12},
		serial: serial,
	}
	for _, rail := range rails {
		r.rails = append(r.rails, RailState{Rail: rail, Setpoint: rail.Nominal})
		r.margins = append(r.margins, railMargins{
			low:  rail.Nominal * 0.95,
			high: rail.Nominal * 1.05,
		})
	}
	r.tempC = func() float64 { return 25 }
	r.poutW = func(int) float64 { return 0 }
	return r
}

// BindSensors installs the board-side callbacks that provide the on-board
// temperature and per-rail output power the regulator reports over PMBus.
func (r *Regulator) BindSensors(tempC func() float64, poutW func(page int) float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tempC != nil {
		r.tempC = tempC
	}
	if poutW != nil {
		r.poutW = poutW
	}
}

// Pages implements pmbus.Device.
func (r *Regulator) Pages() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rails)
}

// PageOf returns the page index of the named rail, or -1.
func (r *Regulator) PageOf(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rail := range r.rails {
		if rail.Name == name {
			return i
		}
	}
	return -1
}

// Setpoint returns the effective output voltage of a page, honoring the
// OPERATION register's margining state.
func (r *Regulator) Setpoint(page int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if page < 0 || page >= len(r.rails) {
		return 0
	}
	switch r.margins[page].op {
	case opMarginLow:
		return r.margins[page].low
	case opMarginHigh:
		return r.margins[page].high
	default:
		return r.rails[page].Setpoint
	}
}

// SetSetpoint programs a rail directly (the PMBus path calls this too). The
// value is clamped to the rail's programmable range and quantized to the
// regulator's DAC resolution.
func (r *Regulator) SetSetpoint(page int, volts float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if page < 0 || page >= len(r.rails) {
		return fmt.Errorf("voltage: page %d out of range", page)
	}
	rail := &r.rails[page]
	if volts < rail.Min {
		volts = rail.Min
	}
	if volts > rail.Max {
		volts = rail.Max
	}
	// Quantize to the LINEAR16 DAC step so setpoint and readback agree.
	raw, err := r.mode.Encode(volts)
	if err != nil {
		return err
	}
	rail.Setpoint = r.mode.Decode(raw)
	return nil
}

// Write implements pmbus.Device.
func (r *Regulator) Write(page int, cmd pmbus.Command, data []byte) error {
	switch cmd {
	case pmbus.CmdVoutCommand:
		if len(data) != 2 {
			return fmt.Errorf("voltage: VOUT_COMMAND needs 2 bytes, got %d", len(data))
		}
		raw := uint16(data[0]) | uint16(data[1])<<8
		return r.SetSetpoint(page, r.mode.Decode(raw))
	case pmbus.CmdVoutMarginLow, pmbus.CmdVoutMarginHigh:
		if len(data) != 2 {
			return fmt.Errorf("voltage: margin write needs 2 bytes, got %d", len(data))
		}
		if page < 0 || page >= len(r.rails) {
			return fmt.Errorf("voltage: page %d out of range", page)
		}
		v := r.mode.Decode(uint16(data[0]) | uint16(data[1])<<8)
		r.mu.Lock()
		if cmd == pmbus.CmdVoutMarginLow {
			r.margins[page].low = v
		} else {
			r.margins[page].high = v
		}
		r.mu.Unlock()
		return nil
	case pmbus.CmdOperation:
		if len(data) != 1 {
			return fmt.Errorf("voltage: OPERATION needs 1 byte, got %d", len(data))
		}
		if page < 0 || page >= len(r.rails) {
			return fmt.Errorf("voltage: page %d out of range", page)
		}
		r.mu.Lock()
		switch data[0] & 0xF0 {
		case 0x90:
			r.margins[page].op = opMarginLow
		case 0xA0:
			r.margins[page].op = opMarginHigh
		default:
			r.margins[page].op = opOn
		}
		r.mu.Unlock()
		return nil
	case pmbus.CmdClearFaults:
		return nil
	}
	return fmt.Errorf("%w: %#02x", pmbus.ErrUnsupportedCmd, uint8(cmd))
}

// Read implements pmbus.Device.
func (r *Regulator) Read(page int, cmd pmbus.Command) ([]byte, error) {
	switch cmd {
	case pmbus.CmdVoutMode:
		return []byte{r.mode.Byte()}, nil
	case pmbus.CmdReadVout:
		r.mu.Lock()
		v := 0.0
		if page >= 0 && page < len(r.rails) {
			v = r.rails[page].Setpoint + r.voutTrim
		}
		r.mu.Unlock()
		raw, err := r.mode.Encode(math.Max(v, 0))
		if err != nil {
			return nil, err
		}
		return []byte{byte(raw), byte(raw >> 8)}, nil
	case pmbus.CmdReadTemperature2:
		raw, err := pmbus.EncodeLinear11(quantizeHalfDegree(r.tempC()))
		if err != nil {
			return nil, err
		}
		return []byte{byte(raw), byte(raw >> 8)}, nil
	case pmbus.CmdReadPout:
		raw, err := pmbus.EncodeLinear11(r.poutW(page))
		if err != nil {
			return nil, err
		}
		return []byte{byte(raw), byte(raw >> 8)}, nil
	case pmbus.CmdStatusWord:
		var status uint16
		r.mu.Lock()
		if page >= 0 && page < len(r.rails) {
			rail := r.rails[page]
			if rail.Setpoint < rail.Nominal*0.5 {
				status |= pmbus.StatusVout | pmbus.StatusVoutUV
			}
		}
		r.mu.Unlock()
		return []byte{byte(status), byte(status >> 8)}, nil
	case pmbus.CmdVoutMarginLow, pmbus.CmdVoutMarginHigh:
		r.mu.Lock()
		v := 0.0
		if page >= 0 && page < len(r.margins) {
			if cmd == pmbus.CmdVoutMarginLow {
				v = r.margins[page].low
			} else {
				v = r.margins[page].high
			}
		}
		r.mu.Unlock()
		raw, err := r.mode.Encode(math.Max(v, 0))
		if err != nil {
			return nil, err
		}
		return []byte{byte(raw), byte(raw >> 8)}, nil
	case pmbus.CmdOperation:
		r.mu.Lock()
		op := opOn
		if page >= 0 && page < len(r.margins) {
			op = r.margins[page].op
		}
		r.mu.Unlock()
		b := byte(0x80)
		switch op {
		case opMarginLow:
			b = 0x98
		case opMarginHigh:
			b = 0xA8
		}
		return []byte{b}, nil
	case pmbus.CmdMfrSerial:
		return []byte(r.serial), nil
	}
	return nil, fmt.Errorf("%w: %#02x", pmbus.ErrUnsupportedCmd, uint8(cmd))
}

// quantizeHalfDegree models the 0.5 °C resolution of the on-board sensor.
func quantizeHalfDegree(t float64) float64 { return math.Round(t*2) / 2 }

// SweepDown returns the descending voltage schedule from start to stop
// (inclusive on both ends when they align to the step), mirroring the 10 mV
// loop of Listing 1. It always contains at least the start point.
func SweepDown(start, stop, step float64) []float64 {
	if step <= 0 {
		step = Step
	}
	var vs []float64
	for v := start; v > stop-step/2; v -= step {
		vs = append(vs, math.Round(v*1e6)/1e6)
	}
	return vs
}
