package voltage

import (
	"math"
	"testing"

	"repro/internal/pmbus"
)

func newTestRegulator() *Regulator {
	return NewRegulator("test-serial",
		Rail{Name: "VCCINT", Nominal: 1.0, Min: 0.4, Max: 1.1},
		Rail{Name: "VCCBRAM", Nominal: 1.0, Min: 0.4, Max: 1.1},
	)
}

func TestRailsStartAtNominal(t *testing.T) {
	r := newTestRegulator()
	if got := r.Setpoint(0); got != 1.0 {
		t.Fatalf("VCCINT initial = %v", got)
	}
	if got := r.Setpoint(1); got != 1.0 {
		t.Fatalf("VCCBRAM initial = %v", got)
	}
}

func TestPageOf(t *testing.T) {
	r := newTestRegulator()
	if r.PageOf("VCCBRAM") != 1 || r.PageOf("VCCINT") != 0 {
		t.Fatal("PageOf wrong")
	}
	if r.PageOf("VCCAUX") != -1 {
		t.Fatal("unknown rail should be -1")
	}
}

func TestSetpointClamping(t *testing.T) {
	r := newTestRegulator()
	if err := r.SetSetpoint(1, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := r.Setpoint(1); math.Abs(got-0.4) > 0.001 {
		t.Fatalf("below-min clamped to %v, want 0.4", got)
	}
	if err := r.SetSetpoint(1, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := r.Setpoint(1); math.Abs(got-1.1) > 0.001 {
		t.Fatalf("above-max clamped to %v, want 1.1", got)
	}
	if err := r.SetSetpoint(7, 1.0); err == nil {
		t.Fatal("bad page should error")
	}
}

func TestPMBusVoutPath(t *testing.T) {
	r := newTestRegulator()
	bus := pmbus.NewBus()
	bus.Attach(0x34, r)
	ctl := pmbus.NewController(bus, 0x34)

	if err := ctl.SetVout(1, 0.61); err != nil {
		t.Fatal(err)
	}
	got, err := ctl.ReadVout(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.61) > 0.001 {
		t.Fatalf("ReadVout = %v, want ~0.61", got)
	}
	// Page 0 untouched.
	v0, _ := ctl.ReadVout(0)
	if math.Abs(v0-1.0) > 0.001 {
		t.Fatalf("other rail disturbed: %v", v0)
	}
}

func TestTenMillivoltStepsDistinct(t *testing.T) {
	// Every 10 mV step of the paper's sweep must survive the DAC round trip
	// as a distinct setpoint.
	r := newTestRegulator()
	prev := -1.0
	for _, v := range SweepDown(1.0, 0.54, Step) {
		if err := r.SetSetpoint(1, v); err != nil {
			t.Fatal(err)
		}
		got := r.Setpoint(1)
		if math.Abs(got-v) > 0.0005 {
			t.Fatalf("setpoint %v quantized to %v", v, got)
		}
		if got == prev {
			t.Fatalf("steps aliased at %v", v)
		}
		prev = got
	}
}

func TestStatusWordUndervoltage(t *testing.T) {
	r := newTestRegulator()
	bus := pmbus.NewBus()
	bus.Attach(0x34, r)
	ctl := pmbus.NewController(bus, 0x34)

	st, err := ctl.StatusWord(1)
	if err != nil {
		t.Fatal(err)
	}
	if st&pmbus.StatusVout != 0 {
		t.Fatalf("nominal rail reports fault: %#04x", st)
	}
	if err := ctl.SetVout(1, 0.45); err != nil {
		t.Fatal(err)
	}
	st, err = ctl.StatusWord(1)
	if err != nil {
		t.Fatal(err)
	}
	if st&pmbus.StatusVout == 0 {
		t.Fatalf("deep undervoltage not flagged: %#04x", st)
	}
}

func TestBoundSensors(t *testing.T) {
	r := newTestRegulator()
	r.BindSensors(func() float64 { return 63.7 }, func(page int) float64 {
		return float64(page) + 2.5
	})
	bus := pmbus.NewBus()
	bus.Attach(0x34, r)
	ctl := pmbus.NewController(bus, 0x34)

	temp, err := ctl.ReadTemperature(0)
	if err != nil {
		t.Fatal(err)
	}
	if temp != 63.5 { // quantized to 0.5 degC
		t.Fatalf("temperature = %v, want 63.5 (quantized)", temp)
	}
	p, err := ctl.ReadPout(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-3.5) > 0.01 {
		t.Fatalf("pout = %v, want 3.5", p)
	}
}

func TestUnsupportedCommand(t *testing.T) {
	r := newTestRegulator()
	if _, err := r.Read(0, pmbus.CmdReadIout); err == nil {
		t.Fatal("unsupported read should error")
	}
	if err := r.Write(0, pmbus.CmdVoutOVFaultLimit, []byte{0, 0}); err == nil {
		t.Fatal("unsupported write should error")
	}
	if err := r.Write(0, pmbus.CmdVoutCommand, []byte{1}); err == nil {
		t.Fatal("short VOUT_COMMAND should error")
	}
}

func TestMarginingViaOperation(t *testing.T) {
	r := newTestRegulator()
	mode := pmbus.VoutMode{Exponent: -12}
	enc := func(v float64) []byte {
		raw, err := mode.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		return []byte{byte(raw), byte(raw >> 8)}
	}
	// Program the margin setpoints.
	if err := r.Write(1, pmbus.CmdVoutMarginLow, enc(0.90)); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(1, pmbus.CmdVoutMarginHigh, enc(1.05)); err != nil {
		t.Fatal(err)
	}
	// Normal operation regulates at VOUT_COMMAND.
	if got := r.Setpoint(1); math.Abs(got-1.0) > 0.001 {
		t.Fatalf("setpoint before margining = %v", got)
	}
	// OPERATION margin-low selects the low setpoint.
	if err := r.Write(1, pmbus.CmdOperation, []byte{0x98}); err != nil {
		t.Fatal(err)
	}
	if got := r.Setpoint(1); math.Abs(got-0.90) > 0.001 {
		t.Fatalf("margin-low setpoint = %v", got)
	}
	// Margin-high.
	if err := r.Write(1, pmbus.CmdOperation, []byte{0xA8}); err != nil {
		t.Fatal(err)
	}
	if got := r.Setpoint(1); math.Abs(got-1.05) > 0.001 {
		t.Fatalf("margin-high setpoint = %v", got)
	}
	// Back to normal.
	if err := r.Write(1, pmbus.CmdOperation, []byte{0x80}); err != nil {
		t.Fatal(err)
	}
	if got := r.Setpoint(1); math.Abs(got-1.0) > 0.001 {
		t.Fatalf("restored setpoint = %v", got)
	}
	// Readbacks.
	raw, err := r.Read(1, pmbus.CmdVoutMarginLow)
	if err != nil {
		t.Fatal(err)
	}
	if got := mode.Decode(uint16(raw[0]) | uint16(raw[1])<<8); math.Abs(got-0.90) > 0.001 {
		t.Fatalf("margin-low readback = %v", got)
	}
	op, err := r.Read(1, pmbus.CmdOperation)
	if err != nil {
		t.Fatal(err)
	}
	if op[0] != 0x80 {
		t.Fatalf("OPERATION readback = %#x", op[0])
	}
}

func TestMarginWriteErrors(t *testing.T) {
	r := newTestRegulator()
	if err := r.Write(0, pmbus.CmdVoutMarginLow, []byte{1}); err == nil {
		t.Fatal("short margin write should error")
	}
	if err := r.Write(9, pmbus.CmdVoutMarginLow, []byte{0, 0}); err == nil {
		t.Fatal("bad page margin write should error")
	}
	if err := r.Write(0, pmbus.CmdOperation, []byte{}); err == nil {
		t.Fatal("empty OPERATION should error")
	}
	if err := r.Write(9, pmbus.CmdOperation, []byte{0x80}); err == nil {
		t.Fatal("bad page OPERATION should error")
	}
}

func TestSweepDown(t *testing.T) {
	vs := SweepDown(0.61, 0.54, 0.01)
	if len(vs) != 8 {
		t.Fatalf("sweep has %d points: %v", len(vs), vs)
	}
	if vs[0] != 0.61 || vs[len(vs)-1] != 0.54 {
		t.Fatalf("sweep endpoints wrong: %v", vs)
	}
	for i := 1; i < len(vs); i++ {
		if vs[i] >= vs[i-1] {
			t.Fatalf("sweep not strictly descending: %v", vs)
		}
	}
	// Degenerate step falls back to the 10 mV default.
	if got := SweepDown(1.0, 0.99, 0); len(got) != 2 {
		t.Fatalf("default-step sweep = %v", got)
	}
}

func TestMfrSerial(t *testing.T) {
	r := newTestRegulator()
	got, err := r.Read(0, pmbus.CmdMfrSerial)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "test-serial" {
		t.Fatalf("serial = %q", got)
	}
}
