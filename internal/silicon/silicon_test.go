package silicon

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// testCal is a small, fast calibration shaped like VC707 but over a reduced
// floorplan, for unit testing the model mechanics.
func testCal() Calibration {
	return Calibration{
		Family:          "Test-7",
		ReferenceSerial: "TEST-0001",
		Vnom:            1.0,
		Vmin:            0.61,
		Vcrash:          0.54,
		VminInt:         0.66,
		VcrashInt:       0.59,
		FaultsPerMbit:   652,
		ZeroFaultFrac:   0.389,
		HotspotSigma:    1.5,
		TempRef:         50,
		TempCoeff:       2.7e-4,
		JitterSigma:     5e-5,
		RippleSigma:     7.9e-5,
		Flip01Frac:      0.001,
		DieToDieSigma:   0.6,
	}
}

func grid(cols, rows int) []Site {
	sites := make([]Site, 0, cols*rows)
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			sites = append(sites, Site{X: x, Y: y})
		}
	}
	return sites
}

func testDie() *Die { return NewDie(testCal(), "TEST-0001", grid(10, 20)) }

func TestRegions(t *testing.T) {
	cal := testCal()
	cases := []struct {
		v    float64
		want Region
	}{
		{1.0, RegionSafe},
		{0.61, RegionSafe},
		{0.6099, RegionCritical},
		{0.55, RegionCritical},
		{0.54, RegionCritical},
		{0.5399, RegionCrash},
	}
	for _, c := range cases {
		if got := cal.RegionOfBRAM(c.v); got != c.want {
			t.Fatalf("RegionOfBRAM(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if cal.RegionOfInt(0.66) != RegionSafe || cal.RegionOfInt(0.60) != RegionCritical ||
		cal.RegionOfInt(0.58) != RegionCrash {
		t.Fatal("RegionOfInt thresholds wrong")
	}
	if RegionSafe.String() != "SAFE" || RegionCrash.String() != "CRASH" {
		t.Fatal("Region names wrong")
	}
}

func TestGuardbands(t *testing.T) {
	cal := testCal()
	if g := cal.GuardbandBRAM(); math.Abs(g-0.39) > 1e-9 {
		t.Fatalf("BRAM guardband = %v, want 0.39", g)
	}
	if g := cal.GuardbandInt(); math.Abs(g-0.34) > 1e-9 {
		t.Fatalf("INT guardband = %v, want 0.34", g)
	}
}

func TestDieDeterministic(t *testing.T) {
	a := testDie()
	b := testDie()
	if a.TotalWeakCells() != b.TotalWeakCells() {
		t.Fatal("same serial produced different populations")
	}
	for s := 0; s < a.NumSites(); s++ {
		ca, cb := a.WeakCells(s), b.WeakCells(s)
		if len(ca) != len(cb) {
			t.Fatalf("site %d cell count differs", s)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("site %d cell %d differs: %+v vs %+v", s, i, ca[i], cb[i])
			}
		}
	}
}

func TestTotalCellsNearCalibration(t *testing.T) {
	d := testDie()
	sites := float64(d.NumSites())
	want := testCal().FaultsPerMbit * sites * BRAMBits / BitsPerMbit
	got := float64(d.TotalWeakCells())
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("weak cells = %v, want ~%v", got, want)
	}
}

func TestZeroFaultSiteFraction(t *testing.T) {
	d := testDie()
	zero := 0
	for s := 0; s < d.NumSites(); s++ {
		if len(d.WeakCells(s)) == 0 {
			zero++
		}
	}
	frac := float64(zero) / float64(d.NumSites())
	// At least the forced fraction; Poisson can zero a few more small sites.
	if frac < 0.30 || frac > 0.65 {
		t.Fatalf("zero-fault site fraction = %v, want near 0.389", frac)
	}
}

func TestCellInvariants(t *testing.T) {
	d := testDie()
	cal := testCal()
	flip01 := 0
	total := 0
	for s := 0; s < d.NumSites(); s++ {
		seen := map[uint32]bool{}
		for _, c := range d.WeakCells(s) {
			total++
			if c.Row >= BRAMRows || c.Col >= BRAMCols {
				t.Fatalf("cell out of geometry: %+v", c)
			}
			if c.Vc <= cal.Vcrash || c.Vc >= cal.Vmin {
				t.Fatalf("Vc %v outside (Vcrash, Vmin)", c.Vc)
			}
			if c.TempCoeff <= 0 {
				t.Fatalf("non-positive temp coefficient: %+v", c)
			}
			key := uint32(c.Row)<<8 | uint32(c.Col)
			if seen[key] {
				t.Fatalf("duplicate weak cell at site %d row %d col %d", s, c.Row, c.Col)
			}
			seen[key] = true
			if c.Flip01 {
				flip01++
			}
		}
	}
	if total == 0 {
		t.Fatal("die has no weak cells at all")
	}
	// ~0.1% are 0->1; allow sampling slack on a few thousand cells.
	if frac := float64(flip01) / float64(total); frac > 0.01 {
		t.Fatalf("0->1 fraction = %v, want ~0.001", frac)
	}
}

func TestExponentialRateShape(t *testing.T) {
	d := testDie()
	cal := testCal()
	var vs, ns []float64
	for v := cal.Vcrash; v < cal.Vmin; v += 0.01 {
		n := d.ExpectedFaultsAt(v, cal.TempRef)
		vs = append(vs, v)
		ns = append(ns, float64(n))
	}
	if ns[0] == 0 {
		t.Fatal("no faults at Vcrash")
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] > ns[i-1] {
			t.Fatalf("fault count not non-increasing with voltage: %v", ns)
		}
	}
	fit, err := stats.FitExponential(vs, ns)
	if err != nil {
		t.Fatal(err)
	}
	if fit.B >= 0 {
		t.Fatalf("fault curve must decay with voltage, slope %v", fit.B)
	}
	if fit.R2 < 0.9 {
		t.Fatalf("fault curve poorly exponential: R2 = %v", fit.R2)
	}
}

func TestNoFaultsAtVmin(t *testing.T) {
	d := testDie()
	cal := testCal()
	if n := d.ExpectedFaultsAt(cal.Vmin, cal.TempRef); n != 0 {
		t.Fatalf("faults at Vmin = %d, want 0", n)
	}
	if n := d.ExpectedFaultsAt(cal.Vnom, cal.TempRef); n != 0 {
		t.Fatalf("faults at Vnom = %d, want 0", n)
	}
}

func TestITDTemperatureReducesFaults(t *testing.T) {
	d := testDie()
	cal := testCal()
	base := d.ExpectedFaultsAt(cal.Vcrash, 50)
	hot := d.ExpectedFaultsAt(cal.Vcrash, 80)
	if hot >= base {
		t.Fatalf("ITD violated: 50C=%d 80C=%d", base, hot)
	}
	ratio := float64(base) / float64(hot)
	if ratio < 2.0 || ratio > 5.5 {
		t.Fatalf("50->80C reduction = %.2fx, want ~3x for VC707-like cal", ratio)
	}
	// Monotone across the full Fig. 8 range.
	prev := base
	for _, temp := range []float64{60, 70, 80} {
		n := d.ExpectedFaultsAt(cal.Vcrash, temp)
		if n > prev {
			t.Fatalf("fault count rose with temperature at %v C", temp)
		}
		prev = n
	}
}

func TestActiveFaultsDeterministicPerRun(t *testing.T) {
	d := testDie()
	cal := testCal()
	cond := Conditions{V: cal.Vcrash, TempC: 50, Run: 7}
	site := hottestSite(d)
	a := d.ActiveFaults(nil, site, cond)
	b := d.ActiveFaults(nil, site, cond)
	if len(a) != len(b) {
		t.Fatal("same conditions, different fault count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same conditions, different fault locations")
		}
	}
}

func TestFaultLocationsStableAcrossRuns(t *testing.T) {
	// Table II / Section II-C2: locations must not move between runs; only a
	// few marginal cells may blink.
	d := testDie()
	site := hottestSite(d)
	base := faultSet(d.ActiveFaults(nil, site, Conditions{V: 0.56, TempC: 50, Run: 0}))
	for run := uint64(1); run < 20; run++ {
		got := faultSet(d.ActiveFaults(nil, site, Conditions{V: 0.56, TempC: 50, Run: run}))
		// Symmetric difference must be a small fraction of the set.
		diff := 0
		for k := range got {
			if !base[k] {
				diff++
			}
		}
		for k := range base {
			if !got[k] {
				diff++
			}
		}
		if len(base) > 20 && diff > len(base)/5 {
			t.Fatalf("run %d moved %d/%d faults", run, diff, len(base))
		}
	}
}

func TestRunJitterChangesMarginalCells(t *testing.T) {
	// With jitter scaled up, different runs should occasionally disagree —
	// otherwise Table II's nonzero stddev could never arise.
	d := testDie()
	counts := map[int]bool{}
	for run := uint64(0); run < 30; run++ {
		n := 0
		for s := 0; s < d.NumSites(); s++ {
			n += len(d.ActiveFaults(nil, s, Conditions{V: 0.56, TempC: 50, Run: run, JitterScale: 40}))
		}
		counts[n] = true
	}
	if len(counts) < 2 {
		t.Fatal("scaled jitter produced identical counts across all runs")
	}
}

func TestDieToDieVariation(t *testing.T) {
	cal := testCal()
	sites := grid(10, 20)
	ref := NewDie(cal, cal.ReferenceSerial, sites)
	if ref.DieFactor != 1.0 {
		t.Fatalf("reference die factor = %v", ref.DieFactor)
	}
	other := NewDie(cal, "TEST-9999", sites)
	if other.DieFactor == 1.0 {
		t.Fatal("non-reference die should draw a die factor")
	}
	// Different serials must produce different fault populations.
	if ref.TotalWeakCells() == other.TotalWeakCells() &&
		sameCells(ref, other) {
		t.Fatal("two serials produced identical dies")
	}
}

func TestIntensityMatchesPopulation(t *testing.T) {
	d := testDie()
	for s := 0; s < d.NumSites(); s++ {
		if d.Intensity(s) == 0 && len(d.WeakCells(s)) != 0 {
			t.Fatalf("site %d has zero intensity but %d cells", s, len(d.WeakCells(s)))
		}
	}
}

func TestHeavyTailAcrossSites(t *testing.T) {
	// Fig. 5: the per-BRAM distribution is strongly non-uniform; the hottest
	// site should carry far more than the mean.
	d := testDie()
	var counts []float64
	for s := 0; s < d.NumSites(); s++ {
		counts = append(counts, float64(len(d.WeakCells(s))))
	}
	sum := stats.Summarize(counts)
	if sum.Max < 4*sum.Mean {
		t.Fatalf("distribution not heavy-tailed: max %v mean %v", sum.Max, sum.Mean)
	}
}

func TestRateSlopeDegenerate(t *testing.T) {
	cal := testCal()
	cal.Vmin = cal.Vcrash
	if k := cal.RateSlope(100); k != 1 {
		t.Fatalf("degenerate span slope = %v", k)
	}
	cal = testCal()
	if k := cal.RateSlope(0.5); k != 1 {
		t.Fatalf("degenerate count slope = %v", k)
	}
}

func TestNormFromBitsMoments(t *testing.T) {
	var sum, sumSq float64
	const n = 100000
	for i := uint64(0); i < n; i++ {
		v := NormFromBits(i*0x9e3779b97f4a7c15 + 12345)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normFromBits mean=%v var=%v", mean, variance)
	}
}

func TestVminFallsWithTemperature(t *testing.T) {
	// The paper's ITD corollary: heating the die lowers the effective Vmin.
	d := testDie()
	cold := d.VminAt(50)
	hot := d.VminAt(80)
	if cold <= 0 {
		t.Fatal("no weak cells found")
	}
	if hot >= cold {
		t.Fatalf("Vmin did not fall with temperature: 50C=%v 80C=%v", cold, hot)
	}
	// And it must stay below the calibrated quiet-lab Vmin.
	if cold >= testCal().Vmin {
		t.Fatalf("effective Vmin %v above calibrated boundary %v", cold, testCal().Vmin)
	}
}

func TestVcAt(t *testing.T) {
	c := WeakCell{Vc: 0.58, TempCoeff: 3e-4}
	if got := c.VcAt(50, 50); got != 0.58 {
		t.Fatalf("VcAt(ref) = %v", got)
	}
	if got := c.VcAt(80, 50); math.Abs(got-(0.58-0.009)) > 1e-12 {
		t.Fatalf("VcAt(80) = %v", got)
	}
}

func TestQuickFaultCountMonotoneInVoltage(t *testing.T) {
	// Property: at any temperature, lowering the rail never removes faults
	// (jitter-free view).
	d := testDie()
	cal := testCal()
	f := func(a, b, tRaw float64) bool {
		lo := cal.Vcrash + math.Mod(math.Abs(a), cal.Vmin-cal.Vcrash)
		hi := cal.Vcrash + math.Mod(math.Abs(b), cal.Vmin-cal.Vcrash)
		if lo > hi {
			lo, hi = hi, lo
		}
		temp := 40 + math.Mod(math.Abs(tRaw), 50)
		return d.ExpectedFaultsAt(lo, temp) >= d.ExpectedFaultsAt(hi, temp)
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFaultCountMonotoneInTemperature(t *testing.T) {
	// Property: at any voltage in the critical window, heating never adds
	// faults (ITD).
	d := testDie()
	cal := testCal()
	f := func(vRaw, a, b float64) bool {
		v := cal.Vcrash + math.Mod(math.Abs(vRaw), cal.Vmin-cal.Vcrash)
		t1 := 40 + math.Mod(math.Abs(a), 50)
		t2 := 40 + math.Mod(math.Abs(b), 50)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return d.ExpectedFaultsAt(v, t1) >= d.ExpectedFaultsAt(v, t2)
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

func TestQuickActiveFaultsBounded(t *testing.T) {
	// Property: a read never reports more faults than the site has weak
	// cells, at any conditions.
	d := testDie()
	cal := testCal()
	f := func(siteRaw uint16, vRaw float64, run uint64) bool {
		site := int(siteRaw) % d.NumSites()
		v := cal.Vcrash + math.Mod(math.Abs(vRaw), 0.5)
		got := d.ActiveFaults(nil, site, Conditions{V: v, TempC: 50, Run: run})
		return len(got) <= len(d.WeakCells(site))
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

// quickCheck adapts testing/quick with a fixed budget.
func quickCheck(f any) error {
	return quick.Check(f, &quick.Config{MaxCount: 60})
}

func hottestSite(d *Die) int {
	best, bestN := 0, -1
	for s := 0; s < d.NumSites(); s++ {
		if n := len(d.WeakCells(s)); n > bestN {
			best, bestN = s, n
		}
	}
	return best
}

func faultSet(fs []Fault) map[Fault]bool {
	m := make(map[Fault]bool, len(fs))
	for _, f := range fs {
		m[f] = true
	}
	return m
}

func sameCells(a, b *Die) bool {
	for s := 0; s < a.NumSites(); s++ {
		ca, cb := a.WeakCells(s), b.WeakCells(s)
		if len(ca) != len(cb) {
			return false
		}
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}
