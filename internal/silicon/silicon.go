// Package silicon models the physical mechanism behind the paper's findings:
// undervolting faults in FPGA BRAMs are read-path timing violations whose
// occurrence is governed by per-bitcell critical voltages shaped by process
// variation.
//
// The model reproduces every fault property the paper characterizes in
// Section II:
//
//   - Below Vmin the chip-level fault count grows exponentially as voltage
//     drops, reaching the platform's published faults-per-Mbit at Vcrash
//     (Fig. 3).
//   - ~99.9% of faults are "1"→"0" flips; a fault manifests only when the
//     stored bit has the vulnerable polarity, which yields the data-pattern
//     proportionality of Fig. 4.
//   - Fault locations are a pure function of the die (serial number), not of
//     time, run index, or bitstream: the determinism behind the FVM and ICBP.
//     A small per-read jitter band around each critical voltage produces the
//     slight run-to-run count variation of Table II without moving locations.
//   - Fault counts are heavily non-uniform across BRAMs: a spatially
//     correlated lognormal vulnerability field plus a zero-inflated share of
//     never-faulting BRAMs (Figs. 5, 6).
//   - Two dies of the same family differ (die-to-die variation, Fig. 7 and
//     the 4.1× KC705-A vs KC705-B gap): each board serial derives its own
//     weak-cell population; non-reference serials also draw a die factor.
//   - Higher temperature lowers effective critical voltages (Inverse Thermal
//     Dependence), reducing fault rates with platform-specific strength
//     (Fig. 8).
package silicon

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/prng"
)

// BRAM geometry constants shared across the studied 7-series platforms
// (Table I: each basic BRAM is 1024 rows × 16 columns, 16 Kbit).
const (
	BRAMRows = 1024
	BRAMCols = 16
	BRAMBits = BRAMRows * BRAMCols
)

// BitsPerMbit is the divisor used when the paper reports "faults per 1 Mbit".
const BitsPerMbit = 1 << 20

// ModelVersion identifies the weak-cell population model. It participates in
// every FVM cache and store key (via characterize's option fingerprint), so
// measurements persisted under an older model are re-measured instead of
// being silently served as current.
//
// History: 1 — rejection-sampled exponential critical voltages;
// 2 — inverse-CDF truncated exponential with Vc-sorted storage (the
// voltage-indexed evaluator), which draws different (identically
// distributed) populations for every serial.
const ModelVersion = 2

// Site is the physical location of one BRAM on the die floorplan.
type Site struct {
	X, Y int
}

// Calibration captures the published undervolting behavior of one platform.
// Values are taken from (or chosen consistently with) the paper; see
// DESIGN.md for the calibration table and the derivation of each constant.
type Calibration struct {
	Family          string  // device family, e.g. "Virtex-7"
	ReferenceSerial string  // the paper's board; reproduces the published numbers exactly
	Vnom            float64 // nominal VCCBRAM (1.0 V on all studied boards)
	Vmin            float64 // minimum safe VCCBRAM: no observable faults at or above
	Vcrash          float64 // lowest operating VCCBRAM
	VminInt         float64 // minimum safe VCCINT
	VcrashInt       float64 // lowest operating VCCINT
	FaultsPerMbit   float64 // chip fault rate at Vcrash, pattern 0xFFFF, TempRef
	ZeroFaultFrac   float64 // fraction of BRAMs with no faults even at Vcrash
	HotspotSigma    float64 // lognormal sigma of the per-BRAM vulnerability field
	TempRef         float64 // °C at which FaultsPerMbit holds (on-board default, 50)
	TempCoeff       float64 // V/°C of ITD critical-voltage reduction
	JitterSigma     float64 // V of per-cell per-read critical-voltage jitter
	RippleSigma     float64 // V of per-run common-mode rail ripple (regulator noise)
	Flip01Frac      float64 // share of weak cells flipping 0→1 (paper: ~0.1%)
	DieToDieSigma   float64 // lognormal sigma of the die factor for new serials
}

// RateSlope returns k of the exponential fault-count profile
// N(V) = Ntotal·exp(-k·(V-Vcrash)), chosen so that roughly one weak cell
// remains at Vmin (the definition of the fault-free boundary).
func (c Calibration) RateSlope(totalCells float64) float64 {
	span := c.Vmin - c.Vcrash
	if span <= 0 || totalCells <= 1 {
		return 1
	}
	return math.Log(totalCells) / span
}

// GuardbandBRAM returns the VCCBRAM guardband fraction (Vnom−Vmin)/Vnom.
func (c Calibration) GuardbandBRAM() float64 { return (c.Vnom - c.Vmin) / c.Vnom }

// GuardbandInt returns the VCCINT guardband fraction.
func (c Calibration) GuardbandInt() float64 { return (c.Vnom - c.VminInt) / c.Vnom }

// Region classifies a VCCBRAM level the way Fig. 1 does.
type Region int

// The three operating regions of Fig. 1.
const (
	RegionSafe     Region = iota // no observable faults
	RegionCritical               // faults manifest
	RegionCrash                  // the platform stops operating
)

// String names the region as in Fig. 1.
func (r Region) String() string {
	switch r {
	case RegionSafe:
		return "SAFE"
	case RegionCritical:
		return "CRITICAL"
	case RegionCrash:
		return "CRASH"
	}
	return "UNKNOWN"
}

// RegionOfBRAM classifies a VCCBRAM voltage.
func (c Calibration) RegionOfBRAM(v float64) Region {
	switch {
	case v >= c.Vmin:
		return RegionSafe
	case v >= c.Vcrash:
		return RegionCritical
	default:
		return RegionCrash
	}
}

// RegionOfInt classifies a VCCINT voltage.
func (c Calibration) RegionOfInt(v float64) Region {
	switch {
	case v >= c.VminInt:
		return RegionSafe
	case v >= c.VcrashInt:
		return RegionCritical
	default:
		return RegionCrash
	}
}

// WeakCell is one bitcell whose read-path margin is thin enough to fail
// within the observable voltage window [Vcrash, Vmin).
type WeakCell struct {
	Row        uint16  // bitcell row within the BRAM (0..1023)
	Col        uint8   // bitcell column (0..15)
	Flip01     bool    // true: reads stored "0" as "1"; false: "1" read as "0"
	Vc         float64 // critical voltage at TempRef: read fails when V < Vc(T)
	TempCoeff  float64 // V/°C of this cell's ITD slope
	jitterSeed uint64  // per-cell base for run-indexed read jitter
}

// VcAt returns the cell's effective critical voltage at temperature tempC.
// Higher temperature lowers it (ITD), so fewer cells fail at a given voltage.
func (w WeakCell) VcAt(tempC, tempRef float64) float64 {
	return w.Vc - w.TempCoeff*(tempC-tempRef)
}

// Fault is one manifested bit error during a read.
type Fault struct {
	Site   int // BRAM site index
	Row    uint16
	Col    uint8
	Flip01 bool
}

// Conditions are the environmental parameters of one read pass.
type Conditions struct {
	V           float64 // VCCBRAM in volts
	TempC       float64 // die temperature in °C
	Run         uint64  // run index; jitter is deterministic per (cell, run)
	JitterScale float64 // 1.0 = calibrated noise; >1 models harsher environments
}

// Die is the weak-cell population of one physical chip. It is immutable
// after construction and safe for concurrent reads.
type Die struct {
	Cal       Calibration
	Serial    string
	DieFactor float64 // 1.0 for the reference serial
	Sites     []Site

	cells     [][]WeakCell // indexed by site, sorted by descending Vc
	index     []siteIndex  // per-site evaluation index aligned with cells
	intensity []float64    // expected faults per site at Vcrash/TempRef
	total     float64      // sum of intensity
	rippleKey uint64       // per-die base for run-indexed rail ripple
}

// NewDie grows a die for the given calibration, serial number and floorplan
// sites. The reference serial reproduces the calibrated totals exactly (in
// expectation); any other serial draws a die-to-die factor, modeling a new
// sample of the same platform.
func NewDie(cal Calibration, serial string, sites []Site) *Die {
	d := &Die{Cal: cal, Serial: serial, Sites: sites}
	root := prng.NewKeyed(cal.Family + ":" + serial)

	d.DieFactor = 1.0
	if serial != cal.ReferenceSerial {
		d.DieFactor = root.Derive("die-factor").LogNormal(0, cal.DieToDieSigma)
	}
	d.rippleKey = root.Derive("rail-ripple").Key()

	d.intensity = d.buildVulnerabilityField(root)
	totalCells := cal.FaultsPerMbit * float64(len(sites)*BRAMBits) / BitsPerMbit * d.DieFactor
	sum := 0.0
	for _, v := range d.intensity {
		sum += v
	}
	k := cal.RateSlope(math.Max(totalCells, 2))
	// Keep every weak cell far enough below Vmin that neither per-cell
	// jitter nor rail ripple can surface a fault in the SAFE region.
	margin := math.Max(3*cal.JitterSigma+4*cal.RippleSigma, 0.002)

	d.cells = make([][]WeakCell, len(sites))
	for i, site := range sites {
		if d.intensity[i] <= 0 || sum <= 0 {
			continue
		}
		lambda := totalCells * d.intensity[i] / sum
		d.intensity[i] = lambda
		src := root.DeriveN(uint64(site.X), uint64(site.Y))
		d.cells[i] = growWeakCells(src, cal, lambda, k, margin)
	}
	d.buildIndex()
	d.total = 0
	for _, v := range d.intensity {
		d.total += v
	}
	return d
}

// buildVulnerabilityField returns the relative per-site vulnerability: a
// spatially correlated lognormal field with the lowest ZeroFaultFrac share
// forced to exactly zero (the paper's never-faulting BRAMs).
func (d *Die) buildVulnerabilityField(root *prng.Source) []float64 {
	n := len(d.Sites)
	field := make([]float64, n)
	if n == 0 {
		return field
	}
	minX, maxX := d.Sites[0].X, d.Sites[0].X
	minY, maxY := d.Sites[0].Y, d.Sites[0].Y
	for _, s := range d.Sites {
		minX, maxX = min(minX, s.X), max(maxX, s.X)
		minY, maxY = min(minY, s.Y), max(maxY, s.Y)
	}
	// Coarse Gaussian lattice + bilinear interpolation gives the systematic
	// within-die component; a per-site draw adds the random component.
	const lattice = 7
	nodes := make([][]float64, lattice+1)
	nodeSrc := root.Derive("spatial-field")
	for i := range nodes {
		nodes[i] = make([]float64, lattice+1)
		for j := range nodes[i] {
			nodes[i][j] = nodeSrc.DeriveN(uint64(i), uint64(j)).Norm()
		}
	}
	spanX := float64(maxX-minX) + 1e-9
	spanY := float64(maxY-minY) + 1e-9
	sigma := d.Cal.HotspotSigma
	const systematic = 0.75 // weight of the correlated component
	random := math.Sqrt(1 - systematic*systematic)
	for i, s := range d.Sites {
		fx := float64(s.X-minX) / spanX * lattice
		fy := float64(s.Y-minY) / spanY * lattice
		x0, y0 := int(fx), int(fy)
		tx, ty := fx-float64(x0), fy-float64(y0)
		g := nodes[x0][y0]*(1-tx)*(1-ty) +
			nodes[x0+1][y0]*tx*(1-ty) +
			nodes[x0][y0+1]*(1-tx)*ty +
			nodes[x0+1][y0+1]*tx*ty
		eta := root.DeriveN(uint64(s.X), uint64(s.Y), 0xf1e1d).Norm()
		field[i] = math.Exp(sigma * (systematic*g + random*eta))
	}
	// Force the weakest ZeroFaultFrac of sites to zero vulnerability.
	zeroN := int(math.Round(d.Cal.ZeroFaultFrac * float64(n)))
	if zeroN > 0 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		slices.SortFunc(idx, func(a, b int) int { return cmp.Compare(field[a], field[b]) })
		for _, i := range idx[:zeroN] {
			field[i] = 0
		}
	}
	return field
}

// growWeakCells samples one BRAM's weak-cell population. The returned slice
// is sorted by descending critical voltage — the order the indexed read-path
// evaluator binary-searches (see index.go).
func growWeakCells(src *prng.Source, cal Calibration, lambda, k, margin float64) []WeakCell {
	n := src.Poisson(lambda)
	if n == 0 {
		return nil
	}
	if n > BRAMBits {
		n = BRAMBits // a block cannot hold more weak mechanisms than bitcells
	}
	cells := make([]WeakCell, 0, n)
	// One weak mechanism per bitcell; a 16 Kbit occupancy bitset replaces the
	// old map, which dominated die-construction allocations.
	var occupied [BRAMBits / 64]uint64
	// Critical voltages follow the truncated exponential the rate profile
	// implies: vc = Vcrash + X with X ~ Exp(k) conditioned on X <= span,
	// which keeps every cell at least `margin` below Vmin so neither jitter
	// nor ripple can surface a fault in the SAFE region. Inverse-CDF sampling
	// draws exactly one uniform per cell; the old rejection loop spun forever
	// when span <= 0 (extreme calibrations or large jitter scales).
	span := cal.Vmin - margin - cal.Vcrash
	var truncMass float64
	if span > 0 {
		truncMass = -math.Expm1(-k * span) // P[X <= span] under Exp(k)
	}
	for len(cells) < n {
		row := uint16(src.Intn(BRAMRows))
		col := uint8(src.Intn(BRAMCols))
		bit := uint32(row)<<4 | uint32(col)
		if occupied[bit>>6]&(1<<(bit&63)) != 0 {
			continue
		}
		occupied[bit>>6] |= 1 << (bit & 63)
		vc := cal.Vcrash
		if span > 0 {
			vc -= math.Log1p(-truncMass*src.Float64()) / k
		}
		cells = append(cells, WeakCell{
			Row:        row,
			Col:        col,
			Flip01:     src.Bernoulli(cal.Flip01Frac),
			Vc:         vc,
			TempCoeff:  cal.TempCoeff * (0.8 + 0.4*src.Float64()),
			jitterSeed: src.Uint64(),
		})
	}
	slices.SortFunc(cells, func(a, b WeakCell) int {
		if c := cmp.Compare(b.Vc, a.Vc); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Row, b.Row); c != 0 {
			return c
		}
		return cmp.Compare(a.Col, b.Col)
	})
	return cells
}

// NumSites returns the number of BRAM sites on the die.
func (d *Die) NumSites() int { return len(d.Sites) }

// WeakCells returns the weak-cell population of a site, sorted by descending
// critical voltage (shared slice; do not modify).
func (d *Die) WeakCells(site int) []WeakCell { return d.cells[site] }

// Intensity returns the expected fault count of a site at Vcrash/TempRef.
func (d *Die) Intensity(site int) float64 { return d.intensity[site] }

// TotalWeakCells returns the total weak-cell count of the die.
func (d *Die) TotalWeakCells() int {
	n := 0
	for _, cs := range d.cells {
		n += len(cs)
	}
	return n
}

// RippleAt returns the run's common-mode rail perturbation: the regulator's
// output wanders a fraction of a millivolt between read passes, which moves
// *every* marginal cell together. This correlated noise — not independent
// per-cell jitter — is what produces Table II's run-to-run count spread
// (σ ≈ 1% of the count, far above the √N of independent cells).
func (d *Die) RippleAt(run uint64, scale float64) float64 {
	if scale <= 0 {
		scale = 1
	}
	u := prng.Mix64(d.rippleKey ^ (run * 0xd1342543de82ef95))
	return normFromBits(u) * d.Cal.RippleSigma * scale
}

// ActiveFaultsNaive is the reference fault evaluator: a full linear scan of
// the site's weak cells, each taking the exact per-cell decision. It is
// retained verbatim so the indexed evaluator (ActiveFaults, see index.go) can
// be differentially tested against it; production read paths use the indexed
// one.
func (d *Die) ActiveFaultsNaive(dst []Fault, site int, cond Conditions) []Fault {
	scale := cond.JitterScale
	if scale <= 0 {
		scale = 1
	}
	sigma := d.Cal.JitterSigma * scale
	v := cond.V + d.RippleAt(cond.Run, scale)
	for _, c := range d.cells[site] {
		vc := c.VcAt(cond.TempC, d.Cal.TempRef)
		gap := vc - v // fault when positive (V below effective Vc)
		if gap > 6*sigma {
			dst = append(dst, Fault{Site: site, Row: c.Row, Col: c.Col, Flip01: c.Flip01})
			continue
		}
		if gap < -6*sigma {
			continue
		}
		// Marginal cell: jittered decision, deterministic per (cell, run).
		u := prng.Mix64(c.jitterSeed ^ (cond.Run * 0x9e3779b97f4a7c15))
		jitter := normFromBits(u) * sigma
		if v < vc+jitter {
			dst = append(dst, Fault{Site: site, Row: c.Row, Col: c.Col, Flip01: c.Flip01})
		}
	}
	return dst
}

// expectedFaultsAtNaive is the full-scan reference for ExpectedFaultsAt.
func (d *Die) expectedFaultsAtNaive(v, tempC float64) int {
	n := 0
	for _, cs := range d.cells {
		for _, c := range cs {
			if v < c.VcAt(tempC, d.Cal.TempRef) {
				n++
			}
		}
	}
	return n
}

// vminAtNaive is the full-scan reference for VminAt.
func (d *Die) vminAtNaive(tempC float64) float64 {
	maxVc := 0.0
	for _, cs := range d.cells {
		for _, c := range cs {
			if vc := c.VcAt(tempC, d.Cal.TempRef); vc > maxVc {
				maxVc = vc
			}
		}
	}
	return maxVc
}

// NormFromBits is exported for the model-validation tests.
func NormFromBits(u uint64) float64 { return normFromBits(u) }

// normFromBits converts 64 uniform bits into an approximately standard-normal
// variate using the sum of four 16-bit uniforms (Irwin–Hall, rescaled). The
// approximation is plenty for marginal-cell jitter and avoids transcendental
// calls in the hot read path.
func normFromBits(u uint64) float64 {
	const mean = 4 * 32767.5
	const invStd = 1 / 37837.22 // sqrt(4 * (65536^2-1)/12)
	s := float64(u&0xffff) + float64((u>>16)&0xffff) +
		float64((u>>32)&0xffff) + float64((u>>48)&0xffff)
	return (s - mean) * invStd
}
