// Voltage-indexed fault evaluation.
//
// The naive read-path evaluator (ActiveFaultsNaive) re-scans every weak cell
// of a site on every read, so a full-chip read pass costs O(weak cells) even
// in the SAFE region where nothing can fault — and the fleet engine multiplies
// that by boards × temperatures × runs × voltage steps. This file makes the
// read path O(marginal band) instead.
//
// The key observation: at fixed conditions (V, T, jitter sigma) a cell's
// decision is a pure threshold test on its effective critical voltage
// vcAt = Vc - TempCoeff·(T - TempRef). With cells sorted by descending Vc and
// the per-site ITD slopes bounded (TempCoeff is drawn from
// [0.8, 1.2]·cal.TempCoeff; the index stores each site's actual min/max), two
// binary searches split the site into three ranges:
//
//   - a definitely-faulty prefix (vcAt - v > 6σ for every possible slope),
//     appended via one bulk copy from a precomputed []Fault,
//   - a definitely-safe suffix (vcAt - v < -6σ), skipped entirely,
//   - a marginal band in between, the only cells paying the exact per-cell
//     evaluation (and the jitter draw).
//
// The band thresholds are padded by bandEps so any cell a few floating-point
// ulps from a boundary falls *into* the band and takes the exact naive
// decision; the prefix/suffix classification is conservative by construction
// (monotonicity of multiplication and subtraction under rounding). The result
// is therefore bit-identical to the naive evaluator — enforced by the
// differential tests in diff_test.go.
//
// At SAFE-region and near-Vmin voltage steps (most of every sweep) the band
// is empty and a site evaluation is two binary searches that immediately
// return; at Vcrash the prefix covers nearly every cell and the evaluation is
// one bulk copy. The jitter band itself is exact, not an approximation:
// normFromBits is an Irwin–Hall sum of four uniforms, bounded at ±3.47σ, so
// no draw can escape the ±6σ band.
package silicon

import (
	"sort"

	"repro/internal/prng"
)

// bandEps pads the marginal band's voltage boundaries. It needs only to
// exceed the few-ulp rounding error of the threshold arithmetic (volts are
// O(1), so ulps are O(1e-16)); 1e-9 V is far below any physical scale in the
// model and merely drags a handful of extra cells into the exact evaluation.
const bandEps = 1e-9

// siteIndex is the per-site acceleration structure, built once at die
// construction and immutable afterwards.
type siteIndex struct {
	// faults[i] is the Fault record cell i (in descending-Vc order) produces
	// when active, so the definitely-faulty prefix is appended with one copy.
	faults []Fault
	// tcMin/tcMax bound the site's per-cell ITD slopes, making the effective
	// critical voltage of every cell boundable at any temperature.
	tcMin, tcMax float64
}

// buildIndex precomputes each site's fault records and ITD slope bounds.
// cells must already be sorted by descending Vc (growWeakCells' order).
func (d *Die) buildIndex() {
	d.index = make([]siteIndex, len(d.cells))
	for s, cs := range d.cells {
		if len(cs) == 0 {
			continue
		}
		si := &d.index[s]
		si.faults = make([]Fault, len(cs))
		si.tcMin, si.tcMax = cs[0].TempCoeff, cs[0].TempCoeff
		for i, c := range cs {
			si.faults[i] = Fault{Site: s, Row: c.Row, Col: c.Col, Flip01: c.Flip01}
			si.tcMin = min(si.tcMin, c.TempCoeff)
			si.tcMax = max(si.tcMax, c.TempCoeff)
		}
	}
}

// shiftBounds returns the smallest and largest possible ITD shift
// TempCoeff·delta across the site's cells, for delta = tempC - TempRef of
// either sign. Multiplication is monotone under rounding, so every cell's
// actual shift lies within the returned bounds in float64 arithmetic too.
func (si *siteIndex) shiftBounds(delta float64) (lo, hi float64) {
	a, b := si.tcMin*delta, si.tcMax*delta
	if a > b {
		a, b = b, a
	}
	return a, b
}

// band returns [lo, hi) such that, for cells sorted by descending Vc,
// cells[:lo] satisfy vcAt > vHi - shift for every admissible slope (the
// definitely-above range) and cells[hi:] satisfy vcAt < vLo - shift (the
// definitely-below range). vLo/vHi are the already-shifted, already-padded
// stored-Vc thresholds.
func band(cells []WeakCell, vLo, vHi float64) (lo, hi int) {
	lo = sort.Search(len(cells), func(i int) bool { return cells[i].Vc <= vHi })
	hi = sort.Search(len(cells), func(i int) bool { return cells[i].Vc < vLo })
	return lo, hi
}

// Eval is a resolved per-pass read environment: the run's common-mode rail
// ripple and the jitter sigma are drawn once per pass and shared across every
// site, instead of being re-derived on each site evaluation. Evals are values
// and safe for concurrent use.
type Eval struct {
	d     *Die
	v     float64 // rail voltage plus this run's common-mode ripple
	sigma float64 // jitter band width (JitterSigma · scale)
	tempC float64
	run   uint64
}

// Evaluator resolves the conditions of one read pass.
func (d *Die) Evaluator(cond Conditions) Eval {
	scale := cond.JitterScale
	if scale <= 0 {
		scale = 1
	}
	return Eval{
		d:     d,
		v:     cond.V + d.RippleAt(cond.Run, scale),
		sigma: d.Cal.JitterSigma * scale,
		tempC: cond.TempC,
		run:   cond.Run,
	}
}

// bandFor computes the site's marginal band [lo, hi) under this evaluation.
func (e Eval) bandFor(site int) (lo, hi int, cs []WeakCell, si *siteIndex) {
	cs = e.d.cells[site]
	if len(cs) == 0 {
		return 0, 0, nil, nil
	}
	si = &e.d.index[site]
	shiftLo, shiftHi := si.shiftBounds(e.tempC - e.d.Cal.TempRef)
	// Stored-Vc thresholds: a cell with Vc above vHi faults at every
	// admissible slope and jitter draw; one below vLo can never fault.
	vHi := e.v + 6*e.sigma + shiftHi + bandEps
	vLo := e.v - 6*e.sigma + shiftLo - bandEps
	lo, hi = band(cs, vLo, vHi)
	return lo, hi, cs, si
}

// appendMarginal evaluates the band cells exactly — the same per-cell
// decision the naive evaluator takes — appending the active ones to dst.
func (e Eval) appendMarginal(dst []Fault, cs []WeakCell, si *siteIndex, lo, hi int) []Fault {
	for i := lo; i < hi; i++ {
		c := &cs[i]
		vc := c.VcAt(e.tempC, e.d.Cal.TempRef)
		gap := vc - e.v // fault when positive (V below effective Vc)
		if gap > 6*e.sigma {
			dst = append(dst, si.faults[i])
			continue
		}
		if gap < -6*e.sigma {
			continue
		}
		// Marginal cell: jittered decision, deterministic per (cell, run).
		u := prng.Mix64(c.jitterSeed ^ (e.run * 0x9e3779b97f4a7c15))
		jitter := normFromBits(u) * e.sigma
		if e.v < vc+jitter {
			dst = append(dst, si.faults[i])
		}
	}
	return dst
}

// AppendActive appends every active fault of the site: the definitely-faulty
// prefix via one bulk copy from the precomputed fault records, then the
// active marginal-band cells.
func (e Eval) AppendActive(dst []Fault, site int) []Fault {
	lo, hi, cs, si := e.bandFor(site)
	if cs == nil {
		return dst
	}
	dst = append(dst, si.faults[:lo]...)
	return e.appendMarginal(dst, cs, si, lo, hi)
}

// ActiveBand appends only the active *marginal-band* faults of the site to
// dst and returns the extended slice plus the number of definitely-active
// faults preceding them — the length of the prefix of WeakCells(site) (the
// descending-Vc order) that faults at every admissible jitter draw.
// Count-only read paths use it to resolve the definite prefix from
// precomputed per-site sums without materializing (or even touching) those
// fault records.
func (e Eval) ActiveBand(dst []Fault, site int) (band []Fault, definite int) {
	lo, hi, cs, si := e.bandFor(site)
	if cs == nil {
		return dst, 0
	}
	return e.appendMarginal(dst, cs, si, lo, hi), lo
}

// ActiveFaults appends to dst the faults a read of the whole site would
// observe under the given conditions, and returns the extended slice. The
// result is deterministic in (die, site, conditions) and bit-identical to
// ActiveFaultsNaive (as a set; faults are appended in descending-Vc order).
// Callers evaluating many sites under one set of conditions should hoist the
// Evaluator and use AppendActive directly.
func (d *Die) ActiveFaults(dst []Fault, site int, cond Conditions) []Fault {
	return d.Evaluator(cond).AppendActive(dst, site)
}

// ExpectedFaultsAt returns the deterministic (jitter-free) chip-level fault
// count at the given voltage and temperature — the model's median behavior.
// Identical to the naive full scan, at O(marginal band) per site.
func (d *Die) ExpectedFaultsAt(v, tempC float64) int {
	delta := tempC - d.Cal.TempRef
	n := 0
	for s, cs := range d.cells {
		if len(cs) == 0 {
			continue
		}
		shiftLo, shiftHi := d.index[s].shiftBounds(delta)
		lo, hi := band(cs, v+shiftLo-bandEps, v+shiftHi+bandEps)
		n += lo // definitely above v at every admissible slope
		for i := lo; i < hi; i++ {
			if v < cs[i].VcAt(tempC, d.Cal.TempRef) {
				n++
			}
		}
	}
	return n
}

// VminAt returns the die's effective minimum safe voltage at the given
// temperature: the highest critical voltage of any weak cell. The paper's
// ITD finding implies Vmin falls as temperature rises ("lower Vmin at higher
// temperatures"); this exposes that derived quantity directly. Cells are
// visited in descending-Vc order with an upper-bound early exit, so only the
// top few cells of each site are touched.
func (d *Die) VminAt(tempC float64) float64 {
	delta := tempC - d.Cal.TempRef
	maxVc := 0.0
	for s, cs := range d.cells {
		if len(cs) == 0 {
			continue
		}
		shiftLo, _ := d.index[s].shiftBounds(delta)
		for i := range cs {
			// Vc - shiftLo bounds every remaining vcAt from above.
			if cs[i].Vc-shiftLo <= maxVc {
				break
			}
			if vc := cs[i].VcAt(tempC, d.Cal.TempRef); vc > maxVc {
				maxVc = vc
			}
		}
	}
	return maxVc
}
