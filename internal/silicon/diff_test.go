package silicon

import (
	"math"
	"testing"
	"testing/quick"
)

// diffGrid is the condition grid the differential tests sweep: it straddles
// the crash boundary, the whole critical window, the SAFE region, and a
// stretch above Vmin where only scaled jitter can reach, at the Fig. 8
// temperature range and several jitter scales and run indices.
func diffGrid(cal Calibration) (volts, temps, scales []float64, runs []uint64) {
	for v := cal.Vcrash - 0.02; v <= cal.Vmin+0.025; v += 0.01 {
		volts = append(volts, v)
	}
	temps = []float64{40, 50, 65, 80}
	scales = []float64{0, 1, 10, 40} // 0 exercises the defaulting-to-1 path
	runs = []uint64{0, 1, 7, 9999}
	return
}

// TestDifferentialActiveFaults proves the indexed evaluator returns exactly
// the fault set of the retained naive reference at every grid point of
// (voltage, temperature, jitter scale, run index), on several serials — the
// acceptance property of the voltage-indexed read path.
func TestDifferentialActiveFaults(t *testing.T) {
	cal := testCal()
	for _, serial := range []string{"TEST-0001", "TEST-0002", "TEST-4242"} {
		d := NewDie(cal, serial, grid(8, 12))
		volts, temps, scales, runs := diffGrid(cal)
		for _, v := range volts {
			for _, tempC := range temps {
				for _, js := range scales {
					for _, run := range runs {
						cond := Conditions{V: v, TempC: tempC, Run: run, JitterScale: js}
						for s := 0; s < d.NumSites(); s++ {
							idx := d.ActiveFaults(nil, s, cond)
							ref := d.ActiveFaultsNaive(nil, s, cond)
							if !sameFaultSet(idx, ref) {
								t.Fatalf("serial %s site %d cond %+v: indexed %d faults, naive %d — sets differ",
									serial, s, cond, len(idx), len(ref))
							}
						}
					}
				}
			}
		}
	}
}

// TestQuickDifferentialActiveFaults fuzzes the same property over arbitrary
// conditions, including voltages far outside the physical window.
func TestQuickDifferentialActiveFaults(t *testing.T) {
	d := testDie()
	f := func(siteRaw uint16, vRaw, tRaw, jRaw float64, run uint64) bool {
		site := int(siteRaw) % d.NumSites()
		cond := Conditions{
			V:           0.3 + math.Mod(math.Abs(vRaw), 0.8),
			TempC:       20 + math.Mod(math.Abs(tRaw), 80),
			JitterScale: math.Mod(math.Abs(jRaw), 60),
			Run:         run,
		}
		return sameFaultSet(d.ActiveFaults(nil, site, cond), d.ActiveFaultsNaive(nil, site, cond))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialExpectedFaultsAt pins the banded ExpectedFaultsAt to the
// full-scan reference across the voltage/temperature grid.
func TestDifferentialExpectedFaultsAt(t *testing.T) {
	cal := testCal()
	for _, serial := range []string{"TEST-0001", "TEST-0002"} {
		d := NewDie(cal, serial, grid(8, 12))
		volts, temps, _, _ := diffGrid(cal)
		for _, v := range volts {
			for _, tempC := range temps {
				if got, want := d.ExpectedFaultsAt(v, tempC), d.expectedFaultsAtNaive(v, tempC); got != want {
					t.Fatalf("serial %s ExpectedFaultsAt(%v, %v) = %d, naive %d", serial, v, tempC, got, want)
				}
			}
		}
	}
}

// TestDifferentialVminAt pins the early-exit VminAt to the full-scan
// reference, bit for bit.
func TestDifferentialVminAt(t *testing.T) {
	cal := testCal()
	for _, serial := range []string{"TEST-0001", "TEST-0002"} {
		d := NewDie(cal, serial, grid(8, 12))
		for _, tempC := range []float64{20, 40, 50, 65, 80, 95} {
			if got, want := d.VminAt(tempC), d.vminAtNaive(tempC); got != want {
				t.Fatalf("serial %s VminAt(%v) = %v, naive %v", serial, tempC, got, want)
			}
		}
	}
}

// TestWeakCellsSortedByVc asserts the storage invariant the binary searches
// rely on.
func TestWeakCellsSortedByVc(t *testing.T) {
	d := testDie()
	for s := 0; s < d.NumSites(); s++ {
		cs := d.WeakCells(s)
		for i := 1; i < len(cs); i++ {
			if cs[i].Vc > cs[i-1].Vc {
				t.Fatalf("site %d cells not sorted by descending Vc at %d: %v > %v",
					s, i, cs[i].Vc, cs[i-1].Vc)
			}
		}
	}
}

// TestGrowWeakCellsDegenerateWindowTerminates covers the former unbounded
// rejection loop: when Vmin - margin <= Vcrash there is no room for the
// truncated exponential, and construction must still terminate (with every
// cell pinned at Vcrash).
func TestGrowWeakCellsDegenerateWindowTerminates(t *testing.T) {
	cal := testCal()
	cal.Vmin = cal.Vcrash + 1e-4 // margin (>= 2 mV) swallows the whole window
	d := NewDie(cal, "TEST-DEGEN", grid(4, 4))
	for s := 0; s < d.NumSites(); s++ {
		for _, c := range d.WeakCells(s) {
			if c.Vc != cal.Vcrash {
				t.Fatalf("degenerate window produced Vc %v, want Vcrash %v", c.Vc, cal.Vcrash)
			}
		}
	}
	// Large jitter scales widen the margin the same way; a huge JitterSigma
	// must not hang construction either.
	cal = testCal()
	cal.JitterSigma = 1.0
	_ = NewDie(cal, "TEST-JITTER", grid(2, 2))
}

// TestTruncatedExponentialShape checks the inverse-CDF sampler still produces
// the calibrated exponential profile: cells bounded inside the window and an
// exponentially decaying count-vs-voltage curve (the Fig. 3 mechanism).
func TestTruncatedExponentialShape(t *testing.T) {
	d := testDie()
	cal := testCal()
	below := 0
	total := 0
	for s := 0; s < d.NumSites(); s++ {
		for _, c := range d.WeakCells(s) {
			total++
			if c.Vc < cal.Vcrash || c.Vc >= cal.Vmin {
				t.Fatalf("Vc %v escaped [Vcrash, Vmin)", c.Vc)
			}
			if c.Vc < cal.Vcrash+(cal.Vmin-cal.Vcrash)/4 {
				below++
			}
		}
	}
	if total == 0 {
		t.Fatal("no weak cells")
	}
	// The exponential packs most of the mass into the bottom quarter of the
	// window (1 - e^{-k·span/4} with k·span = ln(totalCells) ≈ 8 gives ~86%).
	if frac := float64(below) / float64(total); frac < 0.6 {
		t.Fatalf("only %.0f%% of cells in the bottom quarter of the window; distribution not exponential", frac*100)
	}
}

func sameFaultSet(a, b []Fault) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[Fault]int, len(a))
	for _, f := range a {
		m[f]++
	}
	for _, f := range b {
		m[f]--
		if m[f] < 0 {
			return false
		}
	}
	return true
}
