package board

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"testing"

	"repro/internal/bram"
	"repro/internal/platform"
	"repro/internal/prng"
	"repro/internal/thermal"
)

// testBoard returns a scaled-down VC707 for fast tests.
func testBoard() *Board {
	return New(platform.VC707().Scaled(120))
}

func TestNewBoardDefaults(t *testing.T) {
	b := testBoard()
	if !b.Operating() || !b.Done() {
		t.Fatal("fresh board should be operating")
	}
	if b.VCCBRAM() != 1.0 || b.VCCINT() != 1.0 {
		t.Fatalf("rails not nominal: %v / %v", b.VCCBRAM(), b.VCCINT())
	}
	if got := b.OnBoardTempC(); math.Abs(got-thermal.DefaultOnBoardC) > 0.5 {
		t.Fatalf("default on-board temp = %v, want ~50", got)
	}
}

func TestPMBusRoundTripOnRails(t *testing.T) {
	b := testBoard()
	if err := b.SetVCCBRAM(0.61); err != nil {
		t.Fatal(err)
	}
	got, err := b.Ctl.ReadVout(PageVCCBRAM)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.61) > 0.001 {
		t.Fatalf("ReadVout = %v", got)
	}
}

func TestNoFaultsInSafeRegion(t *testing.T) {
	b := testBoard()
	b.FillAll(0xFFFF)
	buf := make([]uint16, bram.Rows)
	for _, v := range []float64{1.0, 0.80, b.Platform.Cal.Vmin} {
		if err := b.SetVCCBRAM(v); err != nil {
			t.Fatal(err)
		}
		run := b.BeginRun()
		for site := 0; site < b.Pool.Len(); site++ {
			if err := b.ReadBRAMInto(buf, site, run); err != nil {
				t.Fatal(err)
			}
			for r, w := range buf {
				if w != 0xFFFF {
					t.Fatalf("fault at %v V, site %d row %d: %#x", v, site, r, w)
				}
			}
		}
	}
}

func TestFaultsAppearBelowVmin(t *testing.T) {
	b := testBoard()
	b.FillAll(0xFFFF)
	if err := b.SetVCCBRAM(b.Platform.Cal.Vcrash); err != nil {
		t.Fatal(err)
	}
	run := b.BeginRun()
	buf := make([]uint16, bram.Rows)
	faults := 0
	for site := 0; site < b.Pool.Len(); site++ {
		if err := b.ReadBRAMInto(buf, site, run); err != nil {
			t.Fatal(err)
		}
		for _, w := range buf {
			if w != 0xFFFF {
				for i := 0; i < 16; i++ {
					if w&(1<<i) == 0 {
						faults++
					}
				}
			}
		}
	}
	if faults == 0 {
		t.Fatal("no faults at Vcrash with all-ones pattern")
	}
}

func TestStoredDataUnaffected(t *testing.T) {
	// Undervolting corrupts reads, not storage: raising the rail back must
	// return clean data with no reconfiguration.
	b := testBoard()
	b.FillAll(0xFFFF)
	if err := b.SetVCCBRAM(b.Platform.Cal.Vcrash); err != nil {
		t.Fatal(err)
	}
	_ = b.BeginRun()
	if err := b.SetVCCBRAM(1.0); err != nil {
		t.Fatal(err)
	}
	buf := make([]uint16, bram.Rows)
	run := b.BeginRun()
	for site := 0; site < b.Pool.Len(); site++ {
		if err := b.ReadBRAMInto(buf, site, run); err != nil {
			t.Fatal(err)
		}
		for _, w := range buf {
			if w != 0xFFFF {
				t.Fatal("stored data was corrupted by undervolting")
			}
		}
	}
}

func TestCrashLatchAndReconfigure(t *testing.T) {
	b := testBoard()
	crash := b.Platform.Cal.Vcrash
	if err := b.SetVCCBRAM(crash - 0.02); err != nil {
		t.Fatal(err)
	}
	if b.Done() {
		t.Fatal("DONE should drop below Vcrash")
	}
	buf := make([]uint16, bram.Rows)
	if err := b.ReadBRAMInto(buf, 0, 1); err == nil {
		t.Fatal("reads must fail when crashed")
	}
	// Raising voltage alone is not enough: the latch is sticky.
	if err := b.SetVCCBRAM(1.0); err != nil {
		t.Fatal(err)
	}
	if b.Done() {
		t.Fatal("crash latch should persist until reconfiguration")
	}
	b.Configure()
	if !b.Done() {
		t.Fatal("reconfiguration should restore DONE")
	}
}

func TestVCCINTCrashAlsoLatches(t *testing.T) {
	b := testBoard()
	if err := b.SetVCCINT(b.Platform.Cal.VcrashInt - 0.02); err != nil {
		t.Fatal(err)
	}
	if b.Done() {
		t.Fatal("VCCINT crash should drop DONE")
	}
}

func TestStreamBRAMWirePath(t *testing.T) {
	b := testBoard()
	b.FillAll(0xA5A5)
	fr, err := b.StreamBRAM(3, b.BeginRun())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Site != 3 || len(fr.Rows) != bram.Rows {
		t.Fatalf("frame shape: site=%d rows=%d", fr.Site, len(fr.Rows))
	}
	for _, w := range fr.Rows {
		if w != 0xA5A5 {
			t.Fatalf("wire corrupted word %#x", w)
		}
	}
	if b.Link.FramesMoved != 1 || b.Link.BytesMoved == 0 {
		t.Fatal("link accounting missing")
	}
}

func TestLinkReliableUnderUndervolting(t *testing.T) {
	// The paper validates the serial interface is unaffected by VCCBRAM
	// undervolting: frames must decode cleanly at any level.
	b := testBoard()
	b.FillAll(0x0000)
	if err := b.SetVCCBRAM(b.Platform.Cal.Vcrash); err != nil {
		t.Fatal(err)
	}
	if _, err := b.StreamBRAM(0, b.BeginRun()); err != nil {
		t.Fatalf("link failed under undervolting: %v", err)
	}
}

func TestLogicSelfTest(t *testing.T) {
	b := testBoard()
	n, err := b.LogicSelfTestErrors(1)
	if err != nil || n != 0 {
		t.Fatalf("errors at nominal = %d, %v", n, err)
	}
	if err := b.SetVCCINT(b.Platform.Cal.VminInt - 0.02); err != nil {
		t.Fatal(err)
	}
	mid, err := b.LogicSelfTestErrors(1)
	if err != nil || mid <= 0 {
		t.Fatalf("errors below VminInt = %d, %v", mid, err)
	}
	if err := b.SetVCCINT(b.Platform.Cal.VcrashInt); err != nil {
		t.Fatal(err)
	}
	deep, err := b.LogicSelfTestErrors(1)
	if err != nil || deep <= mid {
		t.Fatalf("errors must grow toward crash: %d -> %d", mid, deep)
	}
}

func TestPowerDropsWithVoltage(t *testing.T) {
	b := testBoard()
	pNom := b.BRAMPowerW()
	if err := b.SetVCCBRAM(b.Platform.Cal.Vmin); err != nil {
		t.Fatal(err)
	}
	pMin := b.BRAMPowerW()
	if pNom/pMin < 10 {
		t.Fatalf("BRAM power reduction = %.1fx, want >10x", pNom/pMin)
	}
	meterNom := b.MeasureTotalPowerW(50)
	if meterNom <= 0 {
		t.Fatal("meter reading not positive")
	}
}

func TestSetOnBoardTemp(t *testing.T) {
	b := testBoard()
	for _, want := range []float64{50, 60, 70, 80} {
		b.SetOnBoardTemp(want)
		if got := b.OnBoardTempC(); math.Abs(got-want) > 0.75 {
			t.Fatalf("on-board temp = %v, want %v", got, want)
		}
	}
}

func TestTemperatureReducesObservedFaults(t *testing.T) {
	b := testBoard()
	b.FillAll(0xFFFF)
	if err := b.SetVCCBRAM(b.Platform.Cal.Vcrash); err != nil {
		t.Fatal(err)
	}
	count := func() int {
		buf := make([]uint16, bram.Rows)
		run := b.BeginRun()
		n := 0
		for site := 0; site < b.Pool.Len(); site++ {
			if err := b.ReadBRAMInto(buf, site, run); err != nil {
				t.Fatal(err)
			}
			for _, w := range buf {
				if w != 0xFFFF {
					n++
				}
			}
		}
		return n
	}
	b.SetOnBoardTemp(50)
	cold := count()
	b.SetOnBoardTemp(80)
	hot := count()
	if cold == 0 {
		t.Fatal("no faults at 50C")
	}
	if hot >= cold {
		t.Fatalf("ITD violated on board path: cold=%d hot=%d", cold, hot)
	}
}

func TestHarshEnvironmentFaultsAboveVmin(t *testing.T) {
	// Section II-B: "repeating these tests in more noisy and harsh
	// environments can cause observable faults above observed Vmin".
	// Cranking the environment-noise scale widens both the per-cell jitter
	// band and the rail ripple, surfacing faults at the quiet-lab Vmin.
	b := testBoard()
	b.FillAll(0xFFFF)
	if err := b.SetVCCBRAM(b.Platform.Cal.Vmin); err != nil {
		t.Fatal(err)
	}
	count := func() int {
		buf := make([]uint16, bram.Rows)
		n := 0
		for run := 0; run < 10; run++ {
			r := b.BeginRun()
			for site := 0; site < b.Pool.Len(); site++ {
				if err := b.ReadBRAMInto(buf, site, r); err != nil {
					t.Fatal(err)
				}
				for _, w := range buf {
					if w != 0xFFFF {
						n++
					}
				}
			}
		}
		return n
	}
	quiet := count()
	if quiet != 0 {
		t.Fatalf("quiet lab shows %d faults at Vmin", quiet)
	}
	b.SetEnvironmentNoise(60)
	if harsh := count(); harsh == 0 {
		t.Fatal("harsh environment produced no faults at Vmin")
	}
	// Restore sanity.
	b.SetEnvironmentNoise(1)
	if again := count(); again != 0 {
		t.Fatalf("noise scale did not restore: %d faults", again)
	}
}

func TestReaderMatchesBoardRead(t *testing.T) {
	// Concurrent-reader path must return byte-identical data to the serial
	// board path under identical conditions.
	b := testBoard()
	b.FillAll(0xFFFF)
	if err := b.SetVCCBRAM(b.Platform.Cal.Vcrash); err != nil {
		t.Fatal(err)
	}
	run := b.BeginRun()
	r := b.NewReader()
	a := make([]uint16, bram.Rows)
	c := make([]uint16, bram.Rows)
	for site := 0; site < b.Pool.Len(); site += 7 {
		if err := b.ReadBRAMInto(a, site, run); err != nil {
			t.Fatal(err)
		}
		if err := r.ReadInto(c, site, run); err != nil {
			t.Fatal(err)
		}
		for row := range a {
			if a[row] != c[row] {
				t.Fatalf("site %d row %d: board %#x reader %#x", site, row, a[row], c[row])
			}
		}
	}
}

func TestReadBRAMIntoShortBuffer(t *testing.T) {
	b := testBoard()
	if err := b.ReadBRAMInto(make([]uint16, 10), 0, 1); err == nil {
		t.Fatal("short buffer should error")
	}
}

func TestFrameCodecDetectsCorruption(t *testing.T) {
	l := NewLink(0)
	wire := l.Encode(Frame{Site: 7, Rows: []uint16{1, 2, 3}})
	if _, err := l.Decode(wire); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	wire[5] ^= 0x40
	if _, err := l.Decode(wire); err == nil {
		t.Fatal("corrupted frame accepted")
	}
	if _, err := l.Decode(wire[:4]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestTransferSeconds(t *testing.T) {
	l := NewLink(921600)
	sec := l.TransferSeconds(921600)
	if math.Abs(sec-10) > 1e-9 {
		t.Fatalf("transfer time = %v, want 10s (10 bits/byte)", sec)
	}
}

// countViaReadout is the reference for the count-only path: a full readout
// plus row-by-row compare, exactly what scanPool did before the count path.
func countViaReadout(t *testing.T, b *Board, site int, run uint64) (total, f10, f01 int) {
	t.Helper()
	buf := make([]uint16, bram.Rows)
	if err := b.ReadBRAMInto(buf, site, run); err != nil {
		t.Fatal(err)
	}
	blk := b.Pool.Block(site)
	for row := 0; row < bram.Rows; row++ {
		stored := blk.ReadRaw(row)
		got := buf[row]
		f10 += bits.OnesCount16(stored &^ got)
		f01 += bits.OnesCount16(got &^ stored)
	}
	return f10 + f01, f10, f01
}

// fillBoard applies one of the equivalence-test fill patterns.
func fillBoard(b *Board, name string) {
	switch name {
	case "uniform-ffff":
		b.FillAll(0xFFFF)
	case "uniform-0000":
		// Adversarial for 1→0 faults: none can manifest on stored zeros.
		b.FillAll(0x0000)
	case "random":
		src := prng.NewKeyed("count-equivalence-fill")
		b.FillAllFunc(func(site, row int) uint16 { return uint16(src.Uint64()) })
	case "mask-all":
		// Fully adversarial: store the non-vulnerable polarity at every weak
		// cell, so every active fault is invisible to a readout compare.
		b.FillAll(0xAAAA)
		for site := 0; site < b.Pool.Len(); site++ {
			blk := b.Pool.Block(site)
			for _, c := range b.Die.WeakCells(site) {
				w := blk.ReadRaw(int(c.Row))
				if c.Flip01 {
					w |= 1 << c.Col // stored 1 hides a 0→1 flip
				} else {
					w &^= 1 << c.Col // stored 0 hides a 1→0 flip
				}
				blk.Write(int(c.Row), w)
			}
		}
	case "expose-all":
		// The inverse: every weak cell stores its vulnerable polarity, so
		// every active fault is observable.
		b.FillAll(0x5555)
		for site := 0; site < b.Pool.Len(); site++ {
			blk := b.Pool.Block(site)
			for _, c := range b.Die.WeakCells(site) {
				w := blk.ReadRaw(int(c.Row))
				if c.Flip01 {
					w &^= 1 << c.Col
				} else {
					w |= 1 << c.Col
				}
				blk.Write(int(c.Row), w)
			}
		}
	}
}

// TestCountPathMatchesReadoutPath proves the count-only read path reports
// exactly the totals a full readout-and-compare observes, for uniform,
// random, and adversarial fills across the whole voltage window.
func TestCountPathMatchesReadoutPath(t *testing.T) {
	fills := []string{"uniform-ffff", "uniform-0000", "random", "mask-all", "expose-all"}
	for _, fill := range fills {
		b := testBoard()
		fillBoard(b, fill)
		cal := b.Platform.Cal
		for _, v := range []float64{cal.Vnom, cal.Vmin, cal.Vmin - 0.02, cal.Vcrash + 0.02, cal.Vcrash} {
			if err := b.SetVCCBRAM(v); err != nil {
				t.Fatal(err)
			}
			run := b.BeginRun()
			perSite := make([]int, b.Pool.Len())
			gotTotal, got10, got01, err := b.CountFaultsInto(perSite, run)
			if err != nil {
				t.Fatal(err)
			}
			reader := b.NewReader()
			wantTotal, want10, want01 := 0, 0, 0
			for site := 0; site < b.Pool.Len(); site++ {
				n, f10, f01 := countViaReadout(t, b, site, run)
				wantTotal += n
				want10 += f10
				want01 += f01
				cn, c10, c01, err := reader.CountInto(site, run)
				if err != nil {
					t.Fatal(err)
				}
				if cn != n || c10 != f10 || c01 != f01 {
					t.Fatalf("fill %s v=%v site %d: CountInto (%d,%d,%d) != readout (%d,%d,%d)",
						fill, v, site, cn, c10, c01, n, f10, f01)
				}
				if perSite[site] != n {
					t.Fatalf("fill %s v=%v site %d: perSite %d != readout %d", fill, v, site, perSite[site], n)
				}
			}
			if gotTotal != wantTotal || got10 != int64(want10) || got01 != int64(want01) {
				t.Fatalf("fill %s v=%v: CountFaultsInto (%d,%d,%d) != readout (%d,%d,%d)",
					fill, v, gotTotal, got10, got01, wantTotal, want10, want01)
			}
			if fill == "mask-all" && gotTotal != 0 {
				t.Fatalf("mask-all fill observed %d faults, want 0", gotTotal)
			}
		}
		if err := b.SetVCCBRAM(b.Platform.Cal.Vnom); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCountFaultsIntoErrors covers the not-operating and short-slice paths.
func TestCountFaultsIntoErrors(t *testing.T) {
	b := testBoard()
	if _, _, _, err := b.CountFaultsInto(make([]int, 1), b.BeginRun()); err == nil {
		t.Fatal("short perSite accepted")
	}
	if err := b.SetVCCBRAM(b.Platform.Cal.Vcrash - 0.01); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := b.CountFaultsInto(nil, b.BeginRun()); !errors.Is(err, ErrNotOperating) {
		t.Fatalf("crashed board CountFaultsInto err = %v", err)
	}
	r := b.NewReader()
	if _, _, _, err := r.CountInto(0, 1); !errors.Is(err, ErrNotOperating) {
		t.Fatalf("crashed board CountInto err = %v", err)
	}
}

// TestCountsDeltaMatchesFullRebuild is the differential test for the
// content-delta prefix-sum path: a board mutated by single-word writes (which
// refresh its fault counts via the dirty-row delta) must report exactly the
// counts of a twin board holding identical contents written in bulk (which
// always rebuilds from scratch), and both must match an independent
// readout-and-compare. The schedule exercises the delta's edge cases: writes
// that flip observability back and forth, rows with no weak cells, dirty-feed
// overflow, and bulk fills interleaved with deltas.
func TestCountsDeltaMatchesFullRebuild(t *testing.T) {
	delta, full := testBoard(), testBoard() // same serial: identical dies
	cal := delta.Platform.Cal
	src := prng.NewKeyed("counts-delta-differential")
	sites := delta.Pool.Len()

	// mirror copies delta's exact contents onto full via the bulk path, so
	// full's next count pass rebuilds its prefix sums from scratch.
	mirror := func() {
		full.FillAllFunc(func(site, row int) uint16 {
			return delta.Pool.Block(site).ReadRaw(row)
		})
	}
	compare := func(step string) {
		t.Helper()
		runD, runF := delta.BeginRun(), full.BeginRun()
		if runD != runF {
			t.Fatalf("%s: run counters diverged (%d vs %d)", step, runD, runF)
		}
		perD := make([]int, sites)
		perF := make([]int, sites)
		dTot, d10, d01, err := delta.CountFaultsInto(perD, runD)
		if err != nil {
			t.Fatal(err)
		}
		fTot, f10, f01, err := full.CountFaultsInto(perF, runF)
		if err != nil {
			t.Fatal(err)
		}
		if dTot != fTot || d10 != f10 || d01 != f01 {
			t.Fatalf("%s: delta path (%d,%d,%d) != full rebuild (%d,%d,%d)",
				step, dTot, d10, d01, fTot, f10, f01)
		}
		for s := range perD {
			if perD[s] != perF[s] {
				t.Fatalf("%s: site %d delta %d != full %d", step, s, perD[s], perF[s])
			}
		}
		// Independent reference on a sampled site: snapshot and compare.
		s := int(src.Uint64() % uint64(sites))
		n, _, _ := countViaReadout(t, delta, s, runD)
		if n != perD[s] {
			t.Fatalf("%s: site %d delta count %d != readout %d", step, s, perD[s], n)
		}
	}

	for _, v := range []float64{cal.Vmin - 0.02, cal.Vcrash + 0.02} {
		if err := delta.SetVCCBRAM(v); err != nil {
			t.Fatal(err)
		}
		if err := full.SetVCCBRAM(v); err != nil {
			t.Fatal(err)
		}
		// Small batches of random single-word writes: the delta path proper.
		for step := 0; step < 8; step++ {
			for i := 0; i < 12; i++ {
				site := int(src.Uint64() % uint64(sites))
				row := int(src.Uint64() % bram.Rows)
				delta.Pool.Block(site).Write(row, uint16(src.Uint64()))
			}
			mirror()
			compare(fmt.Sprintf("v=%.2f batch %d", v, step))
		}
		// Flip one weak cell's stored polarity back and forth so its
		// observability toggles 1→0→1 across refreshes.
		if cells := delta.Die.WeakCells(0); len(cells) > 0 {
			c := cells[0]
			blk := delta.Pool.Block(0)
			for i := 0; i < 2; i++ {
				blk.Write(int(c.Row), blk.ReadRaw(int(c.Row))^(1<<c.Col))
				mirror()
				compare(fmt.Sprintf("v=%.2f weak-cell toggle %d", v, i))
			}
		}
		// A burst past the dirty-feed bound forces the overflow fallback.
		blk := delta.Pool.Block(1 % sites)
		for row := 0; row < 3*bram.Rows/4; row++ {
			blk.Write(row, uint16(src.Uint64()))
		}
		mirror()
		compare(fmt.Sprintf("v=%.2f overflow burst", v))
		// Bulk fill, then more deltas on top of the rebuilt sums.
		delta.FillAll(0xAAAA)
		full.FillAll(0xAAAA)
		for i := 0; i < 12; i++ {
			site := int(src.Uint64() % uint64(sites))
			row := int(src.Uint64() % bram.Rows)
			delta.Pool.Block(site).Write(row, uint16(src.Uint64()))
		}
		mirror()
		compare(fmt.Sprintf("v=%.2f post-fill deltas", v))
	}
}
