// Package board assembles the full experimental rig of Fig. 2: the FPGA chip
// (BRAM pool + silicon fault model), the PMBus-controlled UCD9248 voltage
// regulator, the serial readout link, the JTAG configuration port with its
// DONE pin, the heat chamber, and the external power meter.
//
// The host side of every experiment talks to a Board exactly the way the
// paper's host talks to its platforms: PMBus commands to move VCCBRAM,
// serial frames to retrieve BRAM contents, the DONE pin to detect crash.
package board

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bram"
	"repro/internal/platform"
	"repro/internal/pmbus"
	"repro/internal/power"
	"repro/internal/silicon"
	"repro/internal/thermal"
	"repro/internal/voltage"
)

// PMBus pages of the regulator rails, fixed across the studied boards.
const (
	PageVCCINT  = 0
	PageVCCBRAM = 1
	PageVCCAUX  = 2
)

// RegulatorAddr is the PMBus address of the UCD9248 on the studied boards.
const RegulatorAddr = 0x34

// LinkProbeRun is the reserved run index link-fidelity probes read under.
// BeginRun hands out 1, 2, 3, …, so a probe on this index can never alias
// the jitter and ripple draws of a numbered measurement pass.
const LinkProbeRun = ^uint64(0)

// ErrNotOperating is returned when the design is not running: the board is
// unconfigured, crashed (DONE unset), or a rail sits below its crash level.
var ErrNotOperating = errors.New("board: design not operating (DONE unset)")

// Board is one assembled test platform.
type Board struct {
	Platform platform.Platform
	Die      *silicon.Die
	Pool     *bram.Pool
	Reg      *voltage.Regulator
	Bus      *pmbus.Bus
	Ctl      *pmbus.Controller
	Chamber  *thermal.Chamber
	Link     *Link
	Meter    *power.Meter
	PowerMod power.Model

	thermals      thermal.BoardThermals
	onBoardTarget float64 // closed-loop chamber setpoint for the sensor
	configured    bool
	crashed       bool
	runCounter    uint64
	jitterScale   float64
	scratch       []silicon.Fault
	counts        []siteCounts // per-site observable-fault prefix sums
	eval          evalMemo     // Board read methods' pass-evaluation memo

	// env caches the electrical snapshot reads run under; it is refreshed on
	// every rail/chamber change so the hot read path stays allocation-free
	// and safe for concurrent Readers.
	env silicon.Conditions
}

// New assembles a board for the given platform, configured with the
// characterization design and all rails at nominal.
func New(p platform.Platform) *Board {
	sites := p.Sites()
	b := &Board{
		Platform: p,
		Die:      silicon.NewDie(p.Cal, p.Serial, sites),
		Pool:     bram.NewPool(sites),
		Reg: voltage.NewRegulator(p.Serial,
			voltage.Rail{Name: "VCCINT", Nominal: p.Cal.Vnom, Min: 0.40, Max: 1.10},
			voltage.Rail{Name: "VCCBRAM", Nominal: p.Cal.Vnom, Min: 0.40, Max: 1.10},
			voltage.Rail{Name: "VCCAUX", Nominal: 1.80, Min: 1.60, Max: 2.00},
		),
		Bus:         pmbus.NewBus(),
		Chamber:     thermal.NewChamber(thermal.DefaultOnBoardC - 5),
		Link:        NewLink(921600),
		Meter:       power.NewMeter(p.Name+":"+p.Serial, p.MeterOverheadW, 0.01),
		PowerMod:    power.DefaultModel(),
		thermals:    thermal.BoardThermals{ThetaJA: p.ThetaJA},
		jitterScale: 1.0,
	}
	b.counts = make([]siteCounts, len(sites))
	b.Bus.Attach(RegulatorAddr, b.Reg)
	b.Ctl = pmbus.NewController(b.Bus, RegulatorAddr)
	b.Reg.BindSensors(b.OnBoardTempC, func(page int) float64 {
		return b.railPowerW(page)
	})
	// Hold the default on-board temperature of 50 degC.
	b.onBoardTarget = thermal.DefaultOnBoardC
	b.Configure()
	b.refreshEnv()
	return b
}

// refreshEnv re-trims the chamber to hold the on-board setpoint at the
// current power draw (a real heat chamber regulates in closed loop — without
// this, undervolting would cool the die and the ITD response would shift
// every critical voltage), then recomputes the cached read-path conditions.
func (b *Board) refreshEnv() {
	b.Chamber.SetTarget(b.thermals.AirForOnBoard(b.onBoardTarget, b.chipPowerW()))
	b.env = silicon.Conditions{
		V:           b.VCCBRAM(),
		TempC:       b.OnBoardTempC(),
		JitterScale: b.jitterScale,
	}
}

// Configure loads the characterization bitstream over JTAG: BRAMs are
// zeroed, the DONE pin rises, and the crash latch clears.
func (b *Board) Configure() {
	b.Pool.FillAll(0)
	b.configured = true
	b.crashed = false
	b.runCounter = 0
}

// SoftReset clears the run counter without reloading the bitstream — the
// "soft reset" between voltage steps in Listing 1.
func (b *Board) SoftReset() { b.runCounter = 0 }

// Done reports the JTAG DONE pin: high only when a bitstream is loaded and
// the chip has not crashed. Below Vcrash the paper observes DONE unset.
func (b *Board) Done() bool {
	b.refreshCrashLatch()
	return b.configured && !b.crashed
}

// Operating reports whether the design is currently running.
func (b *Board) Operating() bool { return b.Done() }

// refreshCrashLatch trips the crash latch when either on-chip rail sits
// below its crash level. The latch is sticky: recovery requires raising the
// rails and reconfiguring, as on the real boards.
func (b *Board) refreshCrashLatch() {
	if b.VCCBRAM() < b.Platform.Cal.Vcrash-1e-9 || b.VCCINT() < b.Platform.Cal.VcrashInt-1e-9 {
		b.crashed = true
	}
}

// VCCBRAM returns the current BRAM rail setpoint.
func (b *Board) VCCBRAM() float64 { return b.Reg.Setpoint(PageVCCBRAM) }

// VCCINT returns the current internal-logic rail setpoint.
func (b *Board) VCCINT() float64 { return b.Reg.Setpoint(PageVCCINT) }

// SetVCCBRAM programs the BRAM rail through the full PMBus path.
func (b *Board) SetVCCBRAM(v float64) error {
	if err := b.Ctl.SetVout(PageVCCBRAM, v); err != nil {
		return err
	}
	b.refreshCrashLatch()
	b.refreshEnv()
	return nil
}

// SetVCCINT programs the internal rail through the full PMBus path.
func (b *Board) SetVCCINT(v float64) error {
	if err := b.Ctl.SetVout(PageVCCINT, v); err != nil {
		return err
	}
	b.refreshCrashLatch()
	b.refreshEnv()
	return nil
}

// SetOnBoardTemp programs the heat chamber's closed-loop setpoint: the
// chamber holds the on-board sensor at the requested temperature across
// rail changes (the Fig. 8 procedure).
func (b *Board) SetOnBoardTemp(tempC float64) {
	b.onBoardTarget = tempC
	b.refreshEnv()
}

// OnBoardTempC returns the true on-board temperature (the PMBus sensor adds
// its 0.5 degC quantization on top).
func (b *Board) OnBoardTempC() float64 {
	return b.thermals.OnBoardC(b.Chamber.AirC(), b.chipPowerW())
}

// SetEnvironmentNoise scales the read-jitter band; >1 models the paper's
// "more noisy and harsh environments", which can surface faults above the
// quiet-lab Vmin.
func (b *Board) SetEnvironmentNoise(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	b.jitterScale = scale
	b.refreshEnv()
}

// FillAll writes the given pattern into every BRAM (host-side
// initialization; the write path at nominal voltage is reliable).
func (b *Board) FillAll(pattern uint16) { b.Pool.FillAll(pattern) }

// FillAllFunc writes pattern(site, row) into every BRAM.
func (b *Board) FillAllFunc(pattern func(site, row int) uint16) {
	for i := 0; i < b.Pool.Len(); i++ {
		blk := b.Pool.Block(i)
		site := i
		blk.FillFunc(func(row int) uint16 { return pattern(site, row) })
	}
}

// conditions returns the cached electrical environment stamped with the run
// index. The cache is refreshed by every rail/chamber mutation, so reads are
// cheap and Readers can share it concurrently.
func (b *Board) conditions(run uint64) silicon.Conditions {
	c := b.env
	c.Run = run
	return c
}

// BeginRun starts a new read pass and returns its run index; all BRAM reads
// within one pass share the same marginal-cell jitter draw, like one
// iteration of Listing 1's inner loop.
func (b *Board) BeginRun() uint64 {
	b.runCounter++
	return b.runCounter
}

// ReadBRAMInto reads one BRAM's contents under the current voltage and
// temperature into dst (length bram.Rows) — the fast host path used by
// full-chip sweeps. It fails when the design is not operating.
func (b *Board) ReadBRAMInto(dst []uint16, site int, run uint64) error {
	if !b.Done() {
		return ErrNotOperating
	}
	if len(dst) < bram.Rows {
		return fmt.Errorf("board: dst holds %d rows, need %d", len(dst), bram.Rows)
	}
	var err error
	b.scratch, err = readFaulty(b, b.eval.evaluator(b, run), dst, site, b.scratch)
	return err
}

// evalMemo caches a pass evaluation environment (ripple draw, jitter sigma):
// all reads of one run share them, so a read path resolves them once per
// (conditions, run) instead of once per site. Each single-goroutine read
// path owns its memo — the Board's methods share one, every Reader carries
// its own.
type evalMemo struct {
	eval silicon.Eval
	cond silicon.Conditions
	ok   bool
}

// evaluator returns the memoized pass evaluation for the given run.
func (m *evalMemo) evaluator(b *Board, run uint64) silicon.Eval {
	cond := b.conditions(run)
	if !m.ok || cond != m.cond {
		m.eval = b.Die.Evaluator(cond)
		m.cond = cond
		m.ok = true
	}
	return m.eval
}

// readFaulty snapshots a block and applies the active fault overlay, reusing
// the provided scratch slice. The caller has already verified Done().
func readFaulty(b *Board, eval silicon.Eval, dst []uint16, site int, scratch []silicon.Fault) ([]silicon.Fault, error) {
	b.Pool.Block(site).Snapshot(dst)
	scratch = eval.AppendActive(scratch[:0], site)
	for _, f := range scratch {
		bit := uint16(1) << f.Col
		if f.Flip01 {
			dst[f.Row] |= bit
		} else {
			dst[f.Row] &^= bit
		}
	}
	return scratch, nil
}

// siteCounts caches one site's prefix sums of observable-fault polarity over
// the die's descending-Vc weak-cell order: p10[i]/p01[i] count how many of
// the first i cells would, when active, manifest as a 1→0 / 0→1 flip against
// the block's *current* contents. The cache is keyed to the block's content
// generation and refreshed lazily after any write, so the count-only read
// path resolves the whole definitely-faulty prefix with two array lookups
// and consults stored words only inside the marginal band.
//
// A refresh is a content delta, not a rebuild, whenever the block can name
// the rows written since the last pass (its dirty feed): only the weak cells
// on those rows are re-examined, and the prefix sums are patched with one
// suffix pass from the first changed cell. Bulk fills and feed overflow fall
// back to the full O(weak cells) rebuild.
//
// Entries are written without synchronization: concurrent Readers never
// share a site within one pass (the scan hands each site to one worker), and
// passes are serialized by the caller, matching the Reader contract that the
// board's state does not change while readers are active.
type siteCounts struct {
	gen      uint64
	p10, p01 []int32
	obs      []uint8 // per weak cell: 1 if observable against current contents
	byRow    []int32 // weak-cell indices sorted by row, built on first delta
	chg      []int32 // scratch: changed cell indices of one delta
}

// countsFor returns the site's up-to-date prefix sums, patching or rebuilding
// them if the block's contents changed since the last pass.
func (b *Board) countsFor(site int) *siteCounts {
	sc := &b.counts[site]
	blk := b.Pool.Block(site)
	gen := blk.Gen()
	if sc.gen == gen && sc.p10 != nil {
		return sc
	}
	cells := b.Die.WeakCells(site)
	rows, partial := blk.TakeDirty()
	if sc.p10 != nil && partial {
		sc.applyDelta(blk, cells, rows)
		sc.gen = gen
		return sc
	}
	if cap(sc.p10) < len(cells)+1 {
		sc.p10 = make([]int32, len(cells)+1)
		sc.p01 = make([]int32, len(cells)+1)
		sc.obs = make([]uint8, len(cells))
	}
	sc.p10, sc.p01 = sc.p10[:len(cells)+1], sc.p01[:len(cells)+1]
	sc.obs = sc.obs[:len(cells)]
	sc.p10[0], sc.p01[0] = 0, 0
	var c10, c01 int32
	for i, c := range cells {
		bit := blk.ReadRaw(int(c.Row)) >> c.Col & 1
		sc.obs[i] = 0
		if c.Flip01 {
			if bit == 0 {
				c01++
				sc.obs[i] = 1
			}
		} else if bit == 1 {
			c10++
			sc.obs[i] = 1
		}
		sc.p10[i+1], sc.p01[i+1] = c10, c01
	}
	sc.gen = gen
	return sc
}

// applyDelta patches the prefix sums after single-word writes: re-examine
// only the weak cells on the written rows, then fold the observability flips
// into p10/p01 with one suffix pass starting at the first changed cell —
// O(cells on written rows + suffix) instead of O(all weak cells), and no
// block reads outside the written rows.
func (sc *siteCounts) applyDelta(blk *bram.Block, cells []silicon.WeakCell, rows []uint16) {
	if len(rows) == 0 {
		return
	}
	if sc.byRow == nil {
		sc.byRow = make([]int32, len(cells))
		for i := range sc.byRow {
			sc.byRow[i] = int32(i)
		}
		sort.Slice(sc.byRow, func(a, b int) bool {
			return cells[sc.byRow[a]].Row < cells[sc.byRow[b]].Row
		})
	}
	sc.chg = sc.chg[:0]
	sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
	prev := -1
	for _, r := range rows {
		row := int(r)
		if row == prev {
			continue // the feed may repeat a row; one examination suffices
		}
		prev = row
		lo := sort.Search(len(sc.byRow), func(i int) bool {
			return int(cells[sc.byRow[i]].Row) >= row
		})
		for k := lo; k < len(sc.byRow) && int(cells[sc.byRow[k]].Row) == row; k++ {
			idx := sc.byRow[k]
			c := cells[idx]
			bit := blk.ReadRaw(row) >> c.Col & 1
			var now uint8
			if c.Flip01 {
				if bit == 0 {
					now = 1
				}
			} else if bit == 1 {
				now = 1
			}
			if now != sc.obs[idx] {
				sc.obs[idx] = now
				sc.chg = append(sc.chg, idx)
			}
		}
	}
	if len(sc.chg) == 0 {
		return
	}
	sort.Slice(sc.chg, func(a, b int) bool { return sc.chg[a] < sc.chg[b] })
	var d10, d01 int32
	ci := 0
	for i := int(sc.chg[0]); i < len(cells); i++ {
		for ci < len(sc.chg) && int(sc.chg[ci]) == i {
			var d int32 = 1
			if sc.obs[i] == 0 {
				d = -1
			}
			if cells[i].Flip01 {
				d01 += d
			} else {
				d10 += d
			}
			ci++
		}
		sc.p10[i+1] += d10
		sc.p01[i+1] += d01
	}
}

// countSite counts one site's observable mismatches under the pass
// evaluation: the definitely-active prefix comes from the cached prefix
// sums, and only the marginal band (materialized into scratch) consults the
// stored words.
func countSite(b *Board, eval silicon.Eval, scratch []silicon.Fault, site int) (out []silicon.Fault, total, f10, f01 int) {
	band, def := eval.ActiveBand(scratch[:0], site)
	sc := b.countsFor(site)
	f10, f01 = int(sc.p10[def]), int(sc.p01[def])
	if len(band) > 0 {
		_, b10, b01 := b.Pool.Block(site).CountFaults(band)
		f10 += b10
		f01 += b01
	}
	return band, f10 + f01, f10, f01
}

// CountFaultsInto counts the observable mismatches a read pass over the whole
// pool would see, without materializing any contents: the fault overlay is
// evaluated per site (O(marginal band) on the indexed silicon path) and the
// stored words are consulted only at marginal fault rows, so SAFE-region and
// near-Vmin passes are near-no-ops. When perSite is non-nil it must hold
// Pool.Len() entries and receives each site's count. The returned totals are
// exactly what ReadBRAMInto plus a row-by-row compare would report.
func (b *Board) CountFaultsInto(perSite []int, run uint64) (total int, flip10, flip01 int64, err error) {
	if !b.Done() {
		return 0, 0, 0, ErrNotOperating
	}
	if perSite != nil && len(perSite) < b.Pool.Len() {
		return 0, 0, 0, fmt.Errorf("board: perSite holds %d sites, need %d", len(perSite), b.Pool.Len())
	}
	eval := b.Die.Evaluator(b.conditions(run))
	for site := 0; site < b.Pool.Len(); site++ {
		var n, f10, f01 int
		b.scratch, n, f10, f01 = countSite(b, eval, b.scratch, site)
		if perSite != nil {
			perSite[site] = n
		}
		total += n
		flip10 += int64(f10)
		flip01 += int64(f01)
	}
	return total, flip10, flip01, nil
}

// Reader is an independent host read channel with private buffers, so
// full-chip scans can fan out across goroutines. The board's electrical
// state (rails, temperature) must not change while readers are active.
type Reader struct {
	b       *Board
	scratch []silicon.Fault
	eval    evalMemo // this reader's pass-evaluation memo
}

// NewReader returns a reader bound to the board.
func (b *Board) NewReader() *Reader { return &Reader{b: b} }

// operatingNow is a mutation-free operating check for concurrent Readers
// (Done() may flip the sticky crash latch, which is a write).
func (b *Board) operatingNow() bool {
	return b.configured && !b.crashed &&
		b.VCCBRAM() >= b.Platform.Cal.Vcrash-1e-9 &&
		b.VCCINT() >= b.Platform.Cal.VcrashInt-1e-9
}

// ReadInto behaves like Board.ReadBRAMInto but is safe to call from multiple
// Readers concurrently.
func (r *Reader) ReadInto(dst []uint16, site int, run uint64) error {
	if !r.b.operatingNow() {
		return ErrNotOperating
	}
	if len(dst) < bram.Rows {
		return fmt.Errorf("board: dst holds %d rows, need %d", len(dst), bram.Rows)
	}
	var err error
	r.scratch, err = readFaulty(r.b, r.eval.evaluator(r.b, run), dst, site, r.scratch)
	return err
}

// CountInto behaves like one site's share of Board.CountFaultsInto — count
// the observable mismatches without materializing contents — and is safe to
// call from multiple Readers concurrently (on distinct sites, per the Reader
// contract above).
func (r *Reader) CountInto(site int, run uint64) (total, flip10, flip01 int, err error) {
	if !r.b.operatingNow() {
		return 0, 0, 0, ErrNotOperating
	}
	eval := r.eval.evaluator(r.b, run)
	r.scratch, total, flip10, flip01 = countSite(r.b, eval, r.scratch, site)
	return total, flip10, flip01, nil
}

// StreamBRAM reads one BRAM and ships it through the full serial-link wire
// path (encode, CRC, decode), returning the host-side frame. Experiments use
// it to verify link fidelity at every voltage level, as the paper did.
func (b *Board) StreamBRAM(site int, run uint64) (Frame, error) {
	buf := make([]uint16, bram.Rows)
	if err := b.ReadBRAMInto(buf, site, run); err != nil {
		return Frame{}, err
	}
	wire := b.Link.Encode(Frame{Site: uint16(site), Rows: buf})
	return b.Link.Decode(wire)
}

// LogicSelfTestErrors models the observable fault signal used to locate the
// VCCINT Vmin in Fig. 1b: the readout design runs a self-check whose error
// count is zero in the SAFE region and grows exponentially below VminInt.
func (b *Board) LogicSelfTestErrors(run uint64) (int, error) {
	if !b.Done() {
		return 0, ErrNotOperating
	}
	v := b.VCCINT()
	cal := b.Platform.Cal
	if v >= cal.VminInt {
		return 0, nil
	}
	span := cal.VminInt - cal.VcrashInt
	if span <= 0 {
		return 1, nil
	}
	// ~1 error at VminInt falling edge, a few hundred at crash.
	depth := (cal.VminInt - v) / span
	n := int(0.5 + 400*pow(depth, 3))
	if n < 1 {
		n = 1
	}
	return n, nil
}

func pow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}

// chipPowerW returns the true on-chip power of the characterization design
// at the current rails and chamber air temperature. (Uses the chamber air
// rather than the closed-loop on-board temperature to keep the model
// explicit and loop-free; the difference is a second-order leakage term.)
func (b *Board) chipPowerW() float64 {
	comps := []power.Component{
		b.Platform.BRAMComponent(1.0),
		b.Platform.LogicComponent(),
	}
	volts := map[string]float64{
		"VCCBRAM": b.VCCBRAM(),
		"VCCINT":  b.VCCINT(),
	}
	return b.PowerMod.Evaluate(comps, volts, b.Chamber.AirC()).Total()
}

// railPowerW reports per-rail power for PMBus READ_POUT.
func (b *Board) railPowerW(page int) float64 {
	switch page {
	case PageVCCBRAM:
		return b.PowerMod.Power(b.Platform.BRAMComponent(1.0), b.VCCBRAM(), b.Chamber.AirC())
	case PageVCCINT:
		return b.PowerMod.Power(b.Platform.LogicComponent(), b.VCCINT(), b.Chamber.AirC())
	default:
		return 0.05 // auxiliary housekeeping
	}
}

// BRAMPowerW returns the BRAM pool's power at current conditions — the
// quantity Fig. 3 plots (the paper extracts the BRAM contribution via XPE).
func (b *Board) BRAMPowerW() float64 {
	return b.railPowerW(PageVCCBRAM)
}

// MeasureTotalPowerW samples the external power meter (chip + board
// overhead + measurement noise), averaged over n readings.
func (b *Board) MeasureTotalPowerW(n int) float64 {
	return b.Meter.SampleN(b.chipPowerW(), n)
}
