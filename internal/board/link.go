package board

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Frame is one serial transfer of a full BRAM's contents from the FPGA to
// the host, as in Fig. 2 ("Read to host one-by-one").
type Frame struct {
	Site uint16   // BRAM index
	Rows []uint16 // 1024 data words
}

// Link models the UART between the FPGA and the host. The paper verifies the
// interface is reliable at every VCCBRAM level (it is powered from a
// separate rail), so transfers never corrupt — but every frame still carries
// a CRC32 and the host checks it, exactly like the real rig would. The link
// tracks transferred bytes so experiments can account for readout cost.
type Link struct {
	Baud        int   // line rate, e.g. 921600
	BytesMoved  int64 // cumulative payload+framing bytes
	FramesMoved int64
}

// NewLink returns a link at the given baud rate.
func NewLink(baud int) *Link {
	if baud <= 0 {
		baud = 921600
	}
	return &Link{Baud: baud}
}

// Encode serializes a frame to wire format: site, row count, rows
// little-endian, CRC32 of everything before the checksum.
func (l *Link) Encode(f Frame) []byte {
	buf := make([]byte, 0, 4+2*len(f.Rows)+4)
	buf = binary.LittleEndian.AppendUint16(buf, f.Site)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Rows)))
	for _, w := range f.Rows {
		buf = binary.LittleEndian.AppendUint16(buf, w)
	}
	crc := crc32.ChecksumIEEE(buf)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	l.BytesMoved += int64(len(buf))
	l.FramesMoved++
	return buf
}

// Decode parses and validates a wire frame.
func (l *Link) Decode(wire []byte) (Frame, error) {
	if len(wire) < 8 {
		return Frame{}, fmt.Errorf("board: short frame (%d bytes)", len(wire))
	}
	body, tail := wire[:len(wire)-4], wire[len(wire)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return Frame{}, fmt.Errorf("board: frame CRC mismatch")
	}
	site := binary.LittleEndian.Uint16(body[0:2])
	n := int(binary.LittleEndian.Uint16(body[2:4]))
	if len(body) != 4+2*n {
		return Frame{}, fmt.Errorf("board: frame length %d != header count %d", len(body), n)
	}
	rows := make([]uint16, n)
	for i := range rows {
		rows[i] = binary.LittleEndian.Uint16(body[4+2*i:])
	}
	return Frame{Site: site, Rows: rows}, nil
}

// TransferSeconds returns how long the given byte count takes on the line
// (10 bits per byte with start/stop framing) — used to report virtual
// experiment time.
func (l *Link) TransferSeconds(bytes int64) float64 {
	return float64(bytes*10) / float64(l.Baud)
}
