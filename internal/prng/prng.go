// Package prng provides the deterministic random-number machinery that gives
// every simulated die, BRAM, and bitcell a reproducible random identity.
//
// The paper's central experimental finding is that undervolting faults are
// *deterministic*: the same chip shows the same faulty bitcells at the same
// voltage, run after run, bitstream after bitstream. The Fault Variation Map
// (FVM) and the ICBP mitigation both depend on that property. To reproduce it
// in simulation, all "process variation" randomness must be a pure function of
// stable identifiers (board serial number, BRAM X/Y site, bitcell row/column)
// rather than of global generator state or call order.
//
// This package therefore provides:
//
//   - SplitMix64: a tiny, high-quality 64-bit mixer used both as a stream
//     seeder and as a stateless hash of identifiers.
//   - Xoshiro256: xoshiro256** — the workhorse sequential generator.
//   - Source: a hierarchical, keyed generator. Deriving a child with a string
//     or integer key yields an independent stream; two children with the same
//     derivation path always produce identical output, regardless of what any
//     other part of the simulation consumed.
//
// Only the Go standard library is used; the generators are implemented from
// their published reference algorithms.
package prng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014); constants from the public-domain reference code.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns the SplitMix64 finalizer applied to x. It is a bijective
// 64-bit mixer, useful as a cheap stateless hash with good avalanche behavior.
func Mix64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashString folds s into a 64-bit value using an FNV-1a pass followed by a
// SplitMix64 finalizer. It is stable across runs and platforms.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Mix64(h)
}

// Combine mixes any number of 64-bit values into one, order-sensitively.
// Combine(a, b) != Combine(b, a) in general, which is what key derivation
// needs.
func Combine(vs ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3) // pi fractional bits; arbitrary non-zero
	for _, v := range vs {
		h = Mix64(h ^ v)
	}
	return h
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna.
// The zero value is invalid; construct with NewXoshiro256.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator seeded from a single 64-bit seed via
// SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	x.Seed(seed)
	return &x
}

// Seed reinitializes the generator state from seed.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := seed
	for i := range x.s {
		x.s[i] = splitMix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Source is a deterministic random stream with support for keyed derivation.
// It wraps xoshiro256** and remembers the key that created it, so derived
// children are independent of the parent's consumption position: a child's
// stream depends only on the chain of derivation keys, never on how many
// values were drawn from any ancestor.
type Source struct {
	key uint64
	gen Xoshiro256
}

// New returns a root Source for the given seed.
func New(seed uint64) *Source {
	s := &Source{key: Mix64(seed)}
	s.gen.Seed(s.key)
	return s
}

// NewKeyed returns a root Source keyed by a string, typically a board serial
// number or experiment name.
func NewKeyed(name string) *Source {
	return New(HashString(name))
}

// Derive returns a child Source keyed by the given string. Children with equal
// derivation paths are identical; siblings with different keys are
// statistically independent.
func (s *Source) Derive(key string) *Source {
	c := &Source{key: Combine(s.key, HashString(key))}
	c.gen.Seed(c.key)
	return c
}

// DeriveN returns a child Source keyed by one or more integers (for example
// BRAM X/Y coordinates, or a run index).
func (s *Source) DeriveN(keys ...uint64) *Source {
	c := &Source{key: Combine(append([]uint64{s.key, 0x5deece66d}, keys...)...)}
	c.gen.Seed(c.key)
	return c
}

// Key returns the derivation key identifying this source.
func (s *Source) Key() uint64 { return s.key }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 { return s.gen.Uint64() }

// Int63 returns a non-negative 63-bit value. It exists so a Source satisfies
// the shape of math/rand.Source where needed.
func (s *Source) Int63() int64 { return int64(s.gen.Uint64() >> 1) }

// Float64 returns a uniform value in [0,1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.gen.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// Lemire-style bounded rejection on the high bits.
	bound := uint64(n)
	for {
		v := s.gen.Uint64()
		if v < (-bound)%bound && bound&(bound-1) != 0 {
			continue
		}
		return int(v % bound)
	}
}

// Norm returns a standard normal variate (Box–Muller, polar form).
func (s *Source) Norm() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// NormMS returns a normal variate with the given mean and standard deviation.
func (s *Source) NormMS(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// LogNormal returns exp(N(mu, sigma)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.NormMS(mu, sigma))
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("prng: Exp with non-positive rate")
	}
	return -math.Log(1-s.Float64()) / rate
}

// Poisson returns a Poisson variate with the given mean. Knuth's algorithm is
// used for small means and a normal approximation (clamped at zero) for large
// means, which is accurate enough for weak-cell population sizing.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := math.Round(s.NormMS(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.Float64() < p }

// Perm returns a random permutation of [0,n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the supplied swap
// function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
