package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must give distinct outputs on a sample; the finalizer is
	// bijective by construction, so any collision indicates a broken port.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		v := Mix64(i)
		if prev, ok := seen[v]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, v)
		}
		seen[v] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	total := 0
	samples := 0
	for i := uint64(1); i < 1000; i++ {
		for bit := uint(0); bit < 64; bit += 7 {
			a := Mix64(i)
			b := Mix64(i ^ (1 << bit))
			diff := a ^ b
			n := 0
			for diff != 0 {
				diff &= diff - 1
				n++
			}
			total += n
			samples++
		}
	}
	mean := float64(total) / float64(samples)
	if mean < 28 || mean > 36 {
		t.Fatalf("avalanche mean bit flips = %.2f, want ~32", mean)
	}
}

func TestHashStringStable(t *testing.T) {
	// Golden values pin cross-run stability: everything downstream (FVMs,
	// fault locations) depends on these not changing.
	if h1, h2 := HashString("VC707:1308-6520"), HashString("VC707:1308-6520"); h1 != h2 {
		t.Fatalf("HashString not deterministic: %#x vs %#x", h1, h2)
	}
	if HashString("a") == HashString("b") {
		t.Fatal("HashString trivially colliding")
	}
	if HashString("") == 0 {
		t.Fatal("HashString(\"\") should not be zero after mixing")
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine must be order-sensitive")
	}
	if Combine(1, 2, 3) == Combine(1, 2) {
		t.Fatal("Combine must depend on all inputs")
	}
}

func TestXoshiroKnownDistinct(t *testing.T) {
	a := NewXoshiro256(1)
	b := NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from different seeds overlapped %d/100 times", same)
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := NewKeyed("board-serial-604018691749-76023")
	b := NewKeyed("board-serial-604018691749-76023")
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same key diverged at draw %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDeriveIndependentOfConsumption(t *testing.T) {
	// The core property: a child's stream must not depend on how much the
	// parent has consumed.
	p1 := NewKeyed("root")
	p2 := NewKeyed("root")
	for i := 0; i < 57; i++ {
		p2.Uint64() // advance p2 only
	}
	c1 := p1.Derive("bram")
	c2 := p2.Derive("bram")
	for i := 0; i < 100; i++ {
		if a, b := c1.Uint64(), c2.Uint64(); a != b {
			t.Fatalf("derived streams depend on parent consumption (draw %d)", i)
		}
	}
}

func TestDeriveNSiblingsIndependent(t *testing.T) {
	root := NewKeyed("chip")
	a := root.DeriveN(3, 7)
	b := root.DeriveN(3, 8)
	c := root.DeriveN(4, 7)
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Fatal("sibling keys collide")
	}
	// Column-major vs row-major coordinates must not alias.
	if root.DeriveN(1, 2).Key() == root.DeriveN(2, 1).Key() {
		t.Fatal("DeriveN must be order-sensitive")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(42)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	s := New(7)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Fatalf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[s.Intn(10)]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(10) digit %d count %d, want ~10000", d, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 100, 400} {
		s := New(uint64(mean * 1000))
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	s := New(1)
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestExpMoments(t *testing.T) {
	s := New(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(2.0)
	}
	if got := sum / n; math.Abs(got-0.5) > 0.02 {
		t.Fatalf("Exp(2) sample mean = %v, want 0.5", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(3)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestQuickDeriveDeterministic(t *testing.T) {
	// Property: for any pair of integer keys, deriving twice yields the same
	// first draw, and the draw differs from the sibling with swapped keys
	// (unless keys are equal).
	f := func(a, b uint64) bool {
		root := NewKeyed("prop")
		x := root.DeriveN(a, b).Uint64()
		y := root.DeriveN(a, b).Uint64()
		if x != y {
			return false
		}
		if a != b && root.DeriveN(b, a).Uint64() == x {
			// A single collision is not impossible, but with Mix64 it is
			// vanishingly unlikely across quick's default 100 cases.
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	s := NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkDerive(b *testing.B) {
	root := NewKeyed("bench")
	for i := 0; i < b.N; i++ {
		_ = root.DeriveN(uint64(i), uint64(i>>8))
	}
}
