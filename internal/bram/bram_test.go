package bram

import (
	"testing"
	"testing/quick"

	"repro/internal/silicon"
)

func TestBlockReadWrite(t *testing.T) {
	b := NewBlock(0, silicon.Site{X: 3, Y: 7})
	b.Write(0, 0xBEEF)
	b.Write(1023, 0x1234)
	if b.ReadRaw(0) != 0xBEEF || b.ReadRaw(1023) != 0x1234 {
		t.Fatal("read-back mismatch")
	}
	if b.ReadRaw(5) != 0 {
		t.Fatal("unwritten row not zero")
	}
	if b.Site() != (silicon.Site{X: 3, Y: 7}) || b.Index() != 0 {
		t.Fatal("identity accessors wrong")
	}
}

func TestFill(t *testing.T) {
	b := NewBlock(0, silicon.Site{})
	b.Fill(0xFFFF)
	for r := 0; r < Rows; r++ {
		if b.ReadRaw(r) != 0xFFFF {
			t.Fatalf("row %d = %#x", r, b.ReadRaw(r))
		}
	}
}

func TestFillFunc(t *testing.T) {
	b := NewBlock(0, silicon.Site{})
	b.FillFunc(func(row int) uint16 { return uint16(row) })
	if b.ReadRaw(0) != 0 || b.ReadRaw(513) != 513 {
		t.Fatal("FillFunc pattern wrong")
	}
}

func TestParity(t *testing.T) {
	b := NewBlock(0, silicon.Site{})
	b.Write(4, 0x0101) // one bit per byte -> parity 0b11
	if b.ReadParity(4) != 0b11 {
		t.Fatalf("parity = %#b", b.ReadParity(4))
	}
	b.Write(5, 0x0300) // two bits in high byte -> parity 0b00
	if b.ReadParity(5) != 0 {
		t.Fatalf("parity = %#b", b.ReadParity(5))
	}
	if !b.ParityOK(4) || !b.ParityOK(5) {
		t.Fatal("self-consistent parity reported bad")
	}
}

func TestQuickParityMatchesPopcount(t *testing.T) {
	f := func(w uint16) bool {
		b := NewBlock(0, silicon.Site{})
		b.Write(0, w)
		ones := 0
		for i := 0; i < 8; i++ {
			ones += int(w>>i) & 1
		}
		lo := uint8(ones & 1)
		ones = 0
		for i := 8; i < 16; i++ {
			ones += int(w>>i) & 1
		}
		hi := uint8(ones & 1)
		return b.ReadParity(0) == lo|hi<<1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPool(t *testing.T) {
	sites := []silicon.Site{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}}
	p := NewPool(sites)
	if p.Len() != 3 {
		t.Fatalf("pool len = %d", p.Len())
	}
	if p.Block(1).Site() != sites[1] {
		t.Fatal("block site mismatch")
	}
	if p.At(silicon.Site{X: 1, Y: 0}).Index() != 2 {
		t.Fatal("site lookup wrong")
	}
	if p.At(silicon.Site{X: 9, Y: 9}) != nil {
		t.Fatal("missing site should be nil")
	}
	p.FillAll(0xAAAA)
	if p.Block(2).ReadRaw(100) != 0xAAAA {
		t.Fatal("FillAll missed a block")
	}
	if p.TotalBits() != 3*16384 {
		t.Fatalf("TotalBits = %d", p.TotalBits())
	}
	if got := p.TotalMbits(); got != 3.0*16384/1048576 {
		t.Fatalf("TotalMbits = %v", got)
	}
}

func TestBlocksFor(t *testing.T) {
	cases := []struct{ words, want int }{
		{0, 0}, {1, 1}, {1024, 1}, {1025, 2}, {1492224, 1458},
	}
	for _, c := range cases {
		if got := BlocksFor(c.words); got != c.want {
			t.Fatalf("BlocksFor(%d) = %d, want %d", c.words, got, c.want)
		}
	}
}

func TestCascade(t *testing.T) {
	sites := []silicon.Site{{X: 0, Y: 0}, {X: 0, Y: 1}}
	p := NewPool(sites)
	c, err := NewCascade(1500, []*Block{p.Block(0), p.Block(1)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1500 || c.NumBlocks() != 2 {
		t.Fatal("cascade shape wrong")
	}
	// Address 1024 maps to the second block, row 0.
	if err := c.Write(1024, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	if p.Block(1).ReadRaw(0) != 0xCAFE {
		t.Fatal("address mapping wrong")
	}
	got, err := c.ReadRaw(1024)
	if err != nil || got != 0xCAFE {
		t.Fatalf("cascade read = %#x, %v", got, err)
	}
	if _, err := c.ReadRaw(1500); err == nil {
		t.Fatal("out-of-range read should fail")
	}
	if err := c.Write(-1, 0); err == nil {
		t.Fatal("negative write should fail")
	}
}

func TestCascadeCapacity(t *testing.T) {
	p := NewPool([]silicon.Site{{X: 0, Y: 0}})
	if _, err := NewCascade(1025, []*Block{p.Block(0)}); err == nil {
		t.Fatal("oversized cascade should fail")
	}
	if _, err := NewCascade(-1, nil); err == nil {
		t.Fatal("negative cascade should fail")
	}
	if _, err := NewCascade(0, nil); err != nil {
		t.Fatal("empty cascade should be fine")
	}
}

func TestApplyFaults(t *testing.T) {
	faults := []silicon.Fault{
		{Row: 5, Col: 0, Flip01: false}, // 1->0 on bit 0
		{Row: 5, Col: 3, Flip01: true},  // 0->1 on bit 3
		{Row: 6, Col: 1, Flip01: false}, // other row: ignored
	}
	// Stored 0b0001: bit0 is 1 (cleared), bit3 is 0 (set).
	got := ApplyFaults(0b0001, 5, faults)
	if got != 0b1000 {
		t.Fatalf("ApplyFaults = %#b, want 0b1000", got)
	}
	// Stored 0b1000: bit0 already 0 (1->0 fault invisible), bit3 already 1
	// (0->1 fault invisible).
	if got := ApplyFaults(0b1000, 5, faults); got != 0b1000 {
		t.Fatalf("pattern-dependent masking broken: %#b", got)
	}
}

func TestRowMasks(t *testing.T) {
	faults := []silicon.Fault{
		{Row: 10, Col: 15, Flip01: false},
		{Row: 10, Col: 2, Flip01: false},
		{Row: 11, Col: 7, Flip01: true},
	}
	and, or := RowMasks(faults)
	if len(and) != 1 || len(or) != 1 {
		t.Fatalf("mask rows: and=%d or=%d", len(and), len(or))
	}
	if and[10] != 0xffff&^(1<<15)&^(1<<2) {
		t.Fatalf("AND mask = %#x", and[10])
	}
	if or[11] != 1<<7 {
		t.Fatalf("OR mask = %#x", or[11])
	}
}

func TestQuickMasksEquivalentToApplyFaults(t *testing.T) {
	// Property: folding faults into masks and applying them must equal the
	// direct per-fault application for any stored word.
	f := func(stored uint16, rows []uint8, cols []uint8, flips []bool) bool {
		n := len(rows)
		if len(cols) < n {
			n = len(cols)
		}
		if len(flips) < n {
			n = len(flips)
		}
		var faults []silicon.Fault
		for i := 0; i < n; i++ {
			faults = append(faults, silicon.Fault{
				Row:    uint16(rows[i] % 4),
				Col:    cols[i] % 16,
				Flip01: flips[i],
			})
		}
		// A cell can appear with both polarities in this generator; dedupe by
		// (row,col) keeping the first, as the silicon model guarantees.
		seen := map[[2]int]bool{}
		uniq := faults[:0]
		for _, f := range faults {
			k := [2]int{int(f.Row), int(f.Col)}
			if seen[k] {
				continue
			}
			seen[k] = true
			uniq = append(uniq, f)
		}
		and, or := RowMasks(uniq)
		for row := 0; row < 4; row++ {
			direct := ApplyFaults(stored, row, uniq)
			masked := stored
			if m, ok := and[row]; ok {
				masked &= m
			}
			if m, ok := or[row]; ok {
				masked |= m
			}
			if direct != masked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountFaults(t *testing.T) {
	b := NewBlock(0, silicon.Site{})
	b.Write(3, 0b0000_0000_0000_1010)
	faults := []silicon.Fault{
		{Row: 3, Col: 1},               // stored 1 → observable 1→0
		{Row: 3, Col: 0},               // stored 0 → invisible 1→0
		{Row: 3, Col: 2, Flip01: true}, // stored 0 → observable 0→1
		{Row: 3, Col: 3, Flip01: true}, // stored 1 → invisible 0→1
		{Row: 7, Col: 5},               // other row, stored 0 → invisible
	}
	total, f10, f01 := b.CountFaults(faults)
	if total != 2 || f10 != 1 || f01 != 1 {
		t.Fatalf("CountFaults = (%d, %d, %d), want (2, 1, 1)", total, f10, f01)
	}
}

func TestQuickCountFaultsEquivalentToOverlayDiff(t *testing.T) {
	// Property: the count-only path must agree with applying the overlay to
	// a snapshot and diffing it row by row, for any contents and fault list.
	f := func(words []uint16, rows []uint8, cols []uint8, flips []bool) bool {
		b := NewBlock(0, silicon.Site{})
		for r, w := range words {
			if r >= Rows {
				break
			}
			b.Write(r, w)
		}
		n := min(len(rows), len(cols), len(flips))
		seen := map[[2]int]bool{}
		var faults []silicon.Fault
		for i := 0; i < n; i++ {
			fa := silicon.Fault{Row: uint16(rows[i] % 8), Col: cols[i] % 16, Flip01: flips[i]}
			k := [2]int{int(fa.Row), int(fa.Col)}
			if seen[k] {
				continue // one weak mechanism per bitcell
			}
			seen[k] = true
			faults = append(faults, fa)
		}
		total, f10, f01 := b.CountFaults(faults)
		want10, want01 := 0, 0
		for row := 0; row < Rows; row++ {
			stored := b.ReadRaw(row)
			got := ApplyFaults(stored, row, faults)
			for bit := 0; bit < 16; bit++ {
				s, g := stored>>bit&1, got>>bit&1
				if s == 1 && g == 0 {
					want10++
				}
				if s == 0 && g == 1 {
					want01++
				}
			}
		}
		return total == want10+want01 && f10 == want10 && f01 == want01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
