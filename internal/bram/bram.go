// Package bram models the on-chip Block RAMs of the studied 7-series FPGAs
// (Section II-A): each basic block is a 1024×16-bit bitcell matrix with two
// additional parity bits per row (excluded from the paper's experiments, as
// noted under Table I), individually accessible or cascadable into larger
// logical memories.
//
// Blocks are pure storage. Voltage-dependent read faults are an electrical
// phenomenon and live in internal/silicon; the chip model (internal/board)
// combines the two by applying a fault overlay on the read path. That split
// mirrors the physics: undervolting corrupts reads, not the stored charge,
// which is why the paper observes stable fault locations and full recovery
// at nominal voltage.
package bram

import (
	"fmt"
	"math/bits"

	"repro/internal/silicon"
)

// Geometry re-exports the block dimensions for convenience.
const (
	Rows = silicon.BRAMRows
	Cols = silicon.BRAMCols
	Bits = silicon.BRAMBits
)

// Block is one 16 Kbit BRAM: 1024 rows of 16 data bits (+2 parity bits).
type Block struct {
	site   silicon.Site
	index  int
	words  []uint16
	parity []uint8 // 2 parity bits per row, even parity over each byte
	gen    uint64  // content generation, bumped by every write path

	// dirty is the change feed behind TakeDirty: the rows written since the
	// last drain, complete only while dirtyAll is unset. Bulk writes and
	// overflow past maxDirtyRows degrade the feed to "everything changed"
	// rather than growing it without bound.
	dirty    []uint16
	dirtyAll bool
}

// maxDirtyRows bounds the per-block dirty-row feed. Past it, a consumer's
// delta update would touch most of the derived state anyway, so the feed
// collapses to a full-rebuild signal.
const maxDirtyRows = 64

// NewBlock allocates a zeroed block at the given floorplan site.
func NewBlock(index int, site silicon.Site) *Block {
	return &Block{
		site:   site,
		index:  index,
		words:  make([]uint16, Rows),
		parity: make([]uint8, Rows),
	}
}

// Index returns the block's linear index in its pool.
func (b *Block) Index() int { return b.index }

// Site returns the block's physical floorplan location.
func (b *Block) Site() silicon.Site { return b.site }

// Write stores a word (and its parity bits) at the given row.
func (b *Block) Write(row int, w uint16) {
	b.words[row] = w
	b.parity[row] = evenParity(w)
	b.gen++
	b.noteDirty(row)
}

func (b *Block) noteDirty(row int) {
	if b.dirtyAll {
		return
	}
	if len(b.dirty) >= maxDirtyRows {
		b.dirty, b.dirtyAll = b.dirty[:0], true
		return
	}
	b.dirty = append(b.dirty, uint16(row))
}

// TakeDirty drains the block's dirty-row feed: the rows written since the
// previous drain (duplicates possible), and whether that list is complete.
// ok=false means a bulk write (Fill, FillFunc) or feed overflow made the list
// meaningless — the consumer must rebuild whatever it derives from the
// contents. The feed has a single consumer by contract: the board's
// observable-fault prefix sums.
func (b *Block) TakeDirty() (rows []uint16, ok bool) {
	rows, ok = b.dirty, !b.dirtyAll
	b.dirty, b.dirtyAll = nil, false
	return rows, ok
}

// Gen returns the block's content generation: it changes whenever any write
// path (Write, Fill, FillFunc) touches the block, so derived per-content
// caches — like the board's observable-fault prefix sums — know when to
// rebuild. Reads never change it; the fault overlay is read-path-only.
func (b *Block) Gen() uint64 { return b.gen }

// ReadRaw returns the stored word without any fault overlay (the nominal-
// voltage read path).
func (b *Block) ReadRaw(row int) uint16 { return b.words[row] }

// Snapshot copies the whole block's data rows into dst and returns the number
// of rows copied. It is the bulk path used by full-chip read sweeps.
func (b *Block) Snapshot(dst []uint16) int { return copy(dst, b.words) }

// CountFaults counts the mismatches the given active-fault overlay would
// produce against the block's stored contents, consulting stored words only
// at the fault rows: a 1→0 fault is observable only where the stored bit is
// 1, a 0→1 fault only where it is 0. It is the count-only twin of
// Snapshot-and-compare — O(len(faults)) instead of O(Rows) — and returns the
// same totals a full readout diff would.
func (b *Block) CountFaults(faults []silicon.Fault) (total, flip10, flip01 int) {
	for _, f := range faults {
		bit := b.words[f.Row] >> f.Col & 1
		if f.Flip01 {
			if bit == 0 {
				flip01++
			}
		} else if bit == 1 {
			flip10++
		}
	}
	return flip10 + flip01, flip10, flip01
}

// ReadParity returns the stored parity bits of a row (bit0: low byte, bit1:
// high byte).
func (b *Block) ReadParity(row int) uint8 { return b.parity[row] }

// ParityOK reports whether the stored parity of the row matches its data.
func (b *Block) ParityOK(row int) bool { return b.parity[row] == evenParity(b.words[row]) }

// Fill writes the same word to every row — the pattern initialization of the
// characterization flow (Listing 1).
func (b *Block) Fill(pattern uint16) {
	p := evenParity(pattern)
	for r := range b.words {
		b.words[r] = pattern
		b.parity[r] = p
	}
	b.gen++
	b.dirty, b.dirtyAll = nil, true
}

// FillFunc writes pattern(row) to every row; used for random and per-row
// patterns in the Fig. 4 study.
func (b *Block) FillFunc(pattern func(row int) uint16) {
	for r := range b.words {
		w := pattern(r)
		b.words[r] = w
		b.parity[r] = evenParity(w)
	}
	b.gen++
	b.dirty, b.dirtyAll = nil, true
}

// evenParity returns one even-parity bit per byte of w (the 7-series BRAM
// carries one parity bit per 8 data bits).
func evenParity(w uint16) uint8 {
	lo := uint8(bits.OnesCount8(uint8(w)) & 1)
	hi := uint8(bits.OnesCount8(uint8(w>>8)) & 1)
	return lo | hi<<1
}

// Pool is the full set of BRAMs of one FPGA, indexed both linearly and by
// physical site.
type Pool struct {
	blocks []*Block
	bySite map[silicon.Site]*Block
}

// NewPool allocates one block per site, in site order.
func NewPool(sites []silicon.Site) *Pool {
	p := &Pool{
		blocks: make([]*Block, len(sites)),
		bySite: make(map[silicon.Site]*Block, len(sites)),
	}
	for i, s := range sites {
		b := NewBlock(i, s)
		p.blocks[i] = b
		p.bySite[s] = b
	}
	return p
}

// Len returns the number of blocks.
func (p *Pool) Len() int { return len(p.blocks) }

// Block returns the block with the given linear index.
func (p *Pool) Block(i int) *Block { return p.blocks[i] }

// At returns the block at a physical site, or nil if the site is empty.
func (p *Pool) At(s silicon.Site) *Block { return p.bySite[s] }

// FillAll writes the same pattern into every block.
func (p *Pool) FillAll(pattern uint16) {
	for _, b := range p.blocks {
		b.Fill(pattern)
	}
}

// TotalBits returns the data capacity of the pool in bits (parity excluded,
// as in the paper's accounting).
func (p *Pool) TotalBits() int { return p.Len() * Bits }

// TotalMbits returns the capacity in Mbit (2^20 bits), the unit of the
// paper's fault rates.
func (p *Pool) TotalMbits() float64 {
	return float64(p.TotalBits()) / float64(silicon.BitsPerMbit)
}

// Cascade is a logical memory built from multiple basic blocks, the way
// designs combine BRAMs "to build larger memories (with some overheads)"
// (Section II-A). Word addresses map to (block, row) in block order.
type Cascade struct {
	blocks []*Block
	words  int
}

// NewCascade builds a logical memory of the given word count over the
// supplied blocks. It fails if the blocks cannot hold that many words.
func NewCascade(words int, blocks []*Block) (*Cascade, error) {
	if words < 0 {
		return nil, fmt.Errorf("bram: negative size %d", words)
	}
	if cap := len(blocks) * Rows; words > cap {
		return nil, fmt.Errorf("bram: cascade needs %d words but %d blocks hold %d",
			words, len(blocks), cap)
	}
	return &Cascade{blocks: blocks, words: words}, nil
}

// BlocksFor returns how many basic blocks a memory of the given word count
// needs.
func BlocksFor(words int) int { return (words + Rows - 1) / Rows }

// Len returns the logical word count.
func (c *Cascade) Len() int { return c.words }

// NumBlocks returns the number of underlying blocks.
func (c *Cascade) NumBlocks() int { return len(c.blocks) }

// Locate translates a word address into its (block, row) location.
func (c *Cascade) Locate(addr int) (blk *Block, row int, err error) {
	if addr < 0 || addr >= c.words {
		return nil, 0, fmt.Errorf("bram: address %d out of range [0,%d)", addr, c.words)
	}
	return c.blocks[addr/Rows], addr % Rows, nil
}

// Write stores a word at a logical address.
func (c *Cascade) Write(addr int, w uint16) error {
	blk, row, err := c.Locate(addr)
	if err != nil {
		return err
	}
	blk.Write(row, w)
	return nil
}

// ReadRaw reads a logical address without fault overlay.
func (c *Cascade) ReadRaw(addr int) (uint16, error) {
	blk, row, err := c.Locate(addr)
	if err != nil {
		return 0, err
	}
	return blk.ReadRaw(row), nil
}

// Blocks returns the underlying blocks (shared slice; do not modify).
func (c *Cascade) Blocks() []*Block { return c.blocks }

// ApplyFaults corrupts a row's readout according to the active faults of the
// block's site: "1"→"0" faults clear bits whose stored value is 1, "0"→"1"
// faults set bits whose stored value is 0. Faults for other rows are ignored.
func ApplyFaults(stored uint16, row int, faults []silicon.Fault) uint16 {
	w := stored
	for _, f := range faults {
		if int(f.Row) != row {
			continue
		}
		bit := uint16(1) << f.Col
		if f.Flip01 {
			w |= bit
		} else {
			w &^= bit
		}
	}
	return w
}

// RowMasks folds a block's active fault list into per-row AND/OR masks so a
// full-block read touches each faulty row once. Returned maps are keyed by
// row; rows absent from both maps read back unmodified.
func RowMasks(faults []silicon.Fault) (and map[int]uint16, or map[int]uint16) {
	and = make(map[int]uint16)
	or = make(map[int]uint16)
	for _, f := range faults {
		row := int(f.Row)
		bit := uint16(1) << f.Col
		if f.Flip01 {
			or[row] |= bit
		} else {
			if _, ok := and[row]; !ok {
				and[row] = 0xffff
			}
			and[row] &^= bit
		}
	}
	return and, or
}
