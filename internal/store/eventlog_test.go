package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testEvent fabricates one event record with a payload that identifies it.
func testEvent(seq int, gseq int64) EventRecord {
	payload, _ := json.Marshal(map[string]any{"seq": seq, "gseq": gseq, "type": "board"})
	return EventRecord{Seq: seq, GSeq: gseq, Payload: payload}
}

// appendN appends events [from, from+n) with GSeq = gbase + offset.
func appendN(t *testing.T, s Store, id string, from, n int, gbase int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		ev := testEvent(from+i, gbase+int64(i))
		if err := s.AppendJobEvents(id, []EventRecord{ev}); err != nil {
			t.Fatal(err)
		}
	}
}

// eventLogConformance exercises the event-log contract shared by Disk and
// Mem: append order, range reads, stats, firehose paging, and deletion.
func eventLogConformance(t *testing.T, s Store) {
	t.Helper()
	if evs, err := s.ReadJobEvents("job-0001", 0, 0); err != nil || len(evs) != 0 {
		t.Fatalf("empty log read = (%d events, %v), want none", len(evs), err)
	}
	appendN(t, s, "job-0001", 0, 10, 1)
	appendN(t, s, "job-0002", 0, 5, 11)

	evs, err := s.ReadJobEvents("job-0001", 0, 0)
	if err != nil || len(evs) != 10 {
		t.Fatalf("full read = (%d events, %v), want 10", len(evs), err)
	}
	for i, ev := range evs {
		if ev.Seq != i || ev.GSeq != int64(i+1) || ev.Job != "job-0001" {
			t.Fatalf("event %d = {seq %d, gseq %d, job %q}", i, ev.Seq, ev.GSeq, ev.Job)
		}
	}
	if evs, _ := s.ReadJobEvents("job-0001", 7, 0); len(evs) != 3 || evs[0].Seq != 7 {
		t.Fatalf("from=7 read = %+v, want seqs 7..9", evs)
	}
	if evs, _ := s.ReadJobEvents("job-0001", 2, 4); len(evs) != 4 || evs[3].Seq != 5 {
		t.Fatalf("limit read = %+v, want seqs 2..5", evs)
	}

	nextSeq, lastG, err := s.JobEventStats("job-0001")
	if err != nil || nextSeq != 10 || lastG != 10 {
		t.Fatalf("stats = (next %d, lastG %d, %v), want (10, 10)", nextSeq, lastG, err)
	}
	if g, err := s.LastGSeq(); err != nil || g != 15 {
		t.Fatalf("LastGSeq = (%d, %v), want 15", g, err)
	}

	// Firehose paging crosses jobs in global order.
	fh, err := s.ReadFirehose(0, 0)
	if err != nil || len(fh) != 15 {
		t.Fatalf("firehose from 0 = (%d events, %v), want 15", len(fh), err)
	}
	for i, ev := range fh {
		if ev.GSeq != int64(i+1) {
			t.Fatalf("firehose event %d has gseq %d", i, ev.GSeq)
		}
	}
	if fh, _ := s.ReadFirehose(12, 2); len(fh) != 2 || fh[0].GSeq != 13 || fh[1].GSeq != 14 {
		t.Fatalf("firehose page = %+v, want gseq 13,14", fh)
	}
	if fh, _ := s.ReadFirehose(15, 0); len(fh) != 0 {
		t.Fatalf("firehose past end = %d events, want 0", len(fh))
	}

	// Deleting the job removes its events from every view.
	if err := s.DeleteJob("job-0001"); err != nil {
		t.Fatal(err)
	}
	if evs, _ := s.ReadJobEvents("job-0001", 0, 0); len(evs) != 0 {
		t.Fatalf("deleted job still has %d events", len(evs))
	}
	if fh, _ := s.ReadFirehose(0, 0); len(fh) != 5 {
		t.Fatalf("firehose after delete = %d events, want 5", len(fh))
	}

	if err := s.AppendJobEvents("../evil", []EventRecord{testEvent(0, 1)}); err == nil {
		t.Fatal("append with a malformed id must fail")
	}
}

func TestDiskEventLogConformance(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	eventLogConformance(t, d)
}

func TestMemEventLogConformance(t *testing.T) {
	eventLogConformance(t, NewMem())
}

// TestDiskEventLogCompaction drives the tail past the threshold, forces a
// fold, and asserts reads and reopen agree with the uncompacted truth.
func TestDiskEventLogCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.SetEventLogTuning(16, 32)
	const n = 100
	appendN(t, d, "job-0001", 0, n, 1)
	if err := d.CompactJob("job-0001"); err != nil {
		t.Fatal(err)
	}
	segs, _ := os.ReadDir(d.jobSegsDir("job-0001"))
	if len(segs) == 0 {
		t.Fatal("compaction sealed no segments")
	}
	verify := func(s Store, label string) {
		t.Helper()
		evs, err := s.ReadJobEvents("job-0001", 0, 0)
		if err != nil || len(evs) != n {
			t.Fatalf("%s: read = (%d events, %v), want %d", label, len(evs), err, n)
		}
		for i, ev := range evs {
			if ev.Seq != i || ev.GSeq != int64(i+1) {
				t.Fatalf("%s: event %d = {seq %d, gseq %d}", label, i, ev.Seq, ev.GSeq)
			}
		}
		if evs, _ := s.ReadJobEvents("job-0001", n-3, 0); len(evs) != 3 {
			t.Fatalf("%s: deep-tail read = %d events, want 3", label, len(evs))
		}
		nextSeq, lastG, _ := s.JobEventStats("job-0001")
		if nextSeq != n || lastG != n {
			t.Fatalf("%s: stats = (next %d, lastG %d), want (%d, %d)", label, nextSeq, lastG, n, n)
		}
	}
	verify(d, "compacted")
	// Appends continue cleanly after the tail rewrite.
	appendN(t, d, "job-0001", n, 5, int64(n)+1)
	if evs, _ := d.ReadJobEvents("job-0001", 0, 0); len(evs) != n+5 {
		t.Fatalf("post-compaction append lost events: %d, want %d", len(evs), n+5)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index is rebuilt from segment names + tail scan alone.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if evs, _ := d2.ReadJobEvents("job-0001", 0, 0); len(evs) != n+5 {
		t.Fatalf("reopened read = %d events, want %d", len(evs), n+5)
	}
	nextSeq, lastG, _ := d2.JobEventStats("job-0001")
	if nextSeq != n+5 || lastG != int64(n+5) {
		t.Fatalf("reopened stats = (next %d, lastG %d)", nextSeq, lastG)
	}
}

// TestDiskEventLogCrashMidCompaction reconstructs the exact on-disk state a
// crash between sealing a segment and rewriting the tail leaves behind —
// every sealed event still present in the tail — and asserts no event is
// lost or duplicated, before and after a reopen.
func TestDiskEventLogCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.SetEventLogTuning(16, 1<<30) // sealing only via explicit CompactJob
	const n = 40
	appendN(t, d, "job-0001", 0, n, 1)
	tailRaw, err := os.ReadFile(d.jobLogPath("job-0001"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CompactJob("job-0001"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-compaction tail: segments now duplicate its prefix,
	// which is exactly the crash window's on-disk state.
	if err := os.WriteFile(filepath.Join(dir, "jobs", "job-0001.log"), tailRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := d2.ReadJobEvents("job-0001", 0, 0)
	if err != nil || len(evs) != n {
		t.Fatalf("crash-state read = (%d events, %v), want exactly %d", len(evs), err, n)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("crash-state event %d has seq %d", i, ev.Seq)
		}
	}
	fh, _ := d2.ReadFirehose(0, 0)
	if len(fh) != n {
		t.Fatalf("crash-state firehose = %d events, want %d", len(fh), n)
	}
	// The next compaction folds the stale prefix away for good.
	if err := d2.CompactJob("job-0001"); err != nil {
		t.Fatal(err)
	}
	if evs, _ := d2.ReadJobEvents("job-0001", 0, 0); len(evs) != n {
		t.Fatalf("post-heal read = %d events, want %d", len(evs), n)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskEventLogTornTailLine asserts a partially-written final line (the
// power-cut-mid-append state) is skipped, not fatal, and that appends after
// reopen continue past it.
func TestDiskEventLogTornTailLine(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, d, "job-0001", 0, 5, 1)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "jobs", "job-0001.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":"job-0001","seq":5,"gs`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	evs, err := d2.ReadJobEvents("job-0001", 0, 0)
	if err != nil || len(evs) != 5 {
		t.Fatalf("torn-tail read = (%d events, %v), want 5", len(evs), err)
	}
	nextSeq, _, _ := d2.JobEventStats("job-0001")
	if nextSeq != 5 {
		t.Fatalf("torn-tail nextSeq = %d, want 5", nextSeq)
	}
	appendN(t, d2, "job-0001", 5, 2, 6)
	if evs, _ := d2.ReadJobEvents("job-0001", 0, 0); len(evs) != 7 {
		t.Fatalf("append past torn line = %d events, want 7", len(evs))
	}
}

// TestDiskJournalBytesPerEventFlat is the mechanical O(1) pin behind
// BenchmarkJournalAppend: the journal bytes written per appended event must
// not grow with the length of the log. The old full-document journal wrote
// O(events) bytes per event; here a 20× longer log must stay within 2× on
// bytes/event (compaction rewrites cost a small constant factor, not a
// linear one).
func TestDiskJournalBytesPerEventFlat(t *testing.T) {
	perEvent := func(n int) float64 {
		d, err := OpenDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		start := d.JournalBytes()
		for i := 0; i < n; i++ {
			if err := d.AppendJobEvents("job-0001", []EventRecord{testEvent(i, int64(i+1))}); err != nil {
				t.Fatal(err)
			}
		}
		// Fold everything the background compactor may have left pending, so
		// the measurement includes full compaction cost.
		if err := d.CompactJob("job-0001"); err != nil {
			t.Fatal(err)
		}
		return float64(d.JournalBytes()-start) / float64(n)
	}
	small, large := perEvent(500), perEvent(10000)
	if large > 2*small {
		t.Fatalf("journal bytes/event grew with log length: %d events → %.1f B/event, %d events → %.1f B/event",
			500, small, 10000, large)
	}
	t.Logf("journal bytes/event: n=500 → %.1f, n=10000 → %.1f", small, large)
}

// TestDiskEventLogBackgroundCompactor asserts the compactor actually runs
// on its own once the tail passes the threshold.
func TestDiskEventLogBackgroundCompactor(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetEventLogTuning(8, 16)
	appendN(t, d, "job-0001", 0, 64, 1)
	// The fold is asynchronous; poll for a sealed segment.
	deadline := 200
	for ; deadline > 0; deadline-- {
		if des, _ := os.ReadDir(d.jobSegsDir("job-0001")); len(des) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deadline == 0 {
		t.Fatal("background compactor never sealed a segment")
	}
	if evs, _ := d.ReadJobEvents("job-0001", 0, 0); len(evs) != 64 {
		t.Fatalf("background compaction changed visible events: %d, want 64", len(evs))
	}
}

// TestEventRecordDedup pins the reader-side exactly-once rule directly.
func TestEventRecordDedup(t *testing.T) {
	evs := []EventRecord{testEvent(2, 3), testEvent(0, 1), testEvent(2, 3), testEvent(1, 2)}
	out := sortDedupEvents(evs)
	if len(out) != 3 {
		t.Fatalf("dedup kept %d events, want 3", len(out))
	}
	for i, ev := range out {
		if ev.Seq != i {
			t.Fatalf("dedup order wrong at %d: %+v", i, out)
		}
	}
	if got := fmt.Sprint(capEvents(out, 2)[1].Seq); got != "1" {
		t.Fatalf("capEvents broke ordering: %s", got)
	}
}

// trimConformance exercises the retention contract both implementations
// share: at least keepLast events stay readable, older history may go, and
// the newest events always survive.
func trimConformance(t *testing.T, s Store) {
	t.Helper()
	const n = 100
	appendN(t, s, "job-0001", 0, n, 1)
	if err := s.TrimJobEvents("job-0001", 0); err != nil {
		t.Fatal(err)
	}
	if evs, _ := s.ReadJobEvents("job-0001", 0, 0); len(evs) != n {
		t.Fatalf("keepLast=0 trimmed: %d events left, want %d", len(evs), n)
	}
	if err := s.TrimJobEvents("job-0001", 10); err != nil {
		t.Fatal(err)
	}
	evs, err := s.ReadJobEvents("job-0001", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < 10 {
		t.Fatalf("trim kept %d events, want at least 10", len(evs))
	}
	for i, ev := range evs {
		if want := n - len(evs) + i; ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (suffix must be contiguous)", i, ev.Seq, want)
		}
	}
	if evs[len(evs)-1].Seq != n-1 {
		t.Fatalf("newest event %d lost by trim", n-1)
	}
	// Stats still report the true frontier: trims must never rewind Seq/GSeq
	// allocation.
	nextSeq, lastG, _ := s.JobEventStats("job-0001")
	if nextSeq != n || lastG != int64(n) {
		t.Fatalf("stats after trim = (next %d, lastG %d), want (%d, %d)", nextSeq, lastG, n, n)
	}
	if err := s.TrimJobEvents("no-such-job", 5); err != nil {
		t.Fatalf("trimming an absent job: %v", err)
	}
	if err := s.TrimJobEvents("../evil", 5); err == nil {
		t.Fatal("trim with a malformed id must fail")
	}
}

func TestMemTrimJobEvents(t *testing.T) { trimConformance(t, NewMem()) }

// TestDiskTrimJobEvents compacts most of the log into sealed segments, trims,
// and asserts old segments are gone from disk while the retained suffix —
// and the index rebuilt by a reopen — stay intact.
func TestDiskTrimJobEvents(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.SetEventLogTuning(16, 1<<30) // manual compaction only
	trimConformance(t, d)

	segsBefore, _ := os.ReadDir(d.jobSegsDir("job-0001"))
	if err := d.CompactJob("job-0001"); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := os.ReadDir(d.jobSegsDir("job-0001"))
	if len(segsAfter) <= len(segsBefore) {
		t.Fatalf("compaction sealed nothing (%d -> %d segments)", len(segsBefore), len(segsAfter))
	}
	if err := d.TrimJobEvents("job-0001", 8); err != nil {
		t.Fatal(err)
	}
	segsTrimmed, _ := os.ReadDir(d.jobSegsDir("job-0001"))
	if len(segsTrimmed) >= len(segsAfter) {
		t.Fatalf("trim removed no segment files (%d -> %d)", len(segsAfter), len(segsTrimmed))
	}
	evs, _ := d.ReadJobEvents("job-0001", 0, 0)
	if len(evs) < 8 || evs[len(evs)-1].Seq != 99 {
		t.Fatalf("trimmed log = %d events ending at seq %d, want >= 8 ending at 99", len(evs), evs[len(evs)-1].Seq)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen rebuilds the index from what survived; the frontier holds.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	nextSeq, lastG, _ := d2.JobEventStats("job-0001")
	if nextSeq != 100 || lastG != 100 {
		t.Fatalf("reopened stats = (next %d, lastG %d), want (100, 100)", nextSeq, lastG)
	}
}

// TestLiveSegCap exercises the mid-flight retention bound: with a live
// sealed-segment cap set, compaction drops the oldest sealed segments of a
// still-appending job, reads below the dropped range lead with a Truncated
// marker instead of a silent gap, and the truncation edge survives a reopen.
func TestLiveSegCap(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.SetEventLogTuning(4, 1<<30) // tiny segments, manual compaction only
	d.SetLiveSegCap(2)
	const n = 40 // seals 10 segments of 4; cap keeps the newest 2
	appendN(t, d, "job-0001", 0, n, 1)
	if err := d.CompactJob("job-0001"); err != nil {
		t.Fatal(err)
	}
	segs, _ := os.ReadDir(d.jobSegsDir("job-0001"))
	if len(segs) != 2 {
		t.Fatalf("cap left %d sealed segments on disk, want 2", len(segs))
	}
	// Seqs 0..31 are gone; 32..39 survive in the two newest segments.
	const minAvail = n - 2*4

	verify := func(s Store, label string) {
		t.Helper()
		evs, err := s.ReadJobEvents("job-0001", 0, 0)
		if err != nil {
			t.Fatalf("%s: deep read: %v", label, err)
		}
		if len(evs) != 1+8 {
			t.Fatalf("%s: deep read = %d records, want marker + 8 events", label, len(evs))
		}
		m := evs[0]
		if !m.Truncated || m.Seq != minAvail-1 || m.Job != "job-0001" || len(m.Payload) != 0 {
			t.Fatalf("%s: deep read must lead with a truncation marker at seq %d, got %+v", label, minAvail-1, m)
		}
		for i, ev := range evs[1:] {
			if ev.Truncated || ev.Seq != minAvail+i {
				t.Fatalf("%s: surviving event %d = %+v", label, i, ev)
			}
		}
		// A read at or above the truncation edge sees no marker.
		evs, _ = s.ReadJobEvents("job-0001", minAvail, 0)
		if len(evs) != 8 || evs[0].Truncated {
			t.Fatalf("%s: read from %d = %d records (first truncated=%v), want 8 plain events",
				label, minAvail, len(evs), len(evs) > 0 && evs[0].Truncated)
		}
		// A deep firehose resume carries the marker before the survivors...
		fh, err := s.ReadFirehose(0, 0)
		if err != nil {
			t.Fatalf("%s: firehose: %v", label, err)
		}
		if len(fh) != 1+8 || !fh[0].Truncated {
			t.Fatalf("%s: firehose from 0 = %d records (first truncated=%v), want marker + 8",
				label, len(fh), len(fh) > 0 && fh[0].Truncated)
		}
		// ...and a resume past the edge streams clean.
		if fh, _ := s.ReadFirehose(fh[0].GSeq, 0); len(fh) != 8 || fh[0].Truncated {
			t.Fatalf("%s: firehose past the edge = %d records, want 8 plain events", label, len(fh))
		}
		// The frontier never rewinds: new appends continue the sequence.
		nextSeq, lastG, _ := s.JobEventStats("job-0001")
		if nextSeq != n || lastG != int64(n) {
			t.Fatalf("%s: stats = (next %d, lastG %d), want (%d, %d)", label, nextSeq, lastG, n, n)
		}
	}
	verify(d, "live")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the truncation edge is rederived from the surviving layout.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	verify(d2, "reopened")

	// The job is still live: appends keep flowing and the next compaction
	// advances the edge rather than resurrecting history.
	d2.SetEventLogTuning(4, 1<<30)
	d2.SetLiveSegCap(2)
	appendN(t, d2, "job-0001", n, 8, int64(n)+1)
	if err := d2.CompactJob("job-0001"); err != nil {
		t.Fatal(err)
	}
	evs, _ := d2.ReadJobEvents("job-0001", 0, 0)
	if len(evs) != 1+8 || !evs[0].Truncated || evs[0].Seq != n-1 {
		t.Fatalf("after more appends: %d records, marker seq %d, want marker at %d + 8 events",
			len(evs), evs[0].Seq, n-1)
	}
}
