package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/characterize"
	"repro/internal/fvm"
	"repro/internal/silicon"
)

// testRecord fabricates a small but structurally complete record: a
// two-level sweep plus an FVM over four sites. The run index varies the
// payload so overwrites are observable.
func testRecord(t *testing.T, platformName, serial string, runs int) *Record {
	t.Helper()
	sweep := &characterize.Sweep{
		Platform: platformName, Serial: serial, PatternName: "16'hFFFF", OnBoardC: 50,
		Levels: []characterize.Level{
			{V: 0.61, MedianFaults: 0, PerBRAM: []float64{0, 0, 0, 0}},
			{V: 0.54, MedianFaults: float64(runs), FaultsPerMbit: float64(runs) * 2,
				PerBRAM: []float64{0, 1, 2, float64(runs)}},
		},
	}
	sites := []silicon.Site{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}, {X: 1, Y: 1}}
	m, err := fvm.New(platformName, serial, 2, 2, 0.61, 0.54, 50, sites, sweep.PerBRAMMedian())
	if err != nil {
		t.Fatal(err)
	}
	return &Record{
		Key: Key{
			Platform: platformName, Serial: serial, TempC: 50, Runs: runs,
			Options: "fill=FFFF|win=0.610..0.540|step=0.010",
		},
		Sweep: sweep, FVM: m,
	}
}

// conformance exercises the Store contract shared by Disk and Mem.
func conformance(t *testing.T, s Store) {
	t.Helper()
	rec := testRecord(t, "VC707", "1308-6520", 20)
	if _, ok, err := s.Get(rec.Key); err != nil || ok {
		t.Fatalf("empty store Get = (ok=%v, err=%v), want miss", ok, err)
	}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(rec.Key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = (ok=%v, err=%v)", ok, err)
	}
	if got.Sweep.Final().MedianFaults != 20 || got.FVM.Serial != "1308-6520" {
		t.Fatalf("round-trip mangled the record: %+v", got)
	}
	if got.Sweep == rec.Sweep {
		t.Fatal("Get aliases the stored sweep; records must round-trip, not alias")
	}

	// Same key, new payload: last write wins.
	rec2 := testRecord(t, "VC707", "1308-6520", 20)
	rec2.Sweep.Levels[1].MedianFaults = 99
	if err := s.Put(rec2); err != nil {
		t.Fatal(err)
	}
	got, _, err = s.Get(rec.Key)
	if err != nil || got.Sweep.Final().MedianFaults != 99 {
		t.Fatalf("overwrite not visible: faults=%v err=%v", got.Sweep.Final().MedianFaults, err)
	}

	// A second, distinct key coexists and lists in stable order.
	other := testRecord(t, "KC705-A", "604018691749-76023", 10)
	if err := s.Put(other); err != nil {
		t.Fatal(err)
	}
	metas, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(metas))
	}
	if metas[0].Key.Platform != "KC705-A" || metas[1].Key.Platform != "VC707" {
		t.Fatalf("List order not stable: %+v", metas)
	}
	byID, ok, err := s.GetID(metas[1].ID)
	if err != nil || !ok || byID.Key.Platform != "VC707" {
		t.Fatalf("GetID = (%+v, %v, %v)", byID, ok, err)
	}

	// Incomplete records are rejected before they can poison the store.
	if err := s.Put(&Record{Key: Key{Platform: "VC707", Serial: "x"}}); err == nil {
		t.Fatal("sweep-less record was accepted")
	}
}

func TestDiskConformance(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	conformance(t, s)
}

func TestMemConformance(t *testing.T) {
	conformance(t, NewMem())
}

func TestDiskGetIDRejectsNonAddresses(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A decodable file outside objects/ must be unreachable by id.
	rec := testRecord(t, "VC707", "1308-6520", 7)
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "secret.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"aa/../../secret",
		"aa/../../secret.json",
		"..",
		"",
		"zz" + strings.Repeat("0", 62), // non-hex, right length
		strings.ToUpper(rec.Key.ID()),  // case matters: addresses are lowercase
		rec.Key.ID() + "0",             // wrong length
	} {
		if _, ok, err := s.GetID(id); ok || err == nil {
			t.Fatalf("id %q was accepted (ok=%v err=%v)", id, ok, err)
		}
	}
}

func TestKeyID(t *testing.T) {
	a := Key{Platform: "VC707", Serial: "a", TempC: 50, Runs: 100, Options: "o"}
	if a.ID() != a.ID() {
		t.Fatal("ID is not deterministic")
	}
	variants := []Key{
		{Platform: "VC707", Serial: "b", TempC: 50, Runs: 100, Options: "o"},
		{Platform: "VC707", Serial: "a", TempC: 60, Runs: 100, Options: "o"},
		{Platform: "VC707", Serial: "a", TempC: 50, Runs: 10, Options: "o"},
		{Platform: "VC707", Serial: "a", TempC: 50, Runs: 100, Options: "p"},
		{Platform: "ZC702", Serial: "a", TempC: 50, Runs: 100, Options: "o"},
	}
	for _, v := range variants {
		if v.ID() == a.ID() {
			t.Fatalf("distinct keys share an id: %+v vs %+v", a, v)
		}
	}
}

func TestDiskRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(t, "ZC702", "630851561533-44019", 12)
	if err := s1.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same root sees the record.
	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(rec.Key)
	if err != nil || !ok {
		t.Fatalf("restarted store lost the record: ok=%v err=%v", ok, err)
	}
	if got.Sweep.Final().FaultsPerMbit != rec.Sweep.Final().FaultsPerMbit {
		t.Fatal("restarted store returned a different sweep")
	}
	metas, err := s2.List()
	if err != nil || len(metas) != 1 {
		t.Fatalf("restarted List = (%d entries, %v), want 1", len(metas), err)
	}
}

func TestDiskHealsUnflushedIndex(t *testing.T) {
	// A process that Puts and then dies without Close leaves the on-disk
	// index behind the object tree; the next open must reconcile.
	dir := t.TempDir()
	s1, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		testRecord(t, "VC707", "1308-6520", 20),
		testRecord(t, "ZC702", "630851561533-44019", 20),
	}
	for _, r := range recs {
		if err := s1.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate the crash.

	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := s2.List()
	if err != nil || len(metas) != 2 {
		t.Fatalf("healed index has %d entries (%v), want 2", len(metas), err)
	}
	for _, r := range recs {
		if _, ok, err := s2.Get(r.Key); err != nil || !ok {
			t.Fatalf("record %s lost across crash: ok=%v err=%v", r.Key.Platform, ok, err)
		}
	}
	// The heal re-persisted the index: a third open loads it clean.
	s3, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if metas, err := s3.List(); err != nil || len(metas) != 2 {
		t.Fatalf("post-heal index has %d entries (%v)", len(metas), err)
	}
}

func TestDiskCorruptIndexRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		testRecord(t, "VC707", "1308-6520", 20),
		testRecord(t, "KC705-B", "604016111717-65664", 20),
	}
	for _, r := range recs {
		if err := s1.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("corrupt index prevented open: %v", err)
	}
	metas, err := s2.List()
	if err != nil || len(metas) != 2 {
		t.Fatalf("rebuilt index has %d entries (%v), want 2", len(metas), err)
	}
	for _, r := range recs {
		if _, ok, err := s2.Get(r.Key); err != nil || !ok {
			t.Fatalf("record %s/%s lost in recovery: ok=%v err=%v", r.Key.Platform, r.Key.Serial, ok, err)
		}
	}
	// The rebuilt index was re-persisted: a third open loads it cleanly.
	s3, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if metas, err := s3.List(); err != nil || len(metas) != 2 {
		t.Fatalf("re-persisted index has %d entries (%v), want 2", len(metas), err)
	}
}

func TestDiskCorruptBlobSkippedOnReindex(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testRecord(t, "VC707", "1308-6520", 20)
	if err := s1.Put(good); err != nil {
		t.Fatal(err)
	}
	bad := testRecord(t, "ZC702", "630851561533-44019", 20)
	if err := s1.Put(bad); err != nil {
		t.Fatal(err)
	}
	// Tear the second blob and destroy the index: recovery must keep the
	// good record and drop the torn one.
	badPath := filepath.Join(dir, "objects", bad.Key.ID()[:2], bad.Key.ID()+".json")
	if err := os.WriteFile(badPath, []byte(`{"platform":"ZC702","ser`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := s2.List()
	if err != nil || len(metas) != 1 {
		t.Fatalf("reindex kept %d entries (%v), want 1", len(metas), err)
	}
	if metas[0].Key.Platform != "VC707" {
		t.Fatalf("reindex kept the wrong record: %+v", metas[0])
	}
	if _, _, err := s2.Get(bad.Key); err == nil {
		t.Fatal("reading the torn blob did not surface an error")
	}
}

func TestDiskConcurrentWritersOneKey(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	const readers = 8
	base := testRecord(t, "VC707", "1308-6520", 1)
	if err := s.Put(base); err != nil {
		t.Fatal(err)
	}
	key := base.Key

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := testRecord(t, "VC707", "1308-6520", 1)
			rec.Sweep.Levels[1].MedianFaults = float64(w)
			// All writers share one key; Runs stays 1 so the key is stable.
			if err := s.Put(rec); err != nil {
				errs <- fmt.Errorf("writer %d: %w", w, err)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rec, ok, err := s.Get(key)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if ok && len(rec.Sweep.Levels) != 2 {
					errs <- fmt.Errorf("reader %d observed a torn record: %d levels", r, len(rec.Sweep.Levels))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Exactly one version survives, and it is one of the written ones.
	rec, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("final Get = (ok=%v, err=%v)", ok, err)
	}
	if f := rec.Sweep.Levels[1].MedianFaults; f < 0 || f >= writers {
		t.Fatalf("final record has faults=%v, not one of the racing writes", f)
	}
	if metas, _ := s.List(); len(metas) != 1 {
		t.Fatalf("racing writers on one key left %d index entries", len(metas))
	}
	// No temp files were left behind by the racing renames.
	err = filepath.WalkDir(dir(s), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) != ".json" {
			t.Errorf("leftover temp file: %s", path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func dir(s *Disk) string { return s.Root() }

func TestDiskConcurrentDistinctKeys(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := testRecord(t, "KC705-A", fmt.Sprintf("serial-%02d", i), 5)
			if err := s.Put(rec); err != nil {
				errs <- err
				return
			}
			if _, ok, err := s.Get(rec.Key); err != nil || !ok {
				errs <- fmt.Errorf("key %d: get ok=%v err=%v", i, ok, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	metas, err := s.List()
	if err != nil || len(metas) != n {
		t.Fatalf("List = (%d, %v), want %d", len(metas), err, n)
	}
}
