package store

// Fault hooks: the disk-level half of the chaos-injection discipline (the
// HTTP half lives in internal/chaos). Each hook fires immediately before
// the operation it names; returning a non-nil error aborts that operation
// cleanly — no bytes are written first — so an injected ENOSPC or fsync
// failure exercises exactly the error path a real full or failing disk
// would, and recovery tests can reopen the store and assert the journal
// replays to the last durable event.

// FaultHooks intercepts Disk write operations for fault-injection tests.
// A nil hook (or a nil *FaultHooks) means the operation proceeds normally.
type FaultHooks struct {
	// AppendWrite fires before the event-log tail write in AppendJobEvents
	// (inject ENOSPC mid-append). AppendSync fires before the tail fsync.
	AppendWrite func(job string) error
	AppendSync  func(job string) error
	// WriteSync fires before the temp-file fsync inside atomicWrite;
	// Rename fires before the rename that publishes it. Both receive the
	// destination path.
	WriteSync func(path string) error
	Rename    func(path string) error
}

// SetFaultHooks installs (or, with nil, removes) the fault hooks. Safe to
// call concurrently with store operations; in-flight operations keep the
// hooks they started with.
func (d *Disk) SetFaultHooks(h *FaultHooks) {
	d.faults.Store(h)
}

// faultAppendWrite reports the injected error, if any, for the event-log
// tail write of job id.
func (d *Disk) faultAppendWrite(id string) error {
	if h := d.faults.Load(); h != nil && h.AppendWrite != nil {
		return h.AppendWrite(id)
	}
	return nil
}

func (d *Disk) faultAppendSync(id string) error {
	if h := d.faults.Load(); h != nil && h.AppendSync != nil {
		return h.AppendSync(id)
	}
	return nil
}

func (d *Disk) faultWriteSync(path string) error {
	if h := d.faults.Load(); h != nil && h.WriteSync != nil {
		return h.WriteSync(path)
	}
	return nil
}

func (d *Disk) faultRename(path string) error {
	if h := d.faults.Load(); h != nil && h.Rename != nil {
		return h.Rename(path)
	}
	return nil
}
