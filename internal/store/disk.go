package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// numStripes is the size of the per-blob lock table. Power of two so the
// stripe index is a cheap mask.
const numStripes = 64

// Disk is the durable Store: content-addressed JSON blobs under a root
// directory, with an index file for listings. See the package documentation
// for the layout and the atomicity/locking discipline.
type Disk struct {
	root string

	stripes [numStripes]sync.RWMutex // per-blob access, keyed by id hash

	indexMu sync.Mutex
	index   map[string]Key // id → key
	dirty   bool           // index has entries not yet flushed to disk
}

// OpenDisk opens (or initializes) a store rooted at dir. A missing directory
// is created; a missing or corrupt index is rebuilt from the object tree.
func OpenDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: init root: %w", err)
	}
	d := &Disk{root: dir, index: make(map[string]Key)}
	if err := d.loadIndex(); err != nil {
		// Recovery path: the index is a cache of blob metadata, never the
		// source of truth. Rebuild it by scanning the objects.
		if err := d.reindex(); err != nil {
			return nil, err
		}
	} else if err := d.healIndex(); err != nil {
		return nil, err
	}
	return d, nil
}

// healIndex reconciles a loaded index against the object tree — e.g. after
// a process died between a blob write and the next index flush. The scan is
// names-only; only blobs actually missing from the index are read, so
// recovery costs O(missing), not O(store).
func (d *Disk) healIndex() error {
	onDisk := make(map[string]bool)
	err := filepath.WalkDir(filepath.Join(d.root, "objects"), func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			return err
		}
		onDisk[strings.TrimSuffix(de.Name(), ".json")] = true
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scan objects: %w", err)
	}
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	for id := range d.index {
		if !onDisk[id] {
			delete(d.index, id)
			d.dirty = true
		}
	}
	for id := range onDisk {
		if _, ok := d.index[id]; ok {
			continue
		}
		rec, ok, err := d.GetID(id)
		if err != nil || !ok || rec.Key.ID() != id {
			continue // corrupt or mis-addressed blob: leave it unindexed
		}
		d.index[id] = rec.Key
		d.dirty = true
	}
	// Best-effort flush, like List: the in-memory index is already correct,
	// and a full or read-only disk must not make a readable store
	// unopenable. dirty stays set, so the flush retries later.
	_ = d.flushIndexLocked()
	return nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

func (d *Disk) indexPath() string { return filepath.Join(d.root, "index.json") }

func (d *Disk) blobPath(id string) string {
	return filepath.Join(d.root, "objects", id[:2], id+".json")
}

func (d *Disk) stripe(id string) *sync.RWMutex {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &d.stripes[h.Sum32()&(numStripes-1)]
}

// indexFile is the serialized form of the index.
type indexFile struct {
	Version int            `json:"version"`
	Entries map[string]Key `json:"entries"`
}

// loadIndex reads index.json into memory. Any read or decode failure is
// returned so the caller can fall back to a rebuild.
func (d *Disk) loadIndex() error {
	raw, err := os.ReadFile(d.indexPath())
	if err != nil {
		return err
	}
	var f indexFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("store: corrupt index: %w", err)
	}
	if f.Entries == nil {
		f.Entries = make(map[string]Key)
	}
	d.indexMu.Lock()
	d.index = f.Entries
	d.indexMu.Unlock()
	return nil
}

// reindex rebuilds the index by scanning every blob and re-deriving its key
// from the embedded record metadata. Blobs that fail to decode or whose
// content disagrees with their filename are skipped, not fatal: one torn
// write must not take the rest of the store down with it.
func (d *Disk) reindex() error {
	entries := make(map[string]Key)
	objRoot := filepath.Join(d.root, "objects")
	err := filepath.WalkDir(objRoot, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil // unreadable blob: skip
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil || rec.Validate() != nil {
			return nil // corrupt blob: skip
		}
		key := rec.Key
		if key.ID() != strings.TrimSuffix(de.Name(), ".json") {
			return nil // blob content does not match its address: skip
		}
		entries[key.ID()] = key
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: reindex: %w", err)
	}
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	d.index = entries
	d.dirty = true
	// Best-effort, as in healIndex: a failed flush keeps dirty set and must
	// not fail the open — blob reads never need the index file.
	_ = d.flushIndexLocked()
	return nil
}

// flushIndexLocked persists the index when it has unflushed entries;
// callers hold indexMu. Keeping the whole marshal+rename under the lock
// means two racing flushes can never land their renames in the opposite
// order of their marshals and persist a stale index.
func (d *Disk) flushIndexLocked() error {
	if !d.dirty {
		return nil
	}
	f := indexFile{Version: 1, Entries: d.index}
	raw, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("store: encode index: %w", err)
	}
	if err := atomicWrite(d.indexPath(), raw); err != nil {
		return err
	}
	d.dirty = false
	return nil
}

// Put stores the record, replacing any previous version of the same key.
// The blob write is atomic (tmp + fsync + rename) and serialized per id, so
// racing writers on one key cannot tear each other. The index update is
// in-memory only — Gets are content-addressed and never need it — and is
// flushed on List and Close, which keeps Put O(blob) instead of rewriting
// the whole index per record; a crash between flushes is healed by the
// staleness check at the next open.
func (d *Disk) Put(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	key := rec.Key
	id := key.ID()
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	path := d.blobPath(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: blob dir: %w", err)
	}
	mu := d.stripe(id)
	mu.Lock()
	err = atomicWrite(path, raw)
	mu.Unlock()
	if err != nil {
		return err
	}
	d.indexMu.Lock()
	d.index[id] = key
	d.dirty = true
	d.indexMu.Unlock()
	return nil
}

// Get returns the record stored under k, or ok=false when no blob exists.
func (d *Disk) Get(k Key) (*Record, bool, error) {
	return d.GetID(k.ID())
}

// ValidID reports whether id has the shape of a content address (64 hex
// digits). Anything else must never reach the filesystem: ids arrive from
// the HTTP layer, and a crafted "aa/../../…" id would otherwise escape the
// store root via blobPath.
func ValidID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// GetID returns the record with the given content address.
func (d *Disk) GetID(id string) (*Record, bool, error) {
	if !ValidID(id) {
		return nil, false, fmt.Errorf("store: malformed id %q", id)
	}
	mu := d.stripe(id)
	mu.RLock()
	raw, err := os.ReadFile(d.blobPath(id))
	mu.RUnlock()
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read blob %s: %w", id, err)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, false, fmt.Errorf("store: corrupt blob %s: %w", id, err)
	}
	if err := rec.Validate(); err != nil {
		return nil, false, err
	}
	return &rec, true, nil
}

// List returns the indexed records in stable order, opportunistically
// flushing pending index entries so the on-disk index tracks what callers
// were shown. A flush failure (full or read-only disk) does not fail the
// read — the in-memory listing is already complete and correct, and the
// flush retries on the next List/Close; a persistently unflushed index is
// healed by the staleness check at the next open.
func (d *Disk) List() ([]Meta, error) {
	d.indexMu.Lock()
	_ = d.flushIndexLocked()
	out := make([]Meta, 0, len(d.index))
	for id, key := range d.index {
		out = append(out, Meta{ID: id, Key: key})
	}
	d.indexMu.Unlock()
	sortMetas(out)
	return out, nil
}

// Close flushes the index. Blobs themselves are durable at Put time.
func (d *Disk) Close() error {
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	return d.flushIndexLocked()
}

// atomicWrite lands data at path via a temp file in the same directory, an
// fsync, and a rename, so concurrent readers see either the previous
// content or the new content in full — and a power cut after Put returns
// cannot leave a journaled rename pointing at unflushed data blocks.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer df.Close()
	if err := df.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
