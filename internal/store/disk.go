package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numStripes is the size of the per-blob lock table. Power of two so the
// stripe index is a cheap mask.
const numStripes = 64

// Disk is the durable Store: content-addressed JSON blobs under a root
// directory, with an index file for listings and a jobs directory for the
// campaign journal. See the package documentation for the layout and the
// atomicity/locking discipline.
type Disk struct {
	root string

	stripes [numStripes]sync.RWMutex // per-blob access, keyed by id hash

	indexMu sync.Mutex
	index   map[string]idxEntry // id → key + summary + put order
	seq     int64               // last put sequence handed out
	dirty   bool                // index has entries not yet flushed to disk

	// Event-log state (see eventlog.go). evMu guards only the map; each
	// jobLog's fields are guarded by its job's stripe lock.
	evMu        sync.Mutex
	evLogs      map[string]*jobLog
	segSize     int
	compactTail int
	liveSegCap  int // sealed segments kept per live job; 0 = unlimited
	compactCh   chan string
	quit        chan struct{}
	closeOnce   sync.Once
	wg          sync.WaitGroup
	jnBytes     atomic.Uint64 // journal bytes written, for benchmarks

	faults atomic.Pointer[FaultHooks] // fault-injection hooks; nil = none
}

// OpenDisk opens (or initializes) a store rooted at dir. A missing directory
// is created; a missing or corrupt index is rebuilt from the object tree.
func OpenDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: init root: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: init jobs dir: %w", err)
	}
	d := &Disk{
		root: dir, index: make(map[string]idxEntry),
		evLogs:      make(map[string]*jobLog),
		segSize:     defaultEventSegSize,
		compactTail: defaultCompactTail,
		compactCh:   make(chan string, 128),
		quit:        make(chan struct{}),
	}
	if err := d.loadIndex(); err != nil {
		// Recovery path: the index is a cache of blob metadata, never the
		// source of truth. Rebuild it by scanning the objects. A version-1
		// index (pre-summary schema) lands here too and upgrades itself.
		if err := d.reindex(); err != nil {
			return nil, err
		}
	} else if err := d.healIndex(); err != nil {
		return nil, err
	}
	if err := d.scanEventLogs(); err != nil {
		return nil, err
	}
	d.wg.Add(1)
	go d.compactLoop()
	return d, nil
}

// healIndex reconciles a loaded index against the object tree — e.g. after
// a process died between a blob write and the next index flush. The scan is
// names-only; only blobs actually missing from the index (or indexed
// without a summary) are read, so recovery costs O(missing), not O(store).
func (d *Disk) healIndex() error {
	type found struct {
		id    string
		mtime int64
	}
	var onDisk []found
	present := make(map[string]bool)
	err := filepath.WalkDir(filepath.Join(d.root, "objects"), func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			return err
		}
		id := strings.TrimSuffix(de.Name(), ".json")
		var mtime int64
		if info, err := de.Info(); err == nil {
			mtime = info.ModTime().UnixNano()
		}
		onDisk = append(onDisk, found{id, mtime})
		present[id] = true
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scan objects: %w", err)
	}
	// Oldest first, so the put sequences assigned to healed entries agree
	// with the write order GC will later judge "newest" by.
	sort.Slice(onDisk, func(i, j int) bool {
		if onDisk[i].mtime != onDisk[j].mtime {
			return onDisk[i].mtime < onDisk[j].mtime
		}
		return onDisk[i].id < onDisk[j].id
	})
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	for id := range d.index {
		if !present[id] {
			delete(d.index, id)
			d.dirty = true
		}
	}
	for _, f := range onDisk {
		if e, ok := d.index[f.id]; ok && e.Summary != nil {
			continue
		}
		rec, ok, err := d.GetID(f.id)
		if err != nil || !ok || rec.Key.ID() != f.id {
			continue // corrupt or mis-addressed blob: leave it unindexed
		}
		e := d.index[f.id] // keeps an existing entry's put order
		if e.Seq == 0 {
			d.seq++
			e.Seq = d.seq
		}
		if e.StoredAt == 0 {
			e.StoredAt = f.mtime
		}
		e.Key = rec.Key
		e.Summary = Summarize(rec)
		d.index[f.id] = e
		d.dirty = true
	}
	// Best-effort flush, like List: the in-memory index is already correct,
	// and a full or read-only disk must not make a readable store
	// unopenable. dirty stays set, so the flush retries later.
	_ = d.flushIndexLocked()
	return nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

func (d *Disk) indexPath() string { return filepath.Join(d.root, "index.json") }

func (d *Disk) blobPath(id string) string {
	return filepath.Join(d.root, "objects", id[:2], id+".json")
}

func (d *Disk) stripe(id string) *sync.RWMutex {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &d.stripes[h.Sum32()&(numStripes-1)]
}

// indexVersion is the current index schema: version 2 added cached
// summaries and put sequences. Older versions are rebuilt wholesale — the
// blobs are the source of truth, so an upgrade is just a reindex.
const indexVersion = 2

// indexFile is the serialized form of the index.
type indexFile struct {
	Version int                 `json:"version"`
	Entries map[string]idxEntry `json:"entries"`
}

// loadIndex reads index.json into memory. Any read or decode failure (or a
// pre-summary schema version) is returned so the caller can fall back to a
// rebuild.
func (d *Disk) loadIndex() error {
	raw, err := os.ReadFile(d.indexPath())
	if err != nil {
		return err
	}
	var f indexFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("store: corrupt index: %w", err)
	}
	if f.Version != indexVersion {
		return fmt.Errorf("store: index schema v%d, want v%d", f.Version, indexVersion)
	}
	if f.Entries == nil {
		f.Entries = make(map[string]idxEntry)
	}
	var maxSeq int64
	for _, e := range f.Entries {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
	}
	d.indexMu.Lock()
	d.index = f.Entries
	d.seq = maxSeq
	d.indexMu.Unlock()
	return nil
}

// reindex rebuilds the index by scanning every blob and re-deriving its key
// and summary from the embedded record metadata. Blobs that fail to decode
// or whose content disagrees with their filename are skipped, not fatal:
// one torn write must not take the rest of the store down with it. Put
// order is reconstructed from file mtimes so GC's notion of "newest"
// survives the rebuild.
func (d *Disk) reindex() error {
	type scanned struct {
		id    string
		mtime int64
		rec   *Record
	}
	var blobs []scanned
	objRoot := filepath.Join(d.root, "objects")
	err := filepath.WalkDir(objRoot, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil // unreadable blob: skip
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil || rec.Validate() != nil {
			return nil // corrupt blob: skip
		}
		id := strings.TrimSuffix(de.Name(), ".json")
		if rec.Key.ID() != id {
			return nil // blob content does not match its address: skip
		}
		var mtime int64
		if info, err := de.Info(); err == nil {
			mtime = info.ModTime().UnixNano()
		}
		blobs = append(blobs, scanned{id, mtime, &rec})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: reindex: %w", err)
	}
	sort.Slice(blobs, func(i, j int) bool {
		if blobs[i].mtime != blobs[j].mtime {
			return blobs[i].mtime < blobs[j].mtime
		}
		return blobs[i].id < blobs[j].id
	})
	entries := make(map[string]idxEntry, len(blobs))
	for i, b := range blobs {
		entries[b.id] = idxEntry{
			Key: b.rec.Key, StoredAt: b.mtime, Seq: int64(i + 1),
			Summary: Summarize(b.rec),
		}
	}
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	d.index = entries
	d.seq = int64(len(blobs))
	d.dirty = true
	// Best-effort, as in healIndex: a failed flush keeps dirty set and must
	// not fail the open — blob reads never need the index file.
	_ = d.flushIndexLocked()
	return nil
}

// flushIndexLocked persists the index when it has unflushed entries;
// callers hold indexMu. Keeping the whole marshal+rename under the lock
// means two racing flushes can never land their renames in the opposite
// order of their marshals and persist a stale index.
func (d *Disk) flushIndexLocked() error {
	if !d.dirty {
		return nil
	}
	f := indexFile{Version: indexVersion, Entries: d.index}
	raw, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("store: encode index: %w", err)
	}
	if err := d.atomicWrite(d.indexPath(), raw); err != nil {
		return err
	}
	d.dirty = false
	return nil
}

// Put stores the record, replacing any previous version of the same key.
// The blob write is atomic (tmp + fsync + rename) and serialized per id, so
// racing writers on one key cannot tear each other. The index update is
// in-memory only — Gets are content-addressed and never need it — and is
// flushed on List and Close, which keeps Put O(blob) instead of rewriting
// the whole index per record; a crash between flushes is healed by the
// staleness check at the next open.
func (d *Disk) Put(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	key := rec.Key
	id := key.ID()
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	path := d.blobPath(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: blob dir: %w", err)
	}
	mu := d.stripe(id)
	mu.Lock()
	err = d.atomicWrite(path, raw)
	mu.Unlock()
	if err != nil {
		return err
	}
	d.indexMu.Lock()
	d.seq++
	d.index[id] = idxEntry{
		Key: key, StoredAt: time.Now().UnixNano(), Seq: d.seq,
		Summary: Summarize(rec),
	}
	d.dirty = true
	d.indexMu.Unlock()
	return nil
}

// Get returns the record stored under k, or ok=false when no blob exists.
func (d *Disk) Get(k Key) (*Record, bool, error) {
	return d.GetID(k.ID())
}

// ValidID reports whether id has the shape of a content address (64 hex
// digits). Anything else must never reach the filesystem: ids arrive from
// the HTTP layer, and a crafted "aa/../../…" id would otherwise escape the
// store root via blobPath.
func ValidID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// GetID returns the record with the given content address.
func (d *Disk) GetID(id string) (*Record, bool, error) {
	if !ValidID(id) {
		return nil, false, fmt.Errorf("store: malformed id %q", id)
	}
	mu := d.stripe(id)
	mu.RLock()
	raw, err := os.ReadFile(d.blobPath(id))
	mu.RUnlock()
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read blob %s: %w", id, err)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, false, fmt.Errorf("store: corrupt blob %s: %w", id, err)
	}
	if err := rec.Validate(); err != nil {
		return nil, false, err
	}
	return &rec, true, nil
}

// List returns the indexed records in stable order, opportunistically
// flushing pending index entries so the on-disk index tracks what callers
// were shown. A flush failure (full or read-only disk) does not fail the
// read — the in-memory listing is already complete and correct, and the
// flush retries on the next List/Close; a persistently unflushed index is
// healed by the staleness check at the next open.
func (d *Disk) List() ([]Meta, error) {
	d.indexMu.Lock()
	_ = d.flushIndexLocked()
	out := make([]Meta, 0, len(d.index))
	for id, e := range d.index {
		out = append(out, e.meta(id))
	}
	d.indexMu.Unlock()
	sortMetas(out)
	return out, nil
}

// Delete removes one blob and its index entry. Lock order matches
// healIndex: indexMu outside, the blob's stripe inside.
func (d *Disk) Delete(id string) (Meta, bool, error) {
	if !ValidID(id) {
		return Meta{}, false, fmt.Errorf("store: malformed id %q", id)
	}
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	e, ok := d.index[id]
	if err := d.removeBlobLocked(id); err != nil {
		return Meta{}, false, err
	}
	if !ok {
		return Meta{}, false, nil
	}
	delete(d.index, id)
	d.dirty = true
	_ = d.flushIndexLocked()
	return e.meta(id), true, nil
}

// removeBlobLocked unlinks one blob file; a blob already gone is fine.
// Callers hold indexMu.
func (d *Disk) removeBlobLocked(id string) error {
	mu := d.stripe(id)
	mu.Lock()
	err := os.Remove(d.blobPath(id))
	mu.Unlock()
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete blob %s: %w", id, err)
	}
	return nil
}

// GC bounds the store to the newest keep records per (platform, serial).
func (d *Disk) GC(keep int) ([]Meta, error) {
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	var removed []Meta
	for _, id := range gcVictims(d.index, keep) {
		if err := d.removeBlobLocked(id); err != nil {
			// Keep the entry for what we could not unlink: a listing must
			// not claim a still-present blob is gone.
			_ = d.flushIndexLocked()
			return removed, err
		}
		removed = append(removed, d.index[id].meta(id))
		delete(d.index, id)
		d.dirty = true
	}
	_ = d.flushIndexLocked()
	return removed, nil
}

func (d *Disk) jobPath(id string) string {
	return filepath.Join(d.root, "jobs", id+".json")
}

// jobStripe serializes journal writes per job id, in a namespace distinct
// from blob ids so a job named like a content address cannot contend.
func (d *Disk) jobStripe(id string) *sync.RWMutex {
	return d.stripe("job\x00" + id)
}

// PutJob journals one campaign job, replacing any previous version.
func (d *Disk) PutJob(rec *JobRecord) error {
	if !ValidJobID(rec.ID) {
		return fmt.Errorf("store: malformed job id %q", rec.ID)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode job %s: %w", rec.ID, err)
	}
	mu := d.jobStripe(rec.ID)
	mu.Lock()
	defer mu.Unlock()
	if err := d.atomicWrite(d.jobPath(rec.ID), raw); err != nil {
		return err
	}
	d.addJnBytes(len(raw))
	return nil
}

// ListJobs returns every journaled job in submission order. Corrupt or
// misnamed journal files are skipped — a replay should degrade, not fail,
// when one record is torn.
func (d *Disk) ListJobs() ([]*JobRecord, error) {
	des, err := os.ReadDir(filepath.Join(d.root, "jobs"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: scan jobs: %w", err)
	}
	var out []*JobRecord
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		mu := d.jobStripe(id)
		mu.RLock()
		raw, err := os.ReadFile(d.jobPath(id))
		mu.RUnlock()
		if err != nil {
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID != id {
			continue
		}
		out = append(out, &rec)
	}
	sortJobs(out)
	return out, nil
}

// DeleteJob removes one journaled job — its metadata record and its whole
// event log; an absent id is not an error.
func (d *Disk) DeleteJob(id string) error {
	if !ValidJobID(id) {
		return fmt.Errorf("store: malformed job id %q", id)
	}
	mu := d.jobStripe(id)
	mu.Lock()
	defer mu.Unlock()
	if err := os.Remove(d.jobPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete job %s: %w", id, err)
	}
	return d.dropEventLog(id)
}

// Close stops the compactor, releases event-log handles, and flushes the
// index. Blobs themselves are durable at Put time.
func (d *Disk) Close() error {
	d.closeOnce.Do(func() { close(d.quit) })
	d.wg.Wait()
	d.evMu.Lock()
	for _, jl := range d.evLogs {
		if jl.f != nil {
			jl.f.Close()
			jl.f = nil
		}
	}
	d.evMu.Unlock()
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	return d.flushIndexLocked()
}

// atomicWrite lands data at path via a temp file in the same directory, an
// fsync, and a rename, so concurrent readers see either the previous
// content or the new content in full — and a power cut after Put returns
// cannot leave a journaled rename pointing at unflushed data blocks.
// FaultHooks (WriteSync, Rename) may abort the write before either step,
// leaving the previous content intact.
func (d *Disk) atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := d.faultWriteSync(path); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := d.faultRename(path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer df.Close()
	if err := df.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
