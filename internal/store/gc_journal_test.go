package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// bothStores runs a subtest against a Disk store and a Mem store, so every
// new contract surface is exercised by both implementations.
func bothStores(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("disk", func(t *testing.T) {
		d, err := OpenDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		fn(t, d)
	})
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
}

func TestListCarriesSummaries(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		rec := testRecord(t, "VC707", "1308-6520", 20)
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		metas, err := s.List()
		if err != nil || len(metas) != 1 {
			t.Fatalf("List = %d metas, %v", len(metas), err)
		}
		sum := metas[0].Summary
		if sum == nil {
			t.Fatal("index entry has no cached summary")
		}
		if !sum.HasFVM || sum.Sites != 4 || sum.Levels != 2 {
			t.Fatalf("summary shape %+v", sum)
		}
		if sum.VminV != 0.61 || sum.VcrashV != 0.54 || sum.FaultsPerMbit != 40 {
			t.Fatalf("summary window %+v", sum)
		}
		if metas[0].StoredAt.IsZero() {
			t.Fatalf("index entry has no stored-at time")
		}
	})
}

func TestSummariesSurviveReopenAndReindex(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(testRecord(t, "VC707", "1308-6520", 20)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean reopen serves summaries straight from the index file.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := d2.List()
	if err != nil || len(metas) != 1 || metas[0].Summary == nil || metas[0].Summary.Sites != 4 {
		t.Fatalf("reopened List = %+v, %v", metas, err)
	}
	d2.Close()

	// A destroyed index rebuilds with summaries recomputed from the blobs.
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	metas, err = d3.List()
	if err != nil || len(metas) != 1 || metas[0].Summary == nil || metas[0].Summary.Sites != 4 {
		t.Fatalf("reindexed List = %+v, %v", metas, err)
	}

	// A version-1 index (pre-summary schema) is treated as stale and
	// rebuilt rather than half-loaded.
	old, _ := json.Marshal(map[string]any{"version": 1, "entries": map[string]any{}})
	if err := os.WriteFile(filepath.Join(dir, "index.json"), old, 0o644); err != nil {
		t.Fatal(err)
	}
	d4, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d4.Close()
	metas, err = d4.List()
	if err != nil || len(metas) != 1 || metas[0].Summary == nil {
		t.Fatalf("v1-upgrade List = %+v, %v", metas, err)
	}
}

func TestDeleteRecord(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		a := testRecord(t, "VC707", "1308-6520", 20)
		b := testRecord(t, "KC705-A", "604018691749-76023", 10)
		for _, r := range []*Record{a, b} {
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		m, ok, err := s.Delete(a.Key.ID())
		if err != nil || !ok || m.Key.Platform != "VC707" {
			t.Fatalf("Delete = (%+v, %v, %v)", m, ok, err)
		}
		if _, ok, _ := s.GetID(a.Key.ID()); ok {
			t.Fatal("deleted record still readable")
		}
		metas, err := s.List()
		if err != nil || len(metas) != 1 || metas[0].Key.Platform != "KC705-A" {
			t.Fatalf("List after delete = %+v, %v", metas, err)
		}
		// Deleting again (or an unknown id) reports absence, not an error.
		if _, ok, err := s.Delete(a.Key.ID()); err != nil || ok {
			t.Fatalf("double delete = (ok=%v, err=%v)", ok, err)
		}
	})
}

func TestDiskDeleteSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(t, "VC707", "1308-6520", 20)
	if err := d.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Delete(rec.Key.ID()); err != nil || !ok {
		t.Fatalf("Delete = (ok=%v, err=%v)", ok, err)
	}
	d.Close()
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if metas, err := d2.List(); err != nil || len(metas) != 0 {
		t.Fatalf("deleted record resurrected after reopen: %+v, %v", metas, err)
	}
}

func TestGCKeepsNewestPerBoard(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		// Four records of one die (distinct temperatures), plus one record
		// of another die that must not be touched.
		var ids []string
		for i, temp := range []float64{40, 50, 60, 70} {
			rec := testRecord(t, "VC707", "1308-6520", 20+i)
			rec.Key.TempC = temp
			rec.Sweep.OnBoardC = temp
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, rec.Key.ID())
		}
		other := testRecord(t, "ZC702", "84011-98-73", 10)
		if err := s.Put(other); err != nil {
			t.Fatal(err)
		}

		removed, err := s.GC(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(removed) != 2 {
			t.Fatalf("GC removed %d records, want 2: %+v", len(removed), removed)
		}
		// The oldest two writes (40 and 50 °C) go; the newest two stay.
		gone := map[string]bool{removed[0].ID: true, removed[1].ID: true}
		if !gone[ids[0]] || !gone[ids[1]] {
			t.Fatalf("GC removed %v, want the oldest %v", removed, ids[:2])
		}
		for _, id := range ids[2:] {
			if _, ok, err := s.GetID(id); err != nil || !ok {
				t.Fatalf("GC evicted a record it should have kept: %s (%v)", id, err)
			}
		}
		if _, ok, err := s.GetID(other.Key.ID()); err != nil || !ok {
			t.Fatalf("GC touched an under-quota board: %v", err)
		}
		// Idempotent once within bounds; keep<=0 is a no-op.
		if removed, err := s.GC(2); err != nil || len(removed) != 0 {
			t.Fatalf("second GC removed %+v (%v)", removed, err)
		}
		if removed, err := s.GC(0); err != nil || len(removed) != 0 {
			t.Fatalf("GC(0) removed %+v (%v)", removed, err)
		}
	})
}

func TestDiskGCOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i, temp := range []float64{40, 50, 60} {
		rec := testRecord(t, "VC707", "1308-6520", 20+i)
		rec.Key.TempC = temp
		if err := d.Put(rec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.Key.ID())
	}
	d.Close()
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	removed, err := d2.GC(1)
	if err != nil || len(removed) != 2 {
		t.Fatalf("GC after reopen removed %d (%v), want 2", len(removed), err)
	}
	if _, ok, _ := d2.GetID(ids[2]); !ok {
		t.Fatal("GC after reopen evicted the newest record")
	}
}

func TestJobJournalRoundTrip(t *testing.T) {
	bothStores(t, func(t *testing.T, s Store) {
		if js, err := s.ListJobs(); err != nil || len(js) != 0 {
			t.Fatalf("empty journal lists %d jobs, %v", len(js), err)
		}
		// Out-of-order puts list back in submission order.
		for _, j := range []*JobRecord{
			{ID: "job-0002", Seq: 2, Payload: json.RawMessage(`{"n":2}`)},
			{ID: "job-0001", Seq: 1, Payload: json.RawMessage(`{"n":1}`)},
		} {
			if err := s.PutJob(j); err != nil {
				t.Fatal(err)
			}
		}
		js, err := s.ListJobs()
		if err != nil || len(js) != 2 {
			t.Fatalf("ListJobs = %d, %v", len(js), err)
		}
		if js[0].ID != "job-0001" || js[1].ID != "job-0002" {
			t.Fatalf("journal order %s, %s", js[0].ID, js[1].ID)
		}
		if string(js[0].Payload) != `{"n":1}` {
			t.Fatalf("payload mangled: %s", js[0].Payload)
		}
		// Re-journaling a job replaces it.
		if err := s.PutJob(&JobRecord{ID: "job-0001", Seq: 1, Payload: json.RawMessage(`{"n":9}`)}); err != nil {
			t.Fatal(err)
		}
		js, _ = s.ListJobs()
		if len(js) != 2 || string(js[0].Payload) != `{"n":9}` {
			t.Fatalf("journal overwrite not visible: %+v", js)
		}
		if err := s.DeleteJob("job-0001"); err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteJob("job-0001"); err != nil {
			t.Fatalf("deleting an absent job: %v", err)
		}
		js, _ = s.ListJobs()
		if len(js) != 1 || js[0].ID != "job-0002" {
			t.Fatalf("journal after delete: %+v", js)
		}
		// Hostile ids never reach the filesystem.
		for _, bad := range []string{"", "../escape", "a/b", ".hidden", "job 1"} {
			if err := s.PutJob(&JobRecord{ID: bad}); err == nil {
				t.Fatalf("PutJob accepted id %q", bad)
			}
		}
	})
}

func TestDiskJournalSurvivesReopenAndSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutJob(&JobRecord{ID: "job-0001", Seq: 1, Payload: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// A torn journal file and a misnamed one are skipped on replay.
	if err := os.WriteFile(filepath.Join(dir, "jobs", "job-0002.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "job-0003.json"),
		[]byte(`{"id":"job-9999","seq":3,"payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	js, err := d2.ListJobs()
	if err != nil || len(js) != 1 || js[0].ID != "job-0001" {
		t.Fatalf("journal replay = %+v, %v", js, err)
	}
}

func TestValidJobID(t *testing.T) {
	for id, want := range map[string]bool{
		"job-0001": true, "a.b_c-D9": true,
		"": false, ".dot": false, "a/b": false, "a\\b": false,
		"a b": false, "héllo": false,
	} {
		if got := ValidJobID(id); got != want {
			t.Errorf("ValidJobID(%q) = %v, want %v", id, got, want)
		}
	}
	if ValidJobID(string(make([]byte, 200))) {
		t.Error("ValidJobID accepted a 200-byte id")
	}
}
