package store

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Mem is the hermetic Store used by tests and by deployments that want the
// service API without durability. Records round-trip through the same JSON
// encoding the Disk store uses, so the serialization path is exercised and
// callers can never alias a stored record's internals.
type Mem struct {
	mu    sync.RWMutex
	blobs map[string][]byte   // id → encoded record
	keys  map[string]idxEntry // id → key + summary + put order
	jobs  map[string][]byte   // job id → encoded journal record
	seq   int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		blobs: make(map[string][]byte),
		keys:  make(map[string]idxEntry),
		jobs:  make(map[string][]byte),
	}
}

// Put stores the record, replacing any previous version of the same key.
func (m *Mem) Put(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	key := rec.Key
	id := key.ID()
	m.mu.Lock()
	m.seq++
	m.blobs[id] = raw
	m.keys[id] = idxEntry{
		Key: key, StoredAt: time.Now().UnixNano(), Seq: m.seq,
		Summary: Summarize(rec),
	}
	m.mu.Unlock()
	return nil
}

// Get returns the record stored under k, or ok=false when absent.
func (m *Mem) Get(k Key) (*Record, bool, error) { return m.GetID(k.ID()) }

// GetID returns the record with the given content address.
func (m *Mem) GetID(id string) (*Record, bool, error) {
	m.mu.RLock()
	raw, ok := m.blobs[id]
	m.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, false, fmt.Errorf("store: corrupt blob %s: %w", id, err)
	}
	if err := rec.Validate(); err != nil {
		return nil, false, err
	}
	return &rec, true, nil
}

// List returns the stored records' index in stable order.
func (m *Mem) List() ([]Meta, error) {
	m.mu.RLock()
	out := make([]Meta, 0, len(m.keys))
	for id, e := range m.keys {
		out = append(out, e.meta(id))
	}
	m.mu.RUnlock()
	sortMetas(out)
	return out, nil
}

// Delete removes the record with the given content address.
func (m *Mem) Delete(id string) (Meta, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.keys[id]
	if !ok {
		return Meta{}, false, nil
	}
	delete(m.blobs, id)
	delete(m.keys, id)
	return e.meta(id), true, nil
}

// GC bounds the store to the newest keep records per (platform, serial).
func (m *Mem) GC(keep int) ([]Meta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var removed []Meta
	for _, id := range gcVictims(m.keys, keep) {
		removed = append(removed, m.keys[id].meta(id))
		delete(m.blobs, id)
		delete(m.keys, id)
	}
	return removed, nil
}

// PutJob journals one campaign job, replacing any previous version.
func (m *Mem) PutJob(rec *JobRecord) error {
	if !ValidJobID(rec.ID) {
		return fmt.Errorf("store: malformed job id %q", rec.ID)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode job %s: %w", rec.ID, err)
	}
	m.mu.Lock()
	m.jobs[rec.ID] = raw
	m.mu.Unlock()
	return nil
}

// ListJobs returns every journaled job in submission order.
func (m *Mem) ListJobs() ([]*JobRecord, error) {
	m.mu.RLock()
	raws := make([][]byte, 0, len(m.jobs))
	for _, raw := range m.jobs {
		raws = append(raws, raw)
	}
	m.mu.RUnlock()
	out := make([]*JobRecord, 0, len(raws))
	for _, raw := range raws {
		var rec JobRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue
		}
		out = append(out, &rec)
	}
	sortJobs(out)
	return out, nil
}

// DeleteJob removes one journaled job; an absent id is not an error.
func (m *Mem) DeleteJob(id string) error {
	m.mu.Lock()
	delete(m.jobs, id)
	m.mu.Unlock()
	return nil
}

// Close is a no-op.
func (m *Mem) Close() error { return nil }

// Len returns the number of stored records.
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blobs)
}
