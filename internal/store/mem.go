package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Mem is the hermetic Store used by tests and by deployments that want the
// service API without durability. Records round-trip through the same JSON
// encoding the Disk store uses, so the serialization path is exercised and
// callers can never alias a stored record's internals.
type Mem struct {
	mu     sync.RWMutex
	blobs  map[string][]byte   // id → encoded record
	keys   map[string]idxEntry // id → key + summary + put order
	jobs   map[string][]byte   // job id → encoded journal record
	events map[string][][]byte // job id → encoded event records, append order
	seq    int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		blobs:  make(map[string][]byte),
		keys:   make(map[string]idxEntry),
		jobs:   make(map[string][]byte),
		events: make(map[string][][]byte),
	}
}

// Put stores the record, replacing any previous version of the same key.
func (m *Mem) Put(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	key := rec.Key
	id := key.ID()
	m.mu.Lock()
	m.seq++
	m.blobs[id] = raw
	m.keys[id] = idxEntry{
		Key: key, StoredAt: time.Now().UnixNano(), Seq: m.seq,
		Summary: Summarize(rec),
	}
	m.mu.Unlock()
	return nil
}

// Get returns the record stored under k, or ok=false when absent.
func (m *Mem) Get(k Key) (*Record, bool, error) { return m.GetID(k.ID()) }

// GetID returns the record with the given content address.
func (m *Mem) GetID(id string) (*Record, bool, error) {
	m.mu.RLock()
	raw, ok := m.blobs[id]
	m.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, false, fmt.Errorf("store: corrupt blob %s: %w", id, err)
	}
	if err := rec.Validate(); err != nil {
		return nil, false, err
	}
	return &rec, true, nil
}

// List returns the stored records' index in stable order.
func (m *Mem) List() ([]Meta, error) {
	m.mu.RLock()
	out := make([]Meta, 0, len(m.keys))
	for id, e := range m.keys {
		out = append(out, e.meta(id))
	}
	m.mu.RUnlock()
	sortMetas(out)
	return out, nil
}

// Delete removes the record with the given content address.
func (m *Mem) Delete(id string) (Meta, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.keys[id]
	if !ok {
		return Meta{}, false, nil
	}
	delete(m.blobs, id)
	delete(m.keys, id)
	return e.meta(id), true, nil
}

// GC bounds the store to the newest keep records per (platform, serial).
func (m *Mem) GC(keep int) ([]Meta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var removed []Meta
	for _, id := range gcVictims(m.keys, keep) {
		removed = append(removed, m.keys[id].meta(id))
		delete(m.blobs, id)
		delete(m.keys, id)
	}
	return removed, nil
}

// PutJob journals one campaign job, replacing any previous version.
func (m *Mem) PutJob(rec *JobRecord) error {
	if !ValidJobID(rec.ID) {
		return fmt.Errorf("store: malformed job id %q", rec.ID)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode job %s: %w", rec.ID, err)
	}
	m.mu.Lock()
	m.jobs[rec.ID] = raw
	m.mu.Unlock()
	return nil
}

// ListJobs returns every journaled job in submission order.
func (m *Mem) ListJobs() ([]*JobRecord, error) {
	m.mu.RLock()
	raws := make([][]byte, 0, len(m.jobs))
	for _, raw := range m.jobs {
		raws = append(raws, raw)
	}
	m.mu.RUnlock()
	out := make([]*JobRecord, 0, len(raws))
	for _, raw := range raws {
		var rec JobRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue
		}
		out = append(out, &rec)
	}
	sortJobs(out)
	return out, nil
}

// DeleteJob removes one journaled job and its event log; an absent id is
// not an error.
func (m *Mem) DeleteJob(id string) error {
	m.mu.Lock()
	delete(m.jobs, id)
	delete(m.events, id)
	m.mu.Unlock()
	return nil
}

// AppendJobEvents appends events to one job's log. Like jobs and blobs,
// events round-trip through JSON so the serialization path is exercised
// hermetically and callers can never alias stored internals.
func (m *Mem) AppendJobEvents(id string, evs []EventRecord) error {
	if !ValidJobID(id) {
		return fmt.Errorf("store: malformed job id %q", id)
	}
	encoded := make([][]byte, 0, len(evs))
	for i := range evs {
		rec := evs[i]
		rec.Job = id
		raw, err := json.Marshal(&rec)
		if err != nil {
			return fmt.Errorf("store: encode event %s/%d: %w", id, rec.Seq, err)
		}
		encoded = append(encoded, raw)
	}
	m.mu.Lock()
	m.events[id] = append(m.events[id], encoded...)
	m.mu.Unlock()
	return nil
}

// decodeEventsLocked decodes one job's stored events; corrupt entries are
// skipped, mirroring the Disk store's degrade-not-fail reads.
func (m *Mem) decodeEventsLocked(id string) []EventRecord {
	raws := m.events[id]
	out := make([]EventRecord, 0, len(raws))
	for _, raw := range raws {
		var ev EventRecord
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// ReadJobEvents returns id's events with Seq >= from, ascending and
// de-duplicated by Seq, capped at limit.
func (m *Mem) ReadJobEvents(id string, from, limit int) ([]EventRecord, error) {
	if !ValidJobID(id) {
		return nil, fmt.Errorf("store: malformed job id %q", id)
	}
	m.mu.RLock()
	evs := m.decodeEventsLocked(id)
	m.mu.RUnlock()
	out := evs[:0]
	for _, ev := range evs {
		if ev.Seq >= from {
			out = append(out, ev)
		}
	}
	return capEvents(sortDedupEvents(out), limit), nil
}

// JobEventStats reports the next event sequence and highest global
// sequence in id's log.
func (m *Mem) JobEventStats(id string) (int, int64, error) {
	if !ValidJobID(id) {
		return 0, 0, fmt.Errorf("store: malformed job id %q", id)
	}
	m.mu.RLock()
	evs := m.decodeEventsLocked(id)
	m.mu.RUnlock()
	var nextSeq int
	var lastG int64
	for _, ev := range evs {
		if ev.Seq+1 > nextSeq {
			nextSeq = ev.Seq + 1
		}
		if ev.GSeq > lastG {
			lastG = ev.GSeq
		}
	}
	return nextSeq, lastG, nil
}

// ReadFirehose returns events across all jobs with GSeq > after, in GSeq
// order, capped at limit.
func (m *Mem) ReadFirehose(after int64, limit int) ([]EventRecord, error) {
	m.mu.RLock()
	ids := make([]string, 0, len(m.events))
	for id := range m.events {
		ids = append(ids, id)
	}
	var all []EventRecord
	for _, id := range ids {
		for _, ev := range m.decodeEventsLocked(id) {
			if ev.GSeq > after {
				all = append(all, ev)
			}
		}
	}
	m.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i].GSeq < all[j].GSeq })
	return capEvents(all, limit), nil
}

// TrimJobEvents drops the job's oldest stored events, keeping the last
// keepLast (by Seq). Mem trims exactly; the Disk store trims whole sealed
// segments, so it may keep more — both honor "never fewer".
func (m *Mem) TrimJobEvents(id string, keepLast int) error {
	if !ValidJobID(id) {
		return fmt.Errorf("store: malformed job id %q", id)
	}
	if keepLast <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	evs := m.decodeEventsLocked(id)
	evs = sortDedupEvents(evs)
	if len(evs) <= keepLast {
		return nil
	}
	cutoff := evs[len(evs)-keepLast].Seq
	kept := make([][]byte, 0, keepLast)
	for _, raw := range m.events[id] {
		var ev EventRecord
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue // trimming is the one place corrupt entries get dropped
		}
		if ev.Seq >= cutoff {
			kept = append(kept, raw)
		}
	}
	m.events[id] = kept
	return nil
}

// LastGSeq reports the highest global sequence in any job's log.
func (m *Mem) LastGSeq() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var max int64
	for id := range m.events {
		for _, ev := range m.decodeEventsLocked(id) {
			if ev.GSeq > max {
				max = ev.GSeq
			}
		}
	}
	return max, nil
}

// Close is a no-op.
func (m *Mem) Close() error { return nil }

// Len returns the number of stored records.
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blobs)
}
