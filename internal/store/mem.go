package store

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Mem is the hermetic Store used by tests and by deployments that want the
// service API without durability. Records round-trip through the same JSON
// encoding the Disk store uses, so the serialization path is exercised and
// callers can never alias a stored record's internals.
type Mem struct {
	mu    sync.RWMutex
	blobs map[string][]byte // id → encoded record
	keys  map[string]Key    // id → key
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{blobs: make(map[string][]byte), keys: make(map[string]Key)}
}

// Put stores the record, replacing any previous version of the same key.
func (m *Mem) Put(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	key := rec.Key
	id := key.ID()
	m.mu.Lock()
	m.blobs[id] = raw
	m.keys[id] = key
	m.mu.Unlock()
	return nil
}

// Get returns the record stored under k, or ok=false when absent.
func (m *Mem) Get(k Key) (*Record, bool, error) { return m.GetID(k.ID()) }

// GetID returns the record with the given content address.
func (m *Mem) GetID(id string) (*Record, bool, error) {
	m.mu.RLock()
	raw, ok := m.blobs[id]
	m.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, false, fmt.Errorf("store: corrupt blob %s: %w", id, err)
	}
	if err := rec.Validate(); err != nil {
		return nil, false, err
	}
	return &rec, true, nil
}

// List returns the stored records' index in stable order.
func (m *Mem) List() ([]Meta, error) {
	m.mu.RLock()
	out := make([]Meta, 0, len(m.keys))
	for id, key := range m.keys {
		out = append(out, Meta{ID: id, Key: key})
	}
	m.mu.RUnlock()
	sortMetas(out)
	return out, nil
}

// Close is a no-op.
func (m *Mem) Close() error { return nil }

// Len returns the number of stored records.
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blobs)
}
