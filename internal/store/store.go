// Package store persists characterization products — sweeps and their Fault
// Variation Maps — beyond the life of one process, plus the campaign job
// journal the service layer replays after a restart. The paper's FVM is a
// one-time-per-chip artifact: fault locations are deterministic per die
// (Section II-C), so the expensive Listing 1 sweep never has to be repeated
// once its result is on disk. The engine's in-memory LRU cache uses a Store
// as its write-through second level, which is what lets a fleet survive a
// restart without re-characterizing a single board.
//
// # On-disk layout (Disk implementation)
//
//	root/
//	  index.json              rebuildable map of blob id → key + summary
//	  objects/<aa>/<id>.json  one Record per blob, sharded by id prefix
//	  jobs/<id>.json          one journaled campaign job per file
//
// Blobs are content-addressed: a record's id is the SHA-256 of its
// measurement identity (platform, serial, temperature, runs, sweep-option
// fingerprint), so a Get never needs the index — the index only accelerates
// List. Each index entry also carries a Summary of the blob's
// listing-relevant shape (site count, fault window, Vmin), so a listing of
// a million-record store never has to open a single blob. Every write lands
// in a temp file first and is renamed into place, so readers observe either
// the old blob or the new one, never a torn write. Per-blob access is
// serialized by a striped RWMutex keyed on the id, so concurrent writers
// racing on one key cannot interleave, while traffic on distinct keys
// proceeds in parallel.
//
// A corrupt or missing index.json is not fatal: opening the store rebuilds
// it by scanning the object tree and re-deriving each blob's key and summary
// from its embedded metadata (corrupt blobs are skipped). The Mem
// implementation round-trips records through the same JSON encoding, so
// tests exercise the serialization path hermetically.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/characterize"
	"repro/internal/fvm"
)

// Key identifies one measurement: a board (platform + serial + pool
// geometry — a scaled pool is a different simulated die) characterized
// under a specific temperature, run count, and sweep-option fingerprint.
// It mirrors the engine's cache key, so the disk store and the in-memory
// cache always agree on what "the same characterization" means.
type Key struct {
	Platform string  `json:"platform"`
	Serial   string  `json:"serial"`
	BRAMs    int     `json:"brams,omitempty"`
	GridCols int     `json:"grid_cols,omitempty"`
	GridRows int     `json:"grid_rows,omitempty"`
	TempC    float64 `json:"temp_c"`
	Runs     int     `json:"runs"`
	Options  string  `json:"options"`
}

// ID returns the key's content address: the SHA-256 of its canonical string
// form, in hex. Deterministic, so a record can be located without the index.
func (k Key) ID() string {
	s := k.Platform + "\x00" + k.Serial + "\x00" +
		strconv.Itoa(k.BRAMs) + "\x00" +
		strconv.Itoa(k.GridCols) + "x" + strconv.Itoa(k.GridRows) + "\x00" +
		strconv.FormatFloat(k.TempC, 'g', -1, 64) + "\x00" +
		strconv.Itoa(k.Runs) + "\x00" + k.Options
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// Record is one stored characterization product: its identity plus the
// sweep and the FVM it defined. The key is embedded in the blob itself,
// which is what makes a lost index rebuildable, and it is the same Key type
// the cache layers address by, so the two can never drift apart.
type Record struct {
	Key   Key                 `json:"key"`
	Sweep *characterize.Sweep `json:"sweep,omitempty"`
	FVM   *fvm.Map            `json:"fvm,omitempty"`
}

// Validate rejects records whose payload is missing or internally
// inconsistent, so a torn or hand-edited blob never enters the cache.
func (r *Record) Validate() error {
	if r.Key.Platform == "" || r.Key.Serial == "" {
		return fmt.Errorf("store: record missing platform/serial identity")
	}
	if r.Sweep == nil {
		return fmt.Errorf("store: record %s/%s has no sweep", r.Key.Platform, r.Key.Serial)
	}
	if r.FVM != nil && len(r.FVM.Sites) != len(r.FVM.Counts) {
		return fmt.Errorf("store: record %s/%s has a corrupt FVM (%d sites, %d counts)",
			r.Key.Platform, r.Key.Serial, len(r.FVM.Sites), len(r.FVM.Counts))
	}
	return nil
}

// Summary caches a record's listing-relevant shape in the index, so List
// answers dashboard queries without reading a single blob. It is derived
// from the record at Put time (and again on reindex), never hand-edited.
type Summary struct {
	Sites         int     `json:"sites,omitempty"`
	ZeroShare     float64 `json:"zero_share,omitempty"`
	MaxRate       float64 `json:"max_rate,omitempty"`
	VFromV        float64 `json:"v_from_v,omitempty"`
	VToV          float64 `json:"v_to_v,omitempty"`
	HasFVM        bool    `json:"has_fvm,omitempty"`
	Levels        int     `json:"levels,omitempty"` // sweep levels (0 = no sweep)
	VminV         float64 `json:"vmin_v,omitempty"`
	VcrashV       float64 `json:"vcrash_v,omitempty"`
	FaultsPerMbit float64 `json:"faults_per_mbit,omitempty"` // at the deepest level
}

// Summarize derives a record's index summary.
func Summarize(rec *Record) *Summary {
	s := &Summary{}
	if rec.FVM != nil {
		s.HasFVM = true
		s.Sites = rec.FVM.NumSites()
		s.ZeroShare = rec.FVM.ZeroShare()
		s.MaxRate = rec.FVM.Summary().Max
		s.VFromV = rec.FVM.VFrom
		s.VToV = rec.FVM.VTo
	}
	if sw := rec.Sweep; sw != nil && len(sw.Levels) > 0 {
		s.Levels = len(sw.Levels)
		s.VminV = SweepVmin(sw)
		s.VcrashV = sw.Final().V
		s.FaultsPerMbit = sw.Final().FaultsPerMbit
	}
	return s
}

// SweepVmin returns the lowest voltage level of a sweep that stayed
// fault-free — the board's empirical Vmin. It lives here (not in the
// engine) so index summaries and the engine's aggregates share one
// definition.
func SweepVmin(s *characterize.Sweep) float64 {
	if len(s.Levels) == 0 {
		return 0
	}
	vmin := s.Levels[0].V
	for _, l := range s.Levels {
		if l.MedianFaults > 0 {
			break
		}
		vmin = l.V
	}
	return vmin
}

// Meta is one index entry: a record's id, key, and cached summary, without
// its payload. StoredAt is when the record was last written.
type Meta struct {
	ID       string    `json:"id"`
	Key      Key       `json:"key"`
	StoredAt time.Time `json:"stored_at,omitempty"`
	Summary  *Summary  `json:"summary,omitempty"`
}

// JobRecord is one journaled campaign job: the service layer's document
// (an opaque payload to the store) plus the identity the store files it
// under. Seq preserves submission order across restarts, so a replayed job
// table lists jobs in the order they were created and new ids never collide
// with journaled ones.
//
// Since the event log split (PR 6) the payload carries only the job's
// metadata — its status snapshot — while events are appended separately via
// AppendJobEvents. Old full-document payloads (status + embedded events)
// still replay; the service layer migrates them to the split layout once.
type JobRecord struct {
	ID      string          `json:"id"`
	Seq     int             `json:"seq"`
	Payload json.RawMessage `json:"payload"`
}

// EventRecord is one appended job event: an opaque payload plus the
// ordering the store indexes it by. Seq orders events within one job
// (dense from 0 in healthy operation, but readers must tolerate gaps from
// dropped best-effort writes); GSeq is the service-wide total order the
// firehose pages by. Appending one event writes O(len(Payload)) bytes —
// never the job's history — which is what makes journaling O(1) per event
// instead of O(events²) per job.
type EventRecord struct {
	Job     string          `json:"job"`
	Seq     int             `json:"seq"`
	GSeq    int64           `json:"gseq"`
	Payload json.RawMessage `json:"payload"`
	// Truncated marks a synthetic marker record, never an appended event:
	// the store dropped this job's history at and below Seq (a live
	// sealed-segment cap evicted the oldest segments), so a reader paging
	// from earlier than this cannot get those events from anyone. Marker
	// records carry no Payload.
	Truncated bool `json:"truncated,omitempty"`
}

// ValidJobID reports whether id is safe to use as a journal filename:
// non-empty, bounded, and built only from [a-zA-Z0-9._-] without a leading
// dot. Ids arrive from the HTTP layer; anything else must never reach the
// filesystem.
func ValidJobID(id string) bool {
	if id == "" || len(id) > 128 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Store is a durable, concurrency-safe record repository with a campaign
// job journal riding alongside. Implementations must tolerate concurrent
// Put/Get on the same key (last write wins; reads never observe a torn
// record). Records handed to Put and returned by Get must be treated as
// immutable by callers.
type Store interface {
	// Put stores the record under its derived key, replacing any previous
	// version.
	Put(rec *Record) error
	// Get returns the record stored under k, or ok=false when absent.
	Get(k Key) (rec *Record, ok bool, err error)
	// GetID returns the record with the given content address.
	GetID(id string) (rec *Record, ok bool, err error)
	// List returns the index of stored records in a stable order. Entries
	// carry cached summaries, so listing never reads blobs.
	List() ([]Meta, error)
	// Delete removes the record with the given content address, returning
	// its index entry and whether it existed.
	Delete(id string) (Meta, bool, error)
	// GC bounds the store to the newest keep records per (platform,
	// serial), returning what it removed. keep <= 0 is a no-op.
	GC(keep int) ([]Meta, error)
	// PutJob journals one campaign job's metadata record, replacing any
	// previous version. The payload should stay O(1) in the job's event
	// count — events belong in AppendJobEvents.
	PutJob(rec *JobRecord) error
	// ListJobs returns every journaled job in submission (Seq) order.
	ListJobs() ([]*JobRecord, error)
	// DeleteJob removes one journaled job, its event log included; absent
	// ids are not an error.
	DeleteJob(id string) error
	// AppendJobEvents appends events to one job's event log. The cost is
	// O(bytes appended), independent of how many events the job already
	// has. Records are copied; the caller keeps ownership of evs.
	AppendJobEvents(id string, evs []EventRecord) error
	// ReadJobEvents returns the job's events with Seq >= from, ascending,
	// de-duplicated by Seq, capped at limit (limit <= 0 means no cap).
	ReadJobEvents(id string, from, limit int) ([]EventRecord, error)
	// JobEventStats reports the sequence the job's next event would take
	// (0 when it has none) and the highest global sequence in its log,
	// without reading the log body.
	JobEventStats(id string) (nextSeq int, lastGSeq int64, err error)
	// ReadFirehose returns events across all jobs with GSeq > after, in
	// GSeq order, capped at limit (limit <= 0 means no cap). This is the
	// paging primitive behind deep firehose resume.
	ReadFirehose(after int64, limit int) ([]EventRecord, error)
	// TrimJobEvents drops a job's oldest durable events so that at least
	// the last keepLast remain readable. Retention is best-effort and
	// coarse: implementations may keep more than asked (the Disk store
	// trims whole sealed segments and never the live tail) but must never
	// keep fewer. keepLast <= 0 is a no-op. Trimming a job that is still
	// appending is allowed; readers see a shorter history, not a torn one.
	TrimJobEvents(id string, keepLast int) error
	// LastGSeq reports the highest global sequence present in any job's
	// event log, so a restarted service can resume issuing sequences
	// without replaying event bodies.
	LastGSeq() (int64, error)
	// Close releases any resources. The store must not be used afterwards.
	Close() error
}

// idxEntry is the indexed form of one record both implementations share:
// its key, its cached summary, and the bookkeeping GC orders by. Seq is a
// monotonic per-store put counter — wall clocks are too coarse to order two
// back-to-back Puts, and GC's "newest" must be deterministic.
type idxEntry struct {
	Key      Key      `json:"key"`
	StoredAt int64    `json:"stored_at"` // unix nanos, informational
	Seq      int64    `json:"seq"`       // put order, what GC sorts by
	Summary  *Summary `json:"summary,omitempty"`
}

func (e idxEntry) meta(id string) Meta {
	m := Meta{ID: id, Key: e.Key, Summary: e.Summary}
	if e.StoredAt != 0 {
		m.StoredAt = time.Unix(0, e.StoredAt)
	}
	return m
}

// gcVictims picks the ids to drop so every (platform, serial) keeps only
// its newest keep entries. Newest is put order (Seq), tie-broken by id so
// the choice is total.
func gcVictims(entries map[string]idxEntry, keep int) []string {
	if keep <= 0 {
		return nil
	}
	type aged struct {
		id  string
		seq int64
	}
	groups := make(map[string][]aged)
	for id, e := range entries {
		g := e.Key.Platform + "\x00" + e.Key.Serial
		groups[g] = append(groups[g], aged{id, e.Seq})
	}
	var victims []string
	for _, g := range groups {
		if len(g) <= keep {
			continue
		}
		sort.Slice(g, func(i, j int) bool {
			if g[i].seq != g[j].seq {
				return g[i].seq > g[j].seq // newest first
			}
			return g[i].id < g[j].id
		})
		for _, v := range g[keep:] {
			victims = append(victims, v.id)
		}
	}
	sort.Strings(victims)
	return victims
}

// sortDedupEvents orders records by Seq and drops duplicate sequences,
// keeping the first occurrence. Duplicates are legitimate on-disk states: a
// crash between sealing a segment and rewriting the tail, or an interrupted
// full-document migration, leaves the same event in two places, and the
// contract is that readers — not writers — make the log exactly-once.
func sortDedupEvents(evs []EventRecord) []EventRecord {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	out := evs[:0]
	for _, ev := range evs {
		if n := len(out); n > 0 && out[n-1].Seq == ev.Seq {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// capEvents truncates to the first limit records; limit <= 0 means no cap.
func capEvents(evs []EventRecord, limit int) []EventRecord {
	if limit > 0 && len(evs) > limit {
		return evs[:limit]
	}
	return evs
}

// sortJobs orders journal records by submission sequence (ties by id).
func sortJobs(js []*JobRecord) {
	sort.Slice(js, func(i, j int) bool {
		if js[i].Seq != js[j].Seq {
			return js[i].Seq < js[j].Seq
		}
		return js[i].ID < js[j].ID
	})
}

// sortMetas orders index entries by platform, serial, temperature, runs,
// options — a stable, human-meaningful listing order.
func sortMetas(ms []Meta) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Key, ms[j].Key
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		if a.Serial != b.Serial {
			return a.Serial < b.Serial
		}
		if a.TempC != b.TempC {
			return a.TempC < b.TempC
		}
		if a.Runs != b.Runs {
			return a.Runs < b.Runs
		}
		return a.Options < b.Options
	})
}
