// Package store persists characterization products — sweeps and their Fault
// Variation Maps — beyond the life of one process. The paper's FVM is a
// one-time-per-chip artifact: fault locations are deterministic per die
// (Section II-C), so the expensive Listing 1 sweep never has to be repeated
// once its result is on disk. The engine's in-memory LRU cache uses a Store
// as its write-through second level, which is what lets a fleet survive a
// restart without re-characterizing a single board.
//
// # On-disk layout (Disk implementation)
//
//	root/
//	  index.json              rebuildable map of blob id → record key
//	  objects/<aa>/<id>.json  one Record per blob, sharded by id prefix
//
// Blobs are content-addressed: a record's id is the SHA-256 of its
// measurement identity (platform, serial, temperature, runs, sweep-option
// fingerprint), so a Get never needs the index — the index only accelerates
// List. Every write lands in a temp file first and is renamed into place, so
// readers observe either the old blob or the new one, never a torn write.
// Per-blob access is serialized by a striped RWMutex keyed on the id, so
// concurrent writers racing on one key cannot interleave, while traffic on
// distinct keys proceeds in parallel.
//
// A corrupt or missing index.json is not fatal: opening the store rebuilds
// it by scanning the object tree and re-deriving each blob's key from its
// embedded metadata (corrupt blobs are skipped). The Mem implementation
// round-trips records through the same JSON encoding, so tests exercise the
// serialization path hermetically.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/characterize"
	"repro/internal/fvm"
)

// Key identifies one measurement: a board (platform + serial + pool
// geometry — a scaled pool is a different simulated die) characterized
// under a specific temperature, run count, and sweep-option fingerprint.
// It mirrors the engine's cache key, so the disk store and the in-memory
// cache always agree on what "the same characterization" means.
type Key struct {
	Platform string  `json:"platform"`
	Serial   string  `json:"serial"`
	BRAMs    int     `json:"brams,omitempty"`
	GridCols int     `json:"grid_cols,omitempty"`
	GridRows int     `json:"grid_rows,omitempty"`
	TempC    float64 `json:"temp_c"`
	Runs     int     `json:"runs"`
	Options  string  `json:"options"`
}

// ID returns the key's content address: the SHA-256 of its canonical string
// form, in hex. Deterministic, so a record can be located without the index.
func (k Key) ID() string {
	s := k.Platform + "\x00" + k.Serial + "\x00" +
		strconv.Itoa(k.BRAMs) + "\x00" +
		strconv.Itoa(k.GridCols) + "x" + strconv.Itoa(k.GridRows) + "\x00" +
		strconv.FormatFloat(k.TempC, 'g', -1, 64) + "\x00" +
		strconv.Itoa(k.Runs) + "\x00" + k.Options
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// Record is one stored characterization product: its identity plus the
// sweep and the FVM it defined. The key is embedded in the blob itself,
// which is what makes a lost index rebuildable, and it is the same Key type
// the cache layers address by, so the two can never drift apart.
type Record struct {
	Key   Key                 `json:"key"`
	Sweep *characterize.Sweep `json:"sweep,omitempty"`
	FVM   *fvm.Map            `json:"fvm,omitempty"`
}

// Validate rejects records whose payload is missing or internally
// inconsistent, so a torn or hand-edited blob never enters the cache.
func (r *Record) Validate() error {
	if r.Key.Platform == "" || r.Key.Serial == "" {
		return fmt.Errorf("store: record missing platform/serial identity")
	}
	if r.Sweep == nil {
		return fmt.Errorf("store: record %s/%s has no sweep", r.Key.Platform, r.Key.Serial)
	}
	if r.FVM != nil && len(r.FVM.Sites) != len(r.FVM.Counts) {
		return fmt.Errorf("store: record %s/%s has a corrupt FVM (%d sites, %d counts)",
			r.Key.Platform, r.Key.Serial, len(r.FVM.Sites), len(r.FVM.Counts))
	}
	return nil
}

// Meta is one index entry: a record's id and key, without its payload.
type Meta struct {
	ID  string `json:"id"`
	Key Key    `json:"key"`
}

// Store is a durable, concurrency-safe record repository. Implementations
// must tolerate concurrent Put/Get on the same key (last write wins; reads
// never observe a torn record). Records handed to Put and returned by Get
// must be treated as immutable by callers.
type Store interface {
	// Put stores the record under its derived key, replacing any previous
	// version.
	Put(rec *Record) error
	// Get returns the record stored under k, or ok=false when absent.
	Get(k Key) (rec *Record, ok bool, err error)
	// GetID returns the record with the given content address.
	GetID(id string) (rec *Record, ok bool, err error)
	// List returns the index of stored records in a stable order.
	List() ([]Meta, error)
	// Close releases any resources. The store must not be used afterwards.
	Close() error
}

// sortMetas orders index entries by platform, serial, temperature, runs,
// options — a stable, human-meaningful listing order.
func sortMetas(ms []Meta) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Key, ms[j].Key
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		if a.Serial != b.Serial {
			return a.Serial < b.Serial
		}
		if a.TempC != b.TempC {
			return a.TempC < b.TempC
		}
		if a.Runs != b.Runs {
			return a.Runs < b.Runs
		}
		return a.Options < b.Options
	})
}
