package store

import (
	"encoding/json"
	"errors"
	"strings"
	"syscall"
	"testing"
)

// reopen closes d and opens a fresh Disk over the same root — the
// crash/restart boundary every fault test must cross: whatever survives
// reopen is what a daemon restarted after the fault would see.
func reopen(t *testing.T, d *Disk) *Disk {
	t.Helper()
	root := d.Root()
	if err := d.Close(); err != nil {
		t.Fatalf("close before reopen: %v", err)
	}
	nd, err := OpenDisk(root)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return nd
}

// assertDense asserts the job's replayed events are exactly seqs [0, n).
func assertDense(t *testing.T, d *Disk, id string, n int) {
	t.Helper()
	evs, err := d.ReadJobEvents(id, 0, 0)
	if err != nil {
		t.Fatalf("read after reopen: %v", err)
	}
	if len(evs) != n {
		t.Fatalf("replayed %d events, want %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: replay not dense", i, ev.Seq)
		}
	}
}

// An injected ENOSPC mid-append fails that batch cleanly: nothing from it
// is readable, earlier events are untouched, and once space "returns" the
// same batch appends and the journal replays dense across a reopen.
func TestAppendENOSPCMidBatch(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { d.Close() }()
	const id = "job-enospc"
	appendN(t, d, id, 0, 5, 1)

	d.SetFaultHooks(&FaultHooks{
		AppendWrite: func(job string) error { return syscall.ENOSPC },
	})
	err = d.AppendJobEvents(id, []EventRecord{testEvent(5, 6)})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append under ENOSPC = %v, want ENOSPC", err)
	}
	if evs, _ := d.ReadJobEvents(id, 0, 0); len(evs) != 5 {
		t.Fatalf("failed batch leaked: %d events readable, want 5", len(evs))
	}
	if next, _, err := d.JobEventStats(id); err != nil || next != 5 {
		t.Fatalf("stats after failed append = (next %d, %v), want next 5", next, err)
	}

	// Space returns: the caller retries the same batch, then keeps going.
	d.SetFaultHooks(nil)
	appendN(t, d, id, 5, 5, 6)

	d = reopen(t, d)
	assertDense(t, d, id, 10)
	if next, lastG, err := d.JobEventStats(id); err != nil || next != 10 || lastG != 10 {
		t.Fatalf("stats after reopen = (next %d, lastG %d, %v), want (10, 10)", next, lastG, err)
	}
}

// An injected fsync failure surfaces as an error — the caller must treat
// the batch as non-durable — and a reopen replays a dense prefix containing
// at least every previously fsynced event, with retried batches deduped by
// the reader.
func TestAppendFsyncFailureReplaysDurable(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { d.Close() }()
	const id = "job-fsync"
	appendN(t, d, id, 0, 5, 1)

	injected := errors.New("injected fsync failure")
	d.SetFaultHooks(&FaultHooks{
		AppendSync: func(job string) error { return injected },
	})
	if err := d.AppendJobEvents(id, []EventRecord{testEvent(5, 6)}); !errors.Is(err, injected) {
		t.Fatalf("append under failing fsync = %v, want injected error", err)
	}

	// The disk recovers and the caller retries the unacknowledged batch —
	// its bytes may or may not have landed, so the reader's seq dedup must
	// absorb the overlap either way.
	d.SetFaultHooks(nil)
	appendN(t, d, id, 5, 3, 6)

	d = reopen(t, d)
	assertDense(t, d, id, 8)
}

// A rename failure mid-atomicWrite on the job meta record leaves the
// previous version intact: a half-written temp file never shadows the
// journaled record, across a reopen included.
func TestRenameFailureMidAtomicWrite(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { d.Close() }()
	old := &JobRecord{ID: "job-ren", Seq: 1, Payload: json.RawMessage(`{"state":"running"}`)}
	if err := d.PutJob(old); err != nil {
		t.Fatal(err)
	}

	d.SetFaultHooks(&FaultHooks{
		Rename: func(path string) error {
			if strings.Contains(path, "job-ren") {
				return errors.New("injected rename failure")
			}
			return nil
		},
	})
	upd := &JobRecord{ID: "job-ren", Seq: 1, Payload: json.RawMessage(`{"state":"done"}`)}
	if err := d.PutJob(upd); err == nil {
		t.Fatal("PutJob with failing rename must error")
	}
	d.SetFaultHooks(nil)

	d = reopen(t, d)
	jobs, err := d.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	var got *JobRecord
	for _, j := range jobs {
		if j.ID == "job-ren" {
			got = j
		}
	}
	if got == nil {
		t.Fatal("journaled job lost after failed overwrite")
	}
	if !strings.Contains(string(got.Payload), "running") {
		t.Fatalf("failed overwrite corrupted the record: %s", got.Payload)
	}
}

// A temp-file fsync failure mid-atomicWrite aborts a blob Put without
// publishing anything: the old version stays readable and the temp file
// does not survive as garbage.
func TestWriteSyncFailureKeepsOldBlob(t *testing.T) {
	d, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { d.Close() }()
	rec := testRecord(t, "VC707", "fault-01", 10)
	if err := d.Put(rec); err != nil {
		t.Fatal(err)
	}

	d.SetFaultHooks(&FaultHooks{
		WriteSync: func(path string) error { return syscall.EIO },
	})
	upd := testRecord(t, "VC707", "fault-01", 10)
	upd.Sweep.Levels[1].MedianFaults = 999
	if err := d.Put(upd); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put under failing fsync = %v, want EIO", err)
	}
	d.SetFaultHooks(nil)

	d = reopen(t, d)
	got, ok, err := d.Get(rec.Key)
	if err != nil || !ok {
		t.Fatalf("old blob lost after failed overwrite: ok=%v err=%v", ok, err)
	}
	if got.Sweep.Final().MedianFaults != 10 {
		t.Fatalf("failed overwrite published partial data: faults=%v", got.Sweep.Final().MedianFaults)
	}
}
