package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the Disk half of the per-job event log: the storage that
// makes journaling a job event O(bytes of that event) instead of O(bytes of
// the job's whole history).
//
// Layout per job:
//
//	jobs/<id>.json                                the metadata record (PutJob)
//	jobs/<id>.log                                 append-only JSONL tail
//	jobs/<id>.segs/seg-<s0>-<s1>-<g0>-<g1>.json   sealed, immutable segments
//
// Appends go to the tail — one JSON line per event, O_APPEND + fsync, no
// rewrite of anything. When the tail grows past compactTail live events, a
// background compactor seals full segments of segSize events (atomic write,
// fsynced) and rewrites the tail with only the remainder, so the total
// bytes ever written for an n-event log is O(n), not O(n²), and replay
// after a restart only scans the bounded tail plus segment *names*. Segment
// filenames carry their Seq and GSeq ranges, which is what lets boot and
// firehose paging prune without opening segment bodies.
//
// Crash discipline: a segment is sealed before the tail is rewritten, so a
// crash in between leaves the same events in both places — readers dedup by
// Seq (sealed copy wins) and the next compaction drops the stale tail
// prefix. A torn final tail line (power cut mid-append) fails to decode and
// is skipped. No state here is authoritative for the blobs or the index;
// losing a tail line degrades the journal, never the store.

const (
	// defaultEventSegSize is how many events a sealed segment holds.
	defaultEventSegSize = 256
	// defaultCompactTail is the live-tail length that triggers compaction.
	defaultCompactTail = 512
)

// segInfo describes one sealed segment without its body: the Seq range it
// covers and the GSeq range it contains, both recoverable from the filename
// alone.
type segInfo struct {
	minSeq, maxSeq int
	firstG, lastG  int64
}

func (s segInfo) fileName() string {
	return fmt.Sprintf("seg-%d-%d-%d-%d.json", s.minSeq, s.maxSeq, s.firstG, s.lastG)
}

// parseSegName inverts fileName; ok is false for anything else in the dir.
func parseSegName(name string) (segInfo, bool) {
	var s segInfo
	n, err := fmt.Sscanf(name, "seg-%d-%d-%d-%d.json", &s.minSeq, &s.maxSeq, &s.firstG, &s.lastG)
	if err != nil || n != 4 || s.fileName() != name {
		return segInfo{}, false
	}
	return s, true
}

// jobLog is the in-memory index of one job's event log. The map holding
// these is guarded by evMu; the fields of one jobLog are guarded by the
// job's stripe lock (write lock to mutate, read lock to read), the same
// lock that serializes the job's file I/O.
type jobLog struct {
	segs     []segInfo // ascending by minSeq
	sealedTo int       // 1 + highest Seq covered by a sealed segment
	liveTail int       // tail events with Seq >= sealedTo
	nextSeq  int       // 1 + highest Seq seen anywhere in the log
	lastG    int64     // highest GSeq seen anywhere in the log
	minAvail int       // 1 + highest Seq dropped by the live cap; 0 = nothing dropped
	truncG   int64     // highest GSeq known dropped (conservative after reopen)
	f        *os.File  // cached append handle; nil when closed
}

func (d *Disk) jobLogPath(id string) string {
	return filepath.Join(d.root, "jobs", id+".log")
}

func (d *Disk) jobSegsDir(id string) string {
	return filepath.Join(d.root, "jobs", id+".segs")
}

// evLog returns id's log index, creating it if absent. Callers hold the
// job's stripe write lock.
func (d *Disk) evLog(id string) *jobLog {
	d.evMu.Lock()
	defer d.evMu.Unlock()
	jl := d.evLogs[id]
	if jl == nil {
		jl = &jobLog{}
		d.evLogs[id] = jl
	}
	return jl
}

// evLogPeek returns id's log index or nil. Callers hold at least the job's
// stripe read lock if they read the returned struct's fields.
func (d *Disk) evLogPeek(id string) *jobLog {
	d.evMu.Lock()
	defer d.evMu.Unlock()
	return d.evLogs[id]
}

// SetEventLogTuning adjusts the compaction geometry: segSize events per
// sealed segment, compaction once the live tail exceeds compactTail. A
// test/bench hook — call before concurrent use; zero or negative values
// keep the defaults.
func (d *Disk) SetEventLogTuning(segSize, compactTail int) {
	if segSize > 0 {
		d.segSize = segSize
	}
	if compactTail > 0 {
		d.compactTail = compactTail
	}
}

// SetLiveSegCap bounds how many sealed segments one job's event log may
// accumulate while the job is still appending: each compaction drops the
// oldest sealed segments past the cap, so a long-running campaign's journal
// holds the newest cap*segSize sealed events plus the live tail instead of
// its entire history. Readers paging below the dropped range receive a
// synthetic Truncated marker record (see EventRecord.Truncated) in place of
// the missing prefix, so deep resumes learn the history is gone instead of
// silently skipping it. Zero or negative keeps the default: unlimited.
func (d *Disk) SetLiveSegCap(n int) {
	if n > 0 {
		d.liveSegCap = n
	}
}

// JournalBytes reports the total bytes written to the job journal — meta
// records, event appends, and compaction rewrites. Instrumentation for the
// bytes-per-event benchmarks; not part of the Store interface.
func (d *Disk) JournalBytes() uint64 { return d.jnBytes.Load() }

func (d *Disk) addJnBytes(n int) { d.jnBytes.Add(uint64(n)) }

// AppendJobEvents appends events to one job's tail: one marshal and one
// O_APPEND write per call, fsynced, with no rewrite of prior history.
func (d *Disk) AppendJobEvents(id string, evs []EventRecord) error {
	if !ValidJobID(id) {
		return fmt.Errorf("store: malformed job id %q", id)
	}
	if len(evs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for i := range evs {
		rec := evs[i]
		rec.Job = id
		line, err := json.Marshal(&rec)
		if err != nil {
			return fmt.Errorf("store: encode event %s/%d: %w", id, rec.Seq, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	mu := d.jobStripe(id)
	mu.Lock()
	defer mu.Unlock()
	jl := d.evLog(id)
	if jl.f == nil {
		f, err := d.openTail(id)
		if err != nil {
			return err
		}
		jl.f = f
	}
	if err := d.faultAppendWrite(id); err != nil {
		return fmt.Errorf("store: append events %s: %w", id, err)
	}
	if _, err := jl.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("store: append events %s: %w", id, err)
	}
	if err := d.faultAppendSync(id); err != nil {
		return fmt.Errorf("store: sync event log %s: %w", id, err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("store: sync event log %s: %w", id, err)
	}
	d.addJnBytes(buf.Len())
	for i := range evs {
		if evs[i].Seq >= jl.sealedTo {
			jl.liveTail++
		}
		if evs[i].Seq >= jl.nextSeq {
			jl.nextSeq = evs[i].Seq + 1
		}
		if evs[i].GSeq > jl.lastG {
			jl.lastG = evs[i].GSeq
		}
	}
	if jl.liveTail >= d.compactTail {
		d.kickCompact(id)
	}
	return nil
}

// openTail opens id's tail for appending. A tail whose last byte is not a
// newline ends in a torn line from a crashed append; terminate it first, so
// the next event starts a fresh line instead of fusing with (and corrupting)
// the torn one.
func (d *Disk) openTail(id string) (*os.File, error) {
	path := d.jobLogPath(id)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open event log %s: %w", id, err)
	}
	if rf, err := os.Open(path); err == nil {
		if info, err := rf.Stat(); err == nil && info.Size() > 0 {
			last := make([]byte, 1)
			if _, err := rf.ReadAt(last, info.Size()-1); err == nil && last[0] != '\n' {
				if _, err := f.Write([]byte{'\n'}); err != nil {
					rf.Close()
					f.Close()
					return nil, fmt.Errorf("store: heal torn tail %s: %w", id, err)
				}
			}
		}
		rf.Close()
	}
	return f, nil
}

// readTail decodes the tail log, skipping torn or corrupt lines. Callers
// hold at least the job's stripe read lock.
func (d *Disk) readTail(id string) []EventRecord {
	raw, err := os.ReadFile(d.jobLogPath(id))
	if err != nil {
		return nil
	}
	var out []EventRecord
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev EventRecord
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// readSeg decodes one sealed segment; a corrupt segment degrades to empty
// rather than failing the read.
func (d *Disk) readSeg(id string, sg segInfo) []EventRecord {
	raw, err := os.ReadFile(filepath.Join(d.jobSegsDir(id), sg.fileName()))
	if err != nil {
		return nil
	}
	var out []EventRecord
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil
	}
	return out
}

// ReadJobEvents returns id's events with Seq >= from, ascending and
// de-duplicated by Seq, reading only the segments whose range overlaps.
func (d *Disk) ReadJobEvents(id string, from, limit int) ([]EventRecord, error) {
	if !ValidJobID(id) {
		return nil, fmt.Errorf("store: malformed job id %q", id)
	}
	mu := d.jobStripe(id)
	mu.RLock()
	defer mu.RUnlock()
	jl := d.evLogPeek(id)
	if jl == nil {
		return nil, nil
	}
	var out []EventRecord
	for _, sg := range jl.segs {
		if sg.maxSeq < from {
			continue
		}
		for _, ev := range d.readSeg(id, sg) {
			if ev.Seq >= from {
				out = append(out, ev)
			}
		}
		if limit > 0 && len(out) >= limit && sg.maxSeq >= jl.nextSeq-1 {
			break
		}
	}
	// Sealed copies were appended first, so dedup keeps them over any stale
	// tail duplicates left by a crash mid-compaction.
	for _, ev := range d.readTail(id) {
		if ev.Seq >= from {
			out = append(out, ev)
		}
	}
	out = sortDedupEvents(out)
	if jl.minAvail > 0 && from < jl.minAvail {
		// The caller asked for history the live cap dropped: lead the page
		// with a marker instead of a silent gap, so a deep SSE resume knows
		// events through minAvail-1 are unrecoverable.
		marker := EventRecord{Job: id, Seq: jl.minAvail - 1, GSeq: jl.truncG, Truncated: true}
		out = append([]EventRecord{marker}, out...)
	}
	return capEvents(out, limit), nil
}

// JobEventStats reports the next event sequence and the highest global
// sequence in id's log, from the in-memory index alone.
func (d *Disk) JobEventStats(id string) (int, int64, error) {
	if !ValidJobID(id) {
		return 0, 0, fmt.Errorf("store: malformed job id %q", id)
	}
	mu := d.jobStripe(id)
	mu.RLock()
	defer mu.RUnlock()
	jl := d.evLogPeek(id)
	if jl == nil {
		return 0, 0, nil
	}
	return jl.nextSeq, jl.lastG, nil
}

// ReadFirehose returns events across all jobs with GSeq > after, in GSeq
// order, pruning jobs and segments by their indexed GSeq ranges so a resume
// near the live edge never reads cold history.
func (d *Disk) ReadFirehose(after int64, limit int) ([]EventRecord, error) {
	d.evMu.Lock()
	ids := make([]string, 0, len(d.evLogs))
	for id := range d.evLogs {
		ids = append(ids, id)
	}
	d.evMu.Unlock()
	sort.Strings(ids)
	var all []EventRecord
	for _, id := range ids {
		mu := d.jobStripe(id)
		mu.RLock()
		jl := d.evLogPeek(id)
		if jl == nil || jl.lastG <= after {
			mu.RUnlock()
			continue
		}
		var evs []EventRecord
		for _, sg := range jl.segs {
			if sg.lastG <= after {
				continue
			}
			evs = append(evs, d.readSeg(id, sg)...)
		}
		evs = append(evs, d.readTail(id)...)
		minAvail, truncG := jl.minAvail, jl.truncG
		mu.RUnlock()
		if minAvail > 0 && truncG > after {
			// The resume point predates history the live cap dropped: mark
			// the truncation at its global position so the consumer sees it
			// before this job's surviving events.
			all = append(all, EventRecord{Job: id, Seq: minAvail - 1, GSeq: truncG, Truncated: true})
		}
		evs = sortDedupEvents(evs)
		for _, ev := range evs {
			if ev.GSeq > after {
				all = append(all, ev)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].GSeq < all[j].GSeq })
	return capEvents(all, limit), nil
}

// LastGSeq reports the highest global sequence in any job's log.
func (d *Disk) LastGSeq() (int64, error) {
	d.evMu.Lock()
	ids := make([]string, 0, len(d.evLogs))
	for id := range d.evLogs {
		ids = append(ids, id)
	}
	d.evMu.Unlock()
	var max int64
	for _, id := range ids {
		mu := d.jobStripe(id)
		mu.RLock()
		if jl := d.evLogPeek(id); jl != nil && jl.lastG > max {
			max = jl.lastG
		}
		mu.RUnlock()
	}
	return max, nil
}

// kickCompact queues id for background compaction; a full queue skips — the
// next append past the threshold retries.
func (d *Disk) kickCompact(id string) {
	select {
	case d.compactCh <- id:
	default:
	}
}

// compactLoop drains compaction requests until Close.
func (d *Disk) compactLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.quit:
			return
		case id := <-d.compactCh:
			_ = d.CompactJob(id)
		}
	}
}

// CompactJob folds id's tail into sealed segments: every full segSize chunk
// of live tail events becomes an immutable segment file, then the tail is
// rewritten with only the remainder. Exported so tests and operators can
// force a fold; the background compactor calls it on its own past the tail
// threshold. Sealing happens before the tail rewrite, so a crash in between
// duplicates events rather than losing them — readers dedup by Seq.
func (d *Disk) CompactJob(id string) error {
	if !ValidJobID(id) {
		return fmt.Errorf("store: malformed job id %q", id)
	}
	mu := d.jobStripe(id)
	mu.Lock()
	defer mu.Unlock()
	jl := d.evLogPeek(id)
	if jl == nil {
		return nil
	}
	tail := d.readTail(id)
	live := make([]EventRecord, 0, len(tail))
	for _, ev := range tail {
		if ev.Seq >= jl.sealedTo {
			live = append(live, ev)
		}
	}
	live = sortDedupEvents(live)
	sealed := 0
	for len(live)-sealed >= d.segSize {
		chunk := live[sealed : sealed+d.segSize]
		sg := segInfo{minSeq: chunk[0].Seq, maxSeq: chunk[len(chunk)-1].Seq}
		sg.firstG, sg.lastG = chunk[0].GSeq, chunk[0].GSeq
		for _, ev := range chunk {
			if ev.GSeq < sg.firstG {
				sg.firstG = ev.GSeq
			}
			if ev.GSeq > sg.lastG {
				sg.lastG = ev.GSeq
			}
		}
		raw, err := json.Marshal(chunk)
		if err != nil {
			return fmt.Errorf("store: encode segment %s: %w", id, err)
		}
		if err := os.MkdirAll(d.jobSegsDir(id), 0o755); err != nil {
			return fmt.Errorf("store: segment dir %s: %w", id, err)
		}
		if err := d.atomicWrite(filepath.Join(d.jobSegsDir(id), sg.fileName()), raw); err != nil {
			return err
		}
		d.addJnBytes(len(raw))
		jl.segs = append(jl.segs, sg)
		jl.sealedTo = sg.maxSeq + 1
		sealed += d.segSize
	}
	d.enforceLiveSegCapLocked(id, jl)
	rest := live[sealed:]
	if sealed == 0 && len(rest) == len(tail) {
		return nil // nothing sealed, no stale prefix: leave the tail alone
	}
	var buf bytes.Buffer
	for i := range rest {
		line, err := json.Marshal(&rest[i])
		if err != nil {
			return fmt.Errorf("store: encode event %s/%d: %w", id, rest[i].Seq, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	// The rewrite replaces the tail's inode; drop the cached append handle
	// so the next append reopens the new file instead of a deleted one.
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
	if err := d.atomicWrite(d.jobLogPath(id), buf.Bytes()); err != nil {
		return err
	}
	d.addJnBytes(buf.Len())
	jl.liveTail = len(rest)
	return nil
}

// enforceLiveSegCapLocked drops the oldest sealed segments past the live
// cap, advancing the log's truncation edge so readers below it get a marker
// instead of a silent gap. A segment that cannot be unlinked stays indexed
// and the next compaction retries. Callers hold the job's stripe write lock.
func (d *Disk) enforceLiveSegCapLocked(id string, jl *jobLog) {
	if d.liveSegCap <= 0 {
		return
	}
	for len(jl.segs) > d.liveSegCap {
		sg := jl.segs[0]
		if err := os.Remove(filepath.Join(d.jobSegsDir(id), sg.fileName())); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return
		}
		jl.segs = jl.segs[1:]
		if sg.maxSeq+1 > jl.minAvail {
			jl.minAvail = sg.maxSeq + 1
		}
		if sg.lastG > jl.truncG {
			jl.truncG = sg.lastG
		}
	}
}

// TrimJobEvents drops sealed segments whose entire Seq range falls below
// the job's last keepLast events. Only whole immutable segments go — the
// live tail and any segment straddling the cutoff stay — so retention is
// coarse but can never lose an event newer than the bound. This is what
// keeps a terminal job's journal from pinning its whole event history on
// disk at federation scale.
func (d *Disk) TrimJobEvents(id string, keepLast int) error {
	if !ValidJobID(id) {
		return fmt.Errorf("store: malformed job id %q", id)
	}
	if keepLast <= 0 {
		return nil
	}
	mu := d.jobStripe(id)
	mu.Lock()
	defer mu.Unlock()
	jl := d.evLogPeek(id)
	if jl == nil {
		return nil
	}
	cutoff := jl.nextSeq - keepLast
	kept := jl.segs[:0]
	for _, sg := range jl.segs {
		if sg.maxSeq < cutoff {
			if err := os.Remove(filepath.Join(d.jobSegsDir(id), sg.fileName())); err != nil && !errors.Is(err, fs.ErrNotExist) {
				// Keep the index entry for a segment still on disk; the next
				// trim retries.
				kept = append(kept, sg)
				continue
			}
			continue
		}
		kept = append(kept, sg)
	}
	jl.segs = kept
	return nil
}

// dropEventLog removes id's tail, segments, and index entry. Callers hold
// the job's stripe write lock.
func (d *Disk) dropEventLog(id string) error {
	d.evMu.Lock()
	jl := d.evLogs[id]
	delete(d.evLogs, id)
	d.evMu.Unlock()
	if jl != nil && jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
	if err := os.Remove(d.jobLogPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete event log %s: %w", id, err)
	}
	if err := os.RemoveAll(d.jobSegsDir(id)); err != nil {
		return fmt.Errorf("store: delete segments %s: %w", id, err)
	}
	return nil
}

// scanEventLogs rebuilds the in-memory event-log index at open: segment
// ranges come from filenames alone, and only the bounded tails are read —
// boot cost is O(jobs + tail events), never O(all events).
func (d *Disk) scanEventLogs() error {
	dir := filepath.Join(d.root, "jobs")
	des, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: scan event logs: %w", err)
	}
	logs := make(map[string]*jobLog)
	get := func(id string) *jobLog {
		jl := logs[id]
		if jl == nil {
			jl = &jobLog{}
			logs[id] = jl
		}
		return jl
	}
	// firstAvail tracks each job's lowest surviving (Seq, GSeq): job event
	// sequences are dense from 0, so a log whose lowest Seq is positive lost
	// its prefix to the live cap (or a retention trim) before the restart,
	// and minAvail must be rederived so the truncation marker survives reboot.
	type firstAvail struct {
		seq int
		g   int64
		any bool
	}
	firsts := make(map[string]*firstAvail)
	// Pass 1: segment directories, so sealedTo is known before tails are
	// classified.
	for _, de := range des {
		if !de.IsDir() || !strings.HasSuffix(de.Name(), ".segs") {
			continue
		}
		id := strings.TrimSuffix(de.Name(), ".segs")
		if !ValidJobID(id) {
			continue
		}
		segDes, err := os.ReadDir(filepath.Join(dir, de.Name()))
		if err != nil {
			continue
		}
		jl := get(id)
		for _, sde := range segDes {
			sg, ok := parseSegName(sde.Name())
			if !ok {
				continue
			}
			jl.segs = append(jl.segs, sg)
		}
		sort.Slice(jl.segs, func(i, j int) bool { return jl.segs[i].minSeq < jl.segs[j].minSeq })
		if len(jl.segs) > 0 {
			firsts[id] = &firstAvail{seq: jl.segs[0].minSeq, g: jl.segs[0].firstG, any: true}
		}
		for _, sg := range jl.segs {
			if sg.maxSeq+1 > jl.sealedTo {
				jl.sealedTo = sg.maxSeq + 1
			}
			if sg.maxSeq+1 > jl.nextSeq {
				jl.nextSeq = sg.maxSeq + 1
			}
			if sg.lastG > jl.lastG {
				jl.lastG = sg.lastG
			}
		}
	}
	// Pass 2: tails.
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".log") {
			continue
		}
		id := strings.TrimSuffix(de.Name(), ".log")
		if !ValidJobID(id) {
			continue
		}
		jl := get(id)
		fa := firsts[id]
		if fa == nil {
			fa = &firstAvail{}
			firsts[id] = fa
		}
		for _, ev := range d.readTail(id) {
			if ev.Seq >= jl.sealedTo {
				jl.liveTail++
			}
			if ev.Seq+1 > jl.nextSeq {
				jl.nextSeq = ev.Seq + 1
			}
			if ev.GSeq > jl.lastG {
				jl.lastG = ev.GSeq
			}
			if !fa.any || ev.Seq < fa.seq {
				fa.seq, fa.g, fa.any = ev.Seq, ev.GSeq, true
			}
		}
	}
	for id, fa := range firsts {
		if fa.any && fa.seq > 0 {
			jl := logs[id]
			jl.minAvail = fa.seq
			// The dropped events' exact GSeqs are gone with them; everything
			// below the first surviving GSeq is a safe over-approximation.
			if fa.g > 0 {
				jl.truncG = fa.g - 1
			}
		}
	}
	d.evMu.Lock()
	d.evLogs = logs
	d.evMu.Unlock()
	return nil
}
