// Package pmbus emulates the slice of the PMBus power-management protocol the
// paper's experimental setup depends on (Fig. 2): the host drives the
// on-board TI UCD9248 voltage controller over PMBus — via the TI USB adapter
// and its C API — to set VCCBRAM/VCCINT setpoints, read back output voltage,
// and read the on-board temperature.
//
// The package implements the PMBus wire formats faithfully enough that host
// code goes through real encode/decode round trips:
//
//   - LINEAR11: 5-bit two's-complement exponent + 11-bit two's-complement
//     mantissa, used by READ_TEMPERATURE_2, READ_POUT, and friends.
//   - LINEAR16 ("ULINEAR16"): 16-bit unsigned mantissa with the exponent
//     taken from VOUT_MODE, used by VOUT_COMMAND and READ_VOUT.
//
// Devices register on a Bus by address; commands are paged (PAGE selects the
// rail), matching how the UCD9248 exposes its four DC/DC converter pages.
package pmbus

import (
	"errors"
	"fmt"
	"math"
)

// Command is a PMBus command code.
type Command uint8

// The subset of standard PMBus command codes used by the rig.
const (
	CmdPage             Command = 0x00
	CmdOperation        Command = 0x01
	CmdClearFaults      Command = 0x03
	CmdVoutMode         Command = 0x20
	CmdVoutCommand      Command = 0x21
	CmdVoutMarginHigh   Command = 0x25
	CmdVoutMarginLow    Command = 0x26
	CmdVoutOVFaultLimit Command = 0x40
	CmdVoutUVFaultLimit Command = 0x44
	CmdStatusWord       Command = 0x79
	CmdReadVout         Command = 0x8B
	CmdReadIout         Command = 0x8C
	CmdReadTemperature2 Command = 0x8E
	CmdReadPout         Command = 0x96
	CmdMfrSerial        Command = 0x9E
)

// Status word bits (subset).
const (
	StatusVout   = 1 << 15 // an output-voltage fault or warning occurred
	StatusOff    = 1 << 6  // unit is not providing power
	StatusVoutUV = 1 << 4  // undervoltage fault (manufacturer-specific bit here)
)

// Errors returned by bus and codec operations.
var (
	ErrNoDevice       = errors.New("pmbus: no device at address")
	ErrBadPage        = errors.New("pmbus: page out of range")
	ErrUnsupportedCmd = errors.New("pmbus: unsupported command")
	ErrRange          = errors.New("pmbus: value out of encodable range")
)

// EncodeLinear11 encodes v into the LINEAR11 format, choosing the largest
// precision exponent that fits the mantissa in 11 signed bits. Exponents
// range -16..15, mantissas -1024..1023.
func EncodeLinear11(v float64) (uint16, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrRange
	}
	for exp := -16; exp <= 15; exp++ {
		m := v / math.Pow(2, float64(exp))
		mr := math.Round(m)
		if mr >= -1024 && mr <= 1023 {
			// Prefer the smallest exponent (highest precision) that fits.
			mi := int16(mr)
			return uint16(exp&0x1f)<<11 | uint16(mi)&0x07ff, nil
		}
	}
	return 0, ErrRange
}

// DecodeLinear11 decodes a LINEAR11 word.
func DecodeLinear11(raw uint16) float64 {
	exp := int8(raw>>11) & 0x1f
	if exp > 15 { // sign-extend 5-bit exponent
		exp -= 32
	}
	man := int16(raw & 0x07ff)
	if man > 1023 { // sign-extend 11-bit mantissa
		man -= 2048
	}
	return float64(man) * math.Pow(2, float64(exp))
}

// VoutMode describes the fixed exponent used by LINEAR16 VOUT encodings.
// The UCD9248 family uses two's-complement exponents around -12, giving a
// VOUT resolution of 1/4096 V ≈ 0.24 mV — finer than the 10 mV steps the
// paper's sweep uses.
type VoutMode struct {
	Exponent int8 // typically -12
}

// Encode encodes volts into LINEAR16 under this VOUT_MODE.
func (m VoutMode) Encode(volts float64) (uint16, error) {
	if math.IsNaN(volts) || volts < 0 {
		return 0, ErrRange
	}
	raw := math.Round(volts * math.Pow(2, -float64(m.Exponent)))
	if raw > math.MaxUint16 {
		return 0, ErrRange
	}
	return uint16(raw), nil
}

// Decode decodes a LINEAR16 word under this VOUT_MODE.
func (m VoutMode) Decode(raw uint16) float64 {
	return float64(raw) * math.Pow(2, float64(m.Exponent))
}

// Byte returns the VOUT_MODE register encoding (linear mode, 5-bit exponent).
func (m VoutMode) Byte() uint8 { return uint8(m.Exponent) & 0x1f }

// VoutModeFromByte parses a VOUT_MODE register value in linear mode.
func VoutModeFromByte(b uint8) VoutMode {
	exp := int8(b & 0x1f)
	if exp > 15 {
		exp -= 32
	}
	return VoutMode{Exponent: exp}
}

// Device is a PMBus slave. Write sends a command with data; Read sends a
// command and returns response data. Both take the currently selected page.
type Device interface {
	// Pages returns how many pages (rails) the device exposes.
	Pages() int
	// Write handles a paged write command.
	Write(page int, cmd Command, data []byte) error
	// Read handles a paged read command.
	Read(page int, cmd Command) ([]byte, error)
}

// Bus is a PMBus segment with addressed devices and per-address page state
// (the PAGE register lives in the device, but tracking it here keeps device
// implementations simple).
type Bus struct {
	devices map[uint8]Device
	pages   map[uint8]int
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{devices: make(map[uint8]Device), pages: make(map[uint8]int)}
}

// Attach registers a device at the given 7-bit address, replacing any
// previous occupant.
func (b *Bus) Attach(addr uint8, d Device) { b.devices[addr] = d }

// Write issues a write transaction.
func (b *Bus) Write(addr uint8, cmd Command, data []byte) error {
	d, ok := b.devices[addr]
	if !ok {
		return fmt.Errorf("%w %#02x", ErrNoDevice, addr)
	}
	if cmd == CmdPage {
		if len(data) != 1 {
			return fmt.Errorf("pmbus: PAGE write needs 1 byte, got %d", len(data))
		}
		p := int(data[0])
		if p < 0 || p >= d.Pages() {
			return fmt.Errorf("%w: %d (device has %d)", ErrBadPage, p, d.Pages())
		}
		b.pages[addr] = p
		return nil
	}
	return d.Write(b.pages[addr], cmd, data)
}

// Read issues a read transaction.
func (b *Bus) Read(addr uint8, cmd Command) ([]byte, error) {
	d, ok := b.devices[addr]
	if !ok {
		return nil, fmt.Errorf("%w %#02x", ErrNoDevice, addr)
	}
	if cmd == CmdPage {
		return []byte{byte(b.pages[addr])}, nil
	}
	return d.Read(b.pages[addr], cmd)
}

// Controller is the host-side convenience wrapper: the role the TI "Fusion
// Digital Power" C API plays in the paper's setup. It speaks typed values and
// handles page selection and wire encoding.
type Controller struct {
	bus  *Bus
	addr uint8
}

// NewController returns a controller for the device at addr on bus.
func NewController(bus *Bus, addr uint8) *Controller {
	return &Controller{bus: bus, addr: addr}
}

func (c *Controller) setPage(page int) error {
	return c.bus.Write(c.addr, CmdPage, []byte{byte(page)})
}

func (c *Controller) voutMode(page int) (VoutMode, error) {
	if err := c.setPage(page); err != nil {
		return VoutMode{}, err
	}
	raw, err := c.bus.Read(c.addr, CmdVoutMode)
	if err != nil {
		return VoutMode{}, err
	}
	if len(raw) != 1 {
		return VoutMode{}, fmt.Errorf("pmbus: VOUT_MODE returned %d bytes", len(raw))
	}
	return VoutModeFromByte(raw[0]), nil
}

// SetVout programs the output voltage of a page in volts.
func (c *Controller) SetVout(page int, volts float64) error {
	mode, err := c.voutMode(page)
	if err != nil {
		return err
	}
	raw, err := mode.Encode(volts)
	if err != nil {
		return err
	}
	return c.bus.Write(c.addr, CmdVoutCommand, []byte{byte(raw), byte(raw >> 8)})
}

// ReadVout reads back the measured output voltage of a page in volts.
func (c *Controller) ReadVout(page int) (float64, error) {
	mode, err := c.voutMode(page)
	if err != nil {
		return 0, err
	}
	raw, err := c.bus.Read(c.addr, CmdReadVout)
	if err != nil {
		return 0, err
	}
	if len(raw) != 2 {
		return 0, fmt.Errorf("pmbus: READ_VOUT returned %d bytes", len(raw))
	}
	return mode.Decode(uint16(raw[0]) | uint16(raw[1])<<8), nil
}

// ReadTemperature reads the page's temperature sensor in °C (LINEAR11).
func (c *Controller) ReadTemperature(page int) (float64, error) {
	if err := c.setPage(page); err != nil {
		return 0, err
	}
	raw, err := c.bus.Read(c.addr, CmdReadTemperature2)
	if err != nil {
		return 0, err
	}
	if len(raw) != 2 {
		return 0, fmt.Errorf("pmbus: READ_TEMPERATURE_2 returned %d bytes", len(raw))
	}
	return DecodeLinear11(uint16(raw[0]) | uint16(raw[1])<<8), nil
}

// ReadPout reads the page's output power in watts (LINEAR11).
func (c *Controller) ReadPout(page int) (float64, error) {
	if err := c.setPage(page); err != nil {
		return 0, err
	}
	raw, err := c.bus.Read(c.addr, CmdReadPout)
	if err != nil {
		return 0, err
	}
	if len(raw) != 2 {
		return 0, fmt.Errorf("pmbus: READ_POUT returned %d bytes", len(raw))
	}
	return DecodeLinear11(uint16(raw[0]) | uint16(raw[1])<<8), nil
}

// StatusWord reads the page's STATUS_WORD register.
func (c *Controller) StatusWord(page int) (uint16, error) {
	if err := c.setPage(page); err != nil {
		return 0, err
	}
	raw, err := c.bus.Read(c.addr, CmdStatusWord)
	if err != nil {
		return 0, err
	}
	if len(raw) != 2 {
		return 0, fmt.Errorf("pmbus: STATUS_WORD returned %d bytes", len(raw))
	}
	return uint16(raw[0]) | uint16(raw[1])<<8, nil
}
