package pmbus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinear11RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.5, 50, 80.5, -40, 1023, 0.001, 300.25} {
		raw, err := EncodeLinear11(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		got := DecodeLinear11(raw)
		tol := math.Max(math.Abs(v)*0.001, 0.002)
		if math.Abs(got-v) > tol {
			t.Fatalf("LINEAR11 round trip %v -> %v (tol %v)", v, got, tol)
		}
	}
}

func TestLinear11Errors(t *testing.T) {
	if _, err := EncodeLinear11(math.NaN()); err == nil {
		t.Fatal("NaN should fail")
	}
	if _, err := EncodeLinear11(math.Inf(1)); err == nil {
		t.Fatal("Inf should fail")
	}
	if _, err := EncodeLinear11(1e12); err == nil {
		t.Fatal("huge value should fail")
	}
}

func TestLinear11NegativeExponentDecoding(t *testing.T) {
	// 0xD204: exponent 0b11010 = -6, mantissa 0x204 = 516 -> 8.0625
	raw := uint16(0b11010_010_0000_0100)
	if got := DecodeLinear11(raw); math.Abs(got-8.0625) > 1e-9 {
		t.Fatalf("decode = %v, want 8.0625", got)
	}
}

func TestQuickLinear11RoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 3e7 {
			return true
		}
		raw, err := EncodeLinear11(v)
		if err != nil {
			return math.Abs(v) > 1023*math.Pow(2, 15)
		}
		got := DecodeLinear11(raw)
		return math.Abs(got-v) <= math.Max(math.Abs(v)*0.001, math.Pow(2, -16))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoutModeRoundTrip(t *testing.T) {
	mode := VoutMode{Exponent: -12}
	for _, v := range []float64{1.0, 0.61, 0.54, 0.95, 0.0} {
		raw, err := mode.Encode(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		if got := mode.Decode(raw); math.Abs(got-v) > 1.0/4096 {
			t.Fatalf("VOUT round trip %v -> %v", v, got)
		}
	}
}

func TestVoutModeResolutionFinerThan10mV(t *testing.T) {
	// The sweep steps 10 mV; encoding must distinguish adjacent steps.
	mode := VoutMode{Exponent: -12}
	a, _ := mode.Encode(0.61)
	b, _ := mode.Encode(0.60)
	if a == b {
		t.Fatal("10 mV steps aliased in LINEAR16")
	}
}

func TestVoutModeByteRoundTrip(t *testing.T) {
	m := VoutMode{Exponent: -12}
	if got := VoutModeFromByte(m.Byte()); got != m {
		t.Fatalf("VOUT_MODE byte round trip: %+v -> %+v", m, got)
	}
	if got := VoutModeFromByte(VoutMode{Exponent: 3}.Byte()); got.Exponent != 3 {
		t.Fatalf("positive exponent round trip: %+v", got)
	}
}

func TestVoutModeEncodeErrors(t *testing.T) {
	mode := VoutMode{Exponent: -12}
	if _, err := mode.Encode(-0.5); err == nil {
		t.Fatal("negative volts should fail")
	}
	if _, err := mode.Encode(100); err == nil {
		t.Fatal("overflow volts should fail (100V at 2^-12 > 16 bits)")
	}
}

// fakeDevice implements Device with two pages of registers for bus tests.
type fakeDevice struct {
	vout [2]uint16
	mode VoutMode
}

func (f *fakeDevice) Pages() int { return 2 }

func (f *fakeDevice) Write(page int, cmd Command, data []byte) error {
	switch cmd {
	case CmdVoutCommand:
		f.vout[page] = uint16(data[0]) | uint16(data[1])<<8
		return nil
	}
	return ErrUnsupportedCmd
}

func (f *fakeDevice) Read(page int, cmd Command) ([]byte, error) {
	switch cmd {
	case CmdVoutMode:
		return []byte{f.mode.Byte()}, nil
	case CmdReadVout:
		return []byte{byte(f.vout[page]), byte(f.vout[page] >> 8)}, nil
	case CmdReadTemperature2:
		raw, _ := EncodeLinear11(50)
		return []byte{byte(raw), byte(raw >> 8)}, nil
	}
	return nil, ErrUnsupportedCmd
}

func TestBusPaging(t *testing.T) {
	bus := NewBus()
	dev := &fakeDevice{mode: VoutMode{Exponent: -12}}
	bus.Attach(0x34, dev)
	ctl := NewController(bus, 0x34)

	if err := ctl.SetVout(0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.SetVout(1, 0.61); err != nil {
		t.Fatal(err)
	}
	v0, err := ctl.ReadVout(0)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ctl.ReadVout(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v0-1.0) > 0.001 || math.Abs(v1-0.61) > 0.001 {
		t.Fatalf("paged vouts = %v, %v", v0, v1)
	}
}

func TestBusErrors(t *testing.T) {
	bus := NewBus()
	if err := bus.Write(0x10, CmdVoutCommand, nil); err == nil {
		t.Fatal("write to missing device should fail")
	}
	if _, err := bus.Read(0x10, CmdReadVout); err == nil {
		t.Fatal("read from missing device should fail")
	}
	dev := &fakeDevice{}
	bus.Attach(0x34, dev)
	if err := bus.Write(0x34, CmdPage, []byte{5}); err == nil {
		t.Fatal("out-of-range page should fail")
	}
	if err := bus.Write(0x34, CmdPage, []byte{}); err == nil {
		t.Fatal("empty PAGE write should fail")
	}
}

func TestControllerTemperature(t *testing.T) {
	bus := NewBus()
	bus.Attach(0x34, &fakeDevice{mode: VoutMode{Exponent: -12}})
	ctl := NewController(bus, 0x34)
	temp, err := ctl.ReadTemperature(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(temp-50) > 0.1 {
		t.Fatalf("temperature = %v, want 50", temp)
	}
}

// brokenDevice returns malformed responses to exercise the controller's
// wire-format validation.
type brokenDevice struct {
	modeBytes []byte
	voutBytes []byte
	tempBytes []byte
}

func (d *brokenDevice) Pages() int { return 1 }
func (d *brokenDevice) Write(page int, cmd Command, data []byte) error {
	return nil
}
func (d *brokenDevice) Read(page int, cmd Command) ([]byte, error) {
	switch cmd {
	case CmdVoutMode:
		return d.modeBytes, nil
	case CmdReadVout:
		return d.voutBytes, nil
	case CmdReadTemperature2, CmdReadPout:
		return d.tempBytes, nil
	case CmdStatusWord:
		return d.tempBytes, nil
	}
	return nil, ErrUnsupportedCmd
}

func TestControllerRejectsMalformedResponses(t *testing.T) {
	bus := NewBus()
	dev := &brokenDevice{
		modeBytes: []byte{0x14, 0x00}, // VOUT_MODE must be one byte
		voutBytes: []byte{0x01},       // READ_VOUT must be two bytes
		tempBytes: []byte{0x01, 0x02, 0x03},
	}
	bus.Attach(0x20, dev)
	ctl := NewController(bus, 0x20)

	if _, err := ctl.ReadVout(0); err == nil {
		t.Fatal("bad VOUT_MODE length accepted")
	}
	dev.modeBytes = []byte{VoutMode{Exponent: -12}.Byte()}
	if _, err := ctl.ReadVout(0); err == nil {
		t.Fatal("bad READ_VOUT length accepted")
	}
	if _, err := ctl.ReadTemperature(0); err == nil {
		t.Fatal("bad READ_TEMPERATURE_2 length accepted")
	}
	if _, err := ctl.ReadPout(0); err == nil {
		t.Fatal("bad READ_POUT length accepted")
	}
	if _, err := ctl.StatusWord(0); err == nil {
		t.Fatal("bad STATUS_WORD length accepted")
	}
	if err := ctl.SetVout(0, 1e6); err == nil {
		t.Fatal("unencodable voltage accepted")
	}
}

func TestPageRegisterReadback(t *testing.T) {
	bus := NewBus()
	bus.Attach(0x34, &fakeDevice{})
	if err := bus.Write(0x34, CmdPage, []byte{1}); err != nil {
		t.Fatal(err)
	}
	got, err := bus.Read(0x34, CmdPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("PAGE readback = %v", got)
	}
}
