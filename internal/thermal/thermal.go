// Package thermal models the temperature side of the experimental setup: the
// heat chamber the board is placed in for the Fig. 8 study, the board's
// self-heating, and the on-board sensor read over PMBus.
//
// The paper regulates chamber temperature and reports the resulting on-board
// temperatures (50 °C default, then 60/70/80 °C). The die itself runs the ITD
// response in internal/silicon; this package only produces the temperature
// value the die and the leakage model see.
package thermal

import "math"

// DefaultOnBoardC is the paper's default on-board temperature.
const DefaultOnBoardC = 50

// Chamber is a controllable heat chamber with a first-order settling model.
type Chamber struct {
	ambientC  float64
	setpointC float64
}

// NewChamber returns a chamber idling at the given ambient temperature.
func NewChamber(ambientC float64) *Chamber {
	return &Chamber{ambientC: ambientC, setpointC: ambientC}
}

// SetTarget programs the chamber setpoint (clamped to a safe range).
func (c *Chamber) SetTarget(tempC float64) {
	c.setpointC = math.Max(0, math.Min(tempC, 120))
}

// Target returns the programmed setpoint.
func (c *Chamber) Target() float64 { return c.setpointC }

// AirC returns the settled chamber air temperature (the model settles
// instantly; the harness's per-step delay stands in for soak time).
func (c *Chamber) AirC() float64 { return c.setpointC }

// BoardThermals converts chamber air temperature and on-chip power into the
// on-board temperature the PMBus sensor reports: air plus a junction rise
// proportional to dissipated power.
type BoardThermals struct {
	ThetaJA float64 // °C per watt of junction-to-ambient rise
}

// OnBoardC returns the on-board temperature for the given air temperature
// and total on-chip power.
func (b BoardThermals) OnBoardC(airC, chipPowerW float64) float64 {
	return airC + b.ThetaJA*chipPowerW
}

// AirForOnBoard inverts OnBoardC: the chamber setting needed to hold the
// board at the requested on-board temperature under the given power. The
// Fig. 8 experiments are stated in on-board temperatures, so the harness
// uses this to drive the chamber.
func (b BoardThermals) AirForOnBoard(onBoardC, chipPowerW float64) float64 {
	return onBoardC - b.ThetaJA*chipPowerW
}
