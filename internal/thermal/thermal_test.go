package thermal

import (
	"math"
	"testing"
)

func TestChamberSetpoint(t *testing.T) {
	c := NewChamber(25)
	if c.AirC() != 25 {
		t.Fatalf("initial air = %v", c.AirC())
	}
	c.SetTarget(80)
	if c.Target() != 80 || c.AirC() != 80 {
		t.Fatalf("after SetTarget: target=%v air=%v", c.Target(), c.AirC())
	}
}

func TestChamberClamps(t *testing.T) {
	c := NewChamber(25)
	c.SetTarget(-40)
	if c.Target() != 0 {
		t.Fatalf("low clamp = %v", c.Target())
	}
	c.SetTarget(500)
	if c.Target() != 120 {
		t.Fatalf("high clamp = %v", c.Target())
	}
}

func TestOnBoardRisesWithPower(t *testing.T) {
	b := BoardThermals{ThetaJA: 1.0}
	if got := b.OnBoardC(45, 5); got != 50 {
		t.Fatalf("on-board = %v, want 50 (default setup)", got)
	}
	if b.OnBoardC(45, 10) <= b.OnBoardC(45, 5) {
		t.Fatal("more power must run hotter")
	}
}

func TestAirForOnBoardInverts(t *testing.T) {
	b := BoardThermals{ThetaJA: 0.8}
	for _, want := range []float64{50, 60, 70, 80} {
		air := b.AirForOnBoard(want, 6.2)
		if got := b.OnBoardC(air, 6.2); math.Abs(got-want) > 1e-9 {
			t.Fatalf("inversion failed: want %v, got %v", want, got)
		}
	}
}
