// Package ecc implements the Hamming-style SECDED (single error correct,
// double error detect) code that the paper's related-work section (§IV-A4)
// lists among the conventional undervolting-fault mitigations — the costly
// alternative ICBP avoids. Xilinx application notes use exactly this class
// of code for BRAM upset mitigation.
//
// The code here is a (22,16) extended Hamming code: 16 data bits, 5 parity
// bits at power-of-two positions, plus one overall parity bit. The
// repository uses it for the mitigation-comparison ablation: ECC corrects
// every single-bit weight fault but costs 37.5% extra storage per word and
// a decode on every read, while ICBP is free at run time but only helps the
// layers it protects.
package ecc

import "math/bits"

// DataBits and CheckBits describe the (22,16) layout.
const (
	DataBits  = 16
	CheckBits = 6 // 5 Hamming + 1 overall parity
	TotalBits = DataBits + CheckBits
)

// Overhead returns the storage overhead fraction of the code (6/16).
func Overhead() float64 { return float64(CheckBits) / float64(DataBits) }

// Codeword is one encoded word; bits 0..21 are used.
type Codeword uint32

// dataPositions lists the codeword bit positions (1-based Hamming indexing,
// excluding the overall parity at position 0) that carry data bits. Hamming
// positions 1,2,4,8,16 carry check bits.
var dataPositions = buildDataPositions()

func buildDataPositions() [DataBits]int {
	var out [DataBits]int
	idx := 0
	for pos := 1; idx < DataBits; pos++ {
		if pos&(pos-1) == 0 { // power of two: check bit
			continue
		}
		out[idx] = pos
		idx++
	}
	return out
}

// DataPosition returns the codeword bit position that carries data bit i —
// the hook fault models use to flip exactly the data bits a raw memory
// readout observed flipped.
func DataPosition(i int) int { return dataPositions[i] }

// Encode produces the SECDED codeword of a 16-bit data word.
func Encode(data uint16) Codeword {
	var cw uint32
	// Scatter data bits into their Hamming positions (bit i of cw holds
	// Hamming position i; position 0 is the overall parity).
	for i := 0; i < DataBits; i++ {
		if data&(1<<i) != 0 {
			cw |= 1 << dataPositions[i]
		}
	}
	// Hamming check bits: parity over positions containing that power of two.
	for c := 0; c < CheckBits-1; c++ {
		mask := 1 << c
		parity := 0
		for pos := 1; pos < TotalBits; pos++ {
			if pos&mask != 0 && cw&(1<<pos) != 0 {
				parity ^= 1
			}
		}
		if parity != 0 {
			cw |= 1 << mask
		}
	}
	// Overall parity (position 0) makes the whole codeword even.
	if bits.OnesCount32(cw)&1 != 0 {
		cw |= 1
	}
	return Codeword(cw)
}

// Result classifies a decode outcome.
type Result int

// Decode outcomes.
const (
	OK        Result = iota // no error
	Corrected               // single-bit error corrected
	Detected                // double-bit error detected, not correctable
)

// String names the outcome.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	}
	return "unknown"
}

// Decode extracts the data word, correcting a single-bit error and flagging
// double-bit errors.
func Decode(cw Codeword) (uint16, Result) {
	raw := uint32(cw)
	// Syndrome: XOR of Hamming positions of set bits.
	syndrome := 0
	for pos := 1; pos < TotalBits; pos++ {
		if raw&(1<<pos) != 0 {
			syndrome ^= pos
		}
	}
	overallEven := bits.OnesCount32(raw)&1 == 0

	result := OK
	switch {
	case syndrome == 0 && overallEven:
		// clean
	case syndrome == 0 && !overallEven:
		// The overall parity bit itself flipped.
		raw ^= 1
		result = Corrected
	case syndrome != 0 && !overallEven:
		// Single-bit error at the syndrome position.
		if syndrome < TotalBits {
			raw ^= 1 << syndrome
		}
		result = Corrected
	default: // syndrome != 0 && overallEven
		// Two bits flipped: detectable, not correctable.
		result = Detected
	}

	var data uint16
	for i := 0; i < DataBits; i++ {
		if raw&(1<<dataPositions[i]) != 0 {
			data |= 1 << i
		}
	}
	return data, result
}

// Stats aggregates decode outcomes over a protected memory scan.
type Stats struct {
	Words     int
	Corrected int
	Detected  int
}

// Scrub decodes every codeword against its expected data, counting
// corrected and uncorrectable words; it returns the decoded data.
func Scrub(cws []Codeword) ([]uint16, Stats) {
	out := make([]uint16, len(cws))
	st := Stats{Words: len(cws)}
	for i, cw := range cws {
		data, r := Decode(cw)
		out[i] = data
		switch r {
		case Corrected:
			st.Corrected++
		case Detected:
			st.Detected++
		}
	}
	return out, st
}
