package ecc

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, d := range []uint16{0x0000, 0xFFFF, 0xA5A5, 0x0001, 0x8000, 0x1234} {
		data, r := Decode(Encode(d))
		if r != OK || data != d {
			t.Fatalf("clean decode of %#x: got %#x, %v", d, data, r)
		}
	}
}

func TestSingleBitCorrection(t *testing.T) {
	// Every possible single-bit flip of every bit position must be corrected.
	for _, d := range []uint16{0x0000, 0xFFFF, 0xBEEF, 0x5555} {
		cw := Encode(d)
		for bit := 0; bit < TotalBits; bit++ {
			flipped := cw ^ (1 << bit)
			data, r := Decode(flipped)
			if r != Corrected {
				t.Fatalf("data %#x bit %d: result %v, want Corrected", d, bit, r)
			}
			if data != d {
				t.Fatalf("data %#x bit %d: decoded %#x", d, bit, data)
			}
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	d := uint16(0xCAFE)
	cw := Encode(d)
	for a := 0; a < TotalBits; a++ {
		for b := a + 1; b < TotalBits; b += 3 { // sampled pairs
			flipped := cw ^ (1 << a) ^ (1 << b)
			_, r := Decode(flipped)
			if r != Detected {
				t.Fatalf("double flip (%d,%d) -> %v, want Detected", a, b, r)
			}
		}
	}
}

func TestResultStrings(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Detected.String() != "detected" {
		t.Fatal("result names wrong")
	}
}

func TestOverhead(t *testing.T) {
	if Overhead() != 0.375 {
		t.Fatalf("overhead = %v", Overhead())
	}
}

func TestScrub(t *testing.T) {
	words := []uint16{1, 2, 3, 4}
	cws := make([]Codeword, len(words))
	for i, w := range words {
		cws[i] = Encode(w)
	}
	cws[1] ^= 1 << 5              // single flip
	cws[3] ^= (1 << 2) | (1 << 9) // double flip
	out, st := Scrub(cws)
	if st.Words != 4 || st.Corrected != 1 || st.Detected != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("scrubbed data wrong: %v", out)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(d uint16) bool {
		got, r := Decode(Encode(d))
		return r == OK && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSingleFlipAlwaysCorrected(t *testing.T) {
	f := func(d uint16, bit uint8) bool {
		b := int(bit) % TotalBits
		got, r := Decode(Encode(d) ^ (1 << b))
		return r == Corrected && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodewordDensity(t *testing.T) {
	// Distinct data words must map to distinct codewords (injective).
	seen := make(map[Codeword]uint16)
	for d := 0; d < 1<<16; d += 17 {
		cw := Encode(uint16(d))
		if prev, ok := seen[cw]; ok {
			t.Fatalf("codeword collision: %#x and %#x", prev, d)
		}
		seen[cw] = uint16(d)
	}
}
