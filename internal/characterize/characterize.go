// Package characterize implements the paper's experimental methodology for
// BRAM undervolting (Section II, Listing 1): initialize the BRAM pool with a
// data pattern, lower VCCBRAM in 10 mV steps, and at every level read the
// whole pool back ~100 times, analyzing fault rate, location, and polarity
// on the host. The reported value per level is the median across runs, as in
// the paper.
//
// The same harness drives the derived studies: threshold discovery (Fig. 1),
// the fault/power trade-off curves (Fig. 3), the data-pattern study
// (Fig. 4), run-to-run stability (Table II), and the heat-chamber
// temperature study (Fig. 8).
package characterize

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/board"
	"repro/internal/prng"
	"repro/internal/sem"
	"repro/internal/silicon"
	"repro/internal/stats"
	"repro/internal/voltage"
)

// Options tunes a sweep. The zero value means "paper defaults": 100 runs per
// level, pattern 0xFFFF, the platform's [Vmin, Vcrash] window, 10 mV steps,
// 50 °C, and all CPUs.
type Options struct {
	Runs        int     // read passes per voltage level (paper: 100)
	Pattern     uint16  // initial BRAM content (paper default: 0xFFFF)
	PatternName string  // label for reports; defaults to hex of Pattern
	ZeroFill    bool    // force the all-zeros pattern (Pattern 0 alone means "default")
	RandomFill  bool    // fill with a seeded random pattern instead (Fig. 4's 50% case)
	VStart      float64 // highest level of the sweep (0 → platform Vmin)
	VStop       float64 // lowest level (0 → platform Vcrash)
	StepV       float64 // sweep step (0 → 10 mV)
	OnBoardC    float64 // on-board temperature (0 → 50 °C)
	Workers     int     // concurrent readers (0 → GOMAXPROCS)

	// Gate, when set, is a shared budget on concurrently *running* read
	// workers: every scanPool worker holds one unit for the duration of a
	// read pass. The fleet engine hands all boards one gate so total read
	// CPU stays flat as board count grows. Scheduling only — never part of
	// the measurement identity (excluded from Fingerprint).
	Gate *sem.Gate `json:"-"`
}

// Normalized resolves every zero field to its paper default under the given
// silicon calibration (the sweep window tops out at the platform's Vmin and
// bottoms out at its Vcrash). It is the single source of truth for option
// defaulting: the sweep itself and any cache keyed on options both resolve
// through here, so they cannot drift apart.
func (o Options) Normalized(cal silicon.Calibration) Options {
	if o.Runs <= 0 {
		o.Runs = 100
	}
	if o.ZeroFill {
		o.Pattern = 0
	} else if o.Pattern == 0 && !o.RandomFill && o.PatternName == "" {
		o.Pattern = 0xFFFF
	}
	if o.PatternName == "" {
		if o.RandomFill {
			o.PatternName = "random-50%"
		} else {
			o.PatternName = fmt.Sprintf("16'h%04X", o.Pattern)
		}
	}
	if o.VStart == 0 {
		o.VStart = cal.Vmin
	}
	if o.VStop == 0 {
		o.VStop = cal.Vcrash
	}
	if o.StepV == 0 {
		o.StepV = voltage.Step
	}
	if o.OnBoardC == 0 {
		o.OnBoardC = 50
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Fingerprint returns a stable identity for the measurement-relevant knobs:
// the silicon model version, effective data fill, sweep window, and step.
// Worker count, Gate, and PatternName are excluded — the first two only
// change scheduling, the third is a display label; what fill() actually
// writes is what identifies the measurement. The model version rides along
// so FVMs persisted under an older weak-cell model miss the cache and are
// re-measured rather than silently mixed with current-model results. Call it
// on Normalized options, so defaulted and explicit paper options collide,
// which is what a memoization key wants.
func (o Options) Fingerprint() string {
	fill := fmt.Sprintf("%04X", o.Pattern)
	if o.RandomFill {
		fill = "random" // seeded per serial, which the cache keys separately
	}
	return fmt.Sprintf("model=%d|fill=%s|win=%.3f..%.3f|step=%.3f",
		silicon.ModelVersion, fill, o.VStart, o.VStop, o.StepV)
}

// Level is the analysis of one voltage step.
type Level struct {
	V             float64
	RunTotals     []int         // chip-wide fault count of each run
	Stats         stats.Summary // summary of RunTotals (Table II columns)
	MedianFaults  float64
	FaultsPerMbit float64 // median, normalized per Mbit (the paper's unit)
	PerBRAM       []float64
	Flip10        int64 // "1"→"0" observations across runs
	Flip01        int64 // "0"→"1" observations across runs
	BRAMPowerW    float64
	MeterPowerW   float64
}

// Flip10Share returns the fraction of observed flips that were 1→0.
func (l Level) Flip10Share() float64 {
	total := l.Flip10 + l.Flip01
	if total == 0 {
		return 0
	}
	return float64(l.Flip10) / float64(total)
}

// Sweep is the result of one full undervolting characterization.
type Sweep struct {
	Platform    string
	Serial      string
	PatternName string
	OnBoardC    float64
	Levels      []Level
}

// LevelAt returns the level measured at voltage v (within half a step).
func (s *Sweep) LevelAt(v float64) (Level, bool) {
	for _, l := range s.Levels {
		if diff := l.V - v; diff < 0.005 && diff > -0.005 {
			return l, true
		}
	}
	return Level{}, false
}

// Final returns the deepest measured level (normally Vcrash).
func (s *Sweep) Final() Level {
	if len(s.Levels) == 0 {
		return Level{}
	}
	return s.Levels[len(s.Levels)-1]
}

// PerBRAMMedian returns the per-BRAM median fault counts at the deepest
// level, the input to clustering and FVM extraction.
func (s *Sweep) PerBRAMMedian() []float64 { return s.Final().PerBRAM }

// Run executes the sweep of Listing 1 on the board and restores nominal
// voltage afterwards. The context is checked between voltage levels and
// between read passes, so a cancelled sweep stops promptly; the rail is
// restored to nominal before the cancellation error is returned.
func Run(ctx context.Context, b *board.Board, opts Options) (*Sweep, error) {
	o := opts.Normalized(b.Platform.Cal)
	b.SetOnBoardTemp(o.OnBoardC)
	fill(b, o)

	sweep := &Sweep{
		Platform:    b.Platform.Name,
		Serial:      b.Platform.Serial,
		PatternName: o.PatternName,
		OnBoardC:    o.OnBoardC,
	}
	for _, v := range voltage.SweepDown(o.VStart, o.VStop, o.StepV) {
		if err := ctx.Err(); err != nil {
			return nil, restoreNominal(b, err)
		}
		if err := b.SetVCCBRAM(v); err != nil {
			return nil, restoreNominal(b, err)
		}
		if !b.Operating() {
			break // crash region reached; DONE dropped
		}
		b.SoftReset()
		level, err := measureLevel(ctx, b, o, v)
		if err != nil {
			return nil, restoreNominal(b, err)
		}
		sweep.Levels = append(sweep.Levels, level)
	}
	if err := b.SetVCCBRAM(b.Platform.Cal.Vnom); err != nil {
		return nil, err
	}
	return sweep, nil
}

// restoreNominal raises the BRAM rail back to nominal on an abnormal exit.
// The cause always stays visible (errors.Is keeps matching it); a failed
// restore — the board left undervolted — is joined onto it rather than
// swallowed.
func restoreNominal(b *board.Board, cause error) error {
	if err := b.SetVCCBRAM(b.Platform.Cal.Vnom); err != nil {
		return errors.Join(cause, err)
	}
	return cause
}

// fill initializes the pool with the requested pattern.
func fill(b *board.Board, o Options) {
	if !o.RandomFill {
		b.FillAll(o.Pattern)
		return
	}
	src := prng.NewKeyed("characterize-random-fill:" + b.Platform.Serial)
	b.FillAllFunc(func(site, row int) uint16 { return uint16(src.Uint64()) })
}

// measureLevel performs o.Runs full-pool read passes at the current voltage
// and aggregates host-side analysis. The context is checked before every
// read pass.
func measureLevel(ctx context.Context, b *board.Board, o Options, v float64) (Level, error) {
	nSites := b.Pool.Len()
	level := Level{V: v}
	perBRAMRuns := make([][]int, nSites) // [site][run]
	for s := range perBRAMRuns {
		perBRAMRuns[s] = make([]int, o.Runs)
	}

	// The paper validates link fidelity at each level with a full wire-path
	// transfer before the measurement runs. The probe reads under the
	// reserved LinkProbeRun index so it can never alias the jitter draw of a
	// numbered BeginRun() measurement pass.
	if _, err := b.StreamBRAM(0, board.LinkProbeRun); err != nil {
		return Level{}, err
	}

	for run := 0; run < o.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return Level{}, err
		}
		runIdx := b.BeginRun()
		total, f10, f01, err := scanPool(ctx, b, o, perBRAMRuns, run, runIdx)
		if err != nil {
			return Level{}, err
		}
		level.RunTotals = append(level.RunTotals, total)
		level.Flip10 += f10
		level.Flip01 += f01
	}

	level.Stats = stats.SummarizeInts(level.RunTotals)
	level.MedianFaults = level.Stats.Median
	level.FaultsPerMbit = level.MedianFaults / b.Pool.TotalMbits()
	level.PerBRAM = make([]float64, nSites)
	for s := range perBRAMRuns {
		level.PerBRAM[s] = stats.MedianInts(perBRAMRuns[s])
	}
	level.BRAMPowerW = b.BRAMPowerW()
	level.MeterPowerW = b.MeasureTotalPowerW(10)
	return level, nil
}

// scanPool surveys every BRAM once (one "run"), fanned out over o.Workers
// readers. It rides the count-only read path — the fault overlay is evaluated
// per site and stored words are consulted only at fault rows — so no 2 KB
// snapshot is copied and no 1024-row compare runs per BRAM; the full-readout
// path remains where contents are actually needed (pattern-of-content
// studies, accel.ReadParameters, link-fidelity frames). When o.Gate is set,
// each worker holds one budget unit while it scans.
func scanPool(ctx context.Context, b *board.Board, o Options, perBRAM [][]int, run int, runIdx uint64) (total int, f10, f01 int64, err error) {
	nSites := b.Pool.Len()
	workers := o.Workers
	if workers > nSites {
		workers = nSites
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int, nSites)
	for s := 0; s < nSites; s++ {
		next <- s
	}
	close(next)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if o.Gate != nil {
				if err := o.Gate.Acquire(ctx, 1); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				defer o.Gate.Release(1)
			}
			reader := b.NewReader()
			var localTotal int
			var local10, local01 int64
			for site := range next {
				n, n10, n01, err := reader.CountInto(site, runIdx)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				perBRAM[site][run] = n
				localTotal += n
				local10 += int64(n10)
				local01 += int64(n01)
			}
			mu.Lock()
			total += localTotal
			f10 += local10
			f01 += local01
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, 0, 0, firstErr
	}
	return total, f10, f01, nil
}

// Thresholds holds the discovered operating boundaries of one rail (Fig. 1).
type Thresholds struct {
	Vnom   float64
	Vmin   float64 // lowest fault-free level observed
	Vcrash float64 // lowest operating level observed
}

// GuardbandFrac returns (Vnom-Vmin)/Vnom.
func (t Thresholds) GuardbandFrac() float64 {
	if t.Vnom == 0 {
		return 0
	}
	return (t.Vnom - t.Vmin) / t.Vnom
}

// DiscoverBRAMThresholds sweeps VCCBRAM downward from nominal until the
// design crashes, recording where faults first appear (Vmin) and the lowest
// operating level (Vcrash). A short probe (probeRuns read passes over the
// pool) detects faults at each level. The board is reconfigured and restored
// to nominal before returning.
func DiscoverBRAMThresholds(ctx context.Context, b *board.Board, probeRuns int) (Thresholds, error) {
	return DiscoverBRAMThresholdsGated(ctx, b, probeRuns, nil)
}

// DiscoverBRAMThresholdsGated is DiscoverBRAMThresholds under a shared read
// budget: each voltage level's probe passes are executed while holding one
// unit of gate (nil = ungated). Discovery reads serially, so without the
// gate a fleet of concurrent discoveries would bypass the engine's
// fleet-wide read ceiling entirely.
func DiscoverBRAMThresholdsGated(ctx context.Context, b *board.Board, probeRuns int, gate *sem.Gate) (Thresholds, error) {
	if probeRuns <= 0 {
		probeRuns = 3
	}
	cal := b.Platform.Cal
	th := Thresholds{Vnom: cal.Vnom, Vmin: cal.Vnom, Vcrash: cal.Vnom}
	b.FillAll(0xFFFF)
	sawFault := false
	for _, v := range voltage.SweepDown(cal.Vnom, 0.40, voltage.Step) {
		if err := ctx.Err(); err != nil {
			return th, restoreNominal(b, err)
		}
		if err := b.SetVCCBRAM(v); err != nil {
			return th, restoreNominal(b, err)
		}
		if !b.Operating() {
			break
		}
		th.Vcrash = v
		// The probe only asks "any faults at this level?", so it rides the
		// count-only path (bit granularity instead of the old word
		// granularity — zero iff zero either way).
		faults, err := probeLevel(ctx, b, probeRuns, gate)
		if err != nil {
			return th, restoreNominal(b, err)
		}
		if faults == 0 && !sawFault {
			th.Vmin = v
		} else {
			sawFault = true
		}
	}
	if err := b.SetVCCBRAM(cal.Vnom); err != nil {
		return th, err
	}
	b.Configure()
	return th, nil
}

// probeLevel counts faults across probeRuns read passes at the current
// voltage, holding one unit of the read budget (when gated) for the whole
// probe — the serial-path analogue of a scanPool worker's hold.
func probeLevel(ctx context.Context, b *board.Board, probeRuns int, gate *sem.Gate) (int, error) {
	if gate != nil {
		if err := gate.Acquire(ctx, 1); err != nil {
			return 0, err
		}
		defer gate.Release(1)
	}
	faults := 0
	for r := 0; r < probeRuns; r++ {
		n, _, _, err := b.CountFaultsInto(nil, b.BeginRun())
		if err != nil {
			return 0, err
		}
		faults += n
	}
	return faults, nil
}

// DiscoverIntThresholds locates the VCCINT boundaries (Fig. 1b) using the
// design's logic self-test as the fault signal.
func DiscoverIntThresholds(ctx context.Context, b *board.Board) (Thresholds, error) {
	cal := b.Platform.Cal
	th := Thresholds{Vnom: cal.Vnom, Vmin: cal.Vnom, Vcrash: cal.Vnom}
	sawFault := false
	for _, v := range voltage.SweepDown(cal.Vnom, 0.40, voltage.Step) {
		if err := ctx.Err(); err != nil {
			// The cancellation cause stays visible (errors.Is keeps
			// matching); a failed restore rides along joined.
			if rerr := b.SetVCCINT(cal.Vnom); rerr != nil {
				return th, errors.Join(err, rerr)
			}
			return th, err
		}
		if err := b.SetVCCINT(v); err != nil {
			return th, err
		}
		if !b.Operating() {
			break
		}
		th.Vcrash = v
		errs, err := b.LogicSelfTestErrors(b.BeginRun())
		if err != nil {
			return th, err
		}
		if errs == 0 && !sawFault {
			th.Vmin = v
		} else {
			sawFault = true
		}
	}
	if err := b.SetVCCINT(cal.Vnom); err != nil {
		return th, err
	}
	b.Configure()
	return th, nil
}

// PatternStudy measures the fault rate of each pattern at a fixed voltage
// (Fig. 4 uses Vcrash on VC707). Returned rates are medians in faults/Mbit,
// keyed in input order.
type PatternResult struct {
	Name          string
	FaultsPerMbit float64
	Flip10Share   float64
}

// RunPatternStudy sweeps nothing: it fixes the voltage and measures each
// pattern with opts.Runs passes.
func RunPatternStudy(ctx context.Context, b *board.Board, v float64, patterns []Options, runs int) ([]PatternResult, error) {
	var out []PatternResult
	for _, p := range patterns {
		if err := ctx.Err(); err != nil {
			return nil, restoreNominal(b, err)
		}
		p.Runs = runs
		p.VStart = v
		p.VStop = v
		o := p.Normalized(b.Platform.Cal)
		b.SetOnBoardTemp(o.OnBoardC)
		fill(b, o)
		if err := b.SetVCCBRAM(v); err != nil {
			return nil, restoreNominal(b, err)
		}
		if !b.Operating() {
			return nil, board.ErrNotOperating
		}
		b.SoftReset()
		level, err := measureLevel(ctx, b, o, v)
		if err != nil {
			return nil, restoreNominal(b, err)
		}
		out = append(out, PatternResult{
			Name:          o.PatternName,
			FaultsPerMbit: level.FaultsPerMbit,
			Flip10Share:   level.Flip10Share(),
		})
	}
	if err := b.SetVCCBRAM(b.Platform.Cal.Vnom); err != nil {
		return nil, err
	}
	return out, nil
}

// TemperatureStudy runs the Fig. 8 experiment: a full voltage sweep at each
// on-board temperature, returning one Sweep per temperature in input order.
func TemperatureStudy(ctx context.Context, b *board.Board, temps []float64, opts Options) ([]*Sweep, error) {
	var out []*Sweep
	for _, tC := range temps {
		o := opts
		o.OnBoardC = tC
		s, err := Run(ctx, b, o)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	b.SetOnBoardTemp(50)
	return out, nil
}
