package characterize

import (
	"context"
	"math"
	"testing"

	"repro/internal/board"
	"repro/internal/platform"
	"repro/internal/sem"
	"repro/internal/stats"
)

// fastOpts keeps unit tests quick: fewer runs, small pool.
func fastOpts() Options { return Options{Runs: 15, Workers: 4} }

func newBoard(t *testing.T, n int) *board.Board {
	t.Helper()
	return board.New(platform.VC707().Scaled(n))
}

func TestSweepBasicShape(t *testing.T) {
	b := newBoard(t, 150)
	s, err := Run(context.Background(), b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	cal := b.Platform.Cal
	wantLevels := int(math.Round((cal.Vmin-cal.Vcrash)/0.01)) + 1
	if len(s.Levels) != wantLevels {
		t.Fatalf("levels = %d, want %d", len(s.Levels), wantLevels)
	}
	if s.Levels[0].V != cal.Vmin || s.Final().V != cal.Vcrash {
		t.Fatalf("sweep endpoints: %v .. %v", s.Levels[0].V, s.Final().V)
	}
	// Voltage restored after sweep.
	if b.VCCBRAM() != cal.Vnom {
		t.Fatalf("voltage not restored: %v", b.VCCBRAM())
	}
	if s.PatternName != "16'hFFFF" {
		t.Fatalf("default pattern name = %q", s.PatternName)
	}
}

func TestFaultRateGrowsTowardsVcrash(t *testing.T) {
	b := newBoard(t, 150)
	s, err := Run(context.Background(), b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	first := s.Levels[0]
	last := s.Final()
	if first.MedianFaults > last.MedianFaults {
		t.Fatalf("fault rate should grow as voltage drops: %v -> %v",
			first.MedianFaults, last.MedianFaults)
	}
	if last.MedianFaults == 0 {
		t.Fatal("no faults at Vcrash")
	}
	// Exponential shape check over the window.
	var vs, ns []float64
	for _, l := range s.Levels {
		vs = append(vs, l.V)
		ns = append(ns, l.MedianFaults)
	}
	fit, err := stats.FitExponential(vs, ns)
	if err != nil {
		t.Fatal(err)
	}
	if fit.B >= 0 || fit.R2 < 0.85 {
		t.Fatalf("curve not exponential: B=%v R2=%v", fit.B, fit.R2)
	}
}

func TestFaultsPerMbitCalibrated(t *testing.T) {
	// Even at 150/2060 scale, the per-Mbit rate at Vcrash should land near
	// the platform's published 652 (sampling noise allowed).
	b := newBoard(t, 150)
	s, err := Run(context.Background(), b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	got := s.Final().FaultsPerMbit
	if got < 652*0.6 || got > 652*1.4 {
		t.Fatalf("faults/Mbit at Vcrash = %v, want ~652", got)
	}
}

func TestPowerDecreasesThroughSweep(t *testing.T) {
	b := newBoard(t, 120)
	s, err := Run(context.Background(), b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Levels); i++ {
		if s.Levels[i].BRAMPowerW >= s.Levels[i-1].BRAMPowerW {
			t.Fatalf("BRAM power must fall with voltage: level %d", i)
		}
	}
	if s.Final().MeterPowerW <= 0 {
		t.Fatal("meter power missing")
	}
}

func TestVastMajorityFlips10(t *testing.T) {
	b := newBoard(t, 150)
	s, err := Run(context.Background(), b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := s.Final()
	if last.Flip10 == 0 {
		t.Fatal("no 1->0 flips observed")
	}
	if share := last.Flip10Share(); share < 0.99 {
		t.Fatalf("1->0 share = %v, want ~0.999", share)
	}
}

func TestRunStabilityTableII(t *testing.T) {
	b := newBoard(t, 150)
	s, err := Run(context.Background(), b, Options{Runs: 40, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	last := s.Final()
	// Locations and counts barely move: relative stddev well under 10%.
	if last.Stats.StdDev > 0.1*last.Stats.Mean+1 {
		t.Fatalf("run-to-run stddev = %v of mean %v", last.Stats.StdDev, last.Stats.Mean)
	}
	if last.Stats.Min > last.Stats.Median || last.Stats.Median > last.Stats.Max {
		t.Fatal("summary ordering broken")
	}
}

func TestDeterministicAcrossHarnessInvocations(t *testing.T) {
	a, err := Run(context.Background(), newBoard(t, 100), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), newBoard(t, 100), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Levels {
		if a.Levels[i].MedianFaults != b.Levels[i].MedianFaults {
			t.Fatalf("level %d: %v vs %v", i, a.Levels[i].MedianFaults, b.Levels[i].MedianFaults)
		}
	}
}

func TestPerBRAMDistributionNonUniform(t *testing.T) {
	b := newBoard(t, 200)
	s, err := Run(context.Background(), b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	per := s.PerBRAMMedian()
	if len(per) != 200 {
		t.Fatalf("per-BRAM length = %d", len(per))
	}
	zero := 0
	for _, c := range per {
		if c == 0 {
			zero++
		}
	}
	if zero == 0 || zero == len(per) {
		t.Fatalf("zero-fault BRAMs = %d/%d, want a real split", zero, len(per))
	}
	sum := stats.Summarize(per)
	if sum.Max < 3*sum.Mean {
		t.Fatalf("per-BRAM distribution too uniform: max=%v mean=%v", sum.Max, sum.Mean)
	}
}

func TestLevelAt(t *testing.T) {
	b := newBoard(t, 100)
	s, err := Run(context.Background(), b, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LevelAt(b.Platform.Cal.Vcrash); !ok {
		t.Fatal("LevelAt(Vcrash) missing")
	}
	if _, ok := s.LevelAt(0.90); ok {
		t.Fatal("LevelAt(0.90) should be absent")
	}
}

func TestDiscoverBRAMThresholds(t *testing.T) {
	b := newBoard(t, 150)
	th, err := DiscoverBRAMThresholds(context.Background(), b, 2)
	if err != nil {
		t.Fatal(err)
	}
	cal := b.Platform.Cal
	if math.Abs(th.Vcrash-cal.Vcrash) > 0.011 {
		t.Fatalf("discovered Vcrash = %v, want ~%v", th.Vcrash, cal.Vcrash)
	}
	// Vmin discovery: no faults at/above cal.Vmin, so discovered Vmin should
	// be within a step of the calibrated value.
	if th.Vmin > cal.Vmin+0.011 || th.Vmin < cal.Vmin-0.021 {
		t.Fatalf("discovered Vmin = %v, want ~%v", th.Vmin, cal.Vmin)
	}
	if gb := th.GuardbandFrac(); math.Abs(gb-0.39) > 0.03 {
		t.Fatalf("guardband = %v, want ~0.39", gb)
	}
	// Board restored and operating.
	if !b.Operating() || b.VCCBRAM() != cal.Vnom {
		t.Fatal("board not restored after discovery")
	}
}

func TestDiscoverBRAMThresholdsGated(t *testing.T) {
	// The gated variant must produce the identical discovery (the gate only
	// schedules) and leave no units held.
	gate := sem.New(1)
	bare := newBoard(t, 60)
	want, err := DiscoverBRAMThresholds(context.Background(), bare, 2)
	if err != nil {
		t.Fatal(err)
	}
	gatedBoard := newBoard(t, 60)
	got, err := DiscoverBRAMThresholdsGated(context.Background(), gatedBoard, 2, gate)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("gated discovery %+v differs from ungated %+v", got, want)
	}
	st := gate.Stats()
	if st.Peak != 1 || st.InUse != 0 {
		t.Fatalf("gate stats %+v: probes never acquired, or leaked units", st)
	}

	// A dead context surfaces promptly through the gate acquire, with the
	// rail restored.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := newBoard(t, 60)
	if _, err := DiscoverBRAMThresholdsGated(ctx, b, 2, sem.New(1)); err == nil {
		t.Fatal("cancelled gated discovery returned nil error")
	}
	if b.VCCBRAM() != b.Platform.Cal.Vnom {
		t.Fatal("rail left underscaled after cancellation")
	}
}

func TestDiscoverIntThresholds(t *testing.T) {
	b := newBoard(t, 60)
	th, err := DiscoverIntThresholds(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	cal := b.Platform.Cal
	if math.Abs(th.Vcrash-cal.VcrashInt) > 0.011 {
		t.Fatalf("discovered VCCINT Vcrash = %v, want ~%v", th.Vcrash, cal.VcrashInt)
	}
	if math.Abs(th.Vmin-cal.VminInt) > 0.021 {
		t.Fatalf("discovered VCCINT Vmin = %v, want ~%v", th.Vmin, cal.VminInt)
	}
}

func TestPatternStudy(t *testing.T) {
	b := newBoard(t, 150)
	v := b.Platform.Cal.Vcrash
	results, err := RunPatternStudy(context.Background(), b, v, []Options{
		{Pattern: 0xFFFF},
		{Pattern: 0xAAAA},
		{Pattern: 0x5555},
		{RandomFill: true},
		{ZeroFill: true, PatternName: "16'h0000"},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	ffff, aaaa, r5555, rand50, zero := results[0], results[1], results[2], results[3], results[4]
	// FFFF ~ 2x AAAA (half the "1" bits).
	ratio := ffff.FaultsPerMbit / math.Max(aaaa.FaultsPerMbit, 1e-9)
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("FFFF/AAAA = %v, want ~2", ratio)
	}
	// Same-ones patterns within ~25% of each other.
	for _, p := range []PatternResult{r5555, rand50} {
		if p.FaultsPerMbit < aaaa.FaultsPerMbit*0.7 || p.FaultsPerMbit > aaaa.FaultsPerMbit*1.4 {
			t.Fatalf("50%%-ones pattern %s = %v, AAAA = %v", p.Name, p.FaultsPerMbit, aaaa.FaultsPerMbit)
		}
	}
	// All-zeros: only the rare 0->1 population shows.
	if zero.FaultsPerMbit > ffff.FaultsPerMbit*0.02 {
		t.Fatalf("all-zeros rate = %v, want near zero (FFFF=%v)", zero.FaultsPerMbit, ffff.FaultsPerMbit)
	}
}

func TestTemperatureStudyITD(t *testing.T) {
	b := newBoard(t, 150)
	sweeps, err := TemperatureStudy(context.Background(), b, []float64{50, 80}, Options{Runs: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cold := sweeps[0].Final().MedianFaults
	hot := sweeps[1].Final().MedianFaults
	if cold == 0 {
		t.Fatal("no faults at 50C")
	}
	if hot >= cold {
		t.Fatalf("ITD violated: 50C=%v 80C=%v", cold, hot)
	}
	ratio := cold / math.Max(hot, 1)
	if ratio < 2 || ratio > 6 {
		t.Fatalf("50->80C fault reduction = %vx, want ~3x on VC707", ratio)
	}
}

func TestOptionsDefaults(t *testing.T) {
	b := newBoard(t, 50)
	o := Options{}.Normalized(b.Platform.Cal)
	if o.Runs != 100 || o.Pattern != 0xFFFF || o.StepV != 0.01 || o.OnBoardC != 50 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	z := Options{ZeroFill: true, PatternName: "16'h0000"}.Normalized(b.Platform.Cal)
	if z.Pattern != 0 {
		t.Fatal("ZeroFill must force all-zeros")
	}
	r := Options{RandomFill: true}.Normalized(b.Platform.Cal)
	if r.PatternName != "random-50%" {
		t.Fatalf("random name = %q", r.PatternName)
	}
}
