// Package accel simulates the paper's FPGA-based NN accelerator
// (Section III, Table III): the trained, quantized network's weights and
// biases live in on-chip BRAMs; inputs stream through the datapath; and when
// VCCBRAM is underscaled, weight reads pass through the same fault overlay
// the characterization study measured. VCCINT stays at nominal, as in the
// paper — only the memories are undervolted.
//
// The accelerator owns the logical→physical BRAM mapping (a compiled
// bitstream), so placement policy — default vs ICBP — determines which
// physical fault populations the weight bits are exposed to.
package accel

import (
	"context"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/bram"
	"repro/internal/fixed"
	"repro/internal/nn"
	"repro/internal/placement"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sem"
	"repro/internal/xdc"
)

// Accelerator is one compiled-and-loaded NN design on a board.
type Accelerator struct {
	Board  *board.Board
	Net    *nn.Quantized
	Design *bitstream.Design
	BS     *bitstream.Bitstream

	blocks [][]int   // per layer: physical block indices in cell order
	gate   *sem.Gate // shared read budget held during parameter readback
}

// SetReadGate installs a shared budget on the accelerator's undervolted
// parameter readback: EvaluateAt and LayerFaultCounts hold one unit while
// they read. The fleet engine hands every board's accelerator its read gate
// so serial inference readback counts against the same fleet-wide ceiling
// the sweep scan workers share. nil removes the gate.
func (a *Accelerator) SetReadGate(g *sem.Gate) { a.gate = g }

// acquireReadGate takes one budget unit (no-op when ungated), returning a
// release func.
func (a *Accelerator) acquireReadGate(ctx context.Context) (func(), error) {
	if a.gate == nil {
		return func() {}, nil
	}
	if err := a.gate.Acquire(ctx, 1); err != nil {
		return nil, err
	}
	return func() { a.gate.Release(1) }, nil
}

// Build compiles the design (placing with the given constraints and seed)
// and loads the quantized parameters into the placed BRAMs.
func Build(b *board.Board, q *nn.Quantized, cs *xdc.ConstraintSet, seed uint64) (*Accelerator, error) {
	d := placement.BuildDesign("nn", q)
	bs, err := bitstream.Place(d, b.Platform.Sites(), cs, seed)
	if err != nil {
		return nil, err
	}
	if err := bs.Validate(b.Platform.Sites(), cs); err != nil {
		return nil, err
	}
	return Assemble(b, q, d, bs)
}

// Assemble loads an already-compiled design onto a board: it resolves every
// placed cell to the board's physical BRAM pool and writes the parameters.
// Placement is a function of the floorplan, not the die, so one compiled
// (design, bitstream) pair can be assembled onto any board whose platform
// shares the geometry the bitstream was placed for — the fleet engine's
// placement cache relies on this to deploy one compile across N boards.
func Assemble(b *board.Board, q *nn.Quantized, d *bitstream.Design, bs *bitstream.Bitstream) (*Accelerator, error) {
	a := &Accelerator{Board: b, Net: q, Design: d, BS: bs}
	for j := range q.Words {
		cells := d.CellsInGroup(placement.LayerGroup(j))
		var idxs []int
		for _, cell := range cells {
			site, ok := bs.Placement.SiteOf(cell)
			if !ok {
				return nil, fmt.Errorf("accel: cell %q unplaced", cell)
			}
			blk := b.Pool.At(site)
			if blk == nil {
				return nil, fmt.Errorf("accel: no BRAM at %+v", site)
			}
			idxs = append(idxs, blk.Index())
		}
		a.blocks = append(a.blocks, idxs)
	}
	a.LoadParameters()
	return a, nil
}

// LoadParameters writes the quantized words into the placed physical BRAMs
// (done at configuration time, i.e. at nominal voltage: writes are safe).
func (a *Accelerator) LoadParameters() {
	for j, words := range a.Net.Words {
		for k, blkIdx := range a.blocks[j] {
			blk := a.Board.Pool.Block(blkIdx)
			base := k * bram.Rows
			for row := 0; row < bram.Rows; row++ {
				addr := base + row
				if addr < len(words) {
					blk.Write(row, uint16(words[addr]))
				} else {
					blk.Write(row, 0)
				}
			}
		}
	}
}

// BRAMUtilization returns the share of the pool the design occupies
// (Table III: 70.8% on VC707 for the paper topology).
func (a *Accelerator) BRAMUtilization() float64 {
	used := 0
	for _, idxs := range a.blocks {
		used += len(idxs)
	}
	return float64(used) / float64(a.Board.Pool.Len())
}

// ReadParameters reads every parameter word back through the undervolted
// read path and also returns the number of faulty bits observed relative to
// the stored words — the "fault rate in BRAMs filled with NN weights" axis
// of Fig. 11.
func (a *Accelerator) ReadParameters(run uint64) ([][]fixed.Word, int, error) {
	out := make([][]fixed.Word, len(a.Net.Words))
	faultBits := 0
	buf := make([]uint16, bram.Rows)
	for j, words := range a.Net.Words {
		got := make([]fixed.Word, len(words))
		for k, blkIdx := range a.blocks[j] {
			if err := a.Board.ReadBRAMInto(buf, blkIdx, run); err != nil {
				return nil, 0, err
			}
			blk := a.Board.Pool.Block(blkIdx)
			base := k * bram.Rows
			for row := 0; row < bram.Rows; row++ {
				addr := base + row
				if addr >= len(words) {
					break
				}
				w := fixed.Word(buf[row])
				got[addr] = w
				if diff := buf[row] ^ blk.ReadRaw(row); diff != 0 {
					faultBits += popcount16(diff)
				}
			}
		}
		out[j] = got
	}
	return out, faultBits, nil
}

func popcount16(v uint16) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// InferenceResult is one classification evaluation under voltage.
type InferenceResult struct {
	V           float64
	Error       float64 // classification error rate
	WeightFault int     // faulty parameter bits observed during the read
}

// EvaluateAt sets VCCBRAM to v, streams the test set through the
// accelerator (reading parameters through the faulty path once — fault
// locations are deterministic, so one read pass defines the epoch's
// effective weights), and returns the classification error. The rail is
// restored to nominal afterwards. The context is checked before the voltage
// moves, so a cancelled campaign never leaves the rail underscaled.
func (a *Accelerator) EvaluateAt(ctx context.Context, v float64, xs [][]float64, ys []int, workers int) (InferenceResult, error) {
	cal := a.Board.Platform.Cal
	if err := ctx.Err(); err != nil {
		return InferenceResult{}, err
	}
	// The gate is a cancellable blocking point, so it is taken before the
	// rail moves: a campaign cancelled while queued for read budget must
	// not leave VCCBRAM underscaled. It is released as soon as the readback
	// ends — the float evaluation below is not BRAM read work and must not
	// serialize the fleet.
	release, err := a.acquireReadGate(ctx)
	if err != nil {
		return InferenceResult{}, err
	}
	if err := a.Board.SetVCCBRAM(v); err != nil {
		release()
		return InferenceResult{}, err
	}
	if !a.Board.Operating() {
		release()
		return InferenceResult{}, board.ErrNotOperating
	}
	run := a.Board.BeginRun()
	words, faults, err := a.ReadParameters(run)
	release()
	if err != nil {
		return InferenceResult{}, err
	}
	if err := a.Board.SetVCCBRAM(cal.Vnom); err != nil {
		return InferenceResult{}, err
	}
	net, err := a.Net.Dequantize(words)
	if err != nil {
		return InferenceResult{}, err
	}
	return InferenceResult{
		V:           v,
		Error:       net.Evaluate(xs, ys, workers),
		WeightFault: faults,
	}, nil
}

// Sweep evaluates the accelerator at every voltage level from the
// platform's Vmin to Vcrash in 10 mV steps (Fig. 11 / Fig. 14 curves).
func (a *Accelerator) Sweep(ctx context.Context, xs [][]float64, ys []int, workers int) ([]InferenceResult, error) {
	cal := a.Board.Platform.Cal
	var out []InferenceResult
	for v := cal.Vmin; v > cal.Vcrash-0.005; v -= 0.01 {
		r, err := a.EvaluateAt(ctx, v, xs, ys, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ComponentsFor returns the NN design's on-chip power budget for a given
// BRAM utilization on a platform: the BRAM share scales with utilization;
// the datapath (DSP/logic/routing/clocking) sits on VCCINT, which the
// Section III experiments keep at nominal. The non-BRAM budget is calibrated
// so the paper topology on VC707 (70.8% utilization) reproduces Fig. 10's
// 24.1% total on-chip reduction when VCCBRAM drops to Vmin.
func ComponentsFor(p platform.Platform, utilization float64) []power.Component {
	scale := p.BRAMPowerNom / 2.8 // keep proportions when platforms shrink
	return []power.Component{
		p.BRAMComponent(utilization),
		{Name: "DSP", DynNom: 1.10 * scale, StatNom: 0.30 * scale, Rail: "VCCINT"},
		{Name: "LUT+FF", DynNom: 1.50 * scale, StatNom: 0.70 * scale, Rail: "VCCINT"},
		{Name: "Routing", DynNom: 0.90 * scale, StatNom: 0.30 * scale, Rail: "VCCINT"},
		{Name: "Clocking", DynNom: 0.70 * scale, StatNom: 0.05 * scale, Rail: "VCCINT"},
	}
}

// Components returns the power budget of this compiled design.
func (a *Accelerator) Components() []power.Component {
	return ComponentsFor(a.Board.Platform, a.BRAMUtilization())
}

// PowerBreakdown evaluates the design's on-chip power with VCCBRAM at v and
// VCCINT at nominal — the bars of Fig. 10.
func (a *Accelerator) PowerBreakdown(v float64) power.Breakdown {
	return a.Board.PowerMod.Evaluate(a.Components(), map[string]float64{
		"VCCBRAM": v,
		"VCCINT":  a.Board.Platform.Cal.Vnom,
	}, a.Board.OnBoardTempC())
}

// LayerFaultCounts reads parameters at voltage v and attributes faulty bits
// to layers — the #faults bars of Fig. 13.
func (a *Accelerator) LayerFaultCounts(ctx context.Context, v float64) ([]int, error) {
	cal := a.Board.Platform.Cal
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// As in EvaluateAt: the cancellable gate wait happens before the rail
	// moves, never with VCCBRAM already underscaled.
	release, err := a.acquireReadGate(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if err := a.Board.SetVCCBRAM(v); err != nil {
		return nil, err
	}
	if !a.Board.Operating() {
		return nil, board.ErrNotOperating
	}
	run := a.Board.BeginRun()
	counts := make([]int, len(a.Net.Words))
	buf := make([]uint16, bram.Rows)
	for j, words := range a.Net.Words {
		for k, blkIdx := range a.blocks[j] {
			if err := a.Board.ReadBRAMInto(buf, blkIdx, run); err != nil {
				return nil, err
			}
			blk := a.Board.Pool.Block(blkIdx)
			base := k * bram.Rows
			for row := 0; row < bram.Rows; row++ {
				if base+row >= len(words) {
					break
				}
				if diff := buf[row] ^ blk.ReadRaw(row); diff != 0 {
					counts[j] += popcount16(diff)
				}
			}
		}
	}
	if err := a.Board.SetVCCBRAM(cal.Vnom); err != nil {
		return nil, err
	}
	return counts, nil
}
