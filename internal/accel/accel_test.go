package accel

import (
	"context"
	"math"
	"testing"

	"repro/internal/board"
	"repro/internal/characterize"
	"repro/internal/dataset"
	"repro/internal/fvm"
	"repro/internal/nn"
	"repro/internal/placement"
	"repro/internal/platform"
)

// fixture bundles a small trained accelerator setup.
type fixture struct {
	board *board.Board
	data  *dataset.Dataset
	quant *nn.Quantized
	base  float64 // quantized fault-free error
}

// newFixture trains a 196-64-32-10 classifier and returns it with a scaled
// VC707. hotFaults multiplies the platform's fault density so fault-driven
// assertions are statistically solid at test scale.
func newFixture(t *testing.T, hotFaults float64) *fixture {
	t.Helper()
	p := platform.VC707().Scaled(80)
	p.Cal.FaultsPerMbit *= hotFaults
	b := board.New(p)
	ds := dataset.MNISTLike(dataset.Options{
		TrainSamples: 1500, TestSamples: 400, Features: 196, Classes: 10,
	})
	net, err := nn.New([]int{196, 64, 32, 10}, "accel-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(ds.TrainX, ds.TrainY, nn.TrainOptions{
		Epochs: 10, LearnRate: 0.3, Workers: 8,
	}); err != nil {
		t.Fatal(err)
	}
	q := nn.Quantize(net)
	qn, err := q.Dequantize(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		board: b,
		data:  ds,
		quant: q,
		base:  qn.Evaluate(ds.TestX, ds.TestY, 8),
	}
}

func (f *fixture) fvm(t *testing.T) *fvm.Map {
	t.Helper()
	s, err := characterize.Run(context.Background(), f.board, characterize.Options{Runs: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := fvm.New(f.board.Platform.Name, f.board.Platform.Serial,
		f.board.Platform.Geometry.GridCols, f.board.Platform.Geometry.GridRows,
		s.Levels[0].V, s.Final().V, 50, f.board.Platform.Sites(), s.PerBRAMMedian())
	if err != nil {
		t.Fatal(err)
	}
	// Characterization overwrote BRAM contents; the accelerator reloads its
	// parameters when built.
	return m
}

func TestBuildAndUtilization(t *testing.T) {
	f := newFixture(t, 1)
	a, err := Build(f.board, f.quant, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 17 blocks on an 80-BRAM pool.
	if got := a.BRAMUtilization(); math.Abs(got-17.0/80) > 1e-9 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestParametersReadBackCleanAtNominal(t *testing.T) {
	f := newFixture(t, 1)
	a, err := Build(f.board, f.quant, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	words, faults, err := a.ReadParameters(f.board.BeginRun())
	if err != nil {
		t.Fatal(err)
	}
	if faults != 0 {
		t.Fatalf("faults at nominal = %d", faults)
	}
	for j := range words {
		for i := range words[j] {
			if words[j][i] != f.quant.Words[j][i] {
				t.Fatalf("layer %d word %d corrupted at nominal", j, i)
			}
		}
	}
}

func TestEvaluateAtNominalMatchesBaseline(t *testing.T) {
	f := newFixture(t, 1)
	a, err := Build(f.board, f.quant, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.EvaluateAt(context.Background(), f.board.Platform.Cal.Vnom, f.data.TestX, f.data.TestY, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Error != f.base {
		t.Fatalf("nominal error = %v, baseline %v", r.Error, f.base)
	}
	if r.WeightFault != 0 {
		t.Fatalf("weight faults at nominal = %d", r.WeightFault)
	}
	// Rail restored.
	if f.board.VCCBRAM() != 1.0 {
		t.Fatal("rail not restored")
	}
}

func TestFaultsAppearAtVcrash(t *testing.T) {
	f := newFixture(t, 8) // dense faults for statistical solidity
	a, err := Build(f.board, f.quant, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.EvaluateAt(context.Background(), f.board.Platform.Cal.Vcrash, f.data.TestX, f.data.TestY, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.WeightFault == 0 {
		t.Fatal("no weight faults at Vcrash with dense fault model")
	}
	// Corrupted weights can flip the odd borderline sample either way; the
	// error must not *drop* beyond that noise.
	if r.Error < f.base-0.01 {
		t.Fatalf("error far below baseline: %v < %v", r.Error, f.base)
	}
}

func TestWeightSparsityReducesObservedFaults(t *testing.T) {
	// Fig. 11's observation: BRAMs holding NN weights show far fewer faults
	// than the all-ones pattern, because most weight bits are 0 and most
	// faults are 1->0. Compare observed weight faults to the weak-cell count
	// of the same blocks.
	f := newFixture(t, 8)
	a, err := Build(f.board, f.quant, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.EvaluateAt(context.Background(), f.board.Platform.Cal.Vcrash, f.data.TestX, f.data.TestY, 8)
	if err != nil {
		t.Fatal(err)
	}
	weak := 0
	for _, idxs := range a.blocks {
		for _, blkIdx := range idxs {
			weak += len(f.board.Die.WeakCells(blkIdx))
		}
	}
	oneFrac := f.quant.OneBitFraction()
	if oneFrac > 0.5 {
		t.Fatalf("quantized net not sparse: %v ones", oneFrac)
	}
	if weak > 20 && float64(r.WeightFault) > 0.6*float64(weak) {
		t.Fatalf("weight faults %d vs weak cells %d: sparsity should mask most",
			r.WeightFault, weak)
	}
}

func TestSweepShape(t *testing.T) {
	f := newFixture(t, 8)
	a, err := Build(f.board, f.quant, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := a.Sweep(context.Background(), f.data.TestX, f.data.TestY, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("sweep levels = %d", len(rs))
	}
	// Weight faults grow toward Vcrash.
	if rs[len(rs)-1].WeightFault <= rs[0].WeightFault {
		t.Fatalf("weight faults should grow: %d -> %d",
			rs[0].WeightFault, rs[len(rs)-1].WeightFault)
	}
	// At Vmin (first level) the design is fault-free.
	if rs[0].WeightFault != 0 || rs[0].Error != f.base {
		t.Fatalf("Vmin level not clean: %+v", rs[0])
	}
}

func TestICBPProtectsLastLayer(t *testing.T) {
	f := newFixture(t, 12)
	m := f.fvm(t)
	vcrash := f.board.Platform.Cal.Vcrash
	last := len(f.quant.Words) - 1

	d := placement.BuildDesign("nn", f.quant)
	cs, err := placement.ICBPConstraints(m, d, f.quant, placement.ICBPOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The mechanism guarantee: under ICBP the protected layer's BRAM sits on
	// a zero-fault site, so it observes no faults at any voltage. Default
	// placements, over several compilation seeds, do catch faults there.
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	defLastFaults := 0
	var defErrSum, icbpErrSum float64
	for _, seed := range seeds {
		def, err := Build(f.board, f.quant, nil, seed)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := def.LayerFaultCounts(context.Background(), vcrash)
		if err != nil {
			t.Fatal(err)
		}
		defLastFaults += counts[last]
		r, err := def.EvaluateAt(context.Background(), vcrash, f.data.TestX, f.data.TestY, 8)
		if err != nil {
			t.Fatal(err)
		}
		defErrSum += r.Error

		icbp, err := Build(f.board, f.quant, cs, seed)
		if err != nil {
			t.Fatal(err)
		}
		icbpCounts, err := icbp.LayerFaultCounts(context.Background(), vcrash)
		if err != nil {
			t.Fatal(err)
		}
		if icbpCounts[last] != 0 {
			t.Fatalf("seed %d: ICBP-protected layer saw %d faults", seed, icbpCounts[last])
		}
		ri, err := icbp.EvaluateAt(context.Background(), vcrash, f.data.TestX, f.data.TestY, 8)
		if err != nil {
			t.Fatal(err)
		}
		icbpErrSum += ri.Error
	}
	if defLastFaults == 0 {
		t.Skip("default placements all landed the last layer on clean BRAMs (rare)")
	}
	// With the protected layer's fault contribution removed, the mean error
	// across seeds must not get worse (unprotected layers are placed with
	// the same seeds on both sides, so their luck averages out).
	defMean := defErrSum / float64(len(seeds))
	icbpMean := icbpErrSum / float64(len(seeds))
	if icbpMean > defMean+0.01 {
		t.Fatalf("ICBP mean error %v worse than default mean %v", icbpMean, defMean)
	}
}

func TestPowerBreakdownShape(t *testing.T) {
	f := newFixture(t, 1)
	a, err := Build(f.board, f.quant, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	cal := f.board.Platform.Cal
	nom := a.PowerBreakdown(cal.Vnom)
	vmin := a.PowerBreakdown(cal.Vmin)
	vcrash := a.PowerBreakdown(cal.Vcrash)

	if len(nom.Entries) != 5 {
		t.Fatalf("breakdown entries = %d", len(nom.Entries))
	}
	// BRAM drops >10x at Vmin; the VCCINT side is untouched.
	if ratio := nom.Of("BRAM") / vmin.Of("BRAM"); ratio < 10 {
		t.Fatalf("BRAM reduction = %.1fx", ratio)
	}
	if nom.Of("DSP") != vmin.Of("DSP") {
		t.Fatal("VCCINT components should not move")
	}
	// Further reduction at Vcrash.
	if vcrash.Of("BRAM") >= vmin.Of("BRAM") {
		t.Fatal("no further reduction at Vcrash")
	}
	if vcrash.Total() >= vmin.Total() || vmin.Total() >= nom.Total() {
		t.Fatal("total power ordering broken")
	}
}

func TestFig10TotalReductionAtPaperUtilization(t *testing.T) {
	// With the paper's 70.8% utilization the total on-chip reduction at Vmin
	// should land near 24.1%. Emulate by scaling the BRAM component to the
	// paper's utilization on the full VC707 budget.
	p := platform.VC707()
	model := board.New(p.Scaled(40)).PowerMod
	bramNom := p.BRAMComponent(0.708)
	rest := 5.55 // calibrated non-BRAM budget (DESIGN.md)
	nomTotal := bramNom.Total() + rest
	vminBRAM := model.Power(bramNom, p.Cal.Vmin, 50)
	reduction := (nomTotal - (vminBRAM + rest)) / nomTotal
	if math.Abs(reduction-0.241) > 0.03 {
		t.Fatalf("total on-chip reduction at Vmin = %v, want ~0.241", reduction)
	}
}

func TestLayerFaultCounts(t *testing.T) {
	f := newFixture(t, 8)
	a, err := Build(f.board, f.quant, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := a.LayerFaultCounts(context.Background(), f.board.Platform.Cal.Vcrash)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 {
		t.Fatalf("layer counts = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no layer faults at Vcrash")
	}
	// Outer (larger) layers should typically catch more faults than the
	// one-block last layer.
	if counts[0] < counts[2] {
		t.Logf("note: layer0=%d layer2=%d (size-proportionality is statistical)",
			counts[0], counts[2])
	}
	if f.board.VCCBRAM() != 1.0 {
		t.Fatal("rail not restored")
	}
}

func TestBuildFailsWhenPoolTooSmall(t *testing.T) {
	p := platform.VC707().Scaled(8) // 17 blocks cannot fit
	b := board.New(p)
	f := newFixture(t, 1)
	if _, err := Build(b, f.quant, nil, 1); err == nil {
		t.Fatal("oversubscribed build should fail")
	}
}
