package bitstream

import (
	"fmt"
	"testing"

	"repro/internal/silicon"
	"repro/internal/xdc"
)

func sites(cols, rows int) []silicon.Site {
	var out []silicon.Site
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			out = append(out, silicon.Site{X: x, Y: y})
		}
	}
	return out
}

func design(n int) *Design {
	d := NewDesign("test")
	for i := 0; i < n; i++ {
		group := "bulk"
		if i >= n-2 {
			group = "layer4"
		}
		d.AddCell(fmt.Sprintf("nn/w%03d", i), group)
	}
	return d
}

func TestPlaceBasic(t *testing.T) {
	d := design(20)
	ss := sites(5, 10)
	bs, err := Place(d, ss, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Validate(ss, nil); err != nil {
		t.Fatal(err)
	}
	if len(bs.Placement.ByCell) != 20 {
		t.Fatalf("placed %d cells", len(bs.Placement.ByCell))
	}
}

func TestPlaceDeterministicPerSeed(t *testing.T) {
	d := design(20)
	ss := sites(5, 10)
	a, _ := Place(d, ss, nil, 42)
	b, _ := Place(d, ss, nil, 42)
	for _, c := range d.Cells {
		if a.Placement.ByCell[c.Name] != b.Placement.ByCell[c.Name] {
			t.Fatal("same seed produced different placements")
		}
	}
}

func TestDifferentSeedsDifferentPlacements(t *testing.T) {
	// The paper's recompilation experiment needs distinct placements.
	d := design(20)
	ss := sites(5, 10)
	a, _ := Place(d, ss, nil, 1)
	b, _ := Place(d, ss, nil, 2)
	same := 0
	for _, c := range d.Cells {
		if a.Placement.ByCell[c.Name] == b.Placement.ByCell[c.Name] {
			same++
		}
	}
	if same == len(d.Cells) {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestPlaceHonorsConstraints(t *testing.T) {
	d := design(20)
	ss := sites(5, 10)
	cs := xdc.NewConstraintSet()
	cs.Resize("icbp", xdc.Region{X1: 0, Y1: 0, X2: 0, Y2: 4})
	cs.AddCells("icbp", "nn/w018", "nn/w019")
	bs, err := Place(d, ss, cs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Validate(ss, cs); err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"nn/w018", "nn/w019"} {
		s := bs.Placement.ByCell[cell]
		if s.X != 0 || s.Y > 4 {
			t.Fatalf("constrained cell %s placed at %+v", cell, s)
		}
	}
}

func TestPlaceFailsWhenConstraintUnsatisfiable(t *testing.T) {
	d := design(4)
	ss := sites(2, 2)
	cs := xdc.NewConstraintSet()
	// One-site pblock, two cells: impossible.
	cs.Resize("tiny", xdc.Region{X1: 0, Y1: 0, X2: 0, Y2: 0})
	cs.AddCells("tiny", "nn/w000", "nn/w001")
	if _, err := Place(d, ss, cs, 1); err == nil {
		t.Fatal("unsatisfiable constraints should fail")
	}
}

func TestPlaceFailsWhenDeviceTooSmall(t *testing.T) {
	if _, err := Place(design(10), sites(3, 3), nil, 1); err == nil {
		t.Fatal("oversubscribed device should fail")
	}
}

func TestPlaceRejectsInvalidConstraints(t *testing.T) {
	cs := xdc.NewConstraintSet()
	cs.Create("empty")
	cs.AddCells("empty", "nn/w000")
	if _, err := Place(design(4), sites(3, 3), cs, 1); err == nil {
		t.Fatal("invalid constraint set should fail Place")
	}
}

func TestCellsInGroup(t *testing.T) {
	d := design(10)
	got := d.CellsInGroup("layer4")
	if len(got) != 2 || got[0] != "nn/w008" || got[1] != "nn/w009" {
		t.Fatalf("layer4 cells = %v", got)
	}
	if len(d.CellsInGroup("nope")) != 0 {
		t.Fatal("unknown group should be empty")
	}
}

func TestPlacementSites(t *testing.T) {
	d := design(5)
	ss := sites(3, 3)
	bs, _ := Place(d, ss, nil, 3)
	got, err := bs.Placement.Sites([]string{"nn/w000", "nn/w004"})
	if err != nil || len(got) != 2 {
		t.Fatalf("Sites: %v, %v", got, err)
	}
	if _, err := bs.Placement.Sites([]string{"missing"}); err == nil {
		t.Fatal("missing cell should error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := design(4)
	ss := sites(3, 3)
	bs, _ := Place(d, ss, nil, 1)
	// Corrupt: duplicate site.
	bs.Placement.ByCell["nn/w001"] = bs.Placement.ByCell["nn/w000"]
	if err := bs.Validate(ss, nil); err == nil {
		t.Fatal("duplicate site not caught")
	}
	// Corrupt: off-device site.
	bs2, _ := Place(d, ss, nil, 1)
	bs2.Placement.ByCell["nn/w001"] = silicon.Site{X: 99, Y: 99}
	if err := bs2.Validate(ss, nil); err == nil {
		t.Fatal("off-device site not caught")
	}
	// Corrupt: missing cell.
	bs3, _ := Place(d, ss, nil, 1)
	delete(bs3.Placement.ByCell, "nn/w002")
	if err := bs3.Validate(ss, nil); err == nil {
		t.Fatal("unplaced cell not caught")
	}
}
