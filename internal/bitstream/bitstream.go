// Package bitstream models the part of the FPGA compilation flow the paper
// interacts with: a design declares logical BRAM instances; the placer
// assigns each to a physical site, honoring any Pblock constraints; the
// result (a Bitstream) records the logical→physical map the way a Vivado
// checkpoint would.
//
// Two properties of the real flow matter to the paper's experiments and are
// reproduced here:
//
//   - Placement uncertainty: different compilation seeds place logical BRAMs
//     onto different physical sites. The paper recompiled its test design
//     several times and observed that undervolting faults track *physical*
//     sites, not logical names — the proof that the FVM is a property of the
//     chip. Seeded placement lets the experiments repeat that test.
//
//   - Constraint honoring: Pblocks force chosen cells onto chosen regions,
//     which is the entire mechanism of ICBP.
package bitstream

import (
	"fmt"
	"sort"

	"repro/internal/prng"
	"repro/internal/silicon"
	"repro/internal/xdc"
)

// Cell is one logical BRAM instance in a design.
type Cell struct {
	Name  string // hierarchical instance name, e.g. "nn/layer4/weights_0"
	Group string // optional grouping label, e.g. "layer4"
}

// Design is a netlist's BRAM usage.
type Design struct {
	Name  string
	Cells []Cell
}

// NewDesign returns a design with the given name.
func NewDesign(name string) *Design { return &Design{Name: name} }

// AddCell appends a logical BRAM.
func (d *Design) AddCell(name, group string) {
	d.Cells = append(d.Cells, Cell{Name: name, Group: group})
}

// CellsInGroup returns the names of cells in the given group, in order.
func (d *Design) CellsInGroup(group string) []string {
	var out []string
	for _, c := range d.Cells {
		if c.Group == group {
			out = append(out, c.Name)
		}
	}
	return out
}

// Placement maps logical cell names to physical sites.
type Placement struct {
	ByCell map[string]silicon.Site
}

// SiteOf returns the site of a cell.
func (p Placement) SiteOf(cell string) (silicon.Site, bool) {
	s, ok := p.ByCell[cell]
	return s, ok
}

// Sites returns the placed sites of the given cells, in cell order.
func (p Placement) Sites(cells []string) ([]silicon.Site, error) {
	out := make([]silicon.Site, len(cells))
	for i, c := range cells {
		s, ok := p.ByCell[c]
		if !ok {
			return nil, fmt.Errorf("bitstream: cell %q not placed", c)
		}
		out[i] = s
	}
	return out, nil
}

// Bitstream is a compiled design: the placement plus its provenance.
type Bitstream struct {
	Design    *Design
	Seed      uint64
	Placement Placement
}

// Place runs the placer: every cell gets a distinct physical site from
// sites; cells constrained by cs must land inside their pblock regions.
// Constrained cells are placed first (tightest first), then the rest fill
// the remaining sites in a seed-shuffled order — different seeds model
// different compilation runs.
func Place(d *Design, sites []silicon.Site, cs *xdc.ConstraintSet, seed uint64) (*Bitstream, error) {
	if cs != nil {
		if err := cs.Validate(); err != nil {
			return nil, err
		}
	}
	if len(d.Cells) > len(sites) {
		return nil, fmt.Errorf("bitstream: design %q needs %d BRAMs, device has %d",
			d.Name, len(d.Cells), len(sites))
	}
	used := make(map[silicon.Site]bool, len(d.Cells))
	assign := make(map[string]silicon.Site, len(d.Cells))
	src := prng.NewKeyed(fmt.Sprintf("place:%s:%d", d.Name, seed))

	// Partition cells into constrained and free.
	type job struct {
		cell    string
		allowed []silicon.Site
	}
	var constrained []job
	var free []string
	for _, c := range d.Cells {
		if cs != nil && cs.PblockOf(c.Name) != nil {
			constrained = append(constrained, job{cell: c.Name, allowed: cs.AllowedSites(c.Name, sites)})
		} else {
			free = append(free, c.Name)
		}
	}
	// Tightest constraints first so small pblocks are not starved.
	sort.SliceStable(constrained, func(i, j int) bool {
		return len(constrained[i].allowed) < len(constrained[j].allowed)
	})
	for _, j := range constrained {
		placed := false
		cands := append([]silicon.Site(nil), j.allowed...)
		src.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
		for _, s := range cands {
			if !used[s] {
				used[s] = true
				assign[j.cell] = s
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("bitstream: no free site satisfies constraints of %q", j.cell)
		}
	}
	// Free cells get the remaining sites in shuffled order.
	var remaining []silicon.Site
	for _, s := range sites {
		if !used[s] {
			remaining = append(remaining, s)
		}
	}
	src.Shuffle(len(remaining), func(a, b int) { remaining[a], remaining[b] = remaining[b], remaining[a] })
	for i, cell := range free {
		assign[cell] = remaining[i]
	}
	return &Bitstream{Design: d, Seed: seed, Placement: Placement{ByCell: assign}}, nil
}

// Validate checks a bitstream: all cells placed, all sites distinct, all
// constraints satisfied.
func (b *Bitstream) Validate(sites []silicon.Site, cs *xdc.ConstraintSet) error {
	valid := make(map[silicon.Site]bool, len(sites))
	for _, s := range sites {
		valid[s] = true
	}
	seen := make(map[silicon.Site]string, len(b.Placement.ByCell))
	for _, c := range b.Design.Cells {
		s, ok := b.Placement.ByCell[c.Name]
		if !ok {
			return fmt.Errorf("bitstream: cell %q unplaced", c.Name)
		}
		if !valid[s] {
			return fmt.Errorf("bitstream: cell %q on nonexistent site %+v", c.Name, s)
		}
		if prev, dup := seen[s]; dup {
			return fmt.Errorf("bitstream: cells %q and %q share site %+v", prev, c.Name, s)
		}
		seen[s] = c.Name
		if cs != nil {
			if p := cs.PblockOf(c.Name); p != nil && !p.Contains(s) {
				return fmt.Errorf("bitstream: cell %q placed at %+v outside pblock %q",
					c.Name, s, p.Name)
			}
		}
	}
	return nil
}
