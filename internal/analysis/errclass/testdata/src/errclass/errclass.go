// Package errclass is the errclass fixture: the PR 3 identity-comparison
// bug shape red, the errors.Is idiom and plain nil presence checks green.
package errclass

import (
	"context"
	"errors"
	"fmt"
	"io"
)

var errProbe = errors.New("probe failed")

func classifyEq(err error) bool {
	return err == context.Canceled // want "error compared with =="
}

func classifyNeq(err error) bool {
	return err != io.EOF // want "error compared with !="
}

func classifySwitch(err error) string {
	switch err { // want "switch on error value"
	case context.Canceled:
		return "cancelled"
	case context.DeadlineExceeded:
		return "deadline"
	}
	return "other"
}

// classifyIs is the blessed idiom: errors.Is sees through wrapping.
func classifyIs(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	}
	return "other"
}

// Nil comparisons test presence, not class: legal in both shapes.
func presence(err error) bool {
	return err != nil
}

func nilSwitch(err error) string {
	switch err {
	case nil:
		return "ok"
	}
	return "failed"
}

func wrap(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("probe: %w", err)
}

// suppressed shows the escape hatch: an explained allow pragma.
func suppressed(err error) bool {
	//lint:allow errclass fixture: sentinel is never wrapped in this package
	return err == errProbe
}
