// Package errclass forbids comparing errors by identity. The PR 3 bug this
// mechanizes: Job.finish classified cancellation with
// `err == context.Canceled`, so a DeadlineExceeded (or any *wrapped*
// cancellation, e.g. fmt.Errorf("%w", ctx.Err())) fell through and a
// cancelled campaign journaled as a generic failure. Wrapped errors make
// identity comparison silently wrong, so every sentinel classification must
// go through errors.Is. The analyzer reports:
//
//   - `err == sentinel` / `err != sentinel` where both sides are
//     error-typed (nil compares stay legal — they test presence, not class);
//   - `switch err { case sentinel: }` on an error-typed tag with non-nil
//     cases.
package errclass

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the errclass checker.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc: "forbid ==/!= and switch on error values (wrapped errors break identity); " +
		"classify with errors.Is/errors.As",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if analysis.IsUntypedNil(pass.Info, be.X) || analysis.IsUntypedNil(pass.Info, be.Y) {
		return
	}
	tx, ty := pass.Info.Types[be.X].Type, pass.Info.Types[be.Y].Type
	if !analysis.IsErrorType(tx) || !analysis.IsErrorType(ty) {
		return
	}
	pass.Reportf(be.Pos(),
		"error compared with %s: identity misses wrapped errors (the PR 3 cancellation bug); use errors.Is", be.Op)
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if !analysis.IsErrorType(pass.Info.Types[sw.Tag].Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !analysis.IsUntypedNil(pass.Info, e) {
				pass.Reportf(sw.Pos(),
					"switch on error value: case matching is identity and misses wrapped errors; use errors.Is chains")
				return
			}
		}
	}
}
