// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface this repo needs: typed AST
// analyzers, a go-list-driven package loader, and a diagnostic pipeline with
// line-scoped suppressions. It exists because the repo's correctness
// invariants — seeded PRNG only in model code, errors.Is for cancellation,
// paired Gate.Acquire/Release, tmp+fsync+rename writes in the store,
// constant-time token compares — were enforced only by review, and three of
// them have each been violated once (the PR 3 wrapped-context.Canceled bug,
// the PR 5 leaked-gate-unit-on-probe-error bug, PR 7's raw-FNV clustering).
// cmd/fpgavoltvet drives the analyzers in internal/analysis/* over ./... and
// CI gates on a clean run.
//
// The API mirrors go/analysis deliberately (Analyzer, Pass, Reportf), so the
// checkers port to the upstream driver mechanically if x/tools ever becomes
// a dependency. Only the standard library is used: packages are loaded via
// `go list -export` and type-checked from source against the toolchain's
// export data, which needs no network and no third-party module.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppressions.
	Name string
	// Doc is a one-paragraph description: what the analyzer enforces and
	// which historical bug motivated it.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed sources, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and object resolutions.
	Info *types.Info
	// Path is the import path analyzers should scope on. For test variants
	// it is the package under test (repro/internal/store, not
	// "repro/internal/store [repro/internal/store.test]"), so path-scoped
	// analyzers treat a package and its tests alike.
	Path string

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AllowPragma is the suppression marker: a comment of the form
// `//lint:allow <analyzer> <reason>` on the finding's line (or the line
// directly above it) drops that analyzer's diagnostics for that line. The
// reason is mandatory — an unexplained suppression is itself a finding.
const AllowPragma = "//lint:allow"

// suppression records one allow pragma: which analyzer it silences and the
// line it covers (pragma line and the line after both count).
type suppression struct {
	file     string
	line     int
	analyzer string
	hasWhy   bool
	pos      token.Pos
}

// collectSuppressions scans a package's comments for allow pragmas.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPragma) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPragma)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					hasWhy:   len(fields) > 1,
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics in file/line order. Suppressed findings are dropped; an allow
// pragma with no reason, or one that suppresses nothing, is reported as a
// finding itself so stale pragmas cannot accumulate.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		raw := make([]Diagnostic, 0, 8)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		sups := collectSuppressions(pkg.Fset, pkg.Files)
		used := make([]bool, len(sups))
		for _, d := range raw {
			suppressed := false
			for i, s := range sups {
				if s.analyzer != d.Analyzer || s.file != d.Pos.Filename {
					continue
				}
				if s.line == d.Pos.Line || s.line == d.Pos.Line-1 {
					if s.hasWhy {
						suppressed = true
						used[i] = true
					}
				}
			}
			if !suppressed {
				diags = append(diags, d)
			}
		}
		for i, s := range sups {
			switch {
			case !s.hasWhy:
				diags = append(diags, Diagnostic{
					Analyzer: "lintpragma",
					Pos:      pkg.Fset.Position(s.pos),
					Message:  fmt.Sprintf("allow pragma for %q needs a reason: //lint:allow %s <why>", s.analyzer, s.analyzer),
				})
			case !used[i] && !knownAnalyzer(analyzers, s.analyzer):
				diags = append(diags, Diagnostic{
					Analyzer: "lintpragma",
					Pos:      pkg.Fset.Position(s.pos),
					Message:  fmt.Sprintf("allow pragma names unknown analyzer %q", s.analyzer),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

func knownAnalyzer(analyzers []*Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// PathScoped reports whether base (a slash-separated import path) denotes
// one of the named packages: its last segment is in names, or it ends in
// "internal/<name>". Fixture packages under testdata match by their last
// segment, so analyzers behave identically on fixtures and the live tree.
func PathScoped(base string, names ...string) bool {
	last := base
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		last = base[i+1:]
	}
	for _, n := range names {
		if last == n || strings.HasSuffix(base, "internal/"+n) {
			return true
		}
	}
	return false
}

// Callee resolves the function or method object a call invokes, or nil.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel]
	}
	return nil
}

// IsPkgFunc reports whether obj is the package-level function pkgPath.name.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsErrorType reports whether t is the error interface (or a named interface
// type that is exactly error — what err-typed expressions resolve to).
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	it, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Identical(it, types.Universe.Lookup("error").Type().Underlying())
}

// IsUntypedNil reports whether the expression's type is the untyped nil.
func IsUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
