// Package secretcmp forbids timing-leaky comparisons of secret material.
// PR 7 put a bearer token on the API's mutating endpoints; `==` or
// bytes.Equal on the presented token returns at the first differing byte,
// so response timing leaks how much of a guess is right — the classic
// byte-at-a-time token recovery. The repo's blessed idiom is
// subtle.ConstantTimeCompare over both byte slices.
//
// The analyzer flags ==/!= on string or []byte operands, and
// bytes.Equal/strings.EqualFold calls, where either operand's name marks it
// as secret material (token, secret, passw*, credential, bearer, apikey).
// Presence checks against the empty string (`cfg.AuthToken == ""`) stay
// legal: they compare against a public constant, not a guess.
package secretcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the secretcmp checker.
var Analyzer = &analysis.Analyzer{
	Name: "secretcmp",
	Doc: "compare tokens/secrets with crypto/subtle.ConstantTimeCompare, not ==/bytes.Equal " +
		"(early-exit compares leak match length through timing)",
	Run: run,
}

var secretName = regexp.MustCompile(`(?i)(token|secret|passw|credential|bearer|apikey|api_key)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.CallExpr:
				checkEqualCall(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !comparableSecretType(pass, be.X) || !comparableSecretType(pass, be.Y) {
		return
	}
	if isEmptyStringLit(be.X) || isEmptyStringLit(be.Y) {
		return // presence check, not a guess comparison
	}
	if namesSecret(pass, be.X) || namesSecret(pass, be.Y) {
		pass.Reportf(be.Pos(),
			"secret compared with %s leaks the match length through timing; use subtle.ConstantTimeCompare", be.Op)
	}
}

func checkEqualCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.Callee(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || len(call.Args) < 2 {
		return
	}
	leaky := (obj.Pkg().Path() == "bytes" && obj.Name() == "Equal") ||
		(obj.Pkg().Path() == "strings" && obj.Name() == "EqualFold")
	if !leaky {
		return
	}
	if namesSecret(pass, call.Args[0]) || namesSecret(pass, call.Args[1]) {
		pass.Reportf(call.Pos(),
			"%s.%s on a secret exits at the first differing byte; use subtle.ConstantTimeCompare",
			obj.Pkg().Name(), obj.Name())
	}
}

// comparableSecretType limits the check to string and []byte shapes —
// the types secrets travel as.
func comparableSecretType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}

func isEmptyStringLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && (lit.Value == `""` || lit.Value == "``")
}

// namesSecret reports whether any identifier or field name inside the
// expression marks it as secret material. Literals never match: the names
// under scrutiny are the program's own bindings, not payload text.
func namesSecret(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && secretName.MatchString(id.Name) {
			found = true
		}
		return !found
	})
	return found
}
