// Package secretcmp is the secretcmp fixture: early-exit comparisons of
// secret-named values red, presence checks and ConstantTimeCompare green.
package secretcmp

import (
	"bytes"
	"crypto/subtle"
	"strings"
)

func eqLeak(presented, storedToken string) bool {
	return presented == storedToken // want "secret compared with =="
}

func neqLeak(apiKey, guess string) bool {
	return apiKey != guess // want "secret compared with !="
}

func bytesLeak(token, guess []byte) bool {
	return bytes.Equal(token, guess) // want "bytes.Equal on a secret"
}

func foldLeak(bearer, guess string) bool {
	return strings.EqualFold(bearer, guess) // want "strings.EqualFold on a secret"
}

// Presence checks against the empty string are legal: "" is public
// knowledge, so timing reveals nothing about the secret's bytes.
func configured(authToken string) bool {
	return authToken != ""
}

// constantTime is the blessed idiom.
func constantTime(token, presented []byte) bool {
	return subtle.ConstantTimeCompare(token, presented) == 1
}

// Non-secret names compare freely.
func plainCompare(name, other string) bool {
	return name == other
}

// suppressed shows the escape hatch: an explained allow pragma.
func suppressed(tokenID, other string) bool {
	//lint:allow secretcmp fixture: tokenID is a public identifier, not the secret
	return tokenID == other
}
