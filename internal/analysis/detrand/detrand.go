// Package detrand forbids nondeterminism in the repo's deterministic model
// packages. The paper's central experimental finding — and the property
// every differential test in this repo pins — is that undervolting faults
// are deterministic: the same die shows the same faulty bitcells at the same
// voltage, run after run. That only reproduces in simulation if all model
// randomness is a pure function of stable identifiers via internal/prng, so
// inside the model packages (silicon, bram, board, characterize, nn, fixed,
// cluster, prng, engine, ecc, dvfs) this analyzer reports:
//
//   - time.Now — wall-clock input makes results differ run to run;
//   - any use of the global math/rand or math/rand/v2 generators — their
//     state is shared and call-order dependent;
//   - iteration over a map with order-dependent effects (appending to an
//     outer slice without sorting it afterwards, or accumulating into an
//     outer float) — Go randomizes map iteration order per run.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// modelPackages are the deterministic-model package names the analyzer
// scopes to (matched by last import-path segment or internal/<name>).
var modelPackages = []string{
	"silicon", "bram", "board", "characterize", "nn", "fixed", "cluster", "prng",
	"engine", "ecc", "dvfs",
}

// Analyzer is the detrand checker.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock, global math/rand, and map-iteration-order-dependent " +
		"output in deterministic model packages; randomness must flow through internal/prng seeds",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathScoped(pass.Path, modelPackages...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectorExpr:
				checkGlobalRand(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.Callee(pass.Info, call)
	if analysis.IsPkgFunc(obj, "time", "Now") {
		pass.Reportf(call.Pos(),
			"time.Now in deterministic model package %s: results must not depend on the wall clock", pass.Pkg.Name())
	}
}

// checkGlobalRand reports any reference to math/rand or math/rand/v2
// package-level functions or variables: both route through shared global
// state whose output depends on everything else the process drew.
func checkGlobalRand(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		pass.Reportf(sel.Pos(),
			"%s.%s in deterministic model package %s: derive randomness from internal/prng seeds, not math/rand",
			obj.Pkg().Name(), obj.Name(), pass.Pkg.Name())
	}
}

// checkMapRanges walks one function body looking for range-over-map loops
// whose effects depend on iteration order. It tracks the statements after
// each loop so the blessed collect-keys-then-sort idiom stays green.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	sorts := collectSortCalls(pass, body)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != body {
				return true // function literals share the enclosing body's sort set
			}
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.Types[rs.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkOneMapRange(pass, rs, sorts)
			return true
		})
	}
	walk(body)
}

// sortCall is one "sort this slice" call site: sort.Strings(keys),
// sort.Slice(keys, ...), slices.Sort(keys), slices.SortFunc(keys, ...).
type sortCall struct {
	obj types.Object // the slice being sorted
	pos token.Pos
}

func collectSortCalls(pass *analysis.Pass, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		obj := analysis.Callee(pass.Info, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if root := rootObj(pass.Info, call.Args[0]); root != nil {
			out = append(out, sortCall{obj: root, pos: call.Pos()})
		}
		return true
	})
	return out
}

func checkOneMapRange(pass *analysis.Pass, rs *ast.RangeStmt, sorts []sortCall) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			checkAppend(pass, rs, as, sorts)
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			checkFloatAccum(pass, rs, as)
		}
		return true
	})
}

// checkAppend flags `outer = append(outer, ...)` inside a map range unless
// the same slice is sorted later in the function — collecting keys (or
// values) and sorting them is the blessed deterministic idiom.
func checkAppend(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, sorts []sortCall) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" || pass.Info.Uses[fn] != types.Universe.Lookup("append") {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		target := rootObj(pass.Info, as.Lhs[i])
		if target == nil || declaredWithin(target, rs) {
			continue
		}
		for _, s := range sorts {
			if s.obj == target && s.pos > rs.End() {
				return // collected then sorted: deterministic
			}
		}
		pass.Reportf(as.Pos(),
			"append to %s inside map iteration: element order follows Go's randomized map order; sort %s after the loop or iterate a sorted key slice",
			target.Name(), target.Name())
	}
}

// checkFloatAccum flags `outer += f(v)` on float accumulators inside a map
// range: float addition is not associative, so the sum's low bits depend on
// visit order.
func checkFloatAccum(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 {
		return
	}
	target := rootObj(pass.Info, as.Lhs[0])
	if target == nil || declaredWithin(target, rs) {
		return
	}
	t := pass.Info.Types[as.Lhs[0]].Type
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return
	}
	pass.Reportf(as.Pos(),
		"float accumulation into %s inside map iteration: float addition is order-dependent under Go's randomized map order; iterate sorted keys",
		target.Name())
}

// rootObj resolves the base identifier of an lvalue-ish expression
// (x, x.f, x[i] all resolve to x's object).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node's span
// (loop-local variables are order-dependent by construction and fine).
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}
