package detrand

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src/silicon", Analyzer)
}

func TestOutOfScopePackagesAreIgnored(t *testing.T) {
	analysistest.Run(t, "testdata/src/notmodel", Analyzer)
}
