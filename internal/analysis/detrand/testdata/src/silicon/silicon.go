// Package silicon is the detrand fixture: it is named like a model package
// so the analyzer scopes to it. Red cases reproduce the nondeterminism
// shapes the analyzer exists to stop; green cases are the blessed idioms.
package silicon

import (
	"math/rand"
	"sort"
	"time"
)

func wallClockSeed() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic model package silicon"
}

func globalRandDraw() int {
	return rand.Intn(64) // want "rand.Intn in deterministic model package silicon"
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

func orderDependentSum(m map[uint32]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation into sum inside map iteration"
	}
	return sum
}

// sortedKeys is the blessed idiom: collect, then sort after the loop.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// loopLocal appends to a slice declared inside the loop body: its order
// never escapes an iteration, so it cannot make output order-dependent.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// intSum accumulates an integer: integer addition is associative, so visit
// order cannot change the result.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// suppressedClock shows the escape hatch: an explained allow pragma.
func suppressedClock() time.Time {
	//lint:allow detrand fixture: boot stamp is display-only, never feeds the model
	return time.Now()
}
