// Package notmodel is outside the deterministic-model scope, so detrand
// must stay completely silent here even on shapes it would flag elsewhere.
package notmodel

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now()
}

func jitter() int {
	return rand.Intn(10)
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
