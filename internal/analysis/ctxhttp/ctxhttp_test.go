package ctxhttp

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src/fed", Analyzer)
}
