// Package fed is the ctxhttp fixture: context-free request construction
// red, http.NewRequestWithContext + Do (and suppressed lines) green.
package fed

import (
	"context"
	"net/http"
	"net/url"
	"strings"
)

func bareRequest(u string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, u, nil) // want "http.NewRequest builds a request no deadline or shutdown can cancel"
}

func packageSugar(u string) {
	http.Get(u)                                               // want "http.Get bakes in context.Background"
	http.Post(u, "application/json", strings.NewReader("{}")) // want "http.Post bakes in context.Background"
	http.PostForm(u, url.Values{})                            // want "http.PostForm bakes in context.Background"
	http.Head(u)                                              // want "http.Head bakes in context.Background"
}

func clientSugar(cl *http.Client, u string) {
	cl.Get(u)  // want "(*http.Client).Get bakes in context.Background"
	cl.Head(u) // want "(*http.Client).Head bakes in context.Background"
}

// blessed is the enforced discipline: the request carries a caller context,
// and Do honors it.
func blessed(ctx context.Context, cl *http.Client, u string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	return cl.Do(req)
}

// scratch shows the escape hatch: an explained allow pragma.
func scratch(u string) {
	//lint:allow ctxhttp fixture: fire-and-forget beacon, deliberately unbounded
	http.Get(u)
}
