package fed

import "net/http"

// Tests are exempt: they talk to local httptest listeners that cannot hang,
// and the convenience calls keep them readable. No want comment here proves
// the _test.go skip works.
func hitLocalFixture(u string) {
	http.Get(u)
}
