// Package ctxhttp enforces context plumbing on outbound HTTP. The
// federation's resilience story — per-call deadlines on every coordinator →
// daemon request, cancellation that actually severs a stuck stream — only
// holds if every request is built with http.NewRequestWithContext. A bare
// http.NewRequest (or the package-level http.Get / client.Get sugar, which
// bake in context.Background) produces a request no deadline or shutdown can
// reach: the call pins its goroutine until the kernel gives up. So inside
// internal/fed and internal/server (tests excluded — they talk to local
// httptest listeners that cannot hang) this analyzer reports:
//
//   - http.NewRequest anywhere (use http.NewRequestWithContext);
//   - the context-free request sugar: package-level http.Get / Post /
//     PostForm / Head, and the same methods on *http.Client.
//
// (*http.Client).Do stays legal: it carries whatever context the request
// was built with, which is exactly the discipline being enforced.
package ctxhttp

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxhttp checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxhttp",
	Doc: "inside internal/fed and internal/server, outbound requests must be built with " +
		"http.NewRequestWithContext — never http.NewRequest or the Get/Post sugar, which no deadline can cancel",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathScoped(pass.Path, "fed", "server") {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests hit local httptest listeners that cannot hang
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

// requestSugar is the context-free convenience surface, shared by the
// package-level functions and the *http.Client methods.
var requestSugar = map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.Callee(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil {
		// Only *http.Client's request sugar is banned; Do carries the
		// request's own context.
		if !strings.HasSuffix(recv.Type().String(), "net/http.Client") {
			return
		}
		if requestSugar[fn.Name()] {
			pass.Reportf(call.Pos(),
				"(*http.Client).%s bakes in context.Background — build the request with http.NewRequestWithContext and use Do", fn.Name())
		}
		return
	}
	switch {
	case fn.Name() == "NewRequest":
		pass.Reportf(call.Pos(),
			"http.NewRequest builds a request no deadline or shutdown can cancel; use http.NewRequestWithContext")
	case requestSugar[fn.Name()]:
		pass.Reportf(call.Pos(),
			"http.%s bakes in context.Background — build the request with http.NewRequestWithContext and use (*http.Client).Do", fn.Name())
	}
}
