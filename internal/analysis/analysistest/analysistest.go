// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against `// want "substring"` comments in the fixture
// sources — the same contract as golang.org/x/tools/go/analysis/analysistest,
// reimplemented on the stdlib loader. A fixture line may carry several
// expectations (`// want "a" "b"`); every expectation must be matched by a
// diagnostic on its line, and every diagnostic must be expected — so
// fixtures prove both the red case (the historical bug shape fires) and the
// green case (the blessed idiom, and suppressed lines, stay silent).
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` entry: a substring that must appear in a
// diagnostic on this file:line.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// Run loads the fixture package at dir (a path relative to the test's
// working directory, e.g. "testdata/src/probe") and asserts the analyzer's
// diagnostics exactly match the fixture's want comments. Suppression
// pragmas in the fixture are honored, so a `//lint:allow` line with no want
// comment proves the pragma works.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: true}, "./"+strings.TrimPrefix(dir, "./"))
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(pkg)...)
	}
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
}

func collectWants(pkg *analysis.Package) []*expectation {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quoteRE.FindAllStringSubmatch(m[1], -1) {
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, substr: unescape(q[1])})
				}
			}
		}
	}
	return out
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// NoFindings asserts the analyzer is silent over the given packages of the
// real tree — the green half of an invariant that has no in-tree red case.
func NoFindings(t *testing.T, a *analysis.Analyzer, dir string, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir, Tests: true}, patterns...)
	if err != nil {
		t.Fatalf("load %v: %v", patterns, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
