package suite

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// TestTreeIsClean is the acceptance gate behind `make lint`: every analyzer
// over every package in the repo, test files included, must report nothing.
// Fixture packages under testdata are excluded by ./... just as they are for
// builds, so deliberate violations in fixtures cannot trip it.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree; skipped in -short")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: root, Tests: true}, "./...")
	if err != nil {
		t.Fatalf("load ./... from %s: %v", root, err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := analysis.Run(Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on supposedly clean tree: %s", d)
	}
}

func TestSelect(t *testing.T) {
	if got, ok := Select(nil); !ok || len(got) != len(Analyzers()) {
		t.Fatalf("Select(nil) = %d analyzers, ok=%v", len(got), ok)
	}
	got, ok := Select([]string{"gatepair", "errclass"})
	if !ok || len(got) != 2 || got[0].Name != "gatepair" || got[1].Name != "errclass" {
		t.Fatalf("Select(gatepair,errclass) = %v, ok=%v", got, ok)
	}
	if _, ok := Select([]string{"nosuchcheck"}); ok {
		t.Fatal("Select accepted an unknown analyzer name")
	}
}
