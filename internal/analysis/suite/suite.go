// Package suite assembles the repo's analyzer set — the single source of
// truth shared by cmd/fpgavoltvet and the clean-tree test, so the binary CI
// runs and the test gate can never drift apart.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicfs"
	"repro/internal/analysis/ctxhttp"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/errclass"
	"repro/internal/analysis/gatepair"
	"repro/internal/analysis/secretcmp"
)

// Analyzers returns every invariant checker, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfs.Analyzer,
		ctxhttp.Analyzer,
		detrand.Analyzer,
		errclass.Analyzer,
		gatepair.Analyzer,
		secretcmp.Analyzer,
	}
}

// Select returns the analyzers whose names are listed (nil names = all).
func Select(names []string) ([]*analysis.Analyzer, bool) {
	all := Analyzers()
	if len(names) == 0 {
		return all, true
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}
