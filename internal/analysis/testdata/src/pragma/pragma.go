// Package pragma is the lintpragma fixture: a reasonless allow pragma and
// one naming an unknown analyzer must each surface as a finding, and a
// reasonless pragma must not suppress the diagnostic under it.
package pragma

import "errors"

var errProbe = errors.New("probe")

func reasonless(err error) bool {
	//lint:allow errclass
	return err == errProbe
}

func unknownAnalyzer(err error) bool {
	//lint:allow nosuchcheck the checker this silences does not exist
	return !errors.Is(err, errProbe)
}
