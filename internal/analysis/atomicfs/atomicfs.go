// Package atomicfs enforces the store's write discipline. internal/store's
// crash-safety story rests on exactly two durable-write shapes: atomicWrite
// (temp file + fsync + rename, so readers observe the old blob or the new
// one, never a torn write) and O_APPEND log handles (the event-log tail,
// where a torn final line is detected and healed at open). A direct
// os.WriteFile or os.Create landing at a final path silently reintroduces
// torn-write windows that only a power cut exposes, so inside
// internal/store (tests excluded — they corrupt files on purpose) this
// analyzer reports:
//
//   - os.WriteFile and os.Create anywhere;
//   - os.OpenFile whose flags do not include os.O_APPEND.
//
// os.CreateTemp stays legal: writing a temp name then renaming is
// atomicWrite's own mechanism.
package atomicfs

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomicfs checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfs",
	Doc: "inside internal/store, durable writes must go through atomicWrite (tmp+fsync+rename) " +
		"or O_APPEND log handles — never os.WriteFile/os.Create at a final path",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathScoped(pass.Path, "store") {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests inject corruption deliberately
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.Callee(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return
	}
	switch obj.Name() {
	case "WriteFile":
		pass.Reportf(call.Pos(),
			"os.WriteFile lands bytes at the final path non-atomically (a crash mid-write leaves a torn file); use atomicWrite")
	case "Create":
		pass.Reportf(call.Pos(),
			"os.Create truncates the final path in place (readers can observe the empty window); use atomicWrite or an O_APPEND handle")
	case "OpenFile":
		if len(call.Args) >= 2 && !mentionsAppend(call.Args[1]) {
			pass.Reportf(call.Pos(),
				"os.OpenFile without O_APPEND in internal/store: non-append writes must go through atomicWrite")
		}
	}
}

// mentionsAppend reports whether the flag expression references O_APPEND
// anywhere (os.O_APPEND|os.O_CREATE|... shapes included).
func mentionsAppend(flag ast.Expr) bool {
	found := false
	ast.Inspect(flag, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "O_APPEND" {
			found = true
		}
		return !found
	})
	return found
}
