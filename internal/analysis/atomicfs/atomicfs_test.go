package atomicfs

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src/store", Analyzer)
}
