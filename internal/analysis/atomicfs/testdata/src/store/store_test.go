package store

import "os"

// Test helpers corrupt files in place on purpose — that is how the store's
// recovery paths get exercised — so atomicfs must skip _test.go files.
func corruptInPlace(path string) error {
	return os.WriteFile(path, []byte("torn"), 0o644)
}
