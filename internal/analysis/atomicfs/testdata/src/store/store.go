// Package store is the atomicfs fixture: direct final-path writes red, the
// atomicWrite (tmp+fsync+rename) and O_APPEND log-handle shapes green.
package store

import (
	"os"
	"path/filepath"
)

func torn(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want "os.WriteFile lands bytes at the final path non-atomically"
}

func truncates(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create truncates the final path in place"
}

func randomAccess(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // want "os.OpenFile without O_APPEND"
}

// appendLog is the event-log shape: append-only handles are crash-safe
// because a torn final line is detected and healed at open.
func appendLog(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// atomicWrite is the other blessed shape: temp file, fsync, rename.
func atomicWrite(path string, b []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// scratch shows the escape hatch: an explained allow pragma.
func scratch(path string, b []byte) error {
	//lint:allow atomicfs fixture: scratch file outside the store's durability contract
	return os.WriteFile(path, b, 0o644)
}
