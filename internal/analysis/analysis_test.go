package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// TestPragmaHygiene pins the suppression contract on the pragma fixture:
// a reasonless pragma suppresses nothing and is itself a finding, and a
// pragma naming an unknown analyzer is a finding.
func TestPragmaHygiene(t *testing.T) {
	pkgs, err := analysis.Load(analysis.LoadConfig{}, "./testdata/src/pragma")
	if err != nil {
		t.Fatalf("load pragma fixture: %v", err)
	}
	diags, err := analysis.Run(suite.Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	want := []struct{ analyzer, substr string }{
		{"errclass", "error compared with =="}, // reasonless pragma must NOT suppress
		{"lintpragma", `allow pragma for "errclass" needs a reason`},
		{"lintpragma", `allow pragma names unknown analyzer "nosuchcheck"`},
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic containing %q in %v", w.analyzer, w.substr, diags)
		}
	}
	if len(diags) != len(want) {
		t.Errorf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
}

func TestPathScoped(t *testing.T) {
	cases := []struct {
		base string
		want bool
	}{
		{"repro/internal/store", true},
		{"repro/internal/store/substore", false},
		{"repro/internal/analysis/atomicfs/testdata/src/store", true},
		{"store", true},
		{"repro/internal/server", false},
	}
	for _, c := range cases {
		if got := analysis.PathScoped(c.base, "store"); got != c.want {
			t.Errorf("PathScoped(%q, store) = %v, want %v", c.base, got, c.want)
		}
	}
}
