// Package gatepair proves every sem.Gate unit acquired in a function is
// released on every path out of it. The PR 5 bug this mechanizes:
// DiscoverBRAMThresholdsGated held a read-budget unit across a level probe
// and returned early on the probe's error path without Release, so one
// faulted board permanently shrank the fleet-wide read budget — a leak no
// test noticed until the budget ran dry.
//
// The analyzer walks each function's statement structure (an abstract
// control-flow interpretation over the AST) tracking, per gate expression,
// whether an acquired unit is still unprotected. Protection is:
//
//   - a Release on the same gate expression on that path;
//   - a `defer gate.Release(n)` (function-scoped, covers all later paths);
//   - handing the unit to a function literal that releases it (the
//     release-func idiom: `return func() { g.Release(1) }, nil`).
//
// The error-check guards around Acquire/TryAcquire are understood, so
// `if err := g.Acquire(ctx, 1); err != nil { return err }` does not flag the
// failure return. A return (or fall-through) while a unit is unprotected is
// a finding.
//
// repro/internal/sem itself is exempt: the semaphore's own tests acquire and
// leak deliberately to probe the gate's accounting.
package gatepair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the gatepair checker.
var Analyzer = &analysis.Analyzer{
	Name: "gatepair",
	Doc: "a sem.Gate.Acquire/TryAcquire unit must be Released (or defer-Released, or handed " +
		"to a release closure) on every path out of the function — the PR 5 leaked-unit bug class",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Path == "repro/internal/sem" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// gateMethod classifies a call as one of sem.Gate's pairing-relevant
// methods, returning the gate's receiver expression rendered as a stable
// key ("o.Gate", "f.gate", ...).
func gateMethod(pass *analysis.Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := analysis.Callee(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || !analysis.PathScoped(obj.Pkg().Path(), "sem") {
		return "", "", false
	}
	switch obj.Name() {
	case "Acquire", "TryAcquire", "Release":
		return types.ExprString(sel.X), obj.Name(), true
	}
	return "", "", false
}

// acquireInfo remembers the most recent un-consumed acquire so the guard
// `if err != nil { ... }` / `if !ok { ... }` that follows it can be
// classified as the failure path.
type acquireInfo struct {
	key   string
	guard types.Object // the err (Acquire) or ok (TryAcquire) variable; nil if unassigned
	try   bool
}

// state is the abstract machine state: per gate key, whether an acquired
// unit is currently unprotected on this path.
type state struct {
	liab map[string]bool
	acq  *acquireInfo
}

func (s state) clone() state {
	m := make(map[string]bool, len(s.liab))
	for k, v := range s.liab {
		m[k] = v
	}
	return state{liab: m, acq: s.acq}
}

func (s state) set(key string, v bool) state {
	c := s.clone()
	c.liab[key] = v
	return c
}

// merge ORs liabilities across branches that can both reach the join point.
func merge(a, b state) state {
	c := a.clone()
	for k, v := range b.liab {
		c.liab[k] = c.liab[k] || v
	}
	c.acq = nil
	return c
}

type checker struct {
	pass *analysis.Pass
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass}
	st, terminated := c.walkStmts(body.List, state{liab: map[string]bool{}})
	if terminated {
		return
	}
	for key, liab := range st.liab {
		if liab {
			c.pass.Reportf(body.End()-1,
				"unit acquired on %s can fall off the end of the function without Release", key)
		}
	}
}

func (c *checker) walkStmts(stmts []ast.Stmt, st state) (state, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = c.walkStmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (c *checker) walkStmt(s ast.Stmt, st state) (state, bool) {
	// A function literal that releases a gate takes over the obligation
	// (the release-func idiom); clear its liability wherever the literal
	// is created.
	st = c.clearClosureReleases(s, st)

	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isNoReturnCall(c.pass, call) {
			return st, true
		}
		return c.scanCalls(s, st), false
	case *ast.AssignStmt:
		return c.walkAssign(s, st), false
	case *ast.DeclStmt:
		return c.scanCalls(s, st), false
	case *ast.DeferStmt:
		if key, method, ok := gateMethod(c.pass, s.Call); ok && method == "Release" {
			return st.set(key, false), false
		}
		return st, false
	case *ast.ReturnStmt:
		st = c.clearClosureReleases(s, st) // return func(){g.Release(1)}, nil
		for key, liab := range st.liab {
			if liab {
				c.pass.Reportf(s.Pos(),
					"unit acquired on %s escapes without Release on this return path (PR 5 bug class); Release or defer Release before returning", key)
			}
		}
		return st, true
	case *ast.BranchStmt:
		return st, true // break/continue/goto: end this path conservatively
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.IfStmt:
		return c.walkIf(s, st)
	case *ast.ForStmt:
		bodySt := st
		if s.Init != nil {
			bodySt, _ = c.walkStmt(s.Init, bodySt)
		}
		after, _ := c.walkStmts(s.Body.List, bodySt)
		return merge(st, after), false
	case *ast.RangeStmt:
		after, _ := c.walkStmts(s.Body.List, st)
		return merge(st, after), false
	case *ast.SwitchStmt:
		return c.walkClauses(s.Init, s.Body.List, st)
	case *ast.TypeSwitchStmt:
		return c.walkClauses(s.Init, s.Body.List, st)
	case *ast.SelectStmt:
		return c.walkClauses(nil, s.Body.List, st)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	case *ast.GoStmt:
		return st, false // closures were scanned above; a leak inside is its own unit
	default:
		return st, false
	}
}

// walkAssign processes `err := g.Acquire(ctx, n)` / `ok := g.TryAcquire(n)`
// (recording the guard variable) and any other gate calls in the statement.
func (c *checker) walkAssign(as *ast.AssignStmt, st state) state {
	if len(as.Rhs) == 1 && len(as.Lhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if key, method, ok := gateMethod(c.pass, call); ok && method != "Release" {
				st = st.set(key, true)
				var guard types.Object
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					if def := c.pass.Info.Defs[id]; def != nil {
						guard = def
					} else {
						guard = c.pass.Info.Uses[id]
					}
				}
				c2 := st.clone()
				c2.acq = &acquireInfo{key: key, guard: guard, try: method == "TryAcquire"}
				return c2
			}
		}
	}
	return c.scanCalls(as, st)
}

// scanCalls applies gate calls appearing anywhere in a statement (outside
// function literals): Release clears liability, Acquire/TryAcquire set it.
func (c *checker) scanCalls(n ast.Node, st state) state {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := gateMethod(c.pass, call)
		if !ok {
			return true
		}
		switch method {
		case "Release":
			st.liab[key] = false
		case "Acquire", "TryAcquire":
			st.liab[key] = true
			st.acq = &acquireInfo{key: key, try: method == "TryAcquire"}
		}
		return true
	})
	return st
}

// walkIf handles the guard patterns around acquisition so failure paths are
// not charged with a unit that was never granted.
func (c *checker) walkIf(s *ast.IfStmt, st state) (state, bool) {
	if s.Init != nil {
		st, _ = c.walkStmt(s.Init, st)
	}
	bodySt, afterSt := st, st
	if key, failureBody, ok := c.guardPolarity(s.Cond, st.acq); ok {
		if failureBody {
			bodySt = st.set(key, false) // body runs only when the acquire failed
			afterSt = st.set(key, true)
		} else {
			bodySt = st.set(key, true)
			afterSt = st.set(key, false)
		}
	}
	stB, termB := c.walkStmts(s.Body.List, bodySt)
	stE, termE := afterSt, false
	if s.Else != nil {
		stE, termE = c.walkStmt(s.Else, afterSt)
	}
	switch {
	case termB && termE:
		return st, true
	case termB:
		return stE, false
	case termE:
		return stB, false
	default:
		return merge(stB, stE), false
	}
}

// guardPolarity classifies an if-condition as the success/failure check of
// the pending acquire (or of a TryAcquire called directly in the
// condition). failureBody reports whether the if-body is the failure path.
func (c *checker) guardPolarity(cond ast.Expr, acq *acquireInfo) (key string, failureBody, ok bool) {
	cond = ast.Unparen(cond)
	// if !g.TryAcquire(n) { ... }   /   if g.TryAcquire(n) { ... }
	neg := false
	if ue, isNot := cond.(*ast.UnaryExpr); isNot && ue.Op == token.NOT {
		neg = true
		cond = ast.Unparen(ue.X)
	}
	if call, isCall := cond.(*ast.CallExpr); isCall {
		if k, method, isGate := gateMethod(c.pass, call); isGate && method == "TryAcquire" {
			return k, neg, true
		}
	}
	if acq == nil || acq.guard == nil {
		return "", false, false
	}
	if acq.try {
		// if !ok { ... } / if ok { ... }
		if id, isIdent := cond.(*ast.Ident); isIdent && c.pass.Info.Uses[id] == acq.guard {
			return acq.key, neg, true
		}
		return "", false, false
	}
	// if err != nil { ... } / if err == nil { ... }
	be, isBin := cond.(*ast.BinaryExpr)
	if !isBin || (be.Op != token.NEQ && be.Op != token.EQL) {
		return "", false, false
	}
	var idSide ast.Expr
	switch {
	case analysis.IsUntypedNil(c.pass.Info, be.Y):
		idSide = be.X
	case analysis.IsUntypedNil(c.pass.Info, be.X):
		idSide = be.Y
	default:
		return "", false, false
	}
	id, isIdent := ast.Unparen(idSide).(*ast.Ident)
	if !isIdent || c.pass.Info.Uses[id] != acq.guard {
		return "", false, false
	}
	return acq.key, be.Op == token.NEQ, true
}

// walkClauses handles switch/type-switch/select bodies: every clause starts
// from the same entry state; the join is the OR over clauses that can fall
// out. The statement terminates only if every clause terminates and one of
// them is the default (or it is a select, which always takes a clause).
func (c *checker) walkClauses(init ast.Stmt, clauses []ast.Stmt, st state) (state, bool) {
	if init != nil {
		st, _ = c.walkStmt(init, st)
	}
	out := st
	allTerminate := len(clauses) > 0
	hasDefault := false
	isSelect := false
	for _, cl := range clauses {
		var body []ast.Stmt
		entry := st
		switch cl := cl.(type) {
		case *ast.CaseClause:
			body = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			isSelect = true
			body = cl.Body
			if comm := cl.Comm; comm != nil {
				entry, _ = c.walkStmt(comm, st)
			}
		}
		clSt, clTerm := c.walkStmts(body, entry)
		if clTerm {
			continue
		}
		allTerminate = false
		out = merge(out, clSt)
	}
	if allTerminate && (hasDefault || isSelect) {
		return st, true
	}
	return out, false
}

// clearClosureReleases clears liability for any gate released inside a
// function literal created by this statement: the closure now owns the
// unit (the acquireReadGate release-func idiom).
func (c *checker) clearClosureReleases(n ast.Node, st state) state {
	cleared := map[string]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, method, ok := gateMethod(c.pass, call); ok && method == "Release" {
				cleared[key] = true
			}
			return true
		})
		return false
	})
	if len(cleared) == 0 {
		return st
	}
	out := st.clone()
	for key := range cleared {
		out.liab[key] = false
	}
	return out
}

// isNoReturnCall recognizes calls that never return — panic, os.Exit,
// runtime.Goexit, log.Fatal*, and testing's Fatal/Fatalf/FailNow/Skip* —
// so paths ending in them are not charged with a leak.
func isNoReturnCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if pass.Info.Uses[id] == types.Universe.Lookup("panic") {
			return true
		}
	}
	obj := analysis.Callee(pass.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "os":
		return obj.Name() == "Exit"
	case "runtime":
		return obj.Name() == "Goexit"
	case "log":
		switch obj.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "testing":
		switch obj.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
