// Package gatepair is the gatepair fixture: the PR 5 leaked-unit shapes
// red, the defer/guard/release-func idioms green. It exercises the real
// repro/internal/sem.Gate so method resolution matches the live tree.
package gatepair

import (
	"context"

	"repro/internal/sem"
)

func probe() error { return nil }
func work()        {}

// leakOnProbeError is the PR 5 bug shape: a unit acquired for the probe
// escapes on the probe's error path.
func leakOnProbeError(ctx context.Context, g *sem.Gate) error {
	if err := g.Acquire(ctx, 1); err != nil {
		return err
	}
	if err := probe(); err != nil {
		return err // want "escapes without Release on this return path"
	}
	g.Release(1)
	return nil
}

// leakFallsOffEnd acquires and never releases on the success path.
func leakFallsOffEnd(g *sem.Gate) {
	if g.TryAcquire(1) {
		work()
	}
} // want "can fall off the end of the function without Release"

// deferRelease is the blessed idiom: the failure return is guarded, every
// later path is covered by the defer.
func deferRelease(ctx context.Context, g *sem.Gate) error {
	if err := g.Acquire(ctx, 1); err != nil {
		return err
	}
	defer g.Release(1)
	return probe()
}

// tryGuard pairs TryAcquire with its recorded ok guard.
func tryGuard(g *sem.Gate) bool {
	ok := g.TryAcquire(1)
	if !ok {
		return false
	}
	work()
	g.Release(1)
	return true
}

// inlineTry guards on the TryAcquire call itself.
func inlineTry(g *sem.Gate) {
	if !g.TryAcquire(1) {
		return
	}
	defer g.Release(1)
	work()
}

// releaseFunc hands the unit to a closure the caller must invoke — the
// accel read-gate idiom.
func releaseFunc(ctx context.Context, g *sem.Gate) (func(), error) {
	if err := g.Acquire(ctx, 1); err != nil {
		return nil, err
	}
	return func() { g.Release(1) }, nil
}

// goroutineHandsOff releases from a spawned goroutine: the closure owns the
// unit from the moment it is created.
func goroutineHandsOff(ctx context.Context, g *sem.Gate) error {
	if err := g.Acquire(ctx, 1); err != nil {
		return err
	}
	go func() {
		defer g.Release(1)
		work()
	}()
	return nil
}

// suppressed leaks deliberately (a sacrificial probe unit) and says why.
func suppressed(ctx context.Context, g *sem.Gate) error {
	if err := g.Acquire(ctx, 1); err != nil {
		return err
	}
	//lint:allow gatepair fixture: sacrificial probe unit, reclaimed by gate teardown
	return probe()
}
