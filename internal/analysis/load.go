package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked compilation unit.
type Package struct {
	// Path is the import path analyzers scope on: for test variants, the
	// package under test.
	Path string
	// ImportPath is the unit's exact go-list identity (test variants carry
	// the " [pkg.test]" suffix).
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// LoadConfig controls Load.
type LoadConfig struct {
	// Dir is the working directory for go list (defaults to the process
	// working directory). Patterns are resolved relative to it.
	Dir string
	// Tests includes each matched package's test variants: the package
	// recompiled with its in-package _test.go files, and the external
	// _test package if one exists.
	Tests bool
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load runs `go list -deps -export -json patterns...` and type-checks every
// matched package from source, resolving imports through the toolchain's
// export data. This is the offline equivalent of
// golang.org/x/tools/go/packages.Load(NeedTypes|NeedSyntax): no network, no
// modules beyond the standard library. Dependencies are *not* re-analyzed —
// only the packages the patterns name come back.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := []string{"list", "-deps", "-export", "-json"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := map[string]*listPkg{}
	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		order = append(order, &lp)
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range order {
		if !analyzable(lp, byPath) {
			continue
		}
		pkg, err := typecheck(fset, lp, byPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// analyzable picks the compilation units worth running analyzers on:
// packages the patterns matched directly, skipping generated test mains, and
// skipping the plain variant of a package whose in-package test variant is
// also loaded (the variant is a superset of its files — analyzing both would
// double-report every finding in the non-test sources).
func analyzable(lp *listPkg, byPath map[string]*listPkg) bool {
	if lp.DepOnly || lp.Standard {
		return false
	}
	if lp.Error != nil {
		return false
	}
	if strings.HasSuffix(lp.ImportPath, ".test") {
		return false // generated test main
	}
	if lp.ForTest == "" {
		variant := lp.ImportPath + " [" + lp.ImportPath + ".test]"
		if v, ok := byPath[variant]; ok && !v.DepOnly {
			return false // the test variant supersedes this unit
		}
	}
	return true
}

// basePath is the import path scoping should use: the package under test
// for test variants, the import path itself otherwise. External test
// packages ("pkg_test") keep their ForTest base too, so path-scoped
// analyzers cover them as part of the package they exercise.
func basePath(lp *listPkg) string {
	if lp.ForTest != "" {
		return lp.ForTest
	}
	return lp.ImportPath
}

// typecheck parses and type-checks one unit from source. Imports resolve via
// the importer below; any parse or type error is fatal — analyzers require a
// compiling tree, exactly like go vet.
func typecheck(fset *token.FileSet, lp *listPkg, byPath map[string]*listPkg) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: newExportImporter(fset, lp, byPath),
	}
	tpkg, err := conf.Check(basePath(lp), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:       basePath(lp),
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// newExportImporter resolves one unit's imports from the export data files
// `go list -export` reported, honoring the unit's ImportMap (which is how an
// external test package sees the in-package test variant of the package
// under test). A fresh importer per unit keeps the per-unit ImportMap from
// leaking between units through the gc importer's internal cache.
func newExportImporter(fset *token.FileSet, lp *listPkg, byPath map[string]*listPkg) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		resolved := path
		if m, ok := lp.ImportMap[path]; ok {
			resolved = m
		}
		dep, ok := byPath[resolved]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q (resolved %q) importing into %s", path, resolved, lp.ImportPath)
		}
		return os.Open(dep.Export)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
