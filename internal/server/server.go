// Package server exposes the fleet campaign engine and the durable FVM
// store as an HTTP JSON service — the daemon side of fpgavoltd.
//
// The API surface:
//
//	POST   /v1/campaigns        submit a campaign; returns the queued job
//	GET    /v1/jobs             list jobs (journal-backed: survives restarts)
//	GET    /v1/jobs/{id}        one job's status, aggregate, per-board rows
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events stream the job's event log over SSE
//	GET    /v1/events           firehose: every job's events, multiplexed
//	GET    /v1/fvms             list stored characterizations (?platform=&serial=)
//	GET    /v1/fvms/{id}        one stored record's full FVM as JSON
//	DELETE /v1/fvms/{id}        admin: drop one stored record
//	GET    /v1/vmin             per-board operating windows from stored sweeps
//	GET    /healthz             liveness + queue depth + journal health
//
// Campaigns run on a bounded worker pool fed by a bounded queue: a full
// queue answers 503 instead of buffering without limit. Every engine kind
// is accepted, including nn-inference: the quantized network and its test
// set ride the submission as versioned wire documents (nn.MarshalWire /
// nn.MarshalTestSet) under a raised body limit that applies to that kind
// only, and the job's detail carries each board's accuracy-vs-voltage
// curve. Every campaign's
// fleet shares the server's FVM cache and store, so characterization
// results persist across jobs and process restarts, and a re-submitted
// characterization campaign is served from disk instead of re-measuring
// (temperature, pattern, and threshold studies always measure — their
// products are not cached). Jobs themselves are durable too: every
// submission, event, and terminal result write-throughs into the store's
// job journal, which New replays into the table — so listings, event
// replay, and firehose cursors all survive restarts (jobs caught mid-run
// by a crash come back as failed with a restart marker). Shutdown stops
// intake, then drains: queued and running jobs finish unless the shutdown
// context expires first, at which point the engine's context plumbing
// cancels them promptly.
package server

import (
	"cmp"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
)

// Config tunes a server.
type Config struct {
	// Store backs every campaign's FVM cache and the query endpoints.
	// Required; use store.NewMem() for a non-durable service.
	Store store.Store
	// Workers bounds how many campaigns run concurrently (default 2).
	Workers int
	// QueueDepth bounds how many submitted campaigns may wait (default 16).
	QueueDepth int
	// FleetWorkers bounds per-campaign board concurrency (0 = engine auto).
	FleetWorkers int
	// CacheCapacity bounds the server's shared in-memory FVM cache.
	CacheCapacity int
	// MaxBoards caps a single campaign's fleet size (default 64).
	MaxBoards int
	// MaxJobHistory caps how many jobs the in-memory table retains;
	// beyond it the oldest terminal jobs (and their event logs) are
	// evicted so a long-lived daemon does not grow without bound
	// (default 256). Live jobs are never evicted. The same bound applies
	// to journal replay at boot.
	MaxJobHistory int
	// DisableJournal turns off the store-backed job journal. Jobs then
	// live only in memory (PR-2 semantics): a restart forgets them even
	// though their FVMs persist.
	DisableJournal bool
	// GCKeep, when > 0, bounds the FVM store to the newest GCKeep records
	// per (platform, serial). GC runs at startup and after every job
	// reaches a terminal state.
	GCKeep int
	// SSEKeepAlive is the idle interval between comment frames on SSE
	// streams (default 15s), so a stream waiting on a queued job is not
	// severed by proxies or idle timeouts.
	SSEKeepAlive time.Duration
	// FirehoseBuffer bounds the /v1/events in-memory replay window
	// (default 8192 events).
	FirehoseBuffer int
	// JobEventWindow bounds how many of a job's most recent events stay in
	// memory once durably journaled (default 2048; negative disables
	// trimming). Older sequences are paged back from the journal on
	// demand, so deep SSE resume works without the server holding every
	// event in RAM. Ignored when the journal is disabled — memory then
	// keeps the whole log.
	JobEventWindow int
	// JobRetain, when > 0, trims a terminal job's durable event log down to
	// (at least) its last JobRetain events — the Disk store drops whole
	// sealed segments, never the live tail — bounding journal growth at
	// federation scale. Deep SSE resume then replays only the retained
	// suffix. 0 keeps everything.
	JobRetain int
	// AuthToken, when non-empty, requires `Authorization: Bearer <token>`
	// on every mutating endpoint (campaign submission, job cancel, FVM
	// delete, GC). Reads and streams stay open. Empty leaves the whole API
	// open, matching pre-auth deployments.
	AuthToken string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBoards <= 0 {
		c.MaxBoards = 64
	}
	if c.MaxJobHistory <= 0 {
		c.MaxJobHistory = 256
	}
	if c.SSEKeepAlive <= 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	if c.JobEventWindow == 0 {
		c.JobEventWindow = 2048
	}
	return c
}

// Server is the campaign service: a job queue, its worker pool, and the
// HTTP handlers over both. Create with New, serve via Handler, stop with
// Shutdown.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	jobs *jobTable
	// cache is shared by every job's fleet, so concurrent campaigns
	// characterizing the same board collapse into one sweep (the engine's
	// per-key flights) and memory hits survive across jobs, not just
	// within one.
	cache *engine.FVMCache
	// fh is the /v1/events multiplexer; jn is the job journal (nil when
	// disabled).
	fh *firehose
	jn *journal

	baseCtx context.Context    // parent of every job context
	abort   context.CancelFunc // forced-shutdown switch

	intakeMu sync.Mutex // guards queue sends vs. close
	queue    chan *Job
	draining bool

	workers sync.WaitGroup
}

// New assembles a server, replays the job journal into its table, and
// starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	cache := engine.NewFVMCache(cfg.CacheCapacity)
	cache.SetBacking(cfg.Store)
	ctx, abort := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   cache,
		fh:      newFirehose(cfg.FirehoseBuffer),
		baseCtx: ctx,
		abort:   abort,
		queue:   make(chan *Job, cfg.QueueDepth),
	}
	if !cfg.DisableJournal {
		s.jn = newJournal(cfg.Store, cfg.JobRetain)
	}
	s.jobs = newJobTable(cfg.MaxJobHistory, func(jobs []*Job) { s.jn.drop(jobs...) })
	if s.jn != nil {
		if err := s.replayJournal(); err != nil {
			return nil, err
		}
	}
	s.runGC()
	s.routes()
	for w := 0; w < cfg.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// jobCompleted is every job's terminal hook: shrink the history table and
// re-bound the store.
func (s *Server) jobCompleted() {
	s.jobs.sweep()
	s.runGC()
}

// runGC bounds the store per Config.GCKeep and evicts what it removed from
// the in-memory cache level, so a collected record cannot be resurrected
// from RAM. GC failures are non-fatal — the store stays bigger than asked,
// which the next run retries.
func (s *Server) runGC() {
	if s.cfg.GCKeep <= 0 {
		return
	}
	removed, _ := s.cfg.Store.GC(s.cfg.GCKeep)
	for _, m := range removed {
		s.cache.Invalidate(engine.CacheKeyFromStore(m.Key))
	}
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/campaigns", s.requireAuth(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.requireAuth(s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/events", s.handleFirehose)
	s.mux.HandleFunc("GET /v1/fvms", s.handleFVMs)
	s.mux.HandleFunc("GET /v1/fvms/{id}", s.handleFVM)
	s.mux.HandleFunc("DELETE /v1/fvms/{id}", s.requireAuth(s.handleDeleteFVM))
	s.mux.HandleFunc("GET /v1/vmin", s.handleVmin)
	s.mux.HandleFunc("POST /v1/gc", s.requireAuth(s.handleGC))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// requireAuth enforces Config.AuthToken on mutating handlers. With no token
// configured it is a pass-through; with one, the request must present the
// exact token as `Authorization: Bearer <token>` — compared in constant
// time, so the check leaks nothing about the prefix it rejected on.
func (s *Server) requireAuth(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.AuthToken == "" {
		return h
	}
	want := []byte(s.cfg.AuthToken)
	return func(w http.ResponseWriter, r *http.Request) {
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(strings.TrimSpace(tok)), want) != 1 {
			writeError(w, &apiError{status: http.StatusUnauthorized,
				msg: "missing or invalid bearer token"})
			return
		}
		h(w, r)
	}
}

// handleGC re-bounds the FVM store to the newest ?keep= records per
// (platform, serial) — Config.GCKeep when the query is absent — and evicts
// what it removed from the in-memory cache level. The admin lever for
// reclaiming disk on demand instead of waiting for the next terminal job.
func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	keep := s.cfg.GCKeep
	if q := r.URL.Query().Get("keep"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeError(w, badRequestf("keep %q must be a positive integer", q))
			return
		}
		keep = n
	}
	if keep <= 0 {
		writeError(w, badRequestf("no retention bound: pass ?keep= or configure GCKeep"))
		return
	}
	removed, err := s.cfg.Store.GC(keep)
	if err != nil {
		writeError(w, fmt.Errorf("gc: %w", err))
		return
	}
	for _, m := range removed {
		s.cache.Invalidate(engine.CacheKeyFromStore(m.Key))
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": len(removed), "keep": keep})
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.queue {
		if !job.setRunning() {
			continue // cancelled while queued
		}
		s.runJob(job)
	}
}

// runJob executes one campaign. The fleet is constructed per job (each job
// may enroll a different inventory) but backed by the shared store, so
// characterization work is reused across jobs and restarts.
func (s *Server) runJob(job *Job) {
	defer job.cancel()
	fleet := engine.NewFleet(job.inventory, engine.Options{
		Workers: s.cfg.FleetWorkers,
		Cache:   s.cache,
	})
	events := make(chan engine.Event, 64)
	c := job.campaign
	c.Events = events
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			job.appendEngineEvent(ev)
		}
	}()
	res, err := fleet.RunCampaign(job.ctx, c)
	close(events)
	<-drained
	job.finish(res, err)
}

// Shutdown stops intake and waits for queued and running jobs to drain.
// When ctx expires first, every remaining job is cancelled through its
// context and Shutdown returns ctx.Err() once the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.intakeMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.intakeMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	// No queued-job sweep is needed here: once the queue is closed, the
	// workers drain every remaining queued job (running it, or skipping it
	// if already cancelled) before workers.Wait() returns, so every job
	// holds a terminal state by now.
	select {
	case <-done:
		// Drained clean. Cancel baseCtx anyway: every job is terminal, so
		// nothing is interrupted, and open SSE streams (the firehose has
		// no terminal event) are released instead of idling until their
		// clients hang up.
		s.abort()
		return nil
	case <-ctx.Done():
		s.abort() // cancels s.baseCtx, and with it every running campaign
		<-done
		return ctx.Err()
	}
}

// Submission body limits. Synthetic-sweep campaigns are small documents;
// only nn-inference submissions — whose network words and test set dominate
// — may use the larger cap (a paper-scale network plus MNIST's full test
// split ride in well under it).
const (
	maxSubmitBody   = 1 << 20
	maxNNSubmitBody = 48 << 20
)

// handleSubmit enqueues a campaign and answers 202 with the queued job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The kind-specific limit can only be enforced after the kind is known
	// (it lives in the body), so the body is read under the large cap and
	// re-checked once decoded: a non-NN campaign bigger than the small cap
	// is rejected with 413. The transient large read is the unavoidable
	// price of carrying the kind in the document itself.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxNNSubmitBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds the %d-byte submission limit", maxNNSubmitBody)})
			return
		}
		writeError(w, badRequestf("read request: %v", err))
		return
	}
	var req CampaignRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, badRequestf("decode request: %v", err))
		return
	}
	if len(raw) > maxSubmitBody && req.Kind != engine.NNInference.String() {
		writeError(w, &apiError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("%q submissions are limited to %d bytes; only nn-inference bodies may be larger",
				req.Kind, maxSubmitBody)})
		return
	}
	c, err := req.campaign()
	if err != nil {
		writeError(w, err)
		return
	}
	inv, err := req.inventory(s.cfg.MaxBoards)
	if err != nil {
		writeError(w, err)
		return
	}

	// The job is built outside intakeMu: creation can evict old history,
	// and eviction touches the journal on disk — I/O no submission (or
	// /healthz poll) should ever queue behind. intakeMu guards only what
	// it must: the draining check and the queue send racing close().
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := s.jobs.create(c, inv, ctx, cancel, s.fh, s.jn, s.cfg.JobEventWindow, s.jobCompleted)
	reject := func(msg string) {
		// The submission was refused: it must not linger in the listing as
		// a phantom cancelled job the client was told never existed.
		s.jobs.remove(job.id)
		cancel()
		writeError(w, &apiError{status: http.StatusServiceUnavailable, msg: msg})
	}
	s.intakeMu.Lock()
	if s.draining {
		s.intakeMu.Unlock()
		reject("server is shutting down")
		return
	}
	select {
	case s.queue <- job:
		s.intakeMu.Unlock()
	default:
		s.intakeMu.Unlock()
		reject(fmt.Sprintf("job queue full (%d pending)", s.cfg.QueueDepth))
		return
	}
	// Journaled from the moment it is queued: a crash before the first
	// event still replays this job (as failed-with-restart-marker).
	s.jn.putMeta(job)
	writeJSON(w, http.StatusAccepted, job.status(true))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
	}
	return job, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.lookupJob(w, r); ok {
		writeJSON(w, http.StatusOK, job.status(true))
	}
}

// handleCancel cancels a queued or running job. Cancelling a terminal job is
// a no-op that reports the final state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	job.markCancelled() // queued → cancelled immediately
	job.cancel()        // running → engine unwinds via ctx, worker calls finish
	writeJSON(w, http.StatusOK, job.status(true))
}

// sseRetryHint is the reconnect delay SSE streams advertise to clients.
const sseRetryHint = 2 * time.Second

// startSSE emits the stream headers, a retry hint, and an immediate flush,
// returning the flusher (or false when the writer cannot stream). The
// retry hint and the keepalive ticker the handlers run afterwards are what
// keep an idle stream alive across proxies: without them a stream attached
// to a job stuck behind a full queue writes nothing after the headers
// until the job starts, and an intermediary severs it long before that.
func startSSE(w http.ResponseWriter) (http.Flusher, bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &apiError{status: http.StatusInternalServerError, msg: "response writer cannot stream"})
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: %d\n\n", sseRetryHint.Milliseconds())
	flusher.Flush()
	return flusher, true
}

// sseKeepAlive writes one comment frame; proxies pass it through, clients
// ignore it, and both learn the connection is still alive.
func sseKeepAlive(w http.ResponseWriter, flusher http.Flusher) {
	fmt.Fprint(w, ": keepalive\n\n")
	flusher.Flush()
}

// handleEvents streams the job's event log as Server-Sent Events: history
// first, then live events, closing after the terminal "campaign" event. The
// Last-Event-ID header (or ?after=) resumes a dropped stream; comment
// keepalives flow while the job is idle (e.g. queued behind a full worker
// pool).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	// A malformed or negative resume cursor replays from the start rather
	// than reaching eventsSince with an index that would slice negatively.
	next := 0
	if after := cmp.Or(r.Header.Get("Last-Event-ID"), r.URL.Query().Get("after")); after != "" {
		if n, err := strconv.Atoi(after); err == nil && n >= 0 {
			next = n + 1
		}
	}
	flusher, ok := startSSE(w)
	if !ok {
		return
	}
	keepalive := time.NewTicker(s.cfg.SSEKeepAlive)
	defer keepalive.Stop()

	for {
		evs, terminal, changed := job.eventsSince(next)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			next = ev.Seq + 1
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			// Everything up to and including the terminal event is out.
			if evs, _, _ := job.eventsSince(next); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-keepalive.C:
			sseKeepAlive(w, flusher)
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// firehosePageSize bounds how many journaled events one deep-resume page
// pulls back into memory; the handler loops page after page until the
// cursor reaches the live window.
const firehosePageSize = 512

// handleFirehose streams every job's events, multiplexed in global-sequence
// order and tagged with job ids — the fleet dashboard feed. The stream has
// no terminal event; it runs until the client disconnects or the server
// shuts down. Last-Event-ID (or ?after=) carries a global sequence, which
// survives restarts via the journal; a cursor older than the in-memory
// replay window — any depth, including 0 across a restart — is paged out of
// the journal until it catches up to the window, then streams live. Only
// with no journal (or a gap from dropped best-effort writes) does the
// cursor clamp forward to the oldest retained event.
func (s *Server) handleFirehose(w http.ResponseWriter, r *http.Request) {
	var after int64
	if c := cmp.Or(r.Header.Get("Last-Event-ID"), r.URL.Query().Get("after")); c != "" {
		if n, err := strconv.ParseInt(c, 10, 64); err == nil && n > 0 {
			after = n
		}
	}
	flusher, ok := startSSE(w)
	if !ok {
		return
	}
	keepalive := time.NewTicker(s.cfg.SSEKeepAlive)
	defer keepalive.Stop()

	emit := func(ev JobEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.GSeq, ev.Type, data)
		after = ev.GSeq
		return true
	}
	for {
		evs, changed, inWindow := s.fh.since(after)
		if !inWindow {
			if page := s.jn.firehosePage(after, firehosePageSize); len(page) > 0 {
				for _, ev := range page {
					if !emit(ev) {
						return
					}
				}
				flusher.Flush()
				continue
			}
			// Nothing journaled below the window: clamp to its edge. The
			// low-water mark only rises, so this always makes progress.
			after = s.fh.lowWater()
			continue
		}
		for _, ev := range evs {
			if !emit(ev) {
				return
			}
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		select {
		case <-changed:
		case <-keepalive.C:
			sseKeepAlive(w, flusher)
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// matchKey filters store listings by the optional platform/serial query.
func matchKey(k store.Key, platformQ, serialQ string) bool {
	if platformQ != "" && !strings.EqualFold(k.Platform, platformQ) {
		return false
	}
	if serialQ != "" && k.Serial != serialQ {
		return false
	}
	return true
}

// forEachListedRecord iterates the store's index entries matching the
// request's platform/serial filter, handing each meta and its cached
// summary to fn. Listings are O(index): summaries were computed at Put
// time, so no blob is read. The rare entry without a summary (a
// hand-edited index) falls back to one blob read rather than vanishing
// from the listing. A store-level List failure is reported and ends the
// iteration.
func (s *Server) forEachListedRecord(w http.ResponseWriter, r *http.Request, fn func(store.Meta, *store.Summary)) bool {
	metas, err := s.cfg.Store.List()
	if err != nil {
		writeError(w, fmt.Errorf("list store: %w", err))
		return false
	}
	q := r.URL.Query()
	for _, m := range metas {
		if !matchKey(m.Key, q.Get("platform"), q.Get("serial")) {
			continue
		}
		sum := m.Summary
		if sum == nil {
			rec, ok, err := s.cfg.Store.GetID(m.ID)
			if err != nil || !ok {
				continue
			}
			sum = store.Summarize(rec)
		}
		fn(m, sum)
	}
	return true
}

// handleFVMs lists stored characterizations, optionally filtered, straight
// from the index summaries.
func (s *Server) handleFVMs(w http.ResponseWriter, r *http.Request) {
	out := []FVMInfo{}
	if !s.forEachListedRecord(w, r, func(m store.Meta, sum *store.Summary) {
		out = append(out, FVMInfo{
			ID: m.ID, Platform: m.Key.Platform, Serial: m.Key.Serial,
			TempC: m.Key.TempC, Runs: m.Key.Runs, Options: m.Key.Options,
			Sites: sum.Sites, ZeroShare: sum.ZeroShare, MaxRate: sum.MaxRate,
			VFromV: sum.VFromV, VToV: sum.VToV,
		})
	}) {
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDeleteFVM removes one stored record — the admin lever behind GC:
// a record known to be stale (a re-soldered board, a mis-keyed run) goes
// now instead of waiting to age out. The in-memory cache level is evicted
// too, so the record cannot be resurrected from RAM.
func (s *Server) handleDeleteFVM(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !store.ValidID(id) {
		writeError(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("no FVM %q", id)})
		return
	}
	m, ok, err := s.cfg.Store.Delete(id)
	if err != nil {
		writeError(w, fmt.Errorf("delete record %s: %w", id, err))
		return
	}
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("no FVM %q", id)})
		return
	}
	s.cache.Invalidate(engine.CacheKeyFromStore(m.Key))
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleFVM returns one stored record's full Fault Variation Map.
func (s *Server) handleFVM(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !store.ValidID(id) {
		// Not an address at all (including traversal attempts): 404, and
		// the store layer independently refuses to touch the filesystem.
		writeError(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("no FVM %q", id)})
		return
	}
	rec, ok, err := s.cfg.Store.GetID(id)
	if err != nil {
		writeError(w, fmt.Errorf("read record %s: %w", id, err))
		return
	}
	if !ok || rec.FVM == nil {
		writeError(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("no FVM %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, rec.FVM)
}

// handleVmin reports each stored sweep's observed operating window — the
// per-chip quantity an undervolting deployment actually steers by — from
// the index summaries, where the window was computed at Put time.
func (s *Server) handleVmin(w http.ResponseWriter, r *http.Request) {
	out := []VminInfo{}
	if !s.forEachListedRecord(w, r, func(m store.Meta, sum *store.Summary) {
		if sum.Levels == 0 {
			return // no sweep: nothing to steer by
		}
		out = append(out, VminInfo{
			Platform: m.Key.Platform, Serial: m.Key.Serial, TempC: m.Key.TempC,
			VminV:         sum.VminV,
			VcrashV:       sum.VcrashV,
			FaultsPerMbit: sum.FaultsPerMbit,
		})
	}) {
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealth reports liveness, queue pressure, and journal health.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.intakeMu.Lock()
	draining := s.draining
	pending := len(s.queue)
	s.intakeMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             !draining,
		"draining":       draining,
		"pending":        pending,
		"workers":        s.cfg.Workers,
		"journal":        s.jn != nil,
		"journal_errors": s.jn.errors(),
	})
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps an error to its HTTP form (500 unless it is an apiError).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	}
	writeJSON(w, status, ErrorBody{Error: err.Error()})
}
