// Package server exposes the fleet campaign engine and the durable FVM
// store as an HTTP JSON service — the daemon side of fpgavoltd.
//
// The API surface:
//
//	POST   /v1/campaigns        submit a campaign; returns the queued job
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        one job's status, aggregate, per-board rows
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events stream the job's event log over SSE
//	GET    /v1/fvms             list stored characterizations (?platform=&serial=)
//	GET    /v1/fvms/{id}        one stored record's full FVM as JSON
//	GET    /v1/vmin             per-board operating windows from stored sweeps
//	GET    /healthz             liveness + queue depth
//
// Campaigns run on a bounded worker pool fed by a bounded queue: a full
// queue answers 503 instead of buffering without limit. Every campaign's
// fleet shares the server's FVM cache and store, so characterization
// results persist across jobs and process restarts, and a re-submitted
// characterization campaign is served from disk instead of re-measuring
// (temperature, pattern, and threshold studies always measure — their
// products are not cached). Shutdown stops intake, then drains: queued and
// running jobs finish unless the shutdown context expires first, at which
// point the engine's context plumbing cancels them promptly.
package server

import (
	"cmp"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/store"
)

// Config tunes a server.
type Config struct {
	// Store backs every campaign's FVM cache and the query endpoints.
	// Required; use store.NewMem() for a non-durable service.
	Store store.Store
	// Workers bounds how many campaigns run concurrently (default 2).
	Workers int
	// QueueDepth bounds how many submitted campaigns may wait (default 16).
	QueueDepth int
	// FleetWorkers bounds per-campaign board concurrency (0 = engine auto).
	FleetWorkers int
	// CacheCapacity bounds the server's shared in-memory FVM cache.
	CacheCapacity int
	// MaxBoards caps a single campaign's fleet size (default 64).
	MaxBoards int
	// MaxJobHistory caps how many jobs the in-memory table retains;
	// beyond it the oldest terminal jobs (and their event logs) are
	// evicted so a long-lived daemon does not grow without bound
	// (default 256). Live jobs are never evicted.
	MaxJobHistory int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBoards <= 0 {
		c.MaxBoards = 64
	}
	if c.MaxJobHistory <= 0 {
		c.MaxJobHistory = 256
	}
	return c
}

// Server is the campaign service: a job queue, its worker pool, and the
// HTTP handlers over both. Create with New, serve via Handler, stop with
// Shutdown.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	jobs *jobTable
	// cache is shared by every job's fleet, so concurrent campaigns
	// characterizing the same board collapse into one sweep (the engine's
	// per-key flights) and memory hits survive across jobs, not just
	// within one.
	cache *engine.FVMCache

	baseCtx context.Context    // parent of every job context
	abort   context.CancelFunc // forced-shutdown switch

	intakeMu sync.Mutex // guards queue sends vs. close
	queue    chan *Job
	draining bool

	workers sync.WaitGroup
}

// New assembles a server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	cache := engine.NewFVMCache(cfg.CacheCapacity)
	cache.SetBacking(cfg.Store)
	ctx, abort := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		jobs:    newJobTable(cfg.MaxJobHistory),
		cache:   cache,
		baseCtx: ctx,
		abort:   abort,
		queue:   make(chan *Job, cfg.QueueDepth),
	}
	s.routes()
	for w := 0; w < cfg.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/fvms", s.handleFVMs)
	s.mux.HandleFunc("GET /v1/fvms/{id}", s.handleFVM)
	s.mux.HandleFunc("GET /v1/vmin", s.handleVmin)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.queue {
		if !job.setRunning() {
			continue // cancelled while queued
		}
		s.runJob(job)
	}
}

// runJob executes one campaign. The fleet is constructed per job (each job
// may enroll a different inventory) but backed by the shared store, so
// characterization work is reused across jobs and restarts.
func (s *Server) runJob(job *Job) {
	defer job.cancel()
	fleet := engine.NewFleet(job.inventory, engine.Options{
		Workers: s.cfg.FleetWorkers,
		Cache:   s.cache,
	})
	events := make(chan engine.Event, 64)
	c := job.campaign
	c.Events = events
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			job.appendEngineEvent(ev)
		}
	}()
	res, err := fleet.RunCampaign(job.ctx, c)
	close(events)
	<-drained
	job.finish(res, err)
}

// Shutdown stops intake and waits for queued and running jobs to drain.
// When ctx expires first, every remaining job is cancelled through its
// context and Shutdown returns ctx.Err() once the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.intakeMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.intakeMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	// No queued-job sweep is needed here: once the queue is closed, the
	// workers drain every remaining queued job (running it, or skipping it
	// if already cancelled) before workers.Wait() returns, so every job
	// holds a terminal state by now.
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.abort() // cancels s.baseCtx, and with it every running campaign
		<-done
		return ctx.Err()
	}
}

// handleSubmit enqueues a campaign and answers 202 with the queued job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// A campaign submission is a small document; anything bigger is not a
	// campaign.
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req CampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequestf("decode request: %v", err))
		return
	}
	c, err := req.campaign()
	if err != nil {
		writeError(w, err)
		return
	}
	inv, err := req.inventory(s.cfg.MaxBoards)
	if err != nil {
		writeError(w, err)
		return
	}

	s.intakeMu.Lock()
	defer s.intakeMu.Unlock()
	if s.draining {
		writeError(w, &apiError{status: http.StatusServiceUnavailable, msg: "server is shutting down"})
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := s.jobs.create(c, inv, ctx, cancel)
	select {
	case s.queue <- job:
	default:
		// The submission was refused: it must not linger in the listing as
		// a phantom cancelled job the client was told never existed.
		s.jobs.remove(job.id)
		cancel()
		writeError(w, &apiError{status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("job queue full (%d pending)", s.cfg.QueueDepth)})
		return
	}
	writeJSON(w, http.StatusAccepted, job.status(true))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
	}
	return job, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.lookupJob(w, r); ok {
		writeJSON(w, http.StatusOK, job.status(true))
	}
}

// handleCancel cancels a queued or running job. Cancelling a terminal job is
// a no-op that reports the final state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	job.markCancelled() // queued → cancelled immediately
	job.cancel()        // running → engine unwinds via ctx, worker calls finish
	writeJSON(w, http.StatusOK, job.status(true))
}

// handleEvents streams the job's event log as Server-Sent Events: history
// first, then live events, closing after the terminal "campaign" event. The
// Last-Event-ID header (or ?after=) resumes a dropped stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &apiError{status: http.StatusInternalServerError, msg: "response writer cannot stream"})
		return
	}
	// A malformed or negative resume cursor replays from the start rather
	// than reaching eventsSince with an index that would slice negatively.
	next := 0
	if after := cmp.Or(r.Header.Get("Last-Event-ID"), r.URL.Query().Get("after")); after != "" {
		if n, err := strconv.Atoi(after); err == nil && n >= 0 {
			next = n + 1
		}
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		evs, terminal, changed := job.eventsSince(next)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			next = ev.Seq + 1
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			// Everything up to and including the terminal event is out.
			if evs, _, _ := job.eventsSince(next); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// matchKey filters store listings by the optional platform/serial query.
func matchKey(k store.Key, platformQ, serialQ string) bool {
	if platformQ != "" && !strings.EqualFold(k.Platform, platformQ) {
		return false
	}
	if serialQ != "" && k.Serial != serialQ {
		return false
	}
	return true
}

// forEachStoredRecord iterates the store's records matching the request's
// platform/serial filter, fetching each blob. Torn or raced-away blobs are
// skipped — a listing should degrade, not 500, when one record is bad. A
// store-level List failure is reported and ends the iteration.
func (s *Server) forEachStoredRecord(w http.ResponseWriter, r *http.Request, fn func(store.Meta, *store.Record)) bool {
	metas, err := s.cfg.Store.List()
	if err != nil {
		writeError(w, fmt.Errorf("list store: %w", err))
		return false
	}
	q := r.URL.Query()
	for _, m := range metas {
		if !matchKey(m.Key, q.Get("platform"), q.Get("serial")) {
			continue
		}
		rec, ok, err := s.cfg.Store.GetID(m.ID)
		if err != nil || !ok {
			continue
		}
		fn(m, rec)
	}
	return true
}

// handleFVMs lists stored characterizations, optionally filtered.
func (s *Server) handleFVMs(w http.ResponseWriter, r *http.Request) {
	out := []FVMInfo{}
	if !s.forEachStoredRecord(w, r, func(m store.Meta, rec *store.Record) {
		info := FVMInfo{
			ID: m.ID, Platform: m.Key.Platform, Serial: m.Key.Serial,
			TempC: m.Key.TempC, Runs: m.Key.Runs, Options: m.Key.Options,
		}
		if rec.FVM != nil {
			info.Sites = rec.FVM.NumSites()
			info.ZeroShare = rec.FVM.ZeroShare()
			info.MaxRate = rec.FVM.Summary().Max
			info.VFromV = rec.FVM.VFrom
			info.VToV = rec.FVM.VTo
		}
		out = append(out, info)
	}) {
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleFVM returns one stored record's full Fault Variation Map.
func (s *Server) handleFVM(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !store.ValidID(id) {
		// Not an address at all (including traversal attempts): 404, and
		// the store layer independently refuses to touch the filesystem.
		writeError(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("no FVM %q", id)})
		return
	}
	rec, ok, err := s.cfg.Store.GetID(id)
	if err != nil {
		writeError(w, fmt.Errorf("read record %s: %w", id, err))
		return
	}
	if !ok || rec.FVM == nil {
		writeError(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("no FVM %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, rec.FVM)
}

// handleVmin computes each stored sweep's observed operating window — the
// per-chip quantity an undervolting deployment actually steers by.
func (s *Server) handleVmin(w http.ResponseWriter, r *http.Request) {
	out := []VminInfo{}
	if !s.forEachStoredRecord(w, r, func(m store.Meta, rec *store.Record) {
		if rec.Sweep == nil || len(rec.Sweep.Levels) == 0 {
			return
		}
		out = append(out, VminInfo{
			Platform: m.Key.Platform, Serial: m.Key.Serial, TempC: m.Key.TempC,
			VminV:         engine.ObservedVmin(rec.Sweep),
			VcrashV:       rec.Sweep.Final().V,
			FaultsPerMbit: rec.Sweep.Final().FaultsPerMbit,
		})
	}) {
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealth reports liveness and queue pressure.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.intakeMu.Lock()
	draining := s.draining
	pending := len(s.queue)
	s.intakeMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       !draining,
		"draining": draining,
		"pending":  pending,
		"workers":  s.cfg.Workers,
	})
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps an error to its HTTP form (500 unless it is an apiError).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}
