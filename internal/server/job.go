package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/platform"
)

// Job is one queued or running campaign. All mutable state is guarded by mu;
// notify is closed and replaced on every change, which is what lets any
// number of SSE streams wait for "something new" without polling.
type Job struct {
	id        string
	seq       int // table-assigned creation order; ids are for the wire
	kind      engine.CampaignKind
	campaign  engine.Campaign
	inventory []platform.Platform
	// ctx/cancel exist from submission: a DELETE can always cancel, whether
	// the job is still queued, mid-handoff, or running.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	progress float64
	events   []JobEvent
	result   *engine.CampaignResult
	err      error
	notify   chan struct{}
}

func newJob(id string, c engine.Campaign, inv []platform.Platform, ctx context.Context, cancel context.CancelFunc) *Job {
	return &Job{
		id: id, kind: c.Kind, campaign: c, inventory: inv, ctx: ctx, cancel: cancel,
		state: JobQueued, created: time.Now(), notify: make(chan struct{}),
	}
}

// signalLocked wakes every waiter; callers hold j.mu.
func (j *Job) signalLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// setRunning transitions queued → running. It reports false when the job was
// cancelled while queued, in which case the worker must skip it.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.signalLocked()
	return true
}

// appendEngineEvent records one engine event under the server's sequence
// numbering and wakes the streams.
func (j *Job) appendEngineEvent(ev engine.Event) {
	je := JobEvent{
		Type:      ev.Kind.String(),
		Board:     ev.Board,
		Platform:  ev.Platform,
		Serial:    ev.Serial,
		FromCache: ev.FromCache,
		Faults:    ev.Faults,
		Progress:  ev.Progress,
	}
	if ev.Err != nil {
		je.Error = ev.Err.Error()
	}
	j.mu.Lock()
	// Concurrent boards race to emit; monotonicize so dashboards never see
	// the bar move backwards.
	if je.Progress < j.progress {
		je.Progress = j.progress
	}
	j.progress = je.Progress
	je.Seq = len(j.events)
	j.events = append(j.events, je)
	j.signalLocked()
	j.mu.Unlock()
}

// finish records the campaign outcome, appends the terminal event, and wakes
// the streams one last time.
func (j *Job) finish(res *engine.CampaignResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.result = res
	j.err = err
	switch {
	case err == nil:
		j.state = JobDone
		j.progress = 100
	case errors.Is(err, context.Canceled):
		j.state = JobCancelled
	default:
		j.state = JobFailed
	}
	te := JobEvent{
		Seq: len(j.events), Type: "campaign", Progress: j.progress, State: j.state,
	}
	if err != nil {
		te.Error = err.Error()
	}
	j.events = append(j.events, te)
	j.signalLocked()
}

// markCancelled flips a still-queued job straight to cancelled (running jobs
// go through finish when RunCampaign returns ctx.Err()).
func (j *Job) markCancelled() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return
	}
	j.state = JobCancelled
	j.finished = time.Now()
	j.events = append(j.events, JobEvent{
		Seq: len(j.events), Type: "campaign", Progress: j.progress,
		State: JobCancelled, Error: context.Canceled.Error(),
	})
	j.signalLocked()
}

// status snapshots the job for the wire. includeResults controls whether
// the aggregate and per-board rows ride along: detail endpoints want them,
// but the jobs listing would otherwise ship O(jobs × boards) payload on
// every dashboard poll.
func (j *Job) status(includeResults bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		Kind:     j.kind.String(),
		State:    j.state,
		Boards:   len(j.inventory),
		Progress: j.progress,
		Created:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil && includeResults {
		agg := j.result.Agg
		st.Aggregate = &agg
		for i := range j.result.Boards {
			r := &j.result.Boards[i]
			bs := BoardStatus{
				Board: r.Board, Platform: r.Platform, Serial: r.Serial, FromCache: r.FromCache,
			}
			if r.Err != nil {
				bs.Error = r.Err.Error()
			}
			// Temperature studies leave Sweep nil and fill TempSweeps; the
			// last (hottest) sweep is the one the aggregate reports too.
			s := r.Sweep
			if s == nil && len(r.TempSweeps) > 0 {
				s = r.TempSweeps[len(r.TempSweeps)-1]
			}
			if s != nil && len(s.Levels) > 0 {
				bs.FaultsPerMbit = s.Final().FaultsPerMbit
				bs.VminV = engine.ObservedVmin(s)
				bs.VcrashV = s.Final().V
			}
			if th := r.BRAMThresholds; th != nil {
				bs.VminV, bs.VcrashV = th.Vmin, th.Vcrash
			}
			if th := r.IntThresholds; th != nil {
				bs.IntVminV, bs.IntVcrashV = th.Vmin, th.Vcrash
			}
			for _, pr := range r.Patterns {
				bs.Patterns = append(bs.Patterns, PatternStatus{
					Name: pr.Name, FaultsPerMbit: pr.FaultsPerMbit, Flip10Share: pr.Flip10Share,
				})
			}
			st.BoardResults = append(st.BoardResults, bs)
		}
	}
	return st
}

// eventsSince returns the events at sequence ≥ from, whether the job is
// terminal, and a channel that is closed on the next change. The triple lets
// an SSE stream drain history, then block until there is more.
func (j *Job) eventsSince(from int) ([]JobEvent, bool, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// from == len is a legitimate tail-wait; anything outside [0, len] is a
	// bogus cursor and replays from the start — otherwise a beyond-the-log
	// cursor would wait forever and never see the terminal event.
	if from < 0 || from > len(j.events) {
		from = 0
	}
	var evs []JobEvent
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.state.Terminal(), j.notify
}

// jobTable is the server's job registry. Retention is bounded: beyond max
// entries, the oldest terminal jobs are evicted (their FVMs live on in the
// store; only the job row and its event log go). Live jobs are never
// evicted, so the table can exceed max only while that many campaigns are
// actually queued or running.
type jobTable struct {
	mu    sync.Mutex
	seq   int
	max   int
	jobs  map[string]*Job
	order []string // creation order, for oldest-first eviction
}

func newJobTable(max int) *jobTable {
	if max <= 0 {
		max = 256
	}
	return &jobTable{max: max, jobs: make(map[string]*Job)}
}

// terminal reports the job's state under its own lock.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// create registers a new job for the campaign and returns it.
func (t *jobTable) create(c engine.Campaign, inv []platform.Platform, ctx context.Context, cancel context.CancelFunc) *Job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := fmt.Sprintf("job-%04d", t.seq)
	j := newJob(id, c, inv, ctx, cancel)
	j.seq = t.seq
	t.jobs[id] = j
	t.order = append(t.order, id)
	t.evictLocked()
	return j
}

// evictLocked drops the oldest terminal jobs until the table fits max.
func (t *jobTable) evictLocked() {
	for i := 0; len(t.jobs) > t.max && i < len(t.order); {
		id := t.order[i]
		j, ok := t.jobs[id]
		if ok && !j.terminal() {
			i++ // live: skip, never evict
			continue
		}
		delete(t.jobs, id)
		t.order = append(t.order[:i], t.order[i+1:]...)
	}
}

// remove deregisters a job that was never admitted to the queue, so a
// rejected submission leaves no phantom entry in the listing.
func (t *jobTable) remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.jobs, id)
	for i, o := range t.order {
		if o == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// get resolves a job by id.
func (t *jobTable) get(id string) (*Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// list snapshots every job's status, oldest first. Ordering follows the
// creation sequence, not the id string — "job-10000" must list after
// "job-9999", which lexicographic id order would get wrong.
func (t *jobTable) list() []JobStatus {
	t.mu.Lock()
	jobs := make([]*Job, 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(false))
	}
	return out
}
