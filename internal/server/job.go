package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/platform"
)

// Job is one queued or running campaign. All mutable state is guarded by mu;
// notify is closed and replaced on every change, which is what lets any
// number of SSE streams wait for "something new" without polling. Every
// event additionally flows through the server's firehose (which stamps it
// with a global sequence) and, when journaling is on, write-throughs the
// job's document into the store.
type Job struct {
	id        string
	seq       int // table-assigned creation order; ids are for the wire
	kind      engine.CampaignKind
	campaign  engine.Campaign
	inventory []platform.Platform
	// ctx/cancel exist from submission: a DELETE can always cancel, whether
	// the job is still queued, mid-handoff, or running.
	ctx    context.Context
	cancel context.CancelFunc

	fh *firehose // stamps global sequences; never nil on a served job
	jn *journal  // nil when journaling is disabled
	// jnMu serializes this job's journal writes with their snapshots (and
	// with eviction's record delete); it nests OUTSIDE mu and must never
	// be taken while holding it. jnDropped is guarded by jnMu.
	jnMu      sync.Mutex
	jnDropped bool
	// onTerminal runs once, after the terminal transition is visible, so
	// the table can evict finished history and the server can GC the store
	// without either layer reaching into the other's locks.
	onTerminal func()

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	progress float64
	// events is the in-memory tail of the job's event log, holding
	// sequences [eventsBase, eventsBase+len(events)). With journaling on,
	// the tail is trimmed to memWindow once events are durably appended —
	// older sequences are paged back from the journal on demand — so a
	// long campaign's history does not live in RAM twice. Without a
	// journal the tail is never trimmed and base stays 0.
	events     []JobEvent
	eventsBase int
	// jnPending queues events appended under mu but not yet written to the
	// journal; journal.sync drains it in order. Always empty when jn is nil.
	jnPending []JobEvent
	memWindow int
	// jnDegraded marks that a journal write for this job has failed and the
	// one-time journal_degraded marker event has been emitted. The job keeps
	// running — durability degrades, service does not.
	jnDegraded bool
	result     *engine.CampaignResult
	err        error
	notify     chan struct{}
	// restored holds the journaled status snapshot of a job replayed from
	// a previous process. Such jobs never run again; their status is
	// served from this snapshot instead of recomputed from engine results.
	restored *JobStatus
}

func newJob(id string, c engine.Campaign, inv []platform.Platform, ctx context.Context, cancel context.CancelFunc, fh *firehose, jn *journal, window int) *Job {
	return &Job{
		id: id, kind: c.Kind, campaign: c, inventory: inv, ctx: ctx, cancel: cancel,
		fh: fh, jn: jn, memWindow: window,
		state: JobQueued, created: time.Now(), notify: make(chan struct{}),
	}
}

// signalLocked wakes every waiter; callers hold j.mu.
func (j *Job) signalLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// queueJournalLocked enqueues one event for the journal; callers hold j.mu
// and must call j.jn.sync(j) after releasing it. With journaling off the
// queue must stay empty — nothing would ever drain it.
func (j *Job) queueJournalLocked(ev JobEvent) {
	if j.jn != nil {
		j.jnPending = append(j.jnPending, ev)
	}
}

// noteJournalDegraded appends the one-time journal_degraded marker event
// after a failed journal write: the job keeps running, and live streams
// learn its durable history has a gap instead of discovering it after a
// restart. Callers hold jnMu (both journal error paths do), so the marker
// is only queued for the journal — the next successful drain persists it; a
// recursive jn.sync here would deadlock on jnMu. The marker draws a real
// Seq, so live SSE stays dense. Terminal and replayed jobs are skipped:
// their streams have already been told the job's story ended.
func (j *Job) noteJournalDegraded() {
	j.mu.Lock()
	if j.jnDegraded || j.restored != nil || j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.jnDegraded = true
	ev := JobEvent{
		Seq: j.eventsBase + len(j.events), Type: "journal_degraded", Job: j.id,
		Progress: j.progress,
		Error:    "journal write failed: event history may not survive a restart",
	}
	j.fh.append(&ev)
	j.events = append(j.events, ev)
	j.queueJournalLocked(ev)
	j.signalLocked()
	j.mu.Unlock()
}

// trimJournaled drops in-memory events below upto (the journal's durable
// frontier) beyond the configured window, so RAM holds a bounded recent
// tail and the journal serves the rest. Never trims past what is durable:
// an SSE replay must not depend on a write that failed.
func (j *Job) trimJournaled(upto int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.memWindow <= 0 {
		return
	}
	cut := j.eventsBase + len(j.events) - j.memWindow
	if cut > upto {
		cut = upto
	}
	if cut <= j.eventsBase {
		return
	}
	j.events = append([]JobEvent(nil), j.events[cut-j.eventsBase:]...)
	j.eventsBase = cut
}

// setRunning transitions queued → running. It reports false when the job was
// cancelled while queued, in which case the worker must skip it.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.signalLocked()
	j.mu.Unlock()
	j.jn.putMeta(j)
	return true
}

// appendEngineEvent records one engine event under the server's sequence
// numbering, pushes it through the firehose, journals the job, and wakes
// the streams.
func (j *Job) appendEngineEvent(ev engine.Event) {
	je := JobEvent{
		Type:       ev.Kind.String(),
		Job:        j.id,
		Board:      ev.Board,
		Platform:   ev.Platform,
		Serial:     ev.Serial,
		FromCache:  ev.FromCache,
		Faults:     ev.Faults,
		V:          ev.V,
		InferError: ev.InferError,
		Progress:   ev.Progress,
	}
	if ev.Err != nil {
		je.Error = ev.Err.Error()
	}
	j.mu.Lock()
	// Concurrent boards race to emit; monotonicize so dashboards never see
	// the bar move backwards.
	if je.Progress < j.progress {
		je.Progress = j.progress
	}
	j.progress = je.Progress
	je.Seq = j.eventsBase + len(j.events)
	j.fh.append(&je) // stamps je.GSeq; fh.mu nests inside j.mu everywhere
	j.events = append(j.events, je)
	j.queueJournalLocked(je)
	j.signalLocked()
	j.mu.Unlock()
	j.jn.sync(j)
}

// finish records the campaign outcome, appends the terminal event, wakes
// the streams one last time, journals the terminal document, and fires the
// completion hook.
//
// Cancellation is classified by intent, not by error identity: an engine
// error that wraps context.DeadlineExceeded, or a board-level error that
// does not wrap either sentinel at all, still means "the job's context was
// ended on purpose" whenever j.ctx is done — reporting such a job as
// failed would send an operator hunting for a fault that was actually
// their own DELETE.
func (j *Job) finish(res *engine.CampaignResult, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.result = res
	j.err = err
	// The bulk inference payload (network words + test set) is dead weight
	// once the job is terminal; drop the job's copy so finished history
	// entries don't pin megabytes each. The engine ran on its own copy.
	j.campaign.Net, j.campaign.TestX, j.campaign.TestY = nil, nil, nil
	switch {
	case err == nil:
		j.state = JobDone
		j.progress = 100
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		j.ctx.Err() != nil:
		j.state = JobCancelled
	default:
		j.state = JobFailed
	}
	te := JobEvent{
		Seq: j.eventsBase + len(j.events), Type: "campaign", Job: j.id,
		Progress: j.progress, State: j.state,
	}
	if err != nil {
		te.Error = err.Error()
	}
	j.fh.append(&te)
	j.events = append(j.events, te)
	j.queueJournalLocked(te)
	j.signalLocked()
	j.mu.Unlock()
	j.jn.sync(j)
	j.jn.putMeta(j)
	j.jn.retainTerminal(j.id)
	if j.onTerminal != nil {
		j.onTerminal()
	}
}

// markCancelled flips a still-queued job straight to cancelled (running jobs
// go through finish when RunCampaign returns ctx.Err()).
func (j *Job) markCancelled() {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	j.state = JobCancelled
	j.finished = time.Now()
	j.campaign.Net, j.campaign.TestX, j.campaign.TestY = nil, nil, nil
	te := JobEvent{
		Seq: j.eventsBase + len(j.events), Type: "campaign", Job: j.id, Progress: j.progress,
		State: JobCancelled, Error: context.Canceled.Error(),
	}
	j.fh.append(&te)
	j.events = append(j.events, te)
	j.queueJournalLocked(te)
	j.signalLocked()
	j.mu.Unlock()
	j.jn.sync(j)
	j.jn.putMeta(j)
	j.jn.retainTerminal(j.id)
	if j.onTerminal != nil {
		j.onTerminal()
	}
}

// status snapshots the job for the wire. includeResults controls whether
// the aggregate and per-board rows ride along: detail endpoints want them,
// but the jobs listing would otherwise ship O(jobs × boards) payload on
// every dashboard poll.
func (j *Job) status(includeResults bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(includeResults)
}

func (j *Job) statusLocked(includeResults bool) JobStatus {
	if j.restored != nil {
		// Replayed from the journal: the snapshot is the truth — the
		// engine results that produced it belong to a dead process.
		st := *j.restored
		if !includeResults {
			st.Aggregate = nil
			st.BoardResults = nil
		}
		return st
	}
	st := JobStatus{
		ID:       j.id,
		Kind:     j.kind.String(),
		State:    j.state,
		Boards:   len(j.inventory),
		Progress: j.progress,
		Created:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil && includeResults {
		agg := j.result.Agg
		st.Aggregate = &agg
		for i := range j.result.Boards {
			r := &j.result.Boards[i]
			bs := BoardStatus{
				Board: r.Board, Platform: r.Platform, Serial: r.Serial, FromCache: r.FromCache,
			}
			if r.Err != nil {
				bs.Error = r.Err.Error()
			}
			// Temperature studies leave Sweep nil and fill TempSweeps; the
			// last (hottest) sweep is the one the aggregate reports too.
			s := r.Sweep
			if s == nil && len(r.TempSweeps) > 0 {
				s = r.TempSweeps[len(r.TempSweeps)-1]
			}
			if s != nil && len(s.Levels) > 0 {
				bs.FaultsPerMbit = s.Final().FaultsPerMbit
				bs.VminV = engine.ObservedVmin(s)
				bs.VcrashV = s.Final().V
			}
			if th := r.BRAMThresholds; th != nil {
				bs.VminV, bs.VcrashV = th.Vmin, th.Vcrash
			}
			if th := r.IntThresholds; th != nil {
				bs.IntVminV, bs.IntVcrashV = th.Vmin, th.Vcrash
			}
			if r.FVM != nil {
				bs.ZeroShare = r.FVM.ZeroShare()
			}
			for _, pr := range r.Patterns {
				bs.Patterns = append(bs.Patterns, PatternStatus{
					Name: pr.Name, FaultsPerMbit: pr.FaultsPerMbit, Flip10Share: pr.Flip10Share,
				})
			}
			for _, ir := range r.Inference {
				bs.Inference = append(bs.Inference, InferencePoint{
					V: ir.V, Error: ir.Error, WeightFault: ir.WeightFault,
				})
			}
			for ai := range r.Mitigation {
				arm := &r.Mitigation[ai]
				as := MitigationArmStatus{
					Arm: arm.Arm, MinSafeV: arm.MinSafeV, EnergySavings: arm.EnergySavings,
				}
				for _, pt := range arm.Levels {
					as.Levels = append(as.Levels, MitigationLevel{
						V: pt.V, FaultsPerMbit: pt.FaultsPerMbit, WordErrors: pt.WordErrors,
						Accuracy: pt.Accuracy, EnergyJ: pt.EnergyJ, FreqScale: pt.FreqScale,
						Corrected: pt.Corrected, Detected: pt.Detected, Silent: pt.Silent,
					})
				}
				bs.Mitigation = append(bs.Mitigation, as)
			}
			st.BoardResults = append(st.BoardResults, bs)
		}
	}
	return st
}

// eventPageSize bounds how many journaled events one eventsSince call pages
// back into memory for a deep resume; the SSE loop drains page after page.
const eventPageSize = 512

// eventsSince returns the events at sequence ≥ from, whether the job is
// terminal, and a channel that is closed on the next change. The triple lets
// an SSE stream drain history, then block until there is more. Sequences
// below the in-memory tail — trimmed live history, or any history of a job
// restored after a restart — are paged from the journal, so a client can
// resume from sequence 0 without the server holding the log in RAM.
func (j *Job) eventsSince(from int) ([]JobEvent, bool, <-chan struct{}) {
	j.mu.Lock()
	base := j.eventsBase
	total := base + len(j.events)
	terminal := j.state.Terminal()
	notify := j.notify
	// from == total is a legitimate tail-wait; anything outside [0, total]
	// is a bogus cursor and replays from the start — otherwise a
	// beyond-the-log cursor would wait forever and never see the terminal
	// event.
	if from < 0 || from > total {
		from = 0
	}
	if from >= base || j.jn == nil {
		if from < base {
			from = base // journaling off: the in-memory tail is all there is
		}
		var evs []JobEvent
		if from < total {
			evs = append(evs, j.events[from-base:]...)
		}
		j.mu.Unlock()
		return evs, terminal, notify
	}
	j.mu.Unlock()
	// Cursor predates the tail: page the gap from the journal. A page may
	// overlap the tail (the same immutable events) or come back short when
	// best-effort writes were dropped; either way the cursor advances by
	// what is served and the next call continues from there.
	if evs := j.jn.readEvents(j.id, from, eventPageSize); len(evs) > 0 {
		return evs, terminal, notify
	}
	// Nothing journaled at this depth (a gap): fall forward to the tail.
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]JobEvent(nil), j.events...), terminal, notify
}

// jobTable is the server's job registry. Retention is bounded: beyond max
// entries, the oldest terminal jobs are evicted (their FVMs live on in the
// store; only the job row and its event log go). Live jobs are never
// evicted, so the table can exceed max only while that many campaigns are
// actually queued or running.
type jobTable struct {
	mu    sync.Mutex
	seq   int
	max   int
	jobs  map[string]*Job
	order []string // creation order, for oldest-first eviction
	// onEvict is told which jobs were dropped (outside the table lock), so
	// the server can unjournal them and keep the store's journal in step
	// with the table's retention.
	onEvict func(jobs []*Job)
}

func newJobTable(max int, onEvict func(jobs []*Job)) *jobTable {
	if max <= 0 {
		max = 256
	}
	if onEvict == nil {
		onEvict = func([]*Job) {}
	}
	return &jobTable{max: max, jobs: make(map[string]*Job), onEvict: onEvict}
}

// terminal reports the job's state under its own lock.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// create registers a new job for the campaign and returns it.
func (t *jobTable) create(c engine.Campaign, inv []platform.Platform, ctx context.Context, cancel context.CancelFunc, fh *firehose, jn *journal, window int, onTerminal func()) *Job {
	t.mu.Lock()
	t.seq++
	id := fmt.Sprintf("job-%04d", t.seq)
	j := newJob(id, c, inv, ctx, cancel, fh, jn, window)
	j.seq = t.seq
	j.onTerminal = onTerminal
	t.jobs[id] = j
	t.order = append(t.order, id)
	evicted := t.evictLocked()
	t.mu.Unlock()
	if len(evicted) > 0 {
		t.onEvict(evicted)
	}
	return j
}

// adopt registers a job replayed from the journal under its original id and
// sequence, so post-restart submissions continue the numbering.
func (t *jobTable) adopt(j *Job) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j.seq > t.seq {
		t.seq = j.seq
	}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
}

// bumpSeq raises the id sequence to at least seq — covering journaled jobs
// that were themselves evicted during replay but whose ids must not be
// reissued.
func (t *jobTable) bumpSeq(seq int) {
	t.mu.Lock()
	if seq > t.seq {
		t.seq = seq
	}
	t.mu.Unlock()
}

// sweep evicts excess terminal jobs. The server calls it from each job's
// completion hook, so a table that filled up with live jobs shrinks as
// soon as they finish rather than on the next submission.
func (t *jobTable) sweep() {
	t.mu.Lock()
	evicted := t.evictLocked()
	t.mu.Unlock()
	if len(evicted) > 0 {
		t.onEvict(evicted)
	}
}

// evictLocked drops the oldest terminal jobs until the table fits max,
// compacting the order slice in a single pass (the old per-entry
// slice-delete made a full table turn quadratic). Live jobs are never
// evicted, so the table exceeds max only while that many campaigns are
// actually queued or running.
func (t *jobTable) evictLocked() []*Job {
	excess := len(t.jobs) - t.max
	if excess <= 0 {
		return nil
	}
	var evicted []*Job
	kept := t.order[:0]
	for _, id := range t.order {
		j, ok := t.jobs[id]
		if !ok {
			continue
		}
		if excess > 0 && j.terminal() {
			delete(t.jobs, id)
			evicted = append(evicted, j)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	t.order = kept
	return evicted
}

// remove deregisters a job that was never admitted to the queue, so a
// rejected submission leaves no phantom entry in the listing.
func (t *jobTable) remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.jobs, id)
	for i, o := range t.order {
		if o == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// get resolves a job by id.
func (t *jobTable) get(id string) (*Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// list snapshots every job's status, oldest first. Ordering follows the
// creation sequence, not the id string — "job-10000" must list after
// "job-9999", which lexicographic id order would get wrong.
func (t *jobTable) list() []JobStatus {
	t.mu.Lock()
	jobs := make([]*Job, 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(false))
	}
	return out
}
