package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// newService boots a server over the given store and returns a typed client
// bound to an httptest listener. Shutdown runs in cleanup.
func newService(t *testing.T, st store.Store, cfg server.Config) (*server.Server, *server.Client) {
	t.Helper()
	cfg.Store = st
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, server.NewClient(ts.URL, ts.Client())
}

// smallCampaign is a fast 2-board characterization request.
func smallCampaign() server.CampaignRequest {
	return server.CampaignRequest{
		Kind: "characterization",
		Boards: []server.BoardSpec{
			{Platform: "VC707", Replicas: 1, BRAMs: 24},
			{Platform: "KC705-B", Replicas: 1, BRAMs: 24},
		},
		Runs: 3,
	}
}

func TestSubmitStreamAndQuery(t *testing.T) {
	st := store.NewMem()
	_, client := newService(t, st, server.Config{Workers: 1, FleetWorkers: 2})
	ctx := context.Background()

	job, err := client.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State.Terminal() {
		t.Fatalf("submit returned %+v", job)
	}
	if job.Boards != 2 || job.Kind != "characterization" {
		t.Fatalf("submit echoed %+v", job)
	}

	// Stream to completion, checking SSE framing invariants.
	var events []server.JobEvent
	final, err := client.Wait(ctx, job.ID, func(ev server.JobEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone {
		t.Fatalf("job finished %q (%s), want done", final.State, final.Error)
	}
	if final.Progress != 100 {
		t.Fatalf("final progress %.2f, want 100", final.Progress)
	}
	if final.Aggregate == nil || final.Aggregate.Completed != 2 {
		t.Fatalf("final aggregate %+v", final.Aggregate)
	}
	if len(final.BoardResults) != 2 {
		t.Fatalf("board results %+v", final.BoardResults)
	}
	for _, br := range final.BoardResults {
		if br.FaultsPerMbit <= 0 || br.VminV < br.VcrashV {
			t.Fatalf("implausible board row %+v", br)
		}
	}

	assertEventStream(t, events, 2)

	// The store now answers queries — including for the exact serial.
	fvms, err := client.FVMs(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(fvms) != 2 {
		t.Fatalf("stored %d FVMs, want 2", len(fvms))
	}
	byPlatform, err := client.FVMs(ctx, "VC707", "")
	if err != nil || len(byPlatform) != 1 {
		t.Fatalf("platform filter returned %d (%v), want 1", len(byPlatform), err)
	}
	if byPlatform[0].Sites != 24 {
		t.Fatalf("FVM has %d sites, want the scaled 24", byPlatform[0].Sites)
	}
	m, err := client.FVM(ctx, byPlatform[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if m.Platform != "VC707" || len(m.Counts) != 24 {
		t.Fatalf("full FVM came back %s with %d counts", m.Platform, len(m.Counts))
	}
	vmins, err := client.Vmin(ctx, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(vmins) != 2 {
		t.Fatalf("vmin listed %d boards, want 2", len(vmins))
	}
	for _, v := range vmins {
		if v.VminV < v.VcrashV || v.VminV <= 0 {
			t.Fatalf("implausible window %+v", v)
		}
	}

	// The jobs index includes the finished job.
	jobs, err := client.Jobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("job listing %+v (%v)", jobs, err)
	}
}

// assertEventStream checks ordering: seq strictly increasing from 0,
// progress non-decreasing, every board starts before it finishes, and the
// terminal campaign event is last.
func assertEventStream(t *testing.T, events []server.JobEvent, boards int) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	started := map[int]bool{}
	dones := 0
	lastProgress := -1.0
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d carries seq %d: %+v", i, ev.Seq, ev)
		}
		if ev.Progress < lastProgress {
			t.Fatalf("progress went backwards at seq %d: %.2f after %.2f", i, ev.Progress, lastProgress)
		}
		lastProgress = ev.Progress
		switch ev.Type {
		case "start":
			started[ev.Board] = true
		case "done":
			if !started[ev.Board] {
				t.Fatalf("board %d finished before starting", ev.Board)
			}
			dones++
		case "failed":
			t.Fatalf("unexpected failure event %+v", ev)
		case "campaign":
			if i != len(events)-1 {
				t.Fatalf("terminal event at %d of %d", i, len(events)-1)
			}
		default:
			t.Fatalf("unknown event type %q", ev.Type)
		}
	}
	if dones != boards {
		t.Fatalf("%d done events, want %d", dones, boards)
	}
	if last := events[len(events)-1]; last.Type != "campaign" || last.Progress != 100 {
		t.Fatalf("terminal event %+v", last)
	}
}

func TestSSEReplayAfterCompletion(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1})
	ctx := context.Background()
	job, err := client.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, job.ID, nil); err != nil {
		t.Fatal(err)
	}
	// A late subscriber replays the full history and still terminates.
	var events []server.JobEvent
	if err := client.Events(ctx, job.ID, func(ev server.JobEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	assertEventStream(t, events, 2)
}

func TestCancelMidCampaign(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1, FleetWorkers: 2})
	ctx := context.Background()
	// Big enough that it cannot finish before the cancel lands.
	job, err := client.Submit(ctx, server.CampaignRequest{
		Kind: "characterization",
		Boards: []server.BoardSpec{
			{Platform: "VC707", Replicas: 4, BRAMs: 400},
			{Platform: "KC705-A", Replicas: 4, BRAMs: 400},
		},
		Runs: 300,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first board to start, then cancel over the API.
	streamErr := make(chan error, 1)
	sawStart := make(chan struct{})
	var once sync.Once
	var events []server.JobEvent
	var evMu sync.Mutex
	go func() {
		streamErr <- client.Events(ctx, job.ID, func(ev server.JobEvent) error {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
			if ev.Type == "start" {
				once.Do(func() { close(sawStart) })
			}
			return nil
		})
	}()
	select {
	case <-sawStart:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign never started")
	}
	st, err := client.Cancel(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() && st.State != server.JobCancelled {
		t.Fatalf("cancel returned state %q", st.State)
	}

	// The stream terminates with a cancelled campaign event.
	select {
	case err := <-streamErr:
		if err != nil {
			t.Fatalf("stream ended with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after cancellation")
	}
	evMu.Lock()
	last := events[len(events)-1]
	evMu.Unlock()
	if last.Type != "campaign" || last.State != server.JobCancelled {
		t.Fatalf("terminal event %+v, want cancelled campaign", last)
	}
	final, err := client.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobCancelled {
		t.Fatalf("final state %q, want cancelled", final.State)
	}
	if final.Progress >= 100 {
		t.Fatalf("cancelled job reports %.1f%% complete", final.Progress)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	// Occupy the single worker...
	blocker, err := client.Submit(ctx, server.CampaignRequest{
		Kind:   "characterization",
		Boards: []server.BoardSpec{{Platform: "VC707", Replicas: 2, BRAMs: 300}},
		Runs:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...so this one stays queued.
	queued, err := client.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.JobCancelled {
		t.Fatalf("queued job cancelled to %q", st.State)
	}
	// Its stream is just the terminal event.
	var events []server.JobEvent
	if err := client.Events(ctx, queued.ID, func(ev server.JobEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != "campaign" || events[0].State != server.JobCancelled {
		t.Fatalf("queued-cancel stream %+v", events)
	}
	if _, err := client.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
}

func TestValidationAndErrors(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1, MaxBoards: 4})
	ctx := context.Background()

	cases := []struct {
		name string
		req  server.CampaignRequest
		want int
	}{
		{"unknown kind", server.CampaignRequest{Kind: "mystery",
			Boards: []server.BoardSpec{{Platform: "VC707"}}}, 400},
		{"inference rejected", server.CampaignRequest{Kind: "nn-inference",
			Boards: []server.BoardSpec{{Platform: "VC707"}}}, 400},
		{"no boards", server.CampaignRequest{Kind: "characterization"}, 400},
		{"bad platform", server.CampaignRequest{Kind: "characterization",
			Boards: []server.BoardSpec{{Platform: "VC999"}}}, 400},
		{"too many boards", server.CampaignRequest{Kind: "characterization",
			Boards: []server.BoardSpec{{Platform: "VC707", Replicas: 5}}}, 400},
		{"huge replicas rejected before allocation", server.CampaignRequest{Kind: "characterization",
			Boards: []server.BoardSpec{{Platform: "VC707", Replicas: 2_000_000_000}}}, 400},
		{"bad pattern", server.CampaignRequest{Kind: "pattern-study",
			Boards:   []server.BoardSpec{{Platform: "VC707"}},
			Patterns: []string{"zzzz"}}, 400},
		{"runs out of range", server.CampaignRequest{Kind: "characterization",
			Boards: []server.BoardSpec{{Platform: "VC707"}}, Runs: 20000}, 400},
		{"temp ladder too long", server.CampaignRequest{Kind: "temperature-study",
			Boards: []server.BoardSpec{{Platform: "VC707"}},
			Temps:  make([]float64, 100000)}, 400},
		{"temp out of range", server.CampaignRequest{Kind: "temperature-study",
			Boards: []server.BoardSpec{{Platform: "VC707"}},
			Temps:  []float64{50, 900}}, 400},
		{"zero ladder temp", server.CampaignRequest{Kind: "temperature-study",
			Boards: []server.BoardSpec{{Platform: "VC707"}},
			Temps:  []float64{0, 50}}, 400},
		{"duplicate die", server.CampaignRequest{Kind: "characterization",
			Boards: []server.BoardSpec{
				{Platform: "VC707", Replicas: 2},
				{Platform: "VC707", Replicas: 1},
			}}, 400},
		{"probe runs out of range", server.CampaignRequest{Kind: "threshold-discovery",
			Boards: []server.BoardSpec{{Platform: "VC707"}}, ProbeRuns: 100000}, 400},
		{"too many patterns", server.CampaignRequest{Kind: "pattern-study",
			Boards:   []server.BoardSpec{{Platform: "VC707"}},
			Patterns: make([]string, 64)}, 400},
	}
	for _, tc := range cases {
		_, err := client.Submit(ctx, tc.req)
		var ae *server.APIStatusError
		if !errors.As(err, &ae) || ae.StatusCode != tc.want {
			t.Fatalf("%s: got %v, want HTTP %d", tc.name, err, tc.want)
		}
	}

	// Unknown job id → 404 on every job route.
	var ae *server.APIStatusError
	if _, err := client.Job(ctx, "job-9999"); !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Fatalf("unknown job returned %v", err)
	}
	if err := client.Events(ctx, "job-9999", nil); !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Fatalf("unknown job events returned %v", err)
	}
	if _, err := client.FVM(ctx, "feedfeed"); !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Fatalf("unknown fvm returned %v", err)
	}

	// Malformed JSON body → 400.
	resp, err := http.Post(baseURL(client)+"/v1/campaigns", "application/json",
		strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed body answered %d", resp.StatusCode)
	}

	// A body over the 1 MB cap is refused for every kind but nn-inference
	// (the large cap exists solely for network words and test sets).
	huge := strings.NewReader(`{"kind":"` + strings.Repeat("x", 2<<20) + `"}`)
	resp2, err := http.Post(baseURL(client)+"/v1/campaigns", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body answered %d, want 413", resp2.StatusCode)
	}

	// Beyond the nn-inference cap the body is cut off regardless of kind.
	vast := strings.NewReader(`{"kind":"` + strings.Repeat("x", 49<<20) + `"}`)
	resp3, err := http.Post(baseURL(client)+"/v1/campaigns", "application/json", vast)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("vast body answered %d, want 413", resp3.StatusCode)
	}
}

func TestJobHistoryRetention(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1, MaxJobHistory: 2})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 4; i++ {
		job, err := client.Submit(ctx, server.CampaignRequest{
			Kind:   "characterization",
			Boards: []server.BoardSpec{{Platform: "VC707", BRAMs: 24}},
			Runs:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Wait(ctx, job.ID, nil); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	jobs := mustJobs(t, client)
	if len(jobs) != 2 {
		t.Fatalf("table retains %d jobs, want 2: %+v", len(jobs), jobs)
	}
	if jobs[0].ID != ids[2] || jobs[1].ID != ids[3] {
		t.Fatalf("retained %s/%s, want the newest %s/%s", jobs[0].ID, jobs[1].ID, ids[2], ids[3])
	}
	// Evicted jobs 404; their FVMs survive in the store regardless.
	var ae *server.APIStatusError
	if _, err := client.Job(ctx, ids[0]); !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Fatalf("evicted job returned %v", err)
	}
	fvms, err := client.FVMs(ctx, "VC707", "")
	if err != nil || len(fvms) != 1 {
		t.Fatalf("store lost the evicted job's FVM: %d rows, %v", len(fvms), err)
	}
}

func TestSSEMalformedResumeCursor(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1})
	ctx := context.Background()
	job, err := client.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, job.ID, nil); err != nil {
		t.Fatal(err)
	}
	// Negative, garbage, mid-log, and beyond-the-log cursors must not break
	// the stream: invalid ones replay from the start, and every variant
	// still reaches the terminal event and closes (a beyond-log cursor
	// waiting forever would hang this read).
	for _, cursor := range []string{"-5", "nonsense", "2", "999"} {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			baseURL(client)+"/v1/jobs/"+job.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Last-Event-ID", cursor)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("cursor %q: %v", cursor, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("cursor %q answered %d (%v)", cursor, resp.StatusCode, err)
		}
		if !strings.Contains(string(body), "event: campaign") {
			t.Fatalf("cursor %q stream closed without the terminal event:\n%s", cursor, body)
		}
	}
	// A valid mid-stream cursor resumes after its sequence number.
	var first server.JobEvent
	got := false
	err = client.Events(ctx, job.ID, func(ev server.JobEvent) error {
		if !got {
			first, got = ev, true
		}
		return nil
	})
	if err != nil || !got || first.Seq != 0 {
		t.Fatalf("baseline replay: first=%+v err=%v", first, err)
	}
}

func TestQueueFullLeavesNoPhantomJob(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()
	// Sized to hold the worker busy for seconds even on the indexed
	// count-only read path; cancelled at the end of the test.
	long := server.CampaignRequest{
		Kind:   "characterization",
		Boards: []server.BoardSpec{{Platform: "VC707", Replicas: 2, BRAMs: 2060}},
		Runs:   10000,
	}
	running, err := client.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, client, running.ID, server.JobRunning)
	if _, err := client.Submit(ctx, long); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, long); err == nil {
		t.Fatal("overfull queue accepted a job")
	}
	// The rejected submission left nothing behind.
	jobs := mustJobs(t, client)
	if len(jobs) != 2 {
		t.Fatalf("listing shows %d jobs after a rejected submit, want 2: %+v", len(jobs), jobs)
	}
	for _, j := range jobs {
		client.Cancel(ctx, j.ID)
	}
}

func TestQueueFull(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()
	// Sized to hold the worker busy for seconds even on the indexed
	// count-only read path; cancelled at the end of the test.
	long := server.CampaignRequest{
		Kind:   "characterization",
		Boards: []server.BoardSpec{{Platform: "VC707", Replicas: 2, BRAMs: 2060}},
		Runs:   10000,
	}
	running, err := client.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to claim the first job, then fill the queue.
	waitForState(t, client, running.ID, server.JobRunning)
	if _, err := client.Submit(ctx, long); err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(ctx, long)
	var ae *server.APIStatusError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overfull queue answered %v, want 503", err)
	}
	// Unblock cleanup.
	for _, j := range mustJobs(t, client) {
		client.Cancel(ctx, j.ID)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	st := store.NewMem()
	srv, client := newService(t, st, server.Config{Workers: 1})
	ctx := context.Background()
	job, err := client.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, client, job.ID, server.JobRunning)

	sctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	// The in-flight job drained to completion, and its results persisted.
	final, err := client.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone {
		t.Fatalf("drained job finished %q, want done", final.State)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d records after drain, want 2", st.Len())
	}
	// New submissions are refused while/after draining.
	_, err = client.Submit(ctx, smallCampaign())
	var ae *server.APIStatusError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit answered %v, want 503", err)
	}
	// Health reports draining.
	resp, err := http.Get(baseURL(client) + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.OK || !health.Draining {
		t.Fatalf("health after shutdown: %+v", health)
	}
}

func TestForcedShutdownCancelsJobs(t *testing.T) {
	srv, client := newService(t, store.NewMem(), server.Config{Workers: 1})
	ctx := context.Background()
	job, err := client.Submit(ctx, server.CampaignRequest{
		Kind:   "characterization",
		Boards: []server.BoardSpec{{Platform: "VC707", Replicas: 4, BRAMs: 400}},
		Runs:   300,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, client, job.ID, server.JobRunning)

	// An already-expired context forces immediate cancellation.
	sctx, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(sctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown returned %v", err)
	}
	if took := time.Since(start); took > 20*time.Second {
		t.Fatalf("forced shutdown took %v", took)
	}
	final, err := client.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobCancelled {
		t.Fatalf("forced shutdown left job %q, want cancelled", final.State)
	}
}

func TestPatternAndThresholdCampaignsOverAPI(t *testing.T) {
	_, client := newService(t, store.NewMem(), server.Config{Workers: 2})
	ctx := context.Background()

	pat, err := client.Submit(ctx, server.CampaignRequest{
		Kind:     "pattern-study",
		Boards:   []server.BoardSpec{{Platform: "ZC702", BRAMs: 24}},
		Runs:     3,
		Patterns: []string{"ffff", "0000", "random"},
	})
	if err != nil {
		t.Fatal(err)
	}
	th, err := client.Submit(ctx, server.CampaignRequest{
		Kind:   "threshold-discovery",
		Boards: []server.BoardSpec{{Platform: "ZC702", BRAMs: 24}},
	})
	if err != nil {
		t.Fatal(err)
	}
	patFinal, err := client.Wait(ctx, pat.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if patFinal.State != server.JobDone || patFinal.Aggregate.Completed != 1 {
		t.Fatalf("pattern job %+v", patFinal)
	}
	// Per-fill rows ride the status, and an explicit "0000" measures the
	// all-zeros fill — not the 0xFFFF default that Pattern==0 would mean.
	rows := patFinal.BoardResults[0].Patterns
	if len(rows) != 3 || rows[0].Name != "16'hFFFF" || rows[1].Name != "16'h0000" || rows[2].Name != "random-50%" {
		t.Fatalf("pattern rows %+v", rows)
	}
	if rows[1].FaultsPerMbit >= rows[0].FaultsPerMbit {
		t.Fatalf("all-zeros fill (%f) should fault far less than all-ones (%f)",
			rows[1].FaultsPerMbit, rows[0].FaultsPerMbit)
	}
	thFinal, err := client.Wait(ctx, th.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if thFinal.State != server.JobDone {
		t.Fatalf("threshold job %+v", thFinal)
	}
	// The threshold job's board rows carry the discovered window.
	if len(thFinal.BoardResults) != 1 || thFinal.BoardResults[0].VminV <= thFinal.BoardResults[0].VcrashV {
		t.Fatalf("threshold rows %+v", thFinal.BoardResults)
	}
}

// waitForState polls until the job reaches the state (or any terminal one).
func waitForState(t *testing.T, client *server.Client, id string, want server.JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := client.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want || st.State.Terminal() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
}

func mustJobs(t *testing.T, client *server.Client) []server.JobStatus {
	t.Helper()
	jobs, err := client.Jobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// baseURL digs the test server URL back out of the client for raw requests.
func baseURL(c *server.Client) string { return c.BaseURL() }
