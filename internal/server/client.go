package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/fvm"
	"repro/internal/nn"
)

// Client is the typed HTTP client for the campaign service. It speaks the
// exact wire types the server emits, including the SSE event stream, so a
// Go consumer never touches raw JSON.
type Client struct {
	base  string
	hc    *http.Client
	token string
}

// NewClient returns a client for the service at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient; streaming
// requires a client without a global timeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// BaseURL returns the service root this client talks to.
func (c *Client) BaseURL() string { return c.base }

// SetToken attaches a bearer token to every subsequent request — the client
// side of Config.AuthToken. An empty token sends no Authorization header.
// Returns c for chaining.
func (c *Client) SetToken(token string) *Client {
	c.token = token
	return c
}

// authorize stamps the bearer token onto one outgoing request.
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// do issues one request and decodes the JSON response into out (which may be
// nil). Non-2xx responses come back as *APIStatusError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s: %w", method, path, err)
	}
	return nil
}

// APIStatusError is a non-2xx service response.
type APIStatusError struct {
	StatusCode int
	Message    string
}

func (e *APIStatusError) Error() string {
	return fmt.Sprintf("service returned %d: %s", e.StatusCode, e.Message)
}

func decodeAPIError(resp *http.Response) error {
	var body ErrorBody
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	return &APIStatusError{StatusCode: resp.StatusCode, Message: msg}
}

// Submit enqueues a campaign and returns the queued job.
func (c *Client) Submit(ctx context.Context, req CampaignRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns", req, &st)
	return st, err
}

// SubmitInference serializes the quantized network and test set into their
// wire documents and submits an nn-inference campaign across the given
// boards — the remote counterpart of building an engine.Campaign with an
// in-process *nn.Quantized. seed 0 means placement seed 1.
func (c *Client) SubmitInference(ctx context.Context, boards []BoardSpec, q *nn.Quantized, xs [][]float64, ys []int, seed uint64) (JobStatus, error) {
	req, err := NewInferenceRequest(boards, q, xs, ys, seed)
	if err != nil {
		return JobStatus{}, fmt.Errorf("client: %w", err)
	}
	return c.Submit(ctx, req)
}

// SubmitMitigation submits a mitigation-comparison campaign across the
// given boards: per board, a VCCBRAM sweep comparing the spec's arms
// (empty = unprotected, ecc, icbp, dvfs).
func (c *Client) SubmitMitigation(ctx context.Context, boards []BoardSpec, spec MitigationSpec) (JobStatus, error) {
	return c.Submit(ctx, NewMitigationRequest(boards, spec))
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel cancels a queued or running job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Events subscribes to the job's SSE stream and invokes fn for every event,
// history first, until the terminal "campaign" event (nil return), the
// context ends, or fn returns an error (which stops the stream and is
// returned).
func (c *Client) Events(ctx context.Context, id string, fn func(JobEvent) error) error {
	return c.EventsFrom(ctx, id, -1, fn)
}

// EventsFrom is Events with a resume cursor: pass the Seq of the last event
// a previous subscription delivered (rides the Last-Event-ID header) and the
// replay starts just past it — served from the journal when the server has
// trimmed that depth out of memory, so the cursor stays valid at any age,
// including across a server restart. after < 0 replays from the start.
func (c *Client) EventsFrom(ctx context.Context, id string, after int, fn func(JobEvent) error) error {
	cursor := ""
	if after >= 0 {
		cursor = strconv.Itoa(after)
	}
	ended, err := c.streamSSE(ctx, "/v1/jobs/"+url.PathEscape(id)+"/events", cursor,
		func(ev JobEvent) (bool, error) {
			if err := fn(ev); err != nil {
				return false, err
			}
			return ev.Type == "campaign", nil
		})
	if err != nil {
		return err
	}
	if !ended {
		// Stream ended without a terminal event: surface the interruption.
		return io.ErrUnexpectedEOF
	}
	return nil
}

// Firehose subscribes to the server-wide /v1/events stream and invokes fn
// for every event from every job (each tagged with its job id and global
// sequence). after > 0 resumes from that global sequence — pass the last
// GSeq a previous subscription delivered, even across a server restart.
// The stream has no terminal event: Firehose runs until the context ends
// (returning ctx.Err()), fn returns an error (returned), or the server
// shuts down and closes the stream (nil).
func (c *Client) Firehose(ctx context.Context, after int64, fn func(JobEvent) error) error {
	cursor := ""
	if after > 0 {
		cursor = strconv.FormatInt(after, 10)
	}
	_, err := c.streamSSE(ctx, "/v1/events", cursor,
		func(ev JobEvent) (bool, error) { return false, fn(ev) })
	return err
}

// streamSSE runs one SSE subscription, invoking fn per decoded event until
// fn stops the stream (ended=true), the stream closes (ended=false), fn
// errors, or the context ends. lastEventID, when non-empty, rides the
// Last-Event-ID header to resume server-side.
func (c *Client) streamSSE(ctx context.Context, path, lastEventID string, fn func(JobEvent) (stop bool, err error)) (ended bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, decodeAPIError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data strings.Builder
	flush := func() (bool, error) {
		if data.Len() == 0 {
			return false, nil
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
			return false, fmt.Errorf("client: decode event: %w", err)
		}
		data.Reset()
		return fn(ev)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			stop, err := flush()
			if err != nil || stop {
				return stop, err
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event:/retry:/comment lines carry no payload we need; the
			// JSON body repeats the type and sequences.
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return false, err
	}
	// Clean end of stream; flush a final event the server may have sent
	// without a trailing blank line.
	stop, err := flush()
	return stop, err
}

// Wait streams events (fn may be nil) until the job reaches a terminal
// state, then returns the final status.
func (c *Client) Wait(ctx context.Context, id string, fn func(JobEvent) error) (JobStatus, error) {
	cb := fn
	if cb == nil {
		cb = func(JobEvent) error { return nil }
	}
	if err := c.Events(ctx, id, cb); err != nil {
		return JobStatus{}, err
	}
	return c.Job(ctx, id)
}

// FVMs lists stored characterizations, optionally filtered by platform
// and/or serial (empty strings match everything). A degraded federation's
// partial answer decodes transparently — use FVMList to see Partial/Missing.
func (c *Client) FVMs(ctx context.Context, platformName, serial string) ([]FVMInfo, error) {
	out, err := c.FVMList(ctx, platformName, serial)
	return out.FVMs, err
}

// FVMList lists stored characterizations with the degraded-mode envelope: a
// federation coordinator that could not reach every daemon sets Partial and
// names the Missing daemons; a complete answer (or a lone daemon's bare
// array) leaves both zero. The wire shape is sniffed, so one client speaks
// to both daemon and coordinator.
func (c *Client) FVMList(ctx context.Context, platformName, serial string) (FVMList, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/fvms"+listQuery(platformName, serial), nil, &raw); err != nil {
		return FVMList{}, err
	}
	var out FVMList
	if isJSONArray(raw) {
		return out, json.Unmarshal(raw, &out.FVMs)
	}
	return out, json.Unmarshal(raw, &out)
}

// FVM fetches one stored record's full Fault Variation Map.
func (c *Client) FVM(ctx context.Context, id string) (*fvm.Map, error) {
	var m fvm.Map
	if err := c.do(ctx, http.MethodGet, "/v1/fvms/"+url.PathEscape(id), nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// DeleteFVM removes one stored record — the admin counterpart of FVMs.
func (c *Client) DeleteFVM(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/fvms/"+url.PathEscape(id), nil, nil)
}

// GC re-bounds the server's FVM store to the newest keep records per
// (platform, serial) and returns how many records were removed. keep <= 0
// uses the server's configured GCKeep (the server answers 400 when it has
// none).
func (c *Client) GC(ctx context.Context, keep int) (int, error) {
	path := "/v1/gc"
	if keep > 0 {
		path += "?keep=" + strconv.Itoa(keep)
	}
	var out struct {
		Removed int `json:"removed"`
	}
	err := c.do(ctx, http.MethodPost, path, nil, &out)
	return out.Removed, err
}

// Vmin lists the observed operating window of every stored sweep matching
// the optional platform/serial filter.
func (c *Client) Vmin(ctx context.Context, platformName, serial string) ([]VminInfo, error) {
	out, err := c.VminList(ctx, platformName, serial)
	return out.Vmin, err
}

// VminList is Vmin with the degraded-mode envelope, mirroring FVMList.
func (c *Client) VminList(ctx context.Context, platformName, serial string) (VminList, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/vmin"+listQuery(platformName, serial), nil, &raw); err != nil {
		return VminList{}, err
	}
	var out VminList
	if isJSONArray(raw) {
		return out, json.Unmarshal(raw, &out.Vmin)
	}
	return out, json.Unmarshal(raw, &out)
}

// isJSONArray reports whether the document's first token opens an array —
// how the client tells a bare list from the partial-union envelope.
func isJSONArray(raw json.RawMessage) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '[':
			return true
		default:
			return false
		}
	}
	return false
}

func listQuery(platformName, serial string) string {
	q := url.Values{}
	if platformName != "" {
		q.Set("platform", platformName)
	}
	if serial != "" {
		q.Set("serial", serial)
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}
