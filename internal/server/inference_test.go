package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/server"
	"repro/internal/store"
)

// trainedInferenceFixture trains a small classifier and returns its
// deployment form plus the wire-round-tripped test set. The round trip
// matters: the wire narrows inputs to float32, and the acceptance bar is
// that the service's curve matches a local engine run of *the same* inputs.
func trainedInferenceFixture(t *testing.T) (*nn.Quantized, [][]float64, []int) {
	t.Helper()
	ds := dataset.MNISTLike(dataset.Options{
		TrainSamples: 300, TestSamples: 48, Features: 64, Classes: 10,
	})
	net, err := nn.New([]int{64, 16, 10}, "inference-api-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(ds.TrainX, ds.TrainY, nn.TrainOptions{Epochs: 2, LearnRate: 0.3, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	q := nn.Quantize(net)
	doc, err := nn.MarshalTestSet(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys, err := nn.UnmarshalTestSet(doc)
	if err != nil {
		t.Fatal(err)
	}
	return q, xs, ys
}

// inferenceBoards is the fleet both the HTTP and the local half of the
// equivalence test enroll.
func inferenceBoards() []server.BoardSpec {
	return []server.BoardSpec{{Platform: "VC707", Replicas: 2, BRAMs: 24}}
}

func localInventory(t *testing.T) []platform.Platform {
	t.Helper()
	return platform.VC707().Scaled(24).Replicas(2)
}

func TestInferenceCampaignOverHTTPMatchesLocalRun(t *testing.T) {
	q, xs, ys := trainedInferenceFixture(t)
	st := store.NewMem()
	_, client := newService(t, st, server.Config{Workers: 1, FleetWorkers: 2})
	ctx := context.Background()

	job, err := client.SubmitInference(ctx, inferenceBoards(), q, xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if job.Kind != "nn-inference" || job.Boards != 2 {
		t.Fatalf("submit echoed %+v", job)
	}
	var doneEvents []server.JobEvent
	final, err := client.Wait(ctx, job.ID, func(ev server.JobEvent) error {
		if ev.Type == "done" {
			doneEvents = append(doneEvents, ev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone {
		t.Fatalf("job finished %q (%s)", final.State, final.Error)
	}
	if len(final.BoardResults) != 2 {
		t.Fatalf("board results %+v", final.BoardResults)
	}

	// The same (network, test set, seed) run through the engine directly.
	// The wire documents decode back to deep-equal payloads, so the two
	// runs measure identical dies with identical inputs and must agree on
	// every voltage point, bit for bit.
	fleet := engine.NewFleet(localInventory(t), engine.Options{Workers: 2})
	res, err := fleet.RunCampaign(ctx, engine.Campaign{
		Kind: engine.NNInference, Net: q, TestX: xs, TestY: ys, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range final.BoardResults {
		local := res.Boards[i].Inference
		if len(br.Inference) == 0 || len(br.Inference) != len(local) {
			t.Fatalf("board %d: %d wire points vs %d local", i, len(br.Inference), len(local))
		}
		for k, p := range br.Inference {
			if p.V != local[k].V || p.Error != local[k].Error || p.WeightFault != local[k].WeightFault {
				t.Fatalf("board %d level %d: wire %+v vs local %+v", i, k, p, local[k])
			}
		}
	}
	if final.Aggregate == nil || final.Aggregate.InferenceError.N != 2 {
		t.Fatalf("aggregate %+v lacks the 2-board inference spread", final.Aggregate)
	}

	// Done events carry the deepest-level classification error.
	if len(doneEvents) != 2 {
		t.Fatalf("%d done events, want 2", len(doneEvents))
	}
	for _, ev := range doneEvents {
		local := res.Boards[ev.Board].Inference
		if want := local[len(local)-1].Error; ev.InferError != want {
			t.Fatalf("board %d done event infer_error %v, want %v", ev.Board, ev.InferError, want)
		}
	}
}

func TestInferenceJobSurvivesRestart(t *testing.T) {
	q, xs, ys := trainedInferenceFixture(t)
	st := store.NewMem()
	srv1, client1 := newService(t, st, server.Config{Workers: 1})
	ctx := context.Background()

	job, err := client1.SubmitInference(ctx, inferenceBoards(), q, xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	final, err := client1.Wait(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone {
		t.Fatalf("job finished %q (%s)", final.State, final.Error)
	}
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A new daemon over the same store replays the journal: the job, its
	// accuracy curve, and its event log all survive.
	_, client2 := newService(t, st, server.Config{Workers: 1})
	replayed, err := client2.Job(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.State != server.JobDone || replayed.Kind != "nn-inference" {
		t.Fatalf("replayed job %+v", replayed)
	}
	a, _ := json.Marshal(final.BoardResults)
	b, _ := json.Marshal(replayed.BoardResults)
	if string(a) != string(b) {
		t.Fatalf("replayed board results drifted:\n%s\nvs\n%s", b, a)
	}
	var sawTerminal bool
	if err := client2.Events(ctx, job.ID, func(ev server.JobEvent) error {
		if ev.Type == "campaign" {
			sawTerminal = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawTerminal {
		t.Fatal("replayed event log lacks the terminal campaign event")
	}
}

func TestInferenceSubmissionValidation(t *testing.T) {
	q, xs, ys := trainedInferenceFixture(t)
	_, client := newService(t, store.NewMem(), server.Config{Workers: 1})
	ctx := context.Background()

	status := func(t *testing.T, err error) int {
		t.Helper()
		var ae *server.APIStatusError
		if !errors.As(err, &ae) {
			t.Fatalf("want an API error, got %v", err)
		}
		return ae.StatusCode
	}

	// Missing documents.
	_, err := client.Submit(ctx, server.CampaignRequest{Kind: "nn-inference", Boards: inferenceBoards()})
	if status(t, err) != 400 {
		t.Fatalf("missing documents: %v", err)
	}

	good, err := server.NewInferenceRequest(inferenceBoards(), q, xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt network document.
	bad := good
	bad.Net = json.RawMessage(`{"version":99}`)
	if _, err := client.Submit(ctx, bad); status(t, err) != 400 {
		t.Fatalf("bad net: %v", err)
	}

	// Test set whose width does not match the network's input layer.
	narrowX := make([][]float64, len(xs))
	for i := range xs {
		narrowX[i] = xs[i][:10]
	}
	mismatch, err := server.NewInferenceRequest(inferenceBoards(), q, narrowX, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, mismatch); status(t, err) != 400 {
		t.Fatalf("feature mismatch: %v", err)
	}

	// Labels outside the output layer.
	highY := append([]int(nil), ys...)
	highY[0] = 10
	outOfRange, err := server.NewInferenceRequest(inferenceBoards(), q, xs, highY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, outOfRange); status(t, err) != 400 {
		t.Fatalf("label out of range: %v", err)
	}

	// Network documents on a non-inference kind.
	wrongKind := good
	wrongKind.Kind = "characterization"
	if _, err := client.Submit(ctx, wrongKind); status(t, err) != 400 {
		t.Fatalf("net on characterization: %v", err)
	}

	// A placement seed on a non-inference kind is rejected, not ignored.
	if _, err := client.Submit(ctx, server.CampaignRequest{
		Kind: "characterization", Boards: inferenceBoards(), Runs: 2, Seed: 7,
	}); status(t, err) != 400 {
		t.Fatalf("seed on characterization: %v", err)
	}
}
